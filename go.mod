module ipa

go 1.22
