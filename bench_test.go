// Package ipa's root benchmark harness: one testing.B benchmark per
// table and figure of the paper's evaluation (regenerating the
// experiment at reduced scale and reporting its headline metric), plus
// micro-benchmarks of the core IPA operations and ablation benchmarks
// for the design choices called out in DESIGN.md.
//
// Run: go test -bench=. -benchmem
package ipa

import (
	"fmt"
	"testing"

	"ipa/internal/core"
	"ipa/internal/ecc"
	"ipa/internal/experiments"
	"ipa/internal/flash"
	"ipa/internal/ipl"
	"ipa/internal/noftl"
	"ipa/internal/page"
	"ipa/internal/trace"
)

var quick = experiments.Params{Quick: true}

// benchTable runs one experiment per iteration and fails the benchmark
// on error; the rendered output is the artefact, time is secondary.
func benchTable(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := experiments.ByID(id, quick)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(t.Rows) == 0 {
			b.Fatalf("%s: empty table", id)
		}
	}
}

func BenchmarkTable1(b *testing.B)  { benchTable(b, "table1") }
func BenchmarkTable2(b *testing.B)  { benchTable(b, "table2") }
func BenchmarkTable3(b *testing.B)  { benchTable(b, "table3") }
func BenchmarkTable4(b *testing.B)  { benchTable(b, "table4") }
func BenchmarkTable5(b *testing.B)  { benchTable(b, "table5") }
func BenchmarkTable6(b *testing.B)  { benchTable(b, "table6") }
func BenchmarkTable7(b *testing.B)  { benchTable(b, "table7") }
func BenchmarkTable8(b *testing.B)  { benchTable(b, "table8") }
func BenchmarkTable9(b *testing.B)  { benchTable(b, "table9") }
func BenchmarkTable10(b *testing.B) { benchTable(b, "table10") }
func BenchmarkTable11(b *testing.B) { benchTable(b, "table11") }
func BenchmarkFig1(b *testing.B)    { benchTable(b, "fig1") }
func BenchmarkFig6(b *testing.B)    { benchTable(b, "fig6") }
func BenchmarkFig7(b *testing.B)    { benchTable(b, "fig7") }
func BenchmarkFig8(b *testing.B)    { benchTable(b, "fig8") }
func BenchmarkFig9(b *testing.B)    { benchTable(b, "fig9") }
func BenchmarkFig10(b *testing.B)   { benchTable(b, "fig10") }

// BenchmarkLongevity regenerates the conclusion-level longevity claim
// (erase counts and peak block wear, [0×0] vs [2×4]).
func BenchmarkLongevity(b *testing.B) { benchTable(b, "longevity") }

// BenchmarkIndexExperiment regenerates the index-latching comparison
// (coarse RW mutex vs optimistic lock coupling, BENCH_PR7).
func BenchmarkIndexExperiment(b *testing.B) { benchTable(b, "index") }

// --- micro-benchmarks of the hot IPA paths ----------------------------

// BenchmarkDeltaEncodeDecode measures one delta-record round trip.
func BenchmarkDeltaEncodeDecode(b *testing.B) {
	s := core.Scheme{N: 2, M: 3, V: 12}
	rec := core.DeltaRecord{
		Body: []core.Pair{{Off: 100, Val: 1}, {Off: 101, Val: 2}, {Off: 102, Val: 3}},
		Meta: []core.Pair{{Off: 8, Val: 9}},
	}
	buf := make([]byte, s.RecordSize())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Encode(rec, buf); err != nil {
			b.Fatal(err)
		}
		if _, _, err := s.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPageDiff measures the diff-at-evict change tracking on a 4KB
// page with a handful of changed bytes, using the flush path's kernel: a
// word-at-a-time scan with range-based classification into a reused
// ChangeSet (steady state allocates nothing).
func BenchmarkPageDiff(b *testing.B) {
	l := page.Layout{PageSize: 4096, Scheme: core.Scheme{N: 2, M: 3, V: 12}}
	buf := make([]byte, 4096)
	pg, err := page.Format(buf, l, 1)
	if err != nil {
		b.Fatal(err)
	}
	flushed := append([]byte(nil), buf...)
	buf[100] ^= 1
	buf[8] ^= 1
	var cs core.ChangeSet
	var rbuf [4]core.ClassRange
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := core.DiffInto(&cs, buf, flushed, pg.ClassRanges(rbuf[:0])); err != nil {
			b.Fatal(err)
		}
	}
	if len(cs.Body) != 1 || len(cs.Meta) != 1 {
		b.Fatalf("diff found body=%d meta=%d, want 1/1", len(cs.Body), len(cs.Meta))
	}
}

// BenchmarkFlashProgramDelta measures the ISPP append (write_delta) on
// the bit-accurate flash model.
func BenchmarkFlashProgramDelta(b *testing.B) {
	g := flash.Geometry{Chips: 1, BlocksPerChip: 4, PagesPerBlock: 64, PageSize: 4096, OOBSize: 128, Cell: flash.SLC}
	arr, err := flash.New(flash.Config{Geometry: g, Timing: flash.SLCTiming(), MaxAppends: 1 << 30}, nil)
	if err != nil {
		b.Fatal(err)
	}
	img := make([]byte, 4096)
	for i := range img {
		img[i] = 0xFF
	}
	if _, err := arr.Program(nil, 0, img, nil); err != nil {
		b.Fatal(err)
	}
	delta := make([]byte, 46) // one [2×3] record
	b.SetBytes(int64(len(delta)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Appending 0x00 over anything is always legal (only clears bits).
		if _, err := arr.ProgramDelta(nil, 0, 4000, delta, 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkECCEncode4K measures the sectioned code computation for a
// full page body.
func BenchmarkECCEncode4K(b *testing.B) {
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i * 31)
	}
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ecc.Encode(data)
	}
}

// BenchmarkIPLReplay and BenchmarkIPAReplay time the two trace
// simulators on the same synthetic OLTP trace (Table 2 machinery).
func replayTrace() *trace.Trace {
	t := trace.New()
	for p := 1; p <= 128; p++ {
		t.RecordEvict(core.PageID(p), 0, 0, true)
	}
	for i := 0; i < 5000; i++ {
		p := core.PageID(i%128 + 1)
		t.RecordFetch(p)
		t.RecordEvict(p, 4, 14, false)
	}
	return t
}

func BenchmarkIPLReplay(b *testing.B) {
	tr := replayTrace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ipl.NewSimulator(ipl.Config{}).Replay(tr)
	}
}

func BenchmarkIPAReplay(b *testing.B) {
	tr := replayTrace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ipl.NewIPAModel(ipl.IPAConfig{Scheme: core.NewScheme(2, 4)}, 128).Replay(tr)
	}
}

// --- ablation benchmarks (design choices in DESIGN.md) -----------------

// BenchmarkAblationMetadataTracking quantifies the paper's Sec. 6.1
// claim: byte-level metadata tracking shrinks the delta-record area
// substantially versus storing the complete page metadata per record
// (the paper measured 49% for [2×3]).
func BenchmarkAblationMetadataTracking(b *testing.B) {
	s := core.Scheme{N: 2, M: 3, V: 12}
	byteLevel := s.AreaSize()
	// Alternative encoding: ctrl + M body pairs + a full metadata copy
	// (page header plus a typical 16-entry slot table).
	fullMeta := page.HeaderSize + 16*page.SlotSize
	whole := s.N * (1 + 3*s.M + fullMeta)
	saving := 1 - float64(byteLevel)/float64(whole)
	b.ReportMetric(100*saving, "%area-saved")
	for i := 0; i < b.N; i++ {
		_ = s.AreaSize()
	}
	if saving < 0.4 {
		b.Fatalf("byte-level tracking saves only %.0f%%, paper claims ~49%%", 100*saving)
	}
}

// BenchmarkAblationECC measures the flush-path cost of the sectioned
// ECC (per-delta-record codes in the OOB area) versus no ECC.
func BenchmarkAblationECC(b *testing.B) {
	for _, useECC := range []bool{false, true} {
		b.Run(fmt.Sprintf("ecc=%v", useECC), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o, err := experiments.Execute(experiments.Spec{
					Bench: "tpcb", Scheme: core.NewScheme(2, 4),
					BufferPct: 0.5, Eager: true, Tx: 300, UseECC: useECC,
				})
				if err != nil {
					b.Fatal(err)
				}
				if o.Results.Aborted != 0 {
					b.Fatal("aborted transactions")
				}
			}
		})
	}
}

// BenchmarkAblationSchemeN sweeps N for a fixed M on the same workload,
// reporting the erase count — the longevity knob of the [N×M] scheme.
func BenchmarkAblationSchemeN(b *testing.B) {
	for _, n := range []int{0, 1, 2, 3} {
		scheme := core.Scheme{}
		if n > 0 {
			scheme = core.NewScheme(n, 4)
		}
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			var erases float64
			for i := 0; i < b.N; i++ {
				o, err := experiments.Execute(experiments.Spec{
					Bench: "tpcb", Scheme: scheme, BufferPct: 0.2, Eager: true, Tx: 1500,
				})
				if err != nil {
					b.Fatal(err)
				}
				erases = float64(o.Region.GCErases)
			}
			b.ReportMetric(erases, "gc-erases")
		})
	}
}

// BenchmarkAblationModes compares pSLC and odd-MLC on the OpenSSD
// profile (Appendix C): pSLC appends everywhere at half capacity,
// odd-MLC appends on LSB pages only.
func BenchmarkAblationModes(b *testing.B) {
	for _, mode := range []string{"pslc", "oddmlc"} {
		b.Run(mode, func(b *testing.B) {
			var frac float64
			for i := 0; i < b.N; i++ {
				spec := experiments.Spec{
					Bench: "tpcb", Testbed: experiments.OpenSSD,
					Scheme: core.NewScheme(2, 4), BufferPct: 0.2, Eager: true, Tx: 800,
				}
				if mode == "oddmlc" {
					spec.Mode = noftl.ModeOddMLC
				}
				o, err := experiments.Execute(spec)
				if err != nil {
					b.Fatal(err)
				}
				frac = o.Region.IPAFraction()
			}
			b.ReportMetric(100*frac, "%ipa")
		})
	}
}
