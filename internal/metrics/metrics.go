// Package metrics provides the measurement primitives the experiment
// harness reports: exact integer histograms (update-size distributions,
// Table 1/11 and Figures 7-10), CDF extraction, and latency recorders for
// I/O response times.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Hist is an exact histogram over small non-negative integers (update
// sizes in bytes). Values above the cap are clamped into the overflow
// bucket. Safe for concurrent use.
type Hist struct {
	mu     sync.Mutex
	counts []uint64
	over   uint64
	total  uint64
	sum    uint64
}

// NewHist creates a histogram covering values 0..max.
func NewHist(max int) *Hist {
	if max < 1 {
		max = 1
	}
	return &Hist{counts: make([]uint64, max+1)}
}

// Add records one observation.
func (h *Hist) Add(v int) {
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.total++
	h.sum += uint64(v)
	if v >= len(h.counts) {
		h.over++
		return
	}
	h.counts[v]++
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Mean returns the average observation.
func (h *Hist) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// FractionLE returns the fraction of observations ≤ v — the paper's
// "≤ 3 bytes lies at the 55th percentile" reads as FractionLE(3) = 0.55.
func (h *Hist) FractionLE(v int) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	if v >= len(h.counts) {
		return 1
	}
	var c uint64
	for i := 0; i <= v; i++ {
		c += h.counts[i]
	}
	return float64(c) / float64(h.total)
}

// PercentileLE returns FractionLE scaled to a percentile (0-100).
func (h *Hist) PercentileLE(v int) float64 { return 100 * h.FractionLE(v) }

// Quantile returns the smallest value v with FractionLE(v) ≥ q
// (0 < q ≤ 1). The overflow bucket reports as the cap.
func (h *Hist) Quantile(q float64) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	need := uint64(math.Ceil(q * float64(h.total)))
	if need == 0 {
		need = 1
	}
	var c uint64
	for i, n := range h.counts {
		c += n
		if c >= need {
			return i
		}
	}
	return len(h.counts) - 1
}

// CDF evaluates FractionLE at each of the given points.
func (h *Hist) CDF(points []int) []float64 {
	out := make([]float64, len(points))
	for i, p := range points {
		out[i] = h.FractionLE(p)
	}
	return out
}

// Reset clears all observations.
func (h *Hist) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.over, h.total, h.sum = 0, 0, 0
}

// Latency records durations with exact mean/min/max and approximate
// quantiles via power-of-two bucketing. Safe for concurrent use.
type Latency struct {
	mu      sync.Mutex
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	buckets [64]uint64 // bucket i holds durations in [2^i, 2^(i+1)) ns
}

// Add records one duration.
func (l *Latency) Add(d time.Duration) {
	if d < 0 {
		d = 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.count == 0 || d < l.min {
		l.min = d
	}
	if d > l.max {
		l.max = d
	}
	l.count++
	l.sum += d
	l.buckets[bucketOf(d)]++
}

func bucketOf(d time.Duration) int {
	n := int64(d)
	b := 0
	for n > 1 && b < 63 {
		n >>= 1
		b++
	}
	return b
}

// Count returns the number of observations.
func (l *Latency) Count() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Mean returns the average duration.
func (l *Latency) Mean() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.count == 0 {
		return 0
	}
	return l.sum / time.Duration(l.count)
}

// Min returns the smallest observation.
func (l *Latency) Min() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.min
}

// Max returns the largest observation.
func (l *Latency) Max() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.max
}

// Quantile returns an upper bound of the q-quantile (bucket upper edge).
func (l *Latency) Quantile(q float64) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.count == 0 {
		return 0
	}
	need := uint64(math.Ceil(q * float64(l.count)))
	if need == 0 {
		need = 1
	}
	var c uint64
	for i, n := range l.buckets {
		c += n
		if c >= need {
			return time.Duration(int64(1) << uint(i+1))
		}
	}
	return l.max
}

// LatencySnapshot is an exported, JSON-marshalable view of a Latency
// recorder — what the network service's admin endpoint serves per
// protocol op. Quantiles are bucket upper bounds, like Quantile.
type LatencySnapshot struct {
	Count   uint64   `json:"count"`
	MeanNs  int64    `json:"mean_ns"`
	MinNs   int64    `json:"min_ns"`
	MaxNs   int64    `json:"max_ns"`
	P50Ns   int64    `json:"p50_ns"`
	P95Ns   int64    `json:"p95_ns"`
	P99Ns   int64    `json:"p99_ns"`
	Buckets []uint64 `json:"buckets"` // power-of-two histogram, trimmed of trailing zeros
}

// Snapshot captures the recorder's current state in one lock
// acquisition.
func (l *Latency) Snapshot() LatencySnapshot {
	l.mu.Lock()
	s := LatencySnapshot{
		Count: l.count,
		MinNs: int64(l.min),
		MaxNs: int64(l.max),
	}
	if l.count > 0 {
		s.MeanNs = int64(l.sum) / int64(l.count)
	}
	s.P50Ns = int64(l.quantileLocked(0.50))
	s.P95Ns = int64(l.quantileLocked(0.95))
	s.P99Ns = int64(l.quantileLocked(0.99))
	last := -1
	for i, n := range l.buckets {
		if n != 0 {
			last = i
		}
	}
	s.Buckets = append([]uint64(nil), l.buckets[:last+1]...)
	l.mu.Unlock()
	return s
}

// quantileLocked is Quantile with l.mu already held.
func (l *Latency) quantileLocked(q float64) time.Duration {
	if l.count == 0 {
		return 0
	}
	need := uint64(math.Ceil(q * float64(l.count)))
	if need == 0 {
		need = 1
	}
	var c uint64
	for i, n := range l.buckets {
		c += n
		if c >= need {
			return time.Duration(int64(1) << uint(i+1))
		}
	}
	return l.max
}

// Merge folds another recorder's observations into l. Benchmarks give
// each worker its own recorder (no shared lock on the timed path) and
// merge afterwards.
func (l *Latency) Merge(o *Latency) {
	o.mu.Lock()
	count, sum, min, max, buckets := o.count, o.sum, o.min, o.max, o.buckets
	o.mu.Unlock()
	if count == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.count == 0 || min < l.min {
		l.min = min
	}
	if max > l.max {
		l.max = max
	}
	l.count += count
	l.sum += sum
	for i := range buckets {
		l.buckets[i] += buckets[i]
	}
}

// Reset clears all observations.
func (l *Latency) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.count, l.sum, l.min, l.max = 0, 0, 0, 0
	l.buckets = [64]uint64{}
}

// Series is a labelled sequence of (x, y) points used by the figure
// harness to print CDFs and sweeps the way the paper plots them.
type Series struct {
	Label  string
	X      []float64
	Y      []float64
	XLabel string
	YLabel string
}

// Render prints the series as aligned columns.
func (s Series) Render() string {
	out := fmt.Sprintf("# %s  (%s vs %s)\n", s.Label, s.XLabel, s.YLabel)
	for i := range s.X {
		out += fmt.Sprintf("%12.2f %12.4f\n", s.X[i], s.Y[i])
	}
	return out
}

// SortedKeys returns the sorted keys of a map with int keys — a small
// helper for deterministic table printing.
func SortedKeys[M ~map[int]V, V any](m M) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
