package metrics

import (
	"encoding/json"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHistBasics(t *testing.T) {
	h := NewHist(100)
	for _, v := range []int{1, 2, 2, 3, 10} {
		h.Add(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 18.0/5 {
		t.Errorf("Mean = %v", h.Mean())
	}
	if got := h.FractionLE(2); got != 0.6 {
		t.Errorf("FractionLE(2) = %v", got)
	}
	if got := h.PercentileLE(3); got != 80 {
		t.Errorf("PercentileLE(3) = %v", got)
	}
	if got := h.FractionLE(1000); got != 1 {
		t.Errorf("FractionLE(max) = %v", got)
	}
	if q := h.Quantile(0.5); q != 2 {
		t.Errorf("Quantile(0.5) = %d", q)
	}
	if q := h.Quantile(1.0); q != 10 {
		t.Errorf("Quantile(1.0) = %d", q)
	}
	cdf := h.CDF([]int{1, 2, 3})
	if cdf[0] != 0.2 || cdf[1] != 0.6 || cdf[2] != 0.8 {
		t.Errorf("CDF = %v", cdf)
	}
	h.Reset()
	if h.Count() != 0 || h.FractionLE(5) != 0 {
		t.Error("Reset incomplete")
	}
}

func TestHistOverflowAndNegative(t *testing.T) {
	h := NewHist(4)
	h.Add(100) // overflow bucket
	h.Add(-3)  // clamped to 0
	if h.Count() != 2 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.FractionLE(4) != 0.5 {
		t.Errorf("FractionLE(4) = %v", h.FractionLE(4))
	}
	if h.FractionLE(0) != 0.5 {
		t.Errorf("FractionLE(0) = %v", h.FractionLE(0))
	}
}

func TestEmptyHist(t *testing.T) {
	h := NewHist(10)
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.FractionLE(3) != 0 {
		t.Error("empty histogram not all-zero")
	}
}

func TestLatencyBasics(t *testing.T) {
	var l Latency
	l.Add(10 * time.Microsecond)
	l.Add(20 * time.Microsecond)
	l.Add(30 * time.Microsecond)
	if l.Count() != 3 {
		t.Errorf("Count = %d", l.Count())
	}
	if l.Mean() != 20*time.Microsecond {
		t.Errorf("Mean = %v", l.Mean())
	}
	if l.Min() != 10*time.Microsecond || l.Max() != 30*time.Microsecond {
		t.Errorf("min/max = %v/%v", l.Min(), l.Max())
	}
	q := l.Quantile(0.99)
	if q < 30*time.Microsecond || q > 128*time.Microsecond {
		t.Errorf("Quantile(0.99) = %v out of plausible bucket range", q)
	}
	l.Reset()
	if l.Count() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestLatencyEmptyAndNegative(t *testing.T) {
	var l Latency
	if l.Mean() != 0 || l.Quantile(0.5) != 0 {
		t.Error("empty latency not zero")
	}
	l.Add(-5)
	if l.Min() != 0 {
		t.Errorf("negative clamped Min = %v", l.Min())
	}
}

func TestSeriesRender(t *testing.T) {
	s := Series{Label: "cdf", X: []float64{1, 2}, Y: []float64{0.5, 1}, XLabel: "bytes", YLabel: "fraction"}
	out := s.Render()
	if !strings.Contains(out, "cdf") || !strings.Contains(out, "0.5000") {
		t.Errorf("Render = %q", out)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[int]string{3: "c", 1: "a", 2: "b"}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("SortedKeys = %v", got)
	}
}

// Property: Quantile agrees with a sort-based reference on random data.
func TestPropertyHistQuantile(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		h := NewHist(256)
		vals := make([]int, n)
		for i := range vals {
			vals[i] = rng.Intn(256)
			h.Add(vals[i])
		}
		sort.Ints(vals)
		for _, q := range []float64{0.1, 0.5, 0.9, 1.0} {
			idx := int(q*float64(n)) - 1
			if idx < 0 {
				idx = 0
			}
			want := vals[idx]
			// Reference: smallest v with count(≤v) ≥ ceil(q·n).
			if got := h.Quantile(q); got != want {
				// ceil vs floor edge: recompute exactly.
				need := int(float64(n)*q + 0.9999999)
				c := 0
				ref := vals[n-1]
				for _, v := range vals {
					c++
					if c >= need {
						ref = v
						break
					}
				}
				if got != ref {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: FractionLE is monotonically non-decreasing.
func TestPropertyFractionMonotone(t *testing.T) {
	f := func(vals []uint8) bool {
		h := NewHist(255)
		for _, v := range vals {
			h.Add(int(v))
		}
		prev := -1.0
		for v := 0; v <= 255; v += 17 {
			cur := h.FractionLE(v)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLatencySnapshot(t *testing.T) {
	var l Latency
	if s := l.Snapshot(); s.Count != 0 || len(s.Buckets) != 0 || s.P99Ns != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
	for _, d := range []time.Duration{100, 200, 400, 800, 100_000} {
		l.Add(d)
	}
	s := l.Snapshot()
	if s.Count != 5 || s.MinNs != 100 || s.MaxNs != 100_000 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.MeanNs != int64(l.Mean()) {
		t.Fatalf("mean %d != %v", s.MeanNs, l.Mean())
	}
	// Quantiles must agree with the recorder's own bucket upper bounds.
	if s.P50Ns != int64(l.Quantile(0.50)) || s.P99Ns != int64(l.Quantile(0.99)) {
		t.Fatalf("quantiles diverge: %+v vs %v/%v", s, l.Quantile(0.50), l.Quantile(0.99))
	}
	if len(s.Buckets) == 0 {
		t.Fatal("histogram empty after observations")
	}
	var total uint64
	for _, n := range s.Buckets {
		total += n
	}
	if total != 5 {
		t.Fatalf("bucket mass %d != count 5", total)
	}
	// The snapshot is a copy: mutating the recorder afterwards must not
	// change it.
	l.Add(1 << 30)
	if s.Count != 5 {
		t.Fatal("snapshot aliases the recorder")
	}
	// And it must round-trip through JSON (the admin endpoint contract).
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back LatencySnapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count != s.Count || back.P99Ns != s.P99Ns || len(back.Buckets) != len(s.Buckets) {
		t.Fatalf("JSON round trip lost data: %+v vs %+v", back, s)
	}
}
