// Package trace records and replays the page-level I/O behaviour of the
// storage engine: fetch and evict events with changed-byte counts. Traces
// drive the IPL-vs-IPA comparison (paper Sec. 8.3 / Table 2): the same
// recorded OLTP trace is replayed on the In-Page Logging simulator and on
// the In-Place Appends model, exactly as the paper replayed Shore-MT
// traces on the original IPL simulator.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"ipa/internal/core"
)

// Kind of trace event.
type Kind uint8

const (
	// EvFetch is a logical page read from storage.
	EvFetch Kind = iota + 1
	// EvEvict is a dirty page leaving the buffer: Net/Gross carry the
	// changed byte counts since the last flush; New marks the first write
	// of a freshly allocated page.
	EvEvict
)

// Event is one trace entry.
type Event struct {
	Kind  Kind
	Page  core.PageID
	Net   uint16 // changed body bytes
	Gross uint16 // changed body+metadata bytes
	New   bool
}

// Trace is an in-memory event sequence.
type Trace struct {
	mu     sync.Mutex
	events []Event
}

// New creates an empty trace.
func New() *Trace { return &Trace{} }

// Append adds an event.
func (t *Trace) Append(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a snapshot of the recorded events.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Counts returns the number of fetches and evictions.
func (t *Trace) Counts() (fetches, evicts int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range t.events {
		switch e.Kind {
		case EvFetch:
			fetches++
		case EvEvict:
			evicts++
		}
	}
	return fetches, evicts
}

// RecordFetch implements the engine's trace sink for page reads.
func (t *Trace) RecordFetch(id core.PageID) {
	t.Append(Event{Kind: EvFetch, Page: id})
}

// RecordEvict implements the engine's trace sink for page writes.
func (t *Trace) RecordEvict(id core.PageID, net, gross int, isNew bool) {
	clamp := func(v int) uint16 {
		if v < 0 {
			return 0
		}
		if v > 0xFFFF {
			return 0xFFFF
		}
		return uint16(v)
	}
	t.Append(Event{Kind: EvEvict, Page: id, Net: clamp(net), Gross: clamp(gross), New: isNew})
}

// binary wire format: magic, count, then 14 bytes per event.
var magic = [4]byte{'I', 'P', 'A', 'T'}

// Save writes the trace in a compact binary format.
func (t *Trace) Save(w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(t.events)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [14]byte
	for _, e := range t.events {
		buf[0] = byte(e.Kind)
		if e.New {
			buf[1] = 1
		} else {
			buf[1] = 0
		}
		binary.LittleEndian.PutUint64(buf[2:], uint64(e.Page))
		binary.LittleEndian.PutUint16(buf[10:], e.Net)
		binary.LittleEndian.PutUint16(buf[12:], e.Gross)
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a trace saved by Save.
func Load(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, err
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(hdr[:])
	t := New()
	t.events = make([]Event, 0, n)
	var buf [14]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
		t.events = append(t.events, Event{
			Kind:  Kind(buf[0]),
			New:   buf[1] == 1,
			Page:  core.PageID(binary.LittleEndian.Uint64(buf[2:])),
			Net:   binary.LittleEndian.Uint16(buf[10:]),
			Gross: binary.LittleEndian.Uint16(buf[12:]),
		})
	}
	return t, nil
}
