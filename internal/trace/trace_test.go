package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"ipa/internal/core"
)

func TestRecordAndCounts(t *testing.T) {
	tr := New()
	tr.RecordFetch(1)
	tr.RecordFetch(2)
	tr.RecordEvict(1, 4, 14, false)
	tr.RecordEvict(3, 0, 0, true)
	if tr.Len() != 4 {
		t.Errorf("Len = %d", tr.Len())
	}
	f, e := tr.Counts()
	if f != 2 || e != 2 {
		t.Errorf("Counts = (%d, %d)", f, e)
	}
	ev := tr.Events()
	if ev[0].Kind != EvFetch || ev[0].Page != 1 {
		t.Errorf("event 0 = %+v", ev[0])
	}
	if ev[2].Net != 4 || ev[2].Gross != 14 || ev[2].New {
		t.Errorf("event 2 = %+v", ev[2])
	}
	if !ev[3].New {
		t.Errorf("event 3 = %+v", ev[3])
	}
}

func TestClamping(t *testing.T) {
	tr := New()
	tr.RecordEvict(1, -5, 1<<20, false)
	e := tr.Events()[0]
	if e.Net != 0 || e.Gross != 0xFFFF {
		t.Errorf("clamped event = %+v", e)
	}
}

func TestSaveLoadEmpty(t *testing.T) {
	tr := New()
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("Len = %d", got.Len())
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Truncated body.
	tr := New()
	tr.RecordFetch(1)
	var buf bytes.Buffer
	tr.Save(&buf)
	cut := buf.Bytes()[:buf.Len()-3]
	if _, err := Load(bytes.NewReader(cut)); err == nil {
		t.Error("truncated trace accepted")
	}
}

// Property: Save ∘ Load is the identity for any event sequence.
func TestPropertySaveLoadRoundTrip(t *testing.T) {
	f := func(pages []uint32, nets []uint16, kinds []bool) bool {
		tr := New()
		for i, p := range pages {
			var net uint16
			if i < len(nets) {
				net = nets[i]
			}
			isFetch := i < len(kinds) && kinds[i]
			if isFetch {
				tr.RecordFetch(core.PageID(p))
			} else {
				tr.RecordEvict(core.PageID(p), int(net), int(net)+10, net == 0)
			}
		}
		var buf bytes.Buffer
		if err := tr.Save(&buf); err != nil {
			return false
		}
		got, err := Load(&buf)
		if err != nil {
			return false
		}
		a, b := tr.Events(), got.Events()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
