package core

import (
	"math/rand"
	"testing"
)

// diffRef is the byte-wise reference implementation the word-scan kernels
// are checked against.
func diffRef(current, flushed []byte, isMeta, skip func(int) bool) ChangeSet {
	var cs ChangeSet
	for i := range current {
		if current[i] == flushed[i] {
			continue
		}
		if skip != nil && skip(i) {
			continue
		}
		p := Pair{Off: uint16(i), Val: current[i]}
		if isMeta != nil && isMeta(i) {
			cs.Meta = append(cs.Meta, p)
		} else {
			cs.Body = append(cs.Body, p)
		}
	}
	return cs
}

func pairsEqual(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// rangesFor mirrors a typical page split: [0,hdr) meta, [hdr,stl) body,
// [stl,das) meta, [das,n) skip. Degenerate boundaries collapse ranges.
func rangesFor(hdr, stl, das, n int) []ClassRange {
	var rs []ClassRange
	if hdr > 0 {
		rs = append(rs, ClassRange{Start: 0, End: hdr, Class: ClassMeta})
	}
	if stl > hdr {
		rs = append(rs, ClassRange{Start: hdr, End: stl, Class: ClassBody})
	}
	if das > stl {
		rs = append(rs, ClassRange{Start: stl, End: das, Class: ClassMeta})
	}
	if n > das {
		rs = append(rs, ClassRange{Start: das, End: n, Class: ClassSkip})
	}
	return rs
}

func closuresFor(hdr, stl, das int) (isMeta, skip func(int) bool) {
	isMeta = func(off int) bool { return off < hdr || (off >= stl && off < das) }
	skip = func(off int) bool { return off >= das }
	return
}

// checkAgainstRef diffs via Diff and DiffInto and compares both against
// the byte-wise reference.
func checkAgainstRef(t *testing.T, current, flushed []byte, hdr, stl, das int) {
	t.Helper()
	isMeta, skip := closuresFor(hdr, stl, das)
	want := diffRef(current, flushed, isMeta, skip)

	got, err := Diff(current, flushed, isMeta, skip)
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if !pairsEqual(got.Body, want.Body) || !pairsEqual(got.Meta, want.Meta) {
		t.Errorf("Diff mismatch: got body=%v meta=%v, want body=%v meta=%v",
			got.Body, got.Meta, want.Body, want.Meta)
	}

	var cs ChangeSet
	if err := DiffInto(&cs, current, flushed, rangesFor(hdr, stl, das, len(current))); err != nil {
		t.Fatalf("DiffInto: %v", err)
	}
	if !pairsEqual(cs.Body, want.Body) || !pairsEqual(cs.Meta, want.Meta) {
		t.Errorf("DiffInto mismatch: got body=%v meta=%v, want body=%v meta=%v",
			cs.Body, cs.Meta, want.Body, want.Meta)
	}
}

func TestDiffWordScanTails(t *testing.T) {
	// Sizes that are not a multiple of 8 exercise the partial tail word,
	// including sizes below one word.
	for _, n := range []int{1, 3, 7, 8, 9, 15, 16, 17, 23, 63, 100, 511, 513, 1000} {
		hdr := 0
		if n > 8 {
			hdr = 8
		}
		das := n // no skip area by default
		current := make([]byte, n)
		flushed := make([]byte, n)
		for i := range current {
			current[i] = byte(i * 7)
			flushed[i] = current[i]
		}
		// Change the very last byte (last partial word) and one byte in
		// the middle.
		current[n-1] ^= 0x40
		if n > 2 {
			current[n/2] ^= 0x01
		}
		checkAgainstRef(t, current, flushed, hdr, das, das)
	}
}

func TestDiffChangesStraddlingWordBoundary(t *testing.T) {
	n := 64
	current := make([]byte, n)
	flushed := make([]byte, n)
	for i := range current {
		current[i] = 0xAA
		flushed[i] = 0xAA
	}
	// A run of changed bytes crossing the word boundary at offset 8, one
	// crossing at 16, and one crossing the chunk-to-tail boundary of the
	// scan (here every boundary is within one chunk, which is fine).
	for _, off := range []int{6, 7, 8, 9, 15, 16, 31, 32, 33} {
		current[off] ^= 0xFF
	}
	checkAgainstRef(t, current, flushed, 4, 48, 56)
}

func TestDiffAllChangedAllClasses(t *testing.T) {
	n := 40
	current := make([]byte, n)
	flushed := make([]byte, n)
	for i := range current {
		current[i] = byte(i + 1) // differs from 0 everywhere
	}
	checkAgainstRef(t, current, flushed, 8, 24, 32)
}

func TestDiffFuzzAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(0x17A))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(2048)
		current := make([]byte, n)
		flushed := make([]byte, n)
		rng.Read(flushed)
		copy(current, flushed)
		// Sprinkle changes: sometimes sparse, sometimes dense runs.
		changes := rng.Intn(20)
		for c := 0; c < changes; c++ {
			if rng.Intn(4) == 0 {
				// A contiguous dirty run.
				start := rng.Intn(n)
				end := start + 1 + rng.Intn(32)
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					current[i] ^= byte(1 + rng.Intn(255))
				}
			} else {
				current[rng.Intn(n)] ^= byte(1 + rng.Intn(255))
			}
		}
		// Random class boundaries 0 ≤ hdr ≤ stl ≤ das ≤ n.
		hdr := rng.Intn(n + 1)
		stl := hdr + rng.Intn(n-hdr+1)
		das := stl + rng.Intn(n-stl+1)
		checkAgainstRef(t, current, flushed, hdr, stl, das)
	}
}

func TestDiffIntoRejectsUnsortedRanges(t *testing.T) {
	var cs ChangeSet
	bad := []ClassRange{{Start: 8, End: 16, Class: ClassBody}, {Start: 0, End: 8, Class: ClassMeta}}
	if err := DiffInto(&cs, make([]byte, 16), make([]byte, 16), bad); err == nil {
		t.Fatal("unsorted ranges accepted")
	}
}

func TestDiffIntoSizeMismatch(t *testing.T) {
	var cs ChangeSet
	if err := DiffInto(&cs, make([]byte, 16), make([]byte, 15), nil); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestDiffIntoReusesCapacity(t *testing.T) {
	current := make([]byte, 256)
	flushed := make([]byte, 256)
	current[10] = 1
	current[200] = 2
	var cs ChangeSet
	if err := DiffInto(&cs, current, flushed, nil); err != nil {
		t.Fatal(err)
	}
	if len(cs.Body) != 2 {
		t.Fatalf("body=%d, want 2", len(cs.Body))
	}
	firstBody := &cs.Body[0]
	if err := DiffInto(&cs, current, flushed, nil); err != nil {
		t.Fatal(err)
	}
	if &cs.Body[0] != firstBody {
		t.Error("DiffInto reallocated Body despite sufficient capacity")
	}
}

func TestDiffIntoUnchangedPageZeroAllocs(t *testing.T) {
	current := make([]byte, 4096)
	flushed := make([]byte, 4096)
	for i := range current {
		current[i] = byte(i)
		flushed[i] = byte(i)
	}
	ranges := rangesFor(40, 4000, 4050, 4096)
	var cs ChangeSet
	allocs := testing.AllocsPerRun(100, func() {
		if err := DiffInto(&cs, current, flushed, ranges); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("DiffInto on unchanged page: %.1f allocs/op, want 0", allocs)
	}
}

func TestDiffIntoSteadyStateZeroAllocs(t *testing.T) {
	// A page with changes still allocates nothing once the ChangeSet has
	// warmed its capacity.
	current := make([]byte, 4096)
	flushed := make([]byte, 4096)
	current[8] = 1    // meta
	current[100] = 2  // body
	current[4090] = 3 // skip
	ranges := rangesFor(40, 4000, 4050, 4096)
	var cs ChangeSet
	if err := DiffInto(&cs, current, flushed, ranges); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := DiffInto(&cs, current, flushed, ranges); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state DiffInto: %.1f allocs/op, want 0", allocs)
	}
}
