package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
)

// ChangeSet is the byte-level difference between the current logical image
// of a page and the image as of its last flush, split into body and
// metadata modifications as the paper's delta-record format requires.
type ChangeSet struct {
	Body []Pair
	Meta []Pair
}

// Empty reports whether nothing changed.
func (c ChangeSet) Empty() bool { return len(c.Body) == 0 && len(c.Meta) == 0 }

// BodyBytes is U in the paper: the number of changed body bytes.
func (c ChangeSet) BodyBytes() int { return len(c.Body) }

// MetaBytes is the number of changed metadata bytes.
func (c ChangeSet) MetaBytes() int { return len(c.Meta) }

// MetaClassifier decides whether a page offset belongs to page metadata
// (header/footer/slot table) rather than the tuple body.
type MetaClassifier func(off int) bool

// Class labels a run of page offsets for the diff fast path.
type Class uint8

const (
	// ClassBody routes changed bytes to ChangeSet.Body (the paper's U).
	ClassBody Class = iota
	// ClassMeta routes changed bytes to ChangeSet.Meta.
	ClassMeta
	// ClassSkip excludes the run from the diff entirely (the delta-record
	// area: the logical image keeps it erased, so it never diffs).
	ClassSkip
)

// ClassRange classifies the half-open offset run [Start, End). A page
// layout describes itself as a handful of such runs (header, tuple body,
// slot table, delta area), which lets the diff classify a changed offset
// with a cursor bump instead of two closure calls per byte.
type ClassRange struct {
	Start, End int
	Class      Class
}

// Diff computes the ChangeSet between two equal-length page images.
// Offsets for which skip returns true (e.g. the delta-record area itself)
// are ignored; isMeta routes each changed offset to Body or Meta.
//
// This is the flexible closure-driven entry point; the scan itself runs
// word-at-a-time and only consults the closures on bytes that actually
// changed, so unchanged regions cost one XOR per 8 bytes. Hot paths with
// a fixed layout should use DiffInto with ClassRanges instead.
func Diff(current, flushed []byte, isMeta MetaClassifier, skip func(off int) bool) (ChangeSet, error) {
	if len(current) != len(flushed) {
		return ChangeSet{}, fmt.Errorf("core: diff image sizes differ: %d vs %d", len(current), len(flushed))
	}
	var cs ChangeSet
	n := len(current)
	flushed = flushed[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		x := binary.LittleEndian.Uint64(current[i:]) ^ binary.LittleEndian.Uint64(flushed[i:])
		for x != 0 {
			k := bits.TrailingZeros64(x) >> 3
			x &^= uint64(0xFF) << (k * 8)
			off := i + k
			if skip != nil && skip(off) {
				continue
			}
			p := Pair{Off: uint16(off), Val: current[off]}
			if isMeta != nil && isMeta(off) {
				cs.Meta = append(cs.Meta, p)
			} else {
				cs.Body = append(cs.Body, p)
			}
		}
	}
	for ; i < n; i++ {
		if current[i] == flushed[i] {
			continue
		}
		if skip != nil && skip(i) {
			continue
		}
		p := Pair{Off: uint16(i), Val: current[i]}
		if isMeta != nil && isMeta(i) {
			cs.Meta = append(cs.Meta, p)
		} else {
			cs.Body = append(cs.Body, p)
		}
	}
	return cs, nil
}

// DiffInto computes the ChangeSet between two equal-length page images
// into cs, reusing its slices' capacity (a steady-state caller allocates
// nothing; a diff of an unchanged page is allocation-free from the first
// call). ranges classifies offsets and must be sorted ascending and
// non-overlapping; offsets not covered by any range are ClassBody,
// matching Diff's behaviour with nil closures.
//
// Unchanged runs are dismissed in two tiers: a vectorised equality check
// (bytes.Equal compiles to the runtime's SIMD memequal) skips whole
// chunks, then an 8-byte XOR scan skips equal words within an unequal
// chunk. Each changed byte is located with a trailing-zeros count and
// classified by a cursor that only moves forward, so classification is
// O(1) amortised and a diff of an unchanged page runs at memcmp speed.
func DiffInto(cs *ChangeSet, current, flushed []byte, ranges []ClassRange) error {
	if len(current) != len(flushed) {
		return fmt.Errorf("core: diff image sizes differ: %d vs %d", len(current), len(flushed))
	}
	for r := 1; r < len(ranges); r++ {
		if ranges[r].Start < ranges[r-1].End {
			return fmt.Errorf("core: class ranges unsorted at %d: [%d,%d) after [%d,%d)",
				r, ranges[r].Start, ranges[r].End, ranges[r-1].Start, ranges[r-1].End)
		}
	}
	cs.Body = cs.Body[:0]
	cs.Meta = cs.Meta[:0]
	n := len(current)
	flushed = flushed[:n]
	// Chunk size trades equality-check granularity against rescan width
	// when a chunk does differ; 512 amortises the call while keeping the
	// word-level rescan of a dirty chunk short.
	const chunk = 512
	r := 0
	i := 0
	for ; i+chunk <= n; i += chunk {
		if bytes.Equal(current[i:i+chunk], flushed[i:i+chunk]) {
			continue
		}
		r = cs.scanRange(ranges, r, current, flushed, i, i+chunk)
	}
	if i < n && !bytes.Equal(current[i:], flushed[i:]) {
		r = cs.scanRange(ranges, r, current, flushed, i, n)
	}
	return nil
}

// scanRange word-scans current[lo:hi] against flushed, appending every
// changed byte through the range cursor, and returns the advanced cursor.
func (cs *ChangeSet) scanRange(ranges []ClassRange, r int, current, flushed []byte, lo, hi int) int {
	i := lo
	for ; i+8 <= hi; i += 8 {
		x := binary.LittleEndian.Uint64(current[i:]) ^ binary.LittleEndian.Uint64(flushed[i:])
		for x != 0 {
			k := bits.TrailingZeros64(x) >> 3
			x &^= uint64(0xFF) << (k * 8)
			off := i + k
			r = cs.classify(ranges, r, off, current[off])
		}
	}
	for ; i < hi; i++ {
		if current[i] != flushed[i] {
			r = cs.classify(ranges, r, i, current[i])
		}
	}
	return r
}

// classify appends one changed byte according to the range cursor r and
// returns the advanced cursor. Offsets arrive in ascending order, so the
// cursor never rewinds.
func (cs *ChangeSet) classify(ranges []ClassRange, r, off int, val byte) int {
	for r < len(ranges) && off >= ranges[r].End {
		r++
	}
	c := ClassBody
	if r < len(ranges) && off >= ranges[r].Start {
		c = ranges[r].Class
	}
	switch c {
	case ClassBody:
		cs.Body = append(cs.Body, Pair{Off: uint16(off), Val: val})
	case ClassMeta:
		cs.Meta = append(cs.Meta, Pair{Off: uint16(off), Val: val})
	}
	return r
}

// Plan decides, per Section 6.2 of the paper, whether a change set can be
// absorbed as In-Place Appends given that the page already holds used of
// the scheme's N delta-records, and if so materialises the new records.
//
// The budget is Cp = (N − used)·M body bytes and (N − used)·V metadata
// bytes; ⌈U/M⌉ records are produced (at least enough to also cover the
// metadata pairs). ErrSchemeOverflow signals that the page must be written
// out-of-place instead.
func (s Scheme) Plan(cs ChangeSet, used int) ([]DeltaRecord, error) {
	if s.Disabled() {
		return nil, ErrSchemeOverflow
	}
	if used < 0 || used > s.N {
		return nil, fmt.Errorf("%w: used=%d of N=%d", ErrBadScheme, used, s.N)
	}
	if cs.Empty() {
		return nil, nil
	}
	free := s.N - used
	if free == 0 {
		return nil, ErrSchemeOverflow
	}
	need := (len(cs.Body) + s.M - 1) / s.M
	if s.V > 0 {
		if mn := (len(cs.Meta) + s.V - 1) / s.V; mn > need {
			need = mn
		}
	} else if len(cs.Meta) > 0 {
		return nil, ErrSchemeOverflow
	}
	if need == 0 {
		need = 1
	}
	if need > free {
		return nil, ErrSchemeOverflow
	}
	// Deterministic record contents: pairs in offset order.
	body := append([]Pair(nil), cs.Body...)
	meta := append([]Pair(nil), cs.Meta...)
	sort.Slice(body, func(i, j int) bool { return body[i].Off < body[j].Off })
	sort.Slice(meta, func(i, j int) bool { return meta[i].Off < meta[j].Off })

	recs := make([]DeltaRecord, need)
	for i := range recs {
		bLo, bHi := i*s.M, (i+1)*s.M
		if bLo > len(body) {
			bLo = len(body)
		}
		if bHi > len(body) {
			bHi = len(body)
		}
		mLo, mHi := i*s.V, (i+1)*s.V
		if mLo > len(meta) {
			mLo = len(meta)
		}
		if mHi > len(meta) {
			mHi = len(meta)
		}
		recs[i] = DeltaRecord{Body: body[bLo:bHi], Meta: meta[mLo:mHi]}
	}
	return recs, nil
}

// FitsBudget reports whether a change set of u body bytes and v metadata
// bytes could still be absorbed with used records already present. This is
// the cheap check the buffer manager runs while tracking updates (the
// paper's U ≤ Cp test) without materialising records.
func (s Scheme) FitsBudget(u, v, used int) bool {
	if s.Disabled() {
		return false
	}
	free := s.N - used
	if free <= 0 {
		return false
	}
	if u > free*s.M {
		return false
	}
	if v > free*s.V {
		return false
	}
	// The records needed for body and metadata changes overlap (each record
	// carries both), so the binding constraint is the max of the two.
	need := (u + s.M - 1) / s.M
	if s.V > 0 {
		if mn := (v + s.V - 1) / s.V; mn > need {
			need = mn
		}
	}
	if need == 0 {
		need = 1
	}
	return need <= free
}
