package core

import (
	"fmt"
	"sort"
)

// ChangeSet is the byte-level difference between the current logical image
// of a page and the image as of its last flush, split into body and
// metadata modifications as the paper's delta-record format requires.
type ChangeSet struct {
	Body []Pair
	Meta []Pair
}

// Empty reports whether nothing changed.
func (c ChangeSet) Empty() bool { return len(c.Body) == 0 && len(c.Meta) == 0 }

// BodyBytes is U in the paper: the number of changed body bytes.
func (c ChangeSet) BodyBytes() int { return len(c.Body) }

// MetaBytes is the number of changed metadata bytes.
func (c ChangeSet) MetaBytes() int { return len(c.Meta) }

// MetaClassifier decides whether a page offset belongs to page metadata
// (header/footer/slot table) rather than the tuple body.
type MetaClassifier func(off int) bool

// Diff computes the ChangeSet between two equal-length page images.
// Offsets for which skip returns true (e.g. the delta-record area itself)
// are ignored; isMeta routes each changed offset to Body or Meta.
func Diff(current, flushed []byte, isMeta MetaClassifier, skip func(off int) bool) (ChangeSet, error) {
	if len(current) != len(flushed) {
		return ChangeSet{}, fmt.Errorf("core: diff image sizes differ: %d vs %d", len(current), len(flushed))
	}
	var cs ChangeSet
	for i := range current {
		if current[i] == flushed[i] {
			continue
		}
		if skip != nil && skip(i) {
			continue
		}
		p := Pair{Off: uint16(i), Val: current[i]}
		if isMeta != nil && isMeta(i) {
			cs.Meta = append(cs.Meta, p)
		} else {
			cs.Body = append(cs.Body, p)
		}
	}
	return cs, nil
}

// Plan decides, per Section 6.2 of the paper, whether a change set can be
// absorbed as In-Place Appends given that the page already holds used of
// the scheme's N delta-records, and if so materialises the new records.
//
// The budget is Cp = (N − used)·M body bytes and (N − used)·V metadata
// bytes; ⌈U/M⌉ records are produced (at least enough to also cover the
// metadata pairs). ErrSchemeOverflow signals that the page must be written
// out-of-place instead.
func (s Scheme) Plan(cs ChangeSet, used int) ([]DeltaRecord, error) {
	if s.Disabled() {
		return nil, ErrSchemeOverflow
	}
	if used < 0 || used > s.N {
		return nil, fmt.Errorf("%w: used=%d of N=%d", ErrBadScheme, used, s.N)
	}
	if cs.Empty() {
		return nil, nil
	}
	free := s.N - used
	if free == 0 {
		return nil, ErrSchemeOverflow
	}
	need := (len(cs.Body) + s.M - 1) / s.M
	if s.V > 0 {
		if mn := (len(cs.Meta) + s.V - 1) / s.V; mn > need {
			need = mn
		}
	} else if len(cs.Meta) > 0 {
		return nil, ErrSchemeOverflow
	}
	if need == 0 {
		need = 1
	}
	if need > free {
		return nil, ErrSchemeOverflow
	}
	// Deterministic record contents: pairs in offset order.
	body := append([]Pair(nil), cs.Body...)
	meta := append([]Pair(nil), cs.Meta...)
	sort.Slice(body, func(i, j int) bool { return body[i].Off < body[j].Off })
	sort.Slice(meta, func(i, j int) bool { return meta[i].Off < meta[j].Off })

	recs := make([]DeltaRecord, need)
	for i := range recs {
		bLo, bHi := i*s.M, (i+1)*s.M
		if bLo > len(body) {
			bLo = len(body)
		}
		if bHi > len(body) {
			bHi = len(body)
		}
		mLo, mHi := i*s.V, (i+1)*s.V
		if mLo > len(meta) {
			mLo = len(meta)
		}
		if mHi > len(meta) {
			mHi = len(meta)
		}
		recs[i] = DeltaRecord{Body: body[bLo:bHi], Meta: meta[mLo:mHi]}
	}
	return recs, nil
}

// FitsBudget reports whether a change set of u body bytes and v metadata
// bytes could still be absorbed with used records already present. This is
// the cheap check the buffer manager runs while tracking updates (the
// paper's U ≤ Cp test) without materialising records.
func (s Scheme) FitsBudget(u, v, used int) bool {
	if s.Disabled() {
		return false
	}
	free := s.N - used
	if free <= 0 {
		return false
	}
	if u > free*s.M {
		return false
	}
	if v > free*s.V {
		return false
	}
	// The records needed for body and metadata changes overlap (each record
	// carries both), so the binding constraint is the max of the two.
	need := (u + s.M - 1) / s.M
	if s.V > 0 {
		if mn := (v + s.V - 1) / s.V; mn > need {
			need = mn
		}
	}
	if need == 0 {
		need = 1
	}
	return need <= free
}
