// Package core holds the heart of the In-Place Appends (IPA) approach from
// "From In-Place Updates to In-Place Appends: Revisiting Out-of-Place
// Updates on Flash" (SIGMOD 2017): the [N×M] scheme that sizes and controls
// the delta-record area of a database page, the wire format of
// delta-records, and the diff machinery that turns in-buffer page
// modifications into append-only delta-records.
//
// A delta-record captures the byte-granular changes applied to a database
// page since it was last flushed. Records are appended to a reserved area
// of the page (the delta-record area) and — crucially — programmed onto the
// very same physical flash page via ISPP, avoiding an out-of-place write.
package core

import (
	"errors"
	"fmt"
)

// PageID identifies a logical database page.
type PageID uint64

// InvalidPageID is the zero, never-allocated page id.
const InvalidPageID PageID = 0

// LSN is a log sequence number in the write-ahead log.
type LSN uint64

// RID addresses a tuple: page plus slot within the page.
type RID struct {
	Page PageID
	Slot uint16
}

func (r RID) String() string { return fmt.Sprintf("%d.%d", r.Page, r.Slot) }

// IsValid reports whether the RID points at an allocated page.
func (r RID) IsValid() bool { return r.Page != InvalidPageID }

// Common errors of the delta-record machinery.
var (
	// ErrSchemeOverflow is returned when a set of changes does not fit the
	// remaining delta-record budget of a page and therefore requires an
	// out-of-place write.
	ErrSchemeOverflow = errors.New("core: changes exceed [N×M] delta budget")
	// ErrCorruptDelta is returned when a delta-record cannot be decoded.
	ErrCorruptDelta = errors.New("core: corrupt delta-record")
	// ErrBadScheme is returned for invalid [N×M] parameters.
	ErrBadScheme = errors.New("core: invalid [N×M] scheme")
)

// Erased is the byte value of an erased flash cell (all charge removed).
// An empty delta-record slot is recognised by its control byte being
// Erased, which is exactly what an unprogrammed flash region reads as.
const Erased byte = 0xFF

// Scheme is the paper's [N×M] configuration controlling In-Place Appends.
//
//   - N: maximum number of delta-records a page can host between two
//     out-of-place writes (bounded by flash type: MLC tolerates 2-3 ISPP
//     re-programs per page, SLC more).
//   - M: maximum number of changed page-body bytes per delta-record.
//   - V: maximum number of changed page-metadata (header/footer) bytes
//     tracked per delta-record. The paper observes V ≤ 12 for Shore-MT
//     under OLTP workloads.
//
// The zero Scheme ([0×0]) disables IPA entirely: every eviction is an
// out-of-place page write, which is the paper's baseline configuration.
type Scheme struct {
	N int
	M int
	V int
}

// DefaultV is the metadata-byte budget the paper establishes for
// Shore-MT-style slotted pages under OLTP workloads.
const DefaultV = 12

// MaxM is the largest per-record body budget the paper considers
// realistic (LinkBench gross updates, Sec. 8.2).
const MaxM = 125

// NewScheme returns an [N×M] scheme with the paper's default V.
func NewScheme(n, m int) Scheme { return Scheme{N: n, M: m, V: DefaultV} }

// Disabled reports whether the scheme turns IPA off ([0×0]).
func (s Scheme) Disabled() bool { return s.N <= 0 || s.M <= 0 }

// Validate checks the scheme parameters against the format limits:
// offsets are 2 bytes (max 64KB pages), counts fit the control byte.
func (s Scheme) Validate() error {
	if s.Disabled() {
		return nil
	}
	if s.N < 0 || s.M < 0 || s.V < 0 {
		return fmt.Errorf("%w: negative parameter in [%d×%d] V=%d", ErrBadScheme, s.N, s.M, s.V)
	}
	if s.M > MaxM {
		return fmt.Errorf("%w: M=%d exceeds %d", ErrBadScheme, s.M, MaxM)
	}
	if s.V > MaxM {
		return fmt.Errorf("%w: V=%d exceeds %d", ErrBadScheme, s.V, MaxM)
	}
	if s.N > 64 {
		return fmt.Errorf("%w: N=%d exceeds 64", ErrBadScheme, s.N)
	}
	return nil
}

// RecordSize is the on-page size of one delta-record:
// 1 control byte + 3 bytes per body pair + 3 bytes per metadata pair.
func (s Scheme) RecordSize() int {
	if s.Disabled() {
		return 0
	}
	return 1 + 3*s.M + 3*s.V
}

// AreaSize is the reserved delta-record area per page: N × RecordSize.
func (s Scheme) AreaSize() int {
	if s.Disabled() {
		return 0
	}
	return s.N * s.RecordSize()
}

// SpaceOverhead is the fraction of a page of the given size consumed by
// the delta-record area (e.g. 0.022 for [2×3] on 4KB pages).
func (s Scheme) SpaceOverhead(pageSize int) float64 {
	if pageSize <= 0 {
		return 0
	}
	return float64(s.AreaSize()) / float64(pageSize)
}

func (s Scheme) String() string {
	if s.Disabled() {
		return "[0×0]"
	}
	return fmt.Sprintf("[%d×%d]", s.N, s.M)
}

// Pair is one <new_value, offset> modification: the byte at page offset
// Off is replaced by Val when the record is applied.
type Pair struct {
	Off uint16
	Val byte
}

// DeltaRecord is one decoded delta-record: up to M body pairs and up to V
// metadata pairs, applied in order on page fetch.
type DeltaRecord struct {
	Body []Pair // modifications within the page body
	Meta []Pair // modifications within page header/footer (metadata)
}

// Empty reports whether the record carries no modifications.
func (d DeltaRecord) Empty() bool { return len(d.Body) == 0 && len(d.Meta) == 0 }

// Encode serialises the record into dst, which must be exactly
// s.RecordSize() bytes. Unused pair slots are left in the erased state
// (0xFF) so the encoded record can be ISPP-programmed onto an erased
// delta-record slot without charge-decrease violations.
func (s Scheme) Encode(d DeltaRecord, dst []byte) error {
	if s.Disabled() {
		return fmt.Errorf("%w: encode on disabled scheme", ErrBadScheme)
	}
	if len(dst) != s.RecordSize() {
		return fmt.Errorf("%w: dst %d bytes, want %d", ErrBadScheme, len(dst), s.RecordSize())
	}
	if len(d.Body) > s.M {
		return fmt.Errorf("%w: %d body pairs exceed M=%d", ErrSchemeOverflow, len(d.Body), s.M)
	}
	if len(d.Meta) > s.V {
		return fmt.Errorf("%w: %d meta pairs exceed V=%d", ErrSchemeOverflow, len(d.Meta), s.V)
	}
	for i := range dst {
		dst[i] = Erased
	}
	// The control byte records the body-pair count; it must never collide
	// with the erased marker. Counts are ≤ MaxM (125) < 0xFF.
	dst[0] = byte(len(d.Body))
	pos := 1
	for _, p := range d.Body {
		dst[pos] = p.Val
		dst[pos+1] = byte(p.Off >> 8)
		dst[pos+2] = byte(p.Off)
		pos += 3
	}
	// Body region ends after M pairs regardless of how many were used.
	pos = 1 + 3*s.M
	for _, p := range d.Meta {
		dst[pos] = p.Val
		dst[pos+1] = byte(p.Off >> 8)
		dst[pos+2] = byte(p.Off)
		pos += 3
	}
	return nil
}

// SlotPresent reports whether an encoded delta slot holds a record, i.e.
// its control byte has been programmed.
func SlotPresent(slot []byte) bool { return len(slot) > 0 && slot[0] != Erased }

// Decode parses one encoded delta-record slot. An erased slot decodes to
// an empty record and present=false.
func (s Scheme) Decode(slot []byte) (d DeltaRecord, present bool, err error) {
	if len(slot) != s.RecordSize() {
		return DeltaRecord{}, false, fmt.Errorf("%w: slot %d bytes, want %d", ErrCorruptDelta, len(slot), s.RecordSize())
	}
	if !SlotPresent(slot) {
		return DeltaRecord{}, false, nil
	}
	n := int(slot[0])
	if n > s.M {
		return DeltaRecord{}, false, fmt.Errorf("%w: body count %d exceeds M=%d", ErrCorruptDelta, n, s.M)
	}
	d.Body = make([]Pair, 0, n)
	pos := 1
	for i := 0; i < n; i++ {
		d.Body = append(d.Body, Pair{
			Val: slot[pos],
			Off: uint16(slot[pos+1])<<8 | uint16(slot[pos+2]),
		})
		pos += 3
	}
	pos = 1 + 3*s.M
	for i := 0; i < s.V; i++ {
		off := uint16(slot[pos+1])<<8 | uint16(slot[pos+2])
		// An unused metadata pair is fully erased; 0xFFFF is not a legal
		// page offset for metadata (metadata lives at the page edges but a
		// 64KB page would place its last byte at 0xFFFF — we therefore
		// require the value byte to also be erased to treat it as absent).
		if off == 0xFFFF && slot[pos] == Erased {
			pos += 3
			continue
		}
		d.Meta = append(d.Meta, Pair{Val: slot[pos], Off: off})
		pos += 3
	}
	return d, true, nil
}

// Apply replays the record onto a page image, replacing changed bytes.
// Offsets beyond the image are reported as corruption.
func (d DeltaRecord) Apply(page []byte) error {
	for _, p := range d.Body {
		if int(p.Off) >= len(page) {
			return fmt.Errorf("%w: body offset %d beyond page size %d", ErrCorruptDelta, p.Off, len(page))
		}
		page[p.Off] = p.Val
	}
	for _, p := range d.Meta {
		if int(p.Off) >= len(page) {
			return fmt.Errorf("%w: meta offset %d beyond page size %d", ErrCorruptDelta, p.Off, len(page))
		}
		page[p.Off] = p.Val
	}
	return nil
}
