package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSchemeSizes(t *testing.T) {
	cases := []struct {
		s        Scheme
		record   int
		area     int
		overhead float64
	}{
		// The paper's worked example: [2×3], V=12 ⇒ record 46B, area 92B,
		// 2.2% of a 4KB page.
		{Scheme{N: 2, M: 3, V: 12}, 46, 92, 0.0224609375},
		{Scheme{N: 2, M: 4, V: 12}, 49, 98, 98.0 / 4096},
		{Scheme{N: 0, M: 0, V: 0}, 0, 0, 0},
		{Scheme{N: 3, M: 100, V: 12}, 337, 1011, 1011.0 / 4096},
	}
	for _, c := range cases {
		if got := c.s.RecordSize(); got != c.record {
			t.Errorf("%v RecordSize = %d, want %d", c.s, got, c.record)
		}
		if got := c.s.AreaSize(); got != c.area {
			t.Errorf("%v AreaSize = %d, want %d", c.s, got, c.area)
		}
		if got := c.s.SpaceOverhead(4096); got != c.overhead {
			t.Errorf("%v SpaceOverhead = %g, want %g", c.s, got, c.overhead)
		}
	}
}

func TestSchemeValidate(t *testing.T) {
	valid := []Scheme{NewScheme(2, 3), NewScheme(3, 125), {}, NewScheme(0, 0)}
	for _, s := range valid {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v, want nil", s, err)
		}
	}
	invalid := []Scheme{NewScheme(2, 126), NewScheme(65, 3), {N: 2, M: 3, V: 200}, {N: -1, M: 3, V: 1}}
	for _, s := range invalid {
		if s.Disabled() {
			continue
		}
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", s)
		}
	}
}

func TestSchemeString(t *testing.T) {
	if got := NewScheme(2, 3).String(); got != "[2×3]" {
		t.Errorf("String = %q", got)
	}
	if got := (Scheme{}).String(); got != "[0×0]" {
		t.Errorf("disabled String = %q", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := Scheme{N: 2, M: 3, V: 12}
	d := DeltaRecord{
		Body: []Pair{{Off: 100, Val: 9}, {Off: 101, Val: 0}},
		Meta: []Pair{{Off: 8, Val: 10}, {Off: 4095, Val: 0xFE}},
	}
	buf := make([]byte, s.RecordSize())
	if err := s.Encode(d, buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, present, err := s.Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !present {
		t.Fatal("Decode: record not present")
	}
	if len(got.Body) != len(d.Body) || len(got.Meta) != len(d.Meta) {
		t.Fatalf("Decode lengths body=%d meta=%d", len(got.Body), len(got.Meta))
	}
	for i, p := range d.Body {
		if got.Body[i] != p {
			t.Errorf("body[%d] = %+v, want %+v", i, got.Body[i], p)
		}
	}
	for i, p := range d.Meta {
		if got.Meta[i] != p {
			t.Errorf("meta[%d] = %+v, want %+v", i, got.Meta[i], p)
		}
	}
}

func TestDecodeErasedSlot(t *testing.T) {
	s := Scheme{N: 2, M: 3, V: 12}
	slot := bytes.Repeat([]byte{Erased}, s.RecordSize())
	_, present, err := s.Decode(slot)
	if err != nil {
		t.Fatalf("Decode erased: %v", err)
	}
	if present {
		t.Fatal("erased slot decoded as present")
	}
	if SlotPresent(slot) {
		t.Fatal("SlotPresent(erased) = true")
	}
}

func TestEncodeRejectsOverflow(t *testing.T) {
	s := Scheme{N: 1, M: 2, V: 1}
	buf := make([]byte, s.RecordSize())
	d := DeltaRecord{Body: []Pair{{1, 1}, {2, 2}, {3, 3}}}
	if err := s.Encode(d, buf); err == nil {
		t.Error("Encode accepted 3 body pairs with M=2")
	}
	d = DeltaRecord{Meta: []Pair{{1, 1}, {2, 2}}}
	if err := s.Encode(d, buf); err == nil {
		t.Error("Encode accepted 2 meta pairs with V=1")
	}
}

func TestEncodedRecordIsISPPProgrammable(t *testing.T) {
	// Programming onto an erased region only clears bits; therefore any
	// encoded record must be writable over 0xFF. Trivially true, but the
	// converse matters: every *unused* byte must remain 0xFF so a later
	// Correct-and-Refresh style re-program of the same record is legal.
	s := Scheme{N: 2, M: 5, V: 3}
	d := DeltaRecord{Body: []Pair{{Off: 7, Val: 0x55}}}
	buf := make([]byte, s.RecordSize())
	if err := s.Encode(d, buf); err != nil {
		t.Fatal(err)
	}
	// control + one pair = 4 bytes programmed, rest erased.
	for i := 4; i < 1+3*s.M; i++ {
		if buf[i] != Erased {
			t.Errorf("unused body byte %d = %#x, want erased", i, buf[i])
		}
	}
	for i := 1 + 3*s.M; i < len(buf); i++ {
		if buf[i] != Erased {
			t.Errorf("unused meta byte %d = %#x, want erased", i, buf[i])
		}
	}
}

func TestApply(t *testing.T) {
	page := make([]byte, 64)
	d := DeltaRecord{
		Body: []Pair{{Off: 10, Val: 0xAA}},
		Meta: []Pair{{Off: 0, Val: 0x01}},
	}
	if err := d.Apply(page); err != nil {
		t.Fatal(err)
	}
	if page[10] != 0xAA || page[0] != 0x01 {
		t.Errorf("apply result page[10]=%#x page[0]=%#x", page[10], page[0])
	}
	bad := DeltaRecord{Body: []Pair{{Off: 64, Val: 1}}}
	if err := bad.Apply(page); err == nil {
		t.Error("Apply accepted out-of-range offset")
	}
}

func TestDiffSplitsBodyAndMeta(t *testing.T) {
	flushed := make([]byte, 32)
	current := make([]byte, 32)
	copy(current, flushed)
	current[2] = 1  // meta (header)
	current[20] = 2 // body
	current[30] = 3 // skipped (delta area)
	isMeta := func(off int) bool { return off < 8 }
	skip := func(off int) bool { return off >= 28 }
	cs, err := Diff(current, flushed, isMeta, skip)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Meta) != 1 || cs.Meta[0] != (Pair{Off: 2, Val: 1}) {
		t.Errorf("meta = %+v", cs.Meta)
	}
	if len(cs.Body) != 1 || cs.Body[0] != (Pair{Off: 20, Val: 2}) {
		t.Errorf("body = %+v", cs.Body)
	}
}

func TestDiffSizeMismatch(t *testing.T) {
	if _, err := Diff(make([]byte, 4), make([]byte, 8), nil, nil); err == nil {
		t.Error("Diff accepted mismatched sizes")
	}
}

func TestPlanSingleRecord(t *testing.T) {
	s := Scheme{N: 2, M: 3, V: 12}
	cs := ChangeSet{
		Body: []Pair{{Off: 300, Val: 3}, {Off: 100, Val: 1}},
		Meta: []Pair{{Off: 8, Val: 10}},
	}
	recs, err := s.Plan(cs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	// Pairs must come out sorted by offset.
	if recs[0].Body[0].Off != 100 || recs[0].Body[1].Off != 300 {
		t.Errorf("body pairs not sorted: %+v", recs[0].Body)
	}
}

func TestPlanMultiRecord(t *testing.T) {
	s := Scheme{N: 3, M: 2, V: 12}
	cs := ChangeSet{Body: []Pair{{1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}}}
	recs, err := s.Plan(cs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 { // ceil(5/2)
		t.Fatalf("got %d records, want 3", len(recs))
	}
	total := 0
	for _, r := range recs {
		total += len(r.Body)
	}
	if total != 5 {
		t.Errorf("records carry %d body pairs, want 5", total)
	}
}

func TestPlanOverflow(t *testing.T) {
	s := Scheme{N: 2, M: 3, V: 2}
	// 7 body bytes > N*M = 6.
	cs := ChangeSet{Body: make([]Pair, 7)}
	if _, err := s.Plan(cs, 0); err != ErrSchemeOverflow {
		t.Errorf("Plan = %v, want ErrSchemeOverflow", err)
	}
	// Fits body budget, but page already holds 2 records.
	cs = ChangeSet{Body: make([]Pair, 1)}
	if _, err := s.Plan(cs, 2); err != ErrSchemeOverflow {
		t.Errorf("Plan full page = %v, want ErrSchemeOverflow", err)
	}
	// Metadata exceeding (N-used)*V.
	cs = ChangeSet{Meta: make([]Pair, 5)}
	if _, err := s.Plan(cs, 0); err != ErrSchemeOverflow {
		t.Errorf("Plan meta overflow = %v, want ErrSchemeOverflow", err)
	}
}

func TestPlanMetadataOnlyChange(t *testing.T) {
	// A PageLSN-only change (e.g. commit of a logically-undone tx) must
	// still be absorbable.
	s := Scheme{N: 2, M: 3, V: 12}
	cs := ChangeSet{Meta: []Pair{{Off: 8, Val: 1}}}
	recs, err := s.Plan(cs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || len(recs[0].Body) != 0 || len(recs[0].Meta) != 1 {
		t.Errorf("records = %+v", recs)
	}
}

func TestPlanDisabledScheme(t *testing.T) {
	var s Scheme
	if _, err := s.Plan(ChangeSet{Body: []Pair{{1, 1}}}, 0); err != ErrSchemeOverflow {
		t.Errorf("disabled Plan = %v, want ErrSchemeOverflow", err)
	}
}

func TestFitsBudget(t *testing.T) {
	s := Scheme{N: 2, M: 3, V: 12}
	cases := []struct {
		u, v, used int
		want       bool
	}{
		{3, 12, 0, true},
		{6, 24, 0, true},
		{7, 0, 0, false},
		{6, 25, 0, false},
		{3, 12, 1, true},
		{4, 0, 1, false},
		{1, 1, 2, false},
		{0, 1, 1, true},
	}
	for _, c := range cases {
		if got := s.FitsBudget(c.u, c.v, c.used); got != c.want {
			t.Errorf("FitsBudget(%d,%d,%d) = %v, want %v", c.u, c.v, c.used, got, c.want)
		}
	}
	if (Scheme{}).FitsBudget(0, 0, 0) {
		t.Error("disabled scheme FitsBudget = true")
	}
}

// Property: Plan ∘ Encode ∘ Decode ∘ Apply reconstructs the current image
// from the flushed image for any random small modification set that fits
// the budget.
func TestPropertyDiffPlanApplyRoundTrip(t *testing.T) {
	s := Scheme{N: 3, M: 8, V: 12}
	const pageSize = 512
	metaEnd := 16
	deltaStart := pageSize - s.AreaSize()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		flushed := make([]byte, pageSize)
		rng.Read(flushed)
		// Keep the delta area erased as the page layout maintains it.
		for i := deltaStart; i < pageSize; i++ {
			flushed[i] = Erased
		}
		current := append([]byte(nil), flushed...)
		nChanges := rng.Intn(s.N*s.M + 1)
		for i := 0; i < nChanges; i++ {
			off := rng.Intn(deltaStart)
			current[off] = byte(rng.Intn(256))
		}
		isMeta := func(off int) bool { return off < metaEnd }
		skip := func(off int) bool { return off >= deltaStart }
		cs, err := Diff(current, flushed, isMeta, skip)
		if err != nil {
			return false
		}
		if len(cs.Meta) > s.N*s.V {
			return true // legitimately un-plannable; not this property's concern
		}
		recs, err := s.Plan(cs, 0)
		if err == ErrSchemeOverflow {
			return len(cs.Body) > s.N*s.M || len(cs.Meta) > s.N*s.V ||
				!s.FitsBudget(len(cs.Body), len(cs.Meta), 0)
		}
		if err != nil {
			return false
		}
		// Encode every record, decode it back, apply onto flushed copy.
		rebuilt := append([]byte(nil), flushed...)
		for _, r := range recs {
			buf := make([]byte, s.RecordSize())
			if err := s.Encode(r, buf); err != nil {
				return false
			}
			dec, present, err := s.Decode(buf)
			if err != nil || !present {
				return false
			}
			if err := dec.Apply(rebuilt); err != nil {
				return false
			}
		}
		return bytes.Equal(rebuilt, current)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: FitsBudget agrees with Plan for arbitrary u, v, used.
func TestPropertyFitsBudgetMatchesPlan(t *testing.T) {
	f := func(n, m, v, u, vv, used uint8) bool {
		s := Scheme{N: int(n%5) + 1, M: int(m%10) + 1, V: int(v % 13)}
		usedN := int(used) % (s.N + 1)
		cs := ChangeSet{Body: make([]Pair, int(u)%40), Meta: make([]Pair, int(vv)%40)}
		if cs.Empty() {
			return true
		}
		for i := range cs.Body {
			cs.Body[i] = Pair{Off: uint16(i), Val: 1}
		}
		for i := range cs.Meta {
			cs.Meta[i] = Pair{Off: uint16(100 + i), Val: 1}
		}
		_, err := s.Plan(cs, usedN)
		fits := s.FitsBudget(len(cs.Body), len(cs.Meta), usedN)
		if err == nil {
			return fits
		}
		if err == ErrSchemeOverflow {
			return !fits
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRIDString(t *testing.T) {
	r := RID{Page: 42, Slot: 7}
	if r.String() != "42.7" {
		t.Errorf("String = %q", r.String())
	}
	if !r.IsValid() {
		t.Error("valid RID reported invalid")
	}
	if (RID{}).IsValid() {
		t.Error("zero RID reported valid")
	}
}
