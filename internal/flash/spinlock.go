package flash

import (
	"runtime"
	"sync/atomic"
)

// chipLock is a test-and-test-and-set spinlock with yield backoff. Chip
// shard critical sections are tiny — a charge-rule scan plus a small
// copy, tens of nanoseconds — so parking a goroutine in a futex is never
// the right outcome and the unlock side of a full mutex (an atomic
// add/CAS) costs as much as the work it protects. A spinlock's unlock is
// a plain atomic store, which roughly halves the per-operation locking
// tax on the device hot path. The longest hold is a block-erase fill
// (a few µs on large geometries); the backoff yields the processor after
// a burst of failed probes so waiters degrade to cooperative scheduling
// rather than burning a core.
type chipLock struct {
	v atomic.Uint32
}

func (l *chipLock) Lock() {
	if l.v.CompareAndSwap(0, 1) {
		return
	}
	l.lockSlow()
}

func (l *chipLock) lockSlow() {
	for spins := 0; ; {
		if l.v.Load() == 0 && l.v.CompareAndSwap(0, 1) {
			return
		}
		spins++
		if spins >= 16 {
			spins = 0
			runtime.Gosched()
		}
	}
}

func (l *chipLock) Unlock() {
	l.v.Store(0)
}
