package flash

import "encoding/binary"

// This file holds the word-at-a-time kernels of the device hot path. The
// simulated array is bit-accurate, so every program validates the ISPP
// charge rule (1→0 transitions only) against the stored image — on the
// legal fast path that is a pure scan, and scanning 8 bytes per compare
// instead of 1 is what keeps a software flash model from taxing the very
// measurements it exists for.

// log2Exact returns log2(n) when n is a positive power of two, else -1.
func log2Exact(n int) int {
	if n <= 0 || n&(n-1) != 0 {
		return -1
	}
	s := 0
	for n > 1 {
		n >>= 1
		s++
	}
	return s
}

// erasedChunk is a ready-made run of erased cells; erase fills copy from
// it block-wise (memmove) instead of storing byte-by-byte.
var erasedChunk [4096]byte

func init() {
	for i := range erasedChunk {
		erasedChunk[i] = 0xFF
	}
}

// fillErased sets every byte of b to the erased state (0xFF).
func fillErased(b []byte) {
	for len(b) > 0 {
		b = b[copy(b, erasedChunk[:]):]
	}
}

// chargeViolation scans a proposed program image against the stored one
// and returns the index of the first byte whose programming would need a
// 0→1 bit transition (a charge decrease, which only an erase can do), or
// -1 if the whole write is legal. old and new must be the same length;
// the caller slices both to the programmed range.
//
// A bit set in new but clear in old violates the rule, i.e.
// new &^ old != 0. The scan runs 8 bytes at a time; only when a word
// trips does it narrow down to the exact byte for the error message.
func chargeViolation(old, new []byte) int {
	n := len(new)
	old = old[:n] // one bounds relation for the compiler to elide checks
	i := 0
	// 16 bytes per branch: two word compares folded into one test.
	for ; i+16 <= n; i += 16 {
		v := binary.LittleEndian.Uint64(new[i:]) &^ binary.LittleEndian.Uint64(old[i:])
		v |= binary.LittleEndian.Uint64(new[i+8:]) &^ binary.LittleEndian.Uint64(old[i+8:])
		if v != 0 {
			return firstViolation(old, new, i)
		}
	}
	if i == n {
		return -1
	}
	if n >= 16 {
		// Re-check the last 16 bytes as two (overlapping) words; bytes
		// before i were already proven legal, so any hit lies in the tail.
		t := n - 16
		v := binary.LittleEndian.Uint64(new[t:]) &^ binary.LittleEndian.Uint64(old[t:])
		v |= binary.LittleEndian.Uint64(new[t+8:]) &^ binary.LittleEndian.Uint64(old[t+8:])
		if v != 0 {
			return firstViolation(old, new, i)
		}
		return -1
	}
	if n >= 8 {
		v := binary.LittleEndian.Uint64(new) &^ binary.LittleEndian.Uint64(old)
		t := n - 8
		v |= binary.LittleEndian.Uint64(new[t:]) &^ binary.LittleEndian.Uint64(old[t:])
		if v != 0 {
			return firstViolation(old, new, 0)
		}
		return -1
	}
	return firstViolationOrNone(old, new, i)
}

// firstViolation narrows a tripped word down to the exact byte (the slow
// path only runs when the program is rejected anyway).
func firstViolation(old, new []byte, from int) int {
	for j := from; ; j++ {
		if new[j]&^old[j] != 0 {
			return j
		}
	}
}

func firstViolationOrNone(old, new []byte, from int) int {
	for j := from; j < len(new); j++ {
		if new[j]&^old[j] != 0 {
			return j
		}
	}
	return -1
}
