package flash

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"ipa/internal/sim"
)

func testGeom(cell CellType) Geometry {
	return Geometry{
		Chips:         2,
		BlocksPerChip: 4,
		PagesPerBlock: 8,
		PageSize:      256,
		OOBSize:       16,
		Cell:          cell,
	}
}

func newTestArray(t *testing.T, cell CellType) *Array {
	t.Helper()
	cfg := Config{Geometry: testGeom(cell), Timing: SLCTiming(), StrictProgramOrder: true}
	a, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestGeometryValidate(t *testing.T) {
	g := testGeom(SLC)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Geometry{
		{},
		{Chips: 1, BlocksPerChip: 1, PagesPerBlock: 3, PageSize: 256, Cell: MLC},
		{Chips: 1, BlocksPerChip: 1, PagesPerBlock: 4, PageSize: 0},
		{Chips: 1, BlocksPerChip: 1, PagesPerBlock: 4, PageSize: 256, OOBSize: -1},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: invalid geometry accepted", i)
		}
	}
}

func TestGeometryAddressing(t *testing.T) {
	g := testGeom(SLC)
	if g.TotalPages() != 2*4*8 {
		t.Errorf("TotalPages = %d", g.TotalPages())
	}
	if g.TotalBlocks() != 8 {
		t.Errorf("TotalBlocks = %d", g.TotalBlocks())
	}
	if g.Capacity() != int64(64*256) {
		t.Errorf("Capacity = %d", g.Capacity())
	}
	p := PPN(35) // chip 1, block 4, page 3
	if g.ChipOf(p) != 1 {
		t.Errorf("ChipOf = %d", g.ChipOf(p))
	}
	if g.BlockOf(p) != 4 {
		t.Errorf("BlockOf = %d", g.BlockOf(p))
	}
	if g.PageInBlock(p) != 3 {
		t.Errorf("PageInBlock = %d", g.PageInBlock(p))
	}
	if g.FirstPageOfBlock(4) != 32 {
		t.Errorf("FirstPageOfBlock = %d", g.FirstPageOfBlock(4))
	}
}

func TestLSBMapping(t *testing.T) {
	slc := testGeom(SLC)
	for p := PPN(0); p < 8; p++ {
		if !slc.IsLSB(p) {
			t.Errorf("SLC page %d not LSB", p)
		}
	}
	mlc := testGeom(MLC)
	lsb := 0
	for p := PPN(0); p < PPN(mlc.TotalPages()); p++ {
		if mlc.IsLSB(p) {
			lsb++
		}
	}
	if lsb != mlc.TotalPages()/2 {
		t.Errorf("MLC LSB pages = %d, want half of %d", lsb, mlc.TotalPages())
	}
	if mlc.WordlineOf(0) != 0 || mlc.WordlineOf(1) != 0 || mlc.WordlineOf(2) != 1 {
		t.Error("wordline pairing wrong")
	}
}

func TestFreshDeviceReadsErased(t *testing.T) {
	a := newTestArray(t, SLC)
	data, oob, _, err := a.Read(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range data {
		if b != 0xFF {
			t.Fatal("fresh page not erased")
		}
	}
	for _, b := range oob {
		if b != 0xFF {
			t.Fatal("fresh OOB not erased")
		}
	}
	if !a.IsErased(0) {
		t.Error("IsErased = false on fresh page")
	}
}

func TestProgramReadBack(t *testing.T) {
	a := newTestArray(t, SLC)
	want := bytes.Repeat([]byte{0xA5}, 256)
	oobWant := bytes.Repeat([]byte{0x3C}, 16)
	if _, err := a.Program(nil, 5, want, oobWant); err != nil {
		t.Fatal(err)
	}
	data, oob, _, err := a.Read(nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want) {
		t.Error("data mismatch")
	}
	if !bytes.Equal(oob, oobWant) {
		t.Error("oob mismatch")
	}
	if a.IsErased(5) {
		t.Error("programmed page reported erased")
	}
}

func TestProgramTwiceFails(t *testing.T) {
	a := newTestArray(t, SLC)
	page := make([]byte, 256)
	if _, err := a.Program(nil, 0, page, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Program(nil, 0, page, nil); !errors.Is(err, ErrNotErased) {
		t.Errorf("second program: %v, want ErrNotErased", err)
	}
}

func TestProgramOrderEnforced(t *testing.T) {
	a := newTestArray(t, MLC)
	page := make([]byte, 256)
	if _, err := a.Program(nil, 3, page, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Program(nil, 1, page, nil); !errors.Is(err, ErrProgramOrder) {
		t.Errorf("out-of-order program: %v, want ErrProgramOrder", err)
	}
	// A different block is unaffected.
	if _, err := a.Program(nil, 8, page, nil); err != nil {
		t.Errorf("other block: %v", err)
	}
}

func TestProgramDeltaAppendsToErasedRegion(t *testing.T) {
	a := newTestArray(t, SLC)
	page := bytes.Repeat([]byte{0xFF}, 256)
	copy(page, []byte("original body"))
	// Delta area [200,256) stays erased in the initial program.
	if _, err := a.Program(nil, 0, page, nil); err != nil {
		t.Fatal(err)
	}
	delta := []byte{0x12, 0x34}
	if _, err := a.ProgramDelta(nil, 0, 200, delta, 0, nil); err != nil {
		t.Fatal(err)
	}
	data, _, _, err := a.Read(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if data[200] != 0x12 || data[201] != 0x34 {
		t.Errorf("delta not readable: %#x %#x", data[200], data[201])
	}
	if !bytes.Equal(data[:13], []byte("original body")) {
		t.Error("body disturbed by delta program")
	}
	if a.Appends(0) != 1 {
		t.Errorf("Appends = %d", a.Appends(0))
	}
}

func TestProgramDeltaInitialPartialProgram(t *testing.T) {
	a := newTestArray(t, SLC)
	// A delta into a fully erased page is a legal initial partial program:
	// the page leaves the erased population and MLC/strict program order
	// advances exactly as for Program.
	if _, err := a.ProgramDelta(nil, 2, 0, []byte{0x12, 0x34}, 0, nil); err != nil {
		t.Fatal(err)
	}
	if a.IsErased(2) {
		t.Error("partially programmed page still reported erased")
	}
	data, _, _, err := a.Read(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 0x12 || data[1] != 0x34 {
		t.Errorf("delta not readable: %#x %#x", data[0], data[1])
	}
	for _, b := range data[2:] {
		if b != 0xFF {
			t.Fatal("rest of page disturbed")
		}
	}
	if a.Appends(2) != 1 {
		t.Errorf("Appends = %d", a.Appends(2))
	}
	// Strict program order: an initial partial program to an earlier page
	// of the same block is now out of order...
	if _, err := a.ProgramDelta(nil, 1, 0, []byte{0x01}, 0, nil); !errors.Is(err, ErrProgramOrder) {
		t.Errorf("out-of-order initial delta: %v, want ErrProgramOrder", err)
	}
	// ...and so is a full program.
	if _, err := a.Program(nil, 1, make([]byte, 256), nil); !errors.Is(err, ErrProgramOrder) {
		t.Errorf("out-of-order program after delta: %v, want ErrProgramOrder", err)
	}
	// A later page is fine, and further appends to the partial page do not
	// advance the order cursor again.
	if _, err := a.ProgramDelta(nil, 2, 2, []byte{0x56}, 0, nil); err != nil {
		t.Errorf("second append to partial page: %v", err)
	}
	if _, err := a.Program(nil, 3, make([]byte, 256), nil); err != nil {
		t.Errorf("next page program: %v", err)
	}
}

func TestProgramDeltaRejectsChargeDecrease(t *testing.T) {
	a := newTestArray(t, SLC)
	page := make([]byte, 256) // all zero: every cell fully charged
	if _, err := a.Program(nil, 0, page, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ProgramDelta(nil, 0, 10, []byte{0x01}, 0, nil); !errors.Is(err, ErrBitIncrease) {
		t.Errorf("charge-decrease delta: %v, want ErrBitIncrease", err)
	}
	// The failed program must not have written anything.
	data, _, _, _ := a.Read(nil, 0)
	if data[10] != 0 {
		t.Error("failed delta partially applied")
	}
}

func TestProgramDeltaSubsetOverwriteAllowed(t *testing.T) {
	// Correct-and-Refresh style: re-programming identical or
	// charge-increasing data is legal.
	a := newTestArray(t, SLC)
	page := bytes.Repeat([]byte{0xFF}, 256)
	page[0] = 0xF0
	if _, err := a.Program(nil, 0, page, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ProgramDelta(nil, 0, 0, []byte{0xF0}, 0, nil); err != nil {
		t.Errorf("identity reprogram: %v", err)
	}
	if _, err := a.ProgramDelta(nil, 0, 0, []byte{0x30}, 0, nil); err != nil {
		t.Errorf("subset reprogram: %v", err)
	}
	data, _, _, _ := a.Read(nil, 0)
	if data[0] != 0x30 {
		t.Errorf("byte = %#x, want 0x30", data[0])
	}
}

func TestProgramDeltaMSBRejected(t *testing.T) {
	a := newTestArray(t, MLC)
	page := bytes.Repeat([]byte{0xFF}, 256)
	if _, err := a.Program(nil, 0, page, nil); err != nil { // LSB
		t.Fatal(err)
	}
	if _, err := a.Program(nil, 1, page, nil); err != nil { // MSB
		t.Fatal(err)
	}
	if _, err := a.ProgramDelta(nil, 0, 0, []byte{0x00}, 0, nil); err != nil {
		t.Errorf("LSB delta: %v", err)
	}
	if _, err := a.ProgramDelta(nil, 1, 0, []byte{0x00}, 0, nil); !errors.Is(err, ErrMSBAppend) {
		t.Errorf("MSB delta: %v, want ErrMSBAppend", err)
	}
}

func TestProgramDeltaAppendLimit(t *testing.T) {
	cfg := Config{Geometry: testGeom(SLC), Timing: SLCTiming(), MaxAppends: 2}
	a, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	page := bytes.Repeat([]byte{0xFF}, 256)
	if _, err := a.Program(nil, 0, page, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := a.ProgramDelta(nil, 0, i, []byte{0x00}, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.ProgramDelta(nil, 0, 5, []byte{0x00}, 0, nil); !errors.Is(err, ErrAppendLimit) {
		t.Errorf("third append: %v, want ErrAppendLimit", err)
	}
}

func TestProgramDeltaOOB(t *testing.T) {
	a := newTestArray(t, SLC)
	page := bytes.Repeat([]byte{0xFF}, 256)
	if _, err := a.Program(nil, 0, page, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ProgramDelta(nil, 0, 0, nil, 4, []byte{0xAB}); err != nil {
		t.Fatal(err)
	}
	_, oob, _, _ := a.Read(nil, 0)
	if oob[4] != 0xAB {
		t.Errorf("oob[4] = %#x", oob[4])
	}
}

func TestEraseResetsBlockAndCountsWear(t *testing.T) {
	a := newTestArray(t, SLC)
	page := make([]byte, 256)
	for p := PPN(0); p < 8; p++ {
		if _, err := a.Program(nil, p, page, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Erase(nil, 0); err != nil {
		t.Fatal(err)
	}
	for p := PPN(0); p < 8; p++ {
		if !a.IsErased(p) {
			t.Errorf("page %d not erased", p)
		}
		data, _, _, _ := a.Read(nil, p)
		for _, b := range data {
			if b != 0xFF {
				t.Fatalf("page %d holds data after erase", p)
			}
		}
	}
	if a.EraseCount(0) != 1 {
		t.Errorf("EraseCount = %d", a.EraseCount(0))
	}
	// Programming page 0 again must now succeed (order counter reset).
	if _, err := a.Program(nil, 0, page, nil); err != nil {
		t.Errorf("program after erase: %v", err)
	}
	if a.MaxEraseCount() != 1 {
		t.Errorf("MaxEraseCount = %d", a.MaxEraseCount())
	}
}

func TestEraseWornOut(t *testing.T) {
	cfg := Config{Geometry: testGeom(SLC), Timing: SLCTiming(), Endurance: 2}
	a, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := a.Erase(nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Erase(nil, 0); !errors.Is(err, ErrWornOut) {
		t.Errorf("erase past endurance: %v, want ErrWornOut", err)
	}
}

func TestStatsCounting(t *testing.T) {
	a := newTestArray(t, SLC)
	page := bytes.Repeat([]byte{0xFF}, 256)
	a.Program(nil, 0, page, nil)
	a.ProgramDelta(nil, 0, 0, []byte{0x00}, 0, nil)
	a.Read(nil, 0)
	a.Erase(nil, 0)
	s := a.Stats()
	if s.Programs != 1 || s.DeltaPrograms != 1 || s.Reads != 1 || s.Erases != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.BytesWritten != 256+1 {
		t.Errorf("BytesWritten = %d", s.BytesWritten)
	}
	a.ResetStats()
	if a.Stats() != (Stats{}) {
		t.Error("ResetStats did not zero counters")
	}
}

func TestBoundsChecks(t *testing.T) {
	a := newTestArray(t, SLC)
	if _, _, _, err := a.Read(nil, PPN(1<<20)); !errors.Is(err, ErrBounds) {
		t.Errorf("read OOB ppn: %v", err)
	}
	if _, err := a.Program(nil, 0, make([]byte, 10), nil); !errors.Is(err, ErrBounds) {
		t.Errorf("short program: %v", err)
	}
	if _, err := a.Erase(nil, 99); !errors.Is(err, ErrBounds) {
		t.Errorf("erase OOB block: %v", err)
	}
	page := bytes.Repeat([]byte{0xFF}, 256)
	a.Program(nil, 0, page, nil)
	if _, err := a.ProgramDelta(nil, 0, 250, make([]byte, 10), 0, nil); !errors.Is(err, ErrBounds) {
		t.Errorf("delta past page end: %v", err)
	}
	if _, err := a.ProgramDelta(nil, 0, 0, nil, 15, make([]byte, 5)); !errors.Is(err, ErrBounds) {
		t.Errorf("oob delta past spare end: %v", err)
	}
}

func TestTimingChargesChip(t *testing.T) {
	tl := sim.NewTimeline(2)
	cfg := Config{Geometry: testGeom(SLC), Timing: SLCTiming()}
	a, err := New(cfg, tl)
	if err != nil {
		t.Fatal(err)
	}
	w := tl.NewWorker()
	page := bytes.Repeat([]byte{0xFF}, 256)
	lat, err := a.Program(w, 0, page, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Timing.ProgramLSB + 256*cfg.Timing.TransferPerByte
	if lat != want {
		t.Errorf("program latency = %v, want %v", lat, want)
	}
	// A read on the same chip queues behind the program; on the other
	// chip it does not.
	w2 := tl.NewWorker()
	latSame, _, _, _ := func() (time.Duration, []byte, []byte, error) {
		d, o, l, e := a.Read(w2, 1)
		return l, d, o, e
	}()
	if latSame <= cfg.Timing.Read {
		t.Errorf("same-chip read latency %v did not include queueing", latSame)
	}
	w3 := tl.NewWorker()
	_, _, latOther, _ := a.Read(w3, PPN(testGeom(SLC).PagesPerChip()))
	wantRead := cfg.Timing.Read + time.Duration(256+16)*cfg.Timing.TransferPerByte
	if latOther != wantRead {
		t.Errorf("other-chip read latency = %v, want %v", latOther, wantRead)
	}
}

func TestBitErrorInjectionDeterministic(t *testing.T) {
	cfg := Config{Geometry: testGeom(SLC), Timing: SLCTiming(), BitErrorRate: 1.0, Seed: 7}
	a, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	page := bytes.Repeat([]byte{0x00}, 256)
	a.Program(nil, 0, page, nil)
	data, _, _, _ := a.Read(nil, 0)
	flipped := 0
	for _, b := range data {
		if b != 0 {
			flipped++
		}
	}
	if flipped != 1 {
		t.Errorf("flipped bytes = %d, want exactly 1", flipped)
	}
	if a.Stats().BitErrors != 1 {
		t.Errorf("BitErrors = %d", a.Stats().BitErrors)
	}
	// Stored data must be intact: a second array with rate 0 would see
	// the original; here just check the internal state via a fresh read
	// possibly flipping a different bit but never persisting.
	data2, _, _, _ := a.Read(nil, 0)
	n2 := 0
	for _, b := range data2 {
		if b != 0 {
			n2++
		}
	}
	if n2 != 1 {
		t.Errorf("second read flipped %d bytes", n2)
	}
}

// Property: after any legal sequence of Program/ProgramDelta, the stored
// bytes of a page equal the bitwise AND of everything programmed onto it
// since the last erase (charge only accumulates).
func TestPropertyChargeOnlyAccumulates(t *testing.T) {
	g := Geometry{Chips: 1, BlocksPerChip: 1, PagesPerBlock: 2, PageSize: 32, OOBSize: 0, Cell: SLC}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, err := New(Config{Geometry: g, Timing: SLCTiming(), MaxAppends: 100}, nil)
		if err != nil {
			return false
		}
		shadow := bytes.Repeat([]byte{0xFF}, 32)
		initial := make([]byte, 32)
		for i := range initial {
			initial[i] = byte(rng.Intn(256)) | 0x0F // leave low bits erased for appends
		}
		if _, err := a.Program(nil, 0, initial, nil); err != nil {
			return false
		}
		for i := range shadow {
			shadow[i] &= initial[i]
		}
		for k := 0; k < 10; k++ {
			off := rng.Intn(32)
			// Legal delta: subset of current bits.
			b := shadow[off] & byte(rng.Intn(256))
			if _, err := a.ProgramDelta(nil, 0, off, []byte{b}, 0, nil); err != nil {
				return false
			}
			shadow[off] &= b
		}
		data, _, _, err := a.Read(nil, 0)
		if err != nil {
			return false
		}
		return bytes.Equal(data, shadow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
