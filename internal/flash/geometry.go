// Package flash implements a bit-accurate NAND flash memory model: the
// substrate the paper's In-Place Appends run on.
//
// The model enforces the physics that make IPA possible and out-of-place
// updates otherwise necessary (Sec. 3 of the paper): ISPP programming can
// only *increase* the charge of a cell — i.e. flip bits 1→0 — while only a
// block-granular erase resets cells to the uncharged state (0xFF). Any
// attempted program that would require a 0→1 transition fails with
// ErrBitIncrease, so an incorrect IPA implementation fails loudly, exactly
// as it would corrupt data on real hardware.
//
// SLC and MLC organisations are supported. On MLC every wordline carries
// an LSB and an MSB page; ISPP re-programming (ProgramDelta) is permitted
// only on LSB pages, matching the paper's pSLC and odd-MLC modes
// (Appendix C). Latency, wear and bit-error behaviour are configurable.
package flash

import (
	"fmt"
	"time"
)

// CellType selects the NAND cell organisation.
type CellType int

const (
	// SLC stores one bit per cell; appends are unrestricted.
	SLC CellType = iota
	// MLC stores two bits per cell; each wordline maps to an LSB page and
	// an MSB page, and only LSB pages tolerate ISPP re-programming.
	MLC
	// TLC stores three bits per cell (3D NAND organisations, Appendix
	// C.3): each wordline maps to three pages and only the first (LSB)
	// page of a wordline tolerates ISPP re-programming. 3D charge-trap
	// structures make interference negligible, so the same pSLC/odd
	// techniques apply.
	TLC
)

func (c CellType) String() string {
	switch c {
	case SLC:
		return "SLC"
	case MLC:
		return "MLC"
	case TLC:
		return "TLC"
	default:
		return fmt.Sprintf("CellType(%d)", int(c))
	}
}

// PagesPerWordline returns how many pages share a wordline.
func (c CellType) PagesPerWordline() int {
	switch c {
	case MLC:
		return 2
	case TLC:
		return 3
	default:
		return 1
	}
}

// PPN is a physical page number: a global index over all pages of an
// array, chip-major then block then page-in-block.
type PPN uint64

// InvalidPPN marks an unmapped physical page.
const InvalidPPN PPN = ^PPN(0)

// Geometry describes the physical organisation of a flash array.
type Geometry struct {
	Chips         int // independent dies; unit of I/O parallelism
	BlocksPerChip int // erase units per chip
	PagesPerBlock int // pages per erase unit (32-256 on real parts)
	PageSize      int // data bytes per page
	OOBSize       int // out-of-band (spare) bytes per page, for ECC

	Cell CellType
}

// Validate checks the geometry for consistency.
func (g Geometry) Validate() error {
	switch {
	case g.Chips <= 0:
		return fmt.Errorf("flash: %d chips", g.Chips)
	case g.BlocksPerChip <= 0:
		return fmt.Errorf("flash: %d blocks per chip", g.BlocksPerChip)
	case g.PagesPerBlock <= 0:
		return fmt.Errorf("flash: %d pages per block", g.PagesPerBlock)
	case g.PagesPerBlock%g.Cell.PagesPerWordline() != 0:
		return fmt.Errorf("flash: %v needs pages per block divisible by %d, got %d",
			g.Cell, g.Cell.PagesPerWordline(), g.PagesPerBlock)
	case g.PageSize <= 0:
		return fmt.Errorf("flash: page size %d", g.PageSize)
	case g.OOBSize < 0:
		return fmt.Errorf("flash: OOB size %d", g.OOBSize)
	}
	return nil
}

// PagesPerChip returns the number of pages on one chip.
func (g Geometry) PagesPerChip() int { return g.BlocksPerChip * g.PagesPerBlock }

// TotalPages returns the number of pages in the whole array.
func (g Geometry) TotalPages() int { return g.Chips * g.PagesPerChip() }

// TotalBlocks returns the number of erase units in the whole array.
func (g Geometry) TotalBlocks() int { return g.Chips * g.BlocksPerChip }

// Capacity returns the raw data capacity in bytes.
func (g Geometry) Capacity() int64 {
	return int64(g.TotalPages()) * int64(g.PageSize)
}

// ChipOf returns the chip holding ppn.
func (g Geometry) ChipOf(p PPN) int { return int(p) / g.PagesPerChip() }

// BlockOf returns the global block index of ppn.
func (g Geometry) BlockOf(p PPN) int { return int(p) / g.PagesPerBlock }

// PageInBlock returns the page index of ppn within its block.
func (g Geometry) PageInBlock(p PPN) int { return int(p) % g.PagesPerBlock }

// FirstPageOfBlock returns the PPN of page 0 of the global block index.
func (g Geometry) FirstPageOfBlock(block int) PPN {
	return PPN(block * g.PagesPerBlock)
}

// IsLSB reports whether ppn is an LSB page. On SLC every page is an LSB
// page. On MLC/TLC we model the wordline grouping as the first page of
// each wordline group being LSB (the paper's 2N−1 / 2N+2 numbering has
// the same structure; only the interleaving offset differs).
func (g Geometry) IsLSB(p PPN) bool {
	return g.PageInBlock(p)%g.Cell.PagesPerWordline() == 0
}

// WordlineOf returns the wordline index of ppn within its block.
func (g Geometry) WordlineOf(p PPN) int {
	return g.PageInBlock(p) / g.Cell.PagesPerWordline()
}

// Timing models per-operation latencies. All values are service times at
// the chip; queueing delay comes from the sim.Timeline.
type Timing struct {
	Read       time.Duration // page read (cell array → page register)
	ProgramLSB time.Duration // full-page program of an LSB (or SLC) page
	ProgramMSB time.Duration // full-page program of an MSB page
	Erase      time.Duration // block erase

	// Delta is the ISPP re-program of a small region (write_delta). It is
	// cheaper than a full-page program: fewer cells are pulsed and
	// verified, and the bitline setup covers only the appended region.
	Delta time.Duration

	// TransferPerByte is the channel/bus transfer cost per byte moved
	// between controller and page register.
	TransferPerByte time.Duration
}

// SLCTiming returns typical SLC NAND datasheet latencies.
func SLCTiming() Timing {
	return Timing{
		Read:            25 * time.Microsecond,
		ProgramLSB:      200 * time.Microsecond,
		ProgramMSB:      200 * time.Microsecond,
		Erase:           1500 * time.Microsecond,
		Delta:           80 * time.Microsecond,
		TransferPerByte: 10 * time.Nanosecond, // ~100 MB/s channel
	}
}

// TLCTiming returns typical 3D TLC NAND datasheet latencies.
func TLCTiming() Timing {
	return Timing{
		Read:            80 * time.Microsecond,
		ProgramLSB:      400 * time.Microsecond,
		ProgramMSB:      2000 * time.Microsecond,
		Erase:           5000 * time.Microsecond,
		Delta:           150 * time.Microsecond,
		TransferPerByte: 10 * time.Nanosecond,
	}
}

// MLCTiming returns typical MLC NAND datasheet latencies; MSB programs are
// several times slower than LSB programs.
func MLCTiming() Timing {
	return Timing{
		Read:            50 * time.Microsecond,
		ProgramLSB:      300 * time.Microsecond,
		ProgramMSB:      1200 * time.Microsecond,
		Erase:           3000 * time.Microsecond,
		Delta:           120 * time.Microsecond,
		TransferPerByte: 10 * time.Nanosecond,
	}
}

// ProgramTime returns the full-page program latency for ppn.
func (g Geometry) ProgramTime(t Timing, p PPN) time.Duration {
	if g.IsLSB(p) {
		return t.ProgramLSB
	}
	return t.ProgramMSB
}

// Standard wear-out limits (program/erase cycles) quoted in Sec. 8.4.
const (
	EnduranceSLC = 100_000
	EnduranceMLC = 10_000
	EnduranceTLC = 4_000
)
