package flash

import (
	"bytes"
	"errors"
	"testing"
)

func TestTLCGeometry(t *testing.T) {
	g := Geometry{Chips: 1, BlocksPerChip: 2, PagesPerBlock: 9, PageSize: 256, Cell: TLC}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := g
	bad.PagesPerBlock = 8 // not divisible by 3
	if err := bad.Validate(); err == nil {
		t.Error("TLC with 8 pages/block accepted")
	}
	lsb := 0
	for p := PPN(0); p < 9; p++ {
		if g.IsLSB(p) {
			lsb++
		}
	}
	if lsb != 3 {
		t.Errorf("TLC LSB pages = %d, want 3 of 9", lsb)
	}
	if g.WordlineOf(5) != 1 {
		t.Errorf("WordlineOf(5) = %d", g.WordlineOf(5))
	}
	if TLC.String() != "TLC" || TLC.PagesPerWordline() != 3 {
		t.Error("TLC identity wrong")
	}
}

func TestTLCAppendsOnlyOnFirstWordlinePage(t *testing.T) {
	g := Geometry{Chips: 1, BlocksPerChip: 2, PagesPerBlock: 9, PageSize: 256, Cell: TLC}
	a, err := New(Config{Geometry: g, Timing: TLCTiming(), StrictProgramOrder: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	img := bytes.Repeat([]byte{0xFF}, 256)
	for p := PPN(0); p < 3; p++ {
		if _, err := a.Program(nil, p, img, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.ProgramDelta(nil, 0, 0, []byte{0x0F}, 0, nil); err != nil {
		t.Errorf("LSB delta on TLC: %v", err)
	}
	for _, p := range []PPN{1, 2} {
		if _, err := a.ProgramDelta(nil, p, 0, []byte{0x0F}, 0, nil); !errors.Is(err, ErrMSBAppend) {
			t.Errorf("CSB/MSB delta on TLC page %d: %v", p, err)
		}
	}
}

func TestTLCEndurance(t *testing.T) {
	g := Geometry{Chips: 1, BlocksPerChip: 1, PagesPerBlock: 3, PageSize: 64, Cell: TLC}
	cfg := Config{Geometry: g, Timing: TLCTiming()}
	if cfg.endurance() != EnduranceTLC {
		t.Errorf("TLC endurance = %d", cfg.endurance())
	}
}

func TestReprogramRepairsLeakedCharge(t *testing.T) {
	a := newTestArray(t, SLC)
	orig := make([]byte, 256)
	for i := range orig {
		orig[i] = byte(i) &^ 0x01 // plenty of 0-bits to leak
	}
	if _, err := a.Program(nil, 0, orig, nil); err != nil {
		t.Fatal(err)
	}
	leaked, err := a.InjectLeak(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if leaked == 0 {
		t.Fatal("nothing leaked")
	}
	data, _, _, _ := a.Read(nil, 0)
	if bytes.Equal(data, orig) {
		t.Fatal("leak not visible")
	}
	// Correct-and-Refresh: re-program the known-good image in place.
	if _, err := a.Reprogram(nil, 0, orig, nil); err != nil {
		t.Fatal(err)
	}
	data, _, _, _ = a.Read(nil, 0)
	if !bytes.Equal(data, orig) {
		t.Error("refresh did not restore the page")
	}
	if a.Stats().Refreshes != 1 || a.Stats().LeakedBits == 0 {
		t.Errorf("stats = %+v", a.Stats())
	}
	// The append budget is untouched by refreshes.
	if a.Appends(0) != 0 {
		t.Errorf("Appends = %d after refresh", a.Appends(0))
	}
}

func TestReprogramRejectsChargeDecrease(t *testing.T) {
	a := newTestArray(t, SLC)
	img := make([]byte, 256) // fully charged
	if _, err := a.Program(nil, 0, img, nil); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), img...)
	bad[7] = 0x10 // would need a 0→1 flip
	if _, err := a.Reprogram(nil, 0, bad, nil); !errors.Is(err, ErrBitIncrease) {
		t.Errorf("reprogram with bit increase: %v", err)
	}
	// Erased pages cannot be refreshed.
	if _, err := a.Reprogram(nil, 5, img, nil); err == nil {
		t.Error("reprogram of erased page accepted")
	}
}
