package flash

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"ipa/internal/sim"
)

// Allocation guards: the device hot path must not allocate in steady
// state — the whole point of ReadInto and the word-scan kernels is that
// a TPC-B run's per-transaction flash traffic is GC-silent.

func TestReadIntoZeroAllocs(t *testing.T) {
	g := Geometry{Chips: 2, BlocksPerChip: 4, PagesPerBlock: 16, PageSize: 2048, OOBSize: 64, Cell: SLC}
	arr, err := New(Config{Geometry: g, Timing: SLCTiming()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	img := make([]byte, g.PageSize)
	for i := range img {
		img[i] = byte(i)
	}
	if _, err := arr.Program(nil, 3, img, nil); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, g.PageSize)
	oob := make([]byte, g.OOBSize)
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := arr.ReadInto(nil, 3, data, oob); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("ReadInto: %.1f allocs/op, want 0", allocs)
	}
	if !bytes.Equal(data, img) {
		t.Error("ReadInto returned wrong data")
	}
}

func TestProgramDeltaZeroAllocs(t *testing.T) {
	g := Geometry{Chips: 1, BlocksPerChip: 4, PagesPerBlock: 16, PageSize: 2048, OOBSize: 64, Cell: SLC}
	arr, err := New(Config{Geometry: g, Timing: SLCTiming(), MaxAppends: 1 << 30}, nil)
	if err != nil {
		t.Fatal(err)
	}
	img := make([]byte, g.PageSize)
	for i := range img {
		img[i] = 0xFF
	}
	if _, err := arr.Program(nil, 0, img, nil); err != nil {
		t.Fatal(err)
	}
	delta := make([]byte, 46) // zeros: always a legal 1→0 program
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := arr.ProgramDelta(nil, 0, 1000, delta, 0, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("ProgramDelta: %.1f allocs/op, want 0", allocs)
	}
}

// TestConcurrentChipOps hammers the sharded array from many goroutines —
// several per chip, each owning distinct blocks — with the full
// Read/ReadInto/Program/ProgramDelta/Erase mix on a shared timeline. Run
// under -race (the Makefile gate does) this is the proof that per-chip
// sharding plus the striped timeline need no global lock.
func TestConcurrentChipOps(t *testing.T) {
	g := Geometry{Chips: 4, BlocksPerChip: 8, PagesPerBlock: 8, PageSize: 512, OOBSize: 16, Cell: SLC}
	tl := sim.NewTimeline(g.Chips)
	arr, err := New(Config{Geometry: g, Timing: SLCTiming(), MaxAppends: 1 << 30}, tl)
	if err != nil {
		t.Fatal(err)
	}
	totalBlocks := g.Chips * g.BlocksPerChip
	workers := 8 // two per chip
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			w := tl.NewWorker()
			img := make([]byte, g.PageSize)
			data := make([]byte, g.PageSize)
			oob := make([]byte, g.OOBSize)
			delta := make([]byte, 16)
			for round := 0; round < 3; round++ {
				for blk := wk; blk < totalBlocks; blk += workers {
					if _, err := arr.Erase(w, blk); err != nil {
						errs <- fmt.Errorf("worker %d erase %d: %w", wk, blk, err)
						return
					}
					base := g.FirstPageOfBlock(blk)
					for pi := 0; pi < g.PagesPerBlock; pi++ {
						p := base + PPN(pi)
						for i := range img {
							img[i] = byte(wk + round + pi)
						}
						if _, err := arr.Program(w, p, img, nil); err != nil {
							errs <- fmt.Errorf("worker %d program %d: %w", wk, p, err)
							return
						}
						if _, err := arr.ProgramDelta(w, p, 32, delta, 0, nil); err != nil {
							errs <- fmt.Errorf("worker %d delta %d: %w", wk, p, err)
							return
						}
						if _, err := arr.ReadInto(w, p, data, oob); err != nil {
							errs <- fmt.Errorf("worker %d read %d: %w", wk, p, err)
							return
						}
						for i := 32; i < 48; i++ {
							if data[i] != 0 {
								errs <- fmt.Errorf("worker %d page %d: delta bytes not zero", wk, p)
								return
							}
						}
					}
				}
			}
		}(wk)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := arr.Stats()
	wantPrograms := uint64(workers * 3 * (totalBlocks / workers) * g.PagesPerBlock)
	if st.Programs != wantPrograms {
		t.Errorf("aggregated Programs = %d, want %d", st.Programs, wantPrograms)
	}
	if st.DeltaPrograms != wantPrograms {
		t.Errorf("aggregated DeltaPrograms = %d, want %d", st.DeltaPrograms, wantPrograms)
	}
	if st.Erases != uint64(workers*3*(totalBlocks/workers)) {
		t.Errorf("aggregated Erases = %d", st.Erases)
	}
	if tl.Horizon() <= 0 {
		t.Error("timeline horizon did not advance")
	}
}

func TestReadStatsCountOOBBytes(t *testing.T) {
	g := Geometry{Chips: 1, BlocksPerChip: 2, PagesPerBlock: 4, PageSize: 512, OOBSize: 16, Cell: SLC}
	arr, err := New(Config{Geometry: g, Timing: SLCTiming()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := arr.Read(nil, 0); err != nil {
		t.Fatal(err)
	}
	if got, want := arr.Stats().BytesRead, uint64(g.PageSize+g.OOBSize); got != want {
		t.Errorf("BytesRead after one read = %d, want %d (data+OOB)", got, want)
	}
}
