package flash

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"ipa/internal/sim"
)

// Errors reported by the flash array. They model real NAND failure modes:
// violating them on hardware silently corrupts data, so the simulator
// makes them hard failures.
var (
	// ErrBitIncrease: a program operation attempted a 0→1 bit transition,
	// which would require decreasing cell charge — only erase can do that.
	ErrBitIncrease = errors.New("flash: program would require charge decrease (0→1 bit flip)")
	// ErrNotErased: a full-page program was issued to a page that has
	// already been programmed since the last block erase.
	ErrNotErased = errors.New("flash: page already programmed; erase block first")
	// ErrMSBAppend: an ISPP re-program (write_delta) was issued to an MLC
	// MSB page; interference makes appends unsafe there (Appendix C.2).
	ErrMSBAppend = errors.New("flash: delta program on MLC MSB page")
	// ErrProgramOrder: MLC pages within a block must be programmed in
	// ascending order to bound program interference.
	ErrProgramOrder = errors.New("flash: out-of-order program within block")
	// ErrAppendLimit: the page exceeded its re-program budget.
	ErrAppendLimit = errors.New("flash: ISPP re-program limit exceeded for page")
	// ErrWornOut: the block exceeded its P/E endurance.
	ErrWornOut = errors.New("flash: block worn out")
	// ErrBounds: an address or length was outside the device.
	ErrBounds = errors.New("flash: address out of bounds")
	// ErrUncorrectable is returned by the ECC layer above when injected
	// bit errors exceed correction capability; defined here for sharing.
	ErrUncorrectable = errors.New("flash: uncorrectable bit errors")
)

// pageState tracks the lifecycle of one physical page.
type pageState uint8

const (
	pageErased pageState = iota
	pageProgrammed
)

// Config assembles everything needed to build an Array.
type Config struct {
	Geometry Geometry
	Timing   Timing

	// MaxAppends bounds ISPP re-programs per page after the initial
	// program (the paper uses N=2..3 on MLC, more on SLC). Zero means
	// "use the cell-type default" (8 for SLC, 3 for MLC LSB).
	MaxAppends int

	// Endurance is the P/E cycle budget per block; zero means the
	// cell-type default. Exceeding it returns ErrWornOut on erase.
	Endurance int

	// StrictProgramOrder enforces ascending page programming within a
	// block (a hard requirement on MLC; we default it on for both).
	StrictProgramOrder bool

	// BitErrorRate is the probability that any given *read* of a page
	// flips one bit (retention/read-disturb model). Errors are injected
	// into the returned copy, not the stored data, and are correctable by
	// the ECC layer. Zero disables injection.
	BitErrorRate float64

	// InterferenceRate is the probability that a delta program on an LSB
	// page flips one bit in the delta region of a *neighbouring MSB* page
	// (program interference, Appendix C.2). Zero disables injection.
	InterferenceRate float64

	// Seed makes fault injection deterministic.
	Seed int64
}

// DefaultMaxAppends returns the re-program budget for the geometry.
func (c Config) DefaultMaxAppends() int {
	if c.MaxAppends > 0 {
		return c.MaxAppends
	}
	if c.Geometry.Cell == SLC {
		return 8
	}
	return 3
}

func (c Config) endurance() int {
	if c.Endurance > 0 {
		return c.Endurance
	}
	switch c.Geometry.Cell {
	case SLC:
		return EnduranceSLC
	case TLC:
		return EnduranceTLC
	default:
		return EnduranceMLC
	}
}

// Stats counts physical operations performed by the array.
type Stats struct {
	Reads         uint64
	Programs      uint64 // full-page programs
	DeltaPrograms uint64 // ISPP re-programs (write_delta)
	Erases        uint64
	Refreshes     uint64 // Correct-and-Refresh re-programs
	BytesRead     uint64
	BytesWritten  uint64
	BitErrors     uint64 // injected on reads
	Interference  uint64 // injected by delta programs
	LeakedBits    uint64 // persistent retention leaks injected
}

// add accumulates another counter cell (shard aggregation).
func (s *Stats) add(o Stats) {
	s.Reads += o.Reads
	s.Programs += o.Programs
	s.DeltaPrograms += o.DeltaPrograms
	s.Erases += o.Erases
	s.Refreshes += o.Refreshes
	s.BytesRead += o.BytesRead
	s.BytesWritten += o.BytesWritten
	s.BitErrors += o.BitErrors
	s.Interference += o.Interference
	s.LeakedBits += o.LeakedBits
}

// chipShard is the state of one flash chip (die). Every field a flash
// operation touches is partitioned by PPN→chip, so each chip carries its
// own mutex, fault-injection RNG and stats cell: operations on different
// chips never contend, matching the I/O parallelism of the real array.
type chipShard struct {
	mu       chipLock
	data     []byte      // page data, PagesPerChip × PageSize
	oob      []byte      // spare area, PagesPerChip × OOBSize
	state    []pageState // per page in chip
	appends  []uint16    // ISPP re-programs since the initial program
	lastProg []int16     // per block in chip: highest programmed page (-1 = none)
	erases   []uint32    // per block in chip: P/E count
	stats    Stats
	rng      *rand.Rand

	// Pad shards apart so two chips' mutexes and counters never share a
	// cache line (the shards live contiguously in Array.shards).
	_ [64]byte
}

// Array is a simulated flash device: a set of chips addressed by PPN,
// with per-chip queueing on a shared sim.Timeline. State is sharded per
// chip (one lock and stats cell each); all methods are safe for
// concurrent use and operations on distinct chips run in parallel.
type Array struct {
	cfg  Config
	geom Geometry

	// Resolved once at construction so the hot paths never re-derive
	// them under a shard lock.
	maxAppends   int
	endurance    int
	pagesPerChip int
	totalPages   int
	chipShift    int  // log2(pagesPerChip) when it is a power of two, else -1
	allLSB       bool // SLC: every page accepts ISPP re-programs
	interfere    bool // interference injection armed (rate > 0, MLC/TLC)

	shards []chipShard

	tl *sim.Timeline // chip queueing; may be nil (no timing)
}

// New builds an array. If tl is non-nil it must have at least
// Geometry.Chips resources; flash operations then occupy chip resources
// and report latencies.
func New(cfg Config, tl *sim.Timeline) (*Array, error) {
	if err := cfg.Geometry.Validate(); err != nil {
		return nil, err
	}
	if tl != nil && tl.Resources() < cfg.Geometry.Chips {
		return nil, fmt.Errorf("flash: timeline has %d resources, need %d chips", tl.Resources(), cfg.Geometry.Chips)
	}
	g := cfg.Geometry
	a := &Array{
		cfg:          cfg,
		geom:         g,
		maxAppends:   cfg.DefaultMaxAppends(),
		endurance:    cfg.endurance(),
		pagesPerChip: g.PagesPerChip(),
		totalPages:   g.TotalPages(),
		chipShift:    log2Exact(g.PagesPerChip()),
		allLSB:       g.Cell.PagesPerWordline() == 1,
		interfere:    cfg.InterferenceRate > 0 && g.Cell != SLC,
		shards:       make([]chipShard, g.Chips),
		tl:           tl,
	}
	for c := range a.shards {
		sh := &a.shards[c]
		sh.data = make([]byte, a.pagesPerChip*g.PageSize)
		sh.oob = make([]byte, a.pagesPerChip*g.OOBSize)
		sh.state = make([]pageState, a.pagesPerChip)
		sh.appends = make([]uint16, a.pagesPerChip)
		sh.lastProg = make([]int16, g.BlocksPerChip)
		sh.erases = make([]uint32, g.BlocksPerChip)
		// Distinct deterministic stream per chip: fault injection stays
		// reproducible for a given seed without serialising chips on a
		// shared RNG.
		sh.rng = rand.New(rand.NewSource(cfg.Seed + int64(uint64(c+1)*0x9E3779B97F4A7C15)))
		for i := range sh.lastProg {
			sh.lastProg[i] = -1
		}
		// A fresh device reads as erased everywhere.
		fillErased(sh.data)
		fillErased(sh.oob)
	}
	return a, nil
}

// Geometry returns the array's geometry.
func (a *Array) Geometry() Geometry { return a.geom }

// Timeline returns the sim timeline chip occupancy is charged to, or nil
// when the array was built without timing. Callers that spawn their own
// I/O issuers (e.g. background collectors) derive their workers from it.
func (a *Array) Timeline() *sim.Timeline { return a.tl }

// shardOf returns the chip shard holding p plus p's page index within it.
// The chip index feeds the shard lock's address, so the common
// power-of-two geometry takes a shift/mask instead of a 64-bit divide.
func (a *Array) shardOf(p PPN) (*chipShard, int) {
	if a.chipShift >= 0 {
		return &a.shards[int(p)>>a.chipShift], int(p) & (a.pagesPerChip - 1)
	}
	chip := int(p) / a.pagesPerChip
	return &a.shards[chip], int(p) - chip*a.pagesPerChip
}

// shardOfBlock returns the chip shard holding the global block index plus
// the block's index within the chip.
func (a *Array) shardOfBlock(block int) (*chipShard, int) {
	return &a.shards[block/a.geom.BlocksPerChip], block % a.geom.BlocksPerChip
}

// Stats returns a snapshot of the operation counters, aggregated over
// all chip shards.
func (a *Array) Stats() Stats {
	var total Stats
	for c := range a.shards {
		sh := &a.shards[c]
		sh.mu.Lock()
		total.add(sh.stats)
		sh.mu.Unlock()
	}
	return total
}

// ResetStats zeroes the operation counters (wear state is kept).
func (a *Array) ResetStats() {
	for c := range a.shards {
		sh := &a.shards[c]
		sh.mu.Lock()
		sh.stats = Stats{}
		sh.mu.Unlock()
	}
}

// EraseCount returns the P/E cycles consumed by the global block index.
func (a *Array) EraseCount(block int) uint32 {
	sh, lb := a.shardOfBlock(block)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.erases[lb]
}

// MaxEraseCount returns the highest per-block P/E count — the wear
// hotspot that bounds device lifetime.
func (a *Array) MaxEraseCount() uint32 {
	var max uint32
	for c := range a.shards {
		sh := &a.shards[c]
		sh.mu.Lock()
		for _, e := range sh.erases {
			if e > max {
				max = e
			}
		}
		sh.mu.Unlock()
	}
	return max
}

// Appends returns the number of ISPP re-programs the page has absorbed
// since its initial program.
func (a *Array) Appends(p PPN) int {
	sh, lp := a.shardOf(p)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return int(sh.appends[lp])
}

// MaxAppends returns the per-page ISPP re-program budget configured for
// the array.
func (a *Array) MaxAppends() int { return a.maxAppends }

// IsErased reports whether the page is in the erased state.
func (a *Array) IsErased(p PPN) bool {
	sh, lp := a.shardOf(p)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.state[lp] == pageErased
}

// checkPPN is inlinable: the error construction lives in ppnError so the
// hot path pays one compare against the precomputed page count.
func (a *Array) checkPPN(p PPN) error {
	if int(p) >= a.totalPages {
		return a.ppnError(p)
	}
	return nil
}

// ppnError is kept out of line (and out of checkPPN's inlining budget)
// so the bounds check itself inlines into every device entry point.
//
//go:noinline
func (a *Array) ppnError(p PPN) error {
	return fmt.Errorf("%w: ppn %d of %d", ErrBounds, p, a.totalPages)
}

func (sh *chipShard) pageData(lp, pageSize int) []byte {
	off := lp * pageSize
	return sh.data[off : off+pageSize]
}

func (sh *chipShard) pageOOB(lp, oobSize int) []byte {
	off := lp * oobSize
	return sh.oob[off : off+oobSize]
}

func (a *Array) occupy(w *sim.Worker, p PPN, d time.Duration) time.Duration {
	if a.tl == nil || w == nil {
		return 0
	}
	return w.Use(a.geom.ChipOf(p), d)
}

// Read copies the page's data and OOB into fresh slices. If w is non-nil
// the chip occupancy and transfer time are charged to the worker. The
// returned latency includes queueing. Injected bit errors appear only in
// the returned copy.
func (a *Array) Read(w *sim.Worker, p PPN) (data, oob []byte, lat time.Duration, err error) {
	data = make([]byte, a.geom.PageSize)
	oob = make([]byte, a.geom.OOBSize)
	lat, err = a.ReadInto(w, p, data, oob)
	if err != nil {
		return nil, nil, 0, err
	}
	return data, oob, lat, nil
}

// ReadInto is the zero-allocation read: the page's data and OOB are
// copied into the caller's buffers (either may be nil to discard that
// part; non-nil buffers must be exactly page/OOB sized). The physical
// transfer always moves the whole page plus spare area regardless, so
// stats and latency are identical to Read. Injected bit errors appear
// only in the caller's data buffer, never in the stored image.
func (a *Array) ReadInto(w *sim.Worker, p PPN, data, oob []byte) (lat time.Duration, err error) {
	if err := a.checkPPN(p); err != nil {
		return 0, err
	}
	if data != nil && len(data) != a.geom.PageSize {
		return 0, fmt.Errorf("%w: read buffer %d bytes, page is %d", ErrBounds, len(data), a.geom.PageSize)
	}
	if oob != nil && len(oob) != a.geom.OOBSize {
		return 0, fmt.Errorf("%w: oob buffer %d bytes, spare is %d", ErrBounds, len(oob), a.geom.OOBSize)
	}
	sh, lp := a.shardOf(p)
	sh.mu.Lock()
	if data != nil {
		copy(data, sh.pageData(lp, a.geom.PageSize))
	}
	if oob != nil {
		copy(oob, sh.pageOOB(lp, a.geom.OOBSize))
	}
	sh.stats.Reads++
	// The transfer moves data plus spare area; count both (the OOB bytes
	// ride along on every page read).
	sh.stats.BytesRead += uint64(a.geom.PageSize + a.geom.OOBSize)
	inject := a.cfg.BitErrorRate > 0 && sh.rng.Float64() < a.cfg.BitErrorRate
	var bitPos int
	if inject {
		bitPos = sh.rng.Intn(a.geom.PageSize * 8)
		sh.stats.BitErrors++
	}
	sh.mu.Unlock()
	if inject && data != nil {
		data[bitPos/8] ^= 1 << (bitPos % 8)
	}
	xfer := time.Duration(a.geom.PageSize+a.geom.OOBSize) * a.cfg.Timing.TransferPerByte
	lat = a.occupy(w, p, a.cfg.Timing.Read+xfer)
	return lat, nil
}

// Program writes a full page (and optionally its OOB area, if oob is
// non-nil) to an erased page. MLC program order within the block is
// enforced when configured.
func (a *Array) Program(w *sim.Worker, p PPN, data, oob []byte) (lat time.Duration, err error) {
	if err := a.checkPPN(p); err != nil {
		return 0, err
	}
	if len(data) != a.geom.PageSize {
		return 0, fmt.Errorf("%w: program %d bytes, page is %d", ErrBounds, len(data), a.geom.PageSize)
	}
	if oob != nil && len(oob) > a.geom.OOBSize {
		return 0, fmt.Errorf("%w: oob %d bytes, spare is %d", ErrBounds, len(oob), a.geom.OOBSize)
	}
	sh, lp := a.shardOf(p)
	sh.mu.Lock()
	if sh.state[lp] != pageErased {
		sh.mu.Unlock()
		return 0, fmt.Errorf("%w: ppn %d", ErrNotErased, p)
	}
	if a.cfg.StrictProgramOrder {
		lb := lp / a.geom.PagesPerBlock
		if int16(a.geom.PageInBlock(p)) <= sh.lastProg[lb] {
			last := sh.lastProg[lb]
			sh.mu.Unlock()
			return 0, fmt.Errorf("%w: page %d after %d in block %d", ErrProgramOrder, a.geom.PageInBlock(p), last, a.geom.BlockOf(p))
		}
		sh.lastProg[lb] = int16(a.geom.PageInBlock(p))
	}
	copy(sh.pageData(lp, a.geom.PageSize), data)
	if oob != nil {
		copy(sh.pageOOB(lp, a.geom.OOBSize), oob)
	}
	sh.state[lp] = pageProgrammed
	sh.appends[lp] = 0
	sh.stats.Programs++
	sh.stats.BytesWritten += uint64(len(data))
	sh.mu.Unlock()
	xfer := time.Duration(len(data)+len(oob)) * a.cfg.Timing.TransferPerByte
	lat = a.occupy(w, p, a.geom.ProgramTime(a.cfg.Timing, p)+xfer)
	return lat, nil
}

// ProgramDelta is the paper's write_delta: an ISPP re-program of a byte
// range within an already-programmed page (plus, optionally, a range of
// the OOB area for the delta's ECC). Every written bit must be a 1→0
// transition or identity; otherwise ErrBitIncrease is returned and
// nothing is written. Validation runs word-at-a-time (uint64), so the
// charge-rule check costs ~len/8 compares on the all-legal fast path.
func (a *Array) ProgramDelta(w *sim.Worker, p PPN, off int, delta []byte, oobOff int, oobDelta []byte) (lat time.Duration, err error) {
	if err := a.checkPPN(p); err != nil {
		return 0, err
	}
	ps := a.geom.PageSize
	if off < 0 || off+len(delta) > ps {
		return 0, fmt.Errorf("%w: delta [%d,%d) on %dB page", ErrBounds, off, off+len(delta), ps)
	}
	if oobOff < 0 || oobOff+len(oobDelta) > a.geom.OOBSize {
		return 0, fmt.Errorf("%w: oob delta [%d,%d) on %dB spare", ErrBounds, oobOff, oobOff+len(oobDelta), a.geom.OOBSize)
	}
	if !a.allLSB && !a.geom.IsLSB(p) {
		return 0, fmt.Errorf("%w: ppn %d", ErrMSBAppend, p)
	}
	sh, lp := a.shardOf(p)
	sh.mu.Lock()
	if int(sh.appends[lp]) >= a.maxAppends {
		n := sh.appends[lp]
		sh.mu.Unlock()
		return 0, fmt.Errorf("%w: ppn %d at %d appends", ErrAppendLimit, p, n)
	}
	// A delta into a still-erased page is a legal initial partial program
	// (the cells start all-1, so any pattern is a 1→0 transition): PDL log
	// blocks are populated this way, one record batch at a time. The page
	// joins the programmed population so IsErased/scan-based rebuild see
	// it, and MLC program order is enforced exactly as for a full Program.
	freshProgram := sh.state[lp] == pageErased
	if freshProgram && a.cfg.StrictProgramOrder {
		lb := lp / a.geom.PagesPerBlock
		if int16(a.geom.PageInBlock(p)) <= sh.lastProg[lb] {
			last := sh.lastProg[lb]
			sh.mu.Unlock()
			return 0, fmt.Errorf("%w: page %d after %d in block %d", ErrProgramOrder, a.geom.PageInBlock(p), last, a.geom.BlockOf(p))
		}
	}
	base := lp * ps
	page := sh.data[base : base+ps]
	if i := chargeViolation(page[off:off+len(delta)], delta); i >= 0 {
		old, b := page[off+i], delta[i]
		sh.mu.Unlock()
		return 0, fmt.Errorf("%w: ppn %d offset %d: %#02x over %#02x", ErrBitIncrease, p, off+i, b, old)
	}
	if len(oobDelta) > 0 {
		spare := sh.pageOOB(lp, a.geom.OOBSize)
		if i := chargeViolation(spare[oobOff:oobOff+len(oobDelta)], oobDelta); i >= 0 {
			sh.mu.Unlock()
			return 0, fmt.Errorf("%w: ppn %d oob offset %d", ErrBitIncrease, p, oobOff+i)
		}
		copy(spare[oobOff:], oobDelta)
	}
	if freshProgram {
		if a.cfg.StrictProgramOrder {
			sh.lastProg[lp/a.geom.PagesPerBlock] = int16(a.geom.PageInBlock(p))
		}
		sh.state[lp] = pageProgrammed
	}
	copy(page[off:], delta)
	sh.appends[lp]++
	sh.stats.DeltaPrograms++
	sh.stats.BytesWritten += uint64(len(delta) + len(oobDelta))
	// Program interference: flip a bit in the same byte range of an
	// adjacent MSB page (harmless to IPA because MSB pages are always
	// rewritten whole, Appendix C.2 — but the model injects it so the
	// claim is actually exercised). The neighbour shares p's block, hence
	// its chip shard.
	if a.interfere && sh.rng.Float64() < a.cfg.InterferenceRate {
		if n := p + 1; int(n) < a.geom.TotalPages() && !a.geom.IsLSB(n) &&
			a.geom.BlockOf(n) == a.geom.BlockOf(p) && sh.state[lp+1] == pageProgrammed && len(delta) > 0 {
			victim := sh.pageData(lp+1, a.geom.PageSize)
			bit := sh.rng.Intn(len(delta) * 8)
			victim[off+bit/8] &^= 1 << (bit % 8) // interference only adds charge
			sh.stats.Interference++
		}
	}
	sh.mu.Unlock()
	if a.tl != nil && w != nil {
		xfer := time.Duration(len(delta)+len(oobDelta)) * a.cfg.Timing.TransferPerByte
		lat = w.Use(a.geom.ChipOf(p), a.cfg.Timing.Delta+xfer)
	}
	return lat, nil
}

// Erase resets every page of the global block index to the erased state
// and consumes one P/E cycle. ErrWornOut is returned once the endurance
// budget is exhausted (the erase still happens; real worn blocks are
// retired by the management layer).
func (a *Array) Erase(w *sim.Worker, block int) (lat time.Duration, err error) {
	if block < 0 || block >= a.geom.TotalBlocks() {
		return 0, fmt.Errorf("%w: block %d of %d", ErrBounds, block, a.geom.TotalBlocks())
	}
	sh, lb := a.shardOfBlock(block)
	first := lb * a.geom.PagesPerBlock // first page of block within chip
	n := a.geom.PagesPerBlock
	sh.mu.Lock()
	for i := first; i < first+n; i++ {
		sh.state[i] = pageErased
		sh.appends[i] = 0
	}
	fillErased(sh.data[first*a.geom.PageSize : (first+n)*a.geom.PageSize])
	fillErased(sh.oob[first*a.geom.OOBSize : (first+n)*a.geom.OOBSize])
	sh.lastProg[lb] = -1
	sh.erases[lb]++
	sh.stats.Erases++
	worn := int(sh.erases[lb]) > a.endurance
	sh.mu.Unlock()
	lat = a.occupy(w, a.geom.FirstPageOfBlock(block), a.cfg.Timing.Erase)
	if worn {
		return lat, fmt.Errorf("%w: block %d", ErrWornOut, block)
	}
	return lat, nil
}

// Reprogram performs a Correct-and-Refresh style ISPP re-program
// (Sec. 2.3 / [35]): the corrected image is programmed over the page in
// place, restoring leaked charge. Every bit must be identical or a 1→0
// transition relative to the stored state — exactly the property that
// makes retention errors (charge leaks, 0→1 flips) repairable in place.
// The operation does not consume the page's append budget.
func (a *Array) Reprogram(w *sim.Worker, p PPN, data, oob []byte) (lat time.Duration, err error) {
	if err := a.checkPPN(p); err != nil {
		return 0, err
	}
	if len(data) != a.geom.PageSize {
		return 0, fmt.Errorf("%w: reprogram %d bytes", ErrBounds, len(data))
	}
	if oob != nil && len(oob) != a.geom.OOBSize {
		return 0, fmt.Errorf("%w: reprogram oob %d bytes", ErrBounds, len(oob))
	}
	sh, lp := a.shardOf(p)
	sh.mu.Lock()
	if sh.state[lp] != pageProgrammed {
		sh.mu.Unlock()
		return 0, fmt.Errorf("flash: reprogram of erased ppn %d", p)
	}
	page := sh.pageData(lp, a.geom.PageSize)
	if i := chargeViolation(page, data); i >= 0 {
		sh.mu.Unlock()
		return 0, fmt.Errorf("%w: ppn %d offset %d (unrepairable in place)", ErrBitIncrease, p, i)
	}
	spare := sh.pageOOB(lp, a.geom.OOBSize)
	if oob != nil {
		if i := chargeViolation(spare, oob); i >= 0 {
			sh.mu.Unlock()
			return 0, fmt.Errorf("%w: ppn %d oob offset %d", ErrBitIncrease, p, i)
		}
	}
	copy(page, data)
	copy(spare, oob)
	sh.stats.Refreshes++
	sh.stats.BytesWritten += uint64(len(data) + len(oob))
	sh.mu.Unlock()
	xfer := time.Duration(len(data)+len(oob)) * a.cfg.Timing.TransferPerByte
	lat = a.occupy(w, p, a.geom.ProgramTime(a.cfg.Timing, p)+xfer)
	return lat, nil
}

// InjectLeak simulates charge leakage (a retention error): up to n
// stored 0-bits of the page flip to 1 — the direction real charge loss
// takes, and the one Correct-and-Refresh can repair. It returns how many
// bits actually leaked (fewer if the page has few programmed bits).
func (a *Array) InjectLeak(p PPN, n int) (int, error) {
	if err := a.checkPPN(p); err != nil {
		return 0, err
	}
	sh, lp := a.shardOf(p)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	page := sh.pageData(lp, a.geom.PageSize)
	leaked := 0
	for try := 0; try < 64*n && leaked < n; try++ {
		bit := sh.rng.Intn(len(page) * 8)
		if page[bit/8]>>(bit%8)&1 == 0 {
			page[bit/8] |= 1 << (bit % 8)
			leaked++
		}
	}
	sh.stats.LeakedBits += uint64(leaked)
	return leaked, nil
}
