package flash

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ipa/internal/sim"
)

// Errors reported by the flash array. They model real NAND failure modes:
// violating them on hardware silently corrupts data, so the simulator
// makes them hard failures.
var (
	// ErrBitIncrease: a program operation attempted a 0→1 bit transition,
	// which would require decreasing cell charge — only erase can do that.
	ErrBitIncrease = errors.New("flash: program would require charge decrease (0→1 bit flip)")
	// ErrNotErased: a full-page program was issued to a page that has
	// already been programmed since the last block erase.
	ErrNotErased = errors.New("flash: page already programmed; erase block first")
	// ErrMSBAppend: an ISPP re-program (write_delta) was issued to an MLC
	// MSB page; interference makes appends unsafe there (Appendix C.2).
	ErrMSBAppend = errors.New("flash: delta program on MLC MSB page")
	// ErrProgramOrder: MLC pages within a block must be programmed in
	// ascending order to bound program interference.
	ErrProgramOrder = errors.New("flash: out-of-order program within block")
	// ErrAppendLimit: the page exceeded its re-program budget.
	ErrAppendLimit = errors.New("flash: ISPP re-program limit exceeded for page")
	// ErrWornOut: the block exceeded its P/E endurance.
	ErrWornOut = errors.New("flash: block worn out")
	// ErrBounds: an address or length was outside the device.
	ErrBounds = errors.New("flash: address out of bounds")
	// ErrUncorrectable is returned by the ECC layer above when injected
	// bit errors exceed correction capability; defined here for sharing.
	ErrUncorrectable = errors.New("flash: uncorrectable bit errors")
)

// pageState tracks the lifecycle of one physical page.
type pageState uint8

const (
	pageErased pageState = iota
	pageProgrammed
)

// Config assembles everything needed to build an Array.
type Config struct {
	Geometry Geometry
	Timing   Timing

	// MaxAppends bounds ISPP re-programs per page after the initial
	// program (the paper uses N=2..3 on MLC, more on SLC). Zero means
	// "use the cell-type default" (8 for SLC, 3 for MLC LSB).
	MaxAppends int

	// Endurance is the P/E cycle budget per block; zero means the
	// cell-type default. Exceeding it returns ErrWornOut on erase.
	Endurance int

	// StrictProgramOrder enforces ascending page programming within a
	// block (a hard requirement on MLC; we default it on for both).
	StrictProgramOrder bool

	// BitErrorRate is the probability that any given *read* of a page
	// flips one bit (retention/read-disturb model). Errors are injected
	// into the returned copy, not the stored data, and are correctable by
	// the ECC layer. Zero disables injection.
	BitErrorRate float64

	// InterferenceRate is the probability that a delta program on an LSB
	// page flips one bit in the delta region of a *neighbouring MSB* page
	// (program interference, Appendix C.2). Zero disables injection.
	InterferenceRate float64

	// Seed makes fault injection deterministic.
	Seed int64
}

// DefaultMaxAppends returns the re-program budget for the geometry.
func (c Config) DefaultMaxAppends() int {
	if c.MaxAppends > 0 {
		return c.MaxAppends
	}
	if c.Geometry.Cell == SLC {
		return 8
	}
	return 3
}

func (c Config) endurance() int {
	if c.Endurance > 0 {
		return c.Endurance
	}
	switch c.Geometry.Cell {
	case SLC:
		return EnduranceSLC
	case TLC:
		return EnduranceTLC
	default:
		return EnduranceMLC
	}
}

// Stats counts physical operations performed by the array.
type Stats struct {
	Reads         uint64
	Programs      uint64 // full-page programs
	DeltaPrograms uint64 // ISPP re-programs (write_delta)
	Erases        uint64
	Refreshes     uint64 // Correct-and-Refresh re-programs
	BytesRead     uint64
	BytesWritten  uint64
	BitErrors     uint64 // injected on reads
	Interference  uint64 // injected by delta programs
	LeakedBits    uint64 // persistent retention leaks injected
}

// Array is a simulated flash device: a set of chips addressed by PPN,
// with per-chip queueing on a shared sim.Timeline. All methods are safe
// for concurrent use.
type Array struct {
	cfg  Config
	geom Geometry

	mu    sync.Mutex
	data  []byte      // page data, TotalPages × PageSize
	oob   []byte      // spare area, TotalPages × OOBSize
	state []pageState // per page
	// appends counts ISPP re-programs since the initial program.
	appends []uint16
	// lastProg is the highest programmed page index per block, for
	// program-order enforcement (-1 = none).
	lastProg []int16
	erases   []uint32 // per block P/E count
	stats    Stats
	rng      *rand.Rand

	tl *sim.Timeline // chip queueing; may be nil (no timing)
}

// New builds an array. If tl is non-nil it must have at least
// Geometry.Chips resources; flash operations then occupy chip resources
// and report latencies.
func New(cfg Config, tl *sim.Timeline) (*Array, error) {
	if err := cfg.Geometry.Validate(); err != nil {
		return nil, err
	}
	if tl != nil && tl.Resources() < cfg.Geometry.Chips {
		return nil, fmt.Errorf("flash: timeline has %d resources, need %d chips", tl.Resources(), cfg.Geometry.Chips)
	}
	g := cfg.Geometry
	a := &Array{
		cfg:      cfg,
		geom:     g,
		data:     make([]byte, g.TotalPages()*g.PageSize),
		oob:      make([]byte, g.TotalPages()*g.OOBSize),
		state:    make([]pageState, g.TotalPages()),
		appends:  make([]uint16, g.TotalPages()),
		lastProg: make([]int16, g.TotalBlocks()),
		erases:   make([]uint32, g.TotalBlocks()),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		tl:       tl,
	}
	for i := range a.lastProg {
		a.lastProg[i] = -1
	}
	// A fresh device reads as erased everywhere.
	for i := range a.data {
		a.data[i] = 0xFF
	}
	for i := range a.oob {
		a.oob[i] = 0xFF
	}
	return a, nil
}

// Geometry returns the array's geometry.
func (a *Array) Geometry() Geometry { return a.geom }

// Stats returns a snapshot of the operation counters.
func (a *Array) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// ResetStats zeroes the operation counters (wear state is kept).
func (a *Array) ResetStats() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stats = Stats{}
}

// EraseCount returns the P/E cycles consumed by the global block index.
func (a *Array) EraseCount(block int) uint32 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.erases[block]
}

// MaxEraseCount returns the highest per-block P/E count — the wear
// hotspot that bounds device lifetime.
func (a *Array) MaxEraseCount() uint32 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var max uint32
	for _, e := range a.erases {
		if e > max {
			max = e
		}
	}
	return max
}

// Appends returns the number of ISPP re-programs the page has absorbed
// since its initial program.
func (a *Array) Appends(p PPN) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return int(a.appends[p])
}

// IsErased reports whether the page is in the erased state.
func (a *Array) IsErased(p PPN) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.state[p] == pageErased
}

func (a *Array) checkPPN(p PPN) error {
	if int(p) >= a.geom.TotalPages() {
		return fmt.Errorf("%w: ppn %d of %d", ErrBounds, p, a.geom.TotalPages())
	}
	return nil
}

func (a *Array) pageData(p PPN) []byte {
	off := int(p) * a.geom.PageSize
	return a.data[off : off+a.geom.PageSize]
}

func (a *Array) pageOOB(p PPN) []byte {
	off := int(p) * a.geom.OOBSize
	return a.oob[off : off+a.geom.OOBSize]
}

func (a *Array) occupy(w *sim.Worker, p PPN, d time.Duration) time.Duration {
	if a.tl == nil || w == nil {
		return 0
	}
	return w.Use(a.geom.ChipOf(p), d)
}

// Read copies the page's data and OOB into fresh slices. If w is non-nil
// the chip occupancy and transfer time are charged to the worker. The
// returned latency includes queueing. Injected bit errors appear only in
// the returned copy.
func (a *Array) Read(w *sim.Worker, p PPN) (data, oob []byte, lat time.Duration, err error) {
	if err := a.checkPPN(p); err != nil {
		return nil, nil, 0, err
	}
	a.mu.Lock()
	data = append([]byte(nil), a.pageData(p)...)
	oob = append([]byte(nil), a.pageOOB(p)...)
	a.stats.Reads++
	a.stats.BytesRead += uint64(a.geom.PageSize)
	inject := a.cfg.BitErrorRate > 0 && a.rng.Float64() < a.cfg.BitErrorRate
	var bitPos int
	if inject {
		bitPos = a.rng.Intn(len(data) * 8)
		a.stats.BitErrors++
	}
	a.mu.Unlock()
	if inject {
		data[bitPos/8] ^= 1 << (bitPos % 8)
	}
	xfer := time.Duration(a.geom.PageSize+a.geom.OOBSize) * a.cfg.Timing.TransferPerByte
	lat = a.occupy(w, p, a.cfg.Timing.Read+xfer)
	return data, oob, lat, nil
}

// Program writes a full page (and optionally its OOB area, if oob is
// non-nil) to an erased page. MLC program order within the block is
// enforced when configured.
func (a *Array) Program(w *sim.Worker, p PPN, data, oob []byte) (lat time.Duration, err error) {
	if err := a.checkPPN(p); err != nil {
		return 0, err
	}
	if len(data) != a.geom.PageSize {
		return 0, fmt.Errorf("%w: program %d bytes, page is %d", ErrBounds, len(data), a.geom.PageSize)
	}
	if oob != nil && len(oob) > a.geom.OOBSize {
		return 0, fmt.Errorf("%w: oob %d bytes, spare is %d", ErrBounds, len(oob), a.geom.OOBSize)
	}
	a.mu.Lock()
	if a.state[p] != pageErased {
		a.mu.Unlock()
		return 0, fmt.Errorf("%w: ppn %d", ErrNotErased, p)
	}
	if a.cfg.StrictProgramOrder {
		blk := a.geom.BlockOf(p)
		if int16(a.geom.PageInBlock(p)) <= a.lastProg[blk] {
			a.mu.Unlock()
			return 0, fmt.Errorf("%w: page %d after %d in block %d", ErrProgramOrder, a.geom.PageInBlock(p), a.lastProg[blk], blk)
		}
		a.lastProg[blk] = int16(a.geom.PageInBlock(p))
	}
	copy(a.pageData(p), data)
	if oob != nil {
		copy(a.pageOOB(p), oob)
	}
	a.state[p] = pageProgrammed
	a.appends[p] = 0
	a.stats.Programs++
	a.stats.BytesWritten += uint64(len(data))
	a.mu.Unlock()
	xfer := time.Duration(len(data)+len(oob)) * a.cfg.Timing.TransferPerByte
	lat = a.occupy(w, p, a.geom.ProgramTime(a.cfg.Timing, p)+xfer)
	return lat, nil
}

// ProgramDelta is the paper's write_delta: an ISPP re-program of a byte
// range within an already-programmed page (plus, optionally, a range of
// the OOB area for the delta's ECC). Every written bit must be a 1→0
// transition or identity; otherwise ErrBitIncrease is returned and
// nothing is written.
func (a *Array) ProgramDelta(w *sim.Worker, p PPN, off int, delta []byte, oobOff int, oobDelta []byte) (lat time.Duration, err error) {
	if err := a.checkPPN(p); err != nil {
		return 0, err
	}
	if off < 0 || off+len(delta) > a.geom.PageSize {
		return 0, fmt.Errorf("%w: delta [%d,%d) on %dB page", ErrBounds, off, off+len(delta), a.geom.PageSize)
	}
	if oobOff < 0 || oobOff+len(oobDelta) > a.geom.OOBSize {
		return 0, fmt.Errorf("%w: oob delta [%d,%d) on %dB spare", ErrBounds, oobOff, oobOff+len(oobDelta), a.geom.OOBSize)
	}
	if !a.geom.IsLSB(p) {
		return 0, fmt.Errorf("%w: ppn %d", ErrMSBAppend, p)
	}
	a.mu.Lock()
	if int(a.appends[p]) >= a.cfg.DefaultMaxAppends() {
		a.mu.Unlock()
		return 0, fmt.Errorf("%w: ppn %d at %d appends", ErrAppendLimit, p, a.appends[p])
	}
	page := a.pageData(p)
	for i, b := range delta {
		old := page[off+i]
		if b&^old != 0 { // a bit set in b but clear in old ⇒ charge decrease
			a.mu.Unlock()
			return 0, fmt.Errorf("%w: ppn %d offset %d: %#02x over %#02x", ErrBitIncrease, p, off+i, b, old)
		}
	}
	spare := a.pageOOB(p)
	for i, b := range oobDelta {
		old := spare[oobOff+i]
		if b&^old != 0 {
			a.mu.Unlock()
			return 0, fmt.Errorf("%w: ppn %d oob offset %d", ErrBitIncrease, p, oobOff+i)
		}
	}
	copy(page[off:], delta)
	copy(spare[oobOff:], oobDelta)
	a.appends[p]++
	a.stats.DeltaPrograms++
	a.stats.BytesWritten += uint64(len(delta) + len(oobDelta))
	// Program interference: flip a bit in the same byte range of an
	// adjacent MSB page (harmless to IPA because MSB pages are always
	// rewritten whole, Appendix C.2 — but the model injects it so the
	// claim is actually exercised).
	if a.cfg.InterferenceRate > 0 && a.geom.Cell != SLC && a.rng.Float64() < a.cfg.InterferenceRate {
		if n := p + 1; int(n) < a.geom.TotalPages() && !a.geom.IsLSB(n) &&
			a.geom.BlockOf(n) == a.geom.BlockOf(p) && a.state[n] == pageProgrammed && len(delta) > 0 {
			victim := a.pageData(n)
			bit := a.rng.Intn(len(delta) * 8)
			victim[off+bit/8] &^= 1 << (bit % 8) // interference only adds charge
			a.stats.Interference++
		}
	}
	a.mu.Unlock()
	xfer := time.Duration(len(delta)+len(oobDelta)) * a.cfg.Timing.TransferPerByte
	lat = a.occupy(w, p, a.cfg.Timing.Delta+xfer)
	return lat, nil
}

// Erase resets every page of the global block index to the erased state
// and consumes one P/E cycle. ErrWornOut is returned once the endurance
// budget is exhausted (the erase still happens; real worn blocks are
// retired by the management layer).
func (a *Array) Erase(w *sim.Worker, block int) (lat time.Duration, err error) {
	if block < 0 || block >= a.geom.TotalBlocks() {
		return 0, fmt.Errorf("%w: block %d of %d", ErrBounds, block, a.geom.TotalBlocks())
	}
	a.mu.Lock()
	first := int(a.geom.FirstPageOfBlock(block))
	n := a.geom.PagesPerBlock
	for i := first; i < first+n; i++ {
		a.state[i] = pageErased
		a.appends[i] = 0
	}
	start := first * a.geom.PageSize
	for i := start; i < start+n*a.geom.PageSize; i++ {
		a.data[i] = 0xFF
	}
	ostart := first * a.geom.OOBSize
	for i := ostart; i < ostart+n*a.geom.OOBSize; i++ {
		a.oob[i] = 0xFF
	}
	a.lastProg[block] = -1
	a.erases[block]++
	a.stats.Erases++
	worn := int(a.erases[block]) > a.cfg.endurance()
	a.mu.Unlock()
	lat = a.occupy(w, a.geom.FirstPageOfBlock(block), a.cfg.Timing.Erase)
	if worn {
		return lat, fmt.Errorf("%w: block %d", ErrWornOut, block)
	}
	return lat, nil
}

// Reprogram performs a Correct-and-Refresh style ISPP re-program
// (Sec. 2.3 / [35]): the corrected image is programmed over the page in
// place, restoring leaked charge. Every bit must be identical or a 1→0
// transition relative to the stored state — exactly the property that
// makes retention errors (charge leaks, 0→1 flips) repairable in place.
// The operation does not consume the page's append budget.
func (a *Array) Reprogram(w *sim.Worker, p PPN, data, oob []byte) (lat time.Duration, err error) {
	if err := a.checkPPN(p); err != nil {
		return 0, err
	}
	if len(data) != a.geom.PageSize {
		return 0, fmt.Errorf("%w: reprogram %d bytes", ErrBounds, len(data))
	}
	if oob != nil && len(oob) != a.geom.OOBSize {
		return 0, fmt.Errorf("%w: reprogram oob %d bytes", ErrBounds, len(oob))
	}
	a.mu.Lock()
	if a.state[p] != pageProgrammed {
		a.mu.Unlock()
		return 0, fmt.Errorf("flash: reprogram of erased ppn %d", p)
	}
	page := a.pageData(p)
	for i, b := range data {
		if b&^page[i] != 0 {
			a.mu.Unlock()
			return 0, fmt.Errorf("%w: ppn %d offset %d (unrepairable in place)", ErrBitIncrease, p, i)
		}
	}
	spare := a.pageOOB(p)
	for i, b := range oob {
		if b&^spare[i] != 0 {
			a.mu.Unlock()
			return 0, fmt.Errorf("%w: ppn %d oob offset %d", ErrBitIncrease, p, i)
		}
	}
	copy(page, data)
	copy(spare, oob)
	a.stats.Refreshes++
	a.stats.BytesWritten += uint64(len(data) + len(oob))
	a.mu.Unlock()
	xfer := time.Duration(len(data)+len(oob)) * a.cfg.Timing.TransferPerByte
	lat = a.occupy(w, p, a.geom.ProgramTime(a.cfg.Timing, p)+xfer)
	return lat, nil
}

// InjectLeak simulates charge leakage (a retention error): up to n
// stored 0-bits of the page flip to 1 — the direction real charge loss
// takes, and the one Correct-and-Refresh can repair. It returns how many
// bits actually leaked (fewer if the page has few programmed bits).
func (a *Array) InjectLeak(p PPN, n int) (int, error) {
	if err := a.checkPPN(p); err != nil {
		return 0, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	page := a.pageData(p)
	leaked := 0
	for try := 0; try < 64*n && leaked < n; try++ {
		bit := a.rng.Intn(len(page) * 8)
		if page[bit/8]>>(bit%8)&1 == 0 {
			page[bit/8] |= 1 << (bit % 8)
			leaked++
		}
	}
	a.stats.LeakedBits += uint64(leaked)
	return leaked, nil
}
