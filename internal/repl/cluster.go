package repl

import (
	"fmt"
	"net"
	"time"

	"ipa/internal/client"
	"ipa/internal/core"
	"ipa/internal/engine"
	"ipa/internal/flash"
	"ipa/internal/noftl"
	"ipa/internal/server"
	"ipa/internal/sim"
)

// Cluster is an in-process N-node replicated deployment: each member
// gets its own simulated flash array, NoFTL region, engine, repl node
// and TCP server. Node 1 bootstraps as leader of term 1. Used by the
// failover tests and the replication benchmarks; cmd/ipaserver wires
// the same pieces across real processes.
type Cluster struct {
	Members []*Member
}

// Member is one node of an in-process cluster.
type Member struct {
	ID     uint64
	Addr   string
	DB     *engine.DB
	TL     *sim.Timeline
	Node   *Node
	Server *server.Server

	killed bool
	closed bool
}

// ClusterConfig sizes an in-process cluster.
type ClusterConfig struct {
	N             int // members (default 3)
	Chips         int // flash chips per member (default 8)
	BlocksPerChip int // per chip (default 256)
	PageSize      int // flash/page size (default 1024)
	BufferFrames  int // buffer pool frames (default 1024)
	PoolShards    int // engine pool shards (default 8)
	LogCapacity   int // 0 = unbounded (new members replay from LSN 1)

	Node Config               // timing/batching knobs; identity fields are overwritten
	Logf func(string, ...any) // optional; fans into every layer
}

func (c *ClusterConfig) defaults() {
	if c.N <= 0 {
		c.N = 3
	}
	if c.Chips <= 0 {
		c.Chips = 8
	}
	if c.BlocksPerChip <= 0 {
		c.BlocksPerChip = 256
	}
	if c.PageSize <= 0 {
		c.PageSize = 1024
	}
	if c.BufferFrames <= 0 {
		c.BufferFrames = 1024
	}
	if c.PoolShards <= 0 {
		c.PoolShards = 8
	}
}

// NewMemberDB builds one member's flash → NoFTL → engine stack with
// replication and MVCC on. Exported for cmd/ipaserver, which runs one
// member per process.
func NewMemberDB(chips, blocksPerChip, pageSize, bufferFrames, poolShards, logCapacity int) (*engine.DB, *sim.Timeline, error) {
	g := flash.Geometry{
		Chips: chips, BlocksPerChip: blocksPerChip, PagesPerBlock: 32,
		PageSize: pageSize, OOBSize: 64, Cell: flash.SLC,
	}
	tl := sim.NewTimeline(g.Chips)
	arr, err := flash.New(flash.Config{
		Geometry: g, Timing: flash.SLCTiming(), StrictProgramOrder: true, MaxAppends: 8,
	}, tl)
	if err != nil {
		return nil, nil, err
	}
	dev := noftl.Open(arr)
	if _, err := dev.CreateRegion(noftl.RegionConfig{
		Name: "data", Mode: noftl.ModeSLC, Scheme: core.NewScheme(2, 3),
		BlocksPerChip: blocksPerChip, OverProvision: 0.15,
	}); err != nil {
		return nil, nil, err
	}
	db, err := engine.New(dev, engine.Options{
		PageSize:     pageSize,
		BufferFrames: bufferFrames,
		PoolShards:   poolShards,
		LogCapacity:  logCapacity,
		MVCC:         true,
		Replicated:   true,
		Timeline:     tl,
	})
	if err != nil {
		return nil, nil, err
	}
	return db, tl, nil
}

// NewCluster builds and starts an N-member cluster on ephemeral
// loopback ports. It returns once every server is accepting; leadership
// is already settled (node 1 bootstraps).
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	cfg.defaults()
	lns := make([]net.Listener, cfg.N)
	peers := make(map[uint64]string, cfg.N)
	for i := 0; i < cfg.N; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range lns[:i] {
				l.Close()
			}
			return nil, err
		}
		lns[i] = ln
		peers[uint64(i+1)] = ln.Addr().String()
	}

	c := &Cluster{}
	for i := 0; i < cfg.N; i++ {
		id := uint64(i + 1)
		db, tl, err := NewMemberDB(cfg.Chips, cfg.BlocksPerChip, cfg.PageSize,
			cfg.BufferFrames, cfg.PoolShards, cfg.LogCapacity)
		if err != nil {
			c.Close()
			return nil, err
		}
		ncfg := cfg.Node
		ncfg.NodeID = id
		ncfg.Peers = peers
		ncfg.DB = db
		ncfg.TL = tl
		ncfg.Bootstrap = i == 0
		ncfg.Logf = cfg.Logf
		node, err := NewNode(ncfg)
		if err != nil {
			db.Close()
			c.Close()
			return nil, err
		}
		srv, err := server.New(server.Config{
			DB: db, Timeline: tl, Repl: node, Logf: cfg.Logf,
		})
		if err != nil {
			node.Stop()
			db.Close()
			c.Close()
			return nil, err
		}
		m := &Member{ID: id, Addr: peers[id], DB: db, TL: tl, Node: node, Server: srv}
		c.Members = append(c.Members, m)
		go srv.Serve(lns[i])
	}
	return c, nil
}

// Addrs returns every member's address (living or dead), in id order.
func (c *Cluster) Addrs() []string {
	addrs := make([]string, 0, len(c.Members))
	for _, m := range c.Members {
		addrs = append(addrs, m.Addr)
	}
	return addrs
}

// Leader returns the current leader, or nil when no live member leads.
func (c *Cluster) Leader() *Member {
	for _, m := range c.Members {
		if !m.killed && m.Node.IsLeader() {
			return m
		}
	}
	return nil
}

// WaitLeader blocks until some live member assumes leadership.
func (c *Cluster) WaitLeader(timeout time.Duration) (*Member, error) {
	deadline := time.Now().Add(timeout)
	for {
		if m := c.Leader(); m != nil {
			return m, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("repl: no leader within %v", timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Kill crash-stops a member: connections drop mid-request, nothing
// drains, the engine is abandoned. The cluster's answer is an election.
func (c *Cluster) Kill(id uint64) {
	for _, m := range c.Members {
		if m.ID != id || m.killed {
			continue
		}
		m.killed = true
		m.Server.Kill()
		m.Node.Stop()
	}
}

// Pool returns a cluster-aware client pool seeded with every member.
func (c *Cluster) Pool(opts client.Options) *client.Pool {
	return client.NewClusterPool(c.Addrs(), opts)
}

// Close stops every member. Killed members still get their engines
// closed so the test process does not leak maintenance goroutines.
func (c *Cluster) Close() {
	for _, m := range c.Members {
		if m.closed {
			continue
		}
		m.closed = true
		if m.killed {
			m.DB.Close()
			continue
		}
		m.Node.Stop()
		m.Server.Shutdown(10 * time.Second)
	}
}
