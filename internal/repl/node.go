package repl

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ipa/internal/client"
	"ipa/internal/core"
	"ipa/internal/engine"
	"ipa/internal/sim"
	"ipa/internal/wal"
	"ipa/internal/wire"
)

// Role is a node's place in the cluster.
type Role int32

const (
	// RoleFollower replays the leader's stream and serves snapshot
	// reads at its applied horizon.
	RoleFollower Role = iota
	// RoleCandidate is mid-election.
	RoleCandidate
	// RoleLeader owns the log: it alone runs read-write transactions,
	// and acks COMMIT only after a quorum holds the commit record.
	RoleLeader
)

func (r Role) String() string {
	switch r {
	case RoleLeader:
		return "leader"
	case RoleCandidate:
		return "candidate"
	default:
		return "follower"
	}
}

// epoch marks the first LSN created under a leadership term. A node's
// epoch table describes its own log: termAt(lsn) is the term of the
// leadership that created the record at lsn. Followers adopt the
// leader's table along with its records; a new leader appends one
// entry at promotion. Two logs that agree on (head, termAt(head))
// agree on everything up to head — the Raft log-matching argument,
// with the table standing in for per-record term stamps.
type epoch struct {
	Term uint64   `json:"term"`
	From core.LSN `json:"from"`
}

// ErrNotLeader is returned by WaitCommitted when leadership was lost
// while waiting; the client must retry against the new leader, which
// either has the commit (it survives) or never saw it (clean retry).
var ErrNotLeader = errors.New("repl: not leader")

// Config parameterises a cluster node.
type Config struct {
	NodeID uint64            // this node's id (must be a key in Peers)
	Peers  map[uint64]string // node id → advertised address, all nodes
	DB     *engine.DB        // engine opened with Options.Replicated
	TL     *sim.Timeline

	// Bootstrap starts this node as leader of term 1 instead of as an
	// idle follower. Exactly one node per fresh cluster.
	Bootstrap bool

	HeartbeatInterval time.Duration // leader liveness cadence (default 50ms)
	ElectionTimeout   time.Duration // base; randomized to [1x, 2x) (default 300ms)
	BatchRecords      int           // max records per REPL_APPEND (default 256)
	BatchBytes        int           // max payload bytes per batch (default 256 KiB)
	MaxInflight       int           // shipping window, batches (default 4)
	CommitWait        time.Duration // quorum-ack deadline for COMMIT (default 5s)

	Client client.Options       // dial options for shipping/vote connections
	Logf   func(string, ...any) // optional
}

func (c *Config) defaults() error {
	if c.DB == nil || c.TL == nil {
		return errors.New("repl: Config needs DB and TL")
	}
	if _, ok := c.Peers[c.NodeID]; !ok {
		return fmt.Errorf("repl: node %d missing from peer map", c.NodeID)
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 50 * time.Millisecond
	}
	if c.ElectionTimeout <= 0 {
		c.ElectionTimeout = 300 * time.Millisecond
	}
	if c.BatchRecords <= 0 {
		c.BatchRecords = 256
	}
	if c.BatchBytes <= 0 {
		c.BatchBytes = 256 << 10
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 4
	}
	if c.CommitWait <= 0 {
		c.CommitWait = 5 * time.Second
	}
	return nil
}

type peerAck struct {
	lsn       core.LSN
	bytes     uint64
	connected bool
}

// Node is one member of a replicated cluster. It implements the
// server.Replicator surface: leadership queries, quorum commit waits,
// and handling of the repl opcode family arriving on ordinary client
// sessions.
type Node struct {
	cfg Config
	db  *engine.DB

	// applyMu serialises everything that replays into the engine:
	// stream apply, snapshot install, and promotion. Sessions handling
	// REPL_APPEND from a reconnecting leader contend here, never in
	// the engine.
	applyMu sync.Mutex
	applier *engine.Applier
	w       *sim.Worker // snapshot-install worker, guarded by applyMu

	mu          sync.Mutex
	cond        *sync.Cond // broadcast on commit advance / step-down
	role        Role
	term        uint64
	votedFor    map[uint64]uint64 // term → candidate granted our vote
	leaderID    uint64            // 0 = unknown
	seenLeader  bool              // gates elections until first contact
	lastContact time.Time
	epochs      []epoch
	commit      core.LSN           // quorum-replicated horizon (leader)
	knownCommit core.LSN           // highest commit horizon seen from any leader
	voteBar     core.LSN           // while head < voteBar: abstain from elections
	acks        map[uint64]peerAck // leader: per-follower progress
	shipStop    chan struct{}      // per-leadership shipper kill switch
	stopped     bool

	shipWG sync.WaitGroup
	stop   chan struct{}
	wg     sync.WaitGroup

	elections      atomic.Uint64
	batchesShipped atomic.Uint64
	recordsShipped atomic.Uint64
	snapsSent      atomic.Uint64
	snapsRecv      atomic.Uint64
}

// NewNode wires a node over an already-open replicated engine and
// starts its election timer. A Bootstrap node assumes leadership of
// term 1 immediately; everyone else idles as a follower until a leader
// makes contact (so a cold standby never elects itself into an empty
// cluster of one).
func NewNode(cfg Config) (*Node, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	n := &Node{
		cfg:      cfg,
		db:       cfg.DB,
		votedFor: make(map[uint64]uint64),
		acks:     make(map[uint64]peerAck),
		stop:     make(chan struct{}),
		w:        cfg.TL.NewWorker(),
	}
	n.cond = sync.NewCond(&n.mu)
	applier, err := cfg.DB.NewApplier(cfg.TL.NewWorker())
	if err != nil {
		return nil, err
	}
	n.applier = applier
	if cfg.Bootstrap {
		n.mu.Lock()
		n.term = 1
		n.votedFor[1] = cfg.NodeID
		// Epoch from LSN 1: every record in the seed log (schema,
		// preload) belongs to the bootstrap leadership.
		n.noteEpochLocked(1, 1)
		n.becomeLeaderLocked(1)
		n.mu.Unlock()
	}
	n.wg.Add(2)
	go n.electionLoop()
	go n.commitTicker()
	return n, nil
}

// Stop halts elections, shipping and commit waits. The engine is left
// open (the server owns its lifecycle).
func (n *Node) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	n.stopShippersLocked()
	close(n.stop)
	n.cond.Broadcast()
	n.mu.Unlock()
	n.wg.Wait()
	n.shipWG.Wait()
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// IsLeader reports whether this node currently owns the log.
func (n *Node) IsLeader() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role == RoleLeader
}

// LeaderAddr returns the advertised address of the last known leader,
// or "" when no leader is known (mid-election).
func (n *Node) LeaderAddr() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.leaderID == 0 {
		return ""
	}
	return n.cfg.Peers[n.leaderID]
}

// leading reports whether this node is still leader of the given term.
func (n *Node) leading(term uint64) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role == RoleLeader && n.term == term
}

// WaitCommitted blocks until the given LSN is replicated on a quorum,
// then returns nil: the commit record survives any single failure,
// because the next leader's electing majority intersects the acking
// quorum and the up-to-date vote rule picks a member that has it.
// Returns ErrNotLeader if leadership is lost first — the commit may or
// may not survive, and the client-visible error says so.
func (n *Node) WaitCommitted(lsn core.LSN) error {
	if len(n.cfg.Peers) <= 1 {
		return nil // single-node cluster: local durability is quorum
	}
	deadline := time.Now().Add(n.cfg.CommitWait)
	n.mu.Lock()
	defer n.mu.Unlock()
	for {
		if n.role != RoleLeader {
			return ErrNotLeader
		}
		n.recomputeCommitLocked()
		if n.commit >= lsn {
			return nil
		}
		if n.stopped {
			return ErrNotLeader
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("repl: no quorum ack for lsn %d within %v", lsn, n.cfg.CommitWait)
		}
		n.cond.Wait()
	}
}

// commitTicker periodically wakes WaitCommitted waiters so deadlines
// fire even when no acks arrive.
func (n *Node) commitTicker() {
	defer n.wg.Done()
	t := time.NewTicker(20 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.cond.Broadcast()
		}
	}
}

// CommitLSN returns the quorum-replicated horizon (leader view).
func (n *Node) CommitLSN() core.LSN {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.commit
}

// AppliedLSN returns the follower's replay horizon.
func (n *Node) AppliedLSN() core.LSN { return n.applier.AppliedLSN() }

// --- term & epoch bookkeeping ----------------------------------------

// observeTerm steps down if a higher term is seen anywhere.
func (n *Node) observeTerm(term uint64) {
	n.mu.Lock()
	n.observeTermLocked(term)
	n.mu.Unlock()
}

func (n *Node) observeTermLocked(term uint64) {
	if term <= n.term {
		return
	}
	n.term = term
	if n.role == RoleLeader {
		n.logf("repl: node %d deposed by term %d", n.cfg.NodeID, term)
		n.stopShippersLocked()
	}
	n.role = RoleFollower
	n.leaderID = 0
	n.cond.Broadcast()
}

// observeLeaderLocked processes contact from a node claiming to lead
// `term`. Assumes term >= n.term already ensured by the caller.
func (n *Node) observeLeaderLocked(term, leaderID uint64) {
	n.observeTermLocked(term)
	if term == n.term && n.role != RoleLeader {
		n.role = RoleFollower
		n.leaderID = leaderID
		n.seenLeader = true
		n.lastContact = time.Now()
	}
}

func (n *Node) noteEpochLocked(term uint64, from core.LSN) {
	if len(n.epochs) > 0 && n.epochs[len(n.epochs)-1].Term >= term {
		return
	}
	n.epochs = append(n.epochs, epoch{Term: term, From: from})
}

// termAtLocked returns the term of the leadership that created the
// record at lsn in this node's log (0 for the empty log).
func (n *Node) termAtLocked(lsn core.LSN) uint64 {
	for i := len(n.epochs) - 1; i >= 0; i-- {
		if lsn >= n.epochs[i].From {
			return n.epochs[i].Term
		}
	}
	return 0
}

func (n *Node) termAt(lsn core.LSN) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.termAtLocked(lsn)
}

func (n *Node) epochsCopy() []epoch {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]epoch(nil), n.epochs...)
}

// appendPayload builds one REPL_APPEND frame with the current commit
// horizon and epoch table.
func (n *Node) appendPayload(term uint64, recs []wal.Record) []byte {
	n.mu.Lock()
	commit := n.commit
	epochs := append([]epoch(nil), n.epochs...)
	n.mu.Unlock()
	return encodeAppend(term, n.cfg.NodeID, commit, epochs, recs)
}

// --- leader commit & ack tracking ------------------------------------

// recomputeCommitLocked advances the quorum horizon: the highest LSN
// held by a majority (leader head counts as one member). Monotone.
func (n *Node) recomputeCommitLocked() {
	if n.role != RoleLeader {
		return
	}
	lsns := make([]core.LSN, 0, len(n.cfg.Peers))
	lsns = append(lsns, n.db.WAL().Head())
	for id := range n.cfg.Peers {
		if id == n.cfg.NodeID {
			continue
		}
		lsns = append(lsns, n.acks[id].lsn)
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] > lsns[j] })
	if q := lsns[len(lsns)/2]; q > n.commit {
		n.commit = q
		n.cond.Broadcast()
	}
}

// setAck records follower progress and re-derives the commit horizon
// and the log retain floor (records below every connected follower's
// ack can be truncated; a follower that reconnects from further back
// is resynced by snapshot).
func (n *Node) setAck(peerID uint64, lsn core.LSN, bytes uint64, connected bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role != RoleLeader {
		return
	}
	// No monotonicity clamp: a snapshot resync legitimately regresses
	// a follower's log position, and overstating it would let commits
	// ack without a real quorum.
	n.acks[peerID] = peerAck{lsn: lsn, bytes: bytes, connected: connected}
	n.recomputeCommitLocked()

	floor := core.LSN(0)
	for _, a := range n.acks {
		if !a.connected {
			continue
		}
		if floor == 0 || a.lsn+1 < floor {
			floor = a.lsn + 1
		}
	}
	n.db.WAL().SetRetainFloor(floor)
}

func (n *Node) setConnected(peerID uint64, connected bool) {
	n.mu.Lock()
	if a, ok := n.acks[peerID]; ok && a.connected != connected {
		a.connected = connected
		n.acks[peerID] = a
	}
	n.mu.Unlock()
}

// --- leadership transitions ------------------------------------------

func (n *Node) becomeLeaderLocked(term uint64) {
	n.role = RoleLeader
	n.leaderID = n.cfg.NodeID
	n.seenLeader = true
	n.lastContact = time.Now()
	n.acks = make(map[uint64]peerAck)
	n.commit = 0
	stop := make(chan struct{})
	n.shipStop = stop
	for id, addr := range n.cfg.Peers {
		if id == n.cfg.NodeID {
			continue
		}
		n.shipWG.Add(1)
		go n.runShipper(term, id, addr, stop)
	}
	n.recomputeCommitLocked()
}

func (n *Node) stopShippersLocked() {
	if n.shipStop != nil {
		close(n.shipStop)
		n.shipStop = nil
	}
	n.db.WAL().SetRetainFloor(0)
}

// electionLoop watches for leader silence and runs campaigns. A node
// that has never heard from any leader stays quiet: fresh followers
// wait to be adopted rather than electing themselves.
func (n *Node) electionLoop() {
	defer n.wg.Done()
	rng := rand.New(rand.NewSource(time.Now().UnixNano() ^ int64(n.cfg.NodeID*0x9e3779b9)))
	timeout := n.cfg.ElectionTimeout + time.Duration(rng.Int63n(int64(n.cfg.ElectionTimeout)))
	tick := time.NewTicker(n.cfg.HeartbeatInterval / 2)
	defer tick.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-tick.C:
		}
		n.mu.Lock()
		if n.role == RoleLeader || !n.seenLeader || time.Since(n.lastContact) < timeout ||
			n.db.WAL().Head() < n.voteBar {
			n.mu.Unlock()
			continue
		}
		// Leader is silent: campaign.
		n.term++
		term := n.term
		n.role = RoleCandidate
		n.votedFor[term] = n.cfg.NodeID
		n.leaderID = 0
		n.lastContact = time.Now()
		lastLSN := n.db.WAL().Head()
		lastTerm := n.termAtLocked(lastLSN)
		n.mu.Unlock()
		n.elections.Add(1)
		n.logf("repl: node %d campaigning for term %d (log %d@%d)",
			n.cfg.NodeID, term, lastLSN, lastTerm)

		votes := n.requestVotes(term, lastLSN, lastTerm)
		if votes*2 <= len(n.cfg.Peers) {
			n.mu.Lock()
			if n.role == RoleCandidate && n.term == term {
				n.role = RoleFollower
			}
			n.mu.Unlock()
			timeout = n.cfg.ElectionTimeout + time.Duration(rng.Int63n(int64(n.cfg.ElectionTimeout)))
			continue
		}
		n.promoteAndLead(term)
		timeout = n.cfg.ElectionTimeout + time.Duration(rng.Int63n(int64(n.cfg.ElectionTimeout)))
	}
}

// promoteAndLead finishes a won election: open a new epoch, roll back
// the dead leader's in-flight transactions (their abort records are
// the first entries of the new epoch — the moral equivalent of Raft's
// term-opening no-op), then start shipping. applyMu is held across
// promotion so no stale stream records interleave with the rollback.
func (n *Node) promoteAndLead(term uint64) {
	n.applyMu.Lock()
	defer n.applyMu.Unlock()
	n.mu.Lock()
	if n.term != term || n.role != RoleCandidate {
		n.mu.Unlock()
		return
	}
	n.noteEpochLocked(term, n.db.WAL().Head()+1)
	n.mu.Unlock()

	err := n.applier.Promote()

	n.mu.Lock()
	defer n.mu.Unlock()
	if err != nil {
		n.logf("repl: node %d promote failed: %v", n.cfg.NodeID, err)
		n.role = RoleFollower
		return
	}
	if n.term != term || n.stopped {
		n.role = RoleFollower
		return
	}
	n.becomeLeaderLocked(term)
	n.logf("repl: node %d elected leader for term %d", n.cfg.NodeID, term)
}

// requestVotes campaigns against every peer in parallel and returns
// the number of grants including our own vote.
func (n *Node) requestVotes(term uint64, lastLSN core.LSN, lastTerm uint64) int {
	req := voteReq{Term: term, Candidate: n.cfg.NodeID, LastLSN: lastLSN, LastTerm: lastTerm}.encode()
	opts := n.cfg.Client
	opts.DialTimeout = n.cfg.ElectionTimeout / 2
	opts.RequestTimeout = n.cfg.ElectionTimeout
	opts.MaxRetries = 1
	results := make(chan bool, len(n.cfg.Peers))
	asked := 0
	for id, addr := range n.cfg.Peers {
		if id == n.cfg.NodeID {
			continue
		}
		asked++
		go func(addr string) {
			granted := false
			if c, err := client.Dial(addr, opts); err == nil {
				if f, err := c.Do(wire.OpVoteReq, req); err == nil {
					if vr, err := decodeVoteResp(f.Payload); err == nil {
						if vr.Term > term {
							n.observeTerm(vr.Term)
						}
						granted = vr.Granted && vr.Term == term
					}
				}
				c.Close()
			}
			results <- granted
		}(addr)
	}
	votes := 1
	deadline := time.After(n.cfg.ElectionTimeout)
	for i := 0; i < asked; i++ {
		select {
		case g := <-results:
			if g {
				votes++
			}
		case <-deadline:
			return votes
		case <-n.stop:
			return votes
		}
		if votes*2 > len(n.cfg.Peers) {
			return votes
		}
	}
	return votes
}

// --- inbound frames ---------------------------------------------------

// HandleFrame processes one repl-family request arriving on a server
// session and returns (status, response payload). It implements the
// server.Replicator interface.
func (n *Node) HandleFrame(kind byte, payload []byte) (byte, []byte) {
	switch kind {
	case wire.OpReplHello:
		return n.handleHello(payload)
	case wire.OpReplAppend:
		return n.handleAppend(payload)
	case wire.OpReplSnap:
		return n.handleSnap(payload)
	case wire.OpVoteReq:
		return n.handleVote(payload)
	default:
		return wire.StatusBadRequest, []byte(fmt.Sprintf("repl: unexpected opcode %d", kind))
	}
}

func (n *Node) handleHello(payload []byte) (byte, []byte) {
	h, err := decodeHelloReq(payload)
	if err != nil {
		return wire.StatusBadRequest, []byte(err.Error())
	}
	n.mu.Lock()
	if h.Term >= n.term {
		n.observeLeaderLocked(h.Term, h.NodeID)
	}
	head := n.db.WAL().Head()
	resp := helloResp{
		Term:          n.term,
		Head:          head,
		LastTerm:      n.termAtLocked(head),
		AppendedBytes: n.db.WAL().AppendedBytes(),
	}
	n.mu.Unlock()
	return wire.StatusOK, resp.encode()
}

func (n *Node) ackNow(term uint64, needSnap bool) ack {
	return ack{
		Term:          term,
		Head:          n.db.WAL().Head(),
		AppendedBytes: n.db.WAL().AppendedBytes(),
		NeedSnap:      needSnap,
	}
}

func (n *Node) handleAppend(payload []byte) (byte, []byte) {
	term, leaderID, commit, epochs, recs, err := decodeAppend(payload)
	if err != nil {
		return wire.StatusBadRequest, []byte(err.Error())
	}
	n.mu.Lock()
	if term < n.term || (term == n.term && n.role == RoleLeader) {
		// Stale leader: tell it the real term so it steps down.
		cur := n.term
		n.mu.Unlock()
		return wire.StatusOK, n.ackNow(cur, false).encode()
	}
	n.observeLeaderLocked(term, leaderID)
	// Adopt the leader's epoch table with its records: our log is (a
	// prefix of) the leader's, so its table describes ours.
	n.epochs = append(n.epochs[:0], epochs...)
	if commit > n.knownCommit {
		n.knownCommit = commit
	}
	n.mu.Unlock()

	needSnap := false
	if len(recs) > 0 {
		n.applyMu.Lock()
		aerr := n.applier.Apply(recs)
		n.applyMu.Unlock()
		if aerr != nil {
			n.logf("repl: node %d apply failed at head %d: %v",
				n.cfg.NodeID, n.db.WAL().Head(), aerr)
			needSnap = true
		}
	}
	return wire.StatusOK, n.ackNow(term, needSnap).encode()
}

func (n *Node) handleSnap(payload []byte) (byte, []byte) {
	term, leaderID, epochs, image, err := decodeSnap(payload)
	if err != nil {
		return wire.StatusBadRequest, []byte(err.Error())
	}
	n.mu.Lock()
	if term < n.term || (term == n.term && n.role == RoleLeader) {
		cur := n.term
		n.mu.Unlock()
		return wire.StatusOK, n.ackNow(cur, false).encode()
	}
	n.observeLeaderLocked(term, leaderID)
	n.mu.Unlock()

	var snap engine.ReplicaSnapshot
	if err := json.Unmarshal(image, &snap); err != nil {
		return wire.StatusBadRequest, []byte(fmt.Sprintf("repl: bad snapshot image: %v", err))
	}
	n.applyMu.Lock()
	err = n.db.InstallSnapshot(n.w, &snap)
	if err == nil {
		n.applier.Resync()
		n.mu.Lock()
		n.epochs = append(n.epochs[:0], epochs...)
		// A snapshot that splices our log below an LSN we know was
		// quorum-committed makes our vote temporarily dangerous: until
		// the stream restores the committed prefix, we might help
		// elect a candidate that lacks acked commits. Abstain until
		// our head regrows past the bar (milliseconds, normally: the
		// leader that sent the snapshot streams the suffix next).
		if snap.PrimeLSN < n.knownCommit && n.knownCommit > n.voteBar {
			n.voteBar = n.knownCommit
		}
		n.mu.Unlock()
		n.snapsRecv.Add(1)
		n.logf("repl: node %d installed snapshot at lsn %d (%d pages)",
			n.cfg.NodeID, snap.PrimeLSN, len(snap.Pages))
	}
	n.applyMu.Unlock()
	if err != nil {
		return wire.StatusInternal, []byte(err.Error())
	}
	return wire.StatusOK, n.ackNow(term, false).encode()
}

func (n *Node) handleVote(payload []byte) (byte, []byte) {
	v, err := decodeVoteReq(payload)
	if err != nil {
		return wire.StatusBadRequest, []byte(err.Error())
	}
	n.mu.Lock()
	n.observeTermLocked(v.Term)
	granted := false
	myLast := n.db.WAL().Head()
	if v.Term == n.term && n.role != RoleLeader && myLast >= n.voteBar {
		prev, voted := n.votedFor[v.Term]
		myLastTerm := n.termAtLocked(myLast)
		upToDate := v.LastTerm > myLastTerm ||
			(v.LastTerm == myLastTerm && v.LastLSN >= myLast)
		if (!voted || prev == v.Candidate) && upToDate {
			n.votedFor[v.Term] = v.Candidate
			granted = true
			// A granted vote counts as cluster contact: restart the
			// election timer and let this node campaign later if the
			// candidate also dies.
			n.lastContact = time.Now()
			n.seenLeader = true
		}
	}
	resp := voteResp{Term: n.term, Granted: granted}
	n.mu.Unlock()
	return wire.StatusOK, resp.encode()
}

// --- stats ------------------------------------------------------------

// PeerStats is one follower's replication progress as the leader sees
// it.
type PeerStats struct {
	Addr       string `json:"addr"`
	Connected  bool   `json:"connected"`
	AckedLSN   uint64 `json:"acked_lsn"`
	LagRecords uint64 `json:"lag_records"`
	// LagBytes is byte-exact for followers that streamed from LSN 1;
	// a snapshot-joined follower's byte counter restarts at 0, so its
	// lag reads high until the next leadership change.
	LagBytes uint64 `json:"lag_bytes"`
}

// Stats is the node's replication snapshot for /stats.
type Stats struct {
	NodeID        uint64               `json:"node_id"`
	Role          string               `json:"role"`
	Term          uint64               `json:"term"`
	LeaderID      uint64               `json:"leader_id"`
	LeaderAddr    string               `json:"leader_addr"`
	HeadLSN       uint64               `json:"head_lsn"`
	CommitLSN     uint64               `json:"commit_lsn"`
	AppliedLSN    uint64               `json:"applied_lsn"`
	Elections     uint64               `json:"elections"`
	BatchesSent   uint64               `json:"batches_sent"`
	RecordsSent   uint64               `json:"records_sent"`
	SnapshotsSent uint64               `json:"snapshots_sent"`
	SnapshotsRecv uint64               `json:"snapshots_received"`
	Peers         map[string]PeerStats `json:"peers,omitempty"`
}

// StatsDoc implements server.Replicator.
func (n *Node) StatsDoc() any { return n.Stats() }

// Stats snapshots the node's replication state.
func (n *Node) Stats() Stats {
	head := n.db.WAL().Head()
	headBytes := n.db.WAL().AppendedBytes()
	n.mu.Lock()
	defer n.mu.Unlock()
	s := Stats{
		NodeID:        n.cfg.NodeID,
		Role:          n.role.String(),
		Term:          n.term,
		LeaderID:      n.leaderID,
		LeaderAddr:    n.cfg.Peers[n.leaderID],
		HeadLSN:       uint64(head),
		CommitLSN:     uint64(n.commit),
		AppliedLSN:    uint64(n.applier.AppliedLSN()),
		Elections:     n.elections.Load(),
		BatchesSent:   n.batchesShipped.Load(),
		RecordsSent:   n.recordsShipped.Load(),
		SnapshotsSent: n.snapsSent.Load(),
		SnapshotsRecv: n.snapsRecv.Load(),
	}
	if n.role == RoleLeader && len(n.acks) > 0 {
		s.Peers = make(map[string]PeerStats, len(n.acks))
		for id, a := range n.acks {
			ps := PeerStats{
				Addr:      n.cfg.Peers[id],
				Connected: a.connected,
				AckedLSN:  uint64(a.lsn),
			}
			if head > a.lsn {
				ps.LagRecords = uint64(head - a.lsn)
			}
			if headBytes > a.bytes {
				ps.LagBytes = headBytes - a.bytes
			}
			s.Peers[fmt.Sprintf("node-%d", id)] = ps
		}
	}
	return s
}
