// Package repl is the replication layer over the storage engine: a
// primary ships its WAL — the contiguously-published, gap-free record
// stream PR 9's log exposes — to followers that replay it with exact
// LSN parity, serve MVCC snapshot reads at their applied horizon, and
// elect a replacement primary (Raft-style term/vote/heartbeat) when the
// leader dies. See DESIGN.md "Replication & failover" for the safety
// argument.
//
// This file is the wire codec for the repl opcode family. Requests ride
// the ordinary frame format (internal/wire); responses are StatusOK
// frames whose payload leads with a tag byte (wire.OpReplAck /
// wire.OpVoteResp) because response frames carry a status, not an
// opcode.
package repl

import (
	"fmt"

	"ipa/internal/core"
	"ipa/internal/wal"
	"ipa/internal/wire"
)

// helloReq is REPL_HELLO: a leader introducing itself to a follower and
// asking where its log ends.
type helloReq struct {
	NodeID uint64
	Term   uint64
}

func (h helloReq) encode() []byte {
	return wire.NewBuilder(16).Uint64(h.NodeID).Uint64(h.Term).Bytes()
}

func decodeHelloReq(p []byte) (helloReq, error) {
	r := wire.NewReader(p)
	h := helloReq{NodeID: r.Uint64(), Term: r.Uint64()}
	return h, r.Err()
}

// helloResp reports the follower's log position: head LSN, the term
// under which its last record was shipped (the Raft prev-term
// consistency check, done once per connection), and its appended-bytes
// counter (the byte-exact lag metric).
type helloResp struct {
	Term          uint64
	Head          core.LSN
	LastTerm      uint64
	AppendedBytes uint64
}

func (h helloResp) encode() []byte {
	return wire.NewBuilder(32).
		Uint64(h.Term).Uint64(uint64(h.Head)).Uint64(h.LastTerm).Uint64(h.AppendedBytes).Bytes()
}

func decodeHelloResp(p []byte) (helloResp, error) {
	r := wire.NewReader(p)
	h := helloResp{
		Term:          r.Uint64(),
		Head:          core.LSN(r.Uint64()),
		LastTerm:      r.Uint64(),
		AppendedBytes: r.Uint64(),
	}
	return h, r.Err()
}

// ack is the response payload of REPL_APPEND and REPL_SNAPSHOT.
type ack struct {
	Term          uint64
	Head          core.LSN // follower's applied horizon
	AppendedBytes uint64
	NeedSnap      bool // apply failed (gap/divergence); send a snapshot
}

func (a ack) encode() []byte {
	b := wire.NewBuilder(32)
	b.Uint16(uint16(wire.OpReplAck)) // tag
	b.Uint64(a.Term).Uint64(uint64(a.Head)).Uint64(a.AppendedBytes)
	if a.NeedSnap {
		b.Uint16(1)
	} else {
		b.Uint16(0)
	}
	return b.Bytes()
}

func decodeAck(p []byte) (ack, error) {
	r := wire.NewReader(p)
	if tag := r.Uint16(); r.Err() == nil && tag != uint16(wire.OpReplAck) {
		return ack{}, fmt.Errorf("repl: response tag %d is not REPL_ACK", tag)
	}
	a := ack{
		Term:          r.Uint64(),
		Head:          core.LSN(r.Uint64()),
		AppendedBytes: r.Uint64(),
	}
	a.NeedSnap = r.Uint16() != 0
	return a, r.Err()
}

// voteReq is VOTE_REQ: a candidate asking for this term, carrying its
// log position for the up-to-date check.
type voteReq struct {
	Term      uint64
	Candidate uint64
	LastLSN   core.LSN
	LastTerm  uint64
}

func (v voteReq) encode() []byte {
	return wire.NewBuilder(32).
		Uint64(v.Term).Uint64(v.Candidate).Uint64(uint64(v.LastLSN)).Uint64(v.LastTerm).Bytes()
}

func decodeVoteReq(p []byte) (voteReq, error) {
	r := wire.NewReader(p)
	v := voteReq{
		Term:      r.Uint64(),
		Candidate: r.Uint64(),
		LastLSN:   core.LSN(r.Uint64()),
		LastTerm:  r.Uint64(),
	}
	return v, r.Err()
}

// voteResp answers a VOTE_REQ.
type voteResp struct {
	Term    uint64
	Granted bool
}

func (v voteResp) encode() []byte {
	b := wire.NewBuilder(16)
	b.Uint16(uint16(wire.OpVoteResp)) // tag
	b.Uint64(v.Term)
	if v.Granted {
		b.Uint16(1)
	} else {
		b.Uint16(0)
	}
	return b.Bytes()
}

func decodeVoteResp(p []byte) (voteResp, error) {
	r := wire.NewReader(p)
	if tag := r.Uint16(); r.Err() == nil && tag != uint16(wire.OpVoteResp) {
		return voteResp{}, fmt.Errorf("repl: response tag %d is not VOTE_RESP", tag)
	}
	v := voteResp{Term: r.Uint64()}
	v.Granted = r.Uint16() != 0
	return v, r.Err()
}

// --- WAL record batches (REPL_APPEND) --------------------------------

// encodeAppend packs a batch of WAL records (empty = heartbeat), along
// with the leader's commit horizon and epoch table. The follower
// adopts the epochs with the records: a record's term is the term of
// the leadership that CREATED it, which only the epoch table knows — a
// new leader re-ships old-term records, so tagging them with the
// shipping term would make every failover look like divergence. The
// commit horizon feeds the follower's vote bar: it must never help
// elect a candidate whose log ends below an LSN it knows was
// quorum-committed.
func encodeAppend(term, leaderID uint64, commit core.LSN, epochs []epoch, recs []wal.Record) []byte {
	size := 40 + 16*len(epochs)
	for _, r := range recs {
		size += r.Size() + 64
	}
	b := wire.NewBuilder(size)
	b.Uint64(term).Uint64(leaderID).Uint64(uint64(commit))
	b.Uint32(uint32(len(epochs)))
	for _, e := range epochs {
		b.Uint64(e.Term).Uint64(uint64(e.From))
	}
	b.Uint32(uint32(len(recs)))
	for _, r := range recs {
		encodeRecord(b, r)
	}
	return b.Bytes()
}

func decodeAppend(p []byte) (term, leaderID uint64, commit core.LSN, epochs []epoch, recs []wal.Record, err error) {
	r := wire.NewReader(p)
	term, leaderID = r.Uint64(), r.Uint64()
	commit = core.LSN(r.Uint64())
	ne := int(r.Uint32())
	if r.Err() == nil && ne > 0 {
		epochs = make([]epoch, 0, ne)
		for i := 0; i < ne; i++ {
			epochs = append(epochs, epoch{Term: r.Uint64(), From: core.LSN(r.Uint64())})
		}
	}
	n := int(r.Uint32())
	if err := r.Err(); err != nil {
		return 0, 0, 0, nil, nil, err
	}
	if n > 0 {
		recs = make([]wal.Record, 0, n)
		for i := 0; i < n; i++ {
			rec, derr := decodeRecord(r)
			if derr != nil {
				return 0, 0, 0, nil, nil, derr
			}
			recs = append(recs, rec)
		}
	}
	return term, leaderID, commit, epochs, recs, r.Err()
}

// encodeRecord serialises one wal.Record, including the checkpoint
// tables (so shipped checkpoints keep LSN parity and drive
// follower-local truncation).
func encodeRecord(b *wire.Builder, r wal.Record) {
	b.Uint64(uint64(r.LSN))
	b.Uint16(uint16(r.Type))
	b.Uint64(r.TxID)
	b.Uint64(uint64(r.PrevLSN))
	b.Uint64(uint64(r.Page))
	b.Uint16(uint16(r.Op))
	b.Uint16(r.Slot)
	b.Uint64(uint64(r.UndoNext))
	b.Blob(r.Before)
	b.Blob(r.After)
	b.Blob(r.Meta)
	b.Uint32(uint32(len(r.ActiveTxs)))
	for id, lsn := range r.ActiveTxs {
		b.Uint64(id).Uint64(uint64(lsn))
	}
	b.Uint32(uint32(len(r.DirtyPages)))
	for id, lsn := range r.DirtyPages {
		b.Uint64(uint64(id)).Uint64(uint64(lsn))
	}
}

func decodeRecord(r *wire.Reader) (wal.Record, error) {
	rec := wal.Record{
		LSN:     core.LSN(r.Uint64()),
		Type:    wal.RecType(r.Uint16()),
		TxID:    r.Uint64(),
		PrevLSN: core.LSN(r.Uint64()),
		Page:    core.PageID(r.Uint64()),
		Op:      wal.PageOp(r.Uint16()),
		Slot:    r.Uint16(),
	}
	rec.UndoNext = core.LSN(r.Uint64())
	rec.Before = r.Blob()
	rec.After = r.Blob()
	rec.Meta = r.Blob()
	if n := int(r.Uint32()); n > 0 && r.Err() == nil {
		rec.ActiveTxs = make(map[uint64]core.LSN, n)
		for i := 0; i < n; i++ {
			id, lsn := r.Uint64(), core.LSN(r.Uint64())
			rec.ActiveTxs[id] = lsn
		}
	}
	if n := int(r.Uint32()); n > 0 && r.Err() == nil {
		rec.DirtyPages = make(map[core.PageID]core.LSN, n)
		for i := 0; i < n; i++ {
			id, lsn := core.PageID(r.Uint64()), core.LSN(r.Uint64())
			rec.DirtyPages[id] = lsn
		}
	}
	return rec, r.Err()
}

// encodeSnap packs a REPL_SNAPSHOT: the leader's term, id and epoch
// table (the follower adopts it — its log history is now the leader's),
// plus the JSON engine image.
func encodeSnap(term, leaderID uint64, epochs []epoch, image []byte) []byte {
	b := wire.NewBuilder(32 + 16*len(epochs) + len(image))
	b.Uint64(term).Uint64(leaderID)
	b.Uint32(uint32(len(epochs)))
	for _, e := range epochs {
		b.Uint64(e.Term).Uint64(uint64(e.From))
	}
	b.Blob(image)
	return b.Bytes()
}

func decodeSnap(p []byte) (term, leaderID uint64, epochs []epoch, image []byte, err error) {
	r := wire.NewReader(p)
	term, leaderID = r.Uint64(), r.Uint64()
	n := int(r.Uint32())
	if r.Err() == nil && n > 0 {
		epochs = make([]epoch, 0, n)
		for i := 0; i < n; i++ {
			epochs = append(epochs, epoch{Term: r.Uint64(), From: core.LSN(r.Uint64())})
		}
	}
	image = r.Blob()
	return term, leaderID, epochs, image, r.Err()
}
