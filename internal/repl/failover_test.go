package repl

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ipa/internal/client"
	"ipa/internal/engine"
	"ipa/internal/wire"
	"ipa/internal/workload"
)

// tpcbSums aggregates one consistent view of the TPC-B tables.
type tpcbSums struct {
	branches, tellers, accounts int
	branchSum, tellerSum        uint64
	acctSum, histSum            uint64
	histSeqs                    map[uint64]bool
}

var (
	schAcct, _ = engine.NewSchema(4, 4, 8, 84)
	schHist, _ = engine.NewSchema(4, 4, 4, 8, 8)
)

// sumEntries folds balance (control/account tables) or delta+seq
// (history) out of one table scan.
func (s *tpcbSums) add(table string, entries []client.ScanEntry) {
	for _, e := range entries {
		switch table {
		case "tpcb_branch":
			s.branches++
			s.branchSum += schAcct.GetUint(e.Data, 2)
		case "tpcb_teller":
			s.tellers++
			s.tellerSum += schAcct.GetUint(e.Data, 2)
		case "tpcb_account":
			s.accounts++
			s.acctSum += schAcct.GetUint(e.Data, 2)
		case "tpcb_history":
			s.histSum += schHist.GetUint(e.Data, 3)
			s.histSeqs[schHist.GetUint(e.Data, 4)] = true
		}
	}
}

// audit checks the TPC-B invariant: every committed Account_Update adds
// the same delta to one branch, one teller and one account, and logs it
// in history — so each table's total drift from its seed balance equals
// the sum of history deltas.
func (s *tpcbSums) audit(t *testing.T, where string) {
	t.Helper()
	drifts := [3]uint64{
		s.branchSum - uint64(s.branches)*1_000_000,
		s.tellerSum - uint64(s.tellers)*100_000,
		s.acctSum - uint64(s.accounts)*10_000,
	}
	for i, d := range drifts {
		if d != s.histSum {
			t.Fatalf("%s: balance drift[%d]=%d but history-sum=%d (torn transaction)",
				where, i, d, s.histSum)
		}
	}
}

var tpcbTables = []string{"tpcb_branch", "tpcb_teller", "tpcb_account", "tpcb_history"}

// sumsViaPool scans the four tables on the current leader. The scans
// run in one Do call but are not a single snapshot; callers quiesce the
// load first.
func sumsViaPool(t *testing.T, p *client.Pool) *tpcbSums {
	t.Helper()
	s := &tpcbSums{histSeqs: make(map[uint64]bool)}
	for _, table := range tpcbTables {
		err := p.Do(func(c *client.Conn) error {
			entries, err := c.Scan(table, 0)
			if err != nil {
				return err
			}
			s.add(table, entries)
			return nil
		})
		if err != nil {
			t.Fatalf("scan %s: %v", table, err)
		}
	}
	return s
}

// sumsViaSnapshot scans the four tables under one MVCC snapshot on a
// specific member — the replica-read path a follower serves while the
// stream keeps applying underneath it.
func sumsViaSnapshot(t *testing.T, addr string) *tpcbSums {
	t.Helper()
	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("dial follower %s: %v", addr, err)
	}
	defer c.Close()
	tx, _, err := c.BeginSnapshot()
	if err != nil {
		t.Fatalf("BeginSnapshot on %s: %v", addr, err)
	}
	defer c.Abort(tx)
	s := &tpcbSums{histSeqs: make(map[uint64]bool)}
	for _, table := range tpcbTables {
		entries, err := c.SnapshotScan(tx, table, 0)
		if err != nil {
			t.Fatalf("snapshot scan %s on %s: %v", table, addr, err)
		}
		s.add(table, entries)
	}
	return s
}

// fatalLoadErr reports load-worker errors that indicate real breakage
// rather than a transaction whose fate was lost to the failover.
func fatalLoadErr(err error) bool {
	return errors.Is(err, wire.ErrNoTable) || errors.Is(err, wire.ErrNoTuple) ||
		errors.Is(err, wire.ErrBadRequest)
}

// TestClusterFailover is the headline acceptance test: a 3-node cluster
// takes TPC-B load, the primary is crash-killed mid-stream, a follower
// wins the election, clients resume through REDIRECT against the new
// leader, and no acknowledged commit is lost. Afterwards a surviving
// follower's MVCC snapshot reads pass the same balance audit.
func TestClusterFailover(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{
		N: 3,
		Node: Config{
			HeartbeatInterval: 25 * time.Millisecond,
			ElectionTimeout:   150 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	boot := cl.Members[0]
	tp := workload.NewTPCB(boot.DB, "data", 2, 200)
	if err := tp.Load(boot.TL.NewWorker()); err != nil {
		t.Fatalf("preload: %v", err)
	}

	pool := cl.Pool(client.Options{RequestTimeout: 3 * time.Second})
	defer pool.Close()
	ct := workload.NewClusterTPCB()
	if err := ct.Init(pool); err != nil {
		t.Fatalf("init: %v", err)
	}

	var (
		mu       sync.Mutex
		acked    = make(map[uint64]bool)
		phase2   = 0 // acks after the kill — proof the client resumed
		killed   = false
		aborts   = 0
		unknowns = 0
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				seq, err := ct.RunOne(pool, rng)
				mu.Lock()
				switch {
				case err == nil:
					acked[seq] = true
					if killed {
						phase2++
					}
				case workload.Aborted(err):
					aborts++
				case fatalLoadErr(err):
					mu.Unlock()
					panic("load worker hit a fatal error: " + err.Error())
				default:
					// Timeout, dead connection, exhausted retries: the
					// transaction's fate is unknown, so its seq must NOT
					// count as acknowledged. History may still contain it.
					unknowns++
				}
				mu.Unlock()
			}
		}(int64(w + 1))
	}

	time.Sleep(500 * time.Millisecond)

	lead := cl.Leader()
	if lead == nil {
		t.Fatal("no leader under load")
	}
	if lead != boot {
		t.Fatalf("leadership moved before the kill: member %d leads", lead.ID)
	}
	killStart := time.Now()
	mu.Lock()
	killed = true
	mu.Unlock()
	cl.Kill(lead.ID)

	newLead, err := cl.WaitLeader(5 * time.Second)
	if err != nil {
		t.Fatalf("no failover: %v", err)
	}
	failoverTime := time.Since(killStart)
	if newLead.ID == lead.ID {
		t.Fatalf("dead member %d still counted as leader", lead.ID)
	}
	t.Logf("failover: member %d took over after %v (term %d)",
		newLead.ID, failoverTime, newLead.Node.Stats().Term)

	time.Sleep(700 * time.Millisecond)
	close(stop)
	wg.Wait()

	mu.Lock()
	nAcked, nPhase2, nAborts, nUnknown := len(acked), phase2, aborts, unknowns
	mu.Unlock()
	t.Logf("load: %d acked (%d after failover), %d clean aborts, %d unknown outcomes",
		nAcked, nPhase2, nAborts, nUnknown)
	if nAcked == 0 {
		t.Fatal("no transaction was ever acknowledged")
	}
	if nPhase2 == 0 {
		t.Fatal("client never resumed after the failover (no post-kill acks)")
	}

	// Audit 1+2 on the new leader: every acknowledged commit survived,
	// and the balance sums show no torn transaction.
	sums := sumsViaPool(t, pool)
	mu.Lock()
	for seq := range acked {
		if !sums.histSeqs[seq] {
			mu.Unlock()
			t.Fatalf("LOST ACKED COMMIT: history seq %d was acknowledged but is gone", seq)
		}
	}
	mu.Unlock()
	sums.audit(t, "new leader")
	if sums.accounts != tp.Accounts() {
		t.Fatalf("account count: %d, want %d", sums.accounts, tp.Accounts())
	}

	// Audit 3: a surviving follower serves consistent MVCC snapshot
	// reads. Let replication drain, then audit under one snapshot.
	var follower *Member
	for _, m := range cl.Members {
		if !m.killed && m != newLead {
			follower = m
		}
	}
	if follower == nil {
		t.Fatal("no surviving follower")
	}
	deadline := time.Now().Add(5 * time.Second)
	for follower.Node.AppliedLSN() < newLead.DB.WAL().Head() {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at LSN %d, leader head %d",
				follower.Node.AppliedLSN(), newLead.DB.WAL().Head())
		}
		time.Sleep(5 * time.Millisecond)
	}
	fsums := sumsViaSnapshot(t, follower.Addr)
	fsums.audit(t, "follower snapshot")
	mu.Lock()
	for seq := range acked {
		if !fsums.histSeqs[seq] {
			mu.Unlock()
			t.Fatalf("follower snapshot missing acked history seq %d", seq)
		}
	}
	mu.Unlock()
}
