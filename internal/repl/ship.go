package repl

import (
	"encoding/json"
	"errors"
	"time"

	"ipa/internal/client"
	"ipa/internal/core"
	"ipa/internal/sim"
	"ipa/internal/wal"
	"ipa/internal/wire"
)

// The shipping side of replication. The LEADER dials each follower and
// pushes batches read from its own log's contiguously-published
// horizon; the follower never pulls. A bounded window of batches is
// kept in flight per follower so shipping overlaps the follower's
// replay without letting a slow follower absorb unbounded leader
// memory.

// sleepOr sleeps for d, returning false early if stop closes.
func sleepOr(stop chan struct{}, d time.Duration) bool {
	select {
	case <-stop:
		return false
	case <-time.After(d):
		return true
	}
}

func (n *Node) shipClientOpts() client.Options {
	opts := n.cfg.Client
	opts.DialTimeout = n.cfg.HeartbeatInterval * 4
	opts.RequestTimeout = n.cfg.CommitWait
	opts.MaxRetries = 1
	return opts
}

// runShipper owns one follower for one leadership: dial, stream,
// re-dial on error, until deposed or stopped.
func (n *Node) runShipper(term, peerID uint64, addr string, stop chan struct{}) {
	defer n.shipWG.Done()
	w := n.cfg.TL.NewWorker()
	for {
		select {
		case <-stop:
			return
		default:
		}
		if !n.leading(term) {
			return
		}
		c, err := client.Dial(addr, n.shipClientOpts())
		if err != nil {
			n.setConnected(peerID, false)
			if !sleepOr(stop, n.cfg.HeartbeatInterval) {
				return
			}
			continue
		}
		n.shipTo(term, peerID, c, w, stop)
		c.Close()
		n.setConnected(peerID, false)
		if !sleepOr(stop, n.cfg.HeartbeatInterval/2) {
			return
		}
	}
}

type inflightBatch struct {
	p     *client.Pending
	last  core.LSN
	count int
}

// shipTo runs one connection's stream. It returns on any error (the
// outer loop re-dials), on step-down, or on stop.
func (n *Node) shipTo(term, peerID uint64, c *client.Conn, w *sim.Worker, stop chan struct{}) {
	log := n.db.WAL()

	// Handshake: learn the follower's position and verify its log is a
	// prefix of ours (same term at its head). A longer log or a term
	// mismatch means a divergent suffix from a dead leadership — the
	// whole point of the check — and is repaired by snapshot.
	f, err := c.Do(wire.OpReplHello, helloReq{NodeID: n.cfg.NodeID, Term: term}.encode())
	if err != nil {
		return
	}
	h, err := decodeHelloResp(f.Payload)
	if err != nil {
		return
	}
	if h.Term > term {
		n.observeTerm(h.Term)
		return
	}
	cursor := h.Head + 1
	if h.Head > log.Head() || (h.Head > 0 && n.termAt(h.Head) != h.LastTerm) {
		n.logf("repl: node %d diverges at %d (term %d vs ours %d), resyncing",
			peerID, h.Head, h.LastTerm, n.termAt(h.Head))
		if !n.sendSnapshot(term, peerID, c, w, &cursor) {
			return
		}
	} else {
		n.setAck(peerID, h.Head, h.AppendedBytes, true)
	}

	var window []inflightBatch
	lastSend := time.Now()
	for {
		select {
		case <-stop:
			return
		default:
		}
		if !n.leading(term) {
			return
		}

		// Fill the window from the published horizon.
		for len(window) < n.cfg.MaxInflight {
			recs, rerr := log.ReadFrom(cursor, n.cfg.BatchRecords, n.cfg.BatchBytes)
			if errors.Is(rerr, wal.ErrTruncated) {
				// The follower fell behind the truncated tail. Drain
				// the window, then resync by snapshot.
				for _, b := range window {
					b.p.Wait()
				}
				window = window[:0]
				if !n.sendSnapshot(term, peerID, c, w, &cursor) {
					return
				}
				continue
			}
			if rerr != nil {
				n.logf("repl: read from %d: %v", cursor, rerr)
				return
			}
			if len(recs) == 0 {
				break // caught up
			}
			payload := n.appendPayload(term, recs)
			window = append(window, inflightBatch{
				p:     c.DoAsync(wire.OpReplAppend, payload),
				last:  recs[len(recs)-1].LSN,
				count: len(recs),
			})
			cursor = recs[len(recs)-1].LSN + 1
			lastSend = time.Now()
		}

		if len(window) == 0 {
			// Caught up: heartbeat on the interval to assert
			// leadership and refresh the follower's election timer.
			if time.Since(lastSend) >= n.cfg.HeartbeatInterval {
				hf, herr := c.Do(wire.OpReplAppend, n.appendPayload(term, nil))
				if herr != nil {
					return
				}
				if !n.handleAck(term, peerID, c, w, &cursor, hf.Payload, 0) {
					return
				}
				lastSend = time.Now()
			}
			if !sleepOr(stop, time.Millisecond) {
				return
			}
			continue
		}

		b := window[0]
		window = window[1:]
		af, werr := b.p.Wait()
		if werr != nil {
			return
		}
		if !n.handleAck(term, peerID, c, w, &cursor, af.Payload, b.count) {
			return
		}
		// handleAck may have restarted the stream via snapshot; any
		// batches still in flight are for the dead cursor — drain and
		// drop them, the next fill re-reads from the new cursor.
		if len(window) > 0 && cursor <= window[0].last {
			for _, wb := range window {
				wb.p.Wait()
			}
			window = window[:0]
		}
	}
}

// handleAck processes one REPL_APPEND response. Returns false when the
// connection (or leadership) is done.
func (n *Node) handleAck(term, peerID uint64, c *client.Conn, w *sim.Worker, cursor *core.LSN, payload []byte, count int) bool {
	a, err := decodeAck(payload)
	if err != nil {
		return false
	}
	if a.Term > term {
		n.observeTerm(a.Term)
		return false
	}
	if a.NeedSnap {
		return n.sendSnapshot(term, peerID, c, w, cursor)
	}
	n.setAck(peerID, a.Head, a.AppendedBytes, true)
	if count > 0 {
		n.batchesShipped.Add(1)
		n.recordsShipped.Add(uint64(count))
	}
	return true
}

// sendSnapshot captures a stop-the-world engine image and installs it
// on the follower, restarting the stream at PrimeLSN+1.
func (n *Node) sendSnapshot(term, peerID uint64, c *client.Conn, w *sim.Worker, cursor *core.LSN) bool {
	snap, err := n.db.CaptureSnapshot(w)
	if err != nil {
		n.logf("repl: snapshot capture: %v", err)
		return false
	}
	img, err := json.Marshal(snap)
	if err != nil {
		n.logf("repl: snapshot marshal: %v", err)
		return false
	}
	f, err := c.Do(wire.OpReplSnap, encodeSnap(term, n.cfg.NodeID, n.epochsCopy(), img))
	if err != nil {
		n.logf("repl: snapshot send to node %d: %v", peerID, err)
		return false
	}
	a, err := decodeAck(f.Payload)
	if err != nil {
		return false
	}
	if a.Term > term {
		n.observeTerm(a.Term)
		return false
	}
	if a.NeedSnap || a.Head != snap.PrimeLSN {
		n.logf("repl: node %d snapshot install landed at %d, want %d", peerID, a.Head, snap.PrimeLSN)
		return false
	}
	*cursor = snap.PrimeLSN + 1
	n.setAck(peerID, a.Head, a.AppendedBytes, true)
	n.snapsSent.Add(1)
	n.logf("repl: node %d resynced by snapshot at lsn %d (%d pages)",
		peerID, snap.PrimeLSN, len(snap.Pages))
	return true
}
