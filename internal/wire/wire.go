// Package wire defines the binary protocol the IPA network service
// speaks: length-prefixed frames carrying a request id (so clients can
// pipeline many requests on one connection and correlate the responses),
// an opcode or status byte, and an op-specific payload.
//
// Frame layout (all integers big-endian):
//
//	uint32  n       length of everything after this field
//	uint64  id      request id, echoed verbatim in the response
//	uint8   kind    opcode (request) or status (response)
//	[]byte  payload op-specific (see the table below)
//
// Request payloads → response payloads (on StatusOK):
//
//	BEGIN        txid u64                         → —
//	COMMIT       txid u64                         → —
//	ABORT        txid u64                         → —
//	INSERT       txid u64, table str, data bytes  → rid
//	READ         table str, rid                   → data bytes
//	UPDATE       txid u64, table str, rid, data   → —
//	UPDATEFIELD  txid u64, table str, rid,
//	             off u32, val bytes               → —
//	DELETE       txid u64, table str, rid         → —
//	SCAN         table str, limit u32             → count u32, count×(rid, data bytes)
//	             (responses are size-capped at the server's MaxFrame; a
//	             scan that would exceed it fails BAD_REQUEST)
//	STATS        —                                → JSON bytes (server stats document)
//	PING         —                                → —
//	BEGIN_SNAPSHOT txid u64                       → snapshot LSN u64
//	SNAPREAD     txid u64, table str, rid         → data bytes
//	SNAPSCAN     txid u64, table str, limit u32   → count u32, count×(rid, data bytes)
//	HELLO        version u8                       → — (BAD_REQUEST on mismatch)
//
// Replication ops (see internal/repl for payload codecs): REPL_HELLO
// negotiates a shipping cursor, REPL_APPEND carries batched WAL records
// (an empty batch is a heartbeat) and is answered by an OK response
// whose payload starts with the REPL_ACK tag byte, REPL_SNAPSHOT ships
// a full engine image to a follower too far behind the truncated log,
// and VOTE_REQ/VOTE_RESP run leader election. A write sent to a
// follower gets STATUS_REDIRECT with the leader's address so the client
// pool can re-resolve.
//
// The snapshot ops require the server's engine to run with MVCC
// enabled; BEGIN_SNAPSHOT pins a read-only snapshot transaction whose
// reads and scans resolve through the version store (stable across the
// whole transaction, never aborted by writer locks). COMMIT/ABORT end
// it like any other transaction.
//
// where `str` is uint16 length + bytes, `bytes` is uint32 length +
// bytes, and `rid` is page u64 + slot u16. Error responses carry the
// status code plus a human-readable message as `bytes`.
//
// Transaction ids are client-chosen handles, scoped to the connection
// and unique among its open transactions. The client picking the id is
// what makes single-round-trip pipelined transactions possible: BEGIN,
// the ops and COMMIT can all be written before any response arrives,
// because every frame already knows the id BEGIN will bind.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Opcodes.
const (
	OpBegin byte = iota + 1
	OpCommit
	OpAbort
	OpInsert
	OpRead
	OpUpdate
	OpUpdateField
	OpDelete
	OpScan
	OpStats
	OpPing
	OpBeginSnapshot
	OpSnapshotRead
	OpSnapshotScan
	OpHello      // version byte → — (BAD_REQUEST on mismatch)
	OpReplHello  // node id u64, term u64, from LSN u64 → term u64, start LSN u64
	OpReplAppend // term u64, leader u64, commit LSN u64, count u32, count×record
	OpReplAck    // tag byte in responses: term u64, acked LSN u64, appended bytes u64
	OpReplSnap   // term u64, leader u64, snapshot blob → ack
	OpVoteReq    // term u64, candidate u64, last LSN u64
	OpVoteResp   // tag byte in responses: term u64, granted u8
	OpAddField   // tx u64, table, rid, off u32, delta u64: locked server-side +=
)

// ProtoVersion is the protocol revision byte carried by OpHello. Peers
// (clients and replicas alike) send it before anything else; a server
// that sees a different version answers BAD_REQUEST instead of
// misparsing the frames that would follow. Bumped whenever the opcode
// family or a payload layout changes incompatibly.
const ProtoVersion byte = 1

// OpName returns the wire name of an opcode (used as the metrics key of
// the server's per-op latency histograms).
func OpName(op byte) string {
	switch op {
	case OpBegin:
		return "BEGIN"
	case OpCommit:
		return "COMMIT"
	case OpAbort:
		return "ABORT"
	case OpInsert:
		return "INSERT"
	case OpRead:
		return "READ"
	case OpUpdate:
		return "UPDATE"
	case OpUpdateField:
		return "UPDATEFIELD"
	case OpDelete:
		return "DELETE"
	case OpScan:
		return "SCAN"
	case OpStats:
		return "STATS"
	case OpPing:
		return "PING"
	case OpBeginSnapshot:
		return "BEGIN_SNAPSHOT"
	case OpSnapshotRead:
		return "SNAPREAD"
	case OpSnapshotScan:
		return "SNAPSCAN"
	case OpHello:
		return "HELLO"
	case OpReplHello:
		return "REPL_HELLO"
	case OpReplAppend:
		return "REPL_APPEND"
	case OpReplAck:
		return "REPL_ACK"
	case OpReplSnap:
		return "REPL_SNAPSHOT"
	case OpVoteReq:
		return "VOTE_REQ"
	case OpVoteResp:
		return "VOTE_RESP"
	case OpAddField:
		return "ADDFIELD"
	default:
		return fmt.Sprintf("OP(%d)", op)
	}
}

// Response status codes.
const (
	StatusOK           byte = 0
	StatusInternal     byte = 1
	StatusClosed       byte = 2 // server draining / database closed
	StatusBusy         byte = 3 // backpressure admission timed out; transient
	StatusLockConflict byte = 4 // no-wait tuple lock lost; abort and retry the tx
	StatusTxClosed     byte = 5
	StatusTxPoisoned   byte = 6 // an earlier pipelined op of this tx failed; tx aborted
	StatusNoTable      byte = 7
	StatusNoTuple      byte = 8
	StatusBadRequest   byte = 9
	StatusRedirect     byte = 10 // not the leader; payload names who is
)

// Sentinel errors the client maps status codes onto, so callers use
// errors.Is instead of comparing bytes.
var (
	ErrClosed       = errors.New("wire: server closed")
	ErrBusy         = errors.New("wire: server busy")
	ErrLockConflict = errors.New("wire: lock conflict")
	ErrTxClosed     = errors.New("wire: transaction closed")
	ErrTxPoisoned   = errors.New("wire: transaction poisoned by earlier pipelined error")
	ErrNoTable      = errors.New("wire: no such table")
	ErrNoTuple      = errors.New("wire: no such tuple")
	ErrBadRequest   = errors.New("wire: bad request")
	ErrInternal     = errors.New("wire: internal server error")
	ErrNotLeader    = errors.New("wire: not the leader")

	// ErrFrameTooLarge is returned by ReadFrame when the length prefix
	// exceeds the reader's limit (protects both sides from a corrupt or
	// hostile peer allocating unbounded memory).
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
)

// sentinelOf maps a status byte to its sentinel error.
func sentinelOf(code byte) error {
	switch code {
	case StatusClosed:
		return ErrClosed
	case StatusBusy:
		return ErrBusy
	case StatusLockConflict:
		return ErrLockConflict
	case StatusTxClosed:
		return ErrTxClosed
	case StatusTxPoisoned:
		return ErrTxPoisoned
	case StatusNoTable:
		return ErrNoTable
	case StatusNoTuple:
		return ErrNoTuple
	case StatusBadRequest:
		return ErrBadRequest
	case StatusRedirect:
		return ErrNotLeader
	default:
		return ErrInternal
	}
}

// StatusError is an error response decoded from the wire: the status
// code, the server's message, and the sentinel it unwraps to.
type StatusError struct {
	Code    byte
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("%v (status %d): %s", sentinelOf(e.Code), e.Code, e.Message)
}

// Unwrap lets errors.Is match the sentinel.
func (e *StatusError) Unwrap() error { return sentinelOf(e.Code) }

// RedirectError is the decoded form of a StatusRedirect response: the
// contacted node is a follower and Leader is the address (possibly "",
// mid-election) clients should retry against. The cluster Pool consumes
// these internally; callers only see one if every redirect hop fails.
type RedirectError struct {
	Leader string
}

func (e *RedirectError) Error() string {
	if e.Leader == "" {
		return "wire: not the leader (no leader known)"
	}
	return fmt.Sprintf("wire: not the leader (leader at %s)", e.Leader)
}

// Unwrap lets errors.Is match ErrNotLeader.
func (e *RedirectError) Unwrap() error { return ErrNotLeader }

// IsTransient reports whether the error is worth an automatic bounded
// retry on the same connection: only backpressure admission timeouts
// qualify. Redirects are handled one level up (the cluster Pool
// re-resolves the leader and replays on a fresh connection), and lock
// conflicts are application-level aborts (retry the whole transaction,
// not the request); everything else is terminal for the request.
func IsTransient(err error) bool { return errors.Is(err, ErrBusy) }

// RID is the network form of a record id.
type RID struct {
	Page uint64
	Slot uint16
}

// MaxFrame is the default frame size limit: generous enough for a SCAN
// of a bench table, small enough to bound a bad peer.
const MaxFrame = 64 << 20

// frame header: u32 length + u64 id + u8 kind.
const headerLen = 4 + 8 + 1

// Frame is one decoded protocol frame.
type Frame struct {
	ID      uint64
	Kind    byte // opcode (request) or status (response)
	Payload []byte
}

// WriteFrame encodes and writes one frame. It issues a single Write so
// concurrent writers serialised by a mutex never interleave partial
// frames.
func WriteFrame(w io.Writer, id uint64, kind byte, payload []byte) error {
	buf := make([]byte, headerLen+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(8+1+len(payload)))
	binary.BigEndian.PutUint64(buf[4:12], id)
	buf[12] = kind
	copy(buf[13:], payload)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame, rejecting frames larger than maxFrame
// (≤ 0 selects MaxFrame).
func ReadFrame(r io.Reader, maxFrame int) (Frame, error) {
	if maxFrame <= 0 {
		maxFrame = MaxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n < 9 {
		return Frame{}, fmt.Errorf("%w: frame length %d below header", ErrBadRequest, n)
	}
	if n > maxFrame {
		return Frame{}, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Frame{}, err
	}
	return Frame{
		ID:      binary.BigEndian.Uint64(body[0:8]),
		Kind:    body[8],
		Payload: body[9:],
	}, nil
}

// Builder appends wire-encoded values to a payload buffer.
type Builder struct{ buf []byte }

// NewBuilder returns a builder with the given capacity hint.
func NewBuilder(capacity int) *Builder {
	return &Builder{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded payload.
func (b *Builder) Bytes() []byte { return b.buf }

// Uint64 appends a big-endian u64.
func (b *Builder) Uint64(v uint64) *Builder {
	b.buf = binary.BigEndian.AppendUint64(b.buf, v)
	return b
}

// Uint32 appends a big-endian u32.
func (b *Builder) Uint32(v uint32) *Builder {
	b.buf = binary.BigEndian.AppendUint32(b.buf, v)
	return b
}

// Uint16 appends a big-endian u16.
func (b *Builder) Uint16(v uint16) *Builder {
	b.buf = binary.BigEndian.AppendUint16(b.buf, v)
	return b
}

// String appends a u16-length-prefixed string.
func (b *Builder) String(s string) *Builder {
	b.Uint16(uint16(len(s)))
	b.buf = append(b.buf, s...)
	return b
}

// Blob appends a u32-length-prefixed byte slice.
func (b *Builder) Blob(p []byte) *Builder {
	b.Uint32(uint32(len(p)))
	b.buf = append(b.buf, p...)
	return b
}

// RID appends a record id.
func (b *Builder) RID(r RID) *Builder {
	return b.Uint64(r.Page).Uint16(r.Slot)
}

// Reader decodes wire-encoded values from a payload buffer. The first
// decode failure sticks: subsequent reads return zero values and Err()
// reports the failure, so call sites chain reads and check once.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps a payload.
func NewReader(p []byte) *Reader { return &Reader{buf: p} }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining reports how many bytes are left.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	// n < 0 guards 32-bit platforms, where a peer-controlled u32 length
	// >= 2^31 wraps negative through int() and would slip past the
	// bounds check into a panicking slice expression.
	if n < 0 || r.off+n > len(r.buf) {
		r.err = fmt.Errorf("%w: truncated payload (need %d past offset %d of %d)",
			ErrBadRequest, n, r.off, len(r.buf))
		return nil
	}
	p := r.buf[r.off : r.off+n]
	r.off += n
	return p
}

// Uint64 decodes a big-endian u64.
func (r *Reader) Uint64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint64(p)
}

// Uint32 decodes a big-endian u32.
func (r *Reader) Uint32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint32(p)
}

// Uint16 decodes a big-endian u16.
func (r *Reader) Uint16() uint16 {
	p := r.take(2)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint16(p)
}

// String decodes a u16-length-prefixed string.
func (r *Reader) String() string {
	n := int(r.Uint16())
	p := r.take(n)
	if p == nil {
		return ""
	}
	return string(p)
}

// Blob decodes a u32-length-prefixed byte slice (copied, so the caller
// may retain it past the frame buffer).
func (r *Reader) Blob() []byte {
	n := int(r.Uint32())
	p := r.take(n)
	if p == nil {
		return nil
	}
	return append([]byte(nil), p...)
}

// RID decodes a record id.
func (r *Reader) RID() RID {
	return RID{Page: r.Uint64(), Slot: r.Uint16()}
}
