package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := NewBuilder(64).
		Uint64(42).String("tpcb_account").RID(RID{Page: 7, Slot: 3}).
		Blob([]byte("hello")).Bytes()
	if err := WriteFrame(&buf, 99, OpUpdate, payload); err != nil {
		t.Fatal(err)
	}
	// A second frame behind it, to prove framing keeps them apart.
	if err := WriteFrame(&buf, 100, OpPing, nil); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != 99 || f.Kind != OpUpdate {
		t.Fatalf("frame = %+v", f)
	}
	r := NewReader(f.Payload)
	if tx := r.Uint64(); tx != 42 {
		t.Fatalf("txid = %d", tx)
	}
	if s := r.String(); s != "tpcb_account" {
		t.Fatalf("table = %q", s)
	}
	if rid := r.RID(); rid != (RID{Page: 7, Slot: 3}) {
		t.Fatalf("rid = %+v", rid)
	}
	if b := r.Blob(); string(b) != "hello" {
		t.Fatalf("blob = %q", b)
	}
	if r.Err() != nil || r.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", r.Err(), r.Remaining())
	}
	f2, err := ReadFrame(&buf, 0)
	if err != nil || f2.ID != 100 || f2.Kind != OpPing || len(f2.Payload) != 0 {
		t.Fatalf("second frame = %+v err=%v", f2, err)
	}
}

func TestReadFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 1, OpRead, make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(&buf, 128); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: %v", err)
	}
	// Truncated stream → io error, not a hang.
	short := bytes.NewReader([]byte{0, 0, 0, 20, 1, 2})
	if _, err := ReadFrame(short, 0); err == nil {
		t.Fatal("truncated frame accepted")
	}
	// Length below the id+kind header is malformed.
	bad := bytes.NewReader([]byte{0, 0, 0, 3, 1, 2, 3})
	if _, err := ReadFrame(bad, 0); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("undersized frame: %v", err)
	}
}

func TestReaderSticksOnError(t *testing.T) {
	r := NewReader([]byte{1, 2}) // too short for a u64
	_ = r.Uint64()
	if r.Err() == nil {
		t.Fatal("no error on truncated read")
	}
	// Subsequent reads stay zero and don't panic.
	if v := r.Uint32(); v != 0 {
		t.Fatalf("read after error = %d", v)
	}
	if !errors.Is(r.Err(), ErrBadRequest) {
		t.Fatalf("err = %v", r.Err())
	}
}

func TestStatusErrorSentinels(t *testing.T) {
	cases := []struct {
		code byte
		want error
	}{
		{StatusClosed, ErrClosed},
		{StatusBusy, ErrBusy},
		{StatusLockConflict, ErrLockConflict},
		{StatusTxClosed, ErrTxClosed},
		{StatusTxPoisoned, ErrTxPoisoned},
		{StatusNoTable, ErrNoTable},
		{StatusNoTuple, ErrNoTuple},
		{StatusBadRequest, ErrBadRequest},
		{StatusInternal, ErrInternal},
	}
	for _, c := range cases {
		err := error(&StatusError{Code: c.code, Message: "m"})
		if !errors.Is(err, c.want) {
			t.Errorf("status %d does not unwrap to %v", c.code, c.want)
		}
	}
	if !IsTransient(&StatusError{Code: StatusBusy}) {
		t.Error("busy not transient")
	}
	if IsTransient(&StatusError{Code: StatusLockConflict}) {
		t.Error("lock conflict must not be transient")
	}
}

func TestWriteFrameSingleWrite(t *testing.T) {
	// The writer contract is one Write call per frame, so a mutex around
	// WriteFrame is enough to keep concurrent frames from interleaving.
	w := &countingWriter{}
	if err := WriteFrame(w, 7, OpPing, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if w.calls != 1 {
		t.Fatalf("WriteFrame issued %d writes, want 1", w.calls)
	}
}

type countingWriter struct{ calls int }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.calls++
	return len(p), nil
}

var _ io.Writer = (*countingWriter)(nil)

// TestReaderHugeLength: a peer-controlled blob length near 2^32 must
// fail the bounds check (on 32-bit platforms it wraps negative through
// int()), not panic in the slice expression.
func TestReaderHugeLength(t *testing.T) {
	p := NewBuilder(8).Uint32(0xFFFF_FFF0).Bytes() // length field only, no body
	r := NewReader(p)
	if b := r.Blob(); b != nil {
		t.Fatalf("Blob = %v, want nil", b)
	}
	if err := r.Err(); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("Err = %v, want ErrBadRequest", err)
	}
}
