package wal

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ipa/internal/core"
)

// Regression for the historical vestigial unlock/relock in GroupFlush:
// a flushing leader must never block concurrent Appends. The leader
// here lingers in a generous CommitWindow while the main goroutine
// pushes hundreds of appends; they must all complete (and the published
// horizon advance past them) before the flush finishes.
func TestGroupFlushDoesNotBlockAppends(t *testing.T) {
	l := NewLogConfig(Config{CommitWindow: 200 * time.Millisecond})
	first := l.Append(Record{Type: RecUpdate, TxID: 1})

	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		close(started)
		l.GroupFlush(first)
		close(done)
	}()
	<-started

	const extra = 500
	for i := 0; i < extra; i++ {
		l.Append(Record{Type: RecUpdate, TxID: 2, After: []byte{byte(i)}})
	}
	if head := l.Head(); head != first+extra {
		t.Fatalf("Head = %d during flush, want %d", head, first+extra)
	}
	select {
	case <-done:
		t.Fatal("flush completed before the concurrent appends — appends were blocked behind the leader")
	default:
	}
	<-done
	// The lingering leader absorbs everything published when it flushes,
	// so the horizon covers the concurrent appends too.
	if f := l.Flushed(); f != first+extra {
		t.Fatalf("Flushed = %d after leader completed, want %d", f, first+extra)
	}
}

// Followers whose LSN the in-flight flush already covers are absorbed;
// a follower beyond the in-flight target leads the next batch.
func TestGroupFlushPipelinedBatches(t *testing.T) {
	l := NewLog(0)
	var wg sync.WaitGroup
	const n = 32
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			lsn := l.Append(Record{Type: RecCommit, TxID: id})
			l.GroupFlush(lsn)
			if l.Flushed() < lsn {
				t.Errorf("GroupFlush(%d) returned with Flushed = %d", lsn, l.Flushed())
			}
		}(uint64(i))
	}
	wg.Wait()
	if l.Flushed() != n {
		t.Fatalf("Flushed = %d, want %d", l.Flushed(), n)
	}
	st := l.Stats()
	if st.Flushes == 0 || st.Flushes != st.LeaderBatches {
		t.Fatalf("Flushes = %d, LeaderBatches = %d", st.Flushes, st.LeaderBatches)
	}
	// Every GroupFlush call is accounted exactly once: it either led a
	// batch that moved the horizon or was absorbed by another's flush.
	if st.Absorbed+st.LeaderBatches != n {
		t.Fatalf("Absorbed (%d) + LeaderBatches (%d) != %d calls", st.Absorbed, st.LeaderBatches, n)
	}
	if st.BatchP50 == 0 || st.BatchP99 < st.BatchP50 {
		t.Fatalf("batch quantiles p50=%d p99=%d", st.BatchP50, st.BatchP99)
	}
}

// Replays a scripted run — begin/update/commit traffic with image sizes
// swept across the arena granularity, periodic checkpoints with
// populated tables, and interleaved truncations — asserting after every
// step that UsedBytes equals the byte-exact sum of retained record
// sizes. This pins the checkpoint Size() accounting (historically a
// flat 16 B/entry undercount) and the O(segments) truncation math
// against the same invariant.
func TestSpaceAccountingScriptedReplay(t *testing.T) {
	l := NewLog(1 << 20)
	type kept struct {
		lsn  core.LSN
		size uint64
	}
	var retained []kept
	sum := uint64(0)
	add := func(r Record) {
		lsn := l.Append(r)
		r.LSN = lsn
		retained = append(retained, kept{lsn, uint64(r.Size())})
		sum += uint64(r.Size())
	}
	check := func(step string) {
		t.Helper()
		if got := l.UsedBytes(); got != sum {
			t.Fatalf("%s: UsedBytes = %d, want %d", step, got, sum)
		}
	}
	truncate := func(cut core.LSN) {
		l.Truncate(cut)
		for len(retained) > 0 && retained[0].lsn < cut {
			sum -= retained[0].size
			retained = retained[1:]
		}
	}

	for round := 0; round < 6; round++ {
		for tx := uint64(0); tx < 40; tx++ {
			add(Record{Type: RecBegin, TxID: tx})
			for u := 0; u < 5; u++ {
				img := (round*97 + int(tx)*13 + u*31) % 300
				add(Record{
					Type: RecUpdate, TxID: tx, Op: OpUpdate,
					Before: make([]byte, img),
					After:  make([]byte, img/2),
				})
			}
			add(Record{Type: RecCommit, TxID: tx})
			add(Record{Type: RecEnd, TxID: tx})
		}
		// Fuzzy checkpoint with populated tables.
		ck := Record{Type: RecCheckpoint,
			ActiveTxs:  map[uint64]core.LSN{1: 10, 2: 20, 3: 30},
			DirtyPages: map[core.PageID]core.LSN{7: 70, 8: 80},
		}
		add(ck)
		check(fmt.Sprintf("round %d appended", round))

		// Interleave truncations at awkward offsets: mid-segment, exact
		// segment boundaries, and no-op re-truncations.
		switch round {
		case 1:
			truncate(retained[len(retained)/3].lsn)
		case 2:
			truncate(core.LSN(segRecords + 1)) // exact boundary (backward: no-op)
			truncate(retained[len(retained)/2].lsn)
		case 4:
			truncate(retained[len(retained)-1].lsn)
			truncate(1) // backward: must not move anything
		}
		check(fmt.Sprintf("round %d truncated", round))
	}
	truncate(l.Head() + 1) // drop everything
	if len(retained) != 0 || l.UsedBytes() != 0 {
		t.Fatalf("full truncate left %d records, %d bytes", len(retained), l.UsedBytes())
	}
}

// The append hot path must not allocate per record: images land in the
// segment arena, and segment/ring allocations amortise to well under
// one allocation per hundreds of appends.
func TestAppendZeroAllocs(t *testing.T) {
	l := NewLog(0)
	before := make([]byte, 16)
	after := make([]byte, 16)
	allocs := testing.AllocsPerRun(20000, func() {
		lsn := l.Append(Record{Type: RecUpdate, TxID: 7, Op: OpUpdate, Before: before, After: after})
		if lsn%8192 == 0 {
			l.Flush(lsn)
			l.Truncate(l.Flushed())
		}
	})
	if allocs > 0.05 {
		t.Fatalf("Append allocates %.4f/op, want amortised ~0", allocs)
	}
}

// Multi-writer stress under -race: concurrent appenders, group
// flushers, a truncator and scanners, with a contiguity audit — no scan
// may ever observe an LSN gap (other than a forward jump to the tail
// when racing a truncation), and the quiesced log must be byte-exact.
func TestConcurrentAppendFlushTruncateScanStress(t *testing.T) {
	l := NewLog(0)
	const (
		writers   = 8
		perWriter = 4000
		totalLSN  = writers * perWriter
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var audits atomic.Uint64

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			img := make([]byte, 64)
			for i := 0; i < perWriter; i++ {
				lsn := l.Append(Record{Type: RecUpdate, TxID: id, Op: OpUpdate, Before: img[:32], After: img})
				if i%64 == 0 {
					l.GroupFlush(lsn)
				}
			}
		}(uint64(w))
	}

	// Truncator: advance the tail behind the durable horizon.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			f := l.Flushed()
			if f > 64 {
				l.Truncate(f - 64)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	// Scanners: audit contiguity. Within one scan, consecutive LSNs must
	// be a+1, or — when a truncation raced us — a forward jump to an LSN
	// that the (monotonic) tail has reached.
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				prev := core.LSN(0)
				l.Scan(l.Tail(), func(r Record) bool {
					if prev != 0 && r.LSN != prev+1 {
						if r.LSN <= prev {
							t.Errorf("scan went backwards: %d after %d", r.LSN, prev)
							return false
						}
						if tail := l.Tail(); r.LSN > tail {
							t.Errorf("scan gap: %d after %d with tail %d", r.LSN, prev, tail)
							return false
						}
					}
					prev = r.LSN
					audits.Add(1)
					return true
				})
			}
		}()
	}

	// Wait for the writers, then stop the background churn.
	allWriters := make(chan struct{})
	go func() {
		for l.Head() < core.LSN(totalLSN) {
			time.Sleep(time.Millisecond)
		}
		close(allWriters)
	}()
	<-allWriters
	close(stop)
	wg.Wait()

	// Quiesced audit: the retained window is contiguous, Get succeeds on
	// every LSN in it, and the space accounting is byte-exact.
	head, tail := l.Head(), l.Tail()
	if head != core.LSN(totalLSN) {
		t.Fatalf("Head = %d, want %d", head, totalLSN)
	}
	var sum uint64
	count := 0
	for lsn := tail; lsn <= head; lsn++ {
		r, err := l.Get(lsn)
		if err != nil || r.LSN != lsn {
			t.Fatalf("Get(%d) = %+v, %v", lsn, r, err)
		}
		sum += uint64(r.Size())
		count++
	}
	if _, err := l.Get(tail - 1); tail > 1 && !errors.Is(err, ErrTruncated) {
		t.Errorf("Get below tail: %v", err)
	}
	if got := l.UsedBytes(); got != sum {
		t.Fatalf("UsedBytes = %d, want %d over %d records", got, sum, count)
	}
	seen := 0
	prev := tail - 1
	l.Scan(tail, func(r Record) bool {
		if r.LSN != prev+1 {
			t.Fatalf("quiesced scan gap: %d after %d", r.LSN, prev)
		}
		prev = r.LSN
		seen++
		return true
	})
	if seen != count {
		t.Fatalf("quiesced scan saw %d records, want %d", seen, count)
	}
	if audits.Load() == 0 {
		t.Error("concurrent scanners audited nothing")
	}
}

// BenchmarkWALAppend measures the reservation-based append path across
// goroutine counts and image sizes. Periodic group flushes and
// truncations keep the ring bounded, mirroring steady-state operation.
func BenchmarkWALAppend(b *testing.B) {
	for _, g := range []int{1, 4, 16} {
		for _, img := range []int{16, 256} {
			b.Run(fmt.Sprintf("goroutines=%d/img=%d", g, img), func(b *testing.B) {
				l := NewLog(0)
				before := make([]byte, img)
				after := make([]byte, img)
				b.ReportAllocs()
				b.ResetTimer()
				var wg sync.WaitGroup
				for w := 0; w < g; w++ {
					wg.Add(1)
					go func(id int) {
						defer wg.Done()
						n := b.N / g
						if id < b.N%g {
							n++
						}
						for i := 0; i < n; i++ {
							lsn := l.Append(Record{
								Type: RecUpdate, TxID: uint64(id), Op: OpUpdate,
								Before: before, After: after,
							})
							if i%1024 == 1023 {
								l.GroupFlush(lsn)
							}
							if id == 0 && i%8192 == 8191 {
								l.Truncate(l.Flushed())
							}
						}
					}(w)
				}
				wg.Wait()
			})
		}
	}
}
