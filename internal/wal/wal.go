// Package wal implements an ARIES-style write-ahead log: physiological
// update records with before/after images, per-transaction backward
// chains, compensation log records (CLRs), fuzzy checkpoints, and
// log-space accounting.
//
// The log matters to the paper in two ways. First, IPA leaves recovery
// untouched (Sec. 6.2 "Remaining DBMS functionality"): pages reconstructed
// from flash + delta-records carry the correct PageLSN, so redo/undo work
// as usual — the recovery tests exercise exactly that. Second, Shore-MT's
// *eager log-space reclamation* (reclaiming when 25–50% of the log is
// consumed) forces dirty-page flushes even with huge buffer pools, which
// is why the paper still sees host writes at 90% buffer size (Sec. 8.4,
// Tables 9/10); the Capacity/usage mechanism reproduces that behaviour.
//
// # Scalable append path
//
// Every transaction funnels through the log (BEGIN, one update record
// per change, COMMIT, END), so the log is the last global serialization
// point once everything else is sharded. Appends therefore use lock-free
// LSN/space reservation instead of a mutex:
//
//   - A single atomic fetch-add on the LSN counter hands each appender
//     its LSN; a second fetch-add reserves its bytes in the space
//     accounting. Concurrent appenders serialize only on these atomics.
//   - Records live in a chunked ring of pre-sized segments (segRecords
//     slots each). The appender copies its record — and its before/after
//     images, once, into the segment's image arena — into the reserved
//     slot, then *publishes* it by raising the slot's publication word.
//   - The readable horizon ("published") is the highest LSN up to which
//     every slot is published, i.e. the log prefix with no holes. After
//     publishing, an appender that closed the hole at published+1
//     advances the horizon with a CAS scan. Go atomics are sequentially
//     consistent, so whichever of two racing publishers stores its flag
//     last is guaranteed to observe the other's and complete the
//     advance — the horizon never stalls on a published slot.
//
// Readers (Get, Scan, recovery) only ever observe the contiguous
// published prefix, so they can never see an LSN gap. The durable
// horizon (Flush/GroupFlush) trails the published horizon, preserving
// the WAL rule.
//
// Truncation retires whole ring segments by offset arithmetic —
// O(segments dropped), not O(records retained) — while byte-accurate
// space accounting is kept per record (partially dropped boundary
// segments are summed slot-by-slot, bounded by the segment size).
package wal

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ipa/internal/core"
)

// RecType enumerates log record kinds.
type RecType uint8

const (
	RecBegin RecType = iota + 1
	RecUpdate
	RecCommit
	RecAbort // transaction entered rollback
	RecEnd   // rollback or commit processing finished
	RecCLR   // compensation record written during undo
	RecCheckpoint
	// RecAlloc and RecTable make the log self-describing for log-shipping
	// replication (engine.Options.Replicated): a follower rebuilds the
	// page directory and catalog from the stream alone. Meta carries the
	// binding (page → region/table, table → region/id); neither record is
	// transactional — they have no TxID chain and recovery ignores them.
	RecAlloc
	RecTable
)

func (t RecType) String() string {
	switch t {
	case RecBegin:
		return "BEGIN"
	case RecUpdate:
		return "UPDATE"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecEnd:
		return "END"
	case RecCLR:
		return "CLR"
	case RecCheckpoint:
		return "CHECKPOINT"
	case RecAlloc:
		return "ALLOC"
	case RecTable:
		return "TABLE"
	default:
		return fmt.Sprintf("RecType(%d)", uint8(t))
	}
}

// PageOp is the physiological operation an update record describes.
type PageOp uint8

const (
	OpNone   PageOp = iota
	OpInsert        // tuple inserted at Slot; After = tuple image
	OpUpdate        // tuple at Slot replaced; Before/After = tuple images
	OpDelete        // tuple at Slot deleted; Before = tuple image
	OpFormat        // page formatted (allocation); no images
)

// Record is one log entry. Update/CLR records are physiological: they
// address a tuple slot within a page and are redone/undone through the
// slotted-page API, guarded by the PageLSN.
//
// Append copies Before/After into log-owned storage, so callers may
// reuse their buffers; records returned by Get/Scan alias that storage
// and must be treated as immutable.
type Record struct {
	LSN     core.LSN
	Type    RecType
	TxID    uint64
	PrevLSN core.LSN // backward chain within the transaction

	// Update / CLR payload.
	Page   core.PageID
	Op     PageOp
	Slot   uint16
	Before []byte // undo image (empty for CLRs)
	After  []byte // redo image

	// CLR only: next record to undo for this transaction.
	UndoNext core.LSN

	// Meta is the self-description payload of RecAlloc/RecTable records
	// (replicated mode). Copied into log-owned storage like the images.
	Meta []byte

	// Checkpoint payload: active transactions (txID → lastLSN) and dirty
	// pages (page → recLSN).
	ActiveTxs  map[uint64]core.LSN
	DirtyPages map[core.PageID]core.LSN
}

// Size is the bytes the record occupies in the log (a fixed header plus
// images), driving log-space accounting.
//
// Checkpoint records carry the two checkpoint tables: each costs an
// 8-byte entry count plus 24 bytes per entry (16 B of key/value payload
// plus 8 B of per-entry slot directory). The historical accounting
// charged a flat 16 B per entry — payload only, no per-entry or
// per-table overhead — under-counting every checkpoint record.
func (r Record) Size() int {
	n := 48 + len(r.Before) + len(r.After) + len(r.Meta)
	if r.Type == RecCheckpoint {
		n += 16 + 24*(len(r.ActiveTxs)+len(r.DirtyPages))
	}
	return n
}

// Errors of the log.
var (
	ErrTruncated = errors.New("wal: record truncated away")
	ErrNotFound  = errors.New("wal: no such LSN")
)

const (
	// segShift sizes the ring segments: 1<<segShift record slots each.
	segShift   = 9
	segRecords = 1 << segShift
	segMask    = segRecords - 1

	// arenaChunkBytes sizes a segment's image arena (and each overflow
	// chunk): 128 B of before/after image per record on average, enough
	// for the OLTP-style small updates the paper profiles. Records whose
	// images overflow the arena fall back to chained overflow chunks, so
	// arbitrarily large images remain correct and allocations stay
	// amortised.
	arenaChunkBytes = segRecords * 128
)

// slot is one record cell of a segment. pub is the publication word:
// 0 = reserved (appender still copying), 1 = published (immutable).
// Readers load pub with acquire semantics before touching rec, so the
// record contents are race-free without a lock.
type slot struct {
	rec Record
	pub atomic.Uint32
}

// segment is one pre-sized chunk of the record ring, covering the fixed
// LSN range [firstLSN, firstLSN+segRecords). Segments are never reused:
// truncation drops them wholesale and growth allocates fresh ones, so a
// published slot stays immutable for its whole life.
type segment struct {
	firstLSN core.LSN
	slots    [segRecords]slot

	// bytes accumulates the Size() of published records, letting a full
	// segment retire in O(1) during truncation.
	bytes atomic.Uint64

	// arena is the segment's image store: appenders reserve space with a
	// fetch-add and copy before/after images exactly once. Overflow goes
	// to chained chunks under overMu (rare; amortised one allocation per
	// arenaChunkBytes of overflow).
	arena    []byte
	arenaOff atomic.Uint64

	overMu  sync.Mutex
	over    []byte
	overOff int
}

func newSegment(firstLSN core.LSN) *segment {
	return &segment{firstLSN: firstLSN, arena: make([]byte, arenaChunkBytes)}
}

// reserveImages hands the appender n bytes of image storage.
func (s *segment) reserveImages(n int) []byte {
	end := s.arenaOff.Add(uint64(n))
	if end <= uint64(len(s.arena)) {
		return s.arena[end-uint64(n) : end : end]
	}
	s.overMu.Lock()
	defer s.overMu.Unlock()
	if len(s.over)-s.overOff < n {
		c := arenaChunkBytes
		if n > c {
			c = n
		}
		s.over = make([]byte, c)
		s.overOff = 0
	}
	b := s.over[s.overOff : s.overOff+n : s.overOff+n]
	s.overOff += n
	return b
}

// ring is an immutable snapshot of the segment table, swapped atomically
// on growth and truncation. Segment k (absolute numbering) covers LSNs
// [k*segRecords+1, (k+1)*segRecords].
type ring struct {
	firstSeg uint64 // absolute segment number of segs[0]
	segs     []*segment
}

func segNum(lsn core.LSN) uint64 { return (uint64(lsn) - 1) >> segShift }

// segmentOf returns the segment holding lsn, or nil when the ring does
// not (yet, or anymore) cover it.
func (r *ring) segmentOf(lsn core.LSN) *segment {
	sn := segNum(lsn)
	if sn < r.firstSeg || sn-r.firstSeg >= uint64(len(r.segs)) {
		return nil
	}
	return r.segs[sn-r.firstSeg]
}

// Config tunes a log instance beyond the device capacity.
type Config struct {
	// Capacity is the log device size in bytes; 0 = unbounded (no
	// log-space pressure).
	Capacity int
	// CommitWindow lets a group-commit leader linger before flushing so
	// the batch can grow under heavy load (see GroupFlush). The default
	// 0 flushes immediately, keeping default-option runs byte-identical
	// to the historical log.
	CommitWindow time.Duration
}

// Log is an in-memory write-ahead log with byte-accurate space
// accounting. LSNs are 1-based sequence numbers; the zero LSN means
// "none".
//
// Appends are lock-free (see the package comment); the only mutexes are
// flushMu, which coordinates group-commit leadership (never held across
// the flush itself), and ringMu, which serialises segment-table growth
// and truncation (taken once per segRecords appends, never on the slot
// hot path). All counters are atomics read lock-free, so stats sampling
// never contends with appenders or the group-commit leader.
type Log struct {
	next      atomic.Uint64 // next LSN to reserve
	published atomic.Uint64 // highest contiguously published LSN
	first     atomic.Uint64 // oldest retained LSN
	flushed   atomic.Uint64 // durable horizon (WAL rule), as a core.LSN

	ring   atomic.Pointer[ring]
	ringMu sync.Mutex // guards ring replacement (growth, truncation)

	headBytes atomic.Uint64 // total bytes ever reserved
	tailBytes atomic.Uint64 // bytes reclaimed
	capacity  uint64        // log device size; 0 = unbounded

	// retainFloor clamps Truncate: records at or above the floor survive
	// reclamation because a replication cursor still needs to ship them
	// (0 = no floor). See SetRetainFloor.
	retainFloor atomic.Uint64

	commitWindow time.Duration

	// Group-flush state: one leader flushes on behalf of every committer
	// whose records are already published; followers covered by the
	// in-flight flush wait on its done channel and are absorbed without
	// a flush of their own, and followers beyond it form the next batch.
	flushMu     sync.Mutex
	flushing    bool
	flushTarget core.LSN      // horizon the in-flight flush will cover
	flushDone   chan struct{} // closed when the in-flight flush completes

	flushes       atomic.Uint64
	absorbed      atomic.Uint64
	leaderBatches atomic.Uint64
	batchHist     [batchBuckets]atomic.Uint64
}

// NewLog creates a log with the given capacity in bytes (0 = unbounded).
func NewLog(capacity int) *Log {
	return NewLogConfig(Config{Capacity: capacity})
}

// NewLogConfig creates a log from a full configuration.
func NewLogConfig(cfg Config) *Log {
	l := &Log{capacity: uint64(cfg.Capacity), commitWindow: cfg.CommitWindow}
	l.next.Store(1)
	l.first.Store(1)
	l.ring.Store(&ring{})
	return l
}

// Append assigns the next LSN, stores the record and returns its LSN.
// Lock-free: concurrent appenders serialize only on the LSN and space
// fetch-adds. Before/after images are copied exactly once, into the
// segment's image arena, so callers may reuse their buffers and the
// hot path performs no per-record allocation.
func (l *Log) Append(r Record) core.LSN {
	lsn := core.LSN(l.next.Add(1) - 1)
	r.LSN = lsn
	size := uint64(r.Size())
	l.headBytes.Add(size)
	seg := l.segment(lsn)
	if n := len(r.Before) + len(r.After) + len(r.Meta); n > 0 {
		buf := seg.reserveImages(n)
		if nb := len(r.Before); nb > 0 {
			copy(buf, r.Before)
			r.Before = buf[:nb:nb]
		}
		if na := len(r.After); na > 0 {
			off := len(r.Before)
			copy(buf[off:], r.After)
			r.After = buf[off : off+na : off+na]
		}
		if nm := len(r.Meta); nm > 0 {
			off := len(r.Before) + len(r.After)
			copy(buf[off:], r.Meta)
			r.Meta = buf[off : off+nm : off+nm]
		}
	}
	s := &seg.slots[(uint64(lsn)-1)&segMask]
	s.rec = r
	seg.bytes.Add(size)
	s.pub.Store(1)
	l.advancePublished()
	return lsn
}

// segment returns the segment that owns lsn, growing the ring if the
// reservation ran ahead of it.
func (l *Log) segment(lsn core.LSN) *segment {
	if seg := l.ring.Load().segmentOf(lsn); seg != nil {
		return seg
	}
	return l.grow(lsn)
}

// grow extends the segment table to cover lsn. The ring snapshot is
// copied under ringMu and swapped in atomically; appenders and readers
// keep using their snapshots unlocked.
func (l *Log) grow(lsn core.LSN) *segment {
	l.ringMu.Lock()
	defer l.ringMu.Unlock()
	r := l.ring.Load()
	if seg := r.segmentOf(lsn); seg != nil {
		return seg
	}
	sn := segNum(lsn)
	segs := append([]*segment(nil), r.segs...)
	for next := r.firstSeg + uint64(len(segs)); next <= sn; next++ {
		segs = append(segs, newSegment(core.LSN(next*segRecords+1)))
	}
	l.ring.Store(&ring{firstSeg: r.firstSeg, segs: segs})
	return segs[sn-r.firstSeg]
}

// advancePublished moves the contiguous published horizon over every
// freshly published slot. Liveness: if publisher A (slot n+1) and B
// (slot n+2) race, whichever stores its publication word later in the
// sequentially-consistent order observes the other's word set and
// completes the advance past both — a published slot can never be
// stranded behind the horizon.
func (l *Log) advancePublished() {
	for {
		cur := l.published.Load()
		r := l.ring.Load()
		n := cur
		for {
			seg := r.segmentOf(core.LSN(n + 1))
			if seg == nil {
				// The ring may have grown since the snapshot.
				r = l.ring.Load()
				if seg = r.segmentOf(core.LSN(n + 1)); seg == nil {
					break // slot n+1 not reserved yet
				}
			}
			if seg.slots[n&segMask].pub.Load() == 0 {
				break // hole: an appender is still copying
			}
			n++
		}
		if n == cur {
			return
		}
		if l.published.CompareAndSwap(cur, n) {
			// Rescan: slots published while we advanced are ours to cover.
			continue
		}
		// Lost the CAS to another publisher; retry against its horizon.
	}
}

// Flush makes all records up to lsn durable. In this in-memory model it
// only moves the durability horizon and counts flushes (the cost shows up
// on a log device we do not model; the paper's experiments count data-page
// I/O). The horizon is clamped to the contiguous published prefix — a
// record becomes flushable only once everything before it is published.
func (l *Log) Flush(lsn core.LSN) {
	if pub := core.LSN(l.published.Load()); lsn > pub {
		lsn = pub
	}
	l.advanceFlushed(lsn)
}

// advanceFlushed is a monotonic max-CAS on the durable horizon. Returns
// the horizon it replaced and whether it moved.
func (l *Log) advanceFlushed(lsn core.LSN) (core.LSN, bool) {
	for {
		cur := l.flushed.Load()
		if uint64(lsn) <= cur {
			return core.LSN(cur), false
		}
		if l.flushed.CompareAndSwap(cur, uint64(lsn)) {
			l.flushes.Add(1)
			return core.LSN(cur), true
		}
	}
}

// GroupFlush makes all records up to lsn durable using adaptive,
// pipelined leader-based group commit:
//
//   - The first committer to arrive becomes the leader. It may linger
//     for Config.CommitWindow (default 0) to let the batch grow, then
//     absorbs everything contiguously published at that moment and
//     flushes once.
//   - Committers arriving while a flush is in flight never block
//     appends: if the in-flight flush already covers their LSN they
//     wait only for its completion and are absorbed; otherwise they
//     form the next batch — the first of them takes over leadership the
//     moment the current flush completes, pipelining batch k+1's
//     formation with batch k's device write.
//
// Under G concurrent workers this turns up to G per-commit flushes into
// one, and no committer ever holds a lock across the flush itself.
func (l *Log) GroupFlush(lsn core.LSN) {
	for {
		if core.LSN(l.flushed.Load()) >= lsn {
			l.absorbed.Add(1)
			return
		}
		l.flushMu.Lock()
		if core.LSN(l.flushed.Load()) >= lsn {
			l.flushMu.Unlock()
			l.absorbed.Add(1)
			return
		}
		if !l.flushing {
			l.flushing = true
			l.flushTarget = lsn
			done := make(chan struct{})
			l.flushDone = done
			l.flushMu.Unlock()
			l.lead(lsn, done)
			return
		}
		covered := lsn <= l.flushTarget
		done := l.flushDone
		l.flushMu.Unlock()
		<-done
		if covered {
			// The completed flush's horizon covered our LSN.
			l.absorbed.Add(1)
			return
		}
		// Not covered: loop — either the leader absorbed us anyway
		// (flushed check above) or we contend to lead the next batch.
	}
}

// lead runs one group flush. flushMu is NOT held across the flush: the
// horizon publication — the "device write" of this in-memory model —
// happens with no lock held, so concurrent Appends and arriving
// followers are never blocked behind a flushing leader.
func (l *Log) lead(lsn core.LSN, done chan struct{}) {
	if l.commitWindow > 0 {
		time.Sleep(l.commitWindow)
	}
	target := l.waitPublished(lsn)
	l.flushMu.Lock()
	if target > l.flushTarget {
		// Publish the true horizon so followers inside it are absorbed
		// by this flush instead of queueing for the next.
		l.flushTarget = target
	}
	l.flushMu.Unlock()
	if prev, moved := l.advanceFlushed(target); moved {
		l.leaderBatches.Add(1)
		l.recordBatch(uint64(target - prev))
	} else {
		// Another flush covered our target first: this committer was
		// absorbed after all. Every GroupFlush call is thus counted
		// exactly once, as a leader batch or an absorption.
		l.absorbed.Add(1)
	}
	l.flushMu.Lock()
	l.flushing = false
	l.flushMu.Unlock()
	close(done)
}

// waitPublished waits until the contiguous published horizon covers lsn
// and returns it. A hole below lsn is another appender mid-copy, so the
// wait is bounded by a few memcpys.
func (l *Log) waitPublished(lsn core.LSN) core.LSN {
	for spins := 0; ; spins++ {
		if pub := core.LSN(l.published.Load()); pub >= lsn {
			return pub
		}
		if spins < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(time.Microsecond)
		}
	}
}

// batchBuckets is the power-of-two batch-size histogram depth (2^23
// records per batch tops out the last bucket).
const batchBuckets = 24

func (l *Log) recordBatch(n uint64) {
	if n == 0 {
		return
	}
	b := bits.Len64(n) // bucket b-1 holds sizes [2^(b-1), 2^b)
	if b > batchBuckets {
		b = batchBuckets
	}
	l.batchHist[b-1].Add(1)
}

// batchQuantile returns the approximate q-quantile of leader batch
// sizes, as the lower bound of the histogram bucket containing it
// (exact for batch sizes that are powers of two).
func (l *Log) batchQuantile(q float64) uint64 {
	var total uint64
	var counts [batchBuckets]uint64
	for i := range l.batchHist {
		counts[i] = l.batchHist[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if rank < cum {
			return 1 << uint(i)
		}
	}
	return 1 << (batchBuckets - 1)
}

// Absorbed returns how many GroupFlush calls were satisfied by another
// committer's flush (the group-commit win). Lock-free.
func (l *Log) Absorbed() uint64 { return l.absorbed.Load() }

// Flushed returns the durable horizon. Lock-free.
func (l *Log) Flushed() core.LSN { return core.LSN(l.flushed.Load()) }

// Flushes returns how many flush operations moved the horizon. Lock-free.
func (l *Log) Flushes() uint64 { return l.flushes.Load() }

// Get returns the record with the given LSN. Lock-free: the slot's
// publication word is the only synchronisation, so rollback walking a
// transaction's chain never contends with appenders.
func (l *Log) Get(lsn core.LSN) (Record, error) {
	first := core.LSN(l.first.Load())
	if lsn < first {
		return Record{}, fmt.Errorf("%w: %d (tail at %d)", ErrTruncated, lsn, first)
	}
	next := core.LSN(l.next.Load())
	if lsn >= next {
		return Record{}, fmt.Errorf("%w: %d (head at %d)", ErrNotFound, lsn, next)
	}
	seg := l.ring.Load().segmentOf(lsn)
	if seg == nil {
		// Raced a concurrent truncation (segment retired) or the owning
		// appender has not grown the ring yet (slot reserved, unwritten).
		if lsn < core.LSN(l.first.Load()) {
			return Record{}, fmt.Errorf("%w: %d (tail at %d)", ErrTruncated, lsn, core.LSN(l.first.Load()))
		}
		return Record{}, fmt.Errorf("%w: %d (head at %d)", ErrNotFound, lsn, next)
	}
	s := &seg.slots[(uint64(lsn)-1)&segMask]
	if s.pub.Load() == 0 {
		return Record{}, fmt.Errorf("%w: %d (head at %d)", ErrNotFound, lsn, next)
	}
	return s.rec, nil
}

// Scan calls fn for every record with LSN ≥ from, in order, until fn
// returns false. Only the contiguous published prefix is visited, so a
// scan can never observe an LSN gap: records still being copied by
// concurrent appenders (and everything after them) are simply not yet
// part of the log it sees.
func (l *Log) Scan(from core.LSN, fn func(Record) bool) {
	// Order matters: load the horizon before the ring snapshot, so the
	// snapshot is guaranteed to contain a segment for every LSN ≤ limit.
	limit := core.LSN(l.published.Load())
	r := l.ring.Load()
	if f := core.LSN(l.first.Load()); from < f {
		from = f
	}
	if from < 1 {
		from = 1
	}
	var seg *segment
	for lsn := from; lsn <= limit; lsn++ {
		if seg == nil || lsn >= seg.firstLSN+segRecords {
			if seg = r.segmentOf(lsn); seg == nil {
				// A concurrent truncation retired this segment; skip to
				// the new tail (or stop if it passed the horizon).
				f := core.LSN(l.first.Load())
				if f <= lsn {
					return
				}
				lsn = f - 1
				seg = nil
				continue
			}
		}
		if !fn(seg.slots[(uint64(lsn)-1)&segMask].rec) {
			return
		}
	}
}

// Head returns the newest contiguously published LSN (0 when empty) —
// the LSN horizon every reader is allowed to observe.
func (l *Log) Head() core.LSN { return core.LSN(l.published.Load()) }

// Tail returns the oldest retained LSN. Lock-free.
func (l *Log) Tail() core.LSN { return core.LSN(l.first.Load()) }

// Truncate discards records below lsn, reclaiming their log space. It is
// called after a checkpoint establishes that no active transaction or
// dirty page needs them.
//
// Cost: fully covered segments retire in O(1) each via their published
// byte totals, and only the partially dropped boundary segments are
// summed slot-by-slot — O(segments dropped + segRecords), independent
// of how many records the log retains.
func (l *Log) Truncate(lsn core.LSN) {
	l.ringMu.Lock()
	defer l.ringMu.Unlock()
	first := core.LSN(l.first.Load())
	// Never drop past the contiguous published horizon: a reserved but
	// unpublished slot is still owned by its appender.
	if max := core.LSN(l.published.Load()) + 1; lsn > max {
		lsn = max
	}
	// Honour the replication retain floor: a connected follower's cursor
	// must never find its next record truncated away.
	if floor := core.LSN(l.retainFloor.Load()); floor != 0 && lsn > floor {
		lsn = floor
	}
	if lsn <= first {
		return
	}
	r := l.ring.Load()
	var freed uint64
	for cur := first; cur < lsn; {
		seg := r.segmentOf(cur)
		segEnd := seg.firstLSN + segRecords
		if cur == seg.firstLSN && segEnd <= lsn {
			// Whole segment drops: O(1) via its byte total.
			freed += seg.bytes.Load()
			cur = segEnd
			continue
		}
		stop := segEnd
		if lsn < stop {
			stop = lsn
		}
		for ; cur < stop; cur++ {
			freed += uint64(seg.slots[(uint64(cur)-1)&segMask].rec.Size())
		}
	}
	l.tailBytes.Add(freed)
	l.first.Store(uint64(lsn))
	if newFirstSeg := segNum(lsn); newFirstSeg > r.firstSeg {
		drop := newFirstSeg - r.firstSeg
		if drop > uint64(len(r.segs)) {
			drop = uint64(len(r.segs))
		}
		l.ring.Store(&ring{
			firstSeg: r.firstSeg + drop,
			segs:     append([]*segment(nil), r.segs[drop:]...),
		})
	}
}

// ReadFrom returns a batch of consecutive records starting at exactly
// `from`, bounded by maxRecords and maxBytes (≤ 0 means unbounded), up
// to the contiguous published horizon. It is the replication shipping
// cursor: unlike Scan — which silently skips over truncated segments to
// the new tail — a cursor that has fallen behind the tail gets a clean
// error wrapping ErrTruncated ("horizon behind tail"), including when it
// resumes exactly at a retired-segment edge after a Truncate. The caller
// (the shipping loop) reacts by switching to a full snapshot resync; a
// zero record here would silently corrupt the follower's log.
//
// An empty batch with a nil error means the cursor is caught up with the
// published horizon.
func (l *Log) ReadFrom(from core.LSN, maxRecords, maxBytes int) ([]Record, error) {
	if from < 1 {
		from = 1
	}
	// Horizon before ring snapshot, same as Scan: the snapshot then
	// covers every LSN ≤ limit that has not been truncated meanwhile.
	limit := core.LSN(l.published.Load())
	r := l.ring.Load()
	if f := core.LSN(l.first.Load()); from < f {
		return nil, fmt.Errorf("%w: cursor horizon %d behind log tail %d", ErrTruncated, from, f)
	}
	var out []Record
	var bytes int
	var seg *segment
	for lsn := from; lsn <= limit; lsn++ {
		if maxRecords > 0 && len(out) >= maxRecords {
			break
		}
		if seg == nil || lsn >= seg.firstLSN+segRecords {
			if seg = r.segmentOf(lsn); seg == nil {
				// A concurrent truncation retired the segment under the
				// cursor — the records are gone, not skippable.
				return nil, fmt.Errorf("%w: cursor horizon %d behind log tail %d",
					ErrTruncated, lsn, core.LSN(l.first.Load()))
			}
		}
		rec := seg.slots[(uint64(lsn)-1)&segMask].rec
		if maxBytes > 0 && bytes > 0 && bytes+rec.Size() > maxBytes {
			break
		}
		bytes += rec.Size()
		out = append(out, rec)
	}
	return out, nil
}

// SetRetainFloor pins the truncation horizon for replication: Truncate
// never drops records with LSN ≥ floor while the floor is set (0 clears
// it). The leader keeps the floor at the minimum acked LSN + 1 of its
// connected followers so their cursors never hit ErrTruncated in steady
// state; a follower that falls too far behind is dropped from the floor
// and resynced by snapshot instead of pinning the log forever.
func (l *Log) SetRetainFloor(floor core.LSN) { l.retainFloor.Store(uint64(floor)) }

// AppendedBytes is the total log volume ever appended (monotonic, never
// reduced by truncation). Two logs holding the same record stream report
// the same value, which is what makes leader-minus-follower the exact
// replication lag in bytes. Lock-free.
func (l *Log) AppendedBytes() uint64 { return l.headBytes.Load() }

// Reset reinitialises the log in place to an empty state positioned at
// head: the next append receives LSN head+1, the tail and durable
// horizon sit at head, and all retained records are dropped. Installing
// a replica snapshot uses this to splice the follower's log onto the
// primary's LSN sequence; it must happen in place (not by swapping the
// Log pointer) because long-lived goroutines — the MVCC reaper, the
// maintenance loop — captured this instance. The caller guarantees no
// concurrent appends or reads (the engine holds its state latch
// exclusively).
func (l *Log) Reset(head core.LSN) {
	l.ringMu.Lock()
	defer l.ringMu.Unlock()
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	l.next.Store(uint64(head) + 1)
	l.published.Store(uint64(head))
	l.first.Store(uint64(head) + 1)
	l.flushed.Store(uint64(head))
	l.ring.Store(&ring{firstSeg: segNum(head + 1)})
	l.headBytes.Store(0)
	l.tailBytes.Store(0)
	l.retainFloor.Store(0)
}

// UsedBytes is the live log volume. Lock-free: tail is read before head
// so the difference never underflows (both only grow, and tail ≤ head at
// every instant).
func (l *Log) UsedBytes() uint64 {
	tail := l.tailBytes.Load()
	return l.headBytes.Load() - tail
}

// Usage is the fraction of the log device consumed (0 when unbounded).
// Lock-free.
func (l *Log) Usage() float64 {
	if l.capacity == 0 {
		return 0
	}
	return float64(l.UsedBytes()) / float64(l.capacity)
}

// Capacity returns the configured log device size.
func (l *Log) Capacity() uint64 { return l.capacity }

// Stats is one lock-free snapshot of the log's contention and space
// counters — the observability for the reservation-based append path
// and adaptive group commit (Flashmon is the monitoring precedent: the
// counters exist to *prove* where the contention went).
type Stats struct {
	// Reservations is how many LSN/space reservations appenders took
	// (every record ever appended, including reserved-but-unpublished
	// in-flight ones).
	Reservations uint64
	// Published is the highest contiguously published LSN; Flushed the
	// durable horizon trailing it.
	Published core.LSN
	Flushed   core.LSN
	// Flushes counts horizon movements; LeaderBatches the subset driven
	// by a group-commit leader; Absorbed the committers a leader's flush
	// covered (the group-commit win).
	Flushes       uint64
	LeaderBatches uint64
	Absorbed      uint64
	// BatchP50/BatchP99 are approximate quantiles of leader batch sizes
	// in records, bucketed to powers of two.
	BatchP50 uint64
	BatchP99 uint64
	// Space accounting and ring shape.
	UsedBytes uint64
	Usage     float64
	Segments  int
}

// Stats assembles a snapshot. Lock-free; counters keep moving while it
// is taken.
func (l *Log) Stats() Stats {
	return Stats{
		Reservations:  l.next.Load() - 1,
		Published:     core.LSN(l.published.Load()),
		Flushed:       core.LSN(l.flushed.Load()),
		Flushes:       l.flushes.Load(),
		LeaderBatches: l.leaderBatches.Load(),
		Absorbed:      l.absorbed.Load(),
		BatchP50:      l.batchQuantile(0.50),
		BatchP99:      l.batchQuantile(0.99),
		UsedBytes:     l.UsedBytes(),
		Usage:         l.Usage(),
		Segments:      len(l.ring.Load().segs),
	}
}
