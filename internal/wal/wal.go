// Package wal implements an ARIES-style write-ahead log: physiological
// update records with before/after images, per-transaction backward
// chains, compensation log records (CLRs), fuzzy checkpoints, and
// log-space accounting.
//
// The log matters to the paper in two ways. First, IPA leaves recovery
// untouched (Sec. 6.2 "Remaining DBMS functionality"): pages reconstructed
// from flash + delta-records carry the correct PageLSN, so redo/undo work
// as usual — the recovery tests exercise exactly that. Second, Shore-MT's
// *eager log-space reclamation* (reclaiming when 25–50% of the log is
// consumed) forces dirty-page flushes even with huge buffer pools, which
// is why the paper still sees host writes at 90% buffer size (Sec. 8.4,
// Tables 9/10); the Capacity/usage mechanism reproduces that behaviour.
package wal

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ipa/internal/core"
)

// RecType enumerates log record kinds.
type RecType uint8

const (
	RecBegin RecType = iota + 1
	RecUpdate
	RecCommit
	RecAbort // transaction entered rollback
	RecEnd   // rollback or commit processing finished
	RecCLR   // compensation record written during undo
	RecCheckpoint
)

func (t RecType) String() string {
	switch t {
	case RecBegin:
		return "BEGIN"
	case RecUpdate:
		return "UPDATE"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecEnd:
		return "END"
	case RecCLR:
		return "CLR"
	case RecCheckpoint:
		return "CHECKPOINT"
	default:
		return fmt.Sprintf("RecType(%d)", uint8(t))
	}
}

// PageOp is the physiological operation an update record describes.
type PageOp uint8

const (
	OpNone   PageOp = iota
	OpInsert        // tuple inserted at Slot; After = tuple image
	OpUpdate        // tuple at Slot replaced; Before/After = tuple images
	OpDelete        // tuple at Slot deleted; Before = tuple image
	OpFormat        // page formatted (allocation); no images
)

// Record is one log entry. Update/CLR records are physiological: they
// address a tuple slot within a page and are redone/undone through the
// slotted-page API, guarded by the PageLSN.
type Record struct {
	LSN     core.LSN
	Type    RecType
	TxID    uint64
	PrevLSN core.LSN // backward chain within the transaction

	// Update / CLR payload.
	Page   core.PageID
	Op     PageOp
	Slot   uint16
	Before []byte // undo image (empty for CLRs)
	After  []byte // redo image

	// CLR only: next record to undo for this transaction.
	UndoNext core.LSN

	// Checkpoint payload: active transactions (txID → lastLSN) and dirty
	// pages (page → recLSN).
	ActiveTxs  map[uint64]core.LSN
	DirtyPages map[core.PageID]core.LSN
}

// Size is the bytes the record occupies in the log (a fixed header plus
// images), driving log-space accounting.
func (r Record) Size() int {
	n := 48 + len(r.Before) + len(r.After)
	n += 16 * (len(r.ActiveTxs) + len(r.DirtyPages))
	return n
}

// Errors of the log.
var (
	ErrTruncated = errors.New("wal: record truncated away")
	ErrNotFound  = errors.New("wal: no such LSN")
)

// Log is an in-memory write-ahead log with byte-accurate space
// accounting. LSNs are 1-based sequence numbers; the zero LSN means
// "none".
//
// The observable counters (Flushed, Flushes, Absorbed, UsedBytes, Usage)
// are atomics written under l.mu but read lock-free, so stats sampling
// (DB.Stats, reclaim-threshold probes) never contends with the
// group-commit leader holding the mutex.
type Log struct {
	mu      sync.Mutex
	records []Record      // records[i] has LSN = firstLSN + i
	first   core.LSN      // LSN of records[0]
	next    core.LSN      // next LSN to assign
	flushed atomic.Uint64 // durable horizon (WAL rule), as a core.LSN

	headBytes atomic.Uint64 // total bytes ever appended
	tailBytes atomic.Uint64 // bytes reclaimed
	capacity  uint64        // log device size; 0 = unbounded
	sizeAt    []uint64
	flushes   atomic.Uint64

	// Group-flush state: one leader flushes on behalf of every committer
	// whose records are already in the log; followers wait on flushCond
	// and are absorbed without a device flush of their own.
	flushCond *sync.Cond
	flushing  bool
	absorbed  atomic.Uint64
}

// NewLog creates a log with the given capacity in bytes (0 = unbounded).
func NewLog(capacity int) *Log {
	l := &Log{first: 1, next: 1, capacity: uint64(capacity)}
	l.flushCond = sync.NewCond(&l.mu)
	return l
}

// Append assigns the next LSN, stores the record and returns its LSN.
func (l *Log) Append(r Record) core.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	r.LSN = l.next
	l.next++
	l.records = append(l.records, r)
	head := l.headBytes.Add(uint64(r.Size()))
	l.sizeAt = append(l.sizeAt, head)
	return r.LSN
}

// Flush makes all records up to lsn durable. In this in-memory model it
// only moves the durability horizon and counts flushes (the cost shows up
// on a log device we do not model; the paper's experiments count data-page
// I/O).
func (l *Log) Flush(lsn core.LSN) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn >= l.next {
		lsn = l.next - 1
	}
	if uint64(lsn) > l.flushed.Load() {
		l.flushed.Store(uint64(lsn))
		l.flushes.Add(1)
	}
}

// GroupFlush makes all records up to lsn durable using leader-based
// group commit: the first committer to arrive becomes the leader and
// flushes everything appended so far; committers arriving while a flush
// is in flight wait, and when the leader's flush already covers their
// LSN they return without a flush of their own. Under G concurrent
// workers this turns up to G per-commit flushes into one.
func (l *Log) GroupFlush(lsn core.LSN) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.flushed.Load() >= uint64(lsn) {
			l.absorbed.Add(1)
			return
		}
		if !l.flushing {
			break
		}
		l.flushCond.Wait()
	}
	l.flushing = true
	target := l.next - 1 // absorb everything appended so far
	// The device write happens outside the mutex so concurrent Appends
	// (and followers registering) are not blocked behind it.
	l.mu.Unlock()
	l.mu.Lock()
	if uint64(target) > l.flushed.Load() {
		l.flushed.Store(uint64(target))
		l.flushes.Add(1)
	}
	l.flushing = false
	l.flushCond.Broadcast()
}

// Absorbed returns how many GroupFlush calls were satisfied by another
// committer's flush (the group-commit win). Lock-free.
func (l *Log) Absorbed() uint64 { return l.absorbed.Load() }

// Flushed returns the durable horizon. Lock-free.
func (l *Log) Flushed() core.LSN { return core.LSN(l.flushed.Load()) }

// Flushes returns how many flush operations moved the horizon. Lock-free.
func (l *Log) Flushes() uint64 { return l.flushes.Load() }

// Get returns the record with the given LSN.
func (l *Log) Get(lsn core.LSN) (Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.getLocked(lsn)
}

func (l *Log) getLocked(lsn core.LSN) (Record, error) {
	if lsn < l.first {
		return Record{}, fmt.Errorf("%w: %d (tail at %d)", ErrTruncated, lsn, l.first)
	}
	if lsn >= l.next {
		return Record{}, fmt.Errorf("%w: %d (head at %d)", ErrNotFound, lsn, l.next)
	}
	return l.records[lsn-l.first], nil
}

// Scan calls fn for every record with LSN ≥ from, in order, until fn
// returns false.
func (l *Log) Scan(from core.LSN, fn func(Record) bool) {
	l.mu.Lock()
	recs := l.records
	first := l.first
	l.mu.Unlock()
	if from < first {
		from = first
	}
	for i := int(from - first); i < len(recs); i++ {
		if !fn(recs[i]) {
			return
		}
	}
}

// Head returns the LSN that the next Append will assign, minus one — the
// newest LSN in the log (0 when empty).
func (l *Log) Head() core.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - 1
}

// Tail returns the oldest retained LSN.
func (l *Log) Tail() core.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.first
}

// Truncate discards records below lsn, reclaiming their log space. It is
// called after a checkpoint establishes that no active transaction or
// dirty page needs them.
func (l *Log) Truncate(lsn core.LSN) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn <= l.first {
		return
	}
	if lsn > l.next {
		lsn = l.next
	}
	drop := int(lsn - l.first)
	if drop > len(l.records) {
		drop = len(l.records)
	}
	if drop > 0 {
		var freed uint64
		if drop == len(l.records) {
			freed = l.headBytes.Load() - l.tailBytes.Load()
		} else {
			freed = l.sizeAt[drop-1] - l.tailBytes.Load()
		}
		l.tailBytes.Add(freed)
		l.records = append([]Record(nil), l.records[drop:]...)
		l.sizeAt = append([]uint64(nil), l.sizeAt[drop:]...)
		l.first += core.LSN(drop)
	}
}

// UsedBytes is the live log volume. Lock-free: tail is read before head
// so the difference never underflows (both only grow, and tail ≤ head at
// every instant).
func (l *Log) UsedBytes() uint64 {
	tail := l.tailBytes.Load()
	return l.headBytes.Load() - tail
}

// Usage is the fraction of the log device consumed (0 when unbounded).
// Lock-free.
func (l *Log) Usage() float64 {
	if l.capacity == 0 {
		return 0
	}
	return float64(l.UsedBytes()) / float64(l.capacity)
}

// Capacity returns the configured log device size.
func (l *Log) Capacity() uint64 { return l.capacity }
