package wal

import (
	"errors"
	"testing"
	"testing/quick"

	"ipa/internal/core"
)

func TestAppendAssignsSequentialLSNs(t *testing.T) {
	l := NewLog(0)
	for i := 1; i <= 5; i++ {
		lsn := l.Append(Record{Type: RecUpdate, TxID: 1})
		if lsn != core.LSN(i) {
			t.Errorf("append %d: lsn = %d", i, lsn)
		}
	}
	if l.Head() != 5 || l.Tail() != 1 {
		t.Errorf("head/tail = %d/%d", l.Head(), l.Tail())
	}
}

func TestGetAndScan(t *testing.T) {
	l := NewLog(0)
	l.Append(Record{Type: RecBegin, TxID: 1})
	l.Append(Record{Type: RecUpdate, TxID: 1, Page: 9, After: []byte{1}})
	l.Append(Record{Type: RecCommit, TxID: 1})
	r, err := l.Get(2)
	if err != nil || r.Type != RecUpdate || r.Page != 9 {
		t.Fatalf("Get(2) = %+v, %v", r, err)
	}
	if _, err := l.Get(99); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(99): %v", err)
	}
	var seen []core.LSN
	l.Scan(2, func(r Record) bool {
		seen = append(seen, r.LSN)
		return true
	})
	if len(seen) != 2 || seen[0] != 2 || seen[1] != 3 {
		t.Errorf("scan = %v", seen)
	}
	// Early stop.
	n := 0
	l.Scan(1, func(Record) bool { n++; return false })
	if n != 1 {
		t.Errorf("scan with stop visited %d", n)
	}
}

func TestFlushHorizon(t *testing.T) {
	l := NewLog(0)
	l.Append(Record{Type: RecUpdate})
	l.Append(Record{Type: RecUpdate})
	l.Flush(1)
	if l.Flushed() != 1 {
		t.Errorf("Flushed = %d", l.Flushed())
	}
	l.Flush(100) // clamped to head
	if l.Flushed() != 2 {
		t.Errorf("Flushed = %d", l.Flushed())
	}
	l.Flush(1) // never regresses
	if l.Flushed() != 2 {
		t.Errorf("Flushed regressed to %d", l.Flushed())
	}
	if l.Flushes() != 2 {
		t.Errorf("Flushes = %d", l.Flushes())
	}
}

func TestSpaceAccountingAndTruncate(t *testing.T) {
	l := NewLog(1000)
	r := Record{Type: RecUpdate, Before: make([]byte, 10), After: make([]byte, 10)}
	sz := uint64(r.Size())
	for i := 0; i < 4; i++ {
		l.Append(r)
	}
	if l.UsedBytes() != 4*sz {
		t.Errorf("UsedBytes = %d, want %d", l.UsedBytes(), 4*sz)
	}
	wantUsage := float64(4*sz) / 1000
	if l.Usage() != wantUsage {
		t.Errorf("Usage = %v, want %v", l.Usage(), wantUsage)
	}
	l.Truncate(3) // keep LSNs ≥ 3
	if l.UsedBytes() != 2*sz {
		t.Errorf("after truncate UsedBytes = %d, want %d", l.UsedBytes(), 2*sz)
	}
	if l.Tail() != 3 {
		t.Errorf("Tail = %d", l.Tail())
	}
	if _, err := l.Get(2); !errors.Is(err, ErrTruncated) {
		t.Errorf("Get truncated: %v", err)
	}
	if r3, err := l.Get(3); err != nil || r3.LSN != 3 {
		t.Errorf("Get(3) after truncate = %+v, %v", r3, err)
	}
	// Truncating backwards or past head is safe.
	l.Truncate(1)
	if l.Tail() != 3 {
		t.Error("backward truncate moved tail")
	}
	l.Truncate(100)
	if l.UsedBytes() != 0 {
		t.Errorf("full truncate left %d bytes", l.UsedBytes())
	}
}

func TestUnboundedLogUsageZero(t *testing.T) {
	l := NewLog(0)
	l.Append(Record{Type: RecUpdate, After: make([]byte, 100)})
	if l.Usage() != 0 {
		t.Errorf("unbounded Usage = %v", l.Usage())
	}
}

func TestRecordSize(t *testing.T) {
	r := Record{Type: RecUpdate, Before: make([]byte, 3), After: make([]byte, 5)}
	if r.Size() != 48+8 {
		t.Errorf("Size = %d", r.Size())
	}
	// Checkpoint: header + two 8-byte table counts + 24 B per entry
	// (16 B key/value payload + 8 B slot directory).
	ck := Record{Type: RecCheckpoint,
		ActiveTxs:  map[uint64]core.LSN{1: 1, 2: 2},
		DirtyPages: map[core.PageID]core.LSN{3: 3},
	}
	if ck.Size() != 48+16+24*3 {
		t.Errorf("checkpoint Size = %d", ck.Size())
	}
}

func TestRecTypeString(t *testing.T) {
	for rt, want := range map[RecType]string{
		RecBegin: "BEGIN", RecUpdate: "UPDATE", RecCommit: "COMMIT",
		RecAbort: "ABORT", RecEnd: "END", RecCLR: "CLR", RecCheckpoint: "CHECKPOINT",
	} {
		if rt.String() != want {
			t.Errorf("%d.String() = %q", rt, rt.String())
		}
	}
}

// Property: for any interleaving of appends and truncates, Get returns
// exactly the records with Tail ≤ LSN ≤ Head, and UsedBytes equals the
// sum of retained record sizes.
func TestPropertySpaceInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		l := NewLog(1 << 20)
		var retained []Record
		for _, op := range ops {
			if op%4 == 0 && len(retained) > 0 {
				cut := core.LSN(int(l.Tail()) + int(op)%len(retained))
				l.Truncate(cut)
				for len(retained) > 0 && retained[0].LSN < cut {
					retained = retained[1:]
				}
			} else {
				r := Record{Type: RecUpdate, After: make([]byte, int(op))}
				lsn := l.Append(r)
				r.LSN = lsn
				retained = append(retained, r)
			}
		}
		var want uint64
		for _, r := range retained {
			want += uint64(r.Size())
			got, err := l.Get(r.LSN)
			if err != nil || got.LSN != r.LSN || len(got.After) != len(r.After) {
				return false
			}
		}
		return l.UsedBytes() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
