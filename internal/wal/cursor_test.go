package wal

import (
	"bytes"
	"errors"
	"testing"

	"ipa/internal/core"
)

// fillSegments appends n small records and returns the log.
func fillSegments(n int) *Log {
	l := NewLog(0)
	for i := 0; i < n; i++ {
		l.Append(Record{Type: RecUpdate, TxID: 1, Page: core.PageID(i + 1), After: []byte{byte(i)}})
	}
	return l
}

func TestReadFromReturnsContiguousBatch(t *testing.T) {
	l := fillSegments(10)
	recs, err := l.ReadFrom(3, 4, 0)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if len(recs) != 4 {
		t.Fatalf("batch = %d records, want 4", len(recs))
	}
	for i, r := range recs {
		if r.LSN != core.LSN(3+i) {
			t.Errorf("recs[%d].LSN = %d, want %d", i, r.LSN, 3+i)
		}
	}
	// Caught up: empty batch, nil error.
	recs, err = l.ReadFrom(11, 0, 0)
	if err != nil || len(recs) != 0 {
		t.Errorf("caught-up cursor = %d records, %v", len(recs), err)
	}
}

func TestReadFromByteBound(t *testing.T) {
	l := fillSegments(10)
	one, err := l.ReadFrom(1, 1, 0)
	if err != nil || len(one) != 1 {
		t.Fatalf("ReadFrom(1,1,0) = %d, %v", len(one), err)
	}
	// A byte budget that fits exactly two records.
	recs, err := l.ReadFrom(1, 0, 2*one[0].Size())
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if len(recs) != 2 {
		t.Errorf("byte-bounded batch = %d records, want 2", len(recs))
	}
	// A budget below one record still makes progress: one record minimum.
	recs, err = l.ReadFrom(1, 0, 1)
	if err != nil || len(recs) != 1 {
		t.Errorf("tiny budget batch = %d records, %v", len(recs), err)
	}
}

// TestReadFromBehindTail is the satellite-2 regression: a cursor resumed
// below the tail after a Truncate must fail with ErrTruncated ("horizon
// behind tail"), never return a zero record — unlike Scan, which skips
// ahead by design.
func TestReadFromBehindTail(t *testing.T) {
	l := fillSegments(100)
	l.Truncate(50)
	if _, err := l.ReadFrom(10, 0, 0); !errors.Is(err, ErrTruncated) {
		t.Fatalf("ReadFrom(10) after Truncate(50): err = %v, want ErrTruncated", err)
	}
	// At the new tail the cursor works again.
	recs, err := l.ReadFrom(50, 3, 0)
	if err != nil || len(recs) != 3 || recs[0].LSN != 50 {
		t.Fatalf("ReadFrom(50) = %d recs (first %v), %v", len(recs), recs, err)
	}
}

// TestReadFromRetiredSegmentEdge resumes the cursor exactly at a
// retired-segment boundary: Truncate drops whole ring segments, and a
// cursor positioned at the first LSN of a dropped segment (or one past
// its last) must see a clean error, not a zero record read through a
// recycled slot.
func TestReadFromRetiredSegmentEdge(t *testing.T) {
	l := fillSegments(3 * segRecords)
	// Retire exactly the first two segments; the tail is now the first
	// LSN of segment 2 (absolute numbering from 0).
	edge := core.LSN(2*segRecords + 1)
	l.Truncate(edge)
	if got := l.Tail(); got != edge {
		t.Fatalf("Tail = %d, want %d", got, edge)
	}
	cases := []core.LSN{
		1,                              // first LSN of the first retired segment
		segRecords,                     // last LSN of the first retired segment
		segRecords + 1,                 // first LSN of the second retired segment
		core.LSN(2 * segRecords),       // last retired LSN (exact edge - 1)
		core.LSN(2*segRecords + 1 - 1), // same edge spelled via the boundary
	}
	for _, from := range cases {
		recs, err := l.ReadFrom(from, 1, 0)
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("ReadFrom(%d): recs=%v err=%v, want ErrTruncated", from, recs, err)
		}
	}
	// Exactly at the surviving edge: a real record, the right one.
	recs, err := l.ReadFrom(edge, 1, 0)
	if err != nil || len(recs) != 1 || recs[0].LSN != edge || recs[0].Type != RecUpdate {
		t.Fatalf("ReadFrom(%d) = %+v, %v; want the surviving record", edge, recs, err)
	}
}

// TestScanSkipsWhereReadFromFails pins the behavioural difference the
// shipping cursor depends on: Scan silently resumes at the new tail
// (recovery semantics), ReadFrom refuses (replication semantics).
func TestScanSkipsWhereReadFromFails(t *testing.T) {
	l := fillSegments(2 * segRecords)
	l.Truncate(core.LSN(segRecords + 1))
	var first core.LSN
	l.Scan(1, func(r Record) bool { first = r.LSN; return false })
	if first != core.LSN(segRecords+1) {
		t.Errorf("Scan resumed at %d, want %d", first, segRecords+1)
	}
	if _, err := l.ReadFrom(1, 0, 0); !errors.Is(err, ErrTruncated) {
		t.Errorf("ReadFrom(1): %v, want ErrTruncated", err)
	}
}

func TestRetainFloorClampsTruncate(t *testing.T) {
	l := fillSegments(100)
	l.SetRetainFloor(40)
	l.Truncate(80)
	if got := l.Tail(); got != 40 {
		t.Fatalf("Tail = %d with retain floor 40, want 40", got)
	}
	// The floor keeps the shipping cursor alive.
	if _, err := l.ReadFrom(40, 1, 0); err != nil {
		t.Fatalf("ReadFrom(40): %v", err)
	}
	// Clearing the floor releases the clamp.
	l.SetRetainFloor(0)
	l.Truncate(80)
	if got := l.Tail(); got != 80 {
		t.Fatalf("Tail = %d after clearing floor, want 80", got)
	}
}

func TestResetSplicesLogAtHead(t *testing.T) {
	l := fillSegments(10)
	l.Reset(700) // mid-segment on purpose
	if l.Head() != 700 || l.Tail() != 701 || l.Flushed() != 700 {
		t.Fatalf("after Reset(700): head=%d tail=%d flushed=%d", l.Head(), l.Tail(), l.Flushed())
	}
	if l.AppendedBytes() != 0 {
		t.Errorf("AppendedBytes = %d after Reset", l.AppendedBytes())
	}
	lsn := l.Append(Record{Type: RecBegin, TxID: 7})
	if lsn != 701 {
		t.Fatalf("first append after Reset(700) got LSN %d, want 701", lsn)
	}
	if _, err := l.Get(700); !errors.Is(err, ErrTruncated) {
		t.Errorf("Get(700) after Reset: %v, want ErrTruncated", err)
	}
	recs, err := l.ReadFrom(701, 0, 0)
	if err != nil || len(recs) != 1 || recs[0].LSN != 701 {
		t.Fatalf("ReadFrom(701) = %v, %v", recs, err)
	}
}

func TestMetaRoundTripsThroughArena(t *testing.T) {
	l := NewLog(0)
	meta := []byte("table:tpcb_account@data#3")
	lsn := l.Append(Record{Type: RecTable, Meta: meta})
	r, err := l.Get(lsn)
	if err != nil || !bytes.Equal(r.Meta, meta) {
		t.Fatalf("Get = %+v, %v", r, err)
	}
	// The log owns its copy: mutating the caller's buffer is invisible.
	meta[0] = 'X'
	r, _ = l.Get(lsn)
	if r.Meta[0] != 't' {
		t.Errorf("Meta aliased the caller's buffer")
	}
	if r.Size() != 48+len(meta) {
		t.Errorf("Size = %d, want %d", r.Size(), 48+len(meta))
	}
}
