package experiments

import (
	"fmt"
	"time"

	"ipa/internal/core"
	"ipa/internal/ipl"
	"ipa/internal/noftl"
)

// Params tunes experiment effort. Quick keeps runs small enough for unit
// tests and `go test -bench`; the CLI uses larger scales.
type Params struct {
	Quick bool
}

func (p Params) tx(full int) int {
	if p.Quick {
		return full / 4
	}
	return full
}

// Table1 reproduces Table 1: update-size percentiles for TPC-B, TPC-C
// (net data) and LinkBench (gross data) at 75% buffer with eager
// eviction.
func Table1(p Params) (*Table, error) {
	t := &Table{
		ID:     "table1",
		Title:  "Update-sizes in TPC-B/-C and LinkBench (buffer 75%, eager eviction)",
		Header: []string{"changed bytes ≤", "TPC-B net [pct-ile]", "TPC-C net [pct-ile]", "LinkBench gross [pct-ile]"},
	}
	specs := map[string]Spec{
		"tpcb":      {Bench: "tpcb", Scheme: core.NewScheme(2, 4), BufferPct: 0.75, Eager: true, Tx: p.tx(8000)},
		"tpcc":      {Bench: "tpcc", Scheme: core.NewScheme(2, 3), BufferPct: 0.75, Eager: true, Tx: p.tx(6000)},
		"linkbench": {Bench: "linkbench", Scheme: core.NewScheme(2, 100), BufferPct: 0.75, Eager: true, Tx: p.tx(6000)},
	}
	outs := map[string]*Out{}
	for k, s := range specs {
		o, err := Execute(s)
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", k, err)
		}
		outs[k] = o
	}
	for _, th := range []int{3, 7, 20, 100, 125} {
		t.AddRow(th,
			fmt.Sprintf("%.0f", outs["tpcb"].Store.NetBytes.PercentileLE(th)),
			fmt.Sprintf("%.0f", outs["tpcc"].Store.NetBytes.PercentileLE(th)),
			fmt.Sprintf("%.0f", outs["linkbench"].Store.GrossBytes.PercentileLE(th)),
		)
	}
	t.Notes = append(t.Notes, "paper: ≤3B at 10th/55th/0th, ≤7B at 62nd/83rd/0th, ≤20B at 99th/88th/5th")
	return t, nil
}

// Table2 reproduces Table 2: IPA vs IPL on recorded TPC-B, TPC-C and
// TATP traces, replayed on the In-Page Logging simulator and on the IPA
// model in the configuration of the original IPL paper.
func Table2(p Params) (*Table, error) {
	t := &Table{
		ID:     "table2",
		Title:  "Comparison of IPA to IPL (same traces, Lee&Moon configuration)",
		Header: []string{"metric", "TPC-B IPA", "TPC-B IPL", "TPC-C IPA", "TPC-C IPL", "TATP IPA", "TATP IPL"},
	}
	type pair struct {
		ipa ipl.IPAResult
		ipl ipl.Result
	}
	var pairs []pair
	for _, bench := range []struct {
		name   string
		scheme core.Scheme
	}{
		{"tpcb", core.NewScheme(2, 4)},
		{"tpcc", core.NewScheme(2, 3)},
		{"tatp", core.NewScheme(2, 4)},
	} {
		o, err := Execute(Spec{
			Bench: bench.name, Scheme: bench.scheme, BufferPct: 0.25,
			Eager: true, Tx: p.tx(8000),
		})
		if err != nil {
			return nil, fmt.Errorf("table2 %s: %w", bench.name, err)
		}
		iplRes := ipl.NewSimulator(ipl.Config{}).Replay(o.Trace)
		// Size the IPA model by the distinct pages the trace touches
		// (append-only tables grow the footprint beyond the loaded DB).
		distinct := map[uint64]bool{}
		for _, e := range o.Trace.Events() {
			distinct[uint64(e.Page)] = true
		}
		// Claim 2: the IPA side may use the drive's unused space to
		// amortise GC; IPL merges are insensitive to it.
		ipaRes := ipl.NewIPAModel(ipl.IPAConfig{
			Scheme: bench.scheme, OverProvision: 0.5,
		}, len(distinct)).Replay(o.Trace)
		pairs = append(pairs, pair{ipaRes, iplRes})
	}
	t.AddRow("I/O Write Amplific.",
		fmtFloat(pairs[0].ipa.WriteAmplific), fmtFloat(pairs[0].ipl.WriteAmplific),
		fmtFloat(pairs[1].ipa.WriteAmplific), fmtFloat(pairs[1].ipl.WriteAmplific),
		fmtFloat(pairs[2].ipa.WriteAmplific), fmtFloat(pairs[2].ipl.WriteAmplific))
	t.AddRow("I/O Read Amplific.",
		fmtFloat(pairs[0].ipa.ReadAmplific), fmtFloat(pairs[0].ipl.ReadAmplific),
		fmtFloat(pairs[1].ipa.ReadAmplific), fmtFloat(pairs[1].ipl.ReadAmplific),
		fmtFloat(pairs[2].ipa.ReadAmplific), fmtFloat(pairs[2].ipl.ReadAmplific))
	t.AddRow("Erases",
		pairs[0].ipa.Erases, pairs[0].ipl.Erases,
		pairs[1].ipa.Erases, pairs[1].ipl.Erases,
		pairs[2].ipa.Erases, pairs[2].ipl.Erases)
	t.AddRow("Phys Reads",
		pairs[0].ipa.PhysReads, pairs[0].ipl.PhysReads,
		pairs[1].ipa.PhysReads, pairs[1].ipl.PhysReads,
		pairs[2].ipa.PhysReads, pairs[2].ipl.PhysReads)
	t.AddRow("Phys Writes",
		pairs[0].ipa.PhysWrites, pairs[0].ipl.PhysWrites,
		pairs[1].ipa.PhysWrites, pairs[1].ipl.PhysWrites,
		pairs[2].ipa.PhysWrites, pairs[2].ipl.PhysWrites)
	t.AddRow("Reserved space",
		pct(pairs[0].ipa.ReservedSpaceF), pct(pairs[0].ipl.ReservedSpaceF),
		pct(pairs[1].ipa.ReservedSpaceF), pct(pairs[1].ipl.ReservedSpaceF),
		pct(pairs[2].ipa.ReservedSpaceF), pct(pairs[2].ipl.ReservedSpaceF))
	t.Notes = append(t.Notes,
		"paper: IPA does 51-60% fewer reads, 23-62% fewer writes, 29-74% fewer erases; IPL reserves 6.25%, IPA ≤2%")
	return t, nil
}

// Table3 reproduces Table 3: [N×M] sensitivity for TPC-C — fraction of
// update I/Os performed as IPA, space overhead, and erase-per-host-write
// reduction vs the [0×0] baseline.
func Table3(p Params) (*Table, error) {
	t := &Table{
		ID:     "table3",
		Title:  "[N×M] sensitivity, TPC-C 75% buffer 4KB pages: IPA-fraction% / space% / Δerases-per-host-write%",
		Header: []string{"N\\M", "M=3", "M=6", "M=10", "M=15", "M=20"},
	}
	tx := p.tx(5000)
	base, err := Execute(Spec{Bench: "tpcc", Scheme: core.Scheme{}, BufferPct: 0.75, Eager: true, Tx: tx})
	if err != nil {
		return nil, err
	}
	baseEPW := base.Region.ErasesPerHostWrite()
	ms := []int{3, 6, 10, 15, 20}
	ns := []int{1, 2, 3, 4}
	if p.Quick {
		ms = []int{3, 6, 10}
		ns = []int{1, 2, 3}
		t.Header = []string{"N\\M", "M=3", "M=6", "M=10"}
	}
	for _, n := range ns {
		cells := []any{fmt.Sprintf("N=%d", n)}
		for _, m := range ms {
			o, err := Execute(Spec{
				Bench: "tpcc", Scheme: core.NewScheme(n, m), BufferPct: 0.75, Eager: true, Tx: tx,
			})
			if err != nil {
				return nil, fmt.Errorf("table3 [%d×%d]: %w", n, m, err)
			}
			cells = append(cells, fmt.Sprintf("%.0f%% / %.1f%% / %+.0f%%",
				100*o.Region.IPAFraction(),
				100*o.Spec.Scheme.SpaceOverhead(o.Spec.PageSize),
				rel(baseEPW, o.Region.ErasesPerHostWrite())))
		}
		t.AddRow(cells...)
	}
	t.Notes = append(t.Notes,
		"paper [2×3]: 46.1% IPA, 2.2% space, −43% erases; larger schemes raise IPA fraction and space cost")
	return t, nil
}

// Table4 reproduces Table 4: DBMS write-amplification reduction under
// [2×M] and [3×M] vs [0×0] at 75%/90% buffers.
func Table4(p Params) (*Table, error) {
	t := &Table{
		ID:     "table4",
		Title:  "Write-amplification reduction (×) vs [0×0]",
		Header: []string{"scheme", "TPC-B 75%", "TPC-B 90%", "TPC-C 75%", "TPC-C 90%", "LinkBench 75%", "LinkBench 90%"},
	}
	tx := p.tx(5000)
	type cfg struct {
		bench string
		m     int
	}
	cfgs := []cfg{{"tpcb", 4}, {"tpcc", 3}, {"linkbench", 125}}
	buffers := []float64{0.75, 0.90}
	// Baselines per bench/buffer.
	baseWA := map[string]float64{}
	for _, c := range cfgs {
		for _, b := range buffers {
			o, err := Execute(Spec{Bench: c.bench, Scheme: core.Scheme{}, BufferPct: b, Eager: true, Tx: tx})
			if err != nil {
				return nil, err
			}
			baseWA[fmt.Sprintf("%s-%v", c.bench, b)] = writeAmplification(o)
		}
	}
	for _, n := range []int{2, 3} {
		cells := []any{fmt.Sprintf("[%d×M]", n)}
		for _, c := range cfgs {
			for _, b := range buffers {
				o, err := Execute(Spec{
					Bench: c.bench, Scheme: core.NewScheme(n, c.m), BufferPct: b, Eager: true, Tx: tx,
				})
				if err != nil {
					return nil, err
				}
				wa := writeAmplification(o)
				base := baseWA[fmt.Sprintf("%s-%v", c.bench, b)]
				red := 0.0
				if wa > 0 {
					red = base / wa
				}
				cells = append(cells, fmt.Sprintf("%.2fx", red))
			}
		}
		// Reorder: cells currently bench-major; header is bench-major too.
		t.AddRow(cells...)
	}
	t.Notes = append(t.Notes, "paper: TPC-B 2.0x/2.8x, TPC-C 1.9x/2.5x, LinkBench 1.7x/1.8x for [2×M]/[3×M]")
	return t, nil
}

// Table5 reproduces Table 5: LinkBench space overhead and WA reduction
// across [N×M] and buffer sizes.
func Table5(p Params) (*Table, error) {
	t := &Table{
		ID:     "table5",
		Title:  "LinkBench: space overhead [%] and WA reduction (×) per [N×M] and buffer size",
		Header: []string{"buffer", "1x100", "1x125", "2x100", "2x125", "3x100", "3x125"},
	}
	tx := p.tx(4000)
	grid := []core.Scheme{
		core.NewScheme(1, 100), core.NewScheme(1, 125),
		core.NewScheme(2, 100), core.NewScheme(2, 125),
		core.NewScheme(3, 100), core.NewScheme(3, 125),
	}
	buffers := []float64{0.20, 0.50, 0.75, 0.90}
	if p.Quick {
		buffers = []float64{0.20, 0.75}
		grid = grid[:4]
		t.Header = t.Header[:5]
	}
	// Space overhead row (static property).
	space := []any{"space%"}
	for _, s := range grid {
		space = append(space, fmt.Sprintf("%.2f%%", 100*s.SpaceOverhead(8192)))
	}
	t.AddRow(space...)
	for _, b := range buffers {
		base, err := Execute(Spec{Bench: "linkbench", Scheme: core.Scheme{}, BufferPct: b, Eager: true, Tx: tx})
		if err != nil {
			return nil, err
		}
		bw := writeAmplification(base)
		cells := []any{pct(b)}
		for _, s := range grid {
			o, err := Execute(Spec{Bench: "linkbench", Scheme: s, BufferPct: b, Eager: true, Tx: tx})
			if err != nil {
				return nil, err
			}
			wa := writeAmplification(o)
			red := 0.0
			if wa > 0 {
				red = bw / wa
			}
			cells = append(cells, fmt.Sprintf("%.2fx", red))
		}
		t.AddRow(cells...)
	}
	t.Notes = append(t.Notes, "paper: reductions 1.35x-2.65x, larger with smaller buffers and bigger schemes; space 3.67-13.77%")
	return t, nil
}

// openSSDTable is the shared shape of Tables 6 and 8.
func openSSDTable(id, title, bench string, scheme core.Scheme, p Params) (*Table, error) {
	t := &Table{
		ID:    id,
		Title: title,
		Header: []string{"metric", "0×0 absolute",
			fmt.Sprintf("%v pSLC", scheme), "rel %",
			fmt.Sprintf("%v odd-MLC", scheme), "rel %"},
	}
	// The paper measures a fixed interval: faster configurations execute
	// more transactions and hence more host I/Os (Host Reads/Writes rise
	// together with throughput in Tables 6/8).
	dur := 12 * time.Second
	if p.Quick {
		dur = 3 * time.Second
	}
	base, err := Execute(Spec{
		Bench: bench, Testbed: OpenSSD, Scheme: core.Scheme{},
		BufferPct: 0.10, Eager: true, Duration: dur,
	})
	if err != nil {
		return nil, err
	}
	pslc, err := Execute(Spec{
		Bench: bench, Testbed: OpenSSD, Scheme: scheme, Mode: noftl.ModePSLC,
		BufferPct: 0.10, Eager: true, Duration: dur,
	})
	if err != nil {
		return nil, err
	}
	odd, err := Execute(Spec{
		Bench: bench, Testbed: OpenSSD, Scheme: scheme, Mode: noftl.ModeOddMLC,
		BufferPct: 0.10, Eager: true, Duration: dur,
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("OOP vs IPA", "-", oopVsIPA(pslc.Region.IPAFraction()), "",
		oopVsIPA(odd.Region.IPAFraction()), "")
	add := func(name string, f func(*Out) float64) {
		b, ps, od := f(base), f(pslc), f(odd)
		t.AddRow(name, fmtFloat(b), fmtFloat(ps), fmt.Sprintf("%+.0f", rel(b, ps)),
			fmtFloat(od), fmt.Sprintf("%+.0f", rel(b, od)))
	}
	add("Host Reads", func(o *Out) float64 { return float64(o.Region.HostReads) })
	add("Host Writes", func(o *Out) float64 { return float64(o.Region.HostWrites()) })
	add("GC Page Migrations", func(o *Out) float64 { return float64(o.Region.GCPageMigrations) })
	add("GC Erases", func(o *Out) float64 { return float64(o.Region.GCErases) })
	add("Migrations/HostWrite", func(o *Out) float64 { return o.Region.MigrationsPerHostWrite() })
	add("Erases/HostWrite", func(o *Out) float64 { return o.Region.ErasesPerHostWrite() })
	add("Tx Throughput", func(o *Out) float64 { return o.Results.Throughput })
	return t, nil
}

// Table6 reproduces Table 6: TPC-B on the OpenSSD profile, [2×4] in pSLC
// and odd-MLC modes vs the [0×0] baseline.
func Table6(p Params) (*Table, error) {
	t, err := openSSDTable("table6",
		"TPC-B on OpenSSD profile: [0×0] vs [2×4] pSLC / odd-MLC", "tpcb", core.NewScheme(2, 4), p)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"paper: pSLC −75% migrations, −54% erases, +48% throughput; odd-MLC −48%/−51%/+22%")
	return t, nil
}

// Table8 reproduces Table 8: TPC-C on the OpenSSD profile with [2×3].
func Table8(p Params) (*Table, error) {
	t, err := openSSDTable("table8",
		"TPC-C on OpenSSD profile: [0×0] vs [2×3] pSLC / odd-MLC", "tpcc", core.NewScheme(2, 3), p)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"paper: pSLC −81% migrations, −60% erases, +46% throughput; odd-MLC −45%/−47%/+11%")
	return t, nil
}

// Table7 reproduces Table 7: TPC-B on the emulator, buffers 10%/20%,
// [2×4] and [3×4] relative to [0×0].
func Table7(p Params) (*Table, error) {
	t := &Table{
		ID:     "table7",
		Title:  "TPC-B on emulator: [0×0] vs [2×4] and [3×4] (buffers 10%, 20%)",
		Header: []string{"metric", "10% 0×0", "10% 2×4 rel%", "10% 3×4 rel%", "20% 0×0", "20% 2×4 rel%", "20% 3×4 rel%"},
	}
	dur := 4 * time.Second
	if p.Quick {
		dur = 1 * time.Second
	}
	type key struct {
		buf    float64
		scheme core.Scheme
	}
	outs := map[key]*Out{}
	for _, b := range []float64{0.10, 0.20} {
		for _, s := range []core.Scheme{{}, core.NewScheme(2, 4), core.NewScheme(3, 4)} {
			o, err := Execute(Spec{Bench: "tpcb", Scheme: s, BufferPct: b, Eager: true, Duration: dur})
			if err != nil {
				return nil, err
			}
			outs[key{b, s}] = o
		}
	}
	t.AddRow("OOP vs IPA", "-",
		oopVsIPA(outs[key{0.10, core.NewScheme(2, 4)}].Region.IPAFraction()),
		oopVsIPA(outs[key{0.10, core.NewScheme(3, 4)}].Region.IPAFraction()),
		"-",
		oopVsIPA(outs[key{0.20, core.NewScheme(2, 4)}].Region.IPAFraction()),
		oopVsIPA(outs[key{0.20, core.NewScheme(3, 4)}].Region.IPAFraction()))
	add := func(name string, f func(*Out) float64) {
		var cells []any
		cells = append(cells, name)
		for _, b := range []float64{0.10, 0.20} {
			base := f(outs[key{b, core.Scheme{}}])
			cells = append(cells, fmtFloat(base))
			for _, s := range []core.Scheme{core.NewScheme(2, 4), core.NewScheme(3, 4)} {
				cells = append(cells, fmt.Sprintf("%+.0f", rel(base, f(outs[key{b, s}]))))
			}
		}
		t.AddRow(cells...)
	}
	add("Host Reads", func(o *Out) float64 { return float64(o.Region.HostReads) })
	add("Host Writes", func(o *Out) float64 { return float64(o.Region.HostWrites()) })
	add("GC Page Migrations", func(o *Out) float64 { return float64(o.Region.GCPageMigrations) })
	add("GC Erases", func(o *Out) float64 { return float64(o.Region.GCErases) })
	add("Migrations/HostWrite", func(o *Out) float64 { return o.Region.MigrationsPerHostWrite() })
	add("Erases/HostWrite", func(o *Out) float64 { return o.Region.ErasesPerHostWrite() })
	add("READ I/O [µs]", func(o *Out) float64 { return float64(o.Store.FetchLatency.Mean().Microseconds()) })
	add("WRITE I/O [µs]", func(o *Out) float64 { return float64(o.Store.FlushLatency.Mean().Microseconds()) })
	add("Tx Throughput", func(o *Out) float64 { return o.Results.Throughput })
	t.Notes = append(t.Notes,
		"paper: −48..−58% migrations, −55..−64% erases, +31..+44% throughput, −40..−52% read latency")
	return t, nil
}

// bufferSweep is the shared machinery of Tables 9 and 10.
func bufferSweep(id, title string, eager bool, schemeFor func(buf float64) core.Scheme, p Params) (*Table, error) {
	buffers := []float64{0.10, 0.20, 0.50, 0.75, 0.90}
	if p.Quick {
		buffers = []float64{0.10, 0.50, 0.90}
	}
	t := &Table{ID: id, Title: title}
	t.Header = []string{"metric"}
	for _, b := range buffers {
		t.Header = append(t.Header, fmt.Sprintf("%s 0×0", pct(b)), "rel%")
	}
	tx := p.tx(6000)
	var bases, ipas []*Out
	for _, b := range buffers {
		base, err := Execute(Spec{Bench: "tpcc", Scheme: core.Scheme{}, BufferPct: b, Eager: eager, Tx: tx})
		if err != nil {
			return nil, err
		}
		o, err := Execute(Spec{Bench: "tpcc", Scheme: schemeFor(b), BufferPct: b, Eager: eager, Tx: tx})
		if err != nil {
			return nil, err
		}
		bases, ipas = append(bases, base), append(ipas, o)
	}
	{
		cells := []any{"OOP vs IPA"}
		for i := range buffers {
			cells = append(cells, "-", oopVsIPA(ipas[i].Region.IPAFraction()))
		}
		t.AddRow(cells...)
	}
	add := func(name string, f func(*Out) float64) {
		cells := []any{name}
		for i := range buffers {
			b := f(bases[i])
			cells = append(cells, fmtFloat(b), fmt.Sprintf("%+.1f", rel(b, f(ipas[i]))))
		}
		t.AddRow(cells...)
	}
	add("Host Reads", func(o *Out) float64 { return float64(o.Region.HostReads) })
	add("Host Writes", func(o *Out) float64 { return float64(o.Region.HostWrites()) })
	add("GC Page Migrations", func(o *Out) float64 { return float64(o.Region.GCPageMigrations) })
	add("GC Erases", func(o *Out) float64 { return float64(o.Region.GCErases) })
	add("Migrations/HostWrite", func(o *Out) float64 { return o.Region.MigrationsPerHostWrite() })
	add("Erases/HostWrite", func(o *Out) float64 { return o.Region.ErasesPerHostWrite() })
	add("READ I/O [µs]", func(o *Out) float64 { return float64(o.Store.FetchLatency.Mean().Microseconds()) })
	add("WRITE I/O [µs]", func(o *Out) float64 { return float64(o.Store.FlushLatency.Mean().Microseconds()) })
	add("Tx Throughput", func(o *Out) float64 { return o.Results.Throughput })
	return t, nil
}

// Table9 reproduces Table 9: TPC-C buffer sweep with eager eviction,
// [0×0] vs [2×3].
func Table9(p Params) (*Table, error) {
	t, err := bufferSweep("table9",
		"TPC-C buffer sweep (eager eviction): [0×0] vs [2×3]",
		true, func(float64) core.Scheme { return core.NewScheme(2, 3) }, p)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"paper: GC reduction 29-49% across buffers; throughput gain shrinks from +15% (10%) to +0.2% (90%)")
	return t, nil
}

// Table10 reproduces Table 10: TPC-C sweep with non-eager eviction,
// larger M for the update-accumulation effect.
func Table10(p Params) (*Table, error) {
	t, err := bufferSweep("table10",
		"TPC-C buffer sweep (non-eager eviction): [0×0] vs [2×10..2×40]",
		false, func(buf float64) core.Scheme {
			switch {
			case buf <= 0.20:
				return core.NewScheme(2, 10)
			case buf <= 0.50:
				return core.NewScheme(2, 30)
			default:
				return core.NewScheme(2, 40)
			}
		}, p)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"paper: with non-eager eviction updates accumulate, needing M=10..40; ≥33% of writes remain appends at 90% buffer")
	return t, nil
}

// Table11 reproduces Table 11: TPC-C update-size percentiles under
// non-eager eviction per buffer size.
func Table11(p Params) (*Table, error) {
	buffers := []float64{0.10, 0.20, 0.50, 0.75, 0.90}
	if p.Quick {
		buffers = []float64{0.10, 0.50, 0.90}
	}
	t := &Table{
		ID:     "table11",
		Title:  "TPC-C update-sizes (non-eager eviction), percentile of updates ≤ N bytes",
		Header: []string{"changed bytes ≤"},
	}
	for _, b := range buffers {
		t.Header = append(t.Header, "buffer "+pct(b))
	}
	tx := p.tx(6000)
	var outs []*Out
	for _, b := range buffers {
		o, err := Execute(Spec{Bench: "tpcc", Scheme: core.NewScheme(2, 40), BufferPct: b, Eager: false, Tx: tx})
		if err != nil {
			return nil, err
		}
		outs = append(outs, o)
	}
	for _, th := range []int{3, 6, 10, 30, 40} {
		cells := []any{th}
		for _, o := range outs {
			cells = append(cells, fmt.Sprintf("%.0f", o.Store.NetBytes.PercentileLE(th)))
		}
		t.AddRow(cells...)
	}
	t.Notes = append(t.Notes,
		"paper: ≤6B at 80th pct for 10% buffer but only 4-5th pct at 50%+ buffers (update accumulation)")
	return t, nil
}
