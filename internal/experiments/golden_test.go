package experiments

import (
	"crypto/sha256"
	"fmt"
	"testing"
)

// TestGoldenDeterminism pins the rendered output of the two tables most
// sensitive to the flush path (update-size percentiles and the TPC-C
// buffer sweep) to their hashes from before the pluggable-scheme
// redesign. The default STORAGE=ipa path must stay byte-identical: a
// changed hash means the refactor altered eviction order, flush
// decisions or GC behaviour, not just plumbing.
func TestGoldenDeterminism(t *testing.T) {
	golden := []struct {
		id   string
		fn   func(Params) (*Table, error)
		want string
	}{
		{"table1", Table1, "6e09482a15d22293122826b5ad98f169b5472fd008df1022585efa5fef3172c2"},
		{"table9", Table9, "2118d6ff8cede64a690ef05194fb2e4b5b635c0cac7d44cce3d88df43ca820ab"},
	}
	for _, g := range golden {
		g := g
		t.Run(g.id, func(t *testing.T) {
			tbl, err := g.fn(Params{Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			got := fmt.Sprintf("%x", sha256.Sum256([]byte(tbl.Render())))
			if got != g.want {
				t.Errorf("%s render hash = %s, want %s (default-scheme output changed)", g.id, got, g.want)
			}
		})
	}
}
