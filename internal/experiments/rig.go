// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 8). Each experiment builds the full stack — flash
// array, NoFTL regions, storage engine, workload driver — runs the
// measured phase, and prints the same rows/series the paper reports.
//
// Absolute numbers differ from the paper (our substrate is a simulator,
// not the authors' OpenSSD board or Xeon testbed, and scales are reduced
// to keep runs fast); the experiments reproduce the paper's *shapes*:
// who wins, by roughly what factor, and where the effects disappear.
package experiments

import (
	"fmt"
	"time"

	"ipa/internal/core"
	"ipa/internal/engine"
	"ipa/internal/flash"
	"ipa/internal/noftl"
	"ipa/internal/sim"
	"ipa/internal/trace"
	"ipa/internal/workload"
)

// Testbed selects the hardware profile of Sec. 8.1.
type Testbed int

const (
	// Emulator models the real-time flash emulator: 16 SLC chips, full
	// parallelism, 10% over-provisioning, page-level mapping.
	Emulator Testbed = iota
	// OpenSSD models the Jasmine board: MLC flash, effectively one
	// outstanding I/O (no NCQ), tiny 1.5% buffer host.
	OpenSSD
)

// Spec describes one measured run.
type Spec struct {
	Bench     string // "tpcb" | "tpcc" | "tatp" | "linkbench"
	Testbed   Testbed
	Mode      noftl.IPAMode // derived from Scheme/Testbed when zero and scheme enabled
	Scheme    core.Scheme
	BufferPct float64 // buffer size as fraction of loaded DB pages
	Eager     bool    // eager eviction + eager log reclamation
	PageSize  int     // default 4096 (8192 for LinkBench in the paper)
	Scale     int     // workload scale knob (≥1)
	Tx        int     // measured transactions (ignored when Duration > 0)
	// Duration switches to the paper's measurement mode: run for a fixed
	// simulated interval so faster configurations execute more
	// transactions (Tables 6-10 report absolute host I/O this way).
	Duration  time.Duration
	Terminals int
	Seed      int64
	UseECC    bool
	// GCPolicy selects the region's garbage-collection mode. The zero
	// value (noftl.GCForeground) keeps the paper's deterministic inline
	// collection; GCBackground is for interference studies only and makes
	// runs schedule-dependent.
	GCPolicy noftl.GCPolicy
	// Storage selects the region's write-reduction scheme. The zero value
	// (noftl.StorageIPA) is the paper's path; StoragePDL and StorageOOP
	// force a plain layout (no delta area, IPA off).
	Storage noftl.Storage
	// GCVictim selects the GC victim policy (greedy by default).
	GCVictim noftl.GCVictim
}

func (s Spec) withDefaults() Spec {
	if s.PageSize == 0 {
		if s.Bench == "linkbench" {
			s.PageSize = 8192
		} else {
			s.PageSize = 4096
		}
	}
	if s.Scale < 1 {
		s.Scale = 1
	}
	if s.Tx == 0 {
		s.Tx = 4000
	}
	if s.Terminals == 0 {
		s.Terminals = 4
	}
	if s.BufferPct == 0 {
		s.BufferPct = 0.5
	}
	if s.Seed == 0 {
		s.Seed = 42
	}
	if s.Storage != noftl.StorageIPA {
		// PDL and OOP regions write raw page images: no delta layout, IPA
		// off (see noftl.RegionConfig.Validate).
		s.Scheme = core.Scheme{}
		s.Mode = noftl.ModeNone
		return s
	}
	if s.Mode == noftl.ModeNone && !s.Scheme.Disabled() {
		if s.Testbed == OpenSSD {
			s.Mode = noftl.ModePSLC
		} else {
			s.Mode = noftl.ModeSLC
		}
	}
	if s.Scheme.Disabled() {
		s.Mode = noftl.ModeNone
	}
	return s
}

// Out carries everything an experiment table needs from one run. The
// per-layer stats are views into one engine.Stats snapshot taken at the
// end of the measured phase.
type Out struct {
	Spec    Spec
	Results workload.Results
	Engine  engine.Stats
	Region  noftl.Stats
	Store   engine.StoreStats
	Flash   flash.Stats
	DBPages int
	Frames  int
	Trace   *trace.Trace
	DB      *engine.DB
}

// estimatePages guesses the loaded database size in pages to size the
// flash array (generous margins; growth from History/Order appends is
// covered by the ×3 capacity factor in Execute).
func estimatePages(s Spec) int {
	ps := s.PageSize
	var bytes int
	switch s.Bench {
	case "tpcb":
		accounts := 2000 * s.Scale
		bytes = accounts*120 + accounts*20 + 4096
	case "tpcc":
		items := 2400 * s.Scale
		cust := 100 * 10 * s.Scale
		bytes = items*220 + cust*320 + 8192
	case "tatp":
		subs := 4000 * s.Scale
		bytes = subs*110 + 4096
	case "linkbench":
		nodes := 1500 * s.Scale
		bytes = nodes*150 + nodes*4*60 + 8192
	default:
		bytes = 1 << 20
	}
	return bytes/ps + 64
}

// Execute builds the stack, loads the workload, resizes the buffer to
// the requested percentage, runs the measured phase and collects stats.
func Execute(s Spec) (*Out, error) {
	s = s.withDefaults()
	pages := estimatePages(s)
	// Measured-phase appends (History, Orders) plus delta-area overhead
	// plus GC headroom.
	capPages := pages*3 + s.Tx/4
	if s.Mode == noftl.ModePSLC {
		capPages *= 2 // only LSB pages usable
	}

	cell := flash.SLC
	timing := flash.SLCTiming()
	chips := 16
	if s.Testbed == OpenSSD {
		cell = flash.MLC
		timing = flash.MLCTiming()
		// The Jasmine board executes effectively one host I/O at a time
		// (Appendix D, point 1): a single queueing resource.
		chips = 1
	}
	pagesPerBlock := 64
	blocksPerChip := capPages/(chips*pagesPerBlock) + 4

	g := flash.Geometry{
		Chips: chips, BlocksPerChip: blocksPerChip, PagesPerBlock: pagesPerBlock,
		PageSize: s.PageSize, OOBSize: s.PageSize / 16, Cell: cell,
	}
	tl := sim.NewTimeline(chips)
	maxApp := 8
	if n := s.Scheme.N; n > maxApp {
		maxApp = n
	}
	if s.Storage == noftl.StoragePDL && maxApp < 64 {
		// PDL packs many small differential records per log page; the
		// partial-program budget bounds records per page, not correctness.
		maxApp = 64
	}
	arr, err := flash.New(flash.Config{
		Geometry: g, Timing: timing, StrictProgramOrder: true,
		MaxAppends: maxApp, Seed: s.Seed,
	}, tl)
	if err != nil {
		return nil, err
	}
	dev := noftl.Open(arr)
	if _, err := dev.CreateRegion(noftl.RegionConfig{
		Name: "data", Mode: s.Mode, Scheme: s.Scheme,
		BlocksPerChip: blocksPerChip, OverProvision: 0.10,
		GCPolicy: s.GCPolicy, Storage: s.Storage, GCVictim: s.GCVictim,
	}); err != nil {
		return nil, err
	}
	defer dev.Close()

	opts := engine.Options{
		PageSize: s.PageSize, BufferFrames: pages + 64,
		Timeline: tl, UseECC: s.UseECC,
		// PoolShards stays 1: the paper's update-size and buffer-sweep
		// tables (1/9/10/11) depend on the deterministic global CLOCK
		// eviction order, which only the single-shard pool guarantees.
		PoolShards: 1,
	}
	if s.Eager {
		opts.DirtyThreshold = 0.125
		opts.LogCapacity = 1 << 22
		opts.LogReclaimThreshold = 0.35
	} else {
		opts.DirtyThreshold = 0.75
		opts.LogCapacity = 0 // unbounded: no eager log reclamation
	}
	db, err := engine.New(dev, opts)
	if err != nil {
		return nil, err
	}

	var wl workload.Workload
	switch s.Bench {
	case "tpcb":
		wl = workload.NewTPCB(db, "data", s.Scale, 2000)
	case "tpcc":
		wl = workload.NewTPCC(db, "data", s.Scale, 2400, 100)
	case "tatp":
		wl = workload.NewTATP(db, "data", 4000*s.Scale)
	case "linkbench":
		wl = workload.NewLinkBench(db, "data", 1500*s.Scale, 4)
	default:
		return nil, fmt.Errorf("experiments: unknown bench %q", s.Bench)
	}

	loader := tl.NewWorker()
	if err := wl.Load(loader); err != nil {
		return nil, fmt.Errorf("experiments: load %s: %w", s.Bench, err)
	}
	dbPages := db.Store("data").Region().MappedPages()
	frames := int(s.BufferPct * float64(dbPages))
	if frames < 16 {
		frames = 16
	}
	if err := db.ResizePool(loader, frames); err != nil {
		return nil, err
	}

	// Reset counters after load; attach the trace recorder.
	db.Store("data").Region().ResetStats()
	arr.ResetStats()
	st := db.Store("data")
	st.Stats().NetBytes.Reset()
	st.Stats().GrossBytes.Reset()
	tr := trace.New()
	st.SetTraceSink(tr)

	terminals := make([]*sim.Worker, s.Terminals)
	for i := range terminals {
		terminals[i] = tl.NewWorker()
		terminals[i].SetNow(loader.Now())
	}
	var res workload.Results
	if s.Duration > 0 {
		res, err = workload.RunForDuration(wl, terminals, s.Duration, s.Seed)
	} else {
		res, err = workload.Run(wl, terminals, s.Tx, s.Seed)
	}
	if err != nil {
		return nil, err
	}
	// Final flush so trailing updates are accounted (and traced).
	if err := db.FlushAll(terminals[0]); err != nil {
		return nil, err
	}
	st.SetTraceSink(nil)

	stats, err := db.Stats()
	if err != nil {
		return nil, err
	}
	return &Out{
		Spec:    s,
		Results: res,
		Engine:  stats,
		Region:  stats.Regions["data"],
		Store:   stats.Stores["data"],
		Flash:   stats.Flash,
		DBPages: dbPages,
		Frames:  frames,
		Trace:   tr,
		DB:      db,
	}, nil
}

// rel returns the relative change in percent from base to v
// (negative = reduction).
func rel(base, v float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (v - base) / base
}

// grossWritten is the paper's Gross_Written_Data: page-size bytes per
// out-of-place write plus record-size bytes per delta write.
func grossWritten(o *Out) float64 {
	rs := o.Spec.Scheme.RecordSize()
	if rs == 0 {
		rs = o.Spec.PageSize
	}
	return float64(o.Region.OutOfPlaceWrites)*float64(o.Spec.PageSize) +
		float64(o.Region.DeltaWrites)*float64(rs)
}

// netChanged is the paper's Net_Changed_Data: the sum of changed bytes
// across update flushes.
func netChanged(o *Out) float64 {
	h := o.Store.NetBytes
	return h.Mean() * float64(h.Count())
}

// writeAmplification is Gross_Written / Net_Changed.
func writeAmplification(o *Out) float64 {
	n := netChanged(o)
	if n == 0 {
		return 0
	}
	return grossWritten(o) / n
}
