package experiments

import (
	"encoding/json"
	"fmt"

	"ipa/internal/core"
	"ipa/internal/engine"
	"ipa/internal/flash"
	"ipa/internal/noftl"
	"ipa/internal/sim"
	"ipa/internal/workload"
)

// This file is the MVCC snapshot-read evaluation: TPC-B writers with a
// full-table analytical balance scan mixed in, run with scans disabled
// (the writer baseline), with locking reads (the pre-MVCC no-wait path,
// where a long scan races every writer and one busy tuple aborts the
// whole read) and with MVCC snapshot reads (lock-free, abort-free),
// under uniform and Zipfian account skew at 16 concurrent terminals.
// The two headline numbers: read-path aborts retired by snapshots, and
// writer latency under concurrent scans staying at the scan-free
// baseline.

// HTAPRow is one (distribution, scan mode) cell at 16 workers.
type HTAPRow struct {
	Dist    string `json:"dist"`  // uniform | zipfian
	Scans   string `json:"scans"` // none | locking | snapshot
	Workers int    `json:"workers"`
	Tx      int    `json:"tx"` // requested operations (commits + aborts)

	Committed uint64 `json:"committed"`
	// Writer latency is simulated time over committed Account_Update
	// transactions.
	WriterNsPerOp float64 `json:"writer_ns_per_op"`
	WriterP99Ns   float64 `json:"writer_p99_ns"`
	// WriterAborts counts Account_Update transactions that lost the
	// no-wait lock race; ScanAborts counts BalanceScan read transactions
	// that did (the read-path abort class MVCC retires).
	WriterAborts uint64  `json:"writer_aborts"`
	ScanAborts   uint64  `json:"scan_aborts"`
	ScansOK      uint64  `json:"scans_ok"`
	ScanNsPerOp  float64 `json:"scan_ns_per_op,omitempty"`

	// Version-store counters after the run (MVCC is enabled for every
	// cell; only snapshot scans populate the store with readers).
	SnapshotScans  uint64 `json:"snapshot_scans"`
	VersionsPruned uint64 `json:"versions_pruned"`
	VersionsLive   int64  `json:"versions_live"`
}

// HTAPSummary states the acceptance headlines, computed per
// distribution from the matrix rows.
type HTAPSummary struct {
	Dist string `json:"dist"`
	// ScanAbortReductionPct is the drop in read-path aborts going from
	// locking to snapshot scans (100 = all retired).
	ScanAbortReductionPct float64 `json:"scan_abort_reduction_pct"`
	// WriterP99VsBaselinePct is snapshot-mode writer p99 relative to the
	// scan-free baseline (0 = identical, positive = slower).
	WriterP99VsBaselinePct float64 `json:"writer_p99_vs_baseline_pct"`
}

// htapDB builds the 16-chip concurrent stack with MVCC enabled.
func htapDB() (*engine.DB, *sim.Timeline, error) {
	g := flash.Geometry{
		Chips: 16, BlocksPerChip: 64, PagesPerBlock: 32,
		PageSize: 1024, OOBSize: 64, Cell: flash.SLC,
	}
	tl := sim.NewTimeline(g.Chips)
	arr, err := flash.New(flash.Config{
		Geometry: g, Timing: flash.SLCTiming(), StrictProgramOrder: true, MaxAppends: 8,
	}, tl)
	if err != nil {
		return nil, nil, err
	}
	dev := noftl.Open(arr)
	if _, err := dev.CreateRegion(noftl.RegionConfig{
		Name: "main", Mode: noftl.ModeSLC, Scheme: core.NewScheme(2, 4),
		BlocksPerChip: 64, OverProvision: 0.15,
	}); err != nil {
		return nil, nil, err
	}
	db, err := engine.New(dev, engine.Options{
		PageSize: 1024, BufferFrames: 2048, Timeline: tl,
		LogCapacity: 1 << 20, LogReclaimThreshold: 0.4,
		PoolShards: 8, MVCC: true,
	})
	if err != nil {
		return nil, nil, err
	}
	return db, tl, nil
}

// RunHTAPBench executes the matrix: {uniform, zipfian} × {none,
// locking, snapshot} scans at 16 workers.
func RunHTAPBench(p Params) ([]HTAPRow, error) {
	// Lock conflicts are real-time races between terminal goroutines:
	// the volume has to be large enough that every terminal's quota far
	// exceeds a scheduler slice, or short runs finish with terminals
	// never interleaving mid-transaction (especially at GOMAXPROCS=1)
	// and the no-wait path shows no contention at all.
	const workers = 16
	total := p.tx(160_000)
	var rows []HTAPRow
	for _, dist := range []struct {
		name string
		zipf bool
	}{{"uniform", false}, {"zipfian", true}} {
		for _, mode := range []workload.ScanMode{
			workload.ScanModeNone, workload.ScanModeLocking, workload.ScanModeSnapshot,
		} {
			db, tl, err := htapDB()
			if err != nil {
				return nil, err
			}
			h := workload.NewHTAP(db, "main", 4, 500)
			h.Mode = mode
			h.ScanEvery = 200
			h.Zipfian = dist.zipf
			loader := tl.NewWorker()
			if err := h.Load(loader); err != nil {
				return nil, fmt.Errorf("htap %s/%s: load: %w", dist.name, mode, err)
			}
			terminals := make([]*sim.Worker, workers)
			for i := range terminals {
				terminals[i] = tl.NewWorker()
				terminals[i].SetNow(loader.Now())
			}
			res, err := workload.RunParallel(h, terminals, total, 42)
			if err != nil {
				return nil, fmt.Errorf("htap %s/%s: %w", dist.name, mode, err)
			}
			st, err := db.Stats()
			if err != nil {
				return nil, err
			}
			row := HTAPRow{
				Dist: dist.name, Scans: mode.String(),
				Workers: workers, Tx: total,
				Committed:      res.Transactions,
				WriterAborts:   res.AbortedPerType["Account_Update"],
				ScanAborts:     res.AbortedPerType["BalanceScan"],
				ScansOK:        h.ScansRun.Load(),
				SnapshotScans:  st.MVCC.SnapshotScans,
				VersionsPruned: st.MVCC.VersionsPruned,
				VersionsLive:   st.MVCC.VersionsLive,
			}
			if l := res.PerType["Account_Update"]; l != nil {
				row.WriterNsPerOp = float64(l.Mean().Nanoseconds())
				row.WriterP99Ns = float64(l.Quantile(0.99).Nanoseconds())
			}
			if l := res.PerType["BalanceScan"]; l != nil {
				row.ScanNsPerOp = float64(l.Mean().Nanoseconds())
			}
			rows = append(rows, row)
			if err := db.Close(); err != nil {
				return nil, err
			}
		}
	}
	return rows, nil
}

// HTAPSummaries derives the per-distribution acceptance headlines.
func HTAPSummaries(rows []HTAPRow) []HTAPSummary {
	byKey := map[string]HTAPRow{}
	for _, r := range rows {
		byKey[r.Dist+"/"+r.Scans] = r
	}
	var out []HTAPSummary
	for _, dist := range []string{"uniform", "zipfian"} {
		base, lock, snap := byKey[dist+"/none"], byKey[dist+"/locking"], byKey[dist+"/snapshot"]
		s := HTAPSummary{Dist: dist}
		if lock.ScanAborts > 0 {
			s.ScanAbortReductionPct = 100 * (1 - float64(snap.ScanAborts)/float64(lock.ScanAborts))
		} else if snap.ScanAborts == 0 {
			s.ScanAbortReductionPct = 100
		}
		if base.WriterP99Ns > 0 {
			s.WriterP99VsBaselinePct = 100 * (snap.WriterP99Ns - base.WriterP99Ns) / base.WriterP99Ns
		}
		out = append(out, s)
	}
	return out
}

// HTAP renders the matrix as a report table (experiment id "htap").
func HTAP(p Params) (*Table, error) {
	rows, err := RunHTAPBench(p)
	if err != nil {
		return nil, err
	}
	return HTAPTable(rows), nil
}

// HTAPTable renders already-computed rows.
func HTAPTable(rows []HTAPRow) *Table {
	t := &Table{
		ID:     "htap",
		Title:  "HTAP: TPC-B writers + full-table balance scans, locking vs MVCC snapshot reads (16 workers)",
		Header: []string{"dist", "scans", "committed", "writer ns/op", "writer p99", "writer aborts", "scan aborts", "scans ok"},
	}
	for _, r := range rows {
		t.AddRow(r.Dist, r.Scans,
			fmt.Sprintf("%d", r.Committed),
			fmt.Sprintf("%.0f", r.WriterNsPerOp),
			fmt.Sprintf("%.0f", r.WriterP99Ns),
			fmt.Sprintf("%d", r.WriterAborts),
			fmt.Sprintf("%d", r.ScanAborts),
			fmt.Sprintf("%d", r.ScansOK))
	}
	for _, s := range HTAPSummaries(rows) {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"%s: snapshot scans retire %.0f%% of read-path aborts; writer p99 %+.1f%% vs scan-free baseline",
			s.Dist, s.ScanAbortReductionPct, s.WriterP99VsBaselinePct))
	}
	t.Notes = append(t.Notes,
		"every completed scan verifies the TPC-B balance-sum invariant at its read point (snapshot LSN for MVCC)",
		"ns/op is simulated time over committed transactions; aborts are no-wait lock-race losses")
	return t
}

// HTAPJSON marshals rows and summaries for BENCH_PR8.json.
func HTAPJSON(p Params, rows []HTAPRow) ([]byte, error) {
	return json.MarshalIndent(struct {
		Experiment string        `json:"experiment"`
		Quick      bool          `json:"quick"`
		Rows       []HTAPRow     `json:"rows"`
		Summary    []HTAPSummary `json:"summary"`
	}{Experiment: "htap", Quick: p.Quick, Rows: rows, Summary: HTAPSummaries(rows)}, "", "  ")
}
