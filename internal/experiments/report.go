package experiments

import (
	"fmt"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row, stringifying the cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmtFloat(v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case uint64:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func fmtFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render prints the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// pct renders a fraction as a percent string.
func pct(f float64) string { return fmt.Sprintf("%.0f%%", 100*f) }

// oopVsIPA renders the paper's "Out-of-Place Writes vs. In-Place
// Appends" ratio row, e.g. "33/67".
func oopVsIPA(ipaFraction float64) string {
	ipa := int(100*ipaFraction + 0.5)
	return fmt.Sprintf("%d/%d", 100-ipa, ipa)
}
