package experiments

import (
	"strings"
	"testing"

	"ipa/internal/core"
)

var quick = Params{Quick: true}

func TestExecuteBasic(t *testing.T) {
	o, err := Execute(Spec{Bench: "tpcb", Scheme: core.NewScheme(2, 4), BufferPct: 0.5, Eager: true, Tx: 500})
	if err != nil {
		t.Fatal(err)
	}
	if o.Results.Transactions != 500 {
		t.Errorf("tx = %d", o.Results.Transactions)
	}
	if o.Results.Aborted != 0 {
		t.Errorf("aborted = %d", o.Results.Aborted)
	}
	if o.Region.HostWrites() == 0 || o.Region.DeltaWrites == 0 {
		t.Errorf("region stats = %+v", o.Region)
	}
	if o.Trace.Len() == 0 {
		t.Error("empty trace")
	}
	if o.DBPages == 0 || o.Frames == 0 {
		t.Error("sizing not reported")
	}
}

func TestExecuteUnknownBench(t *testing.T) {
	if _, err := Execute(Spec{Bench: "nope"}); err == nil {
		t.Error("unknown bench accepted")
	}
}

func TestExecuteOpenSSDModes(t *testing.T) {
	for _, mode := range []Testbed{OpenSSD} {
		o, err := Execute(Spec{Bench: "tpcb", Testbed: mode, Scheme: core.NewScheme(2, 4), BufferPct: 0.10, Eager: true, Tx: 400})
		if err != nil {
			t.Fatal(err)
		}
		if o.Region.DeltaWrites == 0 {
			t.Error("no appends on OpenSSD profile")
		}
	}
}

func TestHeadlineClaimErasesDrop(t *testing.T) {
	// The paper's core claim, via the real stack: [2×4] cuts erases per
	// host write substantially vs [0×0] on TPC-B.
	base, err := Execute(Spec{Bench: "tpcb", Scheme: core.Scheme{}, BufferPct: 0.20, Eager: true, Tx: 2500})
	if err != nil {
		t.Fatal(err)
	}
	o, err := Execute(Spec{Bench: "tpcb", Scheme: core.NewScheme(2, 4), BufferPct: 0.20, Eager: true, Tx: 2500})
	if err != nil {
		t.Fatal(err)
	}
	be, ie := base.Region.ErasesPerHostWrite(), o.Region.ErasesPerHostWrite()
	if be == 0 {
		t.Skip("baseline run too small to trigger GC")
	}
	if ie > 0.8*be {
		t.Errorf("erases/host-write: IPA %.4f not clearly below baseline %.4f", ie, be)
	}
	// And the write-amplification reduction is ≥ ~1.5x.
	bw, iw := writeAmplification(base), writeAmplification(o)
	if iw <= 0 || bw/iw < 1.3 {
		t.Errorf("WA reduction = %.2fx (base %.1f, ipa %.1f)", bw/iw, bw, iw)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Header: []string{"a", "b"}}
	tab.AddRow("r1", 1.5)
	tab.AddRow(42, uint64(7))
	tab.Notes = append(tab.Notes, "a note")
	out := tab.Render()
	for _, want := range []string{"demo", "r1", "1.500", "42", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestOopVsIPA(t *testing.T) {
	if got := oopVsIPA(0.67); got != "33/67" {
		t.Errorf("oopVsIPA = %q", got)
	}
	if got := oopVsIPA(0); got != "100/0" {
		t.Errorf("oopVsIPA(0) = %q", got)
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("zzz", quick); err == nil {
		t.Error("unknown id accepted")
	}
}

// Smoke-run each experiment in quick mode; shapes are asserted on the
// cheap ones, the rest must simply complete and render.
func TestTable1Quick(t *testing.T) {
	tab, err := Table1(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Errorf("rows = %d", len(tab.Rows))
	}
	t.Log("\n" + tab.Render())
}

func TestTable2Quick(t *testing.T) {
	tab, err := Table2(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.Render())
}

func TestTable3Quick(t *testing.T) {
	tab, err := Table3(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.Render())
}

func TestTable4Quick(t *testing.T) {
	tab, err := Table4(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.Render())
}

func TestTable5Quick(t *testing.T) {
	tab, err := Table5(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.Render())
}

func TestTable6Quick(t *testing.T) {
	tab, err := Table6(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.Render())
}

func TestTable7Quick(t *testing.T) {
	tab, err := Table7(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.Render())
}

func TestTable8Quick(t *testing.T) {
	tab, err := Table8(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.Render())
}

func TestTable9Quick(t *testing.T) {
	tab, err := Table9(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.Render())
}

func TestTable10Quick(t *testing.T) {
	tab, err := Table10(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.Render())
}

func TestTable11Quick(t *testing.T) {
	tab, err := Table11(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.Render())
}

func TestFig1Quick(t *testing.T) {
	tab, err := Fig1(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.Render())
}

func TestFig6Quick(t *testing.T) {
	tab, err := Fig6(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.Render())
}

func TestFigCDFsQuick(t *testing.T) {
	for _, fn := range []func(Params) (*Table, error){Fig7, Fig8, Fig9, Fig10} {
		tab, err := fn(quick)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s empty", tab.ID)
		}
		t.Log("\n" + tab.Render())
	}
}

func TestIndexBenchOLCWins(t *testing.T) {
	// The index experiment's headline claim: at 16 workers the OLC tree
	// beats the coarse latch on simulated ns/op for both the read-heavy
	// and the mixed mix, and at 1 worker the two are at parity (OLC's
	// advantage is concurrency, not single-threaded speed).
	rows, err := RunIndexBench(quick)
	if err != nil {
		t.Fatal(err)
	}
	cell := func(tree, mix string, workers int) *IndexRow {
		for i := range rows {
			r := &rows[i]
			if r.Tree == tree && r.Mix == mix && r.Workers == workers {
				return r
			}
		}
		t.Fatalf("missing row %s/%s/w%d", tree, mix, workers)
		return nil
	}
	for _, mix := range []string{"read95", "mixed50"} {
		c, o := cell("coarse", mix, 16), cell("olc", mix, 16)
		if o.NsPerOp >= c.NsPerOp {
			t.Errorf("%s/16: olc %.1f ns/op not below coarse %.1f", mix, o.NsPerOp, c.NsPerOp)
		}
		c1, o1 := cell("coarse", mix, 1), cell("olc", mix, 1)
		if ratio := o1.NsPerOp / c1.NsPerOp; ratio < 0.9 || ratio > 1.1 {
			t.Errorf("%s/1: single-worker parity broken: olc %.1f vs coarse %.1f", mix, o1.NsPerOp, c1.NsPerOp)
		}
	}
}
