package experiments

import (
	"encoding/json"
	"fmt"

	"ipa/internal/core"
	"ipa/internal/engine"
	"ipa/internal/flash"
	"ipa/internal/noftl"
	"ipa/internal/sim"
	"ipa/internal/workload"
)

// This file is the index-latching comparison of the pluggable-index
// API: the same bare-index operation stream run under the coarse
// (tree-wide RW mutex) and OLC (optimistic lock coupling) B+trees,
// across worker counts and read/insert mixes. Times are simulated —
// the coarse tree pays the tree-wide latch horizon, the OLC tree runs
// horizon-free and reports its residual cost as restart and latch-wait
// counters — so the shape is deterministic and host-independent (see
// workload.RunIndexOps).

// IndexRow is one (tree, mix, workers) cell of the comparison.
type IndexRow struct {
	Tree    string `json:"tree"`
	Mix     string `json:"mix"`
	ReadPct int    `json:"read_pct"`
	Workers int    `json:"workers"`
	Ops     int    `json:"ops"`
	// NsPerOp is simulated nanoseconds per operation (makespan / ops).
	NsPerOp float64 `json:"ns_per_op"`
	// RestartsPerOp counts optimistic descents invalidated by a
	// concurrent structural change (OLC only; coarse never restarts).
	RestartsPerOp float64 `json:"restarts_per_op"`
	// LatchWaitsPerOp counts blocked latch acquisitions (OLC only).
	LatchWaitsPerOp float64 `json:"latch_waits_per_op"`
}

// indexBenchDB builds the standard concurrent stack for index runs:
// 16 SLC chips and a buffer pool big enough to keep the whole tree
// cached, so the comparison measures latching rather than the append
// chip (a cold pool serialises both trees on the same flash programs).
func indexBenchDB(frames int) (*engine.DB, *sim.Timeline, error) {
	g := flash.Geometry{
		Chips: 16, BlocksPerChip: 64, PagesPerBlock: 32,
		PageSize: 1024, OOBSize: 64, Cell: flash.SLC,
	}
	tl := sim.NewTimeline(g.Chips)
	arr, err := flash.New(flash.Config{
		Geometry: g, Timing: flash.SLCTiming(), StrictProgramOrder: true, MaxAppends: 8,
	}, tl)
	if err != nil {
		return nil, nil, err
	}
	dev := noftl.Open(arr)
	if _, err := dev.CreateRegion(noftl.RegionConfig{
		Name: "main", Mode: noftl.ModeSLC, Scheme: core.NewScheme(2, 4),
		BlocksPerChip: 64, OverProvision: 0.15,
	}); err != nil {
		return nil, nil, err
	}
	db, err := engine.New(dev, engine.Options{
		PageSize: 1024, BufferFrames: frames, Timeline: tl,
		LogCapacity: 1 << 20, LogReclaimThreshold: 0.4,
		PoolShards: 8,
	})
	if err != nil {
		return nil, nil, err
	}
	return db, tl, nil
}

// RunIndexBench executes the matrix: {coarse, olc} × {read95, mixed50}
// × {1, 4, 16} workers.
func RunIndexBench(p Params) ([]IndexRow, error) {
	preload, ops := 20000, 20000
	if p.Quick {
		preload, ops = 5000, 5000
	}
	var rows []IndexRow
	for _, kind := range []engine.IndexKind{engine.IndexCoarse, engine.IndexOLC} {
		for _, mix := range []struct {
			name    string
			readPct int
		}{{"read95", 95}, {"mixed50", 50}} {
			for _, workers := range []int{1, 4, 16} {
				db, tl, err := indexBenchDB(2048)
				if err != nil {
					return nil, err
				}
				res, err := workload.RunIndexOps(db, tl, "main", workload.IndexOpsConfig{
					Kind: kind, ReadPct: mix.readPct, Workers: workers,
					Preload: preload, Ops: ops, Seed: 3,
				})
				if err != nil {
					return nil, fmt.Errorf("index %s/%s/w%d: %w", kind, mix.name, workers, err)
				}
				n := float64(ops)
				rows = append(rows, IndexRow{
					Tree: kind.String(), Mix: mix.name, ReadPct: mix.readPct,
					Workers: workers, Ops: ops,
					NsPerOp:         float64(res.SimTime) / n,
					RestartsPerOp:   float64(res.After.Restarts-res.Before.Restarts) / n,
					LatchWaitsPerOp: float64(res.After.LatchWaits-res.Before.LatchWaits) / n,
				})
			}
		}
	}
	return rows, nil
}

// Index renders the comparison as a report table (experiment id
// "index").
func Index(p Params) (*Table, error) {
	rows, err := RunIndexBench(p)
	if err != nil {
		return nil, err
	}
	return IndexTable(rows), nil
}

// IndexTable renders already-computed rows (so one matrix run can feed
// both the table and the JSON artifact).
func IndexTable(rows []IndexRow) *Table {
	t := &Table{
		ID:     "index",
		Title:  "Index latching: coarse RW mutex vs optimistic lock coupling",
		Header: []string{"tree", "mix", "workers", "ns/op", "restarts/op", "latchwaits/op"},
	}
	for _, r := range rows {
		t.AddRow(r.Tree, r.Mix,
			fmt.Sprintf("%d", r.Workers),
			fmt.Sprintf("%.1f", r.NsPerOp),
			fmt.Sprintf("%.4f", r.RestartsPerOp),
			fmt.Sprintf("%.4f", r.LatchWaitsPerOp))
	}
	t.Notes = append(t.Notes,
		"ns/op is simulated time (makespan/ops): coarse pays a tree-wide latch horizon, OLC runs horizon-free",
		"restarts/op and latchwaits/op are OLC's residual contention cost; coarse never restarts",
		"warm buffer pool: the tree is fully cached, so the latch (not the append chip) is the bottleneck")
	return t
}

// IndexJSON marshals already-computed rows for BENCH_PR7.json.
func IndexJSON(p Params, rows []IndexRow) ([]byte, error) {
	return json.MarshalIndent(struct {
		Experiment string     `json:"experiment"`
		Quick      bool       `json:"quick"`
		Rows       []IndexRow `json:"rows"`
	}{Experiment: "index", Quick: p.Quick, Rows: rows}, "", "  ")
}
