package experiments

import (
	"encoding/json"
	"fmt"

	"ipa/internal/core"
	"ipa/internal/noftl"
)

// This file is the scheme-comparison matrix of the pluggable-storage
// API: the same OLTP work run under plain out-of-place writes (oop),
// In-Place Appends (ipa) and Page-Differential Logging (pdl), reporting
// the three costs the schemes trade against each other — transaction
// throughput, flash bytes programmed per committed transaction, and GC
// page migrations per transaction.

// SchemeRow is one (bench, storage) cell of the comparison.
type SchemeRow struct {
	Bench        string  `json:"bench"`
	Storage      string  `json:"storage"`
	Transactions uint64  `json:"transactions"`
	TxPerSec     float64 `json:"tx_per_sec"`
	// BytesPerTx is flash bytes programmed (pages, delta-records and PDL
	// differentials alike, as counted by the array) per committed
	// transaction.
	BytesPerTx float64 `json:"bytes_programmed_per_tx"`
	// GCMigrationsPerTx is GC page migrations per committed transaction.
	GCMigrationsPerTx float64 `json:"gc_migrations_per_tx"`
	// IPAFraction is the fraction of update I/Os served as appends
	// (delta-records or PDL differentials).
	IPAFraction float64 `json:"ipa_fraction"`
}

var schemeMatrix = []struct {
	name    string
	storage noftl.Storage
	scheme  core.Scheme
}{
	{"oop", noftl.StorageOOP, core.Scheme{}},
	{"ipa", noftl.StorageIPA, core.NewScheme(2, 4)},
	{"pdl", noftl.StoragePDL, core.Scheme{}},
}

// RunSchemes executes the matrix: {tpcb, tatp} × {oop, ipa, pdl}.
func RunSchemes(p Params) ([]SchemeRow, error) {
	var rows []SchemeRow
	for _, bench := range []string{"tpcb", "tatp"} {
		for _, m := range schemeMatrix {
			o, err := Execute(Spec{
				Bench: bench, Storage: m.storage, Scheme: m.scheme,
				BufferPct: 0.5, Eager: true, Tx: p.tx(4000),
			})
			if err != nil {
				return nil, fmt.Errorf("schemes %s/%s: %w", bench, m.name, err)
			}
			row := SchemeRow{
				Bench:        bench,
				Storage:      m.name,
				Transactions: o.Results.Transactions,
				TxPerSec:     o.Results.Throughput,
				IPAFraction:  o.Region.IPAFraction(),
			}
			if n := float64(o.Results.Transactions); n > 0 {
				row.BytesPerTx = float64(o.Flash.BytesWritten) / n
				row.GCMigrationsPerTx = float64(o.Region.GCPageMigrations) / n
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Schemes renders the comparison as a report table (experiment id
// "schemes").
func Schemes(p Params) (*Table, error) {
	rows, err := RunSchemes(p)
	if err != nil {
		return nil, err
	}
	return SchemesTable(rows), nil
}

// SchemesTable renders already-computed rows (so one matrix run can
// feed both the table and the JSON artifact).
func SchemesTable(rows []SchemeRow) *Table {
	t := &Table{
		ID:     "schemes",
		Title:  "Storage-scheme comparison: oop vs ipa vs pdl",
		Header: []string{"bench", "storage", "tx/s", "bytes/tx", "GC migr/tx", "append%"},
	}
	for _, r := range rows {
		t.AddRow(r.Bench, r.Storage,
			fmt.Sprintf("%.0f", r.TxPerSec),
			fmt.Sprintf("%.0f", r.BytesPerTx),
			fmt.Sprintf("%.3f", r.GCMigrationsPerTx),
			fmt.Sprintf("%.0f%%", 100*r.IPAFraction))
	}
	t.Notes = append(t.Notes,
		"bytes/tx counts every byte the flash array programs (pages, delta-records, PDL differentials) per committed tx",
		"ipa appends into the page's own delta area; pdl appends differential records to per-chip log blocks and merges on read")
	return t
}

// SchemesJSON marshals already-computed rows for BENCH_PR6.json.
func SchemesJSON(p Params, rows []SchemeRow) ([]byte, error) {
	return json.MarshalIndent(struct {
		Experiment string      `json:"experiment"`
		Quick      bool        `json:"quick"`
		Rows       []SchemeRow `json:"rows"`
	}{Experiment: "schemes", Quick: p.Quick, Rows: rows}, "", "  ")
}
