package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ipa/internal/client"
	"ipa/internal/engine"
	"ipa/internal/repl"
	"ipa/internal/workload"
)

// This file is the replication evaluation: a 3-node in-process cluster
// under 16-terminal TPC-B load over the wire protocol, measuring (a)
// how far followers trail the primary (replication lag, in WAL records
// and bytes, sampled from the leader's per-peer shipping state) and (b)
// how long the cluster takes to elect a replacement and resume
// acknowledging commits after the primary is crash-killed. Wall-clock
// numbers: elections and shipping run on real timers, not the simulated
// flash timeline.

// ReplRow is one load phase (before or after the failover).
type ReplRow struct {
	Phase      string  `json:"phase"` // steady-state | post-failover
	Workers    int     `json:"workers"`
	DurationMs float64 `json:"duration_ms"`

	Acked       uint64  `json:"acked"`
	AckedPerSec float64 `json:"acked_per_sec"`
	Aborts      uint64  `json:"aborts"`
	Unknown     uint64  `json:"unknown_outcomes"`

	// Follower lag sampled from the leader every few milliseconds while
	// the load runs, max/mean across samples and connected peers.
	LagRecordsMean float64 `json:"lag_records_mean"`
	LagRecordsMax  uint64  `json:"lag_records_max"`
	LagBytesMean   float64 `json:"lag_bytes_mean"`
	LagBytesMax    uint64  `json:"lag_bytes_max"`
}

// ReplSummary is the failover headline.
type ReplSummary struct {
	FailoverMs    float64 `json:"failover_ms"` // kill → new leader serving
	NewLeaderTerm uint64  `json:"new_leader_term"`
	// AckedSurvived confirms the post-run audit: every commit
	// acknowledged to a client was found in the new leader's history
	// table.
	AckedSurvived bool `json:"acked_survived"`
}

// replPhase drives the cluster for d with nWorkers terminals while
// sampling follower lag from lead.
func replPhase(phase string, d time.Duration, nWorkers int, lead *repl.Member,
	pool *client.Pool, ct *workload.ClusterTPCB, acked map[uint64]bool) ReplRow {

	row := ReplRow{Phase: phase, Workers: nWorkers}
	var mu sync.Mutex
	stop := make(chan struct{})

	// Lag sampler: the leader's shipping state already tracks per-peer
	// acked LSN and bytes; sampling it is free of coordination with the
	// data path.
	var samplerWG sync.WaitGroup
	var samples, lagRecSum, lagByteSum uint64
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				for _, ps := range lead.Node.Stats().Peers {
					if !ps.Connected {
						continue
					}
					samples++
					lagRecSum += ps.LagRecords
					lagByteSum += ps.LagBytes
					if ps.LagRecords > row.LagRecordsMax {
						row.LagRecordsMax = ps.LagRecords
					}
					if ps.LagBytes > row.LagBytesMax {
						row.LagBytesMax = ps.LagBytes
					}
				}
			}
		}
	}()

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				seq, err := ct.RunOne(pool, rng)
				mu.Lock()
				switch {
				case err == nil:
					row.Acked++
					acked[seq] = true
				case workload.Aborted(err):
					row.Aborts++
				default:
					row.Unknown++
				}
				mu.Unlock()
			}
		}(int64(w + 1))
	}
	time.Sleep(d)
	close(stop)
	wg.Wait()
	samplerWG.Wait()

	row.DurationMs = float64(time.Since(start).Microseconds()) / 1000
	row.AckedPerSec = float64(row.Acked) / time.Since(start).Seconds()
	if samples > 0 {
		row.LagRecordsMean = float64(lagRecSum) / float64(samples)
		row.LagBytesMean = float64(lagByteSum) / float64(samples)
	}
	return row
}

// RunReplBench executes both phases and the survival audit.
func RunReplBench(p Params) ([]ReplRow, *ReplSummary, error) {
	const workers = 16
	steady, post := 1500*time.Millisecond, 1000*time.Millisecond
	if p.Quick {
		steady, post = 400*time.Millisecond, 400*time.Millisecond
	}

	cl, err := repl.NewCluster(repl.ClusterConfig{
		N: 3,
		Node: repl.Config{
			HeartbeatInterval: 25 * time.Millisecond,
			ElectionTimeout:   150 * time.Millisecond,
		},
	})
	if err != nil {
		return nil, nil, err
	}
	defer cl.Close()

	boot := cl.Members[0]
	tp := workload.NewTPCB(boot.DB, "data", 2, 400)
	if err := tp.Load(boot.TL.NewWorker()); err != nil {
		return nil, nil, fmt.Errorf("repl bench: preload: %w", err)
	}
	pool := cl.Pool(client.Options{RequestTimeout: 3 * time.Second})
	defer pool.Close()
	ct := workload.NewClusterTPCB()
	if err := ct.Init(pool); err != nil {
		return nil, nil, fmt.Errorf("repl bench: init: %w", err)
	}

	acked := make(map[uint64]bool)
	rows := []ReplRow{replPhase("steady-state", steady, workers, boot, pool, ct, acked)}

	lead := cl.Leader()
	if lead == nil {
		return nil, nil, fmt.Errorf("repl bench: no leader after steady phase")
	}
	killStart := time.Now()
	cl.Kill(lead.ID)
	newLead, err := cl.WaitLeader(10 * time.Second)
	if err != nil {
		return nil, nil, fmt.Errorf("repl bench: %w", err)
	}
	sum := &ReplSummary{
		FailoverMs:    float64(time.Since(killStart).Microseconds()) / 1000,
		NewLeaderTerm: newLead.Node.Stats().Term,
	}

	rows = append(rows, replPhase("post-failover", post, workers, newLead, pool, ct, acked))

	// Survival audit: every acknowledged seq must be in the new
	// leader's history table.
	schHist, err := engine.NewSchema(4, 4, 4, 8, 8)
	if err != nil {
		return nil, nil, err
	}
	hist := make(map[uint64]bool, len(acked))
	err = pool.Do(func(c *client.Conn) error {
		entries, err := c.Scan("tpcb_history", 0)
		if err != nil {
			return err
		}
		for _, e := range entries {
			hist[schHist.GetUint(e.Data, 4)] = true
		}
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("repl bench: audit scan: %w", err)
	}
	sum.AckedSurvived = true
	for seq := range acked {
		if !hist[seq] {
			sum.AckedSurvived = false
			return rows, sum, fmt.Errorf("repl bench: acked seq %d missing after failover", seq)
		}
	}
	return rows, sum, nil
}

// Repl renders the experiment as a report table (experiment id "repl").
func Repl(p Params) (*Table, error) {
	rows, sum, err := RunReplBench(p)
	if err != nil {
		return nil, err
	}
	return ReplTable(rows, sum), nil
}

// ReplTable renders already-computed rows.
func ReplTable(rows []ReplRow, sum *ReplSummary) *Table {
	t := &Table{
		ID:     "repl",
		Title:  "Replication: 3-node cluster, TPC-B over the wire, primary crash-killed between phases (16 workers)",
		Header: []string{"phase", "acked", "acked/s", "aborts", "unknown", "lag rec (mean/max)", "lag bytes (mean/max)"},
	}
	for _, r := range rows {
		t.AddRow(r.Phase,
			fmt.Sprintf("%d", r.Acked),
			fmt.Sprintf("%.0f", r.AckedPerSec),
			fmt.Sprintf("%d", r.Aborts),
			fmt.Sprintf("%d", r.Unknown),
			fmt.Sprintf("%.1f / %d", r.LagRecordsMean, r.LagRecordsMax),
			fmt.Sprintf("%.0f / %d", r.LagBytesMean, r.LagBytesMax))
	}
	if sum != nil {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"failover: new leader (term %d) serving after %.1f ms; every acked commit survived: %v",
			sum.NewLeaderTerm, sum.FailoverMs, sum.AckedSurvived))
	}
	t.Notes = append(t.Notes,
		"lag sampled from the leader's per-peer shipping state every 5 ms while the load runs",
		"commits acknowledge only after the commit record reaches a quorum (semi-synchronous)")
	return t
}

// ReplJSON marshals rows and summary for BENCH_PR10.json.
func ReplJSON(p Params, rows []ReplRow, sum *ReplSummary) ([]byte, error) {
	return json.MarshalIndent(struct {
		Experiment string       `json:"experiment"`
		Quick      bool         `json:"quick"`
		Rows       []ReplRow    `json:"rows"`
		Summary    *ReplSummary `json:"summary"`
	}{Experiment: "repl", Quick: p.Quick, Rows: rows, Summary: sum}, "", "  ")
}
