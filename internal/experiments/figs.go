package experiments

import (
	"fmt"
	"strings"

	"ipa/internal/core"
	"ipa/internal/metrics"
)

// Fig1 reproduces Figure 1: the anatomy of write amplification for one
// small in-place update, measured on the actual stack — a 10-byte tuple
// change under [0×0] versus the same change served as an In-Place
// Append.
func Fig1(p Params) (*Table, error) {
	t := &Table{
		ID:     "fig1",
		Title:  "Write amplification of one ~10-byte update (4KB page)",
		Header: []string{"stage", "[0×0] bytes written", "IPA [2×3] bytes written"},
	}
	// Run a tiny TPC-C burst under both configurations and take the
	// per-flush averages.
	base, err := Execute(Spec{Bench: "tpcc", Scheme: core.Scheme{}, BufferPct: 0.75, Eager: true, Tx: p.tx(2000)})
	if err != nil {
		return nil, err
	}
	o, err := Execute(Spec{Bench: "tpcc", Scheme: core.NewScheme(2, 3), BufferPct: 0.75, Eager: true, Tx: p.tx(2000)})
	if err != nil {
		return nil, err
	}
	netB := base.Store.NetBytes.Mean()
	grossB := base.Store.GrossBytes.Mean()
	netI := o.Store.NetBytes.Mean()
	grossI := o.Store.GrossBytes.Mean()
	rs := float64(o.Spec.Scheme.RecordSize())
	ipaFrac := o.Region.IPAFraction()
	devB := float64(base.Spec.PageSize) * (1 + base.Region.MigrationsPerHostWrite())
	devI := rs*ipaFrac + float64(o.Spec.PageSize)*(1-ipaFrac)*(1+o.Region.MigrationsPerHostWrite())

	t.AddRow("(a) net tuple change", fmt.Sprintf("%.1f", netB), fmt.Sprintf("%.1f", netI))
	t.AddRow("(b,c) page body+metadata change", fmt.Sprintf("%.1f", grossB), fmt.Sprintf("%.1f", grossI))
	t.AddRow("(d) DBMS write to device", base.Spec.PageSize, fmt.Sprintf("%.0f (delta-record ×%.0f%% | page ×%.0f%%)",
		rs*ipaFrac+float64(o.Spec.PageSize)*(1-ipaFrac), 100*ipaFrac, 100*(1-ipaFrac)))
	t.AddRow("(f) on-device incl. GC", fmt.Sprintf("%.0f", devB), fmt.Sprintf("%.0f", devI))
	if netB > 0 && netI > 0 {
		t.AddRow("write amplification", fmt.Sprintf("%.0fx", devB/netB), fmt.Sprintf("%.0fx", devI/netI))
	}
	t.Notes = append(t.Notes, "paper Figure 1: a 10-byte update costs 400-800x write amplification without IPA")
	return t, nil
}

// Fig6 reproduces Figure 6: fraction of update I/Os performed as
// in-place appends in LinkBench, per [N×M] scheme and buffer size.
func Fig6(p Params) (*Table, error) {
	t := &Table{
		ID:     "fig6",
		Title:  "LinkBench: fraction of update I/Os performed as IPA [%]",
		Header: []string{"buffer", "1x100", "1x125", "2x100", "2x125", "3x100", "3x125"},
	}
	grid := []core.Scheme{
		core.NewScheme(1, 100), core.NewScheme(1, 125),
		core.NewScheme(2, 100), core.NewScheme(2, 125),
		core.NewScheme(3, 100), core.NewScheme(3, 125),
	}
	buffers := []float64{0.20, 0.50, 0.75, 0.90}
	if p.Quick {
		buffers = []float64{0.20, 0.75}
		grid = grid[2:4]
		t.Header = []string{"buffer", "2x100", "2x125"}
	}
	tx := p.tx(4000)
	for _, b := range buffers {
		cells := []any{pct(b)}
		for _, s := range grid {
			o, err := Execute(Spec{Bench: "linkbench", Scheme: s, BufferPct: b, Eager: true, Tx: tx})
			if err != nil {
				return nil, err
			}
			cells = append(cells, fmt.Sprintf("%.0f%%", 100*o.Region.IPAFraction()))
		}
		t.AddRow(cells...)
	}
	t.Notes = append(t.Notes, "paper: 28-47% of update I/Os become appends, growing with N and M, shrinking with buffer size")
	return t, nil
}

// cdfFigure renders an update-size CDF across buffer sizes.
func cdfFigure(id, title, bench string, scheme core.Scheme, gross bool, eager bool, buffers []float64, points []int, p Params) (*Table, []metrics.Series, error) {
	t := &Table{ID: id, Title: title, Header: []string{"changed bytes ≤"}}
	for _, b := range buffers {
		t.Header = append(t.Header, "buffer "+pct(b))
	}
	var series []metrics.Series
	var outs []*Out
	for _, b := range buffers {
		o, err := Execute(Spec{Bench: bench, Scheme: scheme, BufferPct: b, Eager: eager, Tx: p.tx(6000)})
		if err != nil {
			return nil, nil, err
		}
		outs = append(outs, o)
		h := o.Store.NetBytes
		if gross {
			h = o.Store.GrossBytes
		}
		s := metrics.Series{
			Label:  fmt.Sprintf("%s buffer %s", bench, pct(b)),
			XLabel: "changed bytes", YLabel: "CDF",
		}
		for _, pt := range points {
			s.X = append(s.X, float64(pt))
			s.Y = append(s.Y, h.FractionLE(pt))
		}
		series = append(series, s)
	}
	for _, pt := range points {
		cells := []any{pt}
		for _, o := range outs {
			h := o.Store.NetBytes
			if gross {
				h = o.Store.GrossBytes
			}
			cells = append(cells, fmt.Sprintf("%.2f", h.FractionLE(pt)))
		}
		t.AddRow(cells...)
	}
	return t, series, nil
}

func sweepBuffers(p Params, all []float64) []float64 {
	if p.Quick {
		return []float64{all[0], all[len(all)-1]}
	}
	return all
}

// Fig7 reproduces Figure 7: CDF of update sizes in TPC-B (net data).
func Fig7(p Params) (*Table, error) {
	t, _, err := cdfFigure("fig7", "CDF of update-sizes in TPC-B (net data)",
		"tpcb", core.NewScheme(2, 4), false, true,
		sweepBuffers(p, []float64{0.10, 0.20, 0.50, 0.75, 0.90}),
		[]int{2, 4, 8, 16, 32, 64, 128}, p)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper: 50-90% of update I/Os change only 4 net bytes; >80% change ≤8")
	return t, nil
}

// Fig8 reproduces Figure 8: CDF of update sizes in TPC-C, eager.
func Fig8(p Params) (*Table, error) {
	t, _, err := cdfFigure("fig8", "CDF of update-sizes in TPC-C (net data, eager eviction)",
		"tpcc", core.NewScheme(2, 3), false, true,
		sweepBuffers(p, []float64{0.10, 0.20, 0.50, 0.75, 0.90}),
		[]int{3, 6, 10, 20, 40, 80, 160}, p)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper: ~70% of update I/Os change <6 net bytes with eager eviction")
	return t, nil
}

// Fig9 reproduces Figure 9: CDF of update sizes in TPC-C, non-eager.
func Fig9(p Params) (*Table, error) {
	t, _, err := cdfFigure("fig9", "CDF of update-sizes in TPC-C (net data, non-eager eviction)",
		"tpcc", core.NewScheme(2, 40), false, false,
		sweepBuffers(p, []float64{0.10, 0.20, 0.50, 0.75, 0.90}),
		[]int{3, 6, 10, 30, 40, 100, 400}, p)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper: update accumulation shifts the CDF right with larger buffers (~70% <40B)")
	return t, nil
}

// Fig10 reproduces Figure 10: CDF of update sizes in LinkBench (gross).
func Fig10(p Params) (*Table, error) {
	t, _, err := cdfFigure("fig10", "CDF of update-sizes in LinkBench (gross: body+metadata)",
		"linkbench", core.NewScheme(2, 100), true, true,
		sweepBuffers(p, []float64{0.20, 0.50, 0.75, 0.90}),
		[]int{10, 25, 50, 100, 125, 200, 400}, p)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper: ~70% of updates ≤100B gross at 20% buffer, ≤200B at larger buffers")
	return t, nil
}

// Longevity quantifies the paper's headline conclusion — "the proposed
// approach doubles the longevity of Flash devices under update-intensive
// workloads" — by running the same TPC-B work under [0×0] and [2×4] and
// comparing total erases and the worst-case per-block wear (which bounds
// device lifetime).
func Longevity(p Params) (*Table, error) {
	t := &Table{
		ID:     "longevity",
		Title:  "Flash longevity under TPC-B: total erases and peak block wear for the same work",
		Header: []string{"metric", "[0×0]", "[2×4]", "lifetime ×"},
	}
	tx := p.tx(12000)
	run := func(s core.Scheme) (*Out, uint32, error) {
		o, err := Execute(Spec{Bench: "tpcb", Scheme: s, BufferPct: 0.20, Eager: true, Tx: tx})
		if err != nil {
			return nil, 0, err
		}
		return o, o.DB.Device().Array().MaxEraseCount(), nil
	}
	base, basePeak, err := run(core.Scheme{})
	if err != nil {
		return nil, err
	}
	ipa, ipaPeak, err := run(core.NewScheme(2, 4))
	if err != nil {
		return nil, err
	}
	life := func(b, i float64) string {
		if i == 0 {
			return "∞"
		}
		return fmt.Sprintf("%.1fx", b/i)
	}
	t.AddRow("GC erases", base.Region.GCErases, ipa.Region.GCErases,
		life(float64(base.Region.GCErases), float64(ipa.Region.GCErases)))
	t.AddRow("erases per host write",
		fmt.Sprintf("%.4f", base.Region.ErasesPerHostWrite()),
		fmt.Sprintf("%.4f", ipa.Region.ErasesPerHostWrite()),
		life(base.Region.ErasesPerHostWrite(), ipa.Region.ErasesPerHostWrite()))
	t.AddRow("peak block P/E cycles", int(basePeak), int(ipaPeak),
		life(float64(basePeak), float64(ipaPeak)))
	t.Notes = append(t.Notes,
		"paper conclusion: IPA roughly doubles flash longevity under update-intensive OLTP")
	return t, nil
}

// All runs every experiment and concatenates the rendered tables.
func All(p Params) (string, error) {
	type exp struct {
		id string
		fn func(Params) (*Table, error)
	}
	exps := []exp{
		{"table1", Table1}, {"table2", Table2}, {"table3", Table3},
		{"table4", Table4}, {"table5", Table5}, {"table6", Table6},
		{"table7", Table7}, {"table8", Table8}, {"table9", Table9},
		{"table10", Table10}, {"table11", Table11},
		{"fig1", Fig1}, {"fig6", Fig6}, {"fig7", Fig7}, {"fig8", Fig8},
		{"fig9", Fig9}, {"fig10", Fig10}, {"longevity", Longevity},
		{"schemes", Schemes},
		{"index", Index},
		{"htap", HTAP},
		{"repl", Repl},
	}
	var b strings.Builder
	for _, e := range exps {
		t, err := e.fn(p)
		if err != nil {
			return b.String(), fmt.Errorf("%s: %w", e.id, err)
		}
		b.WriteString(t.Render())
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// ByID runs one experiment by its identifier.
func ByID(id string, p Params) (*Table, error) {
	switch id {
	case "table1":
		return Table1(p)
	case "table2":
		return Table2(p)
	case "table3":
		return Table3(p)
	case "table4":
		return Table4(p)
	case "table5":
		return Table5(p)
	case "table6":
		return Table6(p)
	case "table7":
		return Table7(p)
	case "table8":
		return Table8(p)
	case "table9":
		return Table9(p)
	case "table10":
		return Table10(p)
	case "table11":
		return Table11(p)
	case "fig1":
		return Fig1(p)
	case "fig6":
		return Fig6(p)
	case "fig7":
		return Fig7(p)
	case "fig8":
		return Fig8(p)
	case "fig9":
		return Fig9(p)
	case "fig10":
		return Fig10(p)
	case "longevity":
		return Longevity(p)
	case "schemes":
		return Schemes(p)
	case "index":
		return Index(p)
	case "htap":
		return HTAP(p)
	case "repl":
		return Repl(p)
	default:
		return nil, fmt.Errorf("experiments: unknown id %q", id)
	}
}
