package ecc

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCodeLen(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 3}, {255, 3}, {256, 3}, {257, 6}, {4096, 48},
	}
	for _, c := range cases {
		if got := CodeLen(c.n); got != c.want {
			t.Errorf("CodeLen(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestCleanDataVerifies(t *testing.T) {
	data := make([]byte, 1024)
	for i := range data {
		data[i] = byte(i * 7)
	}
	code := Encode(data)
	n, err := Correct(data, code)
	if err != nil || n != 0 {
		t.Errorf("Correct clean = (%d, %v)", n, err)
	}
}

func TestSingleBitErrorCorrected(t *testing.T) {
	data := make([]byte, 512)
	for i := range data {
		data[i] = byte(i)
	}
	code := Encode(data)
	orig := append([]byte(nil), data...)
	for _, pos := range []int{0, 7, 255 * 8, 256 * 8, 511*8 + 7} {
		copy(data, orig)
		data[pos/8] ^= 1 << (pos % 8)
		n, err := Correct(data, code)
		if err != nil {
			t.Fatalf("bit %d: %v", pos, err)
		}
		if n != 1 {
			t.Errorf("bit %d: corrected %d", pos, n)
		}
		if !bytes.Equal(data, orig) {
			t.Errorf("bit %d: data not restored", pos)
		}
	}
}

func TestOneErrorPerChunkCorrected(t *testing.T) {
	data := make([]byte, 1024) // 4 chunks
	code := Encode(data)
	orig := append([]byte(nil), data...)
	for c := 0; c < 4; c++ {
		data[c*256+c] ^= 0x10
	}
	n, err := Correct(data, code)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("corrected %d, want 4", n)
	}
	if !bytes.Equal(data, orig) {
		t.Error("data not restored")
	}
}

func TestDoubleBitErrorDetected(t *testing.T) {
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i ^ 0x5A)
	}
	code := Encode(data)
	data[3] ^= 0x01
	data[200] ^= 0x80
	if _, err := Correct(data, code); !errors.Is(err, ErrUncorrectable) {
		t.Errorf("double error: %v, want ErrUncorrectable", err)
	}
}

func TestCodeBitErrorIgnored(t *testing.T) {
	data := make([]byte, 256)
	code := Encode(data)
	code[0] ^= 0x04 // single flipped bit in the code word
	n, err := Correct(data, code)
	if err != nil {
		t.Fatalf("code-word error: %v", err)
	}
	if n != 0 {
		t.Errorf("corrected %d, want 0", n)
	}
}

func TestShortChunkStableUnderErasedPadding(t *testing.T) {
	// Codes over short regions treat the tail as erased (0xFF): the code
	// of a 46-byte delta record must not change if recomputed with the
	// same bytes.
	rec := bytes.Repeat([]byte{0x21}, 46)
	c1 := Encode(rec)
	c2 := Encode(append([]byte(nil), rec...))
	if !bytes.Equal(c1, c2) {
		t.Error("code not deterministic")
	}
	rec[10] ^= 0x40
	c3 := Encode(rec)
	if bytes.Equal(c1, c3) {
		t.Error("code did not change with data")
	}
}

func TestCorrectLengthMismatch(t *testing.T) {
	if _, err := Correct(make([]byte, 256), make([]byte, 2)); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestSectionsLayout(t *testing.T) {
	s := Sections{BodyLen: 4004, SlotLen: 46, Slots: 2}
	if s.BodyCodeLen() != 48 { // ceil(4004/256)=16 chunks
		t.Errorf("BodyCodeLen = %d", s.BodyCodeLen())
	}
	if s.SlotCodeLen() != 3 {
		t.Errorf("SlotCodeLen = %d", s.SlotCodeLen())
	}
	if s.TotalCodeLen() != 48+6 {
		t.Errorf("TotalCodeLen = %d", s.TotalCodeLen())
	}
	if s.SlotCodeOff(1) != 51 {
		t.Errorf("SlotCodeOff(1) = %d", s.SlotCodeOff(1))
	}
}

// Property: any single flipped data bit is corrected back to the original
// for random data and random sizes.
func TestPropertySingleBitAlwaysCorrected(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(1024)
		data := make([]byte, n)
		rng.Read(data)
		code := Encode(data)
		orig := append([]byte(nil), data...)
		pos := rng.Intn(n * 8)
		data[pos/8] ^= 1 << (pos % 8)
		c, err := Correct(data, code)
		return err == nil && c == 1 && bytes.Equal(data, orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: clean random data always verifies with zero corrections.
func TestPropertyCleanVerifies(t *testing.T) {
	f := func(data []byte) bool {
		code := Encode(data)
		n, err := Correct(data, code)
		return err == nil && n == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
