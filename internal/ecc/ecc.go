// Package ecc implements the classic NAND-flash error-correcting code:
// per-256-byte-chunk row/column parity (the "SmartMedia" ECC), 3 code
// bytes per chunk, correcting any single-bit error and detecting double
// bit errors within a chunk.
//
// The paper (Sec. 6.2, "Flash ECC and Page OOB Area") requires the ECC
// strategy to be sectioned for In-Place Appends: one code over the page
// body programmed with the initial page write (ECC_initial), plus one
// code per delta-record appended — via ISPP — together with the record
// (ECC_delta_i). This package provides the per-section codes; the storage
// layer lays them out in the page's OOB area.
package ecc

import (
	"errors"
	"fmt"
	"math/bits"
)

// ChunkSize is the data block covered by one code word.
const ChunkSize = 256

// CodeSize is the size of one code word in bytes.
const CodeSize = 3

// Errors returned by Correct.
var (
	// ErrUncorrectable marks a chunk with more errors than the code can
	// repair (≥2 data bit errors).
	ErrUncorrectable = errors.New("ecc: uncorrectable error")
)

// CodeLen returns the number of code bytes needed to protect n data bytes.
func CodeLen(n int) int {
	if n <= 0 {
		return 0
	}
	chunks := (n + ChunkSize - 1) / ChunkSize
	return chunks * CodeSize
}

// computeChunk builds the 22-bit row/column parity code for one chunk of
// up to 256 bytes (short chunks are treated as if padded with 0xFF, the
// erased flash state, so codes over partially-erased regions stay stable).
func computeChunk(data []byte) [CodeSize]byte {
	var lp, lpInv byte  // line (byte-index) parity and its complement
	var cp, cpInv uint8 // column (bit-index) parity and its complement
	var colAcc byte     // xor of all bytes: odd columns have their bit set

	for i := 0; i < ChunkSize; i++ {
		b := byte(0xFF)
		if i < len(data) {
			b = data[i]
		}
		colAcc ^= b
		if bits.OnesCount8(b)%2 == 1 {
			lp ^= byte(i)
			lpInv ^= ^byte(i)
		}
	}
	for j := 0; j < 8; j++ {
		if colAcc>>uint(j)&1 == 1 {
			cp ^= uint8(j)
			cpInv ^= ^uint8(j) & 0x07
		}
	}
	return [CodeSize]byte{lp, lpInv, cp<<4 | cpInv<<1}
}

// Encode computes the code bytes for data, one CodeSize group per
// ChunkSize chunk, into a freshly allocated slice of CodeLen(len(data)).
func Encode(data []byte) []byte {
	out := make([]byte, 0, CodeLen(len(data)))
	for off := 0; off < len(data); off += ChunkSize {
		end := off + ChunkSize
		if end > len(data) {
			end = len(data)
		}
		c := computeChunk(data[off:end])
		out = append(out, c[:]...)
	}
	return out
}

// Correct verifies data against code (as produced by Encode for a buffer
// of the same length), repairing single-bit errors in place. It returns
// the number of corrected bits. ErrUncorrectable is returned when any
// chunk holds an unrepairable error pattern.
func Correct(data, code []byte) (corrected int, err error) {
	want := CodeLen(len(data))
	if len(code) != want {
		return 0, fmt.Errorf("ecc: code length %d, want %d for %d data bytes", len(code), want, len(data))
	}
	ci := 0
	for off := 0; off < len(data); off += ChunkSize {
		end := off + ChunkSize
		if end > len(data) {
			end = len(data)
		}
		chunk := data[off:end]
		n, cerr := correctChunk(chunk, code[ci:ci+CodeSize], end-off)
		if cerr != nil {
			return corrected, fmt.Errorf("%w: chunk at offset %d", cerr, off)
		}
		corrected += n
		ci += CodeSize
	}
	return corrected, nil
}

func correctChunk(chunk, code []byte, realLen int) (int, error) {
	have := computeChunk(chunk)
	dLP := have[0] ^ code[0]
	dLPInv := have[1] ^ code[1]
	dCol := have[2] ^ code[2]
	if dLP == 0 && dLPInv == 0 && dCol == 0 {
		return 0, nil
	}
	dCP := dCol >> 4 & 0x07
	dCPInv := dCol >> 1 & 0x07
	// Single-bit data error: every parity/complement pair disagrees
	// completely, pinpointing the byte (dLP) and bit (dCP).
	if dLP^dLPInv == 0xFF && dCP^dCPInv == 0x07 {
		byteIdx := int(dLP)
		bitIdx := uint(dCP)
		if byteIdx >= realLen {
			// The flipped "bit" lies in the conceptual 0xFF padding —
			// impossible for stored data, so this is a code corruption.
			return 0, ErrUncorrectable
		}
		chunk[byteIdx] ^= 1 << bitIdx
		return 1, nil
	}
	// Single-bit error in the code word itself: exactly one differing bit
	// across the syndrome. Data is fine.
	ones := bits.OnesCount8(dLP) + bits.OnesCount8(dLPInv) + bits.OnesCount8(dCol)
	if ones == 1 {
		return 0, nil
	}
	return 0, ErrUncorrectable
}

// Sections computes independent codes for a page body and each
// delta-record slot, mirroring the paper's ECC_initial + ECC_delta_i
// layout. body is the page prefix up to the delta area; slots are the
// delta-record regions.
type Sections struct {
	BodyLen int // bytes covered by the body code
	SlotLen int // bytes per delta-record slot
	Slots   int // number of delta-record slots
}

// BodyCodeLen returns the OOB bytes used by the body code.
func (s Sections) BodyCodeLen() int { return CodeLen(s.BodyLen) }

// SlotCodeLen returns the OOB bytes used by one delta-record code.
func (s Sections) SlotCodeLen() int { return CodeLen(s.SlotLen) }

// TotalCodeLen returns the OOB bytes used by all sections.
func (s Sections) TotalCodeLen() int { return s.BodyCodeLen() + s.Slots*s.SlotCodeLen() }

// SlotCodeOff returns the OOB offset of the code for delta slot i.
func (s Sections) SlotCodeOff(i int) int { return s.BodyCodeLen() + i*s.SlotCodeLen() }
