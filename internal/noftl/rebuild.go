package noftl

import (
	"fmt"

	"ipa/internal/core"
	"ipa/internal/flash"
	"ipa/internal/sim"
)

// This file implements mapping reconstruction after power loss. NoFTL
// keeps the logical→physical mapping in DBMS memory; after a crash it
// must be rebuilt from flash itself. Because every database page carries
// its page id and PageLSN in the page header (and delta-records carry
// LSN updates), a full scan can re-derive the mapping: for every logical
// page the physical copy with the highest post-reconstruction LSN is the
// current one, older copies are garbage. This is the flash-native
// equivalent of an FTL rebuilding its tables from OOB metadata.

// PhysicalPage is one programmed page surfaced by ScanPhysical.
type PhysicalPage struct {
	PPN  flash.PPN
	Data []byte
	OOB  []byte
}

// ScanPhysical visits every programmed (non-erased) physical page of the
// region in PPN order, calling fn until it returns false. The raw image
// is passed as stored — delta-records not applied; interpretation is the
// caller's job (it knows the page layout). Data and OOB buffers are
// reused across calls: fn must copy anything it wants to retain.
func (r *Region) ScanPhysical(w *sim.Worker, fn func(p PhysicalPage) bool) error {
	r.mu.Lock()
	blocks := make([]int, 0, len(r.blocks))
	for id := range r.blocks {
		blocks = append(blocks, id)
	}
	r.mu.Unlock()
	// Deterministic order.
	for i := range blocks {
		for j := i + 1; j < len(blocks); j++ {
			if blocks[j] < blocks[i] {
				blocks[i], blocks[j] = blocks[j], blocks[i]
			}
		}
	}
	arr := r.dev.arr
	data := make([]byte, r.dev.geom.PageSize)
	oob := make([]byte, r.dev.geom.OOBSize)
	for _, b := range blocks {
		for slot := 0; slot < r.usablePagesPerBlock(); slot++ {
			ppn := r.pageSlotToPPN(b, slot)
			if arr.IsErased(ppn) {
				continue
			}
			if _, err := arr.ReadInto(w, ppn, data, oob); err != nil {
				return fmt.Errorf("noftl: scan ppn %d: %w", ppn, err)
			}
			if !fn(PhysicalPage{PPN: ppn, Data: data, OOB: oob}) {
				return nil
			}
		}
	}
	return nil
}

// Adopt installs a mapping reconstructed by a scan, replacing the
// region's in-memory metadata: forward and reverse maps, per-block valid
// counts, and write points (derived from the highest programmed page of
// each block). Physical copies not present in the mapping are garbage
// and will be reclaimed by the collector.
func (r *Region) Adopt(mapping map[core.PageID]flash.PPN) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Validate every target lies in this region.
	for id, ppn := range mapping {
		bm := r.blocks[r.dev.geom.BlockOf(ppn)]
		if bm == nil {
			return fmt.Errorf("noftl: adopt page %d: ppn %d outside region %q", id, ppn, r.cfg.Name)
		}
	}
	if len(mapping) > r.logical {
		return fmt.Errorf("%w: adopting %d pages into capacity %d", ErrRegionFull, len(mapping), r.logical)
	}
	r.mapping = make(map[core.PageID]flash.PPN, len(mapping))
	r.reverse = make(map[flash.PPN]core.PageID, len(mapping))
	for id, ppn := range mapping {
		r.mapping[id] = ppn
		r.reverse[ppn] = id
	}
	// Re-derive per-block state from flash.
	arr := r.dev.arr
	for _, bm := range r.blocks {
		bm.valid = 0
		bm.active = false
		bm.free = true
		bm.next = 0
		for slot := r.usablePagesPerBlock() - 1; slot >= 0; slot-- {
			if !arr.IsErased(r.pageSlotToPPN(bm.id, slot)) {
				bm.next = slot + 1
				bm.free = false
				break
			}
		}
	}
	for _, ppn := range r.mapping {
		r.blocks[r.dev.geom.BlockOf(ppn)].valid++
	}
	// Rebuild free lists and clear write points (the next write pops a
	// fresh block or reuses a partially-written one through allocLocked).
	r.freeCnt = make(map[int]int)
	r.active = make(map[int]*blockMeta)
	for _, c := range r.chips {
		r.freeCnt[c] = 0
	}
	for _, bm := range r.blocks {
		if bm.free {
			r.freeCnt[bm.chip]++
		} else if bm.next < r.usablePagesPerBlock() {
			// A partially filled block becomes the chip's write point so
			// its remaining pages are not stranded.
			if cur := r.active[bm.chip]; cur == nil || bm.next < cur.next {
				if cur != nil {
					cur.active = false
				}
				bm.active = true
				r.active[bm.chip] = bm
			}
		}
	}
	return nil
}
