package noftl

import (
	"fmt"
	"sort"

	"ipa/internal/core"
	"ipa/internal/flash"
	"ipa/internal/sim"
)

// This file implements mapping reconstruction after power loss. NoFTL
// keeps the logical→physical mapping in DBMS memory; after a crash it
// must be rebuilt from flash itself. Because every database page carries
// its page id and PageLSN in the page header (and delta-records carry
// LSN updates), a full scan can re-derive the mapping: for every logical
// page the physical copy with the highest post-reconstruction LSN is the
// current one, older copies are garbage. This is the flash-native
// equivalent of an FTL rebuilding its tables from OOB metadata.
//
// Both entry points are recovery paths and expect a quiesced region: no
// concurrent writers, and background collectors either not yet started
// or idle (freshly created regions qualify — Adopt runs before any
// write has pulled the free pool below the soft watermark).

// PhysicalPage is one programmed page surfaced by ScanPhysical.
type PhysicalPage struct {
	PPN   flash.PPN
	Block int // global block id (lets callers skip whole blocks, e.g. PDL logs)
	Data  []byte
	OOB   []byte
}

// ScanPhysical visits every programmed (non-erased) physical page of the
// region in PPN order, calling fn until it returns false. The raw image
// is passed as stored — delta-records not applied; interpretation is the
// caller's job (it knows the page layout). Data and OOB buffers are
// reused across calls: fn must copy anything it wants to retain.
func (r *Region) ScanPhysical(w *sim.Worker, fn func(p PhysicalPage) bool) error {
	blocks := make([]int, 0, len(r.blockIndex))
	for id := range r.blockIndex {
		blocks = append(blocks, id)
	}
	sort.Ints(blocks)
	arr := r.dev.arr
	data := make([]byte, r.dev.geom.PageSize)
	oob := make([]byte, r.dev.geom.OOBSize)
	for _, b := range blocks {
		for slot := 0; slot < r.usablePagesPerBlock(); slot++ {
			ppn := r.pageSlotToPPN(b, slot)
			if arr.IsErased(ppn) {
				continue
			}
			if _, err := arr.ReadInto(w, ppn, data, oob); err != nil {
				return fmt.Errorf("noftl: scan ppn %d: %w", ppn, err)
			}
			if !fn(PhysicalPage{PPN: ppn, Block: b, Data: data, OOB: oob}) {
				return nil
			}
		}
	}
	return nil
}

// Adopt installs a mapping reconstructed by a scan, replacing the
// region's in-memory metadata: forward and reverse maps, per-block valid
// counts, write points (derived from the highest programmed page of each
// block), free pool and victim heaps. Physical copies not present in the
// mapping are garbage and will be reclaimed by the collector.
func (r *Region) Adopt(mapping map[core.PageID]flash.PPN) error {
	// Validate every target lies in this region.
	for id, ppn := range mapping {
		if r.blockIndex[r.dev.geom.BlockOf(ppn)] == nil {
			return fmt.Errorf("noftl: adopt page %d: ppn %d outside region %q", id, ppn, r.cfg.Name)
		}
	}
	if len(mapping) > r.logical {
		return fmt.Errorf("%w: adopting %d pages into capacity %d", ErrRegionFull, len(mapping), r.logical)
	}
	// Install the forward map.
	for i := range r.maps {
		ms := &r.maps[i]
		ms.mu.Lock()
		ms.m = make(map[core.PageID]flash.PPN)
		ms.mu.Unlock()
	}
	for id, ppn := range mapping {
		ms := r.mapShardOf(id)
		ms.mu.Lock()
		ms.m[id] = ppn
		ms.mu.Unlock()
	}
	r.mapped.Store(int64(len(mapping)))
	// Re-derive per-chip state from flash.
	arr := r.dev.arr
	usable := r.usablePagesPerBlock()
	for _, c := range r.chips {
		cs := r.byChip[c]
		cs.mu.Lock()
		cs.reverse = make(map[flash.PPN]core.PageID)
		cs.active = nil
		cs.migTarget = nil
		cs.exhausted = false
		cs.freePool.reset()
		cs.victims.reset()
		for _, bm := range cs.blocks {
			bm.valid = 0
			bm.active = false
			bm.free = false
			bm.collecting = false
			bm.freeIdx = -1
			bm.victIdx = -1
			bm.next = 0
			for slot := usable - 1; slot >= 0; slot-- {
				if !arr.IsErased(r.pageSlotToPPN(bm.id, slot)) {
					bm.next = slot + 1
					break
				}
			}
		}
		cs.mu.Unlock()
	}
	for id, ppn := range mapping {
		cs := r.chipOf(ppn)
		cs.mu.Lock()
		cs.reverse[ppn] = id
		r.blockIndex[r.dev.geom.BlockOf(ppn)].valid++
		cs.mu.Unlock()
	}
	// Rebuild the free pool, write points and victim heaps. A partially
	// filled block becomes the chip's write point so its remaining pages
	// are not stranded; everything else occupied is a victim candidate.
	for _, c := range r.chips {
		cs := r.byChip[c]
		cs.mu.Lock()
		for _, bm := range cs.blocks {
			switch {
			case bm.next == 0:
				cs.pushFree(bm, arr.EraseCount(bm.id))
			case bm.next < usable:
				if cur := cs.active; cur == nil || bm.next < cur.next {
					if cur != nil {
						cur.active = false
						cs.addVictim(cur)
					}
					bm.active = true
					cs.active = bm
				} else {
					cs.addVictim(bm)
				}
			default:
				cs.addVictim(bm)
			}
		}
		cs.mu.Unlock()
	}
	return nil
}
