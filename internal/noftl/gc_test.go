package noftl

import (
	"errors"
	"testing"

	"ipa/internal/core"
	"ipa/internal/flash"
)

func TestGCPolicyString(t *testing.T) {
	for p, want := range map[GCPolicy]string{GCForeground: "foreground", GCBackground: "background"} {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
	if GCPolicy(7).String() != "GCPolicy(7)" {
		t.Errorf("unknown policy string = %q", GCPolicy(7).String())
	}
}

// The free heap must pop blocks by (erase count, id) — the exact order
// the old linear scan selected — and keep freeIdx consistent.
func TestFreeHeapOrdering(t *testing.T) {
	cs := newChipState(0)
	erases := []uint32{3, 1, 1, 0, 2}
	for i, e := range erases {
		cs.pushFree(&blockMeta{id: i, freeIdx: -1, victIdx: -1}, e)
	}
	wantIDs := []int{3, 1, 2, 4, 0} // erase 0; erase 1 (id tie → 1 before 2); 2; 3
	for _, want := range wantIDs {
		bm := cs.popFree()
		if bm == nil || bm.id != want {
			t.Fatalf("popFree = %+v, want id %d", bm, want)
		}
		if bm.free || bm.freeIdx != -1 {
			t.Fatalf("popped block %d still marked free (idx %d)", bm.id, bm.freeIdx)
		}
	}
	if cs.popFree() != nil {
		t.Error("pop from empty heap returned a block")
	}
}

// The victim heap must track valid-count changes via fixVictim and keep
// the greedy minimum (fewest valid pages, ties by id) at the top.
func TestVictimHeapGreedySelection(t *testing.T) {
	cs := newChipState(0)
	blocks := make([]*blockMeta, 5)
	valids := []int{4, 2, 7, 2, 5}
	for i, v := range valids {
		blocks[i] = &blockMeta{id: i, valid: v, freeIdx: -1, victIdx: -1}
		cs.addVictim(blocks[i])
	}
	if top := cs.victims.peek(); top.id != 1 {
		t.Fatalf("peek = block %d, want 1 (valid 2, lowest id)", top.id)
	}
	// Invalidations reorder the heap.
	blocks[2].valid = 0
	cs.fixVictim(blocks[2])
	if top := cs.victims.peek(); top.id != 2 {
		t.Fatalf("after fix, peek = block %d, want 2 (valid 0)", top.id)
	}
	// Removal keeps the rest ordered.
	cs.removeVictim(blocks[2])
	if blocks[2].victIdx != -1 {
		t.Fatalf("removed block still has victIdx %d", blocks[2].victIdx)
	}
	order := []int{1, 3, 0, 4}
	for _, want := range order {
		got := cs.victims.pop()
		if got == nil || got.id != want {
			t.Fatalf("victim pop = %+v, want id %d", got, want)
		}
	}
}

// Background GC must reclaim space without the writer ever collecting
// inline: same churn as TestGarbageCollectionReclaimsSpace but with
// collector goroutines doing the work.
func TestBackgroundGCReclaimsSpace(t *testing.T) {
	dev := newDevice(t, flash.SLC, 2, 8, 8, 256)
	r, err := dev.CreateRegion(RegionConfig{
		Name: "d", Mode: ModeSLC, BlocksPerChip: 8, OverProvision: 0.3,
		GCReserve: 2, GCPolicy: GCBackground,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.GCPolicy() != GCBackground {
		t.Fatalf("GCPolicy = %v", r.GCPolicy())
	}
	capPages := r.LogicalCapacity()
	for i := 0; i < capPages; i++ {
		if err := r.Write(nil, core.PageID(i+1), pageOf(dev, byte(i)), nil); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	for round := 0; round < 10; round++ {
		for i := 0; i < capPages; i++ {
			if err := r.Write(nil, core.PageID(i+1), pageOf(dev, byte(round)), nil); err != nil {
				t.Fatalf("round %d page %d: %v", round, i, err)
			}
		}
	}
	s := r.Stats()
	if s.GCErases == 0 {
		t.Error("no GC erases after 10 overwrite rounds")
	}
	if s.BGErases == 0 || s.BGPageMigrations == 0 {
		t.Errorf("background collectors idle: %+v", s)
	}
	for i := 0; i < capPages; i++ {
		got, _, err := r.Read(nil, core.PageID(i+1))
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got[0] != 9 {
			t.Fatalf("page %d holds round %d, want 9", i, got[0])
		}
	}
}

// After Close the region must stay writable: allocation falls back to
// inline collection (foreground path) with no background counters moving.
func TestBackgroundGCCloseFallsBackInline(t *testing.T) {
	dev := newDevice(t, flash.SLC, 1, 8, 8, 256)
	r, err := dev.CreateRegion(RegionConfig{
		Name: "d", Mode: ModeSLC, BlocksPerChip: 8, OverProvision: 0.3,
		GCReserve: 2, GCPolicy: GCBackground,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close() // idempotent
	capPages := r.LogicalCapacity()
	for round := 0; round < 10; round++ {
		for i := 0; i < capPages; i++ {
			if err := r.Write(nil, core.PageID(i+1), pageOf(dev, byte(round)), nil); err != nil {
				t.Fatalf("round %d page %d: %v", round, i, err)
			}
		}
	}
	s := r.Stats()
	if s.GCErases == 0 {
		t.Error("no inline collection after Close")
	}
	if s.BGErases != 0 || s.BGPageMigrations != 0 {
		t.Errorf("background counters moved after Close: %+v", s)
	}
	dev.Close() // covers Device.Close over an already-closed region
}

// ErrNoSpace must still surface under background GC when the region is
// genuinely unreclaimable (every block fully valid).
func TestBackgroundGCExhaustion(t *testing.T) {
	dev := newDevice(t, flash.SLC, 1, 4, 4, 256)
	r, err := dev.CreateRegion(RegionConfig{
		Name: "d", Mode: ModeSLC, BlocksPerChip: 4, OverProvision: 0.05,
		GCReserve: 1, GCPolicy: GCBackground,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// OverProvision 0.05 → logical 15 of 16 physical pages. Filling all
	// 15 leaves one slot of slack: further *new* pages fail on capacity,
	// and enough churn of a full region must eventually hit ErrNoSpace
	// rather than deadlock the throttled writer.
	capPages := r.LogicalCapacity()
	var last error
	for i := 0; i < capPages; i++ {
		if last = r.Write(nil, core.PageID(i+1), pageOf(dev, 1), nil); last != nil {
			break
		}
	}
	for round := 0; last == nil && round < 8; round++ {
		for i := 0; i < capPages; i++ {
			if last = r.Write(nil, core.PageID(i+1), pageOf(dev, byte(round)), nil); last != nil {
				break
			}
		}
	}
	if last != nil && !errors.Is(last, ErrNoSpace) {
		t.Fatalf("expected ErrNoSpace or success, got %v", last)
	}
}

// Static wear leveling under background GC: cold data pinning low-wear
// blocks must still be evacuated (through the sharded free-pool heap)
// and survive intact.
func TestBackgroundWearLevelingEvacuatesCold(t *testing.T) {
	dev := newDevice(t, flash.SLC, 1, 24, 8, 256)
	r, err := dev.CreateRegion(RegionConfig{
		Name: "d", Mode: ModeSLC, BlocksPerChip: 24,
		OverProvision: 0.3, WearDelta: 3, GCPolicy: GCBackground,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	capPages := r.LogicalCapacity()
	for i := 0; i < capPages/2; i++ {
		if err := r.Write(nil, core.PageID(i+1), pageOf(dev, 1), nil); err != nil {
			t.Fatal(err)
		}
	}
	coldPPN := make(map[core.PageID]flash.PPN)
	for i := 0; i < capPages/2; i++ {
		coldPPN[core.PageID(i+1)] = mustPPN(t, r, core.PageID(i+1))
	}
	for round := 0; round < 60; round++ {
		for i := capPages / 2; i < capPages; i++ {
			if err := r.Write(nil, core.PageID(i+1), pageOf(dev, byte(round)), nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	r.Close() // quiesce collectors before asserting
	s := r.Stats()
	if s.WLMigrations == 0 || s.WLErases == 0 {
		t.Fatalf("wear leveler never ran: %+v", s)
	}
	moved := 0
	for i := 0; i < capPages/2; i++ {
		id := core.PageID(i + 1)
		got, _, err := r.Read(nil, id)
		if err != nil || got[0] != 1 {
			t.Fatalf("cold page %d corrupted: %v", id, err)
		}
		if mustPPN(t, r, id) != coldPPN[id] {
			moved++
		}
	}
	if moved == 0 {
		t.Error("no cold page was relocated by the wear leveler")
	}
}

// Rebuild must work on the sharded layout: Adopt a scanned mapping and
// read everything back.
func TestAdoptRebuildsShardedState(t *testing.T) {
	dev := newDevice(t, flash.SLC, 2, 8, 8, 256)
	r, err := dev.CreateRegion(RegionConfig{
		Name: "d", Mode: ModeSLC, BlocksPerChip: 8, OverProvision: 0.3, GCReserve: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	capPages := r.LogicalCapacity()
	for round := 0; round < 6; round++ {
		for i := 0; i < capPages; i++ {
			if err := r.Write(nil, core.PageID(i+1), pageOf(dev, byte(round)), nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	mapping := make(map[core.PageID]flash.PPN, capPages)
	for i := 0; i < capPages; i++ {
		id := core.PageID(i + 1)
		mapping[id] = mustPPN(t, r, id)
	}
	if err := r.Adopt(mapping); err != nil {
		t.Fatal(err)
	}
	if r.MappedPages() != capPages {
		t.Fatalf("MappedPages = %d, want %d", r.MappedPages(), capPages)
	}
	for i := 0; i < capPages; i++ {
		got, _, err := r.Read(nil, core.PageID(i+1))
		if err != nil || got[0] != 5 {
			t.Fatalf("post-adopt read %d: %v (fill %d)", i, err, got[0])
		}
	}
	// The adopted region must keep collecting: more churn after rebuild.
	for round := 0; round < 6; round++ {
		for i := 0; i < capPages; i++ {
			if err := r.Write(nil, core.PageID(i+1), pageOf(dev, byte(round)), nil); err != nil {
				t.Fatalf("post-adopt churn: %v", err)
			}
		}
	}
	got, _, err := r.Read(nil, 1)
	if err != nil || got[0] != 5 {
		t.Fatalf("post-adopt churn read: %v", err)
	}
}
