package noftl

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"ipa/internal/core"
	"ipa/internal/flash"
	"ipa/internal/sim"
)

// Page-Differential Logging (Kim, Whang & Song): instead of rewriting a
// whole page per flush, only the differential between the flushed and
// the current image is written — out of place, into dedicated log blocks
// the DiffLog claims from the region's free pool. A logical read merges
// the base page with its outstanding differentials; space is reclaimed
// by merging a victim log block's pages back into full base images
// (cost-benefit victim choice) and erasing it.
//
// On-flash format. A log block's first page opens with a 16-byte block
// header (8-byte ASCII magic "PDLLOG01" + big-endian allocation
// sequence); records follow, packed back to back across the block's LSB
// pages in ascending slot order:
//
//	marker 0xD7 | pageID u64 | pageLSN u64 | nruns u16 |
//	    nruns × { off u16 | len u16 | len bytes }
//
// Integers are big-endian. A page's unwritten tail stays erased (0xFF),
// so parsing stops at the first non-marker byte. Each record batch is a
// single ProgramDelta into still-erased bytes — a legal initial partial
// program — which keeps log pages inside the programmed population that
// crash-recovery scans and at most MaxAppends batches land on one page.
//
// Locking: dl.mu serialises every DiffLog mutation and nests OUTSIDE
// chip locks and map shards (dl.mu → cs.mu → mapShard.mu), matching the
// region's internal order. Claimed log blocks are parked `collecting`
// with valid=0 so the garbage collector and wear leveler never see
// them. The read-merge path (ApplyTo) only snapshots under dl.mu and
// performs its log-page reads unlocked; it — like the engine's Fetch,
// which reads the base page without dl.mu — relies on the epoch counter
// to detect an interleaved merge and retry.

var pdlMagic = []byte("PDLLOG01")

const (
	pdlHeaderSize = 16 // magic (8) + block allocation sequence (8)
	pdlRecMarker  = 0xD7
	pdlRecHeader  = 1 + 8 + 8 + 2 // marker + pageID + LSN + nruns
	pdlRunHeader  = 2 + 2         // off + len
)

var (
	// ErrPDLRecordTooLarge reports a differential over the per-record
	// size budget; the caller should fall back to an out-of-place write.
	ErrPDLRecordTooLarge = errors.New("noftl: pdl record exceeds size budget")
	// ErrPDLNoSpace reports that no log block can accept the record even
	// after merging — the region's free pool is at its reserve.
	ErrPDLNoSpace = errors.New("noftl: pdl log blocks exhausted")
)

// IsPDLPage reports whether a raw physical page image is the first page
// of a PDL log block (recovery scans use this to keep log records out of
// the page-mapping reconstruction).
func IsPDLPage(data []byte) bool {
	return len(data) >= len(pdlMagic) && bytes.Equal(data[:len(pdlMagic)], pdlMagic)
}

// PDLConfig tunes a DiffLog. The zero value is usable.
type PDLConfig struct {
	// MaxBlocksPerChip caps the log blocks claimed per chip (<=0: 4).
	MaxBlocksPerChip int
	// MaxRecordFraction caps one record at this fraction of a page
	// (<=0: 0.25). Larger differentials are rejected with
	// ErrPDLRecordTooLarge so the caller rewrites the page instead.
	MaxRecordFraction float64
	// EncodeOOB, when set, produces the spare-area bytes for a merged
	// base image before it is rewritten (the engine hooks its ECC here).
	// The returned slice is used immediately and may be reused.
	EncodeOOB func(data []byte) []byte
}

func (c PDLConfig) maxBlocksPerChip() int {
	if c.MaxBlocksPerChip <= 0 {
		return 4
	}
	return c.MaxBlocksPerChip
}

// PDLStats are the DiffLog's counters.
type PDLStats struct {
	Appends     uint64 // differential records written
	AppendBytes uint64 // record bytes written (headers included)
	Applies     uint64 // merge-on-read invocations that applied records
	Merges      uint64 // log blocks reclaimed
	MergedPages uint64 // base pages rewritten by merges
	Invalidated uint64 // pages whose differentials were discarded
	Rebuilds    uint64 // crash-recovery rebuilds

	LogBlocks int // log blocks currently claimed
	LiveBytes int // record bytes still needed on read
	DeadBytes int // record bytes superseded or invalidated
}

// diffRef locates one live record on flash.
type diffRef struct {
	ppn  flash.PPN
	off  int // record start within the page
	size int // encoded record size
	lsn  core.LSN
	seq  uint64 // global append order (monotone)
}

// logBlock is one claimed erase unit holding records.
type logBlock struct {
	bm       *blockMeta
	chip     int
	seq      uint64 // allocation sequence from the block header
	nextSlot int    // page slot being filled
	pageOff  int    // next write offset within that slot
	live     int    // bytes of records still referenced
	dead     int    // bytes of records dropped or superseded
	full     bool   // sealed: no further appends (rebuilt blocks)
}

type pdlChip struct {
	chip   int
	blocks []*logBlock
	cur    *logBlock // block accepting appends, nil before first open
}

// DiffLog implements Page-Differential Logging on top of a region.
// Methods are safe for concurrent use.
type DiffLog struct {
	r   *Region
	cfg PDLConfig

	mu       sync.Mutex
	seq      uint64 // record append counter
	blockSeq uint64 // block allocation counter
	chips    map[int]*pdlChip
	byBlock  map[int]*logBlock
	refs     map[core.PageID][]diffRef
	rr       int // round-robin cursor into r.chips

	epoch atomic.Uint64 // bumped per merge; readers retry on change

	encBuf  []byte // record encode scratch
	scratch []byte // log-page read scratch (under dl.mu)
	pageBuf []byte // base-page merge scratch

	// readBufs recycles per-call log-page buffers for ApplyTo, which
	// reads flash outside dl.mu and so cannot share dl.scratch.
	readBufs sync.Pool

	stats PDLStats
}

// NewDiffLog attaches a differential log to the region. The region must
// have been created with StoragePDL (a disabled IPA scheme): merges
// rewrite raw base images, which an IPA layout's stale delta slots would
// corrupt on reconstruct.
func NewDiffLog(r *Region, cfg PDLConfig) (*DiffLog, error) {
	if !r.cfg.Scheme.Disabled() || r.cfg.Mode != ModeNone {
		return nil, fmt.Errorf("noftl: region %q: diff log requires a disabled IPA scheme", r.cfg.Name)
	}
	ps := r.PageSize()
	dl := &DiffLog{
		r:       r,
		cfg:     cfg,
		chips:   make(map[int]*pdlChip),
		byBlock: make(map[int]*logBlock),
		refs:    make(map[core.PageID][]diffRef),
		encBuf:  make([]byte, 0, ps),
		scratch: make([]byte, ps),
		pageBuf: make([]byte, ps),
	}
	dl.readBufs.New = func() any {
		b := make([]byte, ps)
		return &b
	}
	return dl, nil
}

// maxRecordBytes is the per-record budget: a fraction of the page,
// never more than fits on a page beside the block header.
func (dl *DiffLog) maxRecordBytes() int {
	ps := dl.r.PageSize()
	frac := dl.cfg.MaxRecordFraction
	if frac <= 0 {
		frac = 0.25
	}
	n := int(float64(ps) * frac)
	if max := ps - pdlHeaderSize; n > max {
		n = max
	}
	return n
}

// Epoch returns the merge epoch. A reader that snapshots the epoch,
// reads the base page, applies records with ApplyTo and observes an
// unchanged epoch is guaranteed a consistent logical image; on a change
// it must retry (a merge folded records into the base underneath it).
func (dl *DiffLog) Epoch() uint64 { return dl.epoch.Load() }

// Append encodes the differential as one record and writes it to a log
// block. ErrPDLRecordTooLarge and ErrPDLNoSpace mean "rewrite the page
// out of place instead"; any other error is a device fault.
func (dl *DiffLog) Append(w *sim.Worker, id core.PageID, lsn core.LSN, cs *core.ChangeSet) error {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	rec := dl.encodeRecord(id, lsn, cs)
	if len(rec) > dl.maxRecordBytes() {
		return fmt.Errorf("%w: %d bytes, budget %d", ErrPDLRecordTooLarge, len(rec), dl.maxRecordBytes())
	}
	ppn, off, err := dl.appendLocked(w, rec)
	if errors.Is(err, ErrPDLNoSpace) {
		// Merge the best victim log block back into base pages and retry
		// once with the space it released.
		if merr := dl.mergeReclaimLocked(w); merr != nil {
			return err
		}
		ppn, off, err = dl.appendLocked(w, rec)
	}
	if err != nil {
		return err
	}
	dl.seq++
	dl.refs[id] = append(dl.refs[id], diffRef{ppn: ppn, off: off, size: len(rec), lsn: lsn, seq: dl.seq})
	dl.stats.Appends++
	dl.stats.AppendBytes += uint64(len(rec))
	return nil
}

// encodeRecord serialises the changeset into dl.encBuf. Body and Meta
// pairs (each sorted by offset) are merged and coalesced into runs of
// consecutive offsets; the two lists never overlap, so a plain two-way
// merge yields strictly ascending offsets.
func (dl *DiffLog) encodeRecord(id core.PageID, lsn core.LSN, cs *core.ChangeSet) []byte {
	buf := append(dl.encBuf[:0], pdlRecMarker)
	buf = binary.BigEndian.AppendUint64(buf, uint64(id))
	buf = binary.BigEndian.AppendUint64(buf, uint64(lsn))
	nrunsAt := len(buf)
	buf = append(buf, 0, 0) // nruns back-patched below
	var nruns uint16
	runStart, runLen := -1, 0
	b, m := cs.Body, cs.Meta
	i, j := 0, 0
	for i < len(b) || j < len(m) {
		var p core.Pair
		if j >= len(m) || (i < len(b) && b[i].Off < m[j].Off) {
			p = b[i]
			i++
		} else {
			p = m[j]
			j++
		}
		if runStart >= 0 && int(p.Off) == runStart+runLen {
			buf = append(buf, p.Val)
			runLen++
			binary.BigEndian.PutUint16(buf[len(buf)-runLen-2:], uint16(runLen))
			continue
		}
		// open a new run
		runStart, runLen = int(p.Off), 1
		nruns++
		buf = binary.BigEndian.AppendUint16(buf, p.Off)
		buf = binary.BigEndian.AppendUint16(buf, 1)
		buf = append(buf, p.Val)
	}
	binary.BigEndian.PutUint16(buf[nrunsAt:], nruns)
	dl.encBuf = buf
	return buf
}

// appendLocked places the record on some chip's current log block,
// trying chips round-robin (one full lap) before giving up.
func (dl *DiffLog) appendLocked(w *sim.Worker, rec []byte) (flash.PPN, int, error) {
	chips := dl.r.chips
	var firstErr error
	for lap := 0; lap < len(chips); lap++ {
		c := chips[(dl.rr+lap)%len(chips)]
		ppn, off, err := dl.appendChipLocked(w, c, rec)
		if err == nil {
			dl.rr = (dl.rr + lap + 1) % len(chips)
			return ppn, off, nil
		}
		if !errors.Is(err, ErrPDLNoSpace) {
			return 0, 0, err
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return 0, 0, firstErr
}

func (dl *DiffLog) chipFor(c int) *pdlChip {
	pc := dl.chips[c]
	if pc == nil {
		pc = &pdlChip{chip: c}
		dl.chips[c] = pc
	}
	return pc
}

func (dl *DiffLog) appendChipLocked(w *sim.Worker, c int, rec []byte) (flash.PPN, int, error) {
	pc := dl.chipFor(c)
	arr := dl.r.dev.arr
	geom := dl.r.dev.geom
	ps := geom.PageSize
	usable := dl.r.usablePagesPerBlock()
	for {
		lb := pc.cur
		if lb == nil {
			var err error
			if lb, err = dl.openBlockLocked(pc); err != nil {
				return 0, 0, err
			}
		}
		for lb.nextSlot < usable {
			ppn := dl.r.pageSlotToPPN(lb.bm.id, lb.nextSlot)
			if !geom.IsLSB(ppn) {
				// ProgramDelta refuses MSB pages; skip the slot.
				lb.nextSlot++
				lb.pageOff = 0
				continue
			}
			need := len(rec)
			woff := lb.pageOff
			var wbuf []byte
			if lb.nextSlot == 0 && woff == pdlHeaderSize {
				// First write of the block: the header rides along in the
				// same partial program so the magic is never missing from
				// a block that holds records.
				hdr := append(make([]byte, 0, pdlHeaderSize+len(rec)), pdlMagic...)
				hdr = binary.BigEndian.AppendUint64(hdr, lb.seq)
				wbuf = append(hdr, rec...)
				woff = 0
			} else {
				wbuf = rec
			}
			if lb.pageOff+need > ps || arr.Appends(ppn) >= arr.MaxAppends() {
				lb.nextSlot++
				lb.pageOff = 0
				continue
			}
			lat, err := arr.ProgramDelta(w, ppn, woff, wbuf, 0, nil)
			if err != nil {
				return 0, 0, fmt.Errorf("noftl: pdl append block %d: %w", lb.bm.id, err)
			}
			recOff := woff + (len(wbuf) - len(rec))
			lb.pageOff = recOff + len(rec)
			lb.live += len(rec)
			cs := dl.r.byChip[c]
			cs.mu.Lock()
			cs.stats.DeltaWrites++
			cs.stats.DeltaTime += lat
			cs.mu.Unlock()
			return ppn, recOff, nil
		}
		lb.full = true
		pc.cur = nil
	}
}

// openBlockLocked claims a free block from the chip's pool as a new log
// block. The block is parked `collecting` with valid=0, which makes it
// invisible to the garbage collector and the wear leveler.
func (dl *DiffLog) openBlockLocked(pc *pdlChip) (*logBlock, error) {
	if len(pc.blocks) >= dl.cfg.maxBlocksPerChip() {
		return nil, fmt.Errorf("%w: chip %d at %d log blocks", ErrPDLNoSpace, pc.chip, len(pc.blocks))
	}
	cs := dl.r.byChip[pc.chip]
	cs.mu.Lock()
	if cs.freeLen() <= dl.r.cfg.gcReserve() {
		cs.mu.Unlock()
		return nil, fmt.Errorf("%w: chip %d free pool at reserve", ErrPDLNoSpace, pc.chip)
	}
	bm := cs.popFree()
	bm.collecting = true
	bm.valid = 0
	bm.next = 0
	cs.mu.Unlock()
	dl.blockSeq++
	lb := &logBlock{bm: bm, chip: pc.chip, seq: dl.blockSeq, pageOff: pdlHeaderSize}
	pc.blocks = append(pc.blocks, lb)
	pc.cur = lb
	dl.byBlock[bm.id] = lb
	return lb, nil
}

// ApplyTo merges the page's outstanding differentials (oldest first)
// into buf, which must hold the base image. Returns the number of bytes
// applied. A page with no differentials costs one map lookup.
//
// The flash reads run OUTSIDE dl.mu — a log-page fetch is the expensive
// part of a merge-on-read, and holding the lock across it would stall
// every concurrent append behind every reader. The ref list is borrowed
// under a brief dl.mu hold: existing elements are never mutated in
// place (Append only extends past the borrowed length, merges drop the
// whole map entry, Rebuild runs on a quiesced region), so reading the
// snapshot unlocked is race-free. A merge that interleaves can still
// erase or recycle a snapshotted log page underneath us; the epoch
// check turns the resulting parse failure — or a silently inconsistent
// image — into a clean return, and the caller's epoch loop
// (PageStore.Fetch) re-reads the base and retries, per the Epoch
// contract.
func (dl *DiffLog) ApplyTo(w *sim.Worker, id core.PageID, buf []byte) (int, error) {
	dl.mu.Lock()
	e0 := dl.epoch.Load()
	refs := dl.refs[id]
	dl.mu.Unlock()
	if len(refs) == 0 {
		return 0, nil
	}
	sp := dl.readBufs.Get().(*[]byte)
	defer dl.readBufs.Put(sp)
	scratch := *sp
	arr := dl.r.dev.arr
	applied := 0
	var cur flash.PPN
	loaded := false
	for _, ref := range refs {
		if !loaded || ref.ppn != cur {
			if _, err := arr.ReadInto(w, ref.ppn, scratch, nil); err != nil {
				if dl.epoch.Load() != e0 {
					return applied, nil // merge interleaved; caller retries
				}
				return applied, fmt.Errorf("noftl: pdl read log page %d: %w", ref.ppn, err)
			}
			cur, loaded = ref.ppn, true
		}
		n, err := applyRecord(scratch[ref.off:ref.off+ref.size], buf)
		if err != nil {
			if dl.epoch.Load() != e0 {
				return applied, nil // merge interleaved; caller retries
			}
			return applied, fmt.Errorf("noftl: pdl apply page %d: %w", id, err)
		}
		applied += n
	}
	dl.mu.Lock()
	dl.stats.Applies++
	dl.mu.Unlock()
	return applied, nil
}

func (dl *DiffLog) applyLocked(w *sim.Worker, id core.PageID, buf []byte) (int, error) {
	refs := dl.refs[id]
	if len(refs) == 0 {
		return 0, nil
	}
	arr := dl.r.dev.arr
	applied := 0
	var cur flash.PPN
	loaded := false
	for _, ref := range refs {
		if !loaded || ref.ppn != cur {
			if _, err := arr.ReadInto(w, ref.ppn, dl.scratch, nil); err != nil {
				return applied, fmt.Errorf("noftl: pdl read log page %d: %w", ref.ppn, err)
			}
			cur, loaded = ref.ppn, true
		}
		n, err := applyRecord(dl.scratch[ref.off:ref.off+ref.size], buf)
		if err != nil {
			return applied, fmt.Errorf("noftl: pdl apply page %d: %w", id, err)
		}
		applied += n
	}
	dl.stats.Applies++
	return applied, nil
}

// applyRecord replays one encoded record onto the page image.
func applyRecord(rec, page []byte) (int, error) {
	if len(rec) < pdlRecHeader || rec[0] != pdlRecMarker {
		return 0, fmt.Errorf("bad record header")
	}
	nruns := int(binary.BigEndian.Uint16(rec[17:]))
	p := pdlRecHeader
	applied := 0
	for i := 0; i < nruns; i++ {
		if p+pdlRunHeader > len(rec) {
			return applied, fmt.Errorf("truncated run header")
		}
		off := int(binary.BigEndian.Uint16(rec[p:]))
		n := int(binary.BigEndian.Uint16(rec[p+2:]))
		p += pdlRunHeader
		if p+n > len(rec) || off+n > len(page) {
			return applied, fmt.Errorf("run out of bounds")
		}
		copy(page[off:], rec[p:p+n])
		p += n
		applied += n
	}
	return applied, nil
}

// Invalidate discards the page's differentials (the base image was
// rewritten, or the page freed). Their bytes turn dead, raising their
// blocks' merge priority.
func (dl *DiffLog) Invalidate(id core.PageID) {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	dl.invalidateLocked(id)
}

func (dl *DiffLog) invalidateLocked(id core.PageID) {
	refs := dl.refs[id]
	if len(refs) == 0 {
		return
	}
	for _, ref := range refs {
		if lb := dl.byBlock[dl.r.dev.geom.BlockOf(ref.ppn)]; lb != nil {
			lb.live -= ref.size
			lb.dead += ref.size
		}
	}
	delete(dl.refs, id)
	dl.stats.Invalidated++
}

// mergeReclaimLocked reclaims the best victim log block, or returns
// ErrPDLNoSpace when there is none.
func (dl *DiffLog) mergeReclaimLocked(w *sim.Worker) error {
	lb := dl.pickMergeVictimLocked()
	if lb == nil {
		return ErrPDLNoSpace
	}
	return dl.mergeBlockLocked(w, lb)
}

// pickMergeVictimLocked scores log blocks cost-benefit style: u is the
// live fraction of the block's record bytes, and a block with no live
// bytes is free to reclaim (infinite benefit, modelled by picking it
// outright). Ties break on the oldest allocation. Returns nil when no
// block is claimed.
func (dl *DiffLog) pickMergeVictimLocked() *logBlock {
	var best *logBlock
	var bestScore float64
	for _, c := range dl.r.chips {
		pc := dl.chips[c]
		if pc == nil {
			continue
		}
		for _, lb := range pc.blocks {
			if !lb.full && lb.live == 0 && lb.dead == 0 {
				continue // freshly opened, nothing to reclaim
			}
			if lb.live == 0 {
				return lb // pure garbage: erase without any merge I/O
			}
			u := float64(lb.live) / float64(lb.live+lb.dead)
			score := (1 - u) / (2 * u)
			if best == nil || score > bestScore || (score == bestScore && lb.seq < best.seq) {
				best, bestScore = lb, score
			}
		}
	}
	return best
}

// mergeBlockLocked folds every page that has a record in the victim
// back into a full base image (applying ALL of the page's outstanding
// records — record order spans blocks, so partial folding would
// misorder overlapping runs), rewrites it out of place, drops the
// records and erases the victim.
func (dl *DiffLog) mergeBlockLocked(w *sim.Worker, victim *logBlock) error {
	var ids []core.PageID
	for id, refs := range dl.refs {
		for _, ref := range refs {
			if dl.r.dev.geom.BlockOf(ref.ppn) == victim.bm.id {
				ids = append(ids, id)
				break
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if !dl.r.Contains(id) {
			dl.invalidateLocked(id)
			continue
		}
		if err := dl.r.ReadInto(w, id, dl.pageBuf, nil); err != nil {
			return fmt.Errorf("noftl: pdl merge read page %d: %w", id, err)
		}
		if _, err := dl.applyLocked(w, id, dl.pageBuf); err != nil {
			return err
		}
		var oob []byte
		if dl.cfg.EncodeOOB != nil {
			oob = dl.cfg.EncodeOOB(dl.pageBuf)
		}
		if err := dl.r.Write(w, id, dl.pageBuf, oob); err != nil {
			return fmt.Errorf("noftl: pdl merge write page %d: %w", id, err)
		}
		dl.invalidateLocked(id)
		dl.stats.MergedPages++
	}
	if err := dl.releaseBlockLocked(w, victim); err != nil {
		return err
	}
	dl.stats.Merges++
	dl.epoch.Add(1)
	return nil
}

// releaseBlockLocked erases the victim and returns it to the chip's
// free pool.
func (dl *DiffLog) releaseBlockLocked(w *sim.Worker, victim *logBlock) error {
	arr := dl.r.dev.arr
	if _, err := arr.Erase(w, victim.bm.id); err != nil && !errors.Is(err, flash.ErrWornOut) {
		return fmt.Errorf("noftl: pdl erase block %d: %w", victim.bm.id, err)
	}
	cs := dl.r.byChip[victim.chip]
	cs.mu.Lock()
	victim.bm.collecting = false
	victim.bm.valid = 0
	victim.bm.next = 0
	cs.pushFree(victim.bm, arr.EraseCount(victim.bm.id))
	cs.exhausted = false
	cs.mu.Unlock()
	delete(dl.byBlock, victim.bm.id)
	pc := dl.chips[victim.chip]
	for i, lb := range pc.blocks {
		if lb == victim {
			pc.blocks = append(pc.blocks[:i], pc.blocks[i+1:]...)
			break
		}
	}
	if pc.cur == victim {
		pc.cur = nil
	}
	return nil
}

// MergeAll folds every outstanding differential into its base page and
// releases all log blocks (used when a region switches storage scheme).
func (dl *DiffLog) MergeAll(w *sim.Worker) error {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	for {
		lb := dl.pickMergeVictimLocked()
		if lb == nil {
			return nil
		}
		if err := dl.mergeBlockLocked(w, lb); err != nil {
			return err
		}
	}
}

// Stats returns a snapshot of the DiffLog counters.
func (dl *DiffLog) Stats() PDLStats {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	s := dl.stats
	s.LogBlocks, s.LiveBytes, s.DeadBytes = 0, 0, 0
	for _, pc := range dl.chips {
		for _, lb := range pc.blocks {
			s.LogBlocks++
			s.LiveBytes += lb.live
			s.DeadBytes += lb.dead
		}
	}
	return s
}

// Rebuild re-derives the DiffLog state from flash after a crash. It
// must run after Region.Adopt (which classifies every block from the
// physical state): blocks whose first page carries the PDL magic are
// re-claimed from the region's bookkeeping, their records re-parsed,
// and a record kept iff its page is still mapped and its LSN is newer
// than the adopted base image's (baseLSN). All rebuilt blocks are
// sealed — appends go to freshly claimed blocks — so a half-programmed
// tail page can never be appended past twice. Returns the number of
// live records. Recovery-path only: expects a quiesced region.
func (dl *DiffLog) Rebuild(w *sim.Worker, baseLSN map[core.PageID]core.LSN) (int, error) {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	dl.chips = make(map[int]*pdlChip)
	dl.byBlock = make(map[int]*logBlock)
	dl.refs = make(map[core.PageID][]diffRef)
	dl.seq = 0
	dl.blockSeq = 0

	arr := dl.r.dev.arr
	geom := dl.r.dev.geom
	usable := dl.r.usablePagesPerBlock()
	blocks := make([]int, 0, len(dl.r.blockIndex))
	for id := range dl.r.blockIndex {
		blocks = append(blocks, id)
	}
	sort.Ints(blocks)
	live := 0
	for _, b := range blocks {
		first := dl.r.pageSlotToPPN(b, 0)
		if arr.IsErased(first) {
			continue
		}
		if _, err := arr.ReadInto(w, first, dl.scratch, nil); err != nil {
			return live, fmt.Errorf("noftl: pdl rebuild read block %d: %w", b, err)
		}
		if !IsPDLPage(dl.scratch) {
			continue
		}
		bm := dl.r.blockIndex[b]
		seq := binary.BigEndian.Uint64(dl.scratch[len(pdlMagic):])
		lb := &logBlock{bm: bm, chip: bm.chip, seq: seq, full: true}
		// Re-claim the block from the region: Adopt saw a programmed,
		// unmapped block and classified it active or victim; park it
		// `collecting` again so the collector never evacuates it.
		cs := dl.r.byChip[bm.chip]
		cs.mu.Lock()
		if bm.active {
			bm.active = false
			cs.active = nil
		}
		cs.removeVictim(bm)
		bm.collecting = true
		bm.valid = 0
		cs.mu.Unlock()
		if seq > dl.blockSeq {
			dl.blockSeq = seq
		}
		pc := dl.chipFor(bm.chip)
		pc.blocks = append(pc.blocks, lb)
		dl.byBlock[b] = lb
		n, err := dl.rebuildBlockLocked(w, lb, baseLSN, usable, geom)
		if err != nil {
			return live, err
		}
		live += n
	}
	// Record order within a page must be replay order. Blocks were
	// scanned in id order, not allocation order, so re-sort by LSN (the
	// PageLSN advances on every flush, making it a total order per page)
	// and renumber.
	for id, refs := range dl.refs {
		sort.Slice(refs, func(i, j int) bool { return refs[i].lsn < refs[j].lsn })
		for i := range refs {
			dl.seq++
			refs[i].seq = dl.seq
		}
		dl.refs[id] = refs
	}
	dl.stats.Rebuilds++
	dl.epoch.Add(1)
	return live, nil
}

// rebuildBlockLocked parses one log block's records, keeping those
// still needed (page mapped, LSN newer than the base image).
func (dl *DiffLog) rebuildBlockLocked(w *sim.Worker, lb *logBlock, baseLSN map[core.PageID]core.LSN, usable int, geom flash.Geometry) (int, error) {
	arr := dl.r.dev.arr
	live := 0
	for slot := 0; slot < usable; slot++ {
		ppn := dl.r.pageSlotToPPN(lb.bm.id, slot)
		if !geom.IsLSB(ppn) {
			continue
		}
		if arr.IsErased(ppn) {
			break // records fill slots in ascending order
		}
		if _, err := arr.ReadInto(w, ppn, dl.scratch, nil); err != nil {
			return live, fmt.Errorf("noftl: pdl rebuild read ppn %d: %w", ppn, err)
		}
		off := 0
		if slot == 0 {
			off = pdlHeaderSize
		}
		for off < len(dl.scratch) && dl.scratch[off] == pdlRecMarker {
			id, lsn, size, err := parseRecord(dl.scratch[off:])
			if err != nil {
				return live, fmt.Errorf("noftl: pdl rebuild block %d ppn %d off %d: %w", lb.bm.id, ppn, off, err)
			}
			base, mapped := baseLSN[id]
			if mapped && lsn > base {
				dl.refs[id] = append(dl.refs[id], diffRef{ppn: ppn, off: off, size: size, lsn: lsn})
				lb.live += size
				live++
			} else {
				lb.dead += size
			}
			off += size
		}
	}
	return live, nil
}

// parseRecord validates one encoded record and returns its page id,
// LSN and total encoded size.
func parseRecord(rec []byte) (core.PageID, core.LSN, int, error) {
	if len(rec) < pdlRecHeader || rec[0] != pdlRecMarker {
		return 0, 0, 0, fmt.Errorf("bad record header")
	}
	id := core.PageID(binary.BigEndian.Uint64(rec[1:]))
	lsn := core.LSN(binary.BigEndian.Uint64(rec[9:]))
	nruns := int(binary.BigEndian.Uint16(rec[17:]))
	p := pdlRecHeader
	for i := 0; i < nruns; i++ {
		if p+pdlRunHeader > len(rec) {
			return 0, 0, 0, fmt.Errorf("truncated run header")
		}
		n := int(binary.BigEndian.Uint16(rec[p+2:]))
		p += pdlRunHeader + n
		if p > len(rec) {
			return 0, 0, 0, fmt.Errorf("truncated run")
		}
	}
	return id, lsn, p, nil
}
