package noftl

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"ipa/internal/core"
	"ipa/internal/flash"
)

func newPDLRegion(t testing.TB, blocksPerChip int, cfg PDLConfig) (*Region, *DiffLog) {
	t.Helper()
	dev := newDevice(t, flash.SLC, 2, 16, 8, 256)
	r, err := dev.CreateRegion(RegionConfig{
		Name: "pdl", Mode: ModeNone, Storage: StoragePDL,
		BlocksPerChip: blocksPerChip, OverProvision: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	dl, err := NewDiffLog(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r, dl
}

func csOf(pairs ...core.Pair) *core.ChangeSet {
	return &core.ChangeSet{Body: pairs}
}

func TestRegionConfigValidate(t *testing.T) {
	ok := RegionConfig{Name: "r", BlocksPerChip: 2}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []RegionConfig{
		{Name: "r", Storage: StoragePDL, Scheme: core.NewScheme(2, 3)},
		{Name: "r", Storage: StorageOOP, Scheme: core.NewScheme(2, 3)},
		{Name: "r", Storage: StoragePDL, Mode: ModeSLC},
		{Name: "r", Storage: Storage(9)},
		{Name: "r", GCVictim: GCVictim(9)},
	}
	for i, rc := range bad {
		if err := rc.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestPDLAppendApplyRoundTrip(t *testing.T) {
	r, dl := newPDLRegion(t, 12, PDLConfig{})
	base := pageOf(r.dev, 0x11)
	if err := r.Write(nil, 7, base, nil); err != nil {
		t.Fatal(err)
	}
	// Two differentials; the second overlaps the first.
	if err := dl.Append(nil, 7, 100, csOf(core.Pair{Off: 20, Val: 0xAA}, core.Pair{Off: 21, Val: 0xBB})); err != nil {
		t.Fatal(err)
	}
	if err := dl.Append(nil, 7, 101, csOf(core.Pair{Off: 21, Val: 0xCC}, core.Pair{Off: 40, Val: 0x01})); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, r.PageSize())
	if err := r.ReadInto(nil, 7, buf, nil); err != nil {
		t.Fatal(err)
	}
	n, err := dl.ApplyTo(nil, 7, buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("applied %d bytes, want 4", n)
	}
	if buf[20] != 0xAA || buf[21] != 0xCC || buf[40] != 0x01 {
		t.Errorf("merge wrong: %#x %#x %#x", buf[20], buf[21], buf[40])
	}
	if !bytes.Equal(buf[:16], base[:16]) {
		t.Error("base bytes disturbed")
	}
	st := dl.Stats()
	if st.Appends != 2 || st.LogBlocks == 0 || st.LiveBytes == 0 {
		t.Errorf("stats: %+v", st)
	}
}

func TestPDLRecordTooLarge(t *testing.T) {
	_, dl := newPDLRegion(t, 12, PDLConfig{MaxRecordFraction: 0.1})
	var pairs []core.Pair
	for i := 0; i < 64; i++ { // 64 single-byte runs ≫ 25-byte budget
		pairs = append(pairs, core.Pair{Off: uint16(i * 2), Val: 0x00})
	}
	if err := dl.Append(nil, 1, 1, csOf(pairs...)); !errors.Is(err, ErrPDLRecordTooLarge) {
		t.Errorf("oversized record: %v, want ErrPDLRecordTooLarge", err)
	}
}

func TestPDLInvalidate(t *testing.T) {
	r, dl := newPDLRegion(t, 12, PDLConfig{})
	if err := r.Write(nil, 3, pageOf(r.dev, 0x22), nil); err != nil {
		t.Fatal(err)
	}
	if err := dl.Append(nil, 3, 10, csOf(core.Pair{Off: 30, Val: 0x00})); err != nil {
		t.Fatal(err)
	}
	dl.Invalidate(3)
	buf := make([]byte, r.PageSize())
	if err := r.ReadInto(nil, 3, buf, nil); err != nil {
		t.Fatal(err)
	}
	n, err := dl.ApplyTo(nil, 3, buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("applied %d bytes after invalidate", n)
	}
	st := dl.Stats()
	if st.LiveBytes != 0 || st.DeadBytes == 0 || st.Invalidated != 1 {
		t.Errorf("stats after invalidate: %+v", st)
	}
}

func TestPDLMergeAll(t *testing.T) {
	r, dl := newPDLRegion(t, 12, PDLConfig{})
	for id := core.PageID(1); id <= 4; id++ {
		if err := r.Write(nil, id, pageOf(r.dev, byte(id)), nil); err != nil {
			t.Fatal(err)
		}
		if err := dl.Append(nil, id, core.LSN(id)*10, csOf(core.Pair{Off: 50, Val: byte(id)})); err != nil {
			t.Fatal(err)
		}
	}
	epoch := dl.Epoch()
	if err := dl.MergeAll(nil); err != nil {
		t.Fatal(err)
	}
	if dl.Epoch() == epoch {
		t.Error("epoch did not advance across merge")
	}
	st := dl.Stats()
	if st.LogBlocks != 0 || st.Merges == 0 || st.MergedPages != 4 {
		t.Errorf("stats after merge: %+v", st)
	}
	// Differentials are folded into the base images.
	buf := make([]byte, r.PageSize())
	for id := core.PageID(1); id <= 4; id++ {
		if err := r.ReadInto(nil, id, buf, nil); err != nil {
			t.Fatal(err)
		}
		if n, _ := dl.ApplyTo(nil, id, buf); n != 0 {
			t.Errorf("page %d still has %d differential bytes", id, n)
		}
		if buf[50] != byte(id) {
			t.Errorf("page %d merge lost delta: %#x", id, buf[50])
		}
	}
}

func TestPDLMergeReclaimOnPressure(t *testing.T) {
	// One log block per chip: the second block's worth of appends must
	// trigger a merge rather than fail.
	r, dl := newPDLRegion(t, 12, PDLConfig{MaxBlocksPerChip: 1})
	if err := r.Write(nil, 1, pageOf(r.dev, 0x33), nil); err != nil {
		t.Fatal(err)
	}
	var pairs []core.Pair
	for i := 0; i < 32; i++ {
		pairs = append(pairs, core.Pair{Off: uint16(64 + i), Val: byte(i)})
	}
	for lsn := core.LSN(1); lsn <= 200; lsn++ {
		if err := dl.Append(nil, 1, lsn, csOf(pairs...)); err != nil {
			t.Fatalf("append %d: %v", lsn, err)
		}
	}
	st := dl.Stats()
	if st.Merges == 0 {
		t.Errorf("no merges under space pressure: %+v", st)
	}
	buf := make([]byte, r.PageSize())
	if err := r.ReadInto(nil, 1, buf, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := dl.ApplyTo(nil, 1, buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if buf[64+i] != byte(i) {
			t.Fatalf("byte %d lost across merges: %#x", 64+i, buf[64+i])
		}
	}
}

func TestPDLRebuild(t *testing.T) {
	r, dl := newPDLRegion(t, 12, PDLConfig{})
	base := pageOf(r.dev, 0x44)
	for id := core.PageID(1); id <= 3; id++ {
		if err := r.Write(nil, id, base, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := dl.Append(nil, 1, 11, csOf(core.Pair{Off: 30, Val: 0x01})); err != nil {
		t.Fatal(err)
	}
	if err := dl.Append(nil, 1, 12, csOf(core.Pair{Off: 31, Val: 0x02})); err != nil {
		t.Fatal(err)
	}
	if err := dl.Append(nil, 2, 13, csOf(core.Pair{Off: 32, Val: 0x03})); err != nil {
		t.Fatal(err)
	}
	// Crash: rebuild the region mapping from flash, then the diff log.
	// Page 2's base was "reflushed" at LSN 99 (newer than its record),
	// so its record must be discarded; page 3 has no records.
	mapping := make(map[core.PageID]flash.PPN)
	for id := core.PageID(1); id <= 3; id++ {
		ppn, ok := r.PPNOf(id)
		if !ok {
			t.Fatalf("page %d unmapped", id)
		}
		mapping[id] = ppn
	}
	if err := r.Adopt(mapping); err != nil {
		t.Fatal(err)
	}
	dl2, err := NewDiffLog(r, PDLConfig{})
	if err != nil {
		t.Fatal(err)
	}
	live, err := dl2.Rebuild(nil, map[core.PageID]core.LSN{1: 5, 2: 99, 3: 5})
	if err != nil {
		t.Fatal(err)
	}
	if live != 2 {
		t.Errorf("rebuilt %d live records, want 2", live)
	}
	buf := make([]byte, r.PageSize())
	if err := r.ReadInto(nil, 1, buf, nil); err != nil {
		t.Fatal(err)
	}
	if n, err := dl2.ApplyTo(nil, 1, buf); err != nil || n != 2 {
		t.Fatalf("apply after rebuild: n=%d err=%v", n, err)
	}
	if buf[30] != 0x01 || buf[31] != 0x02 {
		t.Errorf("rebuilt merge wrong: %#x %#x", buf[30], buf[31])
	}
	if n, _ := dl2.ApplyTo(nil, 2, buf); n != 0 {
		t.Errorf("stale record survived rebuild: %d bytes", n)
	}
	if st := dl2.Stats(); st.Rebuilds != 1 || st.LogBlocks == 0 || st.DeadBytes == 0 {
		t.Errorf("rebuild stats: %+v", st)
	}
	// Rebuilt blocks are sealed; new appends claim fresh blocks and the
	// sealed ones are merge victims once their records die.
	if err := dl2.Append(nil, 3, 100, csOf(core.Pair{Off: 33, Val: 0x05})); err != nil {
		t.Fatal(err)
	}
	if err := dl2.MergeAll(nil); err != nil {
		t.Fatal(err)
	}
	if st := dl2.Stats(); st.LogBlocks != 0 {
		t.Errorf("log blocks not reclaimed after rebuild+merge: %+v", st)
	}
}

func TestCostBenefitVictimSelection(t *testing.T) {
	dev := newDevice(t, flash.SLC, 1, 8, 4, 256)
	r, err := dev.CreateRegion(RegionConfig{
		Name: "cb", Mode: ModeNone, BlocksPerChip: 8,
		GCVictim: CostBenefitVictim, OverProvision: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.GCVictim() != CostBenefitVictim {
		t.Fatal("victim policy not recorded")
	}
	// Overwrite churn: with cost-benefit selection the region must still
	// reclaim space correctly and never lose data.
	img := func(id core.PageID, v byte) []byte {
		p := pageOf(dev, v)
		p[255] = byte(id)
		return p
	}
	for round := 0; round < 20; round++ {
		for id := core.PageID(0); id < 12; id++ {
			if err := r.Write(nil, id, img(id, byte(round)), nil); err != nil {
				t.Fatalf("round %d page %d: %v", round, id, err)
			}
		}
	}
	buf := make([]byte, r.PageSize())
	for id := core.PageID(0); id < 12; id++ {
		if err := r.ReadInto(nil, id, buf, nil); err != nil {
			t.Fatal(err)
		}
		if buf[0] != 19 || buf[255] != byte(id) {
			t.Errorf("page %d content wrong: round=%d id=%d", id, buf[0], buf[255])
		}
	}
	if st := r.Stats(); st.GCErases == 0 {
		t.Errorf("no GC under churn: %+v", st)
	}
}

// TestPDLApplyToAllocFree pins the read-merge path at zero steady-state
// allocations: the scratch page comes from the DiffLog's pool and the
// ref list is borrowed, not copied.
func TestPDLApplyToAllocFree(t *testing.T) {
	r, dl := newPDLRegion(t, 12, PDLConfig{})
	if err := r.Write(nil, 3, pageOf(r.dev, 0x55), nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := dl.Append(nil, 3, core.LSN(i+1), csOf(core.Pair{Off: uint16(i), Val: byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, r.PageSize())
	if err := r.ReadInto(nil, 3, buf, nil); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := dl.ApplyTo(nil, 3, buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("ApplyTo allocates %.1f objects per call, want 0", allocs)
	}
	for i := 0; i < 8; i++ {
		if buf[i] != byte(i) {
			t.Fatalf("byte %d lost: %#x", i, buf[i])
		}
	}
}

// TestPDLApplyConcurrentWithAppends races the unlocked read-merge path
// against appends and the merges they force (one log block per chip).
// Readers follow the documented epoch protocol — snapshot epoch, read
// base, ApplyTo, retry on change — and check a monotonicity invariant:
// the writer only ever raises buf[0] per page, so each reader's
// successive consistent images must be non-decreasing. Run under -race
// this is the locking-narrowing's data-race check.
func TestPDLApplyConcurrentWithAppends(t *testing.T) {
	r, dl := newPDLRegion(t, 12, PDLConfig{MaxBlocksPerChip: 1})
	const pages = 4
	for id := core.PageID(1); id <= pages; id++ {
		if err := r.Write(nil, id, pageOf(r.dev, 0x00), nil); err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		lsn := core.LSN(0)
		for v := byte(1); v <= 60; v++ {
			for id := core.PageID(1); id <= pages; id++ {
				lsn++
				if err := dl.Append(nil, id, lsn, csOf(core.Pair{Off: 0, Val: v})); err != nil {
					t.Errorf("append page %d val %d: %v", id, v, err)
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, r.PageSize())
			last := [pages + 1]byte{}
			for i := 0; i < 400; i++ {
				id := core.PageID(i%pages + 1)
				var img byte
				for retry := 0; ; retry++ {
					if retry > 100 {
						t.Errorf("reader %d: page %d never stabilised", g, id)
						return
					}
					e0 := dl.Epoch()
					if err := r.ReadInto(nil, id, buf, nil); err != nil {
						t.Errorf("reader %d read base %d: %v", g, id, err)
						return
					}
					if _, err := dl.ApplyTo(nil, id, buf); err != nil {
						t.Errorf("reader %d apply %d: %v", g, id, err)
						return
					}
					if dl.Epoch() == e0 {
						img = buf[0]
						break
					}
				}
				if img < last[id] {
					t.Errorf("reader %d: page %d went backwards %d -> %d", g, id, last[id], img)
					return
				}
				last[id] = img
			}
		}(g)
	}
	wg.Wait()
	<-done
}
