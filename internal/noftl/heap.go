package noftl

// The per-chip free pool and victim queue are intrusive binary min-heaps
// over *blockMeta, replacing the O(blocks) linear scans the old
// popFreeLocked and victim selection performed under the region mutex.
// Both comparators tie-break on block id so the heap minimum is exactly
// the block the old scans chose: foreground-mode GC stays bit-identical
// with the pre-shard implementation (the paper's Tables/Figs depend on
// that determinism).
//
// The heaps are manipulated only with the owning chip's lock held, so
// they need no synchronisation of their own. container/heap is avoided
// deliberately: its interface boxes every operation through dynamic
// dispatch, and these five small functions are the entire requirement.

// freeLess orders the free pool by erase count at push time (wear-aware
// free-block selection), then block id. A free block's erase count
// cannot change while it sits in the pool — erases happen only to
// occupied victims — so the snapshot taken at push time is always
// current.
func freeLess(a, b *blockMeta) bool {
	if a.eraseSnap != b.eraseSnap {
		return a.eraseSnap < b.eraseSnap
	}
	return a.id < b.id
}

// victimLess orders the victim queue greedily: fewest valid pages first
// (minimum migration cost per reclaimed block), then block id.
func victimLess(a, b *blockMeta) bool {
	if a.valid != b.valid {
		return a.valid < b.valid
	}
	return a.id < b.id
}

// blockHeap is a min-heap of blocks. less picks the ordering; setIdx
// writes the block's heap position back into the blockMeta (freeIdx or
// victIdx) so removal and re-ordering are O(log n) without searching.
type blockHeap struct {
	items  []*blockMeta
	less   func(a, b *blockMeta) bool
	setIdx func(bm *blockMeta, i int)
}

func (h *blockHeap) len() int { return len(h.items) }

func (h *blockHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.setIdx(h.items[i], i)
	h.setIdx(h.items[j], j)
}

func (h *blockHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *blockHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			return
		}
		min := l
		if r < n && h.less(h.items[r], h.items[l]) {
			min = r
		}
		if !h.less(h.items[min], h.items[i]) {
			return
		}
		h.swap(i, min)
		i = min
	}
}

// push inserts bm and records its position via setIdx.
func (h *blockHeap) push(bm *blockMeta) {
	h.items = append(h.items, bm)
	h.setIdx(bm, len(h.items)-1)
	h.up(len(h.items) - 1)
}

// pop removes and returns the minimum, or nil when empty.
func (h *blockHeap) pop() *blockMeta {
	if len(h.items) == 0 {
		return nil
	}
	min := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.setIdx(h.items[0], 0)
	h.items[last] = nil
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	h.setIdx(min, -1)
	return min
}

// peek returns the minimum without removing it, or nil.
func (h *blockHeap) peek() *blockMeta {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

// remove deletes the element at position i (taken from the blockMeta's
// stored index).
func (h *blockHeap) remove(i int) {
	last := len(h.items) - 1
	bm := h.items[i]
	if i != last {
		h.items[i] = h.items[last]
		h.setIdx(h.items[i], i)
	}
	h.items[last] = nil
	h.items = h.items[:last]
	if i < last {
		h.fix(i)
	}
	h.setIdx(bm, -1)
}

// fix restores the heap order around position i after its key changed.
func (h *blockHeap) fix(i int) {
	h.up(i)
	h.down(i)
}

// reset empties the heap (rebuild support).
func (h *blockHeap) reset() {
	for i := range h.items {
		h.items[i] = nil
	}
	h.items = h.items[:0]
}
