package noftl

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"time"

	"ipa/internal/flash"
	"ipa/internal/sim"
)

// This file is the region's garbage collector and static wear leveler,
// shared by both GC policies. collectLocked is the single reclamation
// primitive: foreground mode calls it inline from allocLocked (holding
// the chip lock throughout, so a sequential workload is fully
// deterministic), background mode calls it from the chip's collector
// goroutine, yielding the chip lock between page migrations so writers
// and readers interleave with an ongoing collection.
//
// Background scheduling is a per-chip watermark scheme:
//
//	idle          freeLen >  softWater    collector parked on its doorbell
//	soft          freeLen <= softWater    collector woken, writers unaffected
//	hard          freeLen <= gcReserve    the writer that hits the floor
//	                                      collects one block inline (a
//	                                      counted GC stall)
//	exhausted     collection failed       collector parks; writers keep
//	                                      using the pool's slack and fail
//	                                      over across chips, surfacing
//	                                      ErrNoSpace only when nothing
//	                                      anywhere is reclaimable
//
// Any page invalidation clears `exhausted` — an invalidation is exactly
// what turns a fully-valid victim into a collectable one.

func (r *Region) backgroundOn() bool {
	return r.cfg.GCPolicy == GCBackground && !r.closed.Load()
}

// wakeCollector rings the chip's doorbell without blocking; a pending
// token already guarantees the collector will re-check the watermark.
func (r *Region) wakeCollector(cs *chipState) {
	select {
	case cs.wake <- struct{}{}:
	default:
	}
}

// startCollectors launches one collector goroutine per chip, each with
// its own sim.Worker so the simulated time its migrations consume lands
// on the chip's timeline like any other I/O issuer.
func (r *Region) startCollectors() {
	r.stop = make(chan struct{})
	tl := r.dev.arr.Timeline()
	for _, c := range r.chips {
		cs := r.byChip[c]
		var w *sim.Worker
		if tl != nil {
			w = tl.NewWorker()
		}
		r.wg.Add(1)
		go r.runCollector(cs, w)
	}
}

// runCollector is the per-chip background collector: parked on the
// doorbell, it collects until the pool is back above the soft watermark
// or nothing can be reclaimed.
func (r *Region) runCollector(cs *chipState, w *sim.Worker) {
	defer r.wg.Done()
	for {
		select {
		case <-r.stop:
			return
		case <-cs.wake:
		}
		if w != nil {
			// Start charging simulated time at the chip's current busy
			// horizon: collection occupies the chip after the I/O that is
			// already queued, not retroactively.
			w.SetNow(r.dev.arr.Timeline().BusyUntil(cs.chip))
		}
		for {
			select {
			case <-r.stop:
				return
			default:
			}
			cs.mu.Lock()
			if cs.freeLen() > r.cfg.softWater() || cs.exhausted {
				cs.mu.Unlock()
				break
			}
			err := r.collectLocked(w, cs, true)
			if err != nil && r.retireParkedLocked(cs) {
				err = r.collectLocked(w, cs, true)
			}
			if err != nil {
				// Nothing reclaimable right now: latch it so the collector
				// parks instead of spinning. The next invalidation on the
				// chip clears the latch and rings the doorbell.
				cs.exhausted = true
			}
			cs.mu.Unlock()
			if err != nil {
				break
			}
		}
	}
}

// throttleLocked is the hard-reserve backpressure under background GC:
// the writer that hits the floor rings the collector's doorbell and
// yields the chip for a short, bounded real-time window; if the pool is
// still at the floor afterwards, the writer pays for one reclamation
// pass itself — exactly the foreground path. Every visit is a counted
// GC stall either way.
//
// The wait is a bounded poll on purpose, not a condition variable:
// parking until "a block returns to the pool" has no deadlock-free
// formulation here — a fully compacted chip (every programmed page
// valid) produces no invalidations to wake anyone up, and under
// failover all writers can end up parked on such chips at once. A
// bounded poll always terminates, and the inline fallback makes the
// writer self-sufficient.
func (r *Region) throttleLocked(w *sim.Worker, cs *chipState) error {
	reserve := r.cfg.gcReserve()
	cs.stats.GCStalls++
	t0 := time.Now()
	r.wakeCollector(cs)
	// Gosched, never sleep: an inline collect costs only a few µs of
	// real time, so yielding the scheduler a few times is the most a
	// handoff attempt is ever worth.
	for spin := 0; spin < 64 && cs.freeLen() <= reserve && !cs.exhausted && !r.closed.Load(); spin++ {
		cs.mu.Unlock()
		runtime.Gosched()
		cs.mu.Lock()
	}
	if cs.freeLen() > reserve {
		cs.stats.GCStallTime += time.Since(t0)
		return nil
	}
	err := r.collectLocked(w, cs, false)
	if err != nil && r.retireParkedLocked(cs) {
		// The chip's invalid mass was parked in the full write point or
		// the migration target; both are victims now, so retry.
		err = r.collectLocked(w, cs, false)
	}
	cs.stats.GCStallTime += time.Since(t0)
	if err == nil {
		return nil
	}
	if cs.freeLen() > 1 {
		return nil // unreclaimable right now, but the pool has slack
	}
	if a := cs.active; a != nil && a.next < r.usablePagesPerBlock() {
		return nil // the partial write point still has room
	}
	return err
}

// retireParkedLocked pushes the chip's full write point and its
// migration target into the victim heap when they hold invalid pages.
// GC repacks survivors into fully-valid blocks, so under heavy churn the
// chip's entire invalid mass can sit in these two blocks — which the
// victim heap cannot see — while every heap victim is fully valid;
// retiring them is what turns "unreclaimable" back into progress. The
// migration target is retired even partially programmed (its free tail
// is sacrificed): with all victims full it would never fill up, and its
// invalid pages would be stuck forever. The active is retired only when
// full — a partial active still serves writes. Returns whether anything
// was retired.
func (r *Region) retireParkedLocked(cs *chipState) bool {
	usable := r.usablePagesPerBlock()
	changed := false
	if a := cs.active; a != nil && a.next >= usable && a.valid < usable {
		r.retireActiveLocked(cs)
		changed = true
	}
	if mt := cs.migTarget; mt != nil && mt.valid < mt.next {
		mt.collecting = false
		cs.migTarget = nil
		cs.addVictim(mt)
		changed = true
	}
	return changed
}

// Close stops the region's background collectors. The region stays
// usable afterwards: with the collectors gone, allocation falls back to
// inline collection, the foreground behaviour. Idempotent.
func (r *Region) Close() {
	if r.closed.Swap(true) {
		return
	}
	if r.stop != nil {
		close(r.stop)
	}
	r.wg.Wait()
}

// collectLocked reclaims one block on the chip: the cheapest victim
// (fewest valid pages, from the victim heap) is migrated and erased.
// Called with cs.mu held and returns with it held; when background is
// set, the lock is yielded between page migrations so foreground I/O on
// the chip interleaves with the collection (the victim is parked in the
// `collecting` state, invisible to both heaps, across the gaps).
func (r *Region) collectLocked(w *sim.Worker, cs *chipState, background bool) error {
	victim := r.selectVictimLocked(cs)
	if victim == nil {
		return fmt.Errorf("%w: no victim on chip %d", ErrNoSpace, cs.chip)
	}
	usable := r.usablePagesPerBlock()
	if victim.valid >= usable {
		return fmt.Errorf("%w: best victim fully valid on chip %d", ErrNoSpace, cs.chip)
	}
	cs.removeVictim(victim)
	victim.collecting = true
	restore := func() {
		victim.collecting = false
		cs.addVictim(victim)
	}
	// Migrate every still-valid page. The raw physical image (including
	// any programmed delta-records and OOB codes) moves as-is, so the new
	// location decodes identically.
	arr := r.dev.arr
	for slot := 0; slot < usable; slot++ {
		ppn := r.pageSlotToPPN(victim.id, slot)
		id, valid := cs.reverse[ppn]
		if !valid {
			continue
		}
		if cur, ok := r.lookup(id); !ok || cur != ppn {
			// Stale copy: a racing first-write re-homed the page to
			// another chip. Drop it instead of resurrecting it.
			delete(cs.reverse, ppn)
			if victim.valid > 0 {
				victim.valid--
			}
			continue
		}
		dst, err := r.allocMigrationTargetLocked(cs)
		if err != nil {
			restore()
			return err
		}
		data, oob := cs.migBuffers(r.dev.geom)
		rlat, err := arr.ReadInto(w, ppn, data, oob)
		if err != nil {
			restore()
			return err
		}
		plat, err := arr.Program(w, dst, data, oob)
		if err != nil {
			restore()
			return err
		}
		cs.stats.GCTime += rlat + plat
		cs.stats.GCPageMigrations++
		if background {
			cs.stats.BGPageMigrations++
		}
		delete(cs.reverse, ppn)
		victim.valid--
		// Re-point the mapping at the copy — unless a racing write
		// already moved the page on, in which case the copy is garbage
		// and its slot simply stays invalid.
		ms := r.mapShardOf(id)
		ms.mu.Lock()
		if ms.m[id] == ppn {
			ms.m[id] = dst
			cs.reverse[dst] = id
			r.bumpValidLocked(cs, dst)
		}
		ms.mu.Unlock()
		if background {
			// Yield between page moves: a block's worth of migrations is
			// far too long to stall the chip's foreground I/O for.
			cs.mu.Unlock()
			cs.mu.Lock()
		}
	}
	elat, err := arr.Erase(w, victim.id)
	if err != nil && !errors.Is(err, flash.ErrWornOut) {
		restore()
		return err
	}
	cs.stats.GCTime += elat
	cs.stats.GCErases++
	if background {
		cs.stats.BGErases++
	}
	victim.collecting = false
	victim.valid = 0
	victim.next = 0
	cs.pushFree(victim, arr.EraseCount(victim.id))
	cs.exhausted = false // reclamation works again; un-latch the give-up
	r.maybeLevelLocked(w, cs)
	return nil
}

// selectVictimLocked picks the block the collector evacuates next.
// Greedy is the heap minimum (fewest valid pages, deterministic).
// Cost-benefit scores (1-u)·age/2u (Kawaguchi et al.) over the victim
// queue at collect time — age changes globally between collections, so
// the score cannot live in a heap key and a linear scan is required.
// Ties break on lower block id for determinism.
func (r *Region) selectVictimLocked(cs *chipState) *blockMeta {
	if r.cfg.GCVictim != CostBenefitVictim {
		return cs.victims.peek()
	}
	usable := r.usablePagesPerBlock()
	now := r.tick.Load()
	var best *blockMeta
	var bestScore float64
	for _, bm := range cs.victims.items {
		if bm.valid >= usable {
			continue // migrating it frees nothing
		}
		var score float64
		if bm.valid == 0 {
			score = math.Inf(1) // free reclamation always wins
		} else {
			u := float64(bm.valid) / float64(usable)
			age := float64(now-bm.stamp) + 1
			score = (1 - u) * age / (2 * u)
		}
		if best == nil || score > bestScore || (score == bestScore && bm.id < best.id) {
			best, bestScore = bm, score
		}
	}
	if best == nil {
		// Everything in the queue is fully valid (or the queue is empty):
		// fall through to the heap minimum so collectLocked reports the
		// same ErrNoSpace conditions as the greedy path.
		return cs.victims.peek()
	}
	return best
}

// maybeLevelLocked performs static wear leveling on the chip: if the
// spread between the most- and least-worn blocks exceeds the configured
// delta, the least-worn *occupied* block (cold data pins low-wear blocks)
// is evacuated and erased, returning it to circulation.
func (r *Region) maybeLevelLocked(w *sim.Worker, cs *chipState) {
	if r.cfg.WearDelta <= 0 {
		return
	}
	arr := r.dev.arr
	var coldest *blockMeta
	var maxWear, minWear uint32
	first := true
	for _, bm := range cs.blocks {
		wear := arr.EraseCount(bm.id)
		if first || wear > maxWear {
			maxWear = wear
		}
		if first || wear < minWear {
			minWear = wear
		}
		first = false
		if bm.free || bm.active || bm.collecting {
			continue
		}
		if coldest == nil || arr.EraseCount(bm.id) < arr.EraseCount(coldest.id) {
			coldest = bm
		}
	}
	if coldest == nil || int(maxWear-minWear) <= r.cfg.WearDelta {
		return
	}
	if arr.EraseCount(coldest.id) != minWear {
		return // the least-worn block is already free or active
	}
	// Evacuate the cold block exactly like a GC victim, charging the
	// traffic to the wear-leveling counters. On any failure the block is
	// returned to the victim heap with whatever pages remain valid.
	cs.removeVictim(coldest)
	coldest.collecting = true
	restore := func() {
		coldest.collecting = false
		cs.addVictim(coldest)
	}
	usable := r.usablePagesPerBlock()
	for slot := 0; slot < usable; slot++ {
		ppn := r.pageSlotToPPN(coldest.id, slot)
		id, valid := cs.reverse[ppn]
		if !valid {
			continue
		}
		if cur, ok := r.lookup(id); !ok || cur != ppn {
			delete(cs.reverse, ppn)
			if coldest.valid > 0 {
				coldest.valid--
			}
			continue
		}
		dst, err := r.allocMigrationTargetLocked(cs)
		if err != nil {
			restore()
			return // pool too tight; try again after the next collect
		}
		data, oob := cs.migBuffers(r.dev.geom)
		if _, err := arr.ReadInto(w, ppn, data, oob); err != nil {
			restore()
			return
		}
		if _, err := arr.Program(w, dst, data, oob); err != nil {
			restore()
			return
		}
		cs.stats.WLMigrations++
		delete(cs.reverse, ppn)
		coldest.valid--
		ms := r.mapShardOf(id)
		ms.mu.Lock()
		if ms.m[id] == ppn {
			ms.m[id] = dst
			cs.reverse[dst] = id
			r.bumpValidLocked(cs, dst)
		}
		ms.mu.Unlock()
	}
	if _, err := arr.Erase(w, coldest.id); err != nil && !errors.Is(err, flash.ErrWornOut) {
		restore()
		return
	}
	cs.stats.WLErases++
	coldest.collecting = false
	coldest.valid = 0
	coldest.next = 0
	cs.pushFree(coldest, arr.EraseCount(coldest.id))
}

// allocMigrationTargetLocked returns a destination PPN for a migrated
// page. Victims under evacuation are in the `collecting` state and so
// can never be handed back as a target.
//
// Background-policy regions migrate into a dedicated per-chip target
// block instead of the shared active: writers fill the active during the
// collection's lock-yield gaps, and if the collector competed for the
// same pages it would pop extra free blocks mid-collection — the reserve
// can empty before the victim's erase returns a block, wedging the chip
// with reclaimable victims still on the heap. Foreground regions keep
// the original migrate-into-active behaviour, so the paper experiments
// stay deterministic and bit-identical.
func (r *Region) allocMigrationTargetLocked(cs *chipState) (flash.PPN, error) {
	usable := r.usablePagesPerBlock()
	if r.cfg.GCPolicy == GCBackground {
		if mt := cs.migTarget; mt != nil {
			if mt.next < usable {
				ppn := r.pageSlotToPPN(mt.id, mt.next)
				mt.next++
				return ppn, nil
			}
			// Full: the target becomes an ordinary occupied block.
			mt.collecting = false
			cs.migTarget = nil
			cs.addVictim(mt)
		}
		if nb := cs.popFree(); nb != nil {
			nb.collecting = true
			nb.next = 1
			nb.valid = 0
			cs.migTarget = nb
			return r.pageSlotToPPN(nb.id, 0), nil
		}
		// Pool empty: fall through to the active block as a last resort.
	}
	for {
		act := cs.active
		if act != nil && act.next < usable {
			ppn := r.pageSlotToPPN(act.id, act.next)
			act.next++
			return ppn, nil
		}
		if act != nil {
			r.retireActiveLocked(cs)
		}
		nb := cs.popFree()
		if nb == nil {
			return 0, fmt.Errorf("%w: migration target on chip %d", ErrNoSpace, cs.chip)
		}
		nb.active = true
		nb.next = 0
		nb.valid = 0
		cs.active = nb
	}
}
