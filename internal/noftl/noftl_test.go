package noftl

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"ipa/internal/core"
	"ipa/internal/flash"
)

func newDevice(t testing.TB, cell flash.CellType, chips, blocks, pages, pageSize int) *Device {
	t.Helper()
	g := flash.Geometry{
		Chips: chips, BlocksPerChip: blocks, PagesPerBlock: pages,
		PageSize: pageSize, OOBSize: pageSize / 16, Cell: cell,
	}
	timing := flash.SLCTiming()
	if cell == flash.MLC {
		timing = flash.MLCTiming()
	}
	arr, err := flash.New(flash.Config{Geometry: g, Timing: timing, StrictProgramOrder: true, MaxAppends: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return Open(arr)
}

func pageOf(dev *Device, fill byte) []byte {
	p := bytes.Repeat([]byte{0xFF}, dev.Geometry().PageSize)
	for i := 0; i < 16; i++ {
		p[i] = fill
	}
	return p
}

func TestCreateRegionValidation(t *testing.T) {
	dev := newDevice(t, flash.SLC, 2, 8, 8, 256)
	if _, err := dev.CreateRegion(RegionConfig{Name: "a", Mode: ModePSLC, BlocksPerChip: 2}); err == nil {
		t.Error("pSLC on SLC accepted")
	}
	if _, err := dev.CreateRegion(RegionConfig{Name: "a", Mode: ModeSLC, BlocksPerChip: 0}); err == nil {
		t.Error("zero blocks accepted")
	}
	if _, err := dev.CreateRegion(RegionConfig{Name: "a", Mode: ModeSLC, BlocksPerChip: 9}); !errors.Is(err, ErrNoBlocks) {
		t.Errorf("oversized region: %v", err)
	}
	r, err := dev.CreateRegion(RegionConfig{Name: "a", Mode: ModeSLC, Scheme: core.NewScheme(2, 3), BlocksPerChip: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "a" || r.Mode() != ModeSLC {
		t.Error("region identity wrong")
	}
	if _, err := dev.CreateRegion(RegionConfig{Name: "a", Mode: ModeSLC, BlocksPerChip: 1}); !errors.Is(err, ErrRegionExists) {
		t.Errorf("duplicate region: %v", err)
	}
	// Remaining blocks: 4 per chip.
	if _, err := dev.CreateRegion(RegionConfig{Name: "b", Mode: ModeNone, BlocksPerChip: 4}); err != nil {
		t.Errorf("second region: %v", err)
	}
	if dev.Region("a") != r || dev.Region("zzz") != nil {
		t.Error("Region lookup wrong")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	dev := newDevice(t, flash.SLC, 2, 8, 8, 256)
	r, err := dev.CreateRegion(RegionConfig{Name: "d", Mode: ModeSLC, Scheme: core.NewScheme(2, 3), BlocksPerChip: 8})
	if err != nil {
		t.Fatal(err)
	}
	want := pageOf(dev, 0x11)
	if err := r.Write(nil, 1, want, nil); err != nil {
		t.Fatal(err)
	}
	got, _, err := r.Read(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("read-back mismatch")
	}
	if _, _, err := r.Read(nil, 99); !errors.Is(err, ErrUnknownPage) {
		t.Errorf("unknown page read: %v", err)
	}
	s := r.Stats()
	if s.HostReads != 1 || s.OutOfPlaceWrites != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestOverwriteRelocatesAndInvalidates(t *testing.T) {
	dev := newDevice(t, flash.SLC, 1, 8, 8, 256)
	r, _ := dev.CreateRegion(RegionConfig{Name: "d", Mode: ModeSLC, BlocksPerChip: 8})
	if err := r.Write(nil, 1, pageOf(dev, 1), nil); err != nil {
		t.Fatal(err)
	}
	p1, _ := r.PPNOf(1)
	if err := r.Write(nil, 1, pageOf(dev, 2), nil); err != nil {
		t.Fatal(err)
	}
	p2, _ := r.PPNOf(1)
	if p1 == p2 {
		t.Error("overwrite did not relocate (out-of-place rule violated)")
	}
	got, _, _ := r.Read(nil, 1)
	if got[0] != 2 {
		t.Error("read returned stale version")
	}
}

func TestWriteDeltaAppendsInPlace(t *testing.T) {
	dev := newDevice(t, flash.SLC, 1, 8, 8, 256)
	r, _ := dev.CreateRegion(RegionConfig{Name: "d", Mode: ModeSLC, Scheme: core.NewScheme(2, 3), BlocksPerChip: 8})
	img := pageOf(dev, 0xAB) // tail stays erased = delta area
	if err := r.Write(nil, 7, img, nil); err != nil {
		t.Fatal(err)
	}
	before, _ := r.PPNOf(7)
	if !r.CanAppend(7) {
		t.Fatal("CanAppend = false on fresh SLC page")
	}
	if err := r.WriteDelta(nil, 7, 200, []byte{0x01, 0x02}, 0, nil); err != nil {
		t.Fatal(err)
	}
	after, _ := r.PPNOf(7)
	if before != after {
		t.Error("write_delta relocated the page")
	}
	got, _, _ := r.Read(nil, 7)
	if got[200] != 0x01 || got[201] != 0x02 {
		t.Error("delta not visible on read")
	}
	s := r.Stats()
	if s.DeltaWrites != 1 || s.HostWrites() != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.IPAFraction() != 0.5 {
		t.Errorf("IPAFraction = %v", s.IPAFraction())
	}
}

func TestWriteDeltaRejectedWhenDisabled(t *testing.T) {
	dev := newDevice(t, flash.SLC, 1, 8, 8, 256)
	r, _ := dev.CreateRegion(RegionConfig{Name: "d", Mode: ModeNone, BlocksPerChip: 8})
	if err := r.Write(nil, 1, pageOf(dev, 1), nil); err != nil {
		t.Fatal(err)
	}
	if r.CanAppend(1) {
		t.Error("CanAppend = true in ModeNone")
	}
	if err := r.WriteDelta(nil, 1, 0, []byte{0}, 0, nil); !errors.Is(err, ErrNotAppendable) {
		t.Errorf("delta in ModeNone: %v", err)
	}
}

func TestPSLCUsesOnlyLSBPages(t *testing.T) {
	dev := newDevice(t, flash.MLC, 1, 8, 8, 256)
	r, _ := dev.CreateRegion(RegionConfig{Name: "d", Mode: ModePSLC, Scheme: core.NewScheme(2, 4), BlocksPerChip: 8})
	g := dev.Geometry()
	for i := core.PageID(1); i <= 8; i++ {
		if err := r.Write(nil, i, pageOf(dev, byte(i)), nil); err != nil {
			t.Fatal(err)
		}
		ppn, _ := r.PPNOf(i)
		if !g.IsLSB(ppn) {
			t.Errorf("pSLC placed page %d on MSB ppn %d", i, ppn)
		}
		if !r.CanAppend(i) {
			t.Errorf("pSLC page %d not appendable", i)
		}
	}
	// Capacity halves: 8 blocks × 4 usable pages × 0.9 OP.
	usable := float64(8 * 4)
	wantCap := int(usable * 0.9)
	if r.LogicalCapacity() != wantCap {
		t.Errorf("LogicalCapacity = %d", r.LogicalCapacity())
	}
}

func TestOddMLCAppendsOnlyOnLSB(t *testing.T) {
	dev := newDevice(t, flash.MLC, 1, 8, 8, 256)
	r, _ := dev.CreateRegion(RegionConfig{Name: "d", Mode: ModeOddMLC, Scheme: core.NewScheme(2, 4), BlocksPerChip: 8})
	g := dev.Geometry()
	lsb, msb := 0, 0
	for i := core.PageID(1); i <= 8; i++ {
		if err := r.Write(nil, i, pageOf(dev, byte(i)), nil); err != nil {
			t.Fatal(err)
		}
		ppn, _ := r.PPNOf(i)
		if g.IsLSB(ppn) {
			lsb++
			if !r.CanAppend(i) {
				t.Errorf("LSB page %d not appendable", i)
			}
		} else {
			msb++
			if r.CanAppend(i) {
				t.Errorf("MSB page %d appendable", i)
			}
			if err := r.WriteDelta(nil, i, 200, []byte{0}, 0, nil); !errors.Is(err, ErrNotAppendable) {
				t.Errorf("MSB delta: %v", err)
			}
		}
	}
	if lsb != 4 || msb != 4 {
		t.Errorf("lsb=%d msb=%d, want 4/4", lsb, msb)
	}
}

func TestGarbageCollectionReclaimsSpace(t *testing.T) {
	dev := newDevice(t, flash.SLC, 1, 8, 8, 256)
	r, _ := dev.CreateRegion(RegionConfig{
		Name: "d", Mode: ModeSLC, BlocksPerChip: 8, OverProvision: 0.3, GCReserve: 2,
	})
	cap := r.LogicalCapacity()
	// Fill logical capacity, then keep overwriting to force GC.
	for i := 0; i < cap; i++ {
		if err := r.Write(nil, core.PageID(i+1), pageOf(dev, byte(i)), nil); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	for round := 0; round < 10; round++ {
		for i := 0; i < cap; i++ {
			if err := r.Write(nil, core.PageID(i+1), pageOf(dev, byte(round)), nil); err != nil {
				t.Fatalf("round %d page %d: %v", round, i, err)
			}
		}
	}
	s := r.Stats()
	if s.GCErases == 0 {
		t.Error("no GC erases after 10 overwrite rounds")
	}
	// All pages still readable with latest content.
	for i := 0; i < cap; i++ {
		got, _, err := r.Read(nil, core.PageID(i+1))
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got[0] != 9 {
			t.Fatalf("page %d holds round %d, want 9", i, got[0])
		}
	}
}

func TestGCMigratesDeltaRecordsIntact(t *testing.T) {
	dev := newDevice(t, flash.SLC, 1, 8, 8, 256)
	r, _ := dev.CreateRegion(RegionConfig{
		Name: "d", Mode: ModeSLC, Scheme: core.NewScheme(2, 3),
		BlocksPerChip: 8, OverProvision: 0.3, GCReserve: 2,
	})
	// Write one page with a delta, then churn others until GC migrates it.
	if err := r.Write(nil, 1, pageOf(dev, 0x55), nil); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteDelta(nil, 1, 200, []byte{0x0F}, 0, nil); err != nil {
		t.Fatal(err)
	}
	origPPN, _ := r.PPNOf(1)
	cap := r.LogicalCapacity()
	for round := 0; round < 12; round++ {
		for i := 2; i <= cap; i++ {
			if err := r.Write(nil, core.PageID(i), pageOf(dev, byte(round)), nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	newPPN, _ := r.PPNOf(1)
	if newPPN == origPPN {
		t.Skip("page 1 was never migrated; churn too small")
	}
	got, _, err := r.Read(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[200] != 0x0F || got[0] != 0x55 {
		t.Error("delta or body lost across migration")
	}
}

func TestRegionFull(t *testing.T) {
	dev := newDevice(t, flash.SLC, 1, 4, 4, 256)
	r, _ := dev.CreateRegion(RegionConfig{Name: "d", Mode: ModeSLC, BlocksPerChip: 4, OverProvision: 0.5, GCReserve: 1})
	cap := r.LogicalCapacity()
	for i := 0; i < cap; i++ {
		if err := r.Write(nil, core.PageID(i+1), pageOf(dev, 1), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Write(nil, core.PageID(cap+1), pageOf(dev, 1), nil); !errors.Is(err, ErrRegionFull) {
		t.Errorf("write past capacity: %v", err)
	}
	if r.MappedPages() != cap {
		t.Errorf("MappedPages = %d, want %d", r.MappedPages(), cap)
	}
}

func TestFreeInvalidatesPage(t *testing.T) {
	dev := newDevice(t, flash.SLC, 1, 8, 8, 256)
	r, _ := dev.CreateRegion(RegionConfig{Name: "d", Mode: ModeSLC, BlocksPerChip: 8})
	if err := r.Write(nil, 1, pageOf(dev, 1), nil); err != nil {
		t.Fatal(err)
	}
	if err := r.Free(1); err != nil {
		t.Fatal(err)
	}
	if r.Contains(1) {
		t.Error("freed page still mapped")
	}
	if _, _, err := r.Read(nil, 1); !errors.Is(err, ErrUnknownPage) {
		t.Errorf("read freed page: %v", err)
	}
	if err := r.Free(1); !errors.Is(err, ErrUnknownPage) {
		t.Errorf("double free: %v", err)
	}
}

func TestMultipleRegionsIsolated(t *testing.T) {
	dev := newDevice(t, flash.MLC, 2, 8, 8, 256)
	hot, err := dev.CreateRegion(RegionConfig{Name: "hot", Mode: ModePSLC, Scheme: core.NewScheme(2, 3), BlocksPerChip: 4})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := dev.CreateRegion(RegionConfig{Name: "cold", Mode: ModeOddMLC, Scheme: core.NewScheme(2, 3), BlocksPerChip: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := hot.Write(nil, 1, pageOf(dev, 1), nil); err != nil {
		t.Fatal(err)
	}
	if err := cold.Write(nil, 1, pageOf(dev, 2), nil); err != nil {
		t.Fatal(err)
	}
	h, _, _ := hot.Read(nil, 1)
	c, _, _ := cold.Read(nil, 1)
	if h[0] != 1 || c[0] != 2 {
		t.Error("regions share page ids but returned wrong data")
	}
	hp, _ := hot.PPNOf(1)
	cp, _ := cold.PPNOf(1)
	if dev.Geometry().BlockOf(hp) == dev.Geometry().BlockOf(cp) {
		t.Error("regions share a block")
	}
}

func TestStatsRatios(t *testing.T) {
	s := Stats{OutOfPlaceWrites: 30, DeltaWrites: 70, GCPageMigrations: 50, GCErases: 10}
	if s.HostWrites() != 100 {
		t.Errorf("HostWrites = %d", s.HostWrites())
	}
	if s.IPAFraction() != 0.7 {
		t.Errorf("IPAFraction = %v", s.IPAFraction())
	}
	if s.MigrationsPerHostWrite() != 0.5 {
		t.Errorf("MigrationsPerHostWrite = %v", s.MigrationsPerHostWrite())
	}
	if s.ErasesPerHostWrite() != 0.1 {
		t.Errorf("ErasesPerHostWrite = %v", s.ErasesPerHostWrite())
	}
	var zero Stats
	if zero.IPAFraction() != 0 || zero.MigrationsPerHostWrite() != 0 || zero.ErasesPerHostWrite() != 0 {
		t.Error("zero stats ratios not zero")
	}
}

func TestIPAModeString(t *testing.T) {
	for m, want := range map[IPAMode]string{ModeNone: "none", ModeSLC: "SLC", ModePSLC: "pSLC", ModeOddMLC: "odd-MLC"} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", int(m), m.String())
		}
	}
}

// Heavier randomized churn: interleaved writes, deltas and frees across
// two regions must never lose data.
func TestChurnConsistency(t *testing.T) {
	dev := newDevice(t, flash.SLC, 2, 16, 8, 256)
	r, _ := dev.CreateRegion(RegionConfig{
		Name: "d", Mode: ModeSLC, Scheme: core.NewScheme(2, 3),
		BlocksPerChip: 16, OverProvision: 0.25, GCReserve: 2,
	})
	type state struct {
		fill  byte
		delta byte
		has   bool
	}
	shadow := make(map[core.PageID]*state)
	cap := r.LogicalCapacity()
	n := cap * 20
	for i := 0; i < n; i++ {
		id := core.PageID(i%cap + 1)
		st := shadow[id]
		if st == nil {
			st = &state{}
			shadow[id] = st
		}
		switch i % 5 {
		case 0, 1, 2: // out-of-place write
			fill := byte(i)
			if err := r.Write(nil, id, pageOf(dev, fill), nil); err != nil {
				t.Fatalf("op %d write: %v", i, err)
			}
			st.fill, st.delta, st.has = fill, 0xFF, true
		case 3: // delta append when legal
			if st.has && r.CanAppend(id) && dev.Array().Appends(mustPPN(t, r, id)) < 2 {
				d := byte(i) & st.delta // only clear bits (legal ISPP)
				if err := r.WriteDelta(nil, id, 200, []byte{d}, 0, nil); err != nil {
					t.Fatalf("op %d delta: %v", i, err)
				}
				st.delta = d
			}
		case 4: // verify
			if st.has {
				got, _, err := r.Read(nil, id)
				if err != nil {
					t.Fatalf("op %d read: %v", i, err)
				}
				if got[0] != st.fill {
					t.Fatalf("op %d: page %d fill %d, want %d", i, id, got[0], st.fill)
				}
				if got[200] != st.delta {
					t.Fatalf("op %d: page %d delta %#x, want %#x", i, id, got[200], st.delta)
				}
			}
		}
	}
	if r.Stats().GCErases == 0 {
		t.Log("warning: churn did not trigger GC")
	}
}

func mustPPN(t *testing.T, r *Region, id core.PageID) flash.PPN {
	t.Helper()
	p, ok := r.PPNOf(id)
	if !ok {
		t.Fatalf("page %d unmapped", id)
	}
	return p
}

// Ensure error message quality: wrapped sentinel errors are preserved.
func TestErrorWrapping(t *testing.T) {
	dev := newDevice(t, flash.SLC, 1, 4, 4, 256)
	r, _ := dev.CreateRegion(RegionConfig{Name: "d", Mode: ModeSLC, BlocksPerChip: 4})
	err := r.WriteDelta(nil, 42, 0, []byte{0}, 0, nil)
	if !errors.Is(err, ErrUnknownPage) {
		t.Errorf("unknown page delta: %v", err)
	}
	if msg := fmt.Sprint(err); msg == "" {
		t.Error("empty error message")
	}
}

// TestStaticWearLeveling pins cold data in low-wear blocks and hammers
// the rest; with WearDelta set, the leveler must evacuate cold blocks so
// their wear catches up, narrowing the spread versus the unleveled run.
func TestStaticWearLeveling(t *testing.T) {
	spread := func(wearDelta int) (uint32, Stats) {
		dev := newDevice(t, flash.SLC, 1, 24, 8, 256)
		r, err := dev.CreateRegion(RegionConfig{
			Name: "d", Mode: ModeSLC, BlocksPerChip: 24,
			OverProvision: 0.3, WearDelta: wearDelta,
		})
		if err != nil {
			t.Fatal(err)
		}
		capPages := r.LogicalCapacity()
		// Cold data: first half written once, never touched again.
		for i := 0; i < capPages/2; i++ {
			if err := r.Write(nil, core.PageID(i+1), pageOf(dev, 1), nil); err != nil {
				t.Fatal(err)
			}
		}
		// Hot data: the rest overwritten many times.
		for round := 0; round < 60; round++ {
			for i := capPages / 2; i < capPages; i++ {
				if err := r.Write(nil, core.PageID(i+1), pageOf(dev, byte(round)), nil); err != nil {
					t.Fatal(err)
				}
			}
		}
		arr := dev.Array()
		var max, min uint32
		min = 1 << 31
		for b := 0; b < 24; b++ {
			w := arr.EraseCount(b)
			if w > max {
				max = w
			}
			if w < min {
				min = w
			}
		}
		// Cold data must still be intact.
		for i := 0; i < capPages/2; i++ {
			got, _, err := r.Read(nil, core.PageID(i+1))
			if err != nil || got[0] != 1 {
				t.Fatalf("cold page %d corrupted: %v", i, err)
			}
		}
		return max - min, r.Stats()
	}
	unleveled, _ := spread(0)
	leveled, stats := spread(3)
	if stats.WLMigrations == 0 || stats.WLErases == 0 {
		t.Fatalf("wear leveler never ran: %+v", stats)
	}
	if leveled >= unleveled {
		t.Errorf("wear spread with leveling %d ≥ without %d", leveled, unleveled)
	}
}
