package noftl

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"ipa/internal/core"
	"ipa/internal/flash"
	"ipa/internal/sim"
)

// The -race stress gate of this package: two regions share one array,
// each hammered by concurrent writers while background collectors and
// the static wear leveler run on every chip. Afterwards every shadow
// entry must read back, physical locations must be unique, and a
// ScanPhysical + Adopt rebuild must reproduce a consistent region.
func TestConcurrentGCStress(t *testing.T) {
	const (
		chips         = 4
		blocksPerChip = 24 // per region: 12 each
		pagesPerBlock = 16
		pageSize      = 512
		writers       = 4
		opsPerWriter  = 1200
	)
	g := flash.Geometry{
		Chips: chips, BlocksPerChip: blocksPerChip, PagesPerBlock: pagesPerBlock,
		PageSize: pageSize, OOBSize: pageSize / 16, Cell: flash.SLC,
	}
	tl := sim.NewTimeline(chips)
	arr, err := flash.New(flash.Config{
		Geometry: g, Timing: flash.SLCTiming(), StrictProgramOrder: true, MaxAppends: 8,
	}, tl)
	if err != nil {
		t.Fatal(err)
	}
	dev := Open(arr)
	defer dev.Close()

	regions := make([]*Region, 2)
	for i := range regions {
		regions[i], err = dev.CreateRegion(RegionConfig{
			Name: fmt.Sprintf("r%d", i), Mode: ModeSLC,
			BlocksPerChip: blocksPerChip / 2, OverProvision: 0.25,
			GCReserve: 2, GCSoftWater: 4, WearDelta: 6,
			GCPolicy: GCBackground,
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	type shadow struct {
		fill byte
		has  bool
	}
	// Writers own disjoint id ranges, so each shadow cell has a single
	// owner and needs no lock.
	shadows := make([][][]shadow, len(regions))
	perWriter := regions[0].LogicalCapacity() / writers
	var wg sync.WaitGroup
	errCh := make(chan error, len(regions)*writers)
	for ri, r := range regions {
		shadows[ri] = make([][]shadow, writers)
		for k := 0; k < writers; k++ {
			shadows[ri][k] = make([]shadow, perWriter)
			wg.Add(1)
			go func(r *Region, ri, k int) {
				defer wg.Done()
				w := tl.NewWorker()
				rng := rand.New(rand.NewSource(int64(ri*writers+k)*2654435761 + 1))
				sh := shadows[ri][k]
				base := k * perWriter
				for op := 0; op < opsPerWriter; op++ {
					slot := rng.Intn(perWriter)
					id := core.PageID(base + slot + 1)
					if sh[slot].has && rng.Intn(16) == 0 {
						if err := r.Free(id); err != nil {
							errCh <- fmt.Errorf("region %d free %d: %w", ri, id, err)
							return
						}
						sh[slot].has = false
						continue
					}
					fill := byte(op)
					if err := r.Write(w, id, pageOf(r.dev, fill), nil); err != nil {
						errCh <- fmt.Errorf("region %d write %d: %w", ri, id, err)
						return
					}
					sh[slot].fill, sh[slot].has = fill, true
					if rng.Intn(8) == 0 {
						got, _, err := r.Read(w, id)
						if err != nil {
							errCh <- fmt.Errorf("region %d read %d: %w", ri, id, err)
							return
						}
						if got[0] != fill {
							errCh <- fmt.Errorf("region %d page %d read fill %d, want %d", ri, id, got[0], fill)
							return
						}
					}
				}
			}(r, ri, k)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		for ri, r := range regions {
			t.Logf("region %d state:\n%s", ri, dumpChips(r))
		}
		t.Fatal(err)
	}
	for _, r := range regions {
		r.Close()
	}

	for ri, r := range regions {
		s := r.Stats()
		if s.GCErases == 0 {
			t.Errorf("region %d: churn never triggered GC (%+v)", ri, s)
		}
		// Every live shadow entry reads back with its last value, and no
		// two logical pages share a physical location.
		seen := make(map[flash.PPN]core.PageID)
		mapping := make(map[core.PageID]flash.PPN)
		live := 0
		for k := 0; k < writers; k++ {
			for slot, sh := range shadows[ri][k] {
				if !sh.has {
					continue
				}
				live++
				id := core.PageID(k*perWriter + slot + 1)
				got, _, err := r.Read(nil, id)
				if err != nil {
					t.Fatalf("region %d final read %d: %v", ri, id, err)
				}
				if got[0] != sh.fill {
					t.Fatalf("region %d page %d fill %d, want %d", ri, id, got[0], sh.fill)
				}
				ppn := mustPPN(t, r, id)
				if prev, dup := seen[ppn]; dup {
					t.Fatalf("region %d: pages %d and %d share ppn %d", ri, prev, id, ppn)
				}
				seen[ppn] = id
				mapping[id] = ppn
			}
		}
		if r.MappedPages() != live {
			t.Errorf("region %d MappedPages = %d, shadow has %d", ri, r.MappedPages(), live)
		}
		// Every mapped location must be programmed flash: ScanPhysical
		// must surface each of them.
		programmed := make(map[flash.PPN]bool)
		if err := r.ScanPhysical(nil, func(p PhysicalPage) bool {
			programmed[p.PPN] = true
			return true
		}); err != nil {
			t.Fatal(err)
		}
		for id, ppn := range mapping {
			if !programmed[ppn] {
				t.Fatalf("region %d: page %d maps to unprogrammed ppn %d", ri, id, ppn)
			}
		}
		// Rebuild from the collected mapping and verify again — the
		// crash-recovery contract under the sharded layout.
		if err := r.Adopt(mapping); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < writers; k++ {
			for slot, sh := range shadows[ri][k] {
				if !sh.has {
					continue
				}
				id := core.PageID(k*perWriter + slot + 1)
				got, _, err := r.Read(nil, id)
				if err != nil || got[0] != sh.fill {
					t.Fatalf("region %d post-adopt read %d: %v", ri, id, err)
				}
			}
		}
	}
}

// dumpChips renders per-chip occupancy for stress-failure diagnostics.
func dumpChips(r *Region) string {
	var b strings.Builder
	for _, c := range r.chips {
		cs := r.byChip[c]
		cs.mu.Lock()
		totValid, occupied, full := 0, 0, 0
		for _, bm := range cs.blocks {
			totValid += bm.valid
			if !bm.free {
				occupied++
			}
			if bm.valid >= r.usablePagesPerBlock() {
				full++
			}
		}
		fmt.Fprintf(&b, "  chip %d: free=%d occupied=%d fullValidBlocks=%d totValid=%d reverse=%d exhausted=%v\n",
			cs.chip, cs.freeLen(), occupied, full, totValid, len(cs.reverse), cs.exhausted)
		cs.mu.Unlock()
	}
	return b.String()
}

// Concurrent first-writes of the same id race to different chips; the
// loser's copy must be dropped and the capacity counter must not leak.
func TestRacingFirstWrites(t *testing.T) {
	dev := newDevice(t, flash.SLC, 4, 8, 8, 256)
	r, err := dev.CreateRegion(RegionConfig{
		Name: "d", Mode: ModeSLC, BlocksPerChip: 8, OverProvision: 0.3, GCReserve: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	for k := 0; k < goroutines; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			img := pageOf(dev, byte(k))
			for i := 0; i < 50; i++ {
				if err := r.Write(nil, 1, img, nil); err != nil {
					t.Error(err)
					return
				}
				if i%5 == 0 {
					_ = r.Free(1) // racing frees: ErrUnknownPage is fine
				}
			}
		}(k)
	}
	wg.Wait()
	mapped := r.MappedPages()
	if mapped != 0 && mapped != 1 {
		t.Fatalf("MappedPages = %d after racing writes of one id", mapped)
	}
	if mapped == 1 {
		if got, _, err := r.Read(nil, 1); err != nil || !bytes.Equal(got[1:16], got[0:15]) {
			t.Fatalf("winner unreadable: %v", err)
		}
	}
	// The capacity counter must be exact: filling the remaining logical
	// space succeeds and one more write fails with ErrRegionFull.
	capPages := r.LogicalCapacity()
	for i := mapped; i < capPages; i++ {
		if err := r.Write(nil, core.PageID(i+1000), pageOf(dev, 7), nil); err != nil {
			t.Fatalf("fill to capacity at %d/%d: %v", i, capPages, err)
		}
	}
	if err := r.Write(nil, core.PageID(capPages+1000), pageOf(dev, 7), nil); !errors.Is(err, ErrRegionFull) {
		t.Fatalf("write past capacity: %v", err)
	}
}
