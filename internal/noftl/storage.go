package noftl

import "fmt"

// Storage selects the write-reduction scheme a region's pages are
// flushed with. The zero value is StorageIPA, which preserves the
// original engine behaviour: whether deltas are actually appended is
// still governed by the region's IPA Mode/Scheme (a disabled scheme
// degrades to plain out-of-place writes, exactly as before).
type Storage int

const (
	// StorageIPA flushes via in-place appends into the page's delta area
	// when the update fits (the paper's scheme), falling back to an
	// out-of-place write otherwise.
	StorageIPA Storage = iota
	// StoragePDL flushes page differentials out-of-place into dedicated
	// per-chip log blocks (Page-Differential Logging); the base page is
	// rewritten only on merge or when the differential is too large.
	StoragePDL
	// StorageOOP always rewrites the full page out of place.
	StorageOOP
)

func (s Storage) String() string {
	switch s {
	case StorageIPA:
		return "ipa"
	case StoragePDL:
		return "pdl"
	case StorageOOP:
		return "oop"
	default:
		return fmt.Sprintf("Storage(%d)", int(s))
	}
}

// GCVictim selects the collector's victim policy. The zero value keeps
// the greedy min-valid heap (deterministic, the paper's experiments
// depend on it); CostBenefitVictim scores (1-u)·age/2u at collect time
// (Kawaguchi et al.), preferring cold mostly-invalid blocks.
type GCVictim int

const (
	// GreedyVictim picks the block with the fewest valid pages.
	GreedyVictim GCVictim = iota
	// CostBenefitVictim maximises (1-u)·age/2u where u is the valid-page
	// utilisation and age the time since the block last lost a page.
	CostBenefitVictim
)

func (v GCVictim) String() string {
	switch v {
	case GreedyVictim:
		return "greedy"
	case CostBenefitVictim:
		return "cost-benefit"
	default:
		return fmt.Sprintf("GCVictim(%d)", int(v))
	}
}

// Validate checks the internal consistency of the configuration. PDL
// and plain OOP regions must not carry an IPA page layout: the delta
// area only exists under StorageIPA, and PDL's merge-on-read writes raw
// base images that stale delta slots would corrupt on reconstruct.
func (rc RegionConfig) Validate() error {
	if err := rc.Scheme.Validate(); err != nil {
		return err
	}
	switch rc.Storage {
	case StorageIPA:
	case StoragePDL, StorageOOP:
		if !rc.Scheme.Disabled() {
			return fmt.Errorf("noftl: region %q: STORAGE=%v requires a disabled IPA scheme (no delta area)", rc.Name, rc.Storage)
		}
		if rc.Mode != ModeNone {
			return fmt.Errorf("noftl: region %q: STORAGE=%v requires IPA_MODE none, got %v", rc.Name, rc.Storage, rc.Mode)
		}
	default:
		return fmt.Errorf("noftl: region %q: unknown storage %d", rc.Name, int(rc.Storage))
	}
	switch rc.GCVictim {
	case GreedyVictim, CostBenefitVictim:
	default:
		return fmt.Errorf("noftl: region %q: unknown GC victim policy %d", rc.Name, int(rc.GCVictim))
	}
	return nil
}
