// Package noftl implements the NoFTL architecture the paper builds on
// (Sec. 5): flash management lifted out of the device and integrated with
// the DBMS, giving the storage manager direct control over physical flash
// pages. It provides
//
//   - regions: subsets of the flash array with their own IPA mode (none,
//     SLC, pSLC, odd-MLC) and [N×M] scheme, so In-Place Appends can be
//     applied selectively per database object;
//   - page-level logical→physical mapping with out-of-place writes;
//   - a greedy garbage collector with page migrations and wear-aware
//     free-block selection;
//   - the paper's write_delta I/O command (Sec. 7), which appends a
//     delta-record to the very same physical flash page a database page
//     resides on.
package noftl

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ipa/internal/core"
	"ipa/internal/flash"
	"ipa/internal/sim"
)

// Errors of the NoFTL layer.
var (
	ErrUnknownPage   = errors.New("noftl: logical page not mapped")
	ErrRegionFull    = errors.New("noftl: region logical capacity exhausted")
	ErrNoSpace       = errors.New("noftl: garbage collection cannot reclaim space")
	ErrNotAppendable = errors.New("noftl: physical page does not accept in-place appends")
	ErrRegionExists  = errors.New("noftl: region name already in use")
	ErrNoBlocks      = errors.New("noftl: not enough unassigned blocks")
)

// IPAMode selects how a region exploits the flash type for In-Place
// Appends (Sec. 4 / Appendix C).
type IPAMode int

const (
	// ModeNone disables IPA: every write is out-of-place (the [0×0]
	// baseline).
	ModeNone IPAMode = iota
	// ModeSLC applies IPA on SLC flash: every page accepts appends.
	ModeSLC
	// ModePSLC uses MLC flash in pseudo-SLC mode: only LSB pages are
	// programmed, halving capacity, and every used page accepts appends.
	ModePSLC
	// ModeOddMLC uses the full MLC capacity; appends are possible only on
	// pages that happen to live on LSB pages.
	ModeOddMLC
)

func (m IPAMode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeSLC:
		return "SLC"
	case ModePSLC:
		return "pSLC"
	case ModeOddMLC:
		return "odd-MLC"
	default:
		return fmt.Sprintf("IPAMode(%d)", int(m))
	}
}

// RegionConfig mirrors the paper's CREATE REGION statement (Figure 3).
type RegionConfig struct {
	Name   string
	Mode   IPAMode
	Scheme core.Scheme

	// Chips the region spans (indices into the array). Empty = all chips.
	Chips []int
	// BlocksPerChip assigned to the region on each of its chips.
	BlocksPerChip int
	// OverProvision is the fraction of the region's physical pages kept
	// out of the logical capacity to give the garbage collector slack.
	// Zero selects the paper's 10%.
	OverProvision float64
	// GCReserve is the per-chip low-water mark of free blocks that
	// triggers garbage collection. Zero selects 2.
	GCReserve int
	// WearDelta triggers static wear leveling: when the erase-count gap
	// between the most- and least-worn block of a chip exceeds this, the
	// coldest block's content is migrated so the under-worn block joins
	// the free pool. Zero disables static wear leveling.
	WearDelta int
}

func (rc RegionConfig) overProvision() float64 {
	if rc.OverProvision <= 0 {
		return 0.10
	}
	return rc.OverProvision
}

func (rc RegionConfig) gcReserve() int {
	// Below 2 the collector can find itself without a migration target
	// (one block erasing, none free to receive valid pages), so 2 is the
	// floor as well as the default.
	if rc.GCReserve < 2 {
		return 2
	}
	return rc.GCReserve
}

// Stats are the per-region counters the paper reports.
type Stats struct {
	HostReads        uint64 // logical page reads
	OutOfPlaceWrites uint64 // full-page writes to a new location
	DeltaWrites      uint64 // write_delta commands (in-place appends)
	GCPageMigrations uint64 // valid pages rewritten by the collector
	GCErases         uint64 // block erases by the collector
	WLMigrations     uint64 // pages moved by static wear leveling
	WLErases         uint64 // erases performed by static wear leveling

	// Latency sums (simulated) for response-time reporting.
	ReadTime  time.Duration
	WriteTime time.Duration
	DeltaTime time.Duration
	GCTime    time.Duration
}

// HostWrites is the paper's /Host Writes/: every DBMS write request,
// whether served as an out-of-place write or as an in-place append.
func (s Stats) HostWrites() uint64 { return s.OutOfPlaceWrites + s.DeltaWrites }

// IPAFraction is the share of host writes served as in-place appends
// (the "Out-of-Place Writes vs. In-Place Appends" row).
func (s Stats) IPAFraction() float64 {
	if s.HostWrites() == 0 {
		return 0
	}
	return float64(s.DeltaWrites) / float64(s.HostWrites())
}

// MigrationsPerHostWrite is the paper's [GC Page Migrations per Host Write].
func (s Stats) MigrationsPerHostWrite() float64 {
	if s.HostWrites() == 0 {
		return 0
	}
	return float64(s.GCPageMigrations) / float64(s.HostWrites())
}

// ErasesPerHostWrite is the paper's [GC Erases per Host Write].
func (s Stats) ErasesPerHostWrite() float64 {
	if s.HostWrites() == 0 {
		return 0
	}
	return float64(s.GCErases) / float64(s.HostWrites())
}

// blockMeta tracks the collector-relevant state of one erase unit.
type blockMeta struct {
	id     int // global block index
	chip   int
	valid  int  // valid pages currently stored
	active bool // current write point of its chip
	free   bool // erased and unassigned
	next   int  // next usable page slot index (not PPN) within the block
}

// Region is a slice of the device with its own IPA mode, mapping and
// garbage collector. Methods are safe for concurrent use.
type Region struct {
	dev *Device
	cfg RegionConfig

	mu      sync.Mutex
	mapping map[core.PageID]flash.PPN
	reverse map[flash.PPN]core.PageID
	blocks  map[int]*blockMeta // by global block id
	byChip  map[int][]*blockMeta
	freeCnt map[int]int        // free blocks per chip
	active  map[int]*blockMeta // write point per chip
	rr      int                // round-robin chip cursor for new pages
	chips   []int
	stats   Stats
	logical int // logical page capacity

	// Migration scratch (guarded by mu, like all GC state): page moves
	// inside collectLocked/maybeLevelLocked re-read into these instead of
	// allocating two slices per migrated page.
	migData []byte
	migOOB  []byte
}

// Device owns the flash array and hands out regions.
type Device struct {
	arr  *flash.Array
	geom flash.Geometry

	mu        sync.Mutex
	regions   map[string]*Region
	nextBlock []int // per chip: next unassigned block index within chip
}

// Open wraps an existing flash array in a NoFTL device.
func Open(arr *flash.Array) *Device {
	g := arr.Geometry()
	return &Device{
		arr:       arr,
		geom:      g,
		regions:   make(map[string]*Region),
		nextBlock: make([]int, g.Chips),
	}
}

// Geometry returns the underlying array geometry.
func (d *Device) Geometry() flash.Geometry { return d.geom }

// Array exposes the raw flash (used by tests and low-level tools).
func (d *Device) Array() *flash.Array { return d.arr }

// Region returns a created region by name, or nil.
func (d *Device) Region(name string) *Region {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.regions[name]
}

// CreateRegion carves a new region out of unassigned blocks.
func (d *Device) CreateRegion(rc RegionConfig) (*Region, error) {
	if err := rc.Scheme.Validate(); err != nil {
		return nil, err
	}
	if (rc.Mode == ModePSLC || rc.Mode == ModeOddMLC) && d.geom.Cell != flash.MLC {
		return nil, fmt.Errorf("noftl: mode %v requires MLC flash", rc.Mode)
	}
	if rc.Mode == ModeSLC && d.geom.Cell != flash.SLC {
		return nil, fmt.Errorf("noftl: mode SLC requires SLC flash")
	}
	if rc.BlocksPerChip <= 0 {
		return nil, fmt.Errorf("noftl: region %q needs BlocksPerChip > 0", rc.Name)
	}
	chips := rc.Chips
	if len(chips) == 0 {
		chips = make([]int, d.geom.Chips)
		for i := range chips {
			chips[i] = i
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.regions[rc.Name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrRegionExists, rc.Name)
	}
	for _, c := range chips {
		if c < 0 || c >= d.geom.Chips {
			return nil, fmt.Errorf("noftl: chip %d out of range", c)
		}
		if d.nextBlock[c]+rc.BlocksPerChip > d.geom.BlocksPerChip {
			return nil, fmt.Errorf("%w: chip %d has %d left, need %d",
				ErrNoBlocks, c, d.geom.BlocksPerChip-d.nextBlock[c], rc.BlocksPerChip)
		}
	}
	r := &Region{
		dev:     d,
		cfg:     rc,
		mapping: make(map[core.PageID]flash.PPN),
		reverse: make(map[flash.PPN]core.PageID),
		blocks:  make(map[int]*blockMeta),
		byChip:  make(map[int][]*blockMeta),
		freeCnt: make(map[int]int),
		active:  make(map[int]*blockMeta),
		chips:   append([]int(nil), chips...),
	}
	physPages := 0
	for _, c := range chips {
		for i := 0; i < rc.BlocksPerChip; i++ {
			gid := c*d.geom.BlocksPerChip + d.nextBlock[c] + i
			bm := &blockMeta{id: gid, chip: c, free: true}
			r.blocks[gid] = bm
			r.byChip[c] = append(r.byChip[c], bm)
			r.freeCnt[c]++
			physPages += r.usablePagesPerBlock()
		}
		d.nextBlock[c] += rc.BlocksPerChip
	}
	r.logical = int(float64(physPages) * (1 - rc.overProvision()))
	if r.logical < 1 {
		return nil, fmt.Errorf("noftl: region %q has no logical capacity", rc.Name)
	}
	d.regions[rc.Name] = r
	return r, nil
}

// usablePagesPerBlock accounts for pSLC halving.
func (r *Region) usablePagesPerBlock() int {
	if r.cfg.Mode == ModePSLC {
		return r.dev.geom.PagesPerBlock / 2
	}
	return r.dev.geom.PagesPerBlock
}

// pageSlotToPPN maps a usable slot index within a block to a PPN,
// skipping MSB pages in pSLC mode.
func (r *Region) pageSlotToPPN(block, slot int) flash.PPN {
	base := r.dev.geom.FirstPageOfBlock(block)
	if r.cfg.Mode == ModePSLC {
		return base + flash.PPN(slot*2) // even indices are LSB pages
	}
	return base + flash.PPN(slot)
}

// Name returns the region name.
func (r *Region) Name() string { return r.cfg.Name }

// PageSize returns the flash page size backing the region.
func (r *Region) PageSize() int { return r.dev.geom.PageSize }

// OOBSize returns the per-page spare-area size available for ECC.
func (r *Region) OOBSize() int { return r.dev.geom.OOBSize }

// Mode returns the region's IPA mode.
func (r *Region) Mode() IPAMode { return r.cfg.Mode }

// Scheme returns the region's [N×M] scheme.
func (r *Region) Scheme() core.Scheme { return r.cfg.Scheme }

// LogicalCapacity is the number of logical pages the region can map.
func (r *Region) LogicalCapacity() int { return r.logical }

// MappedPages returns the number of currently mapped logical pages.
func (r *Region) MappedPages() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.mapping)
}

// Stats returns a snapshot of the region counters.
func (r *Region) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// ResetStats zeroes the region counters.
func (r *Region) ResetStats() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats = Stats{}
}

// Contains reports whether the logical page is mapped in this region.
func (r *Region) Contains(id core.PageID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.mapping[id]
	return ok
}

// PPNOf returns the current physical location of a logical page.
func (r *Region) PPNOf(id core.PageID) (flash.PPN, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.mapping[id]
	return p, ok
}

// Read fetches the logical page's data and OOB area.
func (r *Region) Read(w *sim.Worker, id core.PageID) (data, oob []byte, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ppn, ok := r.mapping[id]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %d", ErrUnknownPage, id)
	}
	r.stats.HostReads++
	data, oob, lat, err := r.dev.arr.Read(w, ppn)
	if err != nil {
		return nil, nil, err
	}
	r.stats.ReadTime += lat
	return data, oob, nil
}

// ReadInto fetches the logical page into caller-owned buffers: data (page
// size) and/or oob (spare size) may be nil to skip that part of the
// transfer. This is the allocation-free twin of Read used by the buffer
// pool's steady-state fetch path.
func (r *Region) ReadInto(w *sim.Worker, id core.PageID, data, oob []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	ppn, ok := r.mapping[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownPage, id)
	}
	r.stats.HostReads++
	lat, err := r.dev.arr.ReadInto(w, ppn, data, oob)
	if err != nil {
		return err
	}
	r.stats.ReadTime += lat
	return nil
}

// migBuffers returns the region's migration scratch buffers, sized on
// first use. Callers hold r.mu.
func (r *Region) migBuffers() (data, oob []byte) {
	if r.migData == nil {
		r.migData = make([]byte, r.dev.geom.PageSize)
		r.migOOB = make([]byte, r.dev.geom.OOBSize)
	}
	return r.migData, r.migOOB
}

// Write stores a full logical page out-of-place: the page is programmed
// at the region's write point and any previous version is invalidated.
// Garbage collection runs foreground when free space is low, exactly the
// interference the paper measures.
func (r *Region) Write(w *sim.Worker, id core.PageID, data, oob []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	prev, existed := r.mapping[id]
	if !existed && len(r.mapping) >= r.logical {
		return fmt.Errorf("%w: %q at %d pages", ErrRegionFull, r.cfg.Name, r.logical)
	}
	chip := r.chips[r.rr%len(r.chips)]
	r.rr++
	if existed {
		chip = r.dev.geom.ChipOf(prev) // keep a page on its chip for locality
	}
	ppn, err := r.allocLocked(w, chip)
	if err != nil {
		return err
	}
	// Invalidate the old version after successful allocation. Re-read the
	// mapping: garbage collection inside allocLocked may have migrated the
	// previous copy, making the earlier lookup stale.
	if existed {
		if cur, ok := r.mapping[id]; ok {
			r.invalidateLocked(cur)
		}
	}
	r.mapping[id] = ppn
	r.reverse[ppn] = id
	r.blocks[r.dev.geom.BlockOf(ppn)].valid++
	r.stats.OutOfPlaceWrites++
	lat, err := r.dev.arr.Program(w, ppn, data, oob)
	if err != nil {
		return fmt.Errorf("noftl: program page %d at ppn %d: %w", id, ppn, err)
	}
	r.stats.WriteTime += lat
	return nil
}

// CanAppend reports whether the logical page's current physical location
// accepts a write_delta (mode allows it, page is an LSB page, and the
// chip's re-program budget is not exhausted).
func (r *Region) CanAppend(id core.PageID) bool {
	r.mu.Lock()
	ppn, ok := r.mapping[id]
	r.mu.Unlock()
	if !ok {
		return false
	}
	switch r.cfg.Mode {
	case ModeNone:
		return false
	case ModeOddMLC:
		if !r.dev.geom.IsLSB(ppn) {
			return false
		}
	}
	return r.dev.arr.Appends(ppn) < r.maxAppends()
}

func (r *Region) maxAppends() int {
	if n := r.cfg.Scheme.N; n > 0 {
		return n
	}
	return 0
}

// WriteDelta is the paper's write_delta(LBA, offset, delta_length,
// delta_bytes) command, extended with an optional OOB range so the
// per-record ECC can be appended alongside (Sec. 6.2). The delta is
// ISPP-programmed onto the page's current physical location.
func (r *Region) WriteDelta(w *sim.Worker, id core.PageID, off int, delta []byte, oobOff int, oobDelta []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	ppn, ok := r.mapping[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownPage, id)
	}
	if r.cfg.Mode == ModeNone {
		return fmt.Errorf("%w: region %q has IPA disabled", ErrNotAppendable, r.cfg.Name)
	}
	if r.cfg.Mode == ModeOddMLC && !r.dev.geom.IsLSB(ppn) {
		return fmt.Errorf("%w: page %d resides on an MSB page", ErrNotAppendable, id)
	}
	lat, err := r.dev.arr.ProgramDelta(w, ppn, off, delta, oobOff, oobDelta)
	if err != nil {
		return fmt.Errorf("noftl: write_delta page %d: %w", id, err)
	}
	r.stats.DeltaWrites++
	r.stats.DeltaTime += lat
	return nil
}

// Refresh performs a Correct-and-Refresh re-program of the logical
// page's current physical location with the (ECC-corrected) image —
// restoring leaked charge without relocating the page (Sec. 2.3).
func (r *Region) Refresh(w *sim.Worker, id core.PageID, data, oob []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	ppn, ok := r.mapping[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownPage, id)
	}
	if _, err := r.dev.arr.Reprogram(w, ppn, data, oob); err != nil {
		return fmt.Errorf("noftl: refresh page %d: %w", id, err)
	}
	return nil
}

// Free unmaps a logical page, invalidating its physical copy.
func (r *Region) Free(id core.PageID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	ppn, ok := r.mapping[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownPage, id)
	}
	delete(r.mapping, id)
	delete(r.reverse, ppn)
	r.invalidateLocked(ppn)
	return nil
}

func (r *Region) invalidateLocked(ppn flash.PPN) {
	bm := r.blocks[r.dev.geom.BlockOf(ppn)]
	if bm != nil && bm.valid > 0 {
		bm.valid--
	}
	delete(r.reverse, ppn)
}

// allocLocked returns the next usable PPN on the given chip, running
// garbage collection (in the foreground, as the interference the paper
// measures) when the chip's free-block pool is at its reserve.
func (r *Region) allocLocked(w *sim.Worker, chip int) (flash.PPN, error) {
	maxAttempts := 2*len(r.byChip[chip]) + 4
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if act := r.active[chip]; act != nil {
			if act.next < r.usablePagesPerBlock() {
				ppn := r.pageSlotToPPN(act.id, act.next)
				act.next++
				return ppn, nil
			}
			act.active = false
			r.active[chip] = nil
		}
		// The pool is low: reclaim first. Collection may itself install a
		// partially-filled active block (its migration target); reuse it
		// rather than popping another block, or the pool drains.
		if r.freeCnt[chip] <= r.cfg.gcReserve() {
			err := r.collectLocked(w, chip)
			if a := r.active[chip]; a != nil && a.next < r.usablePagesPerBlock() {
				continue
			}
			if err != nil && r.freeCnt[chip] == 0 {
				return 0, err
			}
		}
		nb := r.popFreeLocked(chip)
		if nb == nil {
			return 0, fmt.Errorf("%w: chip %d of region %q", ErrNoSpace, chip, r.cfg.Name)
		}
		nb.active = true
		nb.free = false
		nb.next = 0
		nb.valid = 0
		r.active[chip] = nb
	}
	return 0, fmt.Errorf("%w: allocation livelock on chip %d of region %q", ErrNoSpace, chip, r.cfg.Name)
}

// popFreeLocked removes and returns the free block with the lowest erase
// count on the chip (simple wear leveling), or nil.
func (r *Region) popFreeLocked(chip int) *blockMeta {
	var best *blockMeta
	for _, bm := range r.byChip[chip] {
		if !bm.free {
			continue
		}
		if best == nil || r.dev.arr.EraseCount(bm.id) < r.dev.arr.EraseCount(best.id) {
			best = bm
		}
	}
	if best != nil {
		r.freeCnt[chip]--
	}
	return best
}

// collectLocked reclaims one block on the chip: the non-active block with
// the fewest valid pages is migrated and erased. Runs with r.mu held,
// releasing it around flash operations.
func (r *Region) collectLocked(w *sim.Worker, chip int) error {
	victims := make([]*blockMeta, 0, len(r.byChip[chip]))
	for _, bm := range r.byChip[chip] {
		if bm.free || bm.active {
			continue
		}
		victims = append(victims, bm)
	}
	if len(victims) == 0 {
		return fmt.Errorf("%w: no victim on chip %d", ErrNoSpace, chip)
	}
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].valid != victims[j].valid {
			return victims[i].valid < victims[j].valid
		}
		return victims[i].id < victims[j].id
	})
	victim := victims[0]
	if victim.valid >= r.usablePagesPerBlock() {
		return fmt.Errorf("%w: best victim fully valid on chip %d", ErrNoSpace, chip)
	}
	// Migrate every still-valid page. The raw physical image (including
	// any programmed delta-records and OOB codes) moves as-is, so the new
	// location decodes identically.
	g := r.dev.geom
	for slot := 0; slot < r.usablePagesPerBlock(); slot++ {
		ppn := r.pageSlotToPPN(victim.id, slot)
		id, valid := r.reverse[ppn]
		if !valid {
			continue
		}
		dst, err := r.allocMigrationTargetLocked(chip, victim)
		if err != nil {
			return err
		}
		data, oob := r.migBuffers()
		rlat, err := r.dev.arr.ReadInto(w, ppn, data, oob)
		if err != nil {
			return err
		}
		plat, err := r.dev.arr.Program(w, dst, data, oob)
		if err != nil {
			return err
		}
		r.stats.GCTime += rlat + plat
		r.stats.GCPageMigrations++
		delete(r.reverse, ppn)
		victim.valid--
		r.mapping[id] = dst
		r.reverse[dst] = id
		r.blocks[g.BlockOf(dst)].valid++
	}
	elat, err := r.dev.arr.Erase(w, victim.id)
	if err != nil && !errors.Is(err, flash.ErrWornOut) {
		return err
	}
	r.stats.GCTime += elat
	r.stats.GCErases++
	victim.free = true
	victim.valid = 0
	victim.next = 0
	r.freeCnt[chip]++
	r.maybeLevelLocked(w, chip)
	return nil
}

// maybeLevelLocked performs static wear leveling on the chip: if the
// spread between the most- and least-worn blocks exceeds the configured
// delta, the least-worn *occupied* block (cold data pins low-wear blocks)
// is evacuated and erased, returning it to circulation.
func (r *Region) maybeLevelLocked(w *sim.Worker, chip int) {
	if r.cfg.WearDelta <= 0 {
		return
	}
	arr := r.dev.arr
	var coldest *blockMeta
	var maxWear, minWear uint32
	first := true
	for _, bm := range r.byChip[chip] {
		wear := arr.EraseCount(bm.id)
		if first || wear > maxWear {
			maxWear = wear
		}
		if first || wear < minWear {
			minWear = wear
		}
		first = false
		if bm.free || bm.active {
			continue
		}
		if coldest == nil || arr.EraseCount(bm.id) < arr.EraseCount(coldest.id) {
			coldest = bm
		}
	}
	if coldest == nil || int(maxWear-minWear) <= r.cfg.WearDelta {
		return
	}
	if arr.EraseCount(coldest.id) != minWear {
		return // the least-worn block is already free or active
	}
	// Evacuate the cold block exactly like a GC victim, charging the
	// traffic to the wear-leveling counters.
	g := r.dev.geom
	for slot := 0; slot < r.usablePagesPerBlock(); slot++ {
		ppn := r.pageSlotToPPN(coldest.id, slot)
		id, valid := r.reverse[ppn]
		if !valid {
			continue
		}
		dst, err := r.allocMigrationTargetLocked(chip, coldest)
		if err != nil {
			return // pool too tight; try again after the next collect
		}
		data, oob := r.migBuffers()
		if _, err := arr.ReadInto(w, ppn, data, oob); err != nil {
			return
		}
		if _, err := arr.Program(w, dst, data, oob); err != nil {
			return
		}
		r.stats.WLMigrations++
		delete(r.reverse, ppn)
		coldest.valid--
		r.mapping[id] = dst
		r.reverse[dst] = id
		r.blocks[g.BlockOf(dst)].valid++
	}
	if _, err := arr.Erase(w, coldest.id); err != nil && !errors.Is(err, flash.ErrWornOut) {
		return
	}
	r.stats.WLErases++
	coldest.free = true
	coldest.valid = 0
	coldest.next = 0
	r.freeCnt[chip]++
}

// allocMigrationTargetLocked returns a destination PPN for a migrated
// page, never selecting the victim block.
func (r *Region) allocMigrationTargetLocked(chip int, victim *blockMeta) (flash.PPN, error) {
	for {
		act := r.active[chip]
		if act != nil && act != victim && act.next < r.usablePagesPerBlock() {
			ppn := r.pageSlotToPPN(act.id, act.next)
			act.next++
			return ppn, nil
		}
		if act != nil {
			act.active = false
			r.active[chip] = nil
		}
		nb := r.popFreeLocked(chip)
		if nb == nil || nb == victim {
			return 0, fmt.Errorf("%w: migration target on chip %d", ErrNoSpace, chip)
		}
		nb.active = true
		nb.free = false
		nb.next = 0
		nb.valid = 0
		r.active[chip] = nb
	}
}
