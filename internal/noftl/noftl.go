// Package noftl implements the NoFTL architecture the paper builds on
// (Sec. 5): flash management lifted out of the device and integrated with
// the DBMS, giving the storage manager direct control over physical flash
// pages. It provides
//
//   - regions: subsets of the flash array with their own IPA mode (none,
//     SLC, pSLC, odd-MLC) and [N×M] scheme, so In-Place Appends can be
//     applied selectively per database object;
//   - page-level logical→physical mapping with out-of-place writes;
//   - a greedy garbage collector with page migrations and wear-aware
//     free-block selection, runnable inline (foreground, the paper's
//     measured configuration) or as one background collector per chip;
//   - the paper's write_delta I/O command (Sec. 7), which appends a
//     delta-record to the very same physical flash page a database page
//     resides on.
//
// # Concurrency
//
// The region is sharded per chip: every chip has its own chipState with
// its own lock, active block, free-block heap, victim heap and reverse
// map, so allocation and garbage collection on one chip never contend
// with I/O on another. The logical→physical map is split over 64
// RWMutex-guarded shards keyed by page id. Lock ordering is strict:
// a chip lock may be taken while holding no lock, and a map-shard lock
// only while holding at most one chip lock; no two chip locks are ever
// held together (cross-chip work is deferred until the first lock is
// dropped). Flash I/O for a page happens under its chip's lock — that is
// what serialises programs into an active block (StrictProgramOrder) and
// keeps erases from racing reads.
//
// Lock-free lookups (PPNOf, the entry of Read/Write) are validated after
// the chip lock is acquired: if GC migrated the page meanwhile, the
// operation retries against the new location.
package noftl

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ipa/internal/core"
	"ipa/internal/flash"
	"ipa/internal/sim"
)

// Errors of the NoFTL layer.
var (
	ErrUnknownPage   = errors.New("noftl: logical page not mapped")
	ErrRegionFull    = errors.New("noftl: region logical capacity exhausted")
	ErrNoSpace       = errors.New("noftl: garbage collection cannot reclaim space")
	ErrNotAppendable = errors.New("noftl: physical page does not accept in-place appends")
	ErrRegionExists  = errors.New("noftl: region name already in use")
	ErrNoBlocks      = errors.New("noftl: not enough unassigned blocks")
)

// IPAMode selects how a region exploits the flash type for In-Place
// Appends (Sec. 4 / Appendix C).
type IPAMode int

const (
	// ModeNone disables IPA: every write is out-of-place (the [0×0]
	// baseline).
	ModeNone IPAMode = iota
	// ModeSLC applies IPA on SLC flash: every page accepts appends.
	ModeSLC
	// ModePSLC uses MLC flash in pseudo-SLC mode: only LSB pages are
	// programmed, halving capacity, and every used page accepts appends.
	ModePSLC
	// ModeOddMLC uses the full MLC capacity; appends are possible only on
	// pages that happen to live on LSB pages.
	ModeOddMLC
)

func (m IPAMode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeSLC:
		return "SLC"
	case ModePSLC:
		return "pSLC"
	case ModeOddMLC:
		return "odd-MLC"
	default:
		return fmt.Sprintf("IPAMode(%d)", int(m))
	}
}

// GCPolicy selects when a region's garbage collector runs.
type GCPolicy int

const (
	// GCForeground collects inline in the writing thread when a chip's
	// free pool reaches the reserve — the interference the paper measures,
	// and fully deterministic under a sequential workload. The default.
	GCForeground GCPolicy = iota
	// GCBackground runs one collector goroutine per chip, woken at the
	// soft free-block watermark so writers almost never collect inline.
	// Writers throttle at the hard reserve and receive ErrNoSpace only
	// when the collector cannot reclaim anything at all.
	GCBackground
)

func (p GCPolicy) String() string {
	switch p {
	case GCForeground:
		return "foreground"
	case GCBackground:
		return "background"
	default:
		return fmt.Sprintf("GCPolicy(%d)", int(p))
	}
}

// RegionConfig mirrors the paper's CREATE REGION statement (Figure 3).
type RegionConfig struct {
	Name   string
	Mode   IPAMode
	Scheme core.Scheme

	// Storage selects the write-reduction scheme (IPA delta appends, PDL
	// log blocks, or plain out-of-place). Zero value StorageIPA keeps the
	// original behaviour. See Validate for the layout constraints.
	Storage Storage
	// GCVictim selects the collector's victim policy; zero value is the
	// deterministic greedy min-valid heap.
	GCVictim GCVictim

	// Chips the region spans (indices into the array). Empty = all chips.
	Chips []int
	// BlocksPerChip assigned to the region on each of its chips.
	BlocksPerChip int
	// OverProvision is the fraction of the region's physical pages kept
	// out of the logical capacity to give the garbage collector slack.
	// Zero selects the paper's 10%.
	OverProvision float64
	// GCReserve is the per-chip low-water mark of free blocks that
	// triggers garbage collection. Zero selects 2.
	GCReserve int
	// WearDelta triggers static wear leveling: when the erase-count gap
	// between the most- and least-worn block of a chip exceeds this, the
	// coldest block's content is migrated so the under-worn block joins
	// the free pool. Zero disables static wear leveling.
	WearDelta int
	// GCPolicy selects foreground (inline, deterministic) or background
	// (per-chip collector goroutines) garbage collection. The zero value
	// is GCForeground, preserving the paper-experiment semantics.
	GCPolicy GCPolicy
	// GCSoftWater is the per-chip free-block level at which a background
	// collector is woken, giving it a head start before writers reach the
	// hard reserve. Zero (or any value <= the reserve) selects
	// gcReserve()+2. Ignored under GCForeground.
	GCSoftWater int
}

func (rc RegionConfig) overProvision() float64 {
	if rc.OverProvision <= 0 {
		return 0.10
	}
	return rc.OverProvision
}

func (rc RegionConfig) gcReserve() int {
	// Below 2 the collector can find itself without a migration target
	// (one block erasing, none free to receive valid pages), so 2 is the
	// floor as well as the default.
	if rc.GCReserve < 2 {
		return 2
	}
	return rc.GCReserve
}

func (rc RegionConfig) softWater() int {
	if rc.GCSoftWater > rc.gcReserve() {
		return rc.GCSoftWater
	}
	return rc.gcReserve() + 2
}

// Stats are the per-region counters the paper reports.
type Stats struct {
	HostReads        uint64 // logical page reads
	OutOfPlaceWrites uint64 // full-page writes to a new location
	DeltaWrites      uint64 // write_delta commands (in-place appends)
	GCPageMigrations uint64 // valid pages rewritten by the collector
	GCErases         uint64 // block erases by the collector
	WLMigrations     uint64 // pages moved by static wear leveling
	WLErases         uint64 // erases performed by static wear leveling

	// Background-GC visibility: BGPageMigrations/BGErases are the subset
	// of GCPageMigrations/GCErases performed by background collectors;
	// GCStalls counts writer throttle episodes at the hard reserve and
	// GCStallTime the wall-clock time spent in them.
	BGPageMigrations uint64
	BGErases         uint64
	GCStalls         uint64
	GCStallTime      time.Duration

	// Latency sums (simulated) for response-time reporting.
	ReadTime  time.Duration
	WriteTime time.Duration
	DeltaTime time.Duration
	GCTime    time.Duration
}

// HostWrites is the paper's /Host Writes/: every DBMS write request,
// whether served as an out-of-place write or as an in-place append.
func (s Stats) HostWrites() uint64 { return s.OutOfPlaceWrites + s.DeltaWrites }

// IPAFraction is the share of host writes served as in-place appends
// (the "Out-of-Place Writes vs. In-Place Appends" row).
func (s Stats) IPAFraction() float64 {
	if s.HostWrites() == 0 {
		return 0
	}
	return float64(s.DeltaWrites) / float64(s.HostWrites())
}

// MigrationsPerHostWrite is the paper's [GC Page Migrations per Host Write].
func (s Stats) MigrationsPerHostWrite() float64 {
	if s.HostWrites() == 0 {
		return 0
	}
	return float64(s.GCPageMigrations) / float64(s.HostWrites())
}

// ErasesPerHostWrite is the paper's [GC Erases per Host Write].
func (s Stats) ErasesPerHostWrite() float64 {
	if s.HostWrites() == 0 {
		return 0
	}
	return float64(s.GCErases) / float64(s.HostWrites())
}

func (s *Stats) add(o Stats) {
	s.HostReads += o.HostReads
	s.OutOfPlaceWrites += o.OutOfPlaceWrites
	s.DeltaWrites += o.DeltaWrites
	s.GCPageMigrations += o.GCPageMigrations
	s.GCErases += o.GCErases
	s.WLMigrations += o.WLMigrations
	s.WLErases += o.WLErases
	s.BGPageMigrations += o.BGPageMigrations
	s.BGErases += o.BGErases
	s.GCStalls += o.GCStalls
	s.GCStallTime += o.GCStallTime
	s.ReadTime += o.ReadTime
	s.WriteTime += o.WriteTime
	s.DeltaTime += o.DeltaTime
	s.GCTime += o.GCTime
}

// blockMeta tracks the collector-relevant state of one erase unit. All
// fields are guarded by the owning chip's lock. Every block is in
// exactly one of four states: in the free pool, the chip's active block,
// in the victim heap, or being evacuated (collecting).
type blockMeta struct {
	id         int // global block index
	chip       int
	valid      int  // valid pages currently stored
	next       int  // next usable page slot index (not PPN) within the block
	active     bool // current write point of its chip
	free       bool // erased, in the free pool
	collecting bool // being evacuated by GC or the wear leveler

	eraseSnap uint32 // erase count at free-pool push (heap key; see freeLess)
	freeIdx   int    // position in the chip's free heap, -1 when absent
	victIdx   int    // position in the chip's victim heap, -1 when absent

	// stamp is the region tick at which the block last lost a valid page
	// (its "age" origin for cost-benefit victim scoring). Only maintained
	// under CostBenefitVictim so the greedy path stays cost-free.
	stamp uint64
}

// chipState is one chip's shard of the region: write point, block
// bookkeeping, reverse map and stats cell, all guarded by mu.
type chipState struct {
	chip int

	mu sync.Mutex

	blocks   []*blockMeta // the chip's blocks, ascending id (immutable slice)
	freePool blockHeap    // erased blocks, min (eraseSnap, id)
	victims  blockHeap    // occupied non-active blocks, min (valid, id)
	active   *blockMeta   // current write point, nil between blocks
	// migTarget is the dedicated migration destination of background-policy
	// regions (nil in foreground regions, which migrate into the active
	// block). Keeping collector traffic off the active block means writers
	// filling it during a collection's lock-yield gaps cannot drain the
	// reserve the collector itself needs to finish.
	migTarget *blockMeta
	reverse   map[flash.PPN]core.PageID

	// exhausted latches a failed collection so the background collector
	// parks instead of spinning on an unreclaimable chip; any page
	// invalidation (or a later successful collect) clears it.
	exhausted bool
	wake      chan struct{} // collector doorbell, cap 1

	stats Stats

	// Migration scratch: page moves inside the collector re-read into
	// these instead of allocating two slices per migrated page.
	migData []byte
	migOOB  []byte
}

func (cs *chipState) freeLen() int { return cs.freePool.len() }

// pushFree returns an erased block to the pool.
func (cs *chipState) pushFree(bm *blockMeta, eraseCount uint32) {
	bm.free = true
	bm.eraseSnap = eraseCount
	cs.freePool.push(bm)
}

// popFree removes and returns the free block with the lowest erase count
// (wear-aware selection), or nil.
func (cs *chipState) popFree() *blockMeta {
	bm := cs.freePool.pop()
	if bm != nil {
		bm.free = false
	}
	return bm
}

func (cs *chipState) addVictim(bm *blockMeta) { cs.victims.push(bm) }

func (cs *chipState) removeVictim(bm *blockMeta) {
	if bm.victIdx >= 0 {
		cs.victims.remove(bm.victIdx)
	}
}

// fixVictim restores heap order after bm.valid changed. No-op for blocks
// not in the victim heap (free, active or collecting).
func (cs *chipState) fixVictim(bm *blockMeta) {
	if bm.victIdx >= 0 {
		cs.victims.fix(bm.victIdx)
	}
}

func (cs *chipState) migBuffers(g flash.Geometry) (data, oob []byte) {
	if cs.migData == nil {
		cs.migData = make([]byte, g.PageSize)
		cs.migOOB = make([]byte, g.OOBSize)
	}
	return cs.migData, cs.migOOB
}

// mapShards is the fan-out of the logical→physical map. 64 shards keep
// the per-shard RWMutex essentially uncontended at 16 workers while the
// whole array stays small enough to embed in the Region.
const mapShards = 64

type mapShard struct {
	mu sync.RWMutex
	m  map[core.PageID]flash.PPN
}

// Region is a slice of the device with its own IPA mode, mapping and
// garbage collector. Methods are safe for concurrent use.
type Region struct {
	dev *Device
	cfg RegionConfig

	chips      []int
	byChip     []*chipState       // indexed by global chip id; nil outside the region
	blockIndex map[int]*blockMeta // by global block id; read-only after creation

	maps    [mapShards]mapShard
	mapped  atomic.Int64  // current mapping size (logical-capacity accounting)
	rr      atomic.Uint64 // round-robin cursor for placing new pages
	tick    atomic.Uint64 // invalidation clock for cost-benefit block ages
	logical int           // logical page capacity

	// Background-GC lifecycle (nil/unused under GCForeground).
	closed atomic.Bool
	stop   chan struct{}
	wg     sync.WaitGroup
}

// Device owns the flash array and hands out regions.
type Device struct {
	arr  *flash.Array
	geom flash.Geometry

	mu        sync.Mutex
	regions   map[string]*Region
	nextBlock []int // per chip: next unassigned block index within chip
}

// Open wraps an existing flash array in a NoFTL device.
func Open(arr *flash.Array) *Device {
	g := arr.Geometry()
	return &Device{
		arr:       arr,
		geom:      g,
		regions:   make(map[string]*Region),
		nextBlock: make([]int, g.Chips),
	}
}

// Geometry returns the underlying array geometry.
func (d *Device) Geometry() flash.Geometry { return d.geom }

// Array exposes the raw flash (used by tests and low-level tools).
func (d *Device) Array() *flash.Array { return d.arr }

// Region returns a created region by name, or nil.
func (d *Device) Region(name string) *Region {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.regions[name]
}

// Close stops the background collectors of every region (see
// Region.Close). Safe to call more than once.
func (d *Device) Close() {
	d.mu.Lock()
	regs := make([]*Region, 0, len(d.regions))
	for _, r := range d.regions {
		regs = append(regs, r)
	}
	d.mu.Unlock()
	for _, r := range regs {
		r.Close()
	}
}

// CreateRegion carves a new region out of unassigned blocks. Under
// GCBackground it also starts one collector goroutine per chip; call
// Region.Close (or Device.Close) to stop them.
func (d *Device) CreateRegion(rc RegionConfig) (*Region, error) {
	if err := rc.Validate(); err != nil {
		return nil, err
	}
	if (rc.Mode == ModePSLC || rc.Mode == ModeOddMLC) && d.geom.Cell != flash.MLC {
		return nil, fmt.Errorf("noftl: mode %v requires MLC flash", rc.Mode)
	}
	if rc.Mode == ModeSLC && d.geom.Cell != flash.SLC {
		return nil, fmt.Errorf("noftl: mode SLC requires SLC flash")
	}
	if rc.BlocksPerChip <= 0 {
		return nil, fmt.Errorf("noftl: region %q needs BlocksPerChip > 0", rc.Name)
	}
	chips := rc.Chips
	if len(chips) == 0 {
		chips = make([]int, d.geom.Chips)
		for i := range chips {
			chips[i] = i
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.regions[rc.Name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrRegionExists, rc.Name)
	}
	for _, c := range chips {
		if c < 0 || c >= d.geom.Chips {
			return nil, fmt.Errorf("noftl: chip %d out of range", c)
		}
		if d.nextBlock[c]+rc.BlocksPerChip > d.geom.BlocksPerChip {
			return nil, fmt.Errorf("%w: chip %d has %d left, need %d",
				ErrNoBlocks, c, d.geom.BlocksPerChip-d.nextBlock[c], rc.BlocksPerChip)
		}
	}
	r := &Region{
		dev:        d,
		cfg:        rc,
		chips:      append([]int(nil), chips...),
		byChip:     make([]*chipState, d.geom.Chips),
		blockIndex: make(map[int]*blockMeta),
	}
	for i := range r.maps {
		r.maps[i].m = make(map[core.PageID]flash.PPN)
	}
	physPages := 0
	for _, c := range chips {
		cs := newChipState(c)
		for i := 0; i < rc.BlocksPerChip; i++ {
			gid := c*d.geom.BlocksPerChip + d.nextBlock[c] + i
			bm := &blockMeta{id: gid, chip: c, freeIdx: -1, victIdx: -1}
			cs.blocks = append(cs.blocks, bm)
			r.blockIndex[gid] = bm
			cs.pushFree(bm, d.arr.EraseCount(gid))
			physPages += r.usablePagesPerBlock()
		}
		d.nextBlock[c] += rc.BlocksPerChip
		r.byChip[c] = cs
	}
	r.logical = int(float64(physPages) * (1 - rc.overProvision()))
	if r.logical < 1 {
		return nil, fmt.Errorf("noftl: region %q has no logical capacity", rc.Name)
	}
	d.regions[rc.Name] = r
	if rc.GCPolicy == GCBackground {
		r.startCollectors()
	}
	return r, nil
}

func newChipState(chip int) *chipState {
	cs := &chipState{
		chip:    chip,
		reverse: make(map[flash.PPN]core.PageID),
		wake:    make(chan struct{}, 1),
	}
	cs.freePool = blockHeap{less: freeLess, setIdx: func(bm *blockMeta, i int) { bm.freeIdx = i }}
	cs.victims = blockHeap{less: victimLess, setIdx: func(bm *blockMeta, i int) { bm.victIdx = i }}
	return cs
}

// usablePagesPerBlock accounts for pSLC halving.
func (r *Region) usablePagesPerBlock() int {
	if r.cfg.Mode == ModePSLC {
		return r.dev.geom.PagesPerBlock / 2
	}
	return r.dev.geom.PagesPerBlock
}

// pageSlotToPPN maps a usable slot index within a block to a PPN,
// skipping MSB pages in pSLC mode.
func (r *Region) pageSlotToPPN(block, slot int) flash.PPN {
	base := r.dev.geom.FirstPageOfBlock(block)
	if r.cfg.Mode == ModePSLC {
		return base + flash.PPN(slot*2) // even indices are LSB pages
	}
	return base + flash.PPN(slot)
}

// Name returns the region name.
func (r *Region) Name() string { return r.cfg.Name }

// PageSize returns the flash page size backing the region.
func (r *Region) PageSize() int { return r.dev.geom.PageSize }

// OOBSize returns the per-page spare-area size available for ECC.
func (r *Region) OOBSize() int { return r.dev.geom.OOBSize }

// Mode returns the region's IPA mode.
func (r *Region) Mode() IPAMode { return r.cfg.Mode }

// Scheme returns the region's [N×M] scheme.
func (r *Region) Scheme() core.Scheme { return r.cfg.Scheme }

// GCPolicy returns the region's garbage-collection policy.
func (r *Region) GCPolicy() GCPolicy { return r.cfg.GCPolicy }

// Storage returns the region's write-reduction scheme.
func (r *Region) Storage() Storage { return r.cfg.Storage }

// GCVictim returns the region's GC victim-selection policy.
func (r *Region) GCVictim() GCVictim { return r.cfg.GCVictim }

// LogicalCapacity is the number of logical pages the region can map.
func (r *Region) LogicalCapacity() int { return r.logical }

// MappedPages returns the number of currently mapped logical pages.
func (r *Region) MappedPages() int { return int(r.mapped.Load()) }

// Stats returns a snapshot of the region counters, summed over the
// chip shards. Shards are read one at a time, so the totals are not a
// single atomic cut — same contract as flash.Array.Stats.
func (r *Region) Stats() Stats {
	var total Stats
	for _, c := range r.chips {
		cs := r.byChip[c]
		cs.mu.Lock()
		total.add(cs.stats)
		cs.mu.Unlock()
	}
	return total
}

// ResetStats zeroes the region counters.
func (r *Region) ResetStats() {
	for _, c := range r.chips {
		cs := r.byChip[c]
		cs.mu.Lock()
		cs.stats = Stats{}
		cs.mu.Unlock()
	}
}

func (r *Region) mapShardOf(id core.PageID) *mapShard {
	return &r.maps[uint64(id)&(mapShards-1)]
}

// lookup reads the current mapping of a logical page without any chip
// lock. The result may be stale by the time the caller acts on it;
// mutating paths revalidate under the owning chip's lock.
func (r *Region) lookup(id core.PageID) (flash.PPN, bool) {
	ms := r.mapShardOf(id)
	ms.mu.RLock()
	p, ok := ms.m[id]
	ms.mu.RUnlock()
	return p, ok
}

func (r *Region) chipOf(ppn flash.PPN) *chipState {
	return r.byChip[r.dev.geom.ChipOf(ppn)]
}

// Contains reports whether the logical page is mapped in this region.
func (r *Region) Contains(id core.PageID) bool {
	_, ok := r.lookup(id)
	return ok
}

// PPNOf returns the current physical location of a logical page.
func (r *Region) PPNOf(id core.PageID) (flash.PPN, bool) {
	return r.lookup(id)
}

// Read fetches the logical page's data and OOB area.
func (r *Region) Read(w *sim.Worker, id core.PageID) (data, oob []byte, err error) {
	data = make([]byte, r.dev.geom.PageSize)
	oob = make([]byte, r.dev.geom.OOBSize)
	if err := r.ReadInto(w, id, data, oob); err != nil {
		return nil, nil, err
	}
	return data, oob, nil
}

// ReadInto fetches the logical page into caller-owned buffers: data (page
// size) and/or oob (spare size) may be nil to skip that part of the
// transfer. This is the allocation-free twin of Read used by the buffer
// pool's steady-state fetch path.
func (r *Region) ReadInto(w *sim.Worker, id core.PageID, data, oob []byte) error {
	for {
		ppn, ok := r.lookup(id)
		if !ok {
			return fmt.Errorf("%w: %d", ErrUnknownPage, id)
		}
		cs := r.chipOf(ppn)
		cs.mu.Lock()
		if cur, ok := r.lookup(id); !ok || cur != ppn {
			// Migrated (or freed) between lookup and lock: retry against
			// the new location.
			cs.mu.Unlock()
			continue
		}
		cs.stats.HostReads++
		lat, err := r.dev.arr.ReadInto(w, ppn, data, oob)
		if err == nil {
			cs.stats.ReadTime += lat
		}
		cs.mu.Unlock()
		return err
	}
}

// Write stores a full logical page out-of-place: the page is programmed
// at the region's write point and any previous version is invalidated.
// Under GCForeground, garbage collection runs inline when free space is
// low — exactly the interference the paper measures; under GCBackground
// the per-chip collector is woken instead and the writer only throttles
// at the hard reserve.
func (r *Region) Write(w *sim.Worker, id core.PageID, data, oob []byte) error {
	prev, existed := r.lookup(id)
	if !existed {
		if r.mapped.Add(1) > int64(r.logical) {
			r.mapped.Add(-1)
			return fmt.Errorf("%w: %q at %d pages", ErrRegionFull, r.cfg.Name, r.logical)
		}
	}
	seq := r.rr.Add(1) - 1
	start := int(seq % uint64(len(r.chips)))
	chip := r.chips[start]
	if existed {
		chip = r.dev.geom.ChipOf(prev) // keep a page on its chip for locality
	}
	cs := r.byChip[chip]
	cs.mu.Lock()
	ppn, err := r.allocLocked(w, cs)
	if err != nil {
		// The chosen chip cannot allocate: its share of the region is
		// packed full of valid pages. Physical pools are per chip but
		// capacity is a region-wide promise, and churn makes per-chip
		// load drift (frees are not round-robin), so fail over to the
		// remaining chips before surfacing the error.
		cs.mu.Unlock()
		ppn, cs, err = r.allocFailover(w, chip, start, err)
		if err != nil {
			if !existed {
				r.mapped.Add(-1)
			}
			return err
		}
	}
	// Install the new mapping and retire the previous copy. The lookup
	// above may be stale: GC can have migrated the previous copy, and a
	// racing Free/first-write can have removed or created the entry. The
	// map shard is re-read under its lock and the capacity counter is
	// settled against what is actually replaced.
	var staleCross flash.PPN
	dropCross := false
	ms := r.mapShardOf(id)
	ms.mu.Lock()
	cur, had := ms.m[id]
	ms.m[id] = ppn
	ms.mu.Unlock()
	if had {
		if !existed {
			// Two first-writes raced; the entry is already counted.
			r.mapped.Add(-1)
		}
		if r.dev.geom.ChipOf(cur) == cs.chip {
			r.invalidateLocked(cs, cur)
		} else {
			// The previous copy lives on another chip (the loser of a
			// racing pair of first-writes). Chip locks never nest: drop
			// it after releasing this one.
			staleCross, dropCross = cur, true
		}
	} else if existed {
		// Raced with Free: the entry is being re-created.
		r.mapped.Add(1)
	}
	cs.reverse[ppn] = id
	r.bumpValidLocked(cs, ppn)
	cs.stats.OutOfPlaceWrites++
	lat, perr := r.dev.arr.Program(w, ppn, data, oob)
	if perr == nil {
		cs.stats.WriteTime += lat
	}
	cs.mu.Unlock()
	if dropCross {
		r.dropStaleCopy(staleCross, id)
	}
	if perr != nil {
		return fmt.Errorf("noftl: program page %d at ppn %d: %w", id, ppn, perr)
	}
	return nil
}

// allocFailover retries allocation on every chip of the region except
// the one already tried, in round-robin order from the write's original
// cursor position. On success it returns with the winning chip's lock
// held (the caller installs the mapping and unlocks).
//
// Under background GC a failed sweep is usually transient, not terminal:
// in-flight collections hold their victims off the heaps and chips sit
// at the reserve floor until an erase lands, so the sweep is repeated
// with short real-time sleeps — the collectors run on their own
// goroutines and need wall-clock time, not a condition variable, to make
// progress (sleeping writers can never deadlock; parked ones can). Only
// when repeated sweeps stay empty is the first chip's error surfaced.
func (r *Region) allocFailover(w *sim.Worker, tried, start int, firstErr error) (flash.PPN, *chipState, error) {
	const maxRounds = 400 // * 50µs: ~20ms of grace before ErrNoSpace
	for round := 0; ; round++ {
		for i := 0; i < len(r.chips); i++ {
			c := r.chips[(start+i)%len(r.chips)]
			if round == 0 && c == tried {
				continue
			}
			cs := r.byChip[c]
			cs.mu.Lock()
			ppn, err := r.allocLocked(w, cs)
			if err == nil {
				return ppn, cs, nil
			}
			cs.mu.Unlock()
		}
		if !r.backgroundOn() || round >= maxRounds {
			return 0, nil, firstErr
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// bumpValidLocked counts a new valid page on ppn's block (the caller
// holds the owning chip's lock).
func (r *Region) bumpValidLocked(cs *chipState, ppn flash.PPN) {
	bm := r.blockIndex[r.dev.geom.BlockOf(ppn)]
	bm.valid++
	cs.fixVictim(bm)
}

// invalidateLocked retires one physical copy on cs's chip: the block
// loses a valid page (re-ordering the victim heap) and the reverse entry
// disappears. Clearing exhausted lets a parked collector try again — an
// invalidation is precisely what creates a collectable victim.
func (r *Region) invalidateLocked(cs *chipState, ppn flash.PPN) {
	if bm := r.blockIndex[r.dev.geom.BlockOf(ppn)]; bm != nil && bm.valid > 0 {
		bm.valid--
		cs.fixVictim(bm)
		if r.cfg.GCVictim == CostBenefitVictim {
			bm.stamp = r.tick.Add(1)
		}
	}
	delete(cs.reverse, ppn)
	cs.exhausted = false
	if r.backgroundOn() && cs.freeLen() <= r.cfg.softWater() {
		r.wakeCollector(cs)
	}
}

// dropStaleCopy invalidates a copy of id on a chip other than the one
// that just wrote it, unless the mapping moved back there meanwhile.
func (r *Region) dropStaleCopy(ppn flash.PPN, id core.PageID) {
	cs := r.chipOf(ppn)
	cs.mu.Lock()
	if got, ok := cs.reverse[ppn]; ok && got == id {
		if cur, ok := r.lookup(id); !ok || cur != ppn {
			r.invalidateLocked(cs, ppn)
		}
	}
	cs.mu.Unlock()
}

// CanAppend reports whether the logical page's current physical location
// accepts a write_delta (mode allows it, page is an LSB page, and the
// chip's re-program budget is not exhausted).
func (r *Region) CanAppend(id core.PageID) bool {
	ppn, ok := r.lookup(id)
	if !ok {
		return false
	}
	switch r.cfg.Mode {
	case ModeNone:
		return false
	case ModeOddMLC:
		if !r.dev.geom.IsLSB(ppn) {
			return false
		}
	}
	return r.dev.arr.Appends(ppn) < r.maxAppends()
}

func (r *Region) maxAppends() int {
	if n := r.cfg.Scheme.N; n > 0 {
		return n
	}
	return 0
}

// WriteDelta is the paper's write_delta(LBA, offset, delta_length,
// delta_bytes) command, extended with an optional OOB range so the
// per-record ECC can be appended alongside (Sec. 6.2). The delta is
// ISPP-programmed onto the page's current physical location.
func (r *Region) WriteDelta(w *sim.Worker, id core.PageID, off int, delta []byte, oobOff int, oobDelta []byte) error {
	for {
		ppn, ok := r.lookup(id)
		if !ok {
			return fmt.Errorf("%w: %d", ErrUnknownPage, id)
		}
		if r.cfg.Mode == ModeNone {
			return fmt.Errorf("%w: region %q has IPA disabled", ErrNotAppendable, r.cfg.Name)
		}
		if r.cfg.Mode == ModeOddMLC && !r.dev.geom.IsLSB(ppn) {
			return fmt.Errorf("%w: page %d resides on an MSB page", ErrNotAppendable, id)
		}
		cs := r.chipOf(ppn)
		cs.mu.Lock()
		if cur, ok := r.lookup(id); !ok || cur != ppn {
			cs.mu.Unlock()
			continue
		}
		lat, err := r.dev.arr.ProgramDelta(w, ppn, off, delta, oobOff, oobDelta)
		if err == nil {
			cs.stats.DeltaWrites++
			cs.stats.DeltaTime += lat
		}
		cs.mu.Unlock()
		if err != nil {
			return fmt.Errorf("noftl: write_delta page %d: %w", id, err)
		}
		return nil
	}
}

// Refresh performs a Correct-and-Refresh re-program of the logical
// page's current physical location with the (ECC-corrected) image —
// restoring leaked charge without relocating the page (Sec. 2.3).
func (r *Region) Refresh(w *sim.Worker, id core.PageID, data, oob []byte) error {
	for {
		ppn, ok := r.lookup(id)
		if !ok {
			return fmt.Errorf("%w: %d", ErrUnknownPage, id)
		}
		cs := r.chipOf(ppn)
		cs.mu.Lock()
		if cur, ok := r.lookup(id); !ok || cur != ppn {
			cs.mu.Unlock()
			continue
		}
		_, err := r.dev.arr.Reprogram(w, ppn, data, oob)
		cs.mu.Unlock()
		if err != nil {
			return fmt.Errorf("noftl: refresh page %d: %w", id, err)
		}
		return nil
	}
}

// Free unmaps a logical page, invalidating its physical copy.
func (r *Region) Free(id core.PageID) error {
	for {
		ppn, ok := r.lookup(id)
		if !ok {
			return fmt.Errorf("%w: %d", ErrUnknownPage, id)
		}
		cs := r.chipOf(ppn)
		cs.mu.Lock()
		ms := r.mapShardOf(id)
		ms.mu.Lock()
		if cur, ok := ms.m[id]; !ok || cur != ppn {
			ms.mu.Unlock()
			cs.mu.Unlock()
			continue
		}
		delete(ms.m, id)
		ms.mu.Unlock()
		r.invalidateLocked(cs, ppn)
		cs.mu.Unlock()
		r.mapped.Add(-1)
		return nil
	}
}

// retireActiveLocked demotes the chip's write point into the victim heap
// (it is occupied and may be collected once overwrites invalidate it).
func (r *Region) retireActiveLocked(cs *chipState) {
	act := cs.active
	act.active = false
	cs.active = nil
	cs.addVictim(act)
	if r.cfg.GCVictim == CostBenefitVictim {
		// A freshly retired block starts its cost-benefit age now; without
		// a stamp it would look infinitely old and be collected while hot.
		act.stamp = r.tick.Add(1)
	}
}

// allocLocked returns the next usable PPN on the chip. Under foreground
// GC it collects inline at the reserve (the interference the paper
// measures); under background GC it wakes the chip's collector at the
// soft watermark and throttles at the hard reserve.
func (r *Region) allocLocked(w *sim.Worker, cs *chipState) (flash.PPN, error) {
	usable := r.usablePagesPerBlock()
	maxAttempts := 2*len(cs.blocks) + 4
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if act := cs.active; act != nil {
			if act.next < usable {
				ppn := r.pageSlotToPPN(act.id, act.next)
				act.next++
				return ppn, nil
			}
			r.retireActiveLocked(cs)
		}
		if cs.freeLen() <= r.cfg.gcReserve() {
			if r.backgroundOn() {
				if err := r.throttleLocked(w, cs); err != nil {
					return 0, err
				}
				if a := cs.active; a != nil && a.next < usable {
					continue
				}
				if cs.freeLen() < 2 {
					// Never pop the last free block under background GC: a
					// collection that cannot allocate a migration destination
					// wedges the chip at 100% full, with its over-provisioned
					// space unreachable. Fail over to another chip instead.
					return 0, fmt.Errorf("%w: reserve floor on chip %d of region %q",
						ErrNoSpace, cs.chip, r.cfg.Name)
				}
			} else {
				// The pool is low: reclaim first. Collection may itself
				// install a partially-filled active block (its migration
				// target); reuse it rather than popping another block, or
				// the pool drains.
				err := r.collectLocked(w, cs, false)
				if a := cs.active; a != nil && a.next < usable {
					continue
				}
				if err != nil && cs.freeLen() == 0 {
					return 0, err
				}
			}
		} else if r.backgroundOn() && cs.freeLen() <= r.cfg.softWater() {
			r.wakeCollector(cs)
		}
		nb := cs.popFree()
		if nb == nil {
			return 0, fmt.Errorf("%w: chip %d of region %q", ErrNoSpace, cs.chip, r.cfg.Name)
		}
		if cs.active != nil {
			// Racing writers can install and fill a write point during
			// throttleLocked's lock-yield gaps; retire it rather than
			// orphaning a block no heap can see.
			r.retireActiveLocked(cs)
		}
		nb.active = true
		nb.next = 0
		nb.valid = 0
		cs.active = nb
	}
	return 0, fmt.Errorf("%w: allocation livelock on chip %d of region %q", ErrNoSpace, cs.chip, r.cfg.Name)
}
