package noftl

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"ipa/internal/core"
	"ipa/internal/flash"
	"ipa/internal/metrics"
)

// BenchmarkGCInterference measures the latency a writer observes under
// churn heavy enough to keep the garbage collector permanently busy,
// comparing inline (foreground) collection — the paper's configuration,
// where a write at the reserve pays for a whole block migration — with
// the background collectors introduced by the per-chip sharding. The
// reported p99-wall-ns is the writers' wall-clock p99 (merged from
// per-worker recorders so the timed path takes no shared lock).
func BenchmarkGCInterference(b *testing.B) {
	const workers = 16
	for _, bc := range []struct {
		name   string
		policy GCPolicy
	}{
		{"inline", GCForeground},
		{"background", GCBackground},
	} {
		b.Run(bc.name, func(b *testing.B) {
			// Watermarks are counted in blocks, so the chip needs enough
			// blocks that the soft watermark is a small fraction of the
			// over-provisioned slack (as on real devices) — otherwise the
			// collector compacts the chip to 100% valid chasing a target
			// the geometry cannot reach.
			dev := newDevice(b, flash.SLC, workers, 64, 8, 512)
			r, err := dev.CreateRegion(RegionConfig{
				Name: "bench", Mode: ModeSLC, BlocksPerChip: 64,
				OverProvision: 0.22, GCReserve: 2, GCSoftWater: 8,
				GCPolicy: bc.policy,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer r.Close()
			capPages := r.LogicalCapacity()
			img := pageOf(dev, 0xAB)
			for i := 0; i < capPages; i++ {
				if err := r.Write(nil, core.PageID(i+1), img, nil); err != nil {
					b.Fatal(err)
				}
			}
			r.ResetStats()

			lats := make([]*metrics.Latency, workers)
			for i := range lats {
				lats[i] = &metrics.Latency{}
			}
			perWorker := capPages / workers
			b.ResetTimer()
			var wg sync.WaitGroup
			for k := 0; k < workers; k++ {
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(k) + 1))
					base := k * perWorker
					n := b.N / workers
					if k < b.N%workers {
						n++
					}
					img := pageOf(dev, byte(k))
					for i := 0; i < n; i++ {
						id := core.PageID(base + rng.Intn(perWorker) + 1)
						t0 := time.Now()
						if err := r.Write(nil, id, img, nil); err != nil {
							b.Error(err)
							return
						}
						lats[k].Add(time.Since(t0))
					}
				}(k)
			}
			wg.Wait()
			b.StopTimer()

			var all metrics.Latency
			for _, l := range lats {
				all.Merge(l)
			}
			s := r.Stats()
			b.ReportMetric(float64(all.Quantile(0.99)), "p99-wall-ns")
			b.ReportMetric(float64(s.GCStalls), "stalls")
			b.ReportMetric(float64(s.GCPageMigrations)/float64(b.N), "migrations/op")
		})
	}
}
