package ftl

import (
	"errors"
	"fmt"

	"ipa/internal/flash"
	"ipa/internal/sim"
)

// HybridFTL is a FASTer-style hybrid-mapping SSD [23]: the exported
// capacity is block-mapped (each logical block owns one data block on
// flash), and a small pool of page-mapped *log blocks* — the
// over-provisioning area — absorbs every incoming write. When the log
// pool runs out, a merge folds the log pages of a victim log block back
// into their data blocks: for each touched logical block the valid pages
// of old data block + log pages are read, the new data block is written,
// and the stale blocks are erased. This is the "typical SSD" the paper
// says suffers most under random small updates — and benefits most from
// IPA's slower consumption of the log area (Sec. 8.4, over-provisioning
// discussion).
type HybridFTL struct {
	arr  *flash.Array
	geom flash.Geometry

	exported   int   // host pages
	dataBlocks []int // logical block → physical block (-1 = unwritten)
	// pageLoc: per exported LBA, the current physical location: either in
	// its data block (implicit) or in a log block (explicit entry).
	logLoc map[LBA]flash.PPN

	logPool  []int // physical blocks reserved as log blocks
	freeLog  []int
	actLog   int
	actNext  int
	freeData []int
	stats    Stats

	EnableDelta bool
	MaxAppends  int
}

// NewHybridFTL wraps a flash array: logFrac of the blocks become the log
// pool (the paper's SSDs use 7–10%).
func NewHybridFTL(arr *flash.Array, logFrac float64) (*HybridFTL, error) {
	if logFrac <= 0 || logFrac >= 0.5 {
		logFrac = 0.10
	}
	g := arr.Geometry()
	total := g.TotalBlocks()
	logBlocks := int(float64(total) * logFrac)
	if logBlocks < 2 {
		logBlocks = 2
	}
	dataBlocks := total - logBlocks
	// Two spare data blocks stay unexported so merges always have a
	// target while the old data block is still valid.
	const spares = 2
	if dataBlocks <= spares {
		return nil, fmt.Errorf("ftl: no data blocks left")
	}
	h := &HybridFTL{
		arr: arr, geom: g,
		exported:   (dataBlocks - spares) * g.PagesPerBlock,
		dataBlocks: make([]int, dataBlocks-spares),
		logLoc:     make(map[LBA]flash.PPN),
		actLog:     -1,
		MaxAppends: 3,
	}
	for i := range h.dataBlocks {
		h.dataBlocks[i] = -1
	}
	// Blocks [0, dataBlocks) are candidates for data; the tail is the
	// initial log pool. Both sets are recycled dynamically.
	for b := 0; b < dataBlocks; b++ {
		h.freeData = append(h.freeData, b)
	}
	for b := dataBlocks; b < total; b++ {
		h.logPool = append(h.logPool, b)
		h.freeLog = append(h.freeLog, b)
	}
	return h, nil
}

// Capacity implements Device.
func (h *HybridFTL) Capacity() int { return h.exported }

// Stats implements Device.
func (h *HybridFTL) Stats() Stats { return h.stats }

func (h *HybridFTL) logicalBlock(lba LBA) (blk, off int) {
	return int(lba) / h.geom.PagesPerBlock, int(lba) % h.geom.PagesPerBlock
}

// locate returns the current physical page of the LBA.
func (h *HybridFTL) locate(lba LBA) (flash.PPN, bool) {
	if ppn, ok := h.logLoc[lba]; ok {
		return ppn, true
	}
	blk, off := h.logicalBlock(lba)
	phys := h.dataBlocks[blk]
	if phys < 0 {
		return 0, false
	}
	ppn := h.geom.FirstPageOfBlock(phys) + flash.PPN(off)
	if h.arr.IsErased(ppn) {
		return 0, false
	}
	return ppn, true
}

// Read implements Device.
func (h *HybridFTL) Read(w *sim.Worker, lba LBA) ([]byte, error) {
	if int(lba) >= h.exported {
		return nil, fmt.Errorf("%w: %d", ErrOutOfRange, lba)
	}
	ppn, ok := h.locate(lba)
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnwritten, lba)
	}
	h.stats.HostReads++
	data, _, _, err := h.arr.Read(w, ppn)
	return data, err
}

// Write implements Device: every write lands in a log block.
func (h *HybridFTL) Write(w *sim.Worker, lba LBA, data []byte) error {
	if int(lba) >= h.exported {
		return fmt.Errorf("%w: %d", ErrOutOfRange, lba)
	}
	if len(data) != h.geom.PageSize {
		return fmt.Errorf("%w: %d", ErrBadLength, len(data))
	}
	ppn, err := h.allocLog(w)
	if err != nil {
		return err
	}
	if _, err := h.arr.Program(w, ppn, data, nil); err != nil {
		return err
	}
	h.logLoc[lba] = ppn
	h.stats.HostWrites++
	return nil
}

// WriteDelta implements Device: the append goes to the LBA's current
// physical location — data block or log block alike.
func (h *HybridFTL) WriteDelta(w *sim.Worker, lba LBA, off int, delta []byte) error {
	if !h.EnableDelta {
		return ErrUnsupportedC
	}
	ppn, ok := h.locate(lba)
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnwritten, lba)
	}
	if !h.geom.IsLSB(ppn) || h.arr.Appends(ppn) >= h.MaxAppends {
		return fmt.Errorf("%w: lba %d", ErrNoAppend, lba)
	}
	if _, err := h.arr.ProgramDelta(w, ppn, off, delta, 0, nil); err != nil {
		return fmt.Errorf("%w: %v", ErrNoAppend, err)
	}
	h.stats.DeltaWrites++
	return nil
}

// allocLog returns the next log page, merging when the pool is empty.
func (h *HybridFTL) allocLog(w *sim.Worker) (flash.PPN, error) {
	for attempt := 0; attempt < 2*len(h.logPool)+4; attempt++ {
		if h.actLog >= 0 && h.actNext < h.geom.PagesPerBlock {
			ppn := h.geom.FirstPageOfBlock(h.actLog) + flash.PPN(h.actNext)
			h.actNext++
			return ppn, nil
		}
		h.actLog = -1
		if len(h.freeLog) == 0 {
			if err := h.merge(w); err != nil {
				return 0, err
			}
			continue
		}
		h.actLog = h.freeLog[0]
		h.freeLog = h.freeLog[1:]
		h.actNext = 0
	}
	return 0, ErrDeviceFull
}

// merge folds all log entries back into their data blocks (a "full
// merge" across the whole log pool — FASTer amortises this more finely;
// the blocking, expensive nature is what matters for the comparison).
func (h *HybridFTL) merge(w *sim.Worker) error {
	if len(h.logLoc) == 0 {
		return ErrDeviceFull
	}
	h.stats.Merges++
	// Group log entries by logical block.
	groups := make(map[int][]LBA)
	for lba := range h.logLoc {
		blk, _ := h.logicalBlock(lba)
		groups[blk] = append(groups[blk], lba)
	}
	for blk, lbas := range groups {
		if err := h.mergeBlock(w, blk, lbas); err != nil {
			return err
		}
	}
	// All used log blocks are now stale: erase and refill the pool.
	stillFree := make(map[int]bool, len(h.freeLog))
	for _, b := range h.freeLog {
		stillFree[b] = true
	}
	h.freeLog = h.freeLog[:0]
	for _, b := range h.logPool {
		if !stillFree[b] {
			if _, err := h.arr.Erase(w, b); err != nil && !errors.Is(err, flash.ErrWornOut) {
				return err
			}
			h.stats.GCErases++
		}
		h.freeLog = append(h.freeLog, b)
	}
	h.actLog = -1
	return nil
}

// mergeBlock rewrites one logical block combining its data block with
// the log entries.
func (h *HybridFTL) mergeBlock(w *sim.Worker, blk int, lbas []LBA) error {
	inLog := make(map[int]flash.PPN, len(lbas))
	for _, lba := range lbas {
		_, off := h.logicalBlock(lba)
		inLog[off] = h.logLoc[lba]
		delete(h.logLoc, lba)
	}
	oldPhys := h.dataBlocks[blk]
	if len(h.freeData) == 0 {
		return ErrDeviceFull
	}
	newPhys := h.freeData[0]
	h.freeData = h.freeData[1:]
	base := h.geom.FirstPageOfBlock(newPhys)
	for off := 0; off < h.geom.PagesPerBlock; off++ {
		var src flash.PPN
		var have bool
		if p, ok := inLog[off]; ok {
			src, have = p, true
		} else if oldPhys >= 0 {
			p := h.geom.FirstPageOfBlock(oldPhys) + flash.PPN(off)
			if !h.arr.IsErased(p) {
				src, have = p, true
			}
		}
		if !have {
			continue
		}
		data, _, _, err := h.arr.Read(w, src)
		if err != nil {
			return err
		}
		if _, err := h.arr.Program(w, base+flash.PPN(off), data, nil); err != nil {
			return err
		}
		h.stats.GCMigrations++
	}
	h.dataBlocks[blk] = newPhys
	if oldPhys >= 0 {
		if _, err := h.arr.Erase(w, oldPhys); err != nil && !errors.Is(err, flash.ErrWornOut) {
			return err
		}
		h.stats.GCErases++
		h.freeData = append(h.freeData, oldPhys)
	}
	return nil
}
