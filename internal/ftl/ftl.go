// Package ftl implements conventional SSD firmware — the black-box
// architecture the paper contrasts NoFTL with — behind the standard
// block-device interface:
//
//   - PageFTL: page-level mapping with greedy garbage collection, the
//     most capable (and RAM-hungry) conventional scheme;
//   - HybridFTL: a FASTer-style hybrid mapping [23] where block-mapped
//     data blocks absorb sequential writes and a small set of log blocks
//     (the over-provisioning area) absorbs random writes until costly
//     merge operations fold them back.
//
// Both support the paper's Sec. 7 extension: write_delta as an
// additional command next to read and write, so In-Place Appends can be
// realised on a traditional SSD ("at the cost of lower performance
// compared to IPA under NoFTL") — the ftl tests and the ablation
// benchmark quantify exactly that cost.
package ftl

import (
	"errors"
	"fmt"

	"ipa/internal/flash"
	"ipa/internal/sim"
)

// LBA is a logical block address in page-size units.
type LBA uint64

// Errors of the FTL layer.
var (
	ErrDeviceFull   = errors.New("ftl: no free blocks")
	ErrUnwritten    = errors.New("ftl: LBA never written")
	ErrOutOfRange   = errors.New("ftl: LBA out of exported capacity")
	ErrNoAppend     = errors.New("ftl: write_delta not possible at current location")
	ErrBadLength    = errors.New("ftl: data length does not match page size")
	ErrUnsupportedC = errors.New("ftl: command not supported by this FTL")
)

// Stats counts FTL-internal activity.
type Stats struct {
	HostReads    uint64
	HostWrites   uint64
	DeltaWrites  uint64
	GCErases     uint64
	GCMigrations uint64
	Merges       uint64 // hybrid only: full/partial merges
}

// Device is the block-device interface of a conventional SSD, extended
// with the paper's write_delta command (Sec. 7).
type Device interface {
	// Read returns the current content of the LBA.
	Read(w *sim.Worker, lba LBA) ([]byte, error)
	// Write stores a full page at the LBA (always out-of-place inside).
	Write(w *sim.Worker, lba LBA, data []byte) error
	// WriteDelta appends delta bytes to the LBA's *current physical
	// location* via ISPP — the marginal extension that enables IPA on
	// conventional SSDs. FTLs that cannot serve it return ErrNoAppend
	// (caller falls back to Write) or ErrUnsupportedC.
	WriteDelta(w *sim.Worker, lba LBA, off int, delta []byte) error
	// Capacity is the exported size in pages.
	Capacity() int
	// Stats returns the internal counters.
	Stats() Stats
}

// ---------------------------------------------------------------------
// Page-level mapping FTL
// ---------------------------------------------------------------------

// PageFTL is a conventional SSD with page-level mapping: every host
// write goes to the next free physical page; a greedy collector recycles
// blocks. With EnableDelta it accepts write_delta on the mapped page.
type PageFTL struct {
	arr  *flash.Array
	geom flash.Geometry

	exported int // host-visible pages
	mapping  []flash.PPN
	reverse  map[flash.PPN]LBA
	valid    []int // per block
	free     []int
	active   int
	actNext  int
	stats    Stats

	// EnableDelta switches the write_delta extension on.
	EnableDelta bool
	// MaxAppends bounds ISPP re-programs per mapped page.
	MaxAppends int
}

// NewPageFTL wraps a flash array, exporting capacity·(1−op) pages.
func NewPageFTL(arr *flash.Array, op float64) (*PageFTL, error) {
	if op <= 0 || op >= 0.9 {
		op = 0.10
	}
	g := arr.Geometry()
	exported := int(float64(g.TotalPages()) * (1 - op))
	f := &PageFTL{
		arr:        arr,
		geom:       g,
		exported:   exported,
		mapping:    make([]flash.PPN, exported),
		reverse:    make(map[flash.PPN]LBA),
		valid:      make([]int, g.TotalBlocks()),
		active:     -1,
		MaxAppends: 3,
	}
	for i := range f.mapping {
		f.mapping[i] = flash.InvalidPPN
	}
	for b := 0; b < g.TotalBlocks(); b++ {
		f.free = append(f.free, b)
	}
	return f, nil
}

// Capacity implements Device.
func (f *PageFTL) Capacity() int { return f.exported }

// Stats implements Device.
func (f *PageFTL) Stats() Stats { return f.stats }

func (f *PageFTL) check(lba LBA, data []byte, needData bool) error {
	if int(lba) >= f.exported {
		return fmt.Errorf("%w: %d of %d", ErrOutOfRange, lba, f.exported)
	}
	if needData && len(data) != f.geom.PageSize {
		return fmt.Errorf("%w: %d vs %d", ErrBadLength, len(data), f.geom.PageSize)
	}
	return nil
}

// Read implements Device.
func (f *PageFTL) Read(w *sim.Worker, lba LBA) ([]byte, error) {
	if err := f.check(lba, nil, false); err != nil {
		return nil, err
	}
	ppn := f.mapping[lba]
	if ppn == flash.InvalidPPN {
		return nil, fmt.Errorf("%w: %d", ErrUnwritten, lba)
	}
	f.stats.HostReads++
	data, _, _, err := f.arr.Read(w, ppn)
	return data, err
}

// Write implements Device.
func (f *PageFTL) Write(w *sim.Worker, lba LBA, data []byte) error {
	if err := f.check(lba, data, true); err != nil {
		return err
	}
	ppn, err := f.alloc(w)
	if err != nil {
		return err
	}
	if old := f.mapping[lba]; old != flash.InvalidPPN {
		f.valid[f.geom.BlockOf(old)]--
		delete(f.reverse, old)
	}
	if _, err := f.arr.Program(w, ppn, data, nil); err != nil {
		return err
	}
	f.mapping[lba] = ppn
	f.reverse[ppn] = lba
	f.valid[f.geom.BlockOf(ppn)]++
	f.stats.HostWrites++
	return nil
}

// WriteDelta implements Device (the Sec. 7 extension).
func (f *PageFTL) WriteDelta(w *sim.Worker, lba LBA, off int, delta []byte) error {
	if !f.EnableDelta {
		return ErrUnsupportedC
	}
	if err := f.check(lba, nil, false); err != nil {
		return err
	}
	ppn := f.mapping[lba]
	if ppn == flash.InvalidPPN {
		return fmt.Errorf("%w: %d", ErrUnwritten, lba)
	}
	if !f.geom.IsLSB(ppn) || f.arr.Appends(ppn) >= f.MaxAppends {
		return fmt.Errorf("%w: lba %d at ppn %d", ErrNoAppend, lba, ppn)
	}
	if _, err := f.arr.ProgramDelta(w, ppn, off, delta, 0, nil); err != nil {
		return fmt.Errorf("%w: %v", ErrNoAppend, err)
	}
	f.stats.DeltaWrites++
	return nil
}

// alloc returns the next free physical page, collecting when low.
func (f *PageFTL) alloc(w *sim.Worker) (flash.PPN, error) {
	for attempt := 0; attempt < 2*f.geom.TotalBlocks()+4; attempt++ {
		if f.active >= 0 && f.actNext < f.geom.PagesPerBlock {
			ppn := f.geom.FirstPageOfBlock(f.active) + flash.PPN(f.actNext)
			f.actNext++
			return ppn, nil
		}
		f.active = -1
		if len(f.free) <= 2 {
			if err := f.collect(w); err != nil && len(f.free) == 0 {
				return 0, err
			}
			if f.active >= 0 && f.actNext < f.geom.PagesPerBlock {
				continue
			}
		}
		if len(f.free) == 0 {
			return 0, ErrDeviceFull
		}
		f.active = f.free[0]
		f.free = f.free[1:]
		f.actNext = 0
	}
	return 0, ErrDeviceFull
}

// collect migrates the min-valid block and erases it.
func (f *PageFTL) collect(w *sim.Worker) error {
	victim := -1
	inFree := make(map[int]bool, len(f.free))
	for _, b := range f.free {
		inFree[b] = true
	}
	for b := 0; b < f.geom.TotalBlocks(); b++ {
		if b == f.active || inFree[b] {
			continue
		}
		if victim < 0 || f.valid[b] < f.valid[victim] {
			victim = b
		}
	}
	if victim < 0 || f.valid[victim] >= f.geom.PagesPerBlock {
		return ErrDeviceFull
	}
	base := f.geom.FirstPageOfBlock(victim)
	for i := 0; i < f.geom.PagesPerBlock; i++ {
		ppn := base + flash.PPN(i)
		lba, ok := f.reverse[ppn]
		if !ok {
			continue
		}
		data, _, _, err := f.arr.Read(w, ppn)
		if err != nil {
			return err
		}
		dst, err := f.allocMigration(victim)
		if err != nil {
			return err
		}
		if _, err := f.arr.Program(w, dst, data, nil); err != nil {
			return err
		}
		delete(f.reverse, ppn)
		f.valid[victim]--
		f.mapping[lba] = dst
		f.reverse[dst] = lba
		f.valid[f.geom.BlockOf(dst)]++
		f.stats.GCMigrations++
	}
	if _, err := f.arr.Erase(w, victim); err != nil && !errors.Is(err, flash.ErrWornOut) {
		return err
	}
	f.stats.GCErases++
	f.free = append(f.free, victim)
	return nil
}

func (f *PageFTL) allocMigration(victim int) (flash.PPN, error) {
	if f.active >= 0 && f.active != victim && f.actNext < f.geom.PagesPerBlock {
		ppn := f.geom.FirstPageOfBlock(f.active) + flash.PPN(f.actNext)
		f.actNext++
		return ppn, nil
	}
	if len(f.free) == 0 {
		return 0, ErrDeviceFull
	}
	f.active = f.free[0]
	f.free = f.free[1:]
	f.actNext = 1
	return f.geom.FirstPageOfBlock(f.active), nil
}
