package ftl

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"ipa/internal/flash"
)

func newArr(t *testing.T, blocks, pages, pageSize int) *flash.Array {
	t.Helper()
	g := flash.Geometry{
		Chips: 1, BlocksPerChip: blocks, PagesPerBlock: pages,
		PageSize: pageSize, OOBSize: pageSize / 16, Cell: flash.SLC,
	}
	arr, err := flash.New(flash.Config{
		Geometry: g, Timing: flash.SLCTiming(), StrictProgramOrder: true, MaxAppends: 8,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

func pageImg(pageSize int, fill byte) []byte {
	p := bytes.Repeat([]byte{0xFF}, pageSize)
	for i := 0; i < 16; i++ {
		p[i] = fill
	}
	return p
}

// deviceSuite exercises the Device contract on any implementation.
func deviceSuite(t *testing.T, dev Device, pageSize int) {
	t.Helper()
	// Unwritten LBA.
	if _, err := dev.Read(nil, 0); !errors.Is(err, ErrUnwritten) {
		t.Errorf("read unwritten: %v", err)
	}
	// Out of range.
	if _, err := dev.Read(nil, LBA(dev.Capacity())); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("read OOR: %v", err)
	}
	if err := dev.Write(nil, LBA(dev.Capacity()), pageImg(pageSize, 1)); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("write OOR: %v", err)
	}
	if err := dev.Write(nil, 0, make([]byte, 10)); !errors.Is(err, ErrBadLength) {
		t.Errorf("short write: %v", err)
	}
	// Round trip + overwrite.
	if err := dev.Write(nil, 0, pageImg(pageSize, 1)); err != nil {
		t.Fatal(err)
	}
	if err := dev.Write(nil, 0, pageImg(pageSize, 2)); err != nil {
		t.Fatal(err)
	}
	got, err := dev.Read(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 {
		t.Errorf("read = %d, want 2", got[0])
	}
}

func TestPageFTLDevice(t *testing.T) {
	f, err := NewPageFTL(newArr(t, 16, 8, 256), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	deviceSuite(t, f, 256)
	total := float64(16 * 8)
	if f.Capacity() != int(total*0.8) {
		t.Errorf("capacity = %d", f.Capacity())
	}
}

func TestHybridFTLDevice(t *testing.T) {
	h, err := NewHybridFTL(newArr(t, 16, 8, 256), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	deviceSuite(t, h, 256)
	// 16 blocks, 3 log (16*0.2=3), 2 spares → 11 exported blocks.
	if h.Capacity() != 11*8 {
		t.Errorf("capacity = %d", h.Capacity())
	}
}

func TestPageFTLGC(t *testing.T) {
	f, err := NewPageFTL(newArr(t, 8, 8, 256), 0.4)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite a small working set far beyond device capacity.
	for round := 0; round < 20; round++ {
		for lba := LBA(0); lba < 8; lba++ {
			if err := f.Write(nil, lba, pageImg(256, byte(round))); err != nil {
				t.Fatalf("round %d lba %d: %v", round, lba, err)
			}
		}
	}
	if f.Stats().GCErases == 0 {
		t.Error("no GC after 160 writes on a 64-page device")
	}
	for lba := LBA(0); lba < 8; lba++ {
		got, err := f.Read(nil, lba)
		if err != nil || got[0] != 19 {
			t.Fatalf("lba %d: %v %v", lba, got[0], err)
		}
	}
}

func TestHybridFTLMerge(t *testing.T) {
	h, err := NewHybridFTL(newArr(t, 16, 8, 256), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// Hammer a few LBAs until the log pool forces merges.
	for round := 0; round < 16; round++ {
		for lba := LBA(0); lba < 4; lba++ {
			if err := h.Write(nil, lba, pageImg(256, byte(round*4+int(lba)))); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
	}
	if h.Stats().Merges == 0 {
		t.Fatal("no merges after exhausting the log pool")
	}
	for lba := LBA(0); lba < 4; lba++ {
		got, err := h.Read(nil, lba)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(15*4+int(lba)) {
			t.Errorf("lba %d = %d", lba, got[0])
		}
	}
}

func TestWriteDeltaExtension(t *testing.T) {
	for _, mk := range []struct {
		name string
		mk   func() Device
	}{
		{"page", func() Device {
			f, _ := NewPageFTL(newArr(t, 16, 8, 256), 0.2)
			f.EnableDelta = true
			return f
		}},
		{"hybrid", func() Device {
			h, _ := NewHybridFTL(newArr(t, 16, 8, 256), 0.2)
			h.EnableDelta = true
			return h
		}},
	} {
		t.Run(mk.name, func(t *testing.T) {
			dev := mk.mk()
			img := pageImg(256, 7) // tail erased
			if err := dev.Write(nil, 0, img); err != nil {
				t.Fatal(err)
			}
			if err := dev.WriteDelta(nil, 0, 200, []byte{0x11, 0x22}); err != nil {
				t.Fatalf("write_delta: %v", err)
			}
			got, err := dev.Read(nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			if got[200] != 0x11 || got[201] != 0x22 {
				t.Error("delta not visible")
			}
			if got[0] != 7 {
				t.Error("body disturbed")
			}
			if dev.Stats().DeltaWrites != 1 {
				t.Errorf("DeltaWrites = %d", dev.Stats().DeltaWrites)
			}
			// Budget exhaustion (MaxAppends=3) falls back with ErrNoAppend.
			for i := 0; i < 2; i++ {
				if err := dev.WriteDelta(nil, 0, 210+i, []byte{0x01}); err != nil {
					t.Fatal(err)
				}
			}
			if err := dev.WriteDelta(nil, 0, 220, []byte{0x01}); !errors.Is(err, ErrNoAppend) {
				t.Errorf("append past budget: %v", err)
			}
		})
	}
}

func TestWriteDeltaDisabledByDefault(t *testing.T) {
	f, _ := NewPageFTL(newArr(t, 8, 8, 256), 0.2)
	f.Write(nil, 0, pageImg(256, 1))
	if err := f.WriteDelta(nil, 0, 0, []byte{0}); !errors.Is(err, ErrUnsupportedC) {
		t.Errorf("delta on stock FTL: %v", err)
	}
}

// The paper's Sec. 7 claim quantified: with the write_delta extension a
// conventional page-mapped SSD running an IPA-style update pattern
// erases substantially less than the same SSD without it.
func TestDeltaExtensionReducesErases(t *testing.T) {
	run := func(enable bool) Stats {
		f, err := NewPageFTL(newArr(t, 32, 16, 256), 0.25)
		if err != nil {
			t.Fatal(err)
		}
		f.EnableDelta = enable
		f.MaxAppends = 2
		rng := rand.New(rand.NewSource(3))
		working := 200
		for lba := 0; lba < working; lba++ {
			if err := f.Write(nil, LBA(lba), pageImg(256, byte(lba))); err != nil {
				t.Fatal(err)
			}
		}
		appends := make([]int, working)
		for i := 0; i < 4000; i++ {
			lba := rng.Intn(working)
			// Small update: try the delta path first, as the storage
			// manager would.
			if enable && appends[lba] < 2 {
				off := 200 + appends[lba]*10
				if err := f.WriteDelta(nil, LBA(lba), off, []byte{0x00}); err == nil {
					appends[lba]++
					continue
				}
			}
			if err := f.Write(nil, LBA(lba), pageImg(256, byte(i))); err != nil {
				t.Fatal(err)
			}
			appends[lba] = 0
		}
		return f.Stats()
	}
	off := run(false)
	on := run(true)
	if off.GCErases == 0 {
		t.Skip("workload too small for GC")
	}
	if float64(on.GCErases) > 0.7*float64(off.GCErases) {
		t.Errorf("delta extension erases %d not clearly below %d", on.GCErases, off.GCErases)
	}
	if on.DeltaWrites == 0 {
		t.Error("no delta writes recorded")
	}
}

// Hybrid-vs-page shape: under random small overwrites the hybrid FTL
// merges aggressively and erases more than page mapping — the reason the
// paper calls page-level mapping "the most efficient for OLTP".
func TestHybridWorseThanPageOnRandomWrites(t *testing.T) {
	writes := func(dev Device) Stats {
		rng := rand.New(rand.NewSource(9))
		n := dev.Capacity() / 2
		for lba := 0; lba < n; lba++ {
			if err := dev.Write(nil, LBA(lba), pageImg(256, 1)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 3000; i++ {
			if err := dev.Write(nil, LBA(rng.Intn(n)), pageImg(256, byte(i))); err != nil {
				t.Fatal(err)
			}
		}
		return dev.Stats()
	}
	pf, _ := NewPageFTL(newArr(t, 32, 16, 256), 0.15)
	hf, _ := NewHybridFTL(newArr(t, 32, 16, 256), 0.15)
	ps := writes(pf)
	hs := writes(hf)
	if hs.GCErases <= ps.GCErases {
		t.Errorf("hybrid erases %d ≤ page-mapped %d; expected hybrid to churn more", hs.GCErases, ps.GCErases)
	}
}

func TestPageFTLDeviceFull(t *testing.T) {
	f, err := NewPageFTL(newArr(t, 2, 4, 256), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// Exported 6 pages on an 8-page device: fill them, then overwrite
	// forever; GC must keep it alive.
	for round := 0; round < 10; round++ {
		for lba := 0; lba < f.Capacity(); lba++ {
			if err := f.Write(nil, LBA(lba), pageImg(256, byte(round))); err != nil {
				// Tight devices may legitimately fill; accept ErrDeviceFull
				// but nothing else.
				if !errors.Is(err, ErrDeviceFull) {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
		}
	}
}
