package server

// OccupySlot claims one admission-semaphore slot, letting tests force
// deterministic StatusBusy rejections. The returned func releases it.
func (s *Server) OccupySlot() func() {
	s.inflight <- struct{}{}
	return func() { <-s.inflight }
}
