package server_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ipa/internal/client"
	"ipa/internal/metrics"
	"ipa/internal/server"
	"ipa/internal/workload"
)

// BenchmarkServerTPCB measures end-to-end wire-protocol throughput and
// client-observed latency for pipelined TPC-B transactions, across a
// connections × pipelining-depth grid (depth = concurrent transactions
// multiplexed on one connection; each transaction is two pipelined
// round trips). Reported metrics: committed tx/s of wall clock, and
// p50/p99 client latency in nanoseconds. Run with:
//
//	go test -bench ServerTPCB -run xxx ./internal/server/
func BenchmarkServerTPCB(b *testing.B) {
	for _, conns := range []int{1, 4, 16} {
		for _, depth := range []int{1, 4} {
			b.Run(fmt.Sprintf("conns=%d/depth=%d", conns, depth), func(b *testing.B) {
				benchServerTPCB(b, conns, depth)
			})
		}
	}
}

func benchServerTPCB(b *testing.B, conns, depth int) {
	db, tl := newStack(b)
	wl := workload.NewTPCB(db, "data", 1, 2000)
	if err := wl.Load(tl.NewWorker()); err != nil {
		b.Fatal(err)
	}
	srv, addr, _ := startServer(b, db, tl, server.Config{})
	defer srv.Shutdown(10 * time.Second)

	cs := make([]*client.Conn, conns)
	for i := range cs {
		c, err := client.Dial(addr, client.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		cs[i] = c
	}
	drv := workload.NewNetTPCB()
	if err := drv.Init(cs[0]); err != nil {
		b.Fatal(err)
	}

	workers := conns * depth
	quota := func(w int) int {
		q := b.N / workers
		if w < b.N%workers {
			q++
		}
		return q
	}
	lats := make([]*metrics.Latency, workers)
	committed := make([]int, workers)
	aborted := make([]int, workers)
	errs := make([]error, workers)

	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lats[w] = &metrics.Latency{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := cs[w%conns] // depth workers share each connection
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for i := 0; i < quota(w); i++ {
				t0 := time.Now()
				err := drv.RunOne(c, rng)
				lats[w].Add(time.Since(t0))
				switch {
				case err == nil:
					committed[w]++
				case workload.Aborted(err):
					// Optimistic RMW on shared branch/teller rows: a clean
					// no-wait abort, counted but not retried.
					aborted[w]++
				default:
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()

	total := &metrics.Latency{}
	var nCommit, nAbort int
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			b.Fatalf("worker %d: %v", w, errs[w])
		}
		nCommit += committed[w]
		nAbort += aborted[w]
		total.Merge(lats[w])
	}
	if nCommit == 0 {
		b.Fatal("no transaction committed")
	}
	b.ReportMetric(float64(nCommit)/elapsed.Seconds(), "tx/s")
	b.ReportMetric(float64(total.Quantile(0.50)), "p50-ns")
	b.ReportMetric(float64(total.Quantile(0.99)), "p99-ns")
	b.ReportMetric(float64(nAbort), "aborts")
}
