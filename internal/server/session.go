package server

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"ipa/internal/core"
	"ipa/internal/engine"
	"ipa/internal/sim"
	"ipa/internal/wire"
)

// session serves one connection. A reader goroutine decodes frames into
// a bounded queue; the session goroutine executes them serially in
// arrival order and writes responses through a buffered writer that is
// flushed whenever the queue runs empty. Serial execution is what makes
// pipelined transactions sound: the ops of a BEGIN..COMMIT batch land
// in exactly the order the client wrote them.
type session struct {
	srv  *Server
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	w    *sim.Worker

	queue chan wire.Frame

	drainOnce sync.Once

	txs    map[uint64]*engine.Tx
	poison map[uint64]string // txid → first failed op, set until COMMIT/ABORT
	tables map[string]*engine.Table
}

func newSession(s *Server, conn net.Conn) *session {
	var w *sim.Worker
	if s.cfg.Timeline != nil {
		w = s.cfg.Timeline.NewWorker()
	}
	return &session{
		srv:    s,
		conn:   conn,
		br:     bufio.NewReaderSize(conn, 32<<10),
		bw:     bufio.NewWriterSize(conn, 32<<10),
		w:      w,
		queue:  make(chan wire.Frame, s.cfg.PipelineDepth),
		txs:    make(map[uint64]*engine.Tx),
		poison: make(map[uint64]string),
		tables: make(map[string]*engine.Table),
	}
}

// startDrain unblocks the reader so the session stops accepting new
// frames; requests already queued still execute.
func (s *session) startDrain() {
	s.drainOnce.Do(func() {
		s.conn.SetReadDeadline(time.Now())
	})
}

func (s *session) run() {
	go s.readLoop()
	s.execLoop()
}

func (s *session) readLoop() {
	defer close(s.queue)
	for {
		if s.srv.draining.Load() {
			return
		}
		s.conn.SetReadDeadline(time.Now().Add(s.srv.cfg.ReadTimeout))
		f, err := wire.ReadFrame(s.br, s.srv.cfg.MaxFrame)
		if err != nil {
			if err != io.EOF && !s.srv.draining.Load() {
				s.srv.cfg.Logf("server: read %v: %v", s.conn.RemoteAddr(), err)
			}
			return
		}
		s.queue <- f
	}
}

func (s *session) execLoop() {
	defer s.finish()
	for {
		// Flush buffered responses before blocking on an empty queue, so
		// the tail of a pipelined batch reaches the client promptly.
		select {
		case f, ok := <-s.queue:
			if !ok {
				return
			}
			s.handle(f)
		default:
			s.flush()
			f, ok := <-s.queue
			if !ok {
				return
			}
			s.handle(f)
		}
	}
}

// finish aborts transactions the client left open (disconnect or
// drain), flushes and closes the connection, and unregisters.
func (s *session) finish() {
	for id, tx := range s.txs {
		delete(s.txs, id)
		if err := tx.Abort(); err == nil {
			s.srv.orphansAborted.Add(1)
			if _, poisoned := s.poison[id]; poisoned {
				s.srv.poisonedAborts.Add(1)
			}
		}
	}
	s.flush()
	s.conn.Close()
	s.srv.removeSession(s)
}

func (s *session) flush() {
	s.conn.SetWriteDeadline(time.Now().Add(s.srv.cfg.WriteTimeout))
	if err := s.bw.Flush(); err != nil && !s.srv.draining.Load() {
		s.srv.cfg.Logf("server: write %v: %v", s.conn.RemoteAddr(), err)
	}
}

func (s *session) reply(id uint64, status byte, payload []byte) {
	s.conn.SetWriteDeadline(time.Now().Add(s.srv.cfg.WriteTimeout))
	// Errors surface at the next flush; execution continues so queued
	// transactions still resolve (commit or abort) server-side.
	_ = wire.WriteFrame(s.bw, id, status, payload)
}

// handle admits one request through the global in-flight semaphore,
// executes it, responds, and records its service time. Ops addressing a
// transaction already open on this session bypass admission: the
// transaction was admitted at BEGIN, and BUSY-rejecting one op of a
// pipelined BEGIN..COMMIT burst would otherwise commit the remainder —
// a half-applied transaction. With the exemption, BUSY can only answer
// ops that touch no open transaction state (BEGIN itself, reads, or
// stragglers after a rejected BEGIN, which fail StatusTxClosed).
func (s *session) handle(f wire.Frame) {
	start := time.Now()
	admitted := false
	if !s.txExempt(f) && !sysExempt(f.Kind) {
		timer := time.NewTimer(s.srv.cfg.AcquireTimeout)
		select {
		case s.srv.inflight <- struct{}{}:
			timer.Stop()
			admitted = true
		case <-timer.C:
			s.srv.busyRejected.Add(1)
			s.reply(f.ID, wire.StatusBusy, errPayload("server at capacity, retry"))
			return
		}
	}
	s.srv.requests.Add(1)
	status, payload := s.exec(f)
	if admitted {
		<-s.srv.inflight
	}
	s.reply(f.ID, status, payload)
	s.srv.observe(f.Kind, time.Since(start))
}

// txExempt reports whether f is a tx-scoped op whose transaction is
// already open on this session (every such payload leads with the txid).
func (s *session) txExempt(f wire.Frame) bool {
	switch f.Kind {
	case wire.OpCommit, wire.OpAbort, wire.OpInsert,
		wire.OpUpdate, wire.OpUpdateField, wire.OpAddField, wire.OpDelete,
		wire.OpSnapshotRead, wire.OpSnapshotScan:
	default:
		return false
	}
	if len(f.Payload) < 8 {
		return false
	}
	_, open := s.txs[binary.BigEndian.Uint64(f.Payload[:8])]
	return open
}

// sysExempt reports whether an op bypasses admission entirely:
// handshakes and replication traffic. Starving a REPL_APPEND behind
// client load would stall the very stream that lets commits ack.
func sysExempt(kind byte) bool {
	switch kind {
	case wire.OpHello, wire.OpReplHello, wire.OpReplAppend,
		wire.OpReplSnap, wire.OpVoteReq:
		return true
	}
	return false
}

// errPayload encodes an error response body.
func errPayload(msg string) []byte {
	return wire.NewBuilder(len(msg) + 4).Blob([]byte(msg)).Bytes()
}

// fail maps an engine or decode error onto its wire status.
func fail(err error) (byte, []byte) {
	var status byte
	switch {
	case errors.Is(err, engine.ErrClosed):
		status = wire.StatusClosed
	case errors.Is(err, engine.ErrLockConflict):
		status = wire.StatusLockConflict
	case errors.Is(err, engine.ErrTxClosed):
		status = wire.StatusTxClosed
	case errors.Is(err, engine.ErrNoTable):
		status = wire.StatusNoTable
	case errors.Is(err, engine.ErrNoTuple):
		status = wire.StatusNoTuple
	case errors.Is(err, wire.ErrBadRequest),
		errors.Is(err, engine.ErrMVCCDisabled),
		errors.Is(err, engine.ErrReadOnlyTx),
		errors.Is(err, engine.ErrNotSnapshot):
		status = wire.StatusBadRequest
	default:
		status = wire.StatusInternal
	}
	return status, errPayload(err.Error())
}

func (s *session) table(name string) (*engine.Table, error) {
	if t, ok := s.tables[name]; ok {
		return t, nil
	}
	t, err := s.srv.db.Table(name)
	if err != nil {
		return nil, err
	}
	s.tables[name] = t
	return t, nil
}

// tx resolves a transaction id, reporting whether it exists and whether
// an earlier pipelined op already poisoned it.
func (s *session) tx(id uint64) (*engine.Tx, bool, bool) {
	tx, ok := s.txs[id]
	if !ok {
		return nil, false, false
	}
	_, poisoned := s.poison[id]
	return tx, true, poisoned
}

// exec runs one decoded request and returns the response status and
// payload. Mutating ops that fail poison their transaction: every later
// op of that transaction answers StatusTxPoisoned without executing,
// and its COMMIT aborts instead — so a client that pipelines
// BEGIN..COMMIT blindly can never commit a half-applied transaction.
func (s *session) exec(f wire.Frame) (byte, []byte) {
	// In a cluster, only the leader runs read-write transactions and
	// latest-committed reads (a follower's heap holds applied-but-
	// uncommitted stream data that only MVCC snapshot reads may see).
	// Everything else — snapshot ops, stats, handshakes, replication —
	// is served by any node.
	if rep := s.srv.cfg.Repl; rep != nil && !rep.IsLeader() {
		switch f.Kind {
		case wire.OpBegin, wire.OpCommit, wire.OpAbort, wire.OpInsert,
			wire.OpRead, wire.OpUpdate, wire.OpUpdateField, wire.OpAddField,
			wire.OpDelete, wire.OpScan:
			addr := rep.LeaderAddr()
			return wire.StatusRedirect, wire.NewBuilder(len(addr) + 4).String(addr).Bytes()
		}
	}

	r := wire.NewReader(f.Payload)
	switch f.Kind {
	case wire.OpPing:
		return wire.StatusOK, nil

	case wire.OpHello:
		if len(f.Payload) != 1 {
			return wire.StatusBadRequest, errPayload("malformed HELLO")
		}
		if f.Payload[0] != wire.ProtoVersion {
			return wire.StatusBadRequest, errPayload(fmt.Sprintf(
				"protocol version mismatch: client speaks %d, server speaks %d",
				f.Payload[0], wire.ProtoVersion))
		}
		return wire.StatusOK, nil

	case wire.OpReplHello, wire.OpReplAppend, wire.OpReplSnap, wire.OpVoteReq:
		if s.srv.cfg.Repl == nil {
			return wire.StatusBadRequest, errPayload("replication not configured on this server")
		}
		return s.srv.cfg.Repl.HandleFrame(f.Kind, f.Payload)

	case wire.OpBegin:
		id := r.Uint64()
		if err := r.Err(); err != nil {
			return fail(err)
		}
		if _, open := s.txs[id]; open {
			return wire.StatusBadRequest, errPayload("txid already open on this connection")
		}
		tx, err := s.srv.db.Begin(s.w)
		if err != nil {
			return fail(err)
		}
		s.txs[id] = tx
		return wire.StatusOK, nil

	case wire.OpCommit, wire.OpAbort:
		id := r.Uint64()
		if err := r.Err(); err != nil {
			return fail(err)
		}
		tx, ok, poisoned := s.tx(id)
		if !ok {
			return fail(engine.ErrTxClosed)
		}
		delete(s.txs, id)
		if poisoned {
			reason := s.poison[id]
			delete(s.poison, id)
			if tx.Abort() == nil {
				s.srv.poisonedAborts.Add(1)
			}
			if f.Kind == wire.OpAbort {
				return wire.StatusOK, nil
			}
			return wire.StatusTxPoisoned, errPayload("aborted: " + reason)
		}
		var err error
		if f.Kind == wire.OpCommit {
			err = tx.Commit()
			if err == nil && s.srv.cfg.Repl != nil {
				// Semi-synchronous commit: the record is durable
				// locally, but the client's ack waits for a quorum so
				// the commit survives this node's death. On failure
				// the commit MAY still survive (the error says so);
				// the safe direction, since the client retries reads.
				if werr := s.srv.cfg.Repl.WaitCommitted(tx.CommitLSN()); werr != nil {
					return wire.StatusInternal, errPayload(
						"commit durable locally but not quorum-acknowledged: " + werr.Error())
				}
			}
		} else {
			err = tx.Abort()
		}
		if err != nil {
			return fail(err)
		}
		return wire.StatusOK, nil

	case wire.OpInsert:
		id, name, data := r.Uint64(), r.String(), r.Blob()
		if err := r.Err(); err != nil {
			return fail(err)
		}
		tx, ok, poisoned := s.tx(id)
		if !ok {
			return fail(engine.ErrTxClosed)
		}
		if poisoned {
			return wire.StatusTxPoisoned, errPayload(s.poison[id])
		}
		tbl, err := s.table(name)
		if err != nil {
			return s.poisonTx(id, err)
		}
		rid, err := tbl.Insert(tx, data)
		if err != nil {
			return s.poisonTx(id, err)
		}
		return wire.StatusOK, wire.NewBuilder(10).RID(netRID(rid)).Bytes()

	case wire.OpRead:
		name, rid := r.String(), r.RID()
		if err := r.Err(); err != nil {
			return fail(err)
		}
		tbl, err := s.table(name)
		if err != nil {
			return fail(err)
		}
		data, err := tbl.Read(s.w, coreRID(rid))
		if err != nil {
			return fail(err)
		}
		return wire.StatusOK, wire.NewBuilder(len(data) + 4).Blob(data).Bytes()

	case wire.OpUpdate:
		id, name, rid, data := r.Uint64(), r.String(), r.RID(), r.Blob()
		if err := r.Err(); err != nil {
			return fail(err)
		}
		return s.mutate(id, name, func(tx *engine.Tx, tbl *engine.Table) error {
			return tbl.Update(tx, coreRID(rid), data)
		})

	case wire.OpUpdateField:
		id, name, rid := r.Uint64(), r.String(), r.RID()
		off, val := r.Uint32(), r.Blob()
		if err := r.Err(); err != nil {
			return fail(err)
		}
		return s.mutate(id, name, func(tx *engine.Tx, tbl *engine.Table) error {
			return tbl.UpdateField(tx, coreRID(rid), int(off), val)
		})

	case wire.OpAddField:
		id, name, rid := r.Uint64(), r.String(), r.RID()
		off, delta := r.Uint32(), r.Uint64()
		if err := r.Err(); err != nil {
			return fail(err)
		}
		return s.mutate(id, name, func(tx *engine.Tx, tbl *engine.Table) error {
			return tbl.AddField(tx, coreRID(rid), int(off), delta)
		})

	case wire.OpDelete:
		id, name, rid := r.Uint64(), r.String(), r.RID()
		if err := r.Err(); err != nil {
			return fail(err)
		}
		return s.mutate(id, name, func(tx *engine.Tx, tbl *engine.Table) error {
			return tbl.Delete(tx, coreRID(rid))
		})

	case wire.OpScan:
		name, limit := r.String(), r.Uint32()
		if err := r.Err(); err != nil {
			return fail(err)
		}
		tbl, err := s.table(name)
		if err != nil {
			return fail(err)
		}
		// Responses are size-capped: a scan that would exceed the frame
		// limit fails instead of building a frame the client's ReadFrame
		// must reject (which would tear down the whole connection).
		budget := s.srv.cfg.MaxFrame - 256 // frame header plus slack
		b := wire.NewBuilder(4096)
		b.Uint32(0) // patched with the count below
		var count uint32
		var truncated bool
		err = tbl.Scan(s.w, func(rid core.RID, tuple []byte) bool {
			if len(b.Bytes())+14+len(tuple) > budget {
				truncated = true
				return false
			}
			b.RID(netRID(rid)).Blob(tuple)
			count++
			return limit == 0 || count < limit
		})
		if err != nil {
			return fail(err)
		}
		if truncated {
			return wire.StatusBadRequest, errPayload(fmt.Sprintf(
				"scan response would exceed the %d-byte frame limit; retry with a smaller limit",
				s.srv.cfg.MaxFrame))
		}
		payload := b.Bytes()
		payload[0] = byte(count >> 24)
		payload[1] = byte(count >> 16)
		payload[2] = byte(count >> 8)
		payload[3] = byte(count)
		return wire.StatusOK, payload

	case wire.OpBeginSnapshot:
		id := r.Uint64()
		if err := r.Err(); err != nil {
			return fail(err)
		}
		if _, open := s.txs[id]; open {
			return wire.StatusBadRequest, errPayload("txid already open on this connection")
		}
		tx, err := s.srv.db.BeginSnapshot(s.w)
		if err != nil {
			return fail(err)
		}
		s.txs[id] = tx
		return wire.StatusOK, wire.NewBuilder(8).Uint64(uint64(tx.SnapshotLSN())).Bytes()

	case wire.OpSnapshotRead:
		id, name, rid := r.Uint64(), r.String(), r.RID()
		if err := r.Err(); err != nil {
			return fail(err)
		}
		tx, ok, poisoned := s.tx(id)
		if !ok {
			return fail(engine.ErrTxClosed)
		}
		if poisoned {
			return wire.StatusTxPoisoned, errPayload(s.poison[id])
		}
		tbl, err := s.table(name)
		if err != nil {
			return fail(err)
		}
		// Snapshot reads never poison: a miss (ErrNoTuple) or decode slip
		// leaves the snapshot transaction usable, because reads mutate
		// nothing and cannot half-apply.
		data, err := tbl.ReadSnapshot(tx, coreRID(rid))
		if err != nil {
			return fail(err)
		}
		return wire.StatusOK, wire.NewBuilder(len(data) + 4).Blob(data).Bytes()

	case wire.OpSnapshotScan:
		id, name, limit := r.Uint64(), r.String(), r.Uint32()
		if err := r.Err(); err != nil {
			return fail(err)
		}
		tx, ok, poisoned := s.tx(id)
		if !ok {
			return fail(engine.ErrTxClosed)
		}
		if poisoned {
			return wire.StatusTxPoisoned, errPayload(s.poison[id])
		}
		tbl, err := s.table(name)
		if err != nil {
			return fail(err)
		}
		budget := s.srv.cfg.MaxFrame - 256
		b := wire.NewBuilder(4096)
		b.Uint32(0)
		var count uint32
		var truncated bool
		err = tbl.ScanSnapshot(tx, func(rid core.RID, tuple []byte) bool {
			if len(b.Bytes())+14+len(tuple) > budget {
				truncated = true
				return false
			}
			b.RID(netRID(rid)).Blob(tuple)
			count++
			return limit == 0 || count < limit
		})
		if err != nil {
			return fail(err)
		}
		if truncated {
			return wire.StatusBadRequest, errPayload(fmt.Sprintf(
				"scan response would exceed the %d-byte frame limit; retry with a smaller limit",
				s.srv.cfg.MaxFrame))
		}
		payload := b.Bytes()
		binary.BigEndian.PutUint32(payload[:4], count)
		return wire.StatusOK, payload

	case wire.OpStats:
		doc, err := s.srv.StatsDocument()
		if err != nil {
			return fail(err)
		}
		raw, err := json.Marshal(doc)
		if err != nil {
			return fail(err)
		}
		return wire.StatusOK, wire.NewBuilder(len(raw) + 4).Blob(raw).Bytes()

	default:
		return wire.StatusBadRequest, errPayload("unknown opcode")
	}
}

// mutate runs one tx-scoped write op with the shared poison checks.
func (s *session) mutate(id uint64, name string, op func(*engine.Tx, *engine.Table) error) (byte, []byte) {
	tx, ok, poisoned := s.tx(id)
	if !ok {
		return fail(engine.ErrTxClosed)
	}
	if poisoned {
		return wire.StatusTxPoisoned, errPayload(s.poison[id])
	}
	tbl, err := s.table(name)
	if err != nil {
		return s.poisonTx(id, err)
	}
	if err := op(tx, tbl); err != nil {
		return s.poisonTx(id, err)
	}
	return wire.StatusOK, nil
}

// poisonTx records the first failure of a transaction's op and returns
// that op's own status (the poison surfaces on later ops and COMMIT).
func (s *session) poisonTx(id uint64, err error) (byte, []byte) {
	if _, ok := s.poison[id]; !ok {
		s.poison[id] = err.Error()
	}
	return fail(err)
}

func netRID(r core.RID) wire.RID  { return wire.RID{Page: uint64(r.Page), Slot: r.Slot} }
func coreRID(r wire.RID) core.RID { return core.RID{Page: core.PageID(r.Page), Slot: r.Slot} }
