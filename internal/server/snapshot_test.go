package server_test

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"ipa/internal/client"
	"ipa/internal/engine"
	"ipa/internal/server"
	"ipa/internal/wire"
)

// TestSnapshotOverWire drives the BEGIN_SNAPSHOT / SNAPREAD / SNAPSCAN
// opcode family end to end: a network snapshot keeps returning the
// pre-update tuple states while a concurrent connection commits
// updates, the scan count stays frozen across a concurrent insert, and
// the admin stats document carries the new MVCC and abort counters.
func TestSnapshotOverWire(t *testing.T) {
	db, tl := newStackOpts(t, engine.Options{
		PageSize: 1024, BufferFrames: 512, MVCC: true,
	})
	srv, addr, _ := startServer(t, db, tl, server.Config{})
	defer srv.Shutdown(5 * time.Second)

	writer, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()
	reader, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()

	if _, err := db.CreateTable("kv", "data"); err != nil {
		t.Fatal(err)
	}
	tx, err := writer.Begin()
	if err != nil {
		t.Fatal(err)
	}
	rids := make([]wire.RID, 3)
	for i := range rids {
		if rids[i], err = writer.Insert(tx, "kv", []byte("old-"+string(rune('a'+i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := writer.Commit(tx); err != nil {
		t.Fatal(err)
	}

	snap, snapLSN, err := reader.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snapLSN == 0 {
		t.Fatal("snapshot LSN is zero")
	}

	// Concurrent writer: update one tuple, insert another, commit.
	tx2, err := writer.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := writer.Update(tx2, "kv", rids[0], []byte("new-a")); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Insert(tx2, "kv", []byte("new-d")); err != nil {
		t.Fatal(err)
	}
	if err := writer.Commit(tx2); err != nil {
		t.Fatal(err)
	}

	// The snapshot still sees the pre-update state.
	got, err := reader.SnapshotRead(snap, "kv", rids[0])
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "old-a" {
		t.Fatalf("snapshot read = %q, want old-a", got)
	}
	entries, err := reader.SnapshotScan(snap, "kv", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("snapshot scan saw %d tuples, want 3 (insert after snapshot must be invisible)", len(entries))
	}
	// A plain (latest-state) read sees the new value and 4 tuples.
	if latest, err := reader.Read("kv", rids[0]); err != nil || string(latest) != "new-a" {
		t.Fatalf("latest read = %q, %v; want new-a", latest, err)
	}
	if all, err := reader.Scan("kv", 0); err != nil || len(all) != 4 {
		t.Fatalf("latest scan = %d tuples, %v; want 4", len(all), err)
	}
	if err := reader.Commit(snap); err != nil {
		t.Fatal(err)
	}

	// Snapshot ops on a finished snapshot answer StatusTxClosed.
	if _, err := reader.SnapshotRead(snap, "kv", rids[0]); !errors.Is(err, wire.ErrTxClosed) {
		t.Fatalf("read on finished snapshot: %v, want ErrTxClosed", err)
	}

	// The stats document exposes MVCC counters and aborts-by-reason.
	raw, err := reader.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var doc server.StatsDocument
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Engine.MVCC.Enabled {
		t.Fatal("stats document reports MVCC disabled")
	}
	if doc.Engine.MVCC.SnapshotsStarted == 0 || doc.Engine.MVCC.SnapshotReads == 0 || doc.Engine.MVCC.SnapshotScans == 0 {
		t.Fatalf("MVCC counters not plumbed: %+v", doc.Engine.MVCC)
	}
}

// TestSnapshotRequiresMVCC: BEGIN_SNAPSHOT against a non-MVCC engine
// answers StatusBadRequest without disturbing the connection.
func TestSnapshotRequiresMVCC(t *testing.T) {
	db, tl := newStack(t)
	srv, addr, _ := startServer(t, db, tl, server.Config{})
	defer srv.Shutdown(5 * time.Second)

	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.BeginSnapshot(); !errors.Is(err, wire.ErrBadRequest) {
		t.Fatalf("BeginSnapshot without MVCC: %v, want ErrBadRequest", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("connection unusable after rejected snapshot: %v", err)
	}
}
