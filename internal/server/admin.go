package server

import (
	"encoding/json"
	"errors"
	"net"
	"net/http"
)

// AdminHandler serves the stats document as JSON:
//
//	GET /stats   → StatsDocument (503 once the database is closed)
//	GET /healthz → 200 "ok" while serving, 503 while draining
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		doc, err := s.StatsDocument()
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok\n"))
	})
	return mux
}

// ServeAdmin serves the admin endpoint on ln until Shutdown. Returns
// nil when the listener closes because of a shutdown.
func (s *Server) ServeAdmin(ln net.Listener) error {
	srv := &http.Server{Handler: s.AdminHandler()}
	s.adminMu.Lock()
	s.adminSrv = srv
	s.adminMu.Unlock()
	err := srv.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) || s.draining.Load() {
		return nil
	}
	return err
}

// ListenAndServeAdmin listens on addr and calls ServeAdmin.
func (s *Server) ListenAndServeAdmin(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.ServeAdmin(ln)
}

// closeAdmin stops the admin HTTP server if one is running.
func (s *Server) closeAdmin() {
	s.adminMu.Lock()
	srv := s.adminSrv
	s.adminMu.Unlock()
	if srv != nil {
		srv.Close()
	}
}
