// Package server exposes an engine.DB over TCP using the wire protocol.
//
// Each accepted connection becomes a session that owns one sim.Worker
// and executes its requests serially, in arrival order, so a client can
// pipeline an entire transaction (BEGIN, a batch of updates, COMMIT) in
// one write and rely on the ops landing in sequence. Responses carry
// the request id of the frame they answer, so the client correlates
// them without waiting between requests.
//
// Backpressure is a global in-flight semaphore: a request that cannot
// get a slot within the admission timeout is answered StatusBusy (the
// only transient, client-retryable status). Ops addressing a
// transaction already open on their session are exempt — the
// transaction was admitted at BEGIN, and rejecting one op of a
// pipelined BEGIN..COMMIT burst would half-apply it. Graceful shutdown stops
// accepting, lets every session finish the requests it has already read
// off the wire, aborts transactions left open by disconnected or
// drained clients, and then closes the database so the WAL ends with a
// clean checkpoint.
package server

import (
	"errors"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ipa/internal/core"
	"ipa/internal/engine"
	"ipa/internal/metrics"
	"ipa/internal/sim"
	"ipa/internal/wire"
)

// Replicator is the server's view of the replication layer
// (internal/repl implements it). When configured, sessions route the
// repl opcode family to HandleFrame, refuse read-write transactions on
// non-leaders with StatusRedirect, and hold COMMIT responses until the
// commit record is quorum-replicated.
type Replicator interface {
	IsLeader() bool
	LeaderAddr() string // "" when no leader is known
	WaitCommitted(lsn core.LSN) error
	HandleFrame(kind byte, payload []byte) (status byte, resp []byte)
	StatsDoc() any
}

// Config parameterises a Server. Zero values select the defaults noted
// on each field.
type Config struct {
	DB       *engine.DB    // required
	Timeline *sim.Timeline // optional; sessions run with nil workers without it
	Repl     Replicator    // optional; nil runs a standalone server

	MaxInflight    int           // global in-flight request cap (default 256)
	AcquireTimeout time.Duration // admission wait before StatusBusy (default 2s)
	ReadTimeout    time.Duration // per-frame read deadline / idle limit (default 2m)
	WriteTimeout   time.Duration // deadline per response flush (default 30s)
	MaxFrame       int           // frame size limit (default wire.MaxFrame)
	PipelineDepth  int           // per-session queued-request bound (default 64)

	Logf func(format string, args ...any) // optional diagnostics sink
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 256
	}
	if c.AcquireTimeout <= 0 {
		c.AcquireTimeout = 2 * time.Second
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 2 * time.Minute
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = wire.MaxFrame
	}
	if c.PipelineDepth <= 0 {
		c.PipelineDepth = 64
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Counters is the server-side half of the stats document.
type Counters struct {
	ConnsAccepted  uint64 `json:"conns_accepted"`
	ConnsActive    int64  `json:"conns_active"`
	Requests       uint64 `json:"requests"`
	BusyRejected   uint64 `json:"busy_rejected"`
	OrphansAborted uint64 `json:"orphans_aborted"`
	// PoisonedAborts counts transactions the server aborted because an
	// earlier pipelined op failed (the engine tallies these as explicit
	// aborts; this counter attributes them to poisoning specifically).
	PoisonedAborts uint64 `json:"poisoned_aborts"`
	Draining       bool   `json:"draining"`
}

// StatsDocument is what the admin endpoint and the STATS op serve:
// engine counters plus per-op wall-clock latency histograms.
type StatsDocument struct {
	Engine engine.Stats                       `json:"engine"`
	Ops    map[string]metrics.LatencySnapshot `json:"ops"`
	Server Counters                           `json:"server"`
	Repl   any                                `json:"repl,omitempty"`
}

// Server accepts wire-protocol connections and maps them onto a DB.
type Server struct {
	cfg      Config
	db       *engine.DB
	inflight chan struct{}
	draining atomic.Bool

	mu       sync.Mutex
	ln       net.Listener
	sessions map[*session]struct{}
	sessWG   sync.WaitGroup

	latMu sync.Mutex
	opLat map[string]*metrics.Latency

	adminMu  sync.Mutex
	adminSrv *http.Server

	connsAccepted  atomic.Uint64
	connsActive    atomic.Int64
	requests       atomic.Uint64
	busyRejected   atomic.Uint64
	orphansAborted atomic.Uint64
	poisonedAborts atomic.Uint64
}

// New builds a server around an open database.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, errors.New("server: Config.DB is required")
	}
	cfg = cfg.withDefaults()
	return &Server{
		cfg:      cfg,
		db:       cfg.DB,
		inflight: make(chan struct{}, cfg.MaxInflight),
		sessions: make(map[*session]struct{}),
		opLat:    make(map[string]*metrics.Latency),
	}, nil
}

// Serve accepts connections on ln until Shutdown closes it. It returns
// nil when the listener closes because of a shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.draining.Load() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if s.draining.Load() {
			conn.Close()
			continue
		}
		s.connsAccepted.Add(1)
		s.startSession(conn)
	}
}

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the serving listener's address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

func (s *Server) startSession(conn net.Conn) {
	sess := newSession(s, conn)
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.sessions[sess] = struct{}{}
	s.sessWG.Add(1)
	s.mu.Unlock()
	s.connsActive.Add(1)
	go sess.run()
}

func (s *Server) removeSession(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess)
	s.mu.Unlock()
	s.connsActive.Add(-1)
	s.sessWG.Done()
}

// Shutdown drains the server: it stops accepting, lets every session
// finish the requests it has already read (forcing connections closed
// if they exceed timeout), aborts orphaned transactions, stops the
// admin listener, and finally closes the database. Safe to call more
// than once; later calls just close the database again (idempotent).
func (s *Server) Shutdown(timeout time.Duration) error {
	s.draining.Store(true)

	s.mu.Lock()
	ln := s.ln
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	for _, sess := range sessions {
		sess.startDrain()
	}

	done := make(chan struct{})
	go func() {
		s.sessWG.Wait()
		close(done)
	}()
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		select {
		case <-done:
			timer.Stop()
		case <-timer.C:
			s.cfg.Logf("server: drain timed out after %v, forcing connections closed", timeout)
			s.mu.Lock()
			for sess := range s.sessions {
				sess.conn.Close()
			}
			s.mu.Unlock()
			<-done
		}
	} else {
		<-done
	}

	s.closeAdmin()
	return s.db.Close()
}

// observe records one request's wall-clock service time under its op
// name.
func (s *Server) observe(op byte, d time.Duration) {
	name := wire.OpName(op)
	s.latMu.Lock()
	l, ok := s.opLat[name]
	if !ok {
		l = &metrics.Latency{}
		s.opLat[name] = l
	}
	s.latMu.Unlock()
	l.Add(d)
}

// StatsDocument snapshots engine stats, per-op latency histograms and
// server counters. It fails with engine.ErrClosed once the database is
// closed.
func (s *Server) StatsDocument() (StatsDocument, error) {
	es, err := s.db.Stats()
	if err != nil {
		return StatsDocument{}, err
	}
	ops := make(map[string]metrics.LatencySnapshot)
	s.latMu.Lock()
	lats := make(map[string]*metrics.Latency, len(s.opLat))
	for name, l := range s.opLat {
		lats[name] = l
	}
	s.latMu.Unlock()
	for name, l := range lats {
		ops[name] = l.Snapshot()
	}
	doc := StatsDocument{
		Engine: es,
		Ops:    ops,
		Server: Counters{
			ConnsAccepted:  s.connsAccepted.Load(),
			ConnsActive:    s.connsActive.Load(),
			Requests:       s.requests.Load(),
			BusyRejected:   s.busyRejected.Load(),
			OrphansAborted: s.orphansAborted.Load(),
			PoisonedAborts: s.poisonedAborts.Load(),
			Draining:       s.draining.Load(),
		},
	}
	if s.cfg.Repl != nil {
		doc.Repl = s.cfg.Repl.StatsDoc()
	}
	return doc, nil
}

// Kill force-stops the server: it closes the listener and every live
// connection without draining queued requests, aborting orphans, or
// closing the database. This is the failover tests' stand-in for a
// crashed process — the engine is simply abandoned mid-flight, exactly
// as a power cut would leave it.
func (s *Server) Kill() {
	s.draining.Store(true)
	s.mu.Lock()
	ln := s.ln
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, sess := range sessions {
		sess.conn.Close()
	}
	s.closeAdmin()
	done := make(chan struct{})
	go func() {
		s.sessWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		s.cfg.Logf("server: kill: sessions still draining after 5s")
	}
}
