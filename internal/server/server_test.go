package server_test

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"ipa/internal/client"
	"ipa/internal/core"
	"ipa/internal/engine"
	"ipa/internal/flash"
	"ipa/internal/metrics"
	"ipa/internal/noftl"
	"ipa/internal/server"
	"ipa/internal/sim"
	"ipa/internal/wire"
)

// newStack builds the flash → NoFTL → engine stack the server tests
// run on: 8 SLC chips, IPA [2x3] on the data region, 1 KiB pages.
func newStack(tb testing.TB) (*engine.DB, *sim.Timeline) {
	tb.Helper()
	return newStackOpts(tb, engine.Options{PageSize: 1024, BufferFrames: 512})
}

// newStackOpts is newStack with caller-chosen engine options (the
// snapshot tests need MVCC on). PageSize must stay 1024 and Timeline is
// filled in here.
func newStackOpts(tb testing.TB, opts engine.Options) (*engine.DB, *sim.Timeline) {
	tb.Helper()
	g := flash.Geometry{
		Chips: 8, BlocksPerChip: 128, PagesPerBlock: 32,
		PageSize: 1024, OOBSize: 64, Cell: flash.SLC,
	}
	tl := sim.NewTimeline(g.Chips)
	arr, err := flash.New(flash.Config{
		Geometry: g, Timing: flash.SLCTiming(), StrictProgramOrder: true, MaxAppends: 8,
	}, tl)
	if err != nil {
		tb.Fatal(err)
	}
	dev := noftl.Open(arr)
	if _, err := dev.CreateRegion(noftl.RegionConfig{
		Name: "data", Mode: noftl.ModeSLC, Scheme: core.NewScheme(2, 3),
		BlocksPerChip: 128, OverProvision: 0.15,
	}); err != nil {
		tb.Fatal(err)
	}
	opts.Timeline = tl
	db, err := engine.New(dev, opts)
	if err != nil {
		tb.Fatal(err)
	}
	return db, tl
}

// startServer serves a DB on an ephemeral port (plus an admin port) and
// returns the server and both addresses.
func startServer(tb testing.TB, db *engine.DB, tl *sim.Timeline, cfg server.Config) (*server.Server, string, string) {
	tb.Helper()
	cfg.DB = db
	cfg.Timeline = tl
	srv, err := server.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	adminLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	go srv.Serve(ln)
	go srv.ServeAdmin(adminLn)
	return srv, ln.Addr().String(), adminLn.Addr().String()
}

func le64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

// acceptableStop reports whether a client error is a legitimate way for
// a transaction to die during a server drain: connection loss, explicit
// closed/busy statuses, a request timeout, or a commit whose BEGIN was
// dropped at the drain boundary (StatusTxClosed). Anything else — a
// poisoned transaction, a missing table or tuple, an internal error —
// is a bug on disjoint key ranges.
func acceptableStop(err error) bool {
	if errors.Is(err, wire.ErrClosed) || errors.Is(err, wire.ErrBusy) ||
		errors.Is(err, wire.ErrTxClosed) || errors.Is(err, client.ErrTimeout) {
		return true
	}
	var se *wire.StatusError
	return !errors.As(err, &se) // transport-level loss, not a server status
}

// TestServerIntegration is the acceptance test of the network layer:
// an in-process server, 64 concurrent connections driving pipelined
// mixed transactions (field update + journal insert per commit), the
// admin endpoint decoded mid-load, a graceful shutdown racing the load,
// and a crash/recover cycle that must preserve every acknowledged
// commit.
func TestServerIntegration(t *testing.T) {
	const numClients = 64

	db, tl := newStack(t)
	counters, err := db.CreateTable("counters", "data")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("journal", "data"); err != nil {
		t.Fatal(err)
	}
	// One 16-byte counter tuple per client: disjoint key ranges, so no
	// transaction may legitimately abort on a lock conflict.
	engineRIDs := make([]core.RID, numClients)
	setup := mustBegin(t, db)
	for i := range engineRIDs {
		if engineRIDs[i], err = counters.Insert(setup, make([]byte, 16)); err != nil {
			t.Fatal(err)
		}
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	srv, addr, adminAddr := startServer(t, db, tl, server.Config{})

	type outcome struct {
		acked     uint64 // last value whose COMMIT was acknowledged OK
		attempted uint64 // last value any frame was sent for
		stop      error  // why the loop ended
	}
	outcomes := make([]outcome, numClients)
	var wg sync.WaitGroup
	for i := 0; i < numClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Dial(addr, client.Options{RequestTimeout: 10 * time.Second})
			if err != nil {
				outcomes[i].stop = err
				return
			}
			defer c.Close()
			rid := wire.RID{Page: uint64(engineRIDs[i].Page), Slot: engineRIDs[i].Slot}
			for v := uint64(1); ; v++ {
				outcomes[i].attempted = v
				tx := c.NewTxID()
				entry := make([]byte, 24)
				binary.LittleEndian.PutUint64(entry, uint64(i))
				binary.LittleEndian.PutUint64(entry[8:], v)
				pend := []*client.Pending{c.BeginAsync(tx)}
				if v%3 == 0 {
					// Mixed op shape: every third transaction rewrites the
					// whole tuple instead of the 8-byte field delta.
					tuple := make([]byte, 16)
					binary.LittleEndian.PutUint64(tuple, v)
					pend = append(pend, c.UpdateAsync(tx, "counters", rid, tuple))
				} else {
					pend = append(pend, c.UpdateFieldAsync(tx, "counters", rid, 0, le64(v)))
				}
				pend = append(pend,
					c.InsertAsync(tx, "journal", entry),
					c.CommitAsync(tx),
				)
				var firstErr error
				for _, p := range pend {
					if _, err := p.Wait(); err != nil && firstErr == nil {
						firstErr = err
					}
				}
				if firstErr != nil {
					outcomes[i].stop = firstErr
					return
				}
				outcomes[i].acked = v
			}
		}(i)
	}

	// Let the load build, then decode the admin endpoint mid-flight.
	time.Sleep(300 * time.Millisecond)
	var doc struct {
		Engine engine.Stats                       `json:"engine"`
		Ops    map[string]metrics.LatencySnapshot `json:"ops"`
		Server server.Counters                    `json:"server"`
	}
	resp, err := http.Get("http://" + adminAddr + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin /stats = %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("admin JSON does not decode: %v", err)
	}
	resp.Body.Close()
	// LogFlushes is non-zero as soon as any commit is acknowledged;
	// Flash.Programs would race the first buffer-pool eviction.
	if doc.Engine.LogFlushes == 0 {
		t.Error("admin engine stats empty mid-load")
	}
	for _, op := range []string{"BEGIN", "COMMIT", "INSERT"} {
		snap, ok := doc.Ops[op]
		if !ok || snap.Count == 0 || len(snap.Buckets) == 0 {
			t.Errorf("admin latency histogram for %s empty: %+v", op, snap)
		}
	}
	if doc.Server.ConnsActive == 0 {
		t.Error("no active connections mid-load")
	}

	// Graceful shutdown races the load: drain sessions, abort orphans,
	// close the DB.
	if err := srv.Shutdown(10 * time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()

	var totalAcked uint64
	for i := range outcomes {
		o := outcomes[i]
		if o.acked == 0 {
			t.Errorf("client %d never committed (stop: %v)", i, o.stop)
		}
		if o.stop != nil && !acceptableStop(o.stop) {
			t.Errorf("client %d stopped on unexpected error: %v", i, o.stop)
		}
		totalAcked += o.acked
	}
	t.Logf("drained with %d acknowledged commits across %d clients", totalAcked, numClients)

	// The DB is closed now; "reopen the device" is a crash/recover cycle
	// on the same instance (the WAL lives with it). Every acknowledged
	// commit must survive; values past the last acknowledgement may only
	// appear if the commit applied and the ack was lost in the drain.
	if _, err := db.Begin(nil); !errors.Is(err, engine.ErrClosed) {
		t.Fatalf("Begin after Shutdown: %v, want ErrClosed", err)
	}
	if err := db.SimulateCrash(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Recover(nil); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	for i := range outcomes {
		data, err := counters.Read(nil, engineRIDs[i])
		if err != nil {
			t.Fatalf("client %d counter unreadable after recovery: %v", i, err)
		}
		v := binary.LittleEndian.Uint64(data)
		if v < outcomes[i].acked {
			t.Errorf("client %d lost committed update: recovered %d < acked %d",
				i, v, outcomes[i].acked)
		}
		if v > outcomes[i].attempted {
			t.Errorf("client %d recovered %d beyond last attempt %d",
				i, v, outcomes[i].attempted)
		}
	}
	if _, err := db.Stats(); err != nil {
		t.Fatalf("Stats after recovery: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

func mustBegin(t *testing.T, db *engine.DB) *engine.Tx {
	t.Helper()
	tx, err := db.Begin(nil)
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

// TestPipelinedPoisonCommit: a failed op in a pipelined transaction
// poisons it — later ops answer StatusTxPoisoned, COMMIT aborts instead
// of committing the partial prefix, and the connection stays usable.
func TestPipelinedPoisonCommit(t *testing.T) {
	db, tl := newStack(t)
	tbl, err := db.CreateTable("t", "data")
	if err != nil {
		t.Fatal(err)
	}
	setup := mustBegin(t, db)
	erid, err := tbl.Insert(setup, le64(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	srv, addr, _ := startServer(t, db, tl, server.Config{})
	defer srv.Shutdown(5 * time.Second)

	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rid := wire.RID{Page: uint64(erid.Page), Slot: erid.Slot}

	tx := c.NewTxID()
	pBegin := c.BeginAsync(tx)
	pGood := c.UpdateFieldAsync(tx, "t", rid, 0, le64(99)) // applies, then must roll back
	pBad := c.UpdateAsync(tx, "no_such_table", rid, le64(1))
	pAfter := c.UpdateFieldAsync(tx, "t", rid, 0, le64(100)) // after the poison: rejected
	pCommit := c.CommitAsync(tx)

	if _, err := pBegin.Wait(); err != nil {
		t.Fatalf("BEGIN: %v", err)
	}
	if _, err := pGood.Wait(); err != nil {
		t.Fatalf("first update: %v", err)
	}
	if _, err := pBad.Wait(); !errors.Is(err, wire.ErrNoTable) {
		t.Fatalf("bad-table update: %v, want ErrNoTable", err)
	}
	if _, err := pAfter.Wait(); !errors.Is(err, wire.ErrTxPoisoned) {
		t.Fatalf("op after poison: %v, want ErrTxPoisoned", err)
	}
	if _, err := pCommit.Wait(); !errors.Is(err, wire.ErrTxPoisoned) {
		t.Fatalf("COMMIT of poisoned tx: %v, want ErrTxPoisoned", err)
	}

	// The poisoned transaction rolled back: the committed value stands.
	data, err := c.Read("t", rid)
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint64(data); v != 7 {
		t.Fatalf("tuple = %d after poisoned tx, want 7", v)
	}

	// The connection survives and a fresh transaction commits.
	tx2, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.UpdateField(tx2, "t", rid, 0, le64(8)); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(tx2); err != nil {
		t.Fatal(err)
	}
	if data, err = c.Read("t", rid); err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint64(data); v != 8 {
		t.Fatalf("tuple = %d after clean tx, want 8", v)
	}

	// The STATS op serves the same document as the admin endpoint.
	raw, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var doc server.StatsDocument
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("STATS JSON: %v", err)
	}
	if doc.Ops["COMMIT"].Count == 0 {
		t.Error("STATS op latency histograms empty")
	}
	if doc.Server.Requests == 0 {
		t.Error("STATS server counters empty")
	}
}

// TestScanAndDelete covers the remaining protocol ops end to end.
func TestScanAndDelete(t *testing.T) {
	db, tl := newStack(t)
	if _, err := db.CreateTable("s", "data"); err != nil {
		t.Fatal(err)
	}
	srv, addr, _ := startServer(t, db, tl, server.Config{})
	defer srv.Shutdown(5 * time.Second)

	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	rids := make([]wire.RID, 10)
	for i := range rids {
		if rids[i], err = c.Insert(tx, "s", le64(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Commit(tx); err != nil {
		t.Fatal(err)
	}

	entries, err := c.Scan("s", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 10 {
		t.Fatalf("scan found %d tuples, want 10", len(entries))
	}
	limited, err := c.Scan("s", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != 3 {
		t.Fatalf("limited scan returned %d, want 3", len(limited))
	}

	tx2, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(tx2, "s", rids[4]); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(tx2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read("s", rids[4]); !errors.Is(err, wire.ErrNoTuple) {
		t.Fatalf("read of deleted tuple: %v, want ErrNoTuple", err)
	}
	if entries, err = c.Scan("s", 0); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 9 {
		t.Fatalf("scan after delete found %d, want 9", len(entries))
	}

	// Commit of an unknown transaction handle.
	if err := c.Commit(12345); !errors.Is(err, wire.ErrTxClosed) {
		t.Fatalf("commit of unknown tx: %v, want ErrTxClosed", err)
	}
}

// TestBusyAdmissionAtomicity: ops addressing an already-open
// transaction bypass the admission semaphore, so a saturated server
// cannot BUSY-reject the middle of a pipelined BEGIN..COMMIT burst and
// half-commit it. With the only slot occupied, a burst whose BEGIN was
// admitted earlier still runs to completion, a non-tx op is rejected
// BUSY, and a burst whose BEGIN is rejected applies nothing.
func TestBusyAdmissionAtomicity(t *testing.T) {
	db, tl := newStack(t)
	tbl, err := db.CreateTable("pairs", "data")
	if err != nil {
		t.Fatal(err)
	}
	setup := mustBegin(t, db)
	var pair [2]wire.RID
	for j := range pair {
		erid, err := tbl.Insert(setup, le64(0))
		if err != nil {
			t.Fatal(err)
		}
		pair[j] = wire.RID{Page: uint64(erid.Page), Slot: erid.Slot}
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	srv, addr, _ := startServer(t, db, tl, server.Config{
		MaxInflight:    1,
		AcquireTimeout: time.Millisecond,
	})
	defer srv.Shutdown(5 * time.Second)

	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Admit a transaction while the slot is free, then saturate the
	// server: the rest of the burst must still execute.
	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	release := srv.OccupySlot()
	pend := []*client.Pending{
		c.UpdateFieldAsync(tx, "pairs", pair[0], 0, le64(1)),
		c.UpdateFieldAsync(tx, "pairs", pair[1], 0, le64(1)),
		c.CommitAsync(tx),
	}
	for i, p := range pend {
		if _, err := p.Wait(); err != nil {
			t.Fatalf("op %d of admitted burst under saturation: %v", i, err)
		}
	}
	// A non-tx op has no exemption and is rejected BUSY.
	if err := c.Ping(); !errors.Is(err, wire.ErrBusy) {
		t.Fatalf("PING under saturation: %v, want ErrBusy", err)
	}

	// A burst whose BEGIN is rejected applies nothing: the handle never
	// opens, so no op of it is exempt.
	tx2 := c.NewTxID()
	rejected := []*client.Pending{
		c.BeginAsync(tx2),
		c.UpdateFieldAsync(tx2, "pairs", pair[0], 0, le64(7)),
		c.UpdateFieldAsync(tx2, "pairs", pair[1], 0, le64(7)),
		c.CommitAsync(tx2),
	}
	if _, err := rejected[0].Wait(); !errors.Is(err, wire.ErrBusy) {
		t.Fatalf("BEGIN under saturation: %v, want ErrBusy", err)
	}
	for i, p := range rejected[1:] {
		if _, err := p.Wait(); !errors.Is(err, wire.ErrBusy) && !errors.Is(err, wire.ErrTxClosed) {
			t.Fatalf("op %d after rejected BEGIN: %v, want ErrBusy or ErrTxClosed", i, err)
		}
	}
	release()

	for j, rid := range pair {
		data, err := c.Read("pairs", rid)
		if err != nil {
			t.Fatal(err)
		}
		if v := binary.LittleEndian.Uint64(data); v != 1 {
			t.Errorf("tuple %d = %d, want 1 (admitted burst committed, rejected burst did not)", j, v)
		}
	}
	doc, err := srv.StatsDocument()
	if err != nil {
		t.Fatal(err)
	}
	if doc.Server.BusyRejected == 0 {
		t.Error("no BUSY rejections recorded")
	}
}

// TestScanFrameCap: a SCAN whose response would exceed the server's
// MaxFrame fails StatusBadRequest instead of building a frame the
// client's reader would reject (tearing down the connection); a limited
// scan under the cap still succeeds on the same connection.
func TestScanFrameCap(t *testing.T) {
	db, tl := newStack(t)
	if _, err := db.CreateTable("big", "data"); err != nil {
		t.Fatal(err)
	}
	srv, addr, _ := startServer(t, db, tl, server.Config{MaxFrame: 2048})
	defer srv.Shutdown(5 * time.Second)

	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	// 200 tuples × 22 encoded bytes ≈ 4.4 KiB, well past the 2 KiB cap.
	for i := 0; i < 200; i++ {
		if _, err := c.Insert(tx, "big", le64(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Commit(tx); err != nil {
		t.Fatal(err)
	}

	if _, err := c.Scan("big", 0); !errors.Is(err, wire.ErrBadRequest) {
		t.Fatalf("oversized scan: %v, want ErrBadRequest", err)
	}
	entries, err := c.Scan("big", 10)
	if err != nil {
		t.Fatalf("limited scan after cap rejection: %v", err)
	}
	if len(entries) != 10 {
		t.Fatalf("limited scan returned %d, want 10", len(entries))
	}
}
