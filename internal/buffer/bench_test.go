package buffer

import (
	"fmt"
	"sync"
	"testing"

	"ipa/internal/core"
)

// TestHitPathZeroAllocs pins the PR 2 zero-alloc invariant on the pool's
// hot path: a buffer hit (Get of a resident page) plus a clean Unpin
// must not allocate, in both the single-shard and sharded pools.
func TestHitPathZeroAllocs(t *testing.T) {
	for _, shards := range []int{1, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			st := newFakeStore(64)
			for id := core.PageID(1); id <= 16; id++ {
				img := make([]byte, 64)
				img[0] = byte(id)
				st.pages[id] = img
			}
			p, err := New(Config{
				Frames: 32, PageSize: 64, Shards: shards, DirtyThreshold: 2.0,
			}, st)
			if err != nil {
				t.Fatal(err)
			}
			// Make all 16 pages resident (the misses may allocate; that is
			// the cold path).
			for id := core.PageID(1); id <= 16; id++ {
				fr, err := p.Get(nil, id)
				if err != nil {
					t.Fatal(err)
				}
				if err := p.Unpin(nil, fr, false, 0); err != nil {
					t.Fatal(err)
				}
			}
			id := core.PageID(1)
			allocs := testing.AllocsPerRun(200, func() {
				fr, err := p.Get(nil, id)
				if err != nil {
					t.Fatal(err)
				}
				if err := p.Unpin(nil, fr, false, 0); err != nil {
					t.Fatal(err)
				}
				id = id%16 + 1
			})
			if allocs != 0 {
				t.Errorf("hit path allocates %v per op, want 0", allocs)
			}
		})
	}
}

// BenchmarkBufferGet measures the pool hit path (Get of a resident page
// + clean Unpin) under 1→16 concurrent goroutines, sharded vs unsharded.
// This is the microbenchmark behind the PR 4 tentpole: with Shards=1
// every hit serialises on one mutex; with Shards=16 hits on different
// pages ride independent shard locks and should scale near-linearly
// until the memory system saturates. Run with:
//
//	go test -bench BufferGet -run xxx ./internal/buffer/
func BenchmarkBufferGet(b *testing.B) {
	const pages = 1024
	for _, shards := range []int{1, 16} {
		for _, gs := range []int{1, 2, 4, 8, 16} {
			b.Run(fmt.Sprintf("shards=%d/goroutines=%d", shards, gs), func(b *testing.B) {
				st := newFakeStore(64)
				for id := core.PageID(1); id <= pages; id++ {
					st.pages[id] = make([]byte, 64)
				}
				p, err := New(Config{
					Frames: 2 * pages, PageSize: 64, Shards: shards, DirtyThreshold: 2.0,
				}, st)
				if err != nil {
					b.Fatal(err)
				}
				for id := core.PageID(1); id <= pages; id++ {
					fr, err := p.Get(nil, id)
					if err != nil {
						b.Fatal(err)
					}
					if err := p.Unpin(nil, fr, false, 0); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				var wg sync.WaitGroup
				per := b.N/gs + 1
				for g := 0; g < gs; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						// Golden-ratio stride walks every page, decorrelated
						// across goroutines so hits spread over all shards.
						x := uint64(g) * 0x9E3779B97F4A7C15
						for i := 0; i < per; i++ {
							x += 0x9E3779B97F4A7C15
							id := core.PageID(1 + (x>>40)%pages)
							fr, err := p.Get(nil, id)
							if err != nil {
								panic(err)
							}
							if err := p.Unpin(nil, fr, false, 0); err != nil {
								panic(err)
							}
						}
					}(g)
				}
				wg.Wait()
			})
		}
	}
}
