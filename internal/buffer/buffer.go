// Package buffer implements the database buffer pool: frames with
// pin/unpin, CLOCK replacement, dirty tracking and a page-cleaner
// emulation with Shore-MT's *eager* eviction strategy (flush when the
// dirty fraction passes a threshold, 12.5% hardcoded in Shore-MT) or the
// paper's *non-eager* alternative (Sec. 8.4, Tables 9 vs 10).
//
// The pool is where the paper's approach plugs in: every frame carries,
// next to the current logical image, the logical image as of the last
// flush. On eviction the storage manager diffs the two to decide between
// an In-Place Append (write_delta) and an out-of-place page write.
//
// Concurrency model. The pool mutex (p.mu) guards only the frame table
// and frame *state* (pin counts, dirty flags, CLOCK metadata); page
// *contents* (Data, Flushed, UsedSlots, New) are guarded by a per-frame
// reader/writer latch. All store I/O — fetches on a miss, flushes on
// eviction, cleaning — runs outside p.mu, so fetch/flush on different
// pages (and different regions) proceed in parallel. The latch order is
// strict: a frame latch is never acquired while p.mu is held, and p.mu
// may be acquired while a latch is held, never the reverse direction.
package buffer

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"ipa/internal/core"
	"ipa/internal/sim"
)

// Errors of the buffer pool.
var (
	ErrNoFrames = errors.New("buffer: all frames pinned")
	ErrPinned   = errors.New("buffer: page still pinned")
)

// Store is the storage manager the pool delegates page movement to.
type Store interface {
	// Fetch reads the logical image of a page into buf (applying any
	// delta-records) and returns the number of delta-record slots already
	// used on the physical page.
	Fetch(w *sim.Worker, id core.PageID, buf []byte) (usedSlots int, err error)
	// Flush persists a frame, choosing between write_delta and an
	// out-of-place write. On success it must update fr.Flushed,
	// fr.UsedSlots and clear fr.New.
	Flush(w *sim.Worker, fr *Frame) error
}

// Frame is one buffer slot.
type Frame struct {
	ID   core.PageID
	Data []byte // current logical image
	// Flushed is the logical image as of the last flush (nil for a page
	// that has never been written to storage). Diffing Data against
	// Flushed yields the exact <value,offset> pairs of the delta-record.
	Flushed []byte
	// UsedSlots is N_E in the paper: delta-records already programmed on
	// the physical page.
	UsedSlots int
	// New marks a freshly allocated page with no physical copy yet; its
	// first write is always out-of-place (IPA is not applicable to newly
	// allocated pages).
	New    bool
	Dirty  bool
	RecLSN core.LSN // LSN that first dirtied the frame (for checkpoints)

	// latch guards the page contents (Data, Flushed, UsedSlots, New)
	// against concurrent access: engine readers hold it shared, engine
	// mutators and the flush paths hold it exclusively. Pin the frame
	// before latching; never latch while holding the pool mutex.
	latch sync.RWMutex

	pin int
	ref bool

	// Miss-fetch protocol: the loader sets loading and fetches outside
	// p.mu; concurrent getters pin the frame and wait on loadDone.
	loading  bool
	loadDone chan struct{}
	loadErr  error
}

// Latch acquires the frame's content latch exclusively (for mutation).
func (fr *Frame) Latch() { fr.latch.Lock() }

// Unlatch releases an exclusive latch.
func (fr *Frame) Unlatch() { fr.latch.Unlock() }

// RLatch acquires the frame's content latch shared (for reading).
func (fr *Frame) RLatch() { fr.latch.RLock() }

// RUnlatch releases a shared latch.
func (fr *Frame) RUnlatch() { fr.latch.RUnlock() }

// Config sizes the pool and its cleaning strategy.
type Config struct {
	Frames   int
	PageSize int

	// DirtyThreshold is the dirty-page fraction above which Unpin invokes
	// the cleaner, emulating Shore-MT's eager background flushing. Zero
	// selects the Shore-MT default of 12.5%. Non-eager experiments set it
	// to 0.75.
	DirtyThreshold float64
	// CleanBatch is how many pages one cleaner pass flushes. Zero selects
	// max(8, Frames/64).
	CleanBatch int
	// Cleaner is the simulated worker background flushes are charged to,
	// so cleaning occupies flash chips without blocking the transaction
	// that triggered it (steal/no-force). Nil charges the calling worker.
	Cleaner *sim.Worker
	// CleanNotify, when set, replaces the inline CleanerPass that Unpin
	// runs on crossing the dirty threshold: the pool calls it (without
	// holding any lock) and the owner is expected to run CleanerPass from
	// its own maintenance thread. This takes cleaning off the transaction
	// path entirely.
	CleanNotify func()
}

func (c Config) dirtyThreshold() float64 {
	if c.DirtyThreshold <= 0 {
		return 0.125
	}
	return c.DirtyThreshold
}

func (c Config) cleanBatch() int {
	if c.CleanBatch > 0 {
		return c.CleanBatch
	}
	b := c.Frames / 64
	if b < 8 {
		b = 8
	}
	return b
}

// Stats counts pool activity.
type Stats struct {
	Hits           uint64
	Misses         uint64
	Evictions      uint64
	EvictionFlush  uint64 // dirty evictions (flush on the critical path)
	CleanerFlushes uint64 // background cleaner flushes
}

// Pool is the buffer pool. All methods are safe for concurrent use.
type Pool struct {
	cfg   Config
	store Store

	mu     sync.Mutex
	frames []*Frame
	table  map[core.PageID]*Frame
	hand   int
	dirty  int
	stats  Stats

	// cleanGate admits one cleaner pass at a time; triggers arriving
	// while a pass runs are dropped (the running pass covers them).
	cleanGate sync.Mutex
}

// New creates a pool with cfg.Frames empty frames.
func New(cfg Config, store Store) (*Pool, error) {
	if cfg.Frames < 1 {
		return nil, fmt.Errorf("buffer: %d frames", cfg.Frames)
	}
	if cfg.PageSize < 64 {
		return nil, fmt.Errorf("buffer: page size %d", cfg.PageSize)
	}
	p := &Pool{
		cfg:    cfg,
		store:  store,
		frames: make([]*Frame, cfg.Frames),
		table:  make(map[core.PageID]*Frame, cfg.Frames),
	}
	for i := range p.frames {
		p.frames[i] = &Frame{Data: make([]byte, cfg.PageSize)}
	}
	return p, nil
}

// Size returns the number of frames.
func (p *Pool) Size() int { return p.cfg.Frames }

// Stats returns a snapshot of the counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// DirtyFraction is the fraction of frames currently dirty.
func (p *Pool) DirtyFraction() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return float64(p.dirty) / float64(len(p.frames))
}

// Get pins the page, fetching it from the store on a miss. The fetch
// happens outside the pool mutex; concurrent getters of the same page
// wait for the in-flight fetch instead of issuing their own.
func (p *Pool) Get(w *sim.Worker, id core.PageID) (*Frame, error) {
	for {
		p.mu.Lock()
		if fr, ok := p.table[id]; ok {
			fr.pin++
			fr.ref = true
			p.stats.Hits++
			loading, done := fr.loading, fr.loadDone
			p.mu.Unlock()
			if loading {
				<-done
				p.mu.Lock()
				if err := fr.loadErr; err != nil {
					fr.pin--
					p.mu.Unlock()
					return nil, err
				}
				p.mu.Unlock()
			}
			return fr, nil
		}
		p.stats.Misses++
		fr, err := p.victimLocked(w)
		if err != nil {
			p.mu.Unlock()
			return nil, err
		}
		if _, raced := p.table[id]; raced {
			// Someone loaded the page while we were evicting: leave the
			// reclaimed frame free and retry as a hit.
			p.stats.Misses--
			p.mu.Unlock()
			continue
		}
		fr.ID = id
		fr.pin = 1
		fr.ref = true
		fr.New = false
		// Flushed must read nil while the load is in flight (it marks "no
		// flushed image"), but its capacity is a full page — keep it for
		// the post-load copy instead of allocating a fresh one per miss.
		flushedBuf := fr.Flushed[:0]
		fr.Flushed = nil
		fr.UsedSlots = 0
		fr.RecLSN = 0
		fr.loading = true
		fr.loadDone = make(chan struct{})
		fr.loadErr = nil
		p.table[id] = fr
		p.mu.Unlock()

		used, err := p.store.Fetch(w, id, fr.Data)

		p.mu.Lock()
		fr.loading = false
		if err != nil {
			fr.loadErr = err
			delete(p.table, id)
			fr.pin-- // our pin; waiters drop theirs when they see loadErr
			fr.ID = core.InvalidPageID
			close(fr.loadDone)
			p.mu.Unlock()
			return nil, err
		}
		fr.UsedSlots = used
		fr.Flushed = append(flushedBuf, fr.Data...)
		close(fr.loadDone)
		p.mu.Unlock()
		return fr, nil
	}
}

// GetNew pins a frame for a freshly allocated page that has no physical
// copy yet. The caller formats fr.Data; the first flush will be an
// out-of-place write.
func (p *Pool) GetNew(w *sim.Worker, id core.PageID) (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if fr, ok := p.table[id]; ok {
		fr.pin++
		fr.ref = true
		return fr, nil
	}
	fr, err := p.victimLocked(w)
	if err != nil {
		return nil, err
	}
	fr.ID = id
	fr.pin = 1
	fr.ref = true
	fr.New = true
	fr.Dirty = false
	fr.Flushed = nil
	fr.UsedSlots = 0
	fr.RecLSN = 0
	for i := range fr.Data {
		fr.Data[i] = 0
	}
	p.table[id] = fr
	return fr, nil
}

// Unpin releases one pin. If dirty, recLSN records the earliest LSN that
// modified the page since it was last clean (ARIES recLSN). When the
// dirty fraction exceeds the threshold the cleaner flushes a batch.
func (p *Pool) Unpin(w *sim.Worker, fr *Frame, dirty bool, recLSN core.LSN) error {
	p.mu.Lock()
	if fr.pin <= 0 {
		p.mu.Unlock()
		return fmt.Errorf("buffer: unpin of unpinned page %d", fr.ID)
	}
	fr.pin--
	if dirty {
		if !fr.Dirty {
			fr.Dirty = true
			fr.RecLSN = recLSN
			p.dirty++
		}
	}
	needClean := float64(p.dirty)/float64(len(p.frames)) > p.cfg.dirtyThreshold()
	p.mu.Unlock()
	if needClean {
		if p.cfg.CleanNotify != nil {
			p.cfg.CleanNotify()
			return nil
		}
		return p.CleanerPass(w)
	}
	return nil
}

// claimLocked marks a dirty, unpinned frame clean and flush-pins it so
// the caller can flush it outside p.mu. A writer that re-dirties the
// frame during the flush simply marks it dirty again — nothing is lost,
// the frame is flushed once more later.
func (p *Pool) claimLocked(fr *Frame) {
	fr.Dirty = false
	fr.RecLSN = 0
	p.dirty--
	fr.pin++
}

// flushClaimed flushes a frame claimed by claimLocked, without p.mu held,
// taking the content latch for the duration of the store I/O. On error
// the dirty state is restored.
func (p *Pool) flushClaimed(w *sim.Worker, fr *Frame, recLSN core.LSN) error {
	fr.latch.Lock()
	err := p.store.Flush(w, fr)
	fr.latch.Unlock()
	p.mu.Lock()
	fr.pin--
	if err != nil && !fr.Dirty {
		fr.Dirty = true
		fr.RecLSN = recLSN
		p.dirty++
	}
	p.mu.Unlock()
	return err
}

// CleanerPass flushes up to one batch of dirty unpinned frames, charged
// to the configured cleaner worker (or w if none). Only one pass runs at
// a time; triggers arriving during a pass return immediately.
func (p *Pool) CleanerPass(w *sim.Worker) error {
	if !p.cleanGate.TryLock() {
		return nil
	}
	defer p.cleanGate.Unlock()
	cw := p.cfg.Cleaner
	if cw == nil {
		cw = w
	} else if w != nil {
		cw.SetNow(w.Now()) // the cleaner acts concurrently with the trigger
	}
	type claimed struct {
		fr     *Frame
		recLSN core.LSN
	}
	var batch []claimed
	p.mu.Lock()
	budget := p.cfg.cleanBatch()
	for i := 0; i < len(p.frames) && budget > 0; i++ {
		fr := p.frames[(p.hand+i)%len(p.frames)]
		if !fr.Dirty || fr.pin > 0 || fr.loading {
			continue
		}
		batch = append(batch, claimed{fr, fr.RecLSN})
		p.claimLocked(fr)
		budget--
	}
	p.mu.Unlock()
	for _, c := range batch {
		if err := p.flushClaimed(cw, c.fr, c.recLSN); err != nil {
			return err
		}
		p.mu.Lock()
		p.stats.CleanerFlushes++
		p.mu.Unlock()
	}
	return nil
}

// victimLocked returns a free, unpinned frame not present in the page
// table, evicting (and flushing) as needed using the CLOCK policy. It is
// called with p.mu held and returns with p.mu held, but may release the
// mutex while flushing a dirty victim.
func (p *Pool) victimLocked(w *sim.Worker) (*Frame, error) {
	n := len(p.frames)
	for round := 0; round < 4*n+2; round++ {
		fr := p.frames[p.hand]
		p.hand = (p.hand + 1) % n
		if fr.pin > 0 || fr.loading {
			continue
		}
		if fr.ref {
			fr.ref = false
			continue
		}
		if fr.ID == core.InvalidPageID {
			return fr, nil
		}
		if !fr.Dirty {
			delete(p.table, fr.ID)
			p.stats.Evictions++
			fr.ID = core.InvalidPageID
			return fr, nil
		}
		// Dirty victim: flush it outside the pool mutex, then re-check —
		// another goroutine may have pinned it meanwhile, in which case
		// the CLOCK hand keeps searching.
		recLSN := fr.RecLSN
		p.claimLocked(fr)
		p.mu.Unlock()
		err := p.flushClaimed(w, fr, recLSN)
		p.mu.Lock()
		if err != nil {
			return nil, err
		}
		p.stats.EvictionFlush++
		if fr.pin == 0 && !fr.Dirty && !fr.loading {
			delete(p.table, fr.ID)
			p.stats.Evictions++
			fr.ID = core.InvalidPageID
			return fr, nil
		}
	}
	return nil, ErrNoFrames
}

// FlushAll writes every dirty frame (checkpoint support). Pinned dirty
// frames are an error.
func (p *Pool) FlushAll(w *sim.Worker) error {
	for {
		var fr *Frame
		var recLSN core.LSN
		p.mu.Lock()
		for _, f := range p.frames {
			if !f.Dirty {
				continue
			}
			if f.pin > 0 {
				p.mu.Unlock()
				return fmt.Errorf("%w: page %d", ErrPinned, f.ID)
			}
			fr, recLSN = f, f.RecLSN
			break
		}
		if fr == nil {
			p.mu.Unlock()
			return nil
		}
		p.claimLocked(fr)
		p.mu.Unlock()
		if err := p.flushClaimed(w, fr, recLSN); err != nil {
			return err
		}
	}
}

// FlushOldest flushes up to n dirty unpinned frames with the smallest
// RecLSN — the pages holding back log truncation. Candidates are
// collected in one pass and sorted, rather than rescanning the whole
// pool under the mutex for every flush; each is revalidated at claim
// time since the pool moves on while flushes run.
func (p *Pool) FlushOldest(w *sim.Worker, n int) (int, error) {
	type cand struct {
		fr     *Frame
		recLSN core.LSN
	}
	p.mu.Lock()
	cands := make([]cand, 0, p.dirty)
	for _, fr := range p.frames {
		if fr.Dirty && fr.pin == 0 && !fr.loading {
			cands = append(cands, cand{fr, fr.RecLSN})
		}
	}
	p.mu.Unlock()
	// Stable sort: ties keep frame order, matching the old repeated-scan
	// selection exactly.
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].recLSN < cands[j].recLSN })
	flushed := 0
	for _, c := range cands {
		if flushed >= n {
			break
		}
		p.mu.Lock()
		fr := c.fr
		if !fr.Dirty || fr.pin > 0 || fr.loading {
			p.mu.Unlock()
			continue // flushed, reloaded or pinned since the snapshot
		}
		recLSN := fr.RecLSN
		p.claimLocked(fr)
		p.mu.Unlock()
		if err := p.flushClaimed(w, fr, recLSN); err != nil {
			return flushed, err
		}
		flushed++
	}
	return flushed, nil
}

// DirtyPages snapshots the dirty-page table (page → recLSN) for a fuzzy
// checkpoint.
func (p *Pool) DirtyPages() map[core.PageID]core.LSN {
	p.mu.Lock()
	defer p.mu.Unlock()
	dpt := make(map[core.PageID]core.LSN, p.dirty)
	for _, fr := range p.frames {
		if fr.Dirty {
			dpt[fr.ID] = fr.RecLSN
		}
	}
	return dpt
}

// OldestRecLSN returns the smallest recLSN across dirty frames, or 0 when
// nothing is dirty — the page-side bound for log truncation.
func (p *Pool) OldestRecLSN() core.LSN {
	p.mu.Lock()
	defer p.mu.Unlock()
	var min core.LSN
	for _, fr := range p.frames {
		if fr.Dirty && (min == 0 || fr.RecLSN < min) {
			min = fr.RecLSN
		}
	}
	return min
}

// Drop removes an unpinned page from the pool without flushing (used
// when a page is deallocated). Dropping an absent page is a no-op.
func (p *Pool) Drop(id core.PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	fr, ok := p.table[id]
	if !ok {
		return nil
	}
	if fr.pin > 0 {
		return fmt.Errorf("%w: page %d", ErrPinned, id)
	}
	if fr.Dirty {
		fr.Dirty = false
		p.dirty--
	}
	delete(p.table, id)
	fr.ID = core.InvalidPageID
	fr.New = false
	fr.Flushed = nil
	return nil
}

// Contains reports whether the page is resident.
func (p *Pool) Contains(id core.PageID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.table[id]
	return ok
}
