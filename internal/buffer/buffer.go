// Package buffer implements the database buffer pool: frames with
// pin/unpin, CLOCK replacement, dirty tracking and a page-cleaner
// emulation with Shore-MT's *eager* eviction strategy (flush when the
// dirty fraction passes a threshold, 12.5% hardcoded in Shore-MT) or the
// paper's *non-eager* alternative (Sec. 8.4, Tables 9 vs 10).
//
// The pool is where the paper's approach plugs in: every frame carries,
// next to the current logical image, the logical image as of the last
// flush. On eviction the storage manager diffs the two to decide between
// an In-Place Append (write_delta) and an out-of-place page write.
//
// Concurrency model. The pool is split into Config.Shards independent
// shards, frames partitioned by hash(PageID). Each shard owns its own
// mutex, page table, frame slice, CLOCK hand, dirty counter and stats
// cell, so pool operations on pages in different shards never contend —
// the same padded-shard pattern as the flash array's per-chip state. A
// shard mutex guards only that shard's frame table and frame *state*
// (pin counts, dirty flags, CLOCK metadata); page *contents* (Data,
// Flushed, UsedSlots, New) are guarded by a per-frame reader/writer
// latch. All store I/O — fetches on a miss, flushes on eviction,
// cleaning — runs outside the shard mutexes, so fetch/flush on different
// pages (and different regions) proceed in parallel. The latch order is
// strict: a frame latch is never acquired while a shard mutex is held, a
// shard mutex may be acquired while a latch is held, and no two shard
// mutexes are ever held at once.
//
// Determinism. Shards=1 (the default) degenerates to a single global
// CLOCK whose eviction order is bit-identical to the historical
// unsharded pool. The paper's experiments depend on that: eviction order
// decides which flushes happen and when, and therefore the update-size
// distributions of Tables 1/9/10/11. Multi-shard pools are for the
// concurrency benchmarks and production-style deployments, where
// shard-local CLOCK ordering is an accepted (and documented) deviation.
package buffer

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"ipa/internal/core"
	"ipa/internal/sim"
)

// Errors of the buffer pool.
var (
	ErrNoFrames = errors.New("buffer: all frames pinned")
	ErrPinned   = errors.New("buffer: page still pinned")
)

// Store is the storage manager the pool delegates page movement to.
type Store interface {
	// Fetch reads the logical image of a page into buf (applying any
	// delta-records) and returns the number of delta-record slots already
	// used on the physical page.
	Fetch(w *sim.Worker, id core.PageID, buf []byte) (usedSlots int, err error)
	// Flush persists a frame, choosing between write_delta and an
	// out-of-place write. On success it must update fr.Flushed,
	// fr.UsedSlots and clear fr.New.
	Flush(w *sim.Worker, fr *Frame) error
}

// Frame is one buffer slot.
type Frame struct {
	ID   core.PageID
	Data []byte // current logical image
	// Flushed is the logical image as of the last flush (nil for a page
	// that has never been written to storage). Diffing Data against
	// Flushed yields the exact <value,offset> pairs of the delta-record.
	Flushed []byte
	// UsedSlots is N_E in the paper: delta-records already programmed on
	// the physical page.
	UsedSlots int
	// New marks a freshly allocated page with no physical copy yet; its
	// first write is always out-of-place (IPA is not applicable to newly
	// allocated pages).
	New    bool
	Dirty  bool
	RecLSN core.LSN // LSN that first dirtied the frame (for checkpoints)

	// latch guards the page contents (Data, Flushed, UsedSlots, New)
	// against concurrent access: engine readers hold it shared, engine
	// mutators and the flush paths hold it exclusively. Pin the frame
	// before latching; never latch while holding a shard mutex.
	latch sync.RWMutex

	// ver is the frame's optimistic-lock-coupling version word, stored
	// beside the pin so the two hot fields share a frame, not a shard.
	// The upper 48 bits hold a pool-wide binding epoch stamped whenever
	// the frame is (re)bound to a page id, so a version read against one
	// binding can never validate against another; the low 16 bits count
	// in-place modifications, bumped by content mutators *before* they
	// release their exclusive latch. Flushes leave ver alone: they copy
	// the logical image out but do not change it.
	ver atomic.Uint64

	// home is the shard whose frame slice (and mutex) currently owns this
	// frame. It only changes while the frame is free and unpinned, under
	// the owning shard's mutex (see stealFrameLocked); holders of a pin
	// may read it directly, everyone else goes through lockHome.
	home atomic.Pointer[poolShard]

	pin int
	ref bool

	// Miss-fetch protocol: the loader sets loading and fetches outside
	// the shard mutex; concurrent getters pin the frame and wait on
	// loadDone.
	loading  bool
	loadDone chan struct{}
	loadErr  error
}

// Latch acquires the frame's content latch exclusively (for mutation).
func (fr *Frame) Latch() { fr.latch.Lock() }

// Unlatch releases an exclusive latch.
func (fr *Frame) Unlatch() { fr.latch.Unlock() }

// RLatch acquires the frame's content latch shared (for reading).
func (fr *Frame) RLatch() { fr.latch.RLock() }

// RUnlatch releases a shared latch.
func (fr *Frame) RUnlatch() { fr.latch.RUnlock() }

// TryLatch attempts the exclusive content latch without blocking. OLC
// writers use it to count latch waits before falling back to Latch.
func (fr *Frame) TryLatch() bool { return fr.latch.TryLock() }

// TryRLatch attempts the shared content latch without blocking.
func (fr *Frame) TryRLatch() bool { return fr.latch.TryRLock() }

// Version returns the frame's current OLC version word. Readers sample
// it under a shared latch (or with the frame pinned) and re-check it
// after moving on to decide whether what they read is still current.
func (fr *Frame) Version() uint64 { return fr.ver.Load() }

// BumpVersion marks the frame's contents as changed. Mutators call it
// while still holding the exclusive latch, so a reader that validates
// an old version is guaranteed to observe the bump.
func (fr *Frame) BumpVersion() { fr.ver.Add(1) }

// stampVersion installs a fresh binding epoch when the frame is bound
// to a (new) page id, invalidating every version sampled against the
// previous binding.
func (fr *Frame) stampVersion(epoch uint64) { fr.ver.Store(epoch << 16) }

// Config sizes the pool and its cleaning strategy.
type Config struct {
	Frames   int
	PageSize int

	// Shards splits the pool into independent partitions — each with its
	// own mutex, page table, CLOCK hand and dirty accounting — routed by
	// hash(PageID). Zero or one selects the single-shard pool, whose
	// global CLOCK eviction order is bit-identical to the historical
	// implementation (what every paper experiment uses). Values are
	// rounded up to the next power of two and capped so every shard owns
	// at least one frame.
	Shards int

	// DirtyThreshold is the dirty-page fraction above which Unpin invokes
	// the cleaner, emulating Shore-MT's eager background flushing. Zero
	// selects the Shore-MT default of 12.5%. Non-eager experiments set it
	// to 0.75.
	DirtyThreshold float64
	// CleanBatch is how many pages one cleaner pass flushes. Zero selects
	// max(8, Frames/64).
	CleanBatch int
	// Cleaner is the simulated worker background flushes are charged to,
	// so cleaning occupies flash chips without blocking the transaction
	// that triggered it (steal/no-force). Nil charges the calling worker.
	Cleaner *sim.Worker
	// CleanNotify, when set, replaces the inline CleanerPass that Unpin
	// runs on crossing the dirty threshold: the pool calls it (without
	// holding any lock) and the owner is expected to run CleanerPass from
	// its own maintenance thread. This takes cleaning off the transaction
	// path entirely.
	CleanNotify func()
}

func (c Config) dirtyThreshold() float64 {
	if c.DirtyThreshold <= 0 {
		return 0.125
	}
	return c.DirtyThreshold
}

func (c Config) cleanBatch() int {
	if c.CleanBatch > 0 {
		return c.CleanBatch
	}
	b := c.Frames / 64
	if b < 8 {
		b = 8
	}
	return b
}

// shardCount normalises Config.Shards: at least one, a power of two (so
// routing is a multiply and a shift, no modulo), and never more than
// Frames so every shard owns at least one frame.
func (c Config) shardCount() int {
	n := c.Shards
	if n < 1 {
		n = 1
	}
	if n > c.Frames {
		n = c.Frames
	}
	p := 1
	for p < n {
		p <<= 1
	}
	for p > c.Frames && p > 1 {
		p >>= 1
	}
	return p
}

// Stats counts pool activity.
type Stats struct {
	Hits           uint64
	Misses         uint64
	Evictions      uint64
	EvictionFlush  uint64 // dirty evictions (flush on the critical path)
	CleanerFlushes uint64 // background cleaner flushes
}

// statsCell is one shard's counters. All fields are atomics so Stats()
// aggregates without taking any shard mutex.
type statsCell struct {
	hits           atomic.Uint64
	misses         atomic.Uint64
	evictions      atomic.Uint64
	evictionFlush  atomic.Uint64
	cleanerFlushes atomic.Uint64
}

// dec undoes one Add(1) on an atomic counter (two's-complement add).
func dec(c *atomic.Uint64) { c.Add(^uint64(0)) }

// poolShard is one partition of the pool: a subset of the frames with
// its own mutex, page table, CLOCK hand, dirty counter and stats cell.
// Operations on pages routed to different shards never contend.
type poolShard struct {
	mu     sync.Mutex
	frames []*Frame
	table  map[core.PageID]*Frame
	hand   int

	// dirty and stats are atomics so DirtyFraction/Stats never lock; the
	// mutating paths already hold mu when they update them.
	dirty atomic.Int64
	stats statsCell

	// Pad shards apart so two shards' mutexes and counters never share a
	// cache line (the shards live contiguously in Pool.shards).
	_ [64]byte
}

// Pool is the buffer pool. All methods are safe for concurrent use.
type Pool struct {
	cfg   Config
	store Store

	shards     []poolShard
	shardShift uint // 64 - log2(len(shards)); fibonacci-hash routing
	nframes    int  // total frames across shards (fixed at construction)

	// cleanGate admits one cleaner pass at a time; triggers arriving
	// while a pass runs are dropped (the running pass covers them).
	// cleanNext (guarded by cleanGate) rotates the shard a pass starts
	// at, so cleaning pressure spreads round-robin across shards.
	cleanGate sync.Mutex
	cleanNext int

	// verEpoch issues frame-binding epochs for the OLC version words
	// (see Frame.ver).
	verEpoch atomic.Uint64
}

// New creates a pool with cfg.Frames empty frames.
func New(cfg Config, store Store) (*Pool, error) {
	if cfg.Frames < 1 {
		return nil, fmt.Errorf("buffer: %d frames", cfg.Frames)
	}
	if cfg.PageSize < 64 {
		return nil, fmt.Errorf("buffer: page size %d", cfg.PageSize)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("buffer: %d shards", cfg.Shards)
	}
	n := cfg.shardCount()
	p := &Pool{
		cfg:        cfg,
		store:      store,
		shards:     make([]poolShard, n),
		shardShift: uint(64 - bits.TrailingZeros(uint(n))),
		nframes:    cfg.Frames,
	}
	base, rem := cfg.Frames/n, cfg.Frames%n
	for i := range p.shards {
		s := &p.shards[i]
		count := base
		if i < rem {
			count++
		}
		s.frames = make([]*Frame, count)
		s.table = make(map[core.PageID]*Frame, count)
		for j := range s.frames {
			fr := &Frame{Data: make([]byte, cfg.PageSize)}
			fr.home.Store(s)
			s.frames[j] = fr
		}
	}
	return p, nil
}

// Size returns the number of frames.
func (p *Pool) Size() int { return p.nframes }

// Shards returns the effective shard count (after normalisation).
func (p *Pool) Shards() int { return len(p.shards) }

// shardOf routes a page id to its shard (fibonacci hashing; shift 64 for
// a single shard maps everything to shard 0).
func (p *Pool) shardOf(id core.PageID) *poolShard {
	return &p.shards[(uint64(id)*0x9E3779B97F4A7C15)>>p.shardShift]
}

// lockHome locks the shard currently owning fr and returns it. The
// re-check loop covers the (steal) window where a free frame migrates
// between shards while we were waiting on the old shard's mutex.
func (p *Pool) lockHome(fr *Frame) *poolShard {
	for {
		s := fr.home.Load()
		s.mu.Lock()
		if fr.home.Load() == s {
			return s
		}
		s.mu.Unlock()
	}
}

// Stats returns a snapshot of the counters. Lock-free: per-shard cells
// are atomics, so sampling never stalls pool traffic.
func (p *Pool) Stats() Stats {
	var out Stats
	for i := range p.shards {
		c := &p.shards[i].stats
		out.Hits += c.hits.Load()
		out.Misses += c.misses.Load()
		out.Evictions += c.evictions.Load()
		out.EvictionFlush += c.evictionFlush.Load()
		out.CleanerFlushes += c.cleanerFlushes.Load()
	}
	return out
}

// DirtyFraction is the fraction of frames currently dirty. Lock-free.
func (p *Pool) DirtyFraction() float64 {
	var dirty int64
	for i := range p.shards {
		dirty += p.shards[i].dirty.Load()
	}
	return float64(dirty) / float64(p.nframes)
}

// Get pins the page, fetching it from the store on a miss. The fetch
// happens outside the shard mutex; concurrent getters of the same page
// wait for the in-flight fetch instead of issuing their own.
func (p *Pool) Get(w *sim.Worker, id core.PageID) (*Frame, error) {
	s := p.shardOf(id)
	for {
		s.mu.Lock()
		if fr, ok := s.table[id]; ok {
			fr.pin++
			fr.ref = true
			s.stats.hits.Add(1)
			loading, done := fr.loading, fr.loadDone
			s.mu.Unlock()
			if loading {
				<-done
				s.mu.Lock()
				if err := fr.loadErr; err != nil {
					fr.pin--
					s.mu.Unlock()
					return nil, err
				}
				s.mu.Unlock()
			}
			return fr, nil
		}
		s.stats.misses.Add(1)
		fr, err := p.acquireVictimLocked(s, w)
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
		if _, raced := s.table[id]; raced {
			// Someone loaded the page while we were evicting: leave the
			// reclaimed frame free and retry as a hit.
			dec(&s.stats.misses)
			s.mu.Unlock()
			continue
		}
		fr.ID = id
		fr.pin = 1
		fr.ref = true
		fr.New = false
		fr.stampVersion(p.verEpoch.Add(1))
		// Flushed must read nil while the load is in flight (it marks "no
		// flushed image"), but its capacity is a full page — keep it for
		// the post-load copy instead of allocating a fresh one per miss.
		flushedBuf := fr.Flushed[:0]
		fr.Flushed = nil
		fr.UsedSlots = 0
		fr.RecLSN = 0
		fr.loading = true
		fr.loadDone = make(chan struct{})
		fr.loadErr = nil
		s.table[id] = fr
		s.mu.Unlock()

		used, err := p.store.Fetch(w, id, fr.Data)

		s.mu.Lock()
		fr.loading = false
		if err != nil {
			fr.loadErr = err
			delete(s.table, id)
			fr.pin-- // our pin; waiters drop theirs when they see loadErr
			fr.ID = core.InvalidPageID
			close(fr.loadDone)
			s.mu.Unlock()
			return nil, err
		}
		fr.UsedSlots = used
		fr.Flushed = append(flushedBuf, fr.Data...)
		close(fr.loadDone)
		s.mu.Unlock()
		return fr, nil
	}
}

// GetNew pins a frame for a freshly allocated page that has no physical
// copy yet. The caller formats fr.Data; the first flush will be an
// out-of-place write.
func (p *Pool) GetNew(w *sim.Worker, id core.PageID) (*Frame, error) {
	s := p.shardOf(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if fr, ok := s.table[id]; ok {
		fr.pin++
		fr.ref = true
		return fr, nil
	}
	fr, err := p.acquireVictimLocked(s, w)
	if err != nil {
		return nil, err
	}
	if exist, raced := s.table[id]; raced {
		// acquireVictimLocked may drop s.mu (dirty-victim flush, cross-
		// shard steal); someone may have installed the page meanwhile.
		// Return that frame and leave the reclaimed one free, instead of
		// overwriting the table entry and orphaning it.
		exist.pin++
		exist.ref = true
		return exist, nil
	}
	fr.ID = id
	fr.pin = 1
	fr.ref = true
	fr.New = true
	fr.stampVersion(p.verEpoch.Add(1))
	fr.Dirty = false
	fr.Flushed = nil
	fr.UsedSlots = 0
	fr.RecLSN = 0
	clear(fr.Data)
	s.table[id] = fr
	return fr, nil
}

// Unpin releases one pin. If dirty, recLSN records the earliest LSN that
// modified the page since it was last clean (ARIES recLSN). When the
// dirty fraction exceeds the threshold the cleaner flushes a batch.
func (p *Pool) Unpin(w *sim.Worker, fr *Frame, dirty bool, recLSN core.LSN) error {
	s := fr.home.Load() // stable: the caller holds a pin
	s.mu.Lock()
	if fr.pin <= 0 {
		s.mu.Unlock()
		return fmt.Errorf("buffer: unpin of unpinned page %d", fr.ID)
	}
	fr.pin--
	if dirty {
		if !fr.Dirty {
			fr.Dirty = true
			fr.RecLSN = recLSN
			s.dirty.Add(1)
		}
	}
	s.mu.Unlock()
	if p.DirtyFraction() > p.cfg.dirtyThreshold() {
		if p.cfg.CleanNotify != nil {
			p.cfg.CleanNotify()
			return nil
		}
		return p.CleanerPass(w)
	}
	return nil
}

// claimLocked marks a dirty, unpinned frame clean and flush-pins it so
// the caller can flush it outside the shard mutex. A writer that
// re-dirties the frame during the flush simply marks it dirty again —
// nothing is lost, the frame is flushed once more later.
func (s *poolShard) claimLocked(fr *Frame) {
	fr.Dirty = false
	fr.RecLSN = 0
	s.dirty.Add(-1)
	fr.pin++
}

// flushClaimed flushes a frame claimed by claimLocked, without any shard
// mutex held, taking the content latch for the duration of the store
// I/O. On error the dirty state is restored.
func (p *Pool) flushClaimed(w *sim.Worker, fr *Frame, recLSN core.LSN) error {
	fr.latch.Lock()
	err := p.store.Flush(w, fr)
	fr.latch.Unlock()
	s := fr.home.Load() // stable: the flush pin prevents stealing
	s.mu.Lock()
	fr.pin--
	if err != nil && !fr.Dirty {
		fr.Dirty = true
		fr.RecLSN = recLSN
		s.dirty.Add(1)
	}
	s.mu.Unlock()
	return err
}

// CleanerPass flushes up to one batch of dirty unpinned frames, charged
// to the configured cleaner worker (or w if none). Only one pass runs at
// a time; triggers arriving during a pass return immediately. Shards are
// walked round-robin (the start shard rotates between passes) with a
// per-shard claim quota, so one hot shard cannot monopolise the batch.
func (p *Pool) CleanerPass(w *sim.Worker) error {
	if !p.cleanGate.TryLock() {
		return nil
	}
	defer p.cleanGate.Unlock()
	cw := p.cfg.Cleaner
	if cw == nil {
		cw = w
	} else if w != nil {
		cw.SetNow(w.Now()) // the cleaner acts concurrently with the trigger
	}
	type claimed struct {
		fr     *Frame
		recLSN core.LSN
	}
	var batch []claimed
	nshards := len(p.shards)
	budget := p.cfg.cleanBatch()
	perShard := budget / nshards
	if perShard < 1 {
		perShard = 1
	}
	start := p.cleanNext % nshards
	p.cleanNext++
	for k := 0; k < nshards && budget > 0; k++ {
		s := &p.shards[(start+k)%nshards]
		quota := perShard
		if quota > budget {
			quota = budget
		}
		s.mu.Lock()
		n := len(s.frames)
		for i := 0; i < n && quota > 0; i++ {
			fr := s.frames[(s.hand+i)%n]
			if !fr.Dirty || fr.pin > 0 || fr.loading {
				continue
			}
			batch = append(batch, claimed{fr, fr.RecLSN})
			s.claimLocked(fr)
			quota--
			budget--
		}
		s.mu.Unlock()
	}
	for _, c := range batch {
		if err := p.flushClaimed(cw, c.fr, c.recLSN); err != nil {
			return err
		}
		c.fr.home.Load().stats.cleanerFlushes.Add(1)
	}
	return nil
}

// acquireVictimLocked returns a free frame for shard s, called and
// returning with s.mu held (it may drop the mutex while flushing or
// stealing). When the local CLOCK exhausts — every frame pinned or
// loading — it steals an unpinned frame from another shard before
// surfacing ErrNoFrames, so a working set skewed onto one shard cannot
// fail while the rest of the pool sits idle.
func (p *Pool) acquireVictimLocked(s *poolShard, w *sim.Worker) (*Frame, error) {
	fr, err := p.victimLocked(s, w)
	if err == nil || !errors.Is(err, ErrNoFrames) || len(p.shards) == 1 {
		return fr, err
	}
	s.mu.Unlock()
	stolen := p.stealFrame(s)
	s.mu.Lock()
	if stolen != nil {
		s.frames = append(s.frames, stolen)
		return stolen, nil
	}
	// Nothing stealable anywhere; one last local attempt — frames may
	// have been unpinned while we searched the other shards.
	return p.victimLocked(s, w)
}

// stealFrame takes a clean, unpinned frame from some other shard,
// evicting its page if it holds one, and re-homes it to the requester.
// Shards with a single frame left are skipped so no shard ever empties.
// At most one shard mutex is held at a time (never the requester's),
// keeping the pool deadlock-free by construction.
func (p *Pool) stealFrame(to *poolShard) *Frame {
	for i := range p.shards {
		s := &p.shards[i]
		if s == to {
			continue
		}
		s.mu.Lock()
		if len(s.frames) <= 1 {
			s.mu.Unlock()
			continue
		}
		for j, fr := range s.frames {
			if fr.pin > 0 || fr.loading || fr.Dirty {
				continue
			}
			if fr.ID != core.InvalidPageID {
				delete(s.table, fr.ID)
				s.stats.evictions.Add(1)
				fr.ID = core.InvalidPageID
			}
			fr.New = false
			fr.Flushed = nil
			fr.ref = false
			// Re-home before the frame leaves this shard's critical
			// section so lockHome observers retry against the new owner.
			fr.home.Store(to)
			s.removeFrameLocked(j)
			s.mu.Unlock()
			return fr
		}
		s.mu.Unlock()
	}
	return nil
}

// removeFrameLocked removes s.frames[i] preserving CLOCK order, fixing
// the hand so the sweep continues from the same logical position.
func (s *poolShard) removeFrameLocked(i int) {
	copy(s.frames[i:], s.frames[i+1:])
	s.frames[len(s.frames)-1] = nil
	s.frames = s.frames[:len(s.frames)-1]
	if s.hand > i {
		s.hand--
	}
	if s.hand >= len(s.frames) {
		s.hand = 0
	}
}

// victimLocked returns a free, unpinned frame not present in the shard's
// page table, evicting (and flushing) as needed using the CLOCK policy.
// It is called with s.mu held and returns with s.mu held, but may
// release the mutex while flushing a dirty victim (during which the
// shard's frame slice can grow or shrink via stealing — the loop
// re-reads its bounds).
func (p *Pool) victimLocked(s *poolShard, w *sim.Worker) (*Frame, error) {
	n := len(s.frames)
	for round := 0; round < 4*n+2; round++ {
		if n != len(s.frames) {
			n = len(s.frames)
			if n == 0 {
				break
			}
		}
		if s.hand >= n {
			s.hand = 0
		}
		fr := s.frames[s.hand]
		s.hand = (s.hand + 1) % n
		if fr.pin > 0 || fr.loading {
			continue
		}
		if fr.ref {
			fr.ref = false
			continue
		}
		if fr.ID == core.InvalidPageID {
			return fr, nil
		}
		if !fr.Dirty {
			delete(s.table, fr.ID)
			s.stats.evictions.Add(1)
			fr.ID = core.InvalidPageID
			return fr, nil
		}
		// Dirty victim: flush it outside the shard mutex, then re-check —
		// another goroutine may have pinned it meanwhile, in which case
		// the CLOCK hand keeps searching. Unlike the cleaner/checkpoint
		// paths (flushClaimed), the claim pin is dropped here, under
		// s.mu, *after* the re-lock: holding it across the unlocked
		// window keeps the frame anchored to this shard — stealFrame
		// skips pinned frames and home never changes while pinned — so
		// the frame cannot end up owned by two shards at once and the
		// re-check below reads state guarded by the right mutex.
		recLSN := fr.RecLSN
		s.claimLocked(fr)
		s.mu.Unlock()
		fr.latch.Lock()
		err := p.store.Flush(w, fr)
		fr.latch.Unlock()
		s.mu.Lock()
		fr.pin--
		if err != nil {
			if !fr.Dirty {
				fr.Dirty = true
				fr.RecLSN = recLSN
				s.dirty.Add(1)
			}
			return nil, err
		}
		s.stats.evictionFlush.Add(1)
		if fr.pin == 0 && !fr.Dirty && !fr.loading {
			delete(s.table, fr.ID)
			s.stats.evictions.Add(1)
			fr.ID = core.InvalidPageID
			return fr, nil
		}
	}
	return nil, ErrNoFrames
}

// FlushAll writes every dirty frame (checkpoint support). Pinned dirty
// frames are an error. Within each shard the scan resumes from the frame
// after the last flush instead of restarting at index 0, wrapping until
// a full sweep finds nothing dirty — O(frames + flushes) per quiescent
// checkpoint instead of the historical O(frames²).
func (p *Pool) FlushAll(w *sim.Worker) error {
	for i := range p.shards {
		if err := p.flushAllShard(&p.shards[i], w); err != nil {
			return err
		}
	}
	return nil
}

func (p *Pool) flushAllShard(s *poolShard, w *sim.Worker) error {
	pos := 0
	for {
		var fr *Frame
		var recLSN core.LSN
		s.mu.Lock()
		n := len(s.frames)
		if n == 0 {
			s.mu.Unlock()
			return nil
		}
		if pos >= n {
			pos = 0
		}
		for scanned := 0; scanned < n; scanned++ {
			f := s.frames[(pos+scanned)%n]
			if !f.Dirty {
				continue
			}
			if f.pin > 0 {
				s.mu.Unlock()
				return fmt.Errorf("%w: page %d", ErrPinned, f.ID)
			}
			fr, recLSN = f, f.RecLSN
			pos = (pos + scanned + 1) % n // resume after the claimed frame
			break
		}
		if fr == nil {
			s.mu.Unlock()
			return nil
		}
		s.claimLocked(fr)
		s.mu.Unlock()
		if err := p.flushClaimed(w, fr, recLSN); err != nil {
			return err
		}
	}
}

// FlushOldest flushes up to n dirty unpinned frames with the smallest
// RecLSN — the pages holding back log truncation. Candidates are
// collected in one sweep across all shards and merge-sorted, rather than
// rescanning the whole pool under a lock for every flush; each is
// revalidated at claim time since the pool moves on while flushes run.
func (p *Pool) FlushOldest(w *sim.Worker, n int) (int, error) {
	type cand struct {
		fr     *Frame
		recLSN core.LSN
	}
	var total int64
	for i := range p.shards {
		total += p.shards[i].dirty.Load()
	}
	if total < 0 {
		total = 0
	}
	cands := make([]cand, 0, total)
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		for _, fr := range s.frames {
			if fr.Dirty && fr.pin == 0 && !fr.loading {
				cands = append(cands, cand{fr, fr.RecLSN})
			}
		}
		s.mu.Unlock()
	}
	// Stable sort: ties keep shard-then-frame order, matching the old
	// repeated-scan selection exactly in the single-shard case.
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].recLSN < cands[j].recLSN })
	flushed := 0
	for _, c := range cands {
		if flushed >= n {
			break
		}
		fr := c.fr
		s := p.lockHome(fr)
		if !fr.Dirty || fr.pin > 0 || fr.loading {
			s.mu.Unlock()
			continue // flushed, reloaded, pinned or stolen since the snapshot
		}
		recLSN := fr.RecLSN
		s.claimLocked(fr)
		s.mu.Unlock()
		if err := p.flushClaimed(w, fr, recLSN); err != nil {
			return flushed, err
		}
		flushed++
	}
	return flushed, nil
}

// DirtyPages snapshots the dirty-page table (page → recLSN) for a fuzzy
// checkpoint, sweeping the shards one at a time.
func (p *Pool) DirtyPages() map[core.PageID]core.LSN {
	var total int64
	for i := range p.shards {
		total += p.shards[i].dirty.Load()
	}
	if total < 0 {
		total = 0
	}
	dpt := make(map[core.PageID]core.LSN, total)
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		for _, fr := range s.frames {
			if fr.Dirty {
				dpt[fr.ID] = fr.RecLSN
			}
		}
		s.mu.Unlock()
	}
	return dpt
}

// OldestRecLSN returns the smallest recLSN across dirty frames, or 0 when
// nothing is dirty — the page-side bound for log truncation. Per-shard
// minima are aggregated one shard at a time.
func (p *Pool) OldestRecLSN() core.LSN {
	var min core.LSN
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		for _, fr := range s.frames {
			if fr.Dirty && (min == 0 || fr.RecLSN < min) {
				min = fr.RecLSN
			}
		}
		s.mu.Unlock()
	}
	return min
}

// Drop removes an unpinned page from the pool without flushing (used
// when a page is deallocated). Dropping an absent page is a no-op.
func (p *Pool) Drop(id core.PageID) error {
	s := p.shardOf(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	fr, ok := s.table[id]
	if !ok {
		return nil
	}
	if fr.pin > 0 {
		return fmt.Errorf("%w: page %d", ErrPinned, id)
	}
	if fr.Dirty {
		fr.Dirty = false
		s.dirty.Add(-1)
	}
	delete(s.table, id)
	fr.ID = core.InvalidPageID
	fr.New = false
	fr.Flushed = nil
	return nil
}

// Contains reports whether the page is resident.
func (p *Pool) Contains(id core.PageID) bool {
	s := p.shardOf(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.table[id]
	return ok
}
