// Package buffer implements the database buffer pool: frames with
// pin/unpin, CLOCK replacement, dirty tracking and a page-cleaner
// emulation with Shore-MT's *eager* eviction strategy (flush when the
// dirty fraction passes a threshold, 12.5% hardcoded in Shore-MT) or the
// paper's *non-eager* alternative (Sec. 8.4, Tables 9 vs 10).
//
// The pool is where the paper's approach plugs in: every frame carries,
// next to the current logical image, the logical image as of the last
// flush. On eviction the storage manager diffs the two to decide between
// an In-Place Append (write_delta) and an out-of-place page write.
package buffer

import (
	"errors"
	"fmt"
	"sync"

	"ipa/internal/core"
	"ipa/internal/sim"
)

// Errors of the buffer pool.
var (
	ErrNoFrames = errors.New("buffer: all frames pinned")
	ErrPinned   = errors.New("buffer: page still pinned")
)

// Store is the storage manager the pool delegates page movement to.
type Store interface {
	// Fetch reads the logical image of a page into buf (applying any
	// delta-records) and returns the number of delta-record slots already
	// used on the physical page.
	Fetch(w *sim.Worker, id core.PageID, buf []byte) (usedSlots int, err error)
	// Flush persists a frame, choosing between write_delta and an
	// out-of-place write. On success it must update fr.Flushed,
	// fr.UsedSlots and clear fr.New.
	Flush(w *sim.Worker, fr *Frame) error
}

// Frame is one buffer slot.
type Frame struct {
	ID   core.PageID
	Data []byte // current logical image
	// Flushed is the logical image as of the last flush (nil for a page
	// that has never been written to storage). Diffing Data against
	// Flushed yields the exact <value,offset> pairs of the delta-record.
	Flushed []byte
	// UsedSlots is N_E in the paper: delta-records already programmed on
	// the physical page.
	UsedSlots int
	// New marks a freshly allocated page with no physical copy yet; its
	// first write is always out-of-place (IPA is not applicable to newly
	// allocated pages).
	New    bool
	Dirty  bool
	RecLSN core.LSN // LSN that first dirtied the frame (for checkpoints)

	pin int
	ref bool
}

// Config sizes the pool and its cleaning strategy.
type Config struct {
	Frames   int
	PageSize int

	// DirtyThreshold is the dirty-page fraction above which Unpin invokes
	// the cleaner, emulating Shore-MT's eager background flushing. Zero
	// selects the Shore-MT default of 12.5%. Non-eager experiments set it
	// to 0.75.
	DirtyThreshold float64
	// CleanBatch is how many pages one cleaner pass flushes. Zero selects
	// max(8, Frames/64).
	CleanBatch int
	// Cleaner is the simulated worker background flushes are charged to,
	// so cleaning occupies flash chips without blocking the transaction
	// that triggered it (steal/no-force). Nil charges the calling worker.
	Cleaner *sim.Worker
}

func (c Config) dirtyThreshold() float64 {
	if c.DirtyThreshold <= 0 {
		return 0.125
	}
	return c.DirtyThreshold
}

func (c Config) cleanBatch() int {
	if c.CleanBatch > 0 {
		return c.CleanBatch
	}
	b := c.Frames / 64
	if b < 8 {
		b = 8
	}
	return b
}

// Stats counts pool activity.
type Stats struct {
	Hits           uint64
	Misses         uint64
	Evictions      uint64
	EvictionFlush  uint64 // dirty evictions (flush on the critical path)
	CleanerFlushes uint64 // background cleaner flushes
}

// Pool is the buffer pool. All methods are safe for concurrent use.
type Pool struct {
	cfg   Config
	store Store

	mu     sync.Mutex
	frames []*Frame
	table  map[core.PageID]*Frame
	hand   int
	dirty  int
	stats  Stats
}

// New creates a pool with cfg.Frames empty frames.
func New(cfg Config, store Store) (*Pool, error) {
	if cfg.Frames < 1 {
		return nil, fmt.Errorf("buffer: %d frames", cfg.Frames)
	}
	if cfg.PageSize < 64 {
		return nil, fmt.Errorf("buffer: page size %d", cfg.PageSize)
	}
	p := &Pool{
		cfg:    cfg,
		store:  store,
		frames: make([]*Frame, cfg.Frames),
		table:  make(map[core.PageID]*Frame, cfg.Frames),
	}
	for i := range p.frames {
		p.frames[i] = &Frame{Data: make([]byte, cfg.PageSize)}
	}
	return p, nil
}

// Size returns the number of frames.
func (p *Pool) Size() int { return p.cfg.Frames }

// Stats returns a snapshot of the counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// DirtyFraction is the fraction of frames currently dirty.
func (p *Pool) DirtyFraction() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return float64(p.dirty) / float64(len(p.frames))
}

// Get pins the page, fetching it from the store on a miss.
func (p *Pool) Get(w *sim.Worker, id core.PageID) (*Frame, error) {
	p.mu.Lock()
	if fr, ok := p.table[id]; ok {
		fr.pin++
		fr.ref = true
		p.stats.Hits++
		p.mu.Unlock()
		return fr, nil
	}
	p.stats.Misses++
	fr, err := p.victimLocked(w)
	if err != nil {
		p.mu.Unlock()
		return nil, err
	}
	fr.ID = id
	fr.pin = 1
	fr.ref = true
	fr.New = false
	fr.Flushed = nil
	fr.UsedSlots = 0
	fr.RecLSN = 0
	p.table[id] = fr
	// Fetch with the pool lock held: simulated time does not require
	// goroutine overlap, and it keeps frame state transitions atomic.
	used, err := p.store.Fetch(w, id, fr.Data)
	if err != nil {
		delete(p.table, id)
		fr.pin = 0
		fr.ID = core.InvalidPageID
		p.mu.Unlock()
		return nil, err
	}
	fr.UsedSlots = used
	fr.Flushed = append(fr.Flushed[:0], fr.Data...)
	p.mu.Unlock()
	return fr, nil
}

// GetNew pins a frame for a freshly allocated page that has no physical
// copy yet. The caller formats fr.Data; the first flush will be an
// out-of-place write.
func (p *Pool) GetNew(w *sim.Worker, id core.PageID) (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if fr, ok := p.table[id]; ok {
		fr.pin++
		fr.ref = true
		return fr, nil
	}
	fr, err := p.victimLocked(w)
	if err != nil {
		return nil, err
	}
	fr.ID = id
	fr.pin = 1
	fr.ref = true
	fr.New = true
	fr.Dirty = false
	fr.Flushed = nil
	fr.UsedSlots = 0
	fr.RecLSN = 0
	for i := range fr.Data {
		fr.Data[i] = 0
	}
	p.table[id] = fr
	return fr, nil
}

// Unpin releases one pin. If dirty, recLSN records the earliest LSN that
// modified the page since it was last clean (ARIES recLSN). When the
// dirty fraction exceeds the threshold the cleaner flushes a batch.
func (p *Pool) Unpin(w *sim.Worker, fr *Frame, dirty bool, recLSN core.LSN) error {
	p.mu.Lock()
	if fr.pin <= 0 {
		p.mu.Unlock()
		return fmt.Errorf("buffer: unpin of unpinned page %d", fr.ID)
	}
	fr.pin--
	if dirty {
		if !fr.Dirty {
			fr.Dirty = true
			fr.RecLSN = recLSN
			p.dirty++
		}
	}
	needClean := float64(p.dirty)/float64(len(p.frames)) > p.cfg.dirtyThreshold()
	p.mu.Unlock()
	if needClean {
		return p.CleanerPass(w)
	}
	return nil
}

// CleanerPass flushes up to one batch of dirty unpinned frames, charged
// to the configured cleaner worker (or w if none).
func (p *Pool) CleanerPass(w *sim.Worker) error {
	cw := p.cfg.Cleaner
	if cw == nil {
		cw = w
	} else if w != nil {
		cw.SetNow(w.Now()) // the cleaner acts concurrently with the trigger
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	budget := p.cfg.cleanBatch()
	for i := 0; i < len(p.frames) && budget > 0; i++ {
		fr := p.frames[(p.hand+i)%len(p.frames)]
		if !fr.Dirty || fr.pin > 0 {
			continue
		}
		if err := p.flushLocked(cw, fr); err != nil {
			return err
		}
		p.stats.CleanerFlushes++
		budget--
	}
	return nil
}

// flushLocked persists a dirty frame and marks it clean.
func (p *Pool) flushLocked(w *sim.Worker, fr *Frame) error {
	if err := p.store.Flush(w, fr); err != nil {
		return err
	}
	fr.Dirty = false
	fr.RecLSN = 0
	p.dirty--
	return nil
}

// victimLocked returns an unpinned frame, evicting (and flushing) as
// needed, using the CLOCK policy.
func (p *Pool) victimLocked(w *sim.Worker) (*Frame, error) {
	n := len(p.frames)
	for round := 0; round < 2*n+1; round++ {
		fr := p.frames[p.hand]
		p.hand = (p.hand + 1) % n
		if fr.pin > 0 {
			continue
		}
		if fr.ref {
			fr.ref = false
			continue
		}
		if fr.ID != core.InvalidPageID {
			if fr.Dirty {
				if err := p.flushLocked(w, fr); err != nil {
					return nil, err
				}
				p.stats.EvictionFlush++
			}
			delete(p.table, fr.ID)
			p.stats.Evictions++
			fr.ID = core.InvalidPageID
		}
		return fr, nil
	}
	return nil, ErrNoFrames
}

// FlushAll writes every dirty frame (checkpoint support). Pinned dirty
// frames are an error.
func (p *Pool) FlushAll(w *sim.Worker) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, fr := range p.frames {
		if !fr.Dirty {
			continue
		}
		if fr.pin > 0 {
			return fmt.Errorf("%w: page %d", ErrPinned, fr.ID)
		}
		if err := p.flushLocked(w, fr); err != nil {
			return err
		}
	}
	return nil
}

// FlushOldest flushes up to n dirty unpinned frames with the smallest
// RecLSN — the pages holding back log truncation.
func (p *Pool) FlushOldest(w *sim.Worker, n int) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	flushed := 0
	for flushed < n {
		var best *Frame
		for _, fr := range p.frames {
			if !fr.Dirty || fr.pin > 0 {
				continue
			}
			if best == nil || fr.RecLSN < best.RecLSN {
				best = fr
			}
		}
		if best == nil {
			break
		}
		if err := p.flushLocked(w, best); err != nil {
			return flushed, err
		}
		flushed++
	}
	return flushed, nil
}

// DirtyPages snapshots the dirty-page table (page → recLSN) for a fuzzy
// checkpoint.
func (p *Pool) DirtyPages() map[core.PageID]core.LSN {
	p.mu.Lock()
	defer p.mu.Unlock()
	dpt := make(map[core.PageID]core.LSN, p.dirty)
	for _, fr := range p.frames {
		if fr.Dirty {
			dpt[fr.ID] = fr.RecLSN
		}
	}
	return dpt
}

// OldestRecLSN returns the smallest recLSN across dirty frames, or 0 when
// nothing is dirty — the page-side bound for log truncation.
func (p *Pool) OldestRecLSN() core.LSN {
	p.mu.Lock()
	defer p.mu.Unlock()
	var min core.LSN
	for _, fr := range p.frames {
		if fr.Dirty && (min == 0 || fr.RecLSN < min) {
			min = fr.RecLSN
		}
	}
	return min
}

// Drop removes an unpinned page from the pool without flushing (used
// when a page is deallocated). Dropping an absent page is a no-op.
func (p *Pool) Drop(id core.PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	fr, ok := p.table[id]
	if !ok {
		return nil
	}
	if fr.pin > 0 {
		return fmt.Errorf("%w: page %d", ErrPinned, id)
	}
	if fr.Dirty {
		fr.Dirty = false
		p.dirty--
	}
	delete(p.table, id)
	fr.ID = core.InvalidPageID
	fr.New = false
	fr.Flushed = nil
	return nil
}

// Contains reports whether the page is resident.
func (p *Pool) Contains(id core.PageID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.table[id]
	return ok
}
