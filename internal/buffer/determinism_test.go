package buffer

import (
	"fmt"
	"testing"

	"ipa/internal/core"
)

// driveDeterministicScript runs a fixed, single-threaded workload mixing
// every pool operation that can influence eviction decisions — GetNew,
// hit/miss Gets, dirty and clean unpins, cleaner passes, FlushOldest,
// Drop and FlushAll — and returns the order in which pages reached the
// store. That order is the observable consequence of the CLOCK policy:
// it decides which physical page a flush lands on and therefore the
// update-size distributions of the paper's Tables 1/9/10/11.
func driveDeterministicScript(t *testing.T, cfg Config) (*fakeStore, Stats) {
	t.Helper()
	st := newFakeStore(cfg.PageSize)
	p, err := New(cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1: allocate 24 fresh pages through the pool (forces evictions).
	for id := core.PageID(1); id <= 24; id++ {
		fr, err := p.GetNew(nil, id)
		if err != nil {
			t.Fatal(err)
		}
		fr.Data[0] = byte(id)
		if err := p.Unpin(nil, fr, true, core.LSN(id)); err != nil {
			t.Fatal(err)
		}
	}
	// Phase 2: LCG-driven mixed reads and writes over the 24 pages.
	x := uint64(0x2545F4914F6CDD1D)
	for i := 0; i < 200; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		id := core.PageID(1 + (x>>33)%24)
		fr, err := p.Get(nil, id)
		if err != nil {
			t.Fatalf("step %d page %d: %v", i, id, err)
		}
		dirty := (x>>32)&3 == 0 // 25% of accesses write
		if dirty {
			fr.Data[1]++
		}
		if err := p.Unpin(nil, fr, dirty, core.LSN(1000+i)); err != nil {
			t.Fatal(err)
		}
		switch i {
		case 50:
			if _, err := p.FlushOldest(nil, 3); err != nil {
				t.Fatal(err)
			}
		case 100:
			if err := p.CleanerPass(nil); err != nil {
				t.Fatal(err)
			}
		case 150:
			// Drop whatever clean resident pages the LCG points at.
			for _, d := range []core.PageID{5, 11, 17} {
				if err := p.Drop(d); err != nil && d != 0 {
					// Pinned is impossible here; dirty pages are dropped too
					// in the seed semantics (Drop discards without flushing).
					t.Fatal(err)
				}
			}
		}
	}
	// Phase 3: final checkpoint-style flush.
	if err := p.FlushAll(nil); err != nil {
		t.Fatal(err)
	}
	return st, p.Stats()
}

// deterministicGolden is the store-flush order the seed (pre-sharding)
// pool produces for the script above with the config in
// TestShards1EvictionOrderGolden. Captured from the unsharded pool;
// Config.Shards=1 (the default, used by all paper experiments) must
// reproduce it bit-identically.
var deterministicGolden = []core.PageID{
	1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20,
	22, 23, 24, 21, 21, 3, 5, 1, 7, 21, 3, 7, 23, 1, 3, 17, 11, 9, 13, 19,
	21, 3, 23, 1, 5, 19, 7, 15, 1, 19, 7, 23, 5, 3, 15, 19, 11, 17, 13, 23,
	9, 19, 5, 7, 15, 1, 11, 5, 19, 3,
}

// deterministicGoldenStats is the seed pool's counter snapshot for the
// same script.
var deterministicGoldenStats = Stats{
	Hits: 66, Misses: 134, Evictions: 149, EvictionFlush: 30, CleanerFlushes: 37,
}

func TestShards1EvictionOrderGolden(t *testing.T) {
	st, stats := driveDeterministicScript(t, Config{
		Frames: 8, PageSize: 64, DirtyThreshold: 0.5, CleanBatch: 4,
	})
	got := st.flushes
	if fmt.Sprint(got) != fmt.Sprint(deterministicGolden) {
		t.Errorf("Shards=1 flush order diverged from seed\n got: %v\nwant: %v", got, deterministicGolden)
	}
	if stats != deterministicGoldenStats {
		t.Errorf("Shards=1 stats diverged from seed\n got: %+v\nwant: %+v", stats, deterministicGoldenStats)
	}
}

// TestShardedScriptIntegrity runs the same script against a sharded pool.
// Eviction order is shard-local there (no golden), but the script must
// complete and — for every page not Dropped mid-script — the final store
// contents must be byte-identical to the single-shard run: the script's
// logical page trajectory does not depend on pool internals, so sharding
// may change flush scheduling but never what ends up durable.
// (Dropped pages 5/11/17 are excluded: Drop discards unflushed changes,
// so their refetched base, and hence final content, depends on cleaner
// timing in both seed and sharded pools alike.)
func TestShardedScriptIntegrity(t *testing.T) {
	single, _ := driveDeterministicScript(t, Config{
		Frames: 8, PageSize: 64, DirtyThreshold: 0.5, CleanBatch: 4,
	})
	sharded, _ := driveDeterministicScript(t, Config{
		Frames: 8, PageSize: 64, DirtyThreshold: 0.5, CleanBatch: 4, Shards: 4,
	})
	dropped := map[core.PageID]bool{5: true, 11: true, 17: true}
	for id := core.PageID(1); id <= 24; id++ {
		if dropped[id] {
			continue
		}
		s, ok1 := single.pages[id]
		g, ok2 := sharded.pages[id]
		if !ok1 || !ok2 {
			t.Fatalf("page %d missing from store (single=%v sharded=%v)", id, ok1, ok2)
		}
		if string(s) != string(g) {
			t.Errorf("page %d final content differs between single-shard and sharded pool", id)
		}
	}
}
