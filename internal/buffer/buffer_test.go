package buffer

import (
	"errors"
	"fmt"
	"testing"

	"ipa/internal/core"
	"ipa/internal/sim"
)

// fakeStore is an in-memory page store recording flush order.
type fakeStore struct {
	pages    map[core.PageID][]byte
	flushes  []core.PageID
	fetchErr error
	flushErr error
	pageSize int
}

func newFakeStore(pageSize int) *fakeStore {
	return &fakeStore{pages: make(map[core.PageID][]byte), pageSize: pageSize}
}

func (s *fakeStore) Fetch(w *sim.Worker, id core.PageID, buf []byte) (int, error) {
	if s.fetchErr != nil {
		return 0, s.fetchErr
	}
	img, ok := s.pages[id]
	if !ok {
		return 0, fmt.Errorf("fake: page %d missing", id)
	}
	copy(buf, img)
	return 0, nil
}

func (s *fakeStore) Flush(w *sim.Worker, fr *Frame) error {
	if s.flushErr != nil {
		return s.flushErr
	}
	s.pages[fr.ID] = append([]byte(nil), fr.Data...)
	s.flushes = append(s.flushes, fr.ID)
	fr.Flushed = append(fr.Flushed[:0], fr.Data...)
	fr.New = false
	return nil
}

func newPool(t *testing.T, frames int, store Store) *Pool {
	t.Helper()
	p, err := New(Config{Frames: frames, PageSize: 64, DirtyThreshold: 2.0}, store)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Frames: 0, PageSize: 64}, nil); err == nil {
		t.Error("zero frames accepted")
	}
	if _, err := New(Config{Frames: 1, PageSize: 8}, nil); err == nil {
		t.Error("tiny pages accepted")
	}
}

func TestGetNewAndGetRoundTrip(t *testing.T) {
	st := newFakeStore(64)
	p := newPool(t, 4, st)
	fr, err := p.GetNew(nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !fr.New {
		t.Error("GetNew frame not marked New")
	}
	fr.Data[0] = 0xAA
	if err := p.Unpin(nil, fr, true, 10); err != nil {
		t.Fatal(err)
	}
	if err := p.FlushAll(nil); err != nil {
		t.Fatal(err)
	}
	if fr.Dirty {
		t.Error("frame dirty after FlushAll")
	}
	// Re-get from pool (hit).
	fr2, err := p.Get(nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	if fr2 != fr || fr2.Data[0] != 0xAA {
		t.Error("hit returned wrong frame")
	}
	p.Unpin(nil, fr2, false, 0)
	if st.pages[7][0] != 0xAA {
		t.Error("flush did not reach store")
	}
	s := p.Stats()
	if s.Hits != 1 {
		t.Errorf("Hits = %d", s.Hits)
	}
}

func TestMissFetchesFromStore(t *testing.T) {
	st := newFakeStore(64)
	img := make([]byte, 64)
	img[3] = 9
	st.pages[42] = img
	p := newPool(t, 2, st)
	fr, err := p.Get(nil, 42)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Data[3] != 9 {
		t.Error("fetched data wrong")
	}
	if fr.Flushed == nil || fr.Flushed[3] != 9 {
		t.Error("Flushed snapshot not taken on fetch")
	}
	p.Unpin(nil, fr, false, 0)
	if p.Stats().Misses != 1 {
		t.Errorf("Misses = %d", p.Stats().Misses)
	}
}

func TestFetchErrorReleasesFrame(t *testing.T) {
	st := newFakeStore(64)
	p := newPool(t, 1, st)
	if _, err := p.Get(nil, 5); err == nil {
		t.Fatal("missing page fetch succeeded")
	}
	if p.Contains(5) {
		t.Error("failed fetch left page in table")
	}
	// The single frame must be reusable.
	if _, err := p.GetNew(nil, 6); err != nil {
		t.Errorf("frame not reusable after failed fetch: %v", err)
	}
}

func TestEvictionFlushesDirtyVictim(t *testing.T) {
	st := newFakeStore(64)
	p := newPool(t, 2, st)
	for id := core.PageID(1); id <= 2; id++ {
		fr, err := p.GetNew(nil, id)
		if err != nil {
			t.Fatal(err)
		}
		fr.Data[0] = byte(id)
		p.Unpin(nil, fr, true, core.LSN(id))
	}
	// Third page forces eviction of a dirty victim.
	fr, err := p.GetNew(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(nil, fr, true, 3)
	if len(st.flushes) == 0 {
		t.Fatal("no eviction flush")
	}
	if p.Stats().EvictionFlush == 0 || p.Stats().Evictions == 0 {
		t.Errorf("stats = %+v", p.Stats())
	}
	// Evicted page is re-fetchable with its data intact.
	evicted := st.flushes[0]
	fr2, err := p.Get(nil, evicted)
	if err != nil {
		t.Fatal(err)
	}
	if fr2.Data[0] != byte(evicted) {
		t.Errorf("refetched page %d data = %d", evicted, fr2.Data[0])
	}
	p.Unpin(nil, fr2, false, 0)
}

func TestAllPinnedErrors(t *testing.T) {
	st := newFakeStore(64)
	p := newPool(t, 2, st)
	f1, _ := p.GetNew(nil, 1)
	f2, _ := p.GetNew(nil, 2)
	_ = f1
	_ = f2
	if _, err := p.GetNew(nil, 3); !errors.Is(err, ErrNoFrames) {
		t.Errorf("all pinned: %v", err)
	}
}

func TestUnpinUnderflow(t *testing.T) {
	st := newFakeStore(64)
	p := newPool(t, 2, st)
	fr, _ := p.GetNew(nil, 1)
	if err := p.Unpin(nil, fr, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Unpin(nil, fr, false, 0); err == nil {
		t.Error("double unpin accepted")
	}
}

func TestRecLSNOnlyFirstDirty(t *testing.T) {
	st := newFakeStore(64)
	p := newPool(t, 2, st)
	fr, _ := p.GetNew(nil, 1)
	p.Unpin(nil, fr, true, 10)
	fr, _ = p.Get(nil, 1)
	p.Unpin(nil, fr, true, 20)
	if fr.RecLSN != 10 {
		t.Errorf("RecLSN = %d, want first-dirty 10", fr.RecLSN)
	}
	dpt := p.DirtyPages()
	if dpt[1] != 10 {
		t.Errorf("DPT = %v", dpt)
	}
	if p.OldestRecLSN() != 10 {
		t.Errorf("OldestRecLSN = %d", p.OldestRecLSN())
	}
}

func TestCleanerTriggersOnThreshold(t *testing.T) {
	st := newFakeStore(64)
	p, err := New(Config{Frames: 8, PageSize: 64, DirtyThreshold: 0.25, CleanBatch: 4}, st)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty 3 of 8 frames (37.5% > 25%) — cleaner should run on the
	// third unpin.
	for id := core.PageID(1); id <= 3; id++ {
		fr, err := p.GetNew(nil, id)
		if err != nil {
			t.Fatal(err)
		}
		fr.Data[0] = byte(id)
		if err := p.Unpin(nil, fr, true, core.LSN(id)); err != nil {
			t.Fatal(err)
		}
	}
	if p.Stats().CleanerFlushes == 0 {
		t.Error("cleaner never ran")
	}
	if p.DirtyFraction() > 0.25 {
		t.Errorf("dirty fraction %v above threshold after cleaning", p.DirtyFraction())
	}
}

func TestFlushOldest(t *testing.T) {
	st := newFakeStore(64)
	p := newPool(t, 4, st)
	for id := core.PageID(1); id <= 3; id++ {
		fr, _ := p.GetNew(nil, id)
		p.Unpin(nil, fr, true, core.LSN(100-id)) // page 3 has oldest recLSN
	}
	n, err := p.FlushOldest(nil, 1)
	if err != nil || n != 1 {
		t.Fatalf("FlushOldest = (%d, %v)", n, err)
	}
	if len(st.flushes) != 1 || st.flushes[0] != 3 {
		t.Errorf("flushed %v, want [3]", st.flushes)
	}
	// Flushing more than available stops early.
	n, _ = p.FlushOldest(nil, 10)
	if n != 2 {
		t.Errorf("second FlushOldest = %d, want 2", n)
	}
}

func TestDrop(t *testing.T) {
	st := newFakeStore(64)
	p := newPool(t, 2, st)
	fr, _ := p.GetNew(nil, 1)
	if err := p.Drop(1); !errors.Is(err, ErrPinned) {
		t.Errorf("drop pinned: %v", err)
	}
	p.Unpin(nil, fr, true, 1)
	if err := p.Drop(1); err != nil {
		t.Fatal(err)
	}
	if p.Contains(1) {
		t.Error("dropped page still resident")
	}
	if p.DirtyFraction() != 0 {
		t.Error("drop did not clear dirty count")
	}
	if err := p.Drop(99); err != nil {
		t.Errorf("drop absent: %v", err)
	}
	if len(st.flushes) != 0 {
		t.Error("drop flushed the page")
	}
}

func TestFlushAllWithPinnedDirty(t *testing.T) {
	st := newFakeStore(64)
	p := newPool(t, 2, st)
	fr, _ := p.GetNew(nil, 1)
	s := fr.home.Load()
	s.mu.Lock()
	fr.Dirty = true // simulate dirty while pinned
	s.dirty.Add(1)
	s.mu.Unlock()
	if err := p.FlushAll(nil); !errors.Is(err, ErrPinned) {
		t.Errorf("FlushAll with pinned dirty: %v", err)
	}
}

func TestChurnManyPages(t *testing.T) {
	st := newFakeStore(64)
	p := newPool(t, 8, st)
	// 64 pages through 8 frames, writing a recognisable byte each.
	for round := 0; round < 3; round++ {
		for id := core.PageID(1); id <= 64; id++ {
			var fr *Frame
			var err error
			if round == 0 {
				fr, err = p.GetNew(nil, id)
			} else {
				fr, err = p.Get(nil, id)
			}
			if err != nil {
				t.Fatalf("round %d page %d: %v", round, id, err)
			}
			if round > 0 && fr.Data[1] != byte(round-1) {
				t.Fatalf("page %d stale: %d", id, fr.Data[1])
			}
			fr.Data[0] = byte(id)
			fr.Data[1] = byte(round)
			if err := p.Unpin(nil, fr, true, core.LSN(round*64+int(id))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := p.FlushAll(nil); err != nil {
		t.Fatal(err)
	}
	for id := core.PageID(1); id <= 64; id++ {
		if st.pages[id][0] != byte(id) || st.pages[id][1] != 2 {
			t.Fatalf("page %d final state wrong", id)
		}
	}
}

// CleanNotify must replace the inline cleaner: crossing the dirty
// threshold fires the notification and flushes nothing; an explicit
// CleanerPass (what the notified owner runs) then does the flushing.
func TestCleanNotifyReplacesInlineCleaner(t *testing.T) {
	st := newFakeStore(64)
	notified := 0
	p, err := New(Config{
		Frames: 8, PageSize: 64, DirtyThreshold: 0.25, CleanBatch: 4,
		CleanNotify: func() { notified++ },
	}, st)
	if err != nil {
		t.Fatal(err)
	}
	for id := core.PageID(1); id <= 3; id++ {
		fr, err := p.GetNew(nil, id)
		if err != nil {
			t.Fatal(err)
		}
		fr.Data[0] = byte(id)
		if err := p.Unpin(nil, fr, true, core.LSN(id)); err != nil {
			t.Fatal(err)
		}
	}
	if notified == 0 {
		t.Fatal("dirty threshold crossed without a notification")
	}
	if got := p.Stats().CleanerFlushes; got != 0 {
		t.Fatalf("Unpin flushed %d pages inline despite CleanNotify", got)
	}
	if len(st.flushes) != 0 {
		t.Fatalf("store saw %d flushes before CleanerPass", len(st.flushes))
	}
	if err := p.CleanerPass(nil); err != nil {
		t.Fatal(err)
	}
	if p.Stats().CleanerFlushes == 0 || len(st.flushes) == 0 {
		t.Error("explicit CleanerPass flushed nothing")
	}
	if p.DirtyFraction() > 0.25 {
		t.Errorf("dirty fraction %v above threshold after CleanerPass", p.DirtyFraction())
	}
}
