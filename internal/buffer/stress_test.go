package buffer

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"ipa/internal/core"
	"ipa/internal/sim"
)

// concurrentStore is a goroutine-safe in-memory page store for the
// concurrency stress tests (fakeStore is deliberately unsynchronised so
// the deterministic single-threaded tests stay simple).
type concurrentStore struct {
	mu    sync.Mutex
	pages map[core.PageID][]byte
}

func newConcurrentStore(pageSize int) *concurrentStore {
	return &concurrentStore{pages: make(map[core.PageID][]byte)}
}

func (s *concurrentStore) Fetch(w *sim.Worker, id core.PageID, buf []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	img, ok := s.pages[id]
	if !ok {
		return 0, fmt.Errorf("concurrentStore: page %d missing", id)
	}
	copy(buf, img)
	return 0, nil
}

func (s *concurrentStore) Flush(w *sim.Worker, fr *Frame) error {
	s.mu.Lock()
	s.pages[fr.ID] = append([]byte(nil), fr.Data...)
	s.mu.Unlock()
	fr.Flushed = append(fr.Flushed[:0], fr.Data...)
	fr.New = false
	return nil
}

// TestConcurrentShardStress hammers one pool from every public entry
// point at once — writer Gets with dirty Unpins, hot same-page reader
// Gets, Drops racing miss-loads, CleanerPass and FlushOldest — across
// shards under the race detector, then proves no update was lost: after
// a final FlushAll every writer-owned page must carry exactly the number
// of increments its owner applied.
func TestConcurrentShardStress(t *testing.T) {
	const (
		writerCount  = 8
		pagesPer     = 32
		writerPages  = writerCount * pagesPer // pages 1..256, one owner each
		hotLo, hotHi = 257, 264               // shared read-mostly contention set
		dropLo       = 265
		dropHi       = 288 // read/drop set: miss-load vs Drop races
		iters        = 400
	)
	st := newConcurrentStore(64)
	for id := core.PageID(1); id <= dropHi; id++ {
		img := make([]byte, 64)
		img[0] = byte(id)
		st.pages[id] = img
	}
	p, err := New(Config{
		Frames: 96, PageSize: 64, Shards: 8,
		DirtyThreshold: 0.5, CleanBatch: 8,
	}, st)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards() != 8 {
		t.Fatalf("Shards() = %d, want 8", p.Shards())
	}

	var recLSN atomic.Uint64
	writes := make([]int, dropHi+1) // per-page increment counts (owner-only writes)
	var wg sync.WaitGroup
	fail := make(chan error, writerCount+8)

	// Writers: disjoint page ranges, so content assertions are exact.
	for g := 0; g < writerCount; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)*2654435761 + 1))
			local := make([]int, pagesPer)
			for i := 0; i < iters; i++ {
				id := core.PageID(g*pagesPer + 1 + rng.Intn(pagesPer))
				fr, err := p.Get(nil, id)
				if err != nil {
					fail <- fmt.Errorf("writer %d get %d: %w", g, id, err)
					return
				}
				fr.Latch()
				fr.Data[1]++
				fr.Unlatch()
				local[int(id)-g*pagesPer-1]++
				if err := p.Unpin(nil, fr, true, core.LSN(recLSN.Add(1))); err != nil {
					fail <- err
					return
				}
				// Occasional cross-shard read of the hot set.
				if i%7 == 0 {
					hid := core.PageID(hotLo + rng.Intn(hotHi-hotLo+1))
					hfr, err := p.Get(nil, hid)
					if err != nil {
						fail <- fmt.Errorf("writer %d hot get %d: %w", g, hid, err)
						return
					}
					hfr.RLatch()
					_ = hfr.Data[0]
					hfr.RUnlatch()
					if err := p.Unpin(nil, hfr, false, 0); err != nil {
						fail <- err
						return
					}
				}
			}
			for i, n := range local {
				writes[g*pagesPer+1+i] = n // disjoint slots, no lock needed
			}
		}(g)
	}

	// Readers of the droppable set: every Get may race a Drop (miss-load
	// protocol) — both outcomes are legal, errors are not.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)*7919 + 5))
			for i := 0; i < iters; i++ {
				id := core.PageID(dropLo + rng.Intn(dropHi-dropLo+1))
				fr, err := p.Get(nil, id)
				if err != nil {
					fail <- fmt.Errorf("reader %d get %d: %w", r, id, err)
					return
				}
				fr.RLatch()
				_ = fr.Data[0]
				fr.RUnlatch()
				if err := p.Unpin(nil, fr, false, 0); err != nil {
					fail <- err
					return
				}
			}
		}(r)
	}

	// Dropper: racing Drop against the readers' loads. ErrPinned is the
	// expected contention outcome, anything else is a bug.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < iters; i++ {
			id := core.PageID(dropLo + rng.Intn(dropHi-dropLo+1))
			if err := p.Drop(id); err != nil && !errors.Is(err, ErrPinned) {
				fail <- fmt.Errorf("drop %d: %w", id, err)
				return
			}
			if i%16 == 0 {
				runtime.Gosched()
			}
		}
	}()

	// Maintenance: cleaner passes and oldest-first flushes, concurrently.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/2; i++ {
			if err := p.CleanerPass(nil); err != nil {
				fail <- fmt.Errorf("cleaner: %w", err)
				return
			}
			runtime.Gosched()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/2; i++ {
			if _, err := p.FlushOldest(nil, 4); err != nil {
				fail <- fmt.Errorf("flush oldest: %w", err)
				return
			}
			runtime.Gosched()
		}
	}()

	wg.Wait()
	close(fail)
	for err := range fail {
		t.Fatal(err)
	}

	// Quiesced: flush everything and audit durability. Writer pages were
	// never dropped, and every dirty eviction flushed first, so the store
	// must hold exactly the owner's increment count.
	if err := p.FlushAll(nil); err != nil {
		t.Fatal(err)
	}
	if df := p.DirtyFraction(); df != 0 {
		t.Errorf("DirtyFraction = %v after FlushAll", df)
	}
	for id := core.PageID(1); id <= writerPages; id++ {
		img := st.pages[id]
		if img == nil {
			// Never flushed: only possible if never written, i.e. zero
			// increments — then the preloaded image is still authoritative.
			if writes[id] != 0 {
				t.Errorf("page %d: %d writes but never flushed", id, writes[id])
			}
			continue
		}
		if got, want := img[1], byte(writes[id]); got != want {
			t.Errorf("page %d: store has %d increments, owner made %d", id, got, want)
		}
	}
	s := p.Stats()
	if s.Hits == 0 || s.Misses == 0 {
		t.Errorf("implausible stats after stress: %+v", s)
	}
}
