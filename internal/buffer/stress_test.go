package buffer

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"ipa/internal/core"
	"ipa/internal/sim"
)

// concurrentStore is a goroutine-safe in-memory page store for the
// concurrency stress tests (fakeStore is deliberately unsynchronised so
// the deterministic single-threaded tests stay simple).
type concurrentStore struct {
	mu    sync.Mutex
	pages map[core.PageID][]byte
}

func newConcurrentStore(pageSize int) *concurrentStore {
	return &concurrentStore{pages: make(map[core.PageID][]byte)}
}

func (s *concurrentStore) Fetch(w *sim.Worker, id core.PageID, buf []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	img, ok := s.pages[id]
	if !ok {
		return 0, fmt.Errorf("concurrentStore: page %d missing", id)
	}
	copy(buf, img)
	return 0, nil
}

func (s *concurrentStore) Flush(w *sim.Worker, fr *Frame) error {
	s.mu.Lock()
	s.pages[fr.ID] = append([]byte(nil), fr.Data...)
	s.mu.Unlock()
	fr.Flushed = append(fr.Flushed[:0], fr.Data...)
	fr.New = false
	return nil
}

// TestConcurrentShardStress hammers one pool from every public entry
// point at once — writer Gets with dirty Unpins, hot same-page reader
// Gets, Drops racing miss-loads, CleanerPass and FlushOldest — across
// shards under the race detector, then proves no update was lost: after
// a final FlushAll every writer-owned page must carry exactly the number
// of increments its owner applied.
func TestConcurrentShardStress(t *testing.T) {
	const (
		writerCount  = 8
		pagesPer     = 32
		writerPages  = writerCount * pagesPer // pages 1..256, one owner each
		hotLo, hotHi = 257, 264               // shared read-mostly contention set
		dropLo       = 265
		dropHi       = 288 // read/drop set: miss-load vs Drop races
		iters        = 400
	)
	st := newConcurrentStore(64)
	for id := core.PageID(1); id <= dropHi; id++ {
		img := make([]byte, 64)
		img[0] = byte(id)
		st.pages[id] = img
	}
	p, err := New(Config{
		Frames: 96, PageSize: 64, Shards: 8,
		DirtyThreshold: 0.5, CleanBatch: 8,
	}, st)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards() != 8 {
		t.Fatalf("Shards() = %d, want 8", p.Shards())
	}

	var recLSN atomic.Uint64
	writes := make([]int, dropHi+1) // per-page increment counts (owner-only writes)
	var wg sync.WaitGroup
	fail := make(chan error, writerCount+8)

	// Writers: disjoint page ranges, so content assertions are exact.
	for g := 0; g < writerCount; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)*2654435761 + 1))
			local := make([]int, pagesPer)
			for i := 0; i < iters; i++ {
				id := core.PageID(g*pagesPer + 1 + rng.Intn(pagesPer))
				fr, err := p.Get(nil, id)
				if err != nil {
					fail <- fmt.Errorf("writer %d get %d: %w", g, id, err)
					return
				}
				fr.Latch()
				fr.Data[1]++
				fr.Unlatch()
				local[int(id)-g*pagesPer-1]++
				if err := p.Unpin(nil, fr, true, core.LSN(recLSN.Add(1))); err != nil {
					fail <- err
					return
				}
				// Occasional cross-shard read of the hot set.
				if i%7 == 0 {
					hid := core.PageID(hotLo + rng.Intn(hotHi-hotLo+1))
					hfr, err := p.Get(nil, hid)
					if err != nil {
						fail <- fmt.Errorf("writer %d hot get %d: %w", g, hid, err)
						return
					}
					hfr.RLatch()
					_ = hfr.Data[0]
					hfr.RUnlatch()
					if err := p.Unpin(nil, hfr, false, 0); err != nil {
						fail <- err
						return
					}
				}
			}
			for i, n := range local {
				writes[g*pagesPer+1+i] = n // disjoint slots, no lock needed
			}
		}(g)
	}

	// Readers of the droppable set: every Get may race a Drop (miss-load
	// protocol) — both outcomes are legal, errors are not.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)*7919 + 5))
			for i := 0; i < iters; i++ {
				id := core.PageID(dropLo + rng.Intn(dropHi-dropLo+1))
				fr, err := p.Get(nil, id)
				if err != nil {
					fail <- fmt.Errorf("reader %d get %d: %w", r, id, err)
					return
				}
				fr.RLatch()
				_ = fr.Data[0]
				fr.RUnlatch()
				if err := p.Unpin(nil, fr, false, 0); err != nil {
					fail <- err
					return
				}
			}
		}(r)
	}

	// Dropper: racing Drop against the readers' loads. ErrPinned is the
	// expected contention outcome, anything else is a bug.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < iters; i++ {
			id := core.PageID(dropLo + rng.Intn(dropHi-dropLo+1))
			if err := p.Drop(id); err != nil && !errors.Is(err, ErrPinned) {
				fail <- fmt.Errorf("drop %d: %w", id, err)
				return
			}
			if i%16 == 0 {
				runtime.Gosched()
			}
		}
	}()

	// Maintenance: cleaner passes and oldest-first flushes, concurrently.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/2; i++ {
			if err := p.CleanerPass(nil); err != nil {
				fail <- fmt.Errorf("cleaner: %w", err)
				return
			}
			runtime.Gosched()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/2; i++ {
			if _, err := p.FlushOldest(nil, 4); err != nil {
				fail <- fmt.Errorf("flush oldest: %w", err)
				return
			}
			runtime.Gosched()
		}
	}()

	wg.Wait()
	close(fail)
	for err := range fail {
		t.Fatal(err)
	}

	// Quiesced: flush everything and audit durability. Writer pages were
	// never dropped, and every dirty eviction flushed first, so the store
	// must hold exactly the owner's increment count.
	if err := p.FlushAll(nil); err != nil {
		t.Fatal(err)
	}
	if df := p.DirtyFraction(); df != 0 {
		t.Errorf("DirtyFraction = %v after FlushAll", df)
	}
	for id := core.PageID(1); id <= writerPages; id++ {
		img := st.pages[id]
		if img == nil {
			// Never flushed: only possible if never written, i.e. zero
			// increments — then the preloaded image is still authoritative.
			if writes[id] != 0 {
				t.Errorf("page %d: %d writes but never flushed", id, writes[id])
			}
			continue
		}
		if got, want := img[1], byte(writes[id]); got != want {
			t.Errorf("page %d: store has %d increments, owner made %d", id, got, want)
		}
	}
	s := p.Stats()
	if s.Hits == 0 || s.Misses == 0 {
		t.Errorf("implausible stats after stress: %+v", s)
	}
}

// TestStealDirtyEvictionStress targets the cross-shard steal path
// racing dirty-victim eviction. A thief goroutine over-pins one shard —
// more distinct pages than the shard has frames — so its victim search
// exhausts locally and falls through to stealFrame against the other
// shard, exactly while a writer churns that shard with dirty evictions.
// This is the window where the eviction path used to drop its claim pin
// (in flushClaimed) before re-locking the shard, letting the thief
// re-home the frame so two shards served it at once. The pin is now
// held across the re-lock, closing the window; this test keeps both
// paths colliding under -race and audits for the symptoms (lost
// updates, a frame homed in two shards, shard/frame-count drift).
func TestStealDirtyEvictionStress(t *testing.T) {
	const iters = 2000
	st := newConcurrentStore(64)
	p, err := New(Config{
		Frames: 4, PageSize: 64, Shards: 2, DirtyThreshold: 1.0,
	}, st)
	if err != nil {
		t.Fatal(err)
	}
	// White-box routing: split page ids by shard so the writer and the
	// thief each target one shard deliberately.
	var byShard [2][]core.PageID
	for id := core.PageID(1); id <= 512; id++ {
		sh := p.shardOf(id)
		i := 0
		if sh == &p.shards[1] {
			i = 1
		}
		if len(byShard[i]) < 8 {
			byShard[i] = append(byShard[i], id)
			img := make([]byte, 64)
			st.mu.Lock()
			st.pages[id] = img
			st.mu.Unlock()
		}
	}
	victims, thiefs := byShard[0], byShard[1]
	writes := make(map[core.PageID]int, len(victims))
	var wg sync.WaitGroup
	fail := make(chan error, 2)
	var stop atomic.Bool

	// Writer: dirty churn over shard 0 — more pages than the whole pool,
	// so every Get evicts, and with the inline cleaner disabled every
	// eviction is a dirty-victim flush (the vulnerable window). Runs
	// until the thief has exhausted its steal-attempt budget.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(42))
		for i := 0; !stop.Load(); i++ {
			id := victims[rng.Intn(len(victims))]
			fr, err := p.Get(nil, id)
			if err != nil {
				if errors.Is(err, ErrNoFrames) {
					continue // thief holds everything; legal
				}
				fail <- fmt.Errorf("writer get %d: %w", id, err)
				return
			}
			fr.Latch()
			fr.Data[1]++
			fr.Unlatch()
			writes[id]++
			if err := p.Unpin(nil, fr, true, core.LSN(i+1)); err != nil {
				fail <- err
				return
			}
		}
	}()

	// Thief: pin more distinct shard-1 pages than shard 1 owns frames.
	// The over-capacity Gets exhaust the local CLOCK and spin in
	// stealFrame against shard 0, grabbing clean unpinned frames there —
	// including, pre-fix, frames mid dirty-eviction.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for i := 0; i < iters; i++ {
			held := make([]*Frame, 0, len(thiefs))
			for _, id := range thiefs[:5] {
				fr, err := p.Get(nil, id)
				if err != nil {
					if errors.Is(err, ErrNoFrames) {
						break // pool exhausted; release and retry
					}
					fail <- fmt.Errorf("thief get %d: %w", id, err)
					return
				}
				held = append(held, fr)
			}
			for _, fr := range held {
				if err := p.Unpin(nil, fr, false, 0); err != nil {
					fail <- err
					return
				}
			}
		}
	}()

	wg.Wait()
	close(fail)
	for err := range fail {
		t.Fatal(err)
	}
	if err := p.FlushAll(nil); err != nil {
		t.Fatal(err)
	}
	for id, want := range writes {
		st.mu.Lock()
		got := st.pages[id][1]
		st.mu.Unlock()
		if got != byte(want) {
			t.Errorf("page %d: store has %d increments, writer made %d", id, got, want)
		}
	}
	// Every frame must be owned by exactly one shard, and agree on home.
	seen := make(map[*Frame]int)
	total := 0
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		for _, fr := range s.frames {
			seen[fr]++
			if fr.home.Load() != s {
				t.Errorf("shard %d holds frame whose home is another shard", i)
			}
		}
		total += len(s.frames)
		s.mu.Unlock()
	}
	if total != p.Size() {
		t.Errorf("frames across shards = %d, want %d", total, p.Size())
	}
	for fr, n := range seen {
		if n != 1 {
			t.Errorf("frame %p appears in %d shards", fr, n)
		}
	}
}
