// Package client is the Go client for the IPA network service: a
// multiplexed connection that pipelines requests (many in flight on one
// connection, correlated by request id), typed wrappers for every
// protocol op, per-request timeouts, bounded retry on transient
// backpressure, and a small connection pool.
//
// The synchronous methods (Begin, Update, ...) each cost a round trip.
// The Async variants return a Pending the caller resolves later, so a
// whole transaction can be written in one burst:
//
//	tx := c.NewTxID()
//	ps := []*client.Pending{
//		c.BeginAsync(tx),
//		c.UpdateFieldAsync(tx, "acct", rid, 8, delta),
//		c.CommitAsync(tx),
//	}
//	for _, p := range ps { _, err := p.Wait(); ... }
//
// The server executes a connection's requests serially in order, and a
// failed op poisons its transaction so the pipelined COMMIT aborts —
// the burst is safe even when a middle op fails.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ipa/internal/wire"
)

// Options parameterises Dial. Zero values select the noted defaults.
type Options struct {
	DialTimeout    time.Duration // default 5s
	RequestTimeout time.Duration // per-request Wait deadline (default 30s)
	MaxFrame       int           // response size limit (default wire.MaxFrame)
	MaxRetries     int           // bounded retry on transient errors (default 3)
	RetryBackoff   time.Duration // first backoff, doubled per attempt (default 5ms)
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = wire.MaxFrame
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 3
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 5 * time.Millisecond
	}
	return o
}

// ErrTimeout is returned by Wait when the response does not arrive
// within the request timeout. The connection stays usable; the late
// response is discarded when it eventually arrives.
var ErrTimeout = errors.New("client: request timed out")

// Conn is a multiplexed connection to an IPA server. All methods are
// safe for concurrent use.
type Conn struct {
	opts Options
	addr string
	conn net.Conn

	wmu   sync.Mutex // serialises writes and flushes
	bw    *bufio.Writer
	dirty bool // unflushed frames in bw

	nextID atomic.Uint64 // request ids
	nextTx atomic.Uint64 // transaction handles

	pmu     sync.Mutex
	pending map[uint64]chan wire.Frame
	readErr error // terminal receive-path error; connection is dead
	done    chan struct{}
}

// Dial connects to an IPA server, retrying transient dial failures up
// to MaxRetries times. The first frame on every connection is a HELLO
// carrying wire.ProtoVersion; a server speaking a different protocol
// revision rejects it with BAD_REQUEST, which Dial surfaces immediately
// (a version mismatch will not heal on retry).
func Dial(addr string, opts Options) (*Conn, error) {
	opts = opts.withDefaults()
	var lastErr error
	backoff := opts.RetryBackoff
	for attempt := 0; attempt < opts.MaxRetries; attempt++ {
		nc, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
		if err == nil {
			c := &Conn{
				opts:    opts,
				addr:    addr,
				conn:    nc,
				bw:      bufio.NewWriterSize(nc, 32<<10),
				pending: make(map[uint64]chan wire.Frame),
				done:    make(chan struct{}),
			}
			go c.readLoop()
			if _, err := c.send(wire.OpHello, []byte{wire.ProtoVersion}).Wait(); err != nil {
				c.Close()
				if errors.Is(err, wire.ErrBadRequest) {
					return nil, fmt.Errorf("client: dial %s: protocol version mismatch: %w", addr, err)
				}
				lastErr = err
			} else {
				return c, nil
			}
		} else {
			lastErr = err
		}
		time.Sleep(backoff)
		backoff *= 2
	}
	return nil, fmt.Errorf("client: dial %s: %w", addr, lastErr)
}

// Addr returns the address the connection was dialed to.
func (c *Conn) Addr() string { return c.addr }

// Close tears the connection down. In-flight Waits fail.
func (c *Conn) Close() error {
	err := c.conn.Close()
	<-c.done // readLoop observed the close and failed all pending
	return err
}

// Healthy reports whether the connection can still carry requests.
func (c *Conn) Healthy() bool {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	return c.readErr == nil
}

// NewTxID allocates a connection-unique transaction handle.
func (c *Conn) NewTxID() uint64 { return c.nextTx.Add(1) }

// readLoop dispatches responses to their waiting Pending by request id.
func (c *Conn) readLoop() {
	defer close(c.done)
	br := bufio.NewReaderSize(c.conn, 32<<10)
	for {
		f, err := wire.ReadFrame(br, c.opts.MaxFrame)
		if err != nil {
			c.pmu.Lock()
			c.readErr = fmt.Errorf("client: connection lost: %w", err)
			for id, ch := range c.pending {
				delete(c.pending, id)
				close(ch)
			}
			c.pmu.Unlock()
			return
		}
		c.pmu.Lock()
		ch, ok := c.pending[f.ID]
		if ok {
			delete(c.pending, f.ID)
		}
		c.pmu.Unlock()
		if ok {
			ch <- f // buffered; never blocks
		}
	}
}

// Pending is an in-flight request. Wait resolves it.
type Pending struct {
	c  *Conn
	id uint64
	ch chan wire.Frame
}

// send enqueues one request frame without flushing. The flush happens
// in Wait (or the next synchronous call), so bursts of Async sends
// coalesce into few syscalls.
func (c *Conn) send(kind byte, payload []byte) *Pending {
	id := c.nextID.Add(1)
	ch := make(chan wire.Frame, 1)
	c.pmu.Lock()
	if err := c.readErr; err != nil {
		c.pmu.Unlock()
		close(ch)
		return &Pending{c: c, id: id, ch: ch}
	}
	c.pending[id] = ch
	c.pmu.Unlock()

	c.wmu.Lock()
	if err := wire.WriteFrame(c.bw, id, kind, payload); err != nil {
		// A send-path failure is terminal: closing the conn makes
		// readLoop fail this and every other pending request.
		c.conn.Close()
	} else {
		c.dirty = true
	}
	c.wmu.Unlock()
	return &Pending{c: c, id: id, ch: ch}
}

func (c *Conn) flush() {
	c.wmu.Lock()
	if c.dirty {
		c.dirty = false
		if err := c.bw.Flush(); err != nil {
			c.conn.Close()
		}
	}
	c.wmu.Unlock()
}

// Wait blocks for the response, the request timeout, or connection
// loss. On an error status it returns a *wire.StatusError that unwraps
// to the matching sentinel.
func (p *Pending) Wait() (wire.Frame, error) {
	p.c.flush()
	timer := time.NewTimer(p.c.opts.RequestTimeout)
	defer timer.Stop()
	select {
	case f, ok := <-p.ch:
		if !ok {
			p.c.pmu.Lock()
			err := p.c.readErr
			p.c.pmu.Unlock()
			if err == nil {
				err = errors.New("client: connection closed")
			}
			return wire.Frame{}, err
		}
		if f.Kind == wire.StatusRedirect {
			// A follower declining a leader-only op; the payload names
			// the leader ("" mid-election). The cluster Pool consumes
			// this to re-resolve before callers ever see it.
			return f, &wire.RedirectError{Leader: wire.NewReader(f.Payload).String()}
		}
		if f.Kind != wire.StatusOK {
			msg := wire.NewReader(f.Payload).Blob()
			return f, &wire.StatusError{Code: f.Kind, Message: string(msg)}
		}
		return f, nil
	case <-timer.C:
		p.c.pmu.Lock()
		delete(p.c.pending, p.id)
		p.c.pmu.Unlock()
		return wire.Frame{}, ErrTimeout
	}
}

// do sends one request synchronously, retrying transient (StatusBusy)
// rejections with exponential backoff up to MaxRetries attempts. Busy
// rejections happen before the op executes, so the retry is always
// safe.
// Do sends one raw request synchronously with the transient-retry
// policy. The replication layer uses it to carry opcodes the typed
// wrappers don't cover.
func (c *Conn) Do(kind byte, payload []byte) (wire.Frame, error) {
	return c.do(kind, payload)
}

// DoAsync enqueues one raw request and returns its Pending without
// flushing, so repl batches coalesce like pipelined transactions.
func (c *Conn) DoAsync(kind byte, payload []byte) *Pending {
	return c.send(kind, payload)
}

func (c *Conn) do(kind byte, payload []byte) (wire.Frame, error) {
	backoff := c.opts.RetryBackoff
	var f wire.Frame
	var err error
	for attempt := 0; attempt < c.opts.MaxRetries; attempt++ {
		f, err = c.send(kind, payload).Wait()
		if err == nil || !wire.IsTransient(err) {
			return f, err
		}
		time.Sleep(backoff)
		backoff *= 2
	}
	return f, err
}
