package client

import (
	"errors"
	"sync"
	"time"

	"ipa/internal/wire"
)

// ErrPoolClosed is returned by Get after Close.
var ErrPoolClosed = errors.New("client: pool is closed")

// Pool hands out connections to a server — or, with NewClusterPool, to
// whichever member of a replicated cluster currently leads. It reuses
// healthy idle connections to the current target, dials (with the
// Options' bounded retry) when none are available, and re-resolves the
// leader when a member answers REDIRECT or stops answering at all.
// Callers Get a connection, use it — possibly for many pipelined
// requests — and Put it back; cluster callers use Do, which hides the
// redirect/retry dance entirely.
type Pool struct {
	addrs []string
	opts  Options

	mu     sync.Mutex
	target int // index into addrs of the presumed leader
	idle   []*Conn
	closed bool
}

// NewPool creates a pool for a single address. No connections are
// dialed until Get.
func NewPool(addr string, opts Options) *Pool {
	return NewClusterPool([]string{addr}, opts)
}

// NewClusterPool creates a pool over every member of a cluster. The
// first address is the initial leader guess; REDIRECT responses and
// dial failures steer the pool to the real one.
func NewClusterPool(addrs []string, opts Options) *Pool {
	if len(addrs) == 0 {
		panic("client: NewClusterPool with no addresses")
	}
	return &Pool{addrs: append([]string(nil), addrs...), opts: opts.withDefaults()}
}

// Target returns the address the pool currently believes is the leader.
func (p *Pool) Target() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.addrs[p.target]
}

// Redirect points the pool at addr (learned from a REDIRECT response).
// Unknown addresses join the member list, so a cluster can grow beyond
// the seeds the pool was created with.
func (p *Pool) Redirect(addr string) {
	if addr == "" {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, a := range p.addrs {
		if a == addr {
			p.target = i
			return
		}
	}
	p.addrs = append(p.addrs, addr)
	p.target = len(p.addrs) - 1
}

// advance rotates to the next member, for when the current target is
// unreachable and no REDIRECT named a replacement.
func (p *Pool) advance() {
	p.mu.Lock()
	p.target = (p.target + 1) % len(p.addrs)
	p.mu.Unlock()
}

// Get returns an idle connection to the current target or dials a new
// one. It fails with ErrPoolClosed after Close (a dialed connection the
// pool never saw again would leak).
func (p *Pool) Get() (*Conn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	addr := p.addrs[p.target]
	for len(p.idle) > 0 {
		c := p.idle[len(p.idle)-1]
		p.idle = p.idle[:len(p.idle)-1]
		if c.Healthy() && c.Addr() == addr {
			p.mu.Unlock()
			return c, nil
		}
		// Broken, or dialed to a deposed leader: either way, retire it.
		c.Close()
	}
	p.mu.Unlock()
	return Dial(addr, p.opts)
}

// Put returns a connection to the pool; broken connections are closed
// instead of being recycled.
func (p *Pool) Put(c *Conn) {
	if c == nil {
		return
	}
	if !c.Healthy() {
		c.Close()
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		c.Close()
		return
	}
	p.idle = append(p.idle, c)
	p.mu.Unlock()
}

// Do runs fn with a pooled connection, absorbing leader changes: a
// *wire.RedirectError re-points the pool at the named leader (or the
// next member, mid-election) and reruns fn there; a dead or draining
// member rotates to the next. Attempts back off exponentially and span
// a full election timeout, so a failover in progress resolves inside
// one Do call instead of surfacing a transient error. fn must be safe
// to rerun from scratch — redirects are issued before any op executes,
// and a connection lost mid-transaction aborts it server-side.
func (p *Pool) Do(fn func(*Conn) error) error {
	backoff := p.opts.RetryBackoff
	var lastErr error
	// Enough doubling attempts to ride out an election (~2^10 × base).
	const attempts = 10
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			if backoff < 500*time.Millisecond {
				backoff *= 2
			}
		}
		c, err := p.Get()
		if err != nil {
			if errors.Is(err, ErrPoolClosed) {
				return err
			}
			lastErr = err
			p.advance()
			continue
		}
		err = fn(c)
		if err == nil {
			p.Put(c)
			return nil
		}
		var re *wire.RedirectError
		switch {
		case errors.As(err, &re):
			p.Put(c) // the follower's connection is healthy, just wrong
			if re.Leader != "" {
				p.Redirect(re.Leader)
			} else {
				p.advance()
			}
		case !c.Healthy(), errors.Is(err, ErrTimeout), errors.Is(err, wire.ErrClosed):
			c.Close()
			p.advance()
		default:
			// Application-level failure (lock conflict, bad request, ...):
			// the caller's to handle, not a routing problem.
			p.Put(c)
			return err
		}
		lastErr = err
	}
	return lastErr
}

// Close closes every idle connection; connections currently checked
// out are the caller's to close.
func (p *Pool) Close() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.closed = true
	p.mu.Unlock()
	for _, c := range idle {
		c.Close()
	}
}
