package client

import (
	"errors"
	"sync"
)

// ErrPoolClosed is returned by Get after Close.
var ErrPoolClosed = errors.New("client: pool is closed")

// Pool hands out connections to one server address, reusing healthy
// idle connections and dialing (with the Options' bounded retry) when
// none are available. Callers Get a connection, use it — possibly for
// many pipelined requests — and Put it back.
type Pool struct {
	addr string
	opts Options

	mu     sync.Mutex
	idle   []*Conn
	closed bool
}

// NewPool creates a pool for addr. No connections are dialed until Get.
func NewPool(addr string, opts Options) *Pool {
	return &Pool{addr: addr, opts: opts.withDefaults()}
}

// Get returns an idle connection or dials a new one. It fails with
// ErrPoolClosed after Close (a dialed connection the pool never saw
// again would leak).
func (p *Pool) Get() (*Conn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	for len(p.idle) > 0 {
		c := p.idle[len(p.idle)-1]
		p.idle = p.idle[:len(p.idle)-1]
		if c.Healthy() {
			p.mu.Unlock()
			return c, nil
		}
		c.Close()
	}
	p.mu.Unlock()
	return Dial(p.addr, p.opts)
}

// Put returns a connection to the pool; broken connections are closed
// instead of being recycled.
func (p *Pool) Put(c *Conn) {
	if c == nil {
		return
	}
	if !c.Healthy() {
		c.Close()
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		c.Close()
		return
	}
	p.idle = append(p.idle, c)
	p.mu.Unlock()
}

// Close closes every idle connection; connections currently checked
// out are the caller's to close.
func (p *Pool) Close() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.closed = true
	p.mu.Unlock()
	for _, c := range idle {
		c.Close()
	}
}
