package client

import (
	"fmt"

	"ipa/internal/wire"
)

// Begin opens a transaction under a fresh handle and returns it.
func (c *Conn) Begin() (uint64, error) {
	tx := c.NewTxID()
	_, err := c.do(wire.OpBegin, wire.NewBuilder(8).Uint64(tx).Bytes())
	return tx, err
}

// BeginAsync opens a transaction under the given handle (from NewTxID)
// without waiting for the response.
func (c *Conn) BeginAsync(tx uint64) *Pending {
	return c.send(wire.OpBegin, wire.NewBuilder(8).Uint64(tx).Bytes())
}

// Commit commits a transaction.
func (c *Conn) Commit(tx uint64) error {
	_, err := c.do(wire.OpCommit, wire.NewBuilder(8).Uint64(tx).Bytes())
	return err
}

// CommitAsync pipelines a commit.
func (c *Conn) CommitAsync(tx uint64) *Pending {
	return c.send(wire.OpCommit, wire.NewBuilder(8).Uint64(tx).Bytes())
}

// Abort rolls a transaction back.
func (c *Conn) Abort(tx uint64) error {
	_, err := c.do(wire.OpAbort, wire.NewBuilder(8).Uint64(tx).Bytes())
	return err
}

// Insert adds a tuple and returns its record id.
func (c *Conn) Insert(tx uint64, table string, data []byte) (wire.RID, error) {
	f, err := c.InsertAsync(tx, table, data).Wait()
	if err != nil {
		return wire.RID{}, err
	}
	r := wire.NewReader(f.Payload)
	rid := r.RID()
	return rid, r.Err()
}

// InsertAsync pipelines an insert; Wait's frame payload is the rid.
func (c *Conn) InsertAsync(tx uint64, table string, data []byte) *Pending {
	p := wire.NewBuilder(16 + len(table) + len(data)).
		Uint64(tx).String(table).Blob(data).Bytes()
	return c.send(wire.OpInsert, p)
}

// Read fetches a committed tuple outside any transaction.
func (c *Conn) Read(table string, rid wire.RID) ([]byte, error) {
	p := wire.NewBuilder(16 + len(table)).String(table).RID(rid).Bytes()
	f, err := c.do(wire.OpRead, p)
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(f.Payload)
	data := r.Blob()
	return data, r.Err()
}

// ReadAsync pipelines a read; Wait's frame payload is the tuple blob.
func (c *Conn) ReadAsync(table string, rid wire.RID) *Pending {
	p := wire.NewBuilder(16 + len(table)).String(table).RID(rid).Bytes()
	return c.send(wire.OpRead, p)
}

// Update rewrites a whole tuple.
func (c *Conn) Update(tx uint64, table string, rid wire.RID, data []byte) error {
	_, err := c.UpdateAsync(tx, table, rid, data).Wait()
	return err
}

// UpdateAsync pipelines a whole-tuple update.
func (c *Conn) UpdateAsync(tx uint64, table string, rid wire.RID, data []byte) *Pending {
	p := wire.NewBuilder(24 + len(table) + len(data)).
		Uint64(tx).String(table).RID(rid).Blob(data).Bytes()
	return c.send(wire.OpUpdate, p)
}

// UpdateField rewrites `val` bytes at byte offset `off` of a tuple —
// the small in-place delta the IPA engine turns into an OOB append.
func (c *Conn) UpdateField(tx uint64, table string, rid wire.RID, off int, val []byte) error {
	_, err := c.UpdateFieldAsync(tx, table, rid, off, val).Wait()
	return err
}

// UpdateFieldAsync pipelines a field update.
func (c *Conn) UpdateFieldAsync(tx uint64, table string, rid wire.RID, off int, val []byte) *Pending {
	p := wire.NewBuilder(28 + len(table) + len(val)).
		Uint64(tx).String(table).RID(rid).Uint32(uint32(off)).Blob(val).Bytes()
	return c.send(wire.OpUpdateField, p)
}

// AddField adds delta to the 8-byte little-endian word at byte offset
// off, server-side under the tuple lock — the atomic balance increment
// TPC-B style workloads need (an absolute UpdateField computed from a
// stale client-side read loses concurrent increments).
func (c *Conn) AddField(tx uint64, table string, rid wire.RID, off int, delta uint64) error {
	_, err := c.AddFieldAsync(tx, table, rid, off, delta).Wait()
	return err
}

// AddFieldAsync pipelines a field increment.
func (c *Conn) AddFieldAsync(tx uint64, table string, rid wire.RID, off int, delta uint64) *Pending {
	p := wire.NewBuilder(36 + len(table)).
		Uint64(tx).String(table).RID(rid).Uint32(uint32(off)).Uint64(delta).Bytes()
	return c.send(wire.OpAddField, p)
}

// Delete removes a tuple.
func (c *Conn) Delete(tx uint64, table string, rid wire.RID) error {
	p := wire.NewBuilder(24 + len(table)).Uint64(tx).String(table).RID(rid).Bytes()
	_, err := c.do(wire.OpDelete, p)
	return err
}

// ScanEntry is one tuple returned by Scan.
type ScanEntry struct {
	RID  wire.RID
	Data []byte
}

// Scan returns up to limit committed tuples of a table (0 = all).
func (c *Conn) Scan(table string, limit uint32) ([]ScanEntry, error) {
	p := wire.NewBuilder(8 + len(table)).String(table).Uint32(limit).Bytes()
	f, err := c.do(wire.OpScan, p)
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(f.Payload)
	count := r.Uint32()
	out := make([]ScanEntry, 0, count)
	for i := uint32(0); i < count; i++ {
		out = append(out, ScanEntry{RID: r.RID(), Data: r.Blob()})
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("client: malformed SCAN response: %w", err)
	}
	return out, nil
}

// BeginSnapshot opens a read-only snapshot transaction under a fresh
// handle, returning the handle and the pinned snapshot LSN. Reads and
// scans through it (SnapshotRead/SnapshotScan) observe the database
// frozen at that LSN, hold no locks and never abort on writer
// conflicts; end it with Commit or Abort like any transaction. Requires
// the server's engine to run with MVCC enabled (StatusBadRequest
// otherwise).
func (c *Conn) BeginSnapshot() (tx uint64, snapshotLSN uint64, err error) {
	tx = c.NewTxID()
	f, err := c.do(wire.OpBeginSnapshot, wire.NewBuilder(8).Uint64(tx).Bytes())
	if err != nil {
		return 0, 0, err
	}
	r := wire.NewReader(f.Payload)
	snapshotLSN = r.Uint64()
	return tx, snapshotLSN, r.Err()
}

// SnapshotRead fetches a tuple as of the snapshot transaction's pinned
// LSN.
func (c *Conn) SnapshotRead(tx uint64, table string, rid wire.RID) ([]byte, error) {
	p := wire.NewBuilder(24 + len(table)).Uint64(tx).String(table).RID(rid).Bytes()
	f, err := c.do(wire.OpSnapshotRead, p)
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(f.Payload)
	data := r.Blob()
	return data, r.Err()
}

// SnapshotScan returns up to limit tuples (0 = all) visible at the
// snapshot transaction's pinned LSN.
func (c *Conn) SnapshotScan(tx uint64, table string, limit uint32) ([]ScanEntry, error) {
	p := wire.NewBuilder(16 + len(table)).Uint64(tx).String(table).Uint32(limit).Bytes()
	f, err := c.do(wire.OpSnapshotScan, p)
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(f.Payload)
	count := r.Uint32()
	out := make([]ScanEntry, 0, count)
	for i := uint32(0); i < count; i++ {
		out = append(out, ScanEntry{RID: r.RID(), Data: r.Blob()})
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("client: malformed SNAPSCAN response: %w", err)
	}
	return out, nil
}

// Stats fetches the server's stats document as raw JSON.
func (c *Conn) Stats() ([]byte, error) {
	f, err := c.do(wire.OpStats, nil)
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(f.Payload)
	raw := r.Blob()
	return raw, r.Err()
}

// Ping round-trips an empty frame.
func (c *Conn) Ping() error {
	_, err := c.do(wire.OpPing, nil)
	return err
}
