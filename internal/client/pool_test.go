package client

import (
	"errors"
	"net"
	"testing"
	"time"

	"ipa/internal/wire"
)

// TestPoolGetAfterClose: Get on a closed pool must fail instead of
// dialing a connection the pool would never track or close.
func TestPoolGetAfterClose(t *testing.T) {
	p := NewPool("127.0.0.1:1", Options{DialTimeout: 10 * time.Millisecond})
	p.Close()
	if _, err := p.Get(); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Get after Close = %v, want ErrPoolClosed", err)
	}
}

// fakeServer answers HELLO itself and delegates every other request to
// handle, giving redirect tests a deterministic peer.
type fakeServer struct {
	ln     net.Listener
	handle func(f wire.Frame) (status byte, payload []byte)
}

func startFakeServer(t *testing.T, handle func(f wire.Frame) (byte, []byte)) *fakeServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := &fakeServer{ln: ln, handle: handle}
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer nc.Close()
				for {
					f, err := wire.ReadFrame(nc, 0)
					if err != nil {
						return
					}
					status, payload := byte(wire.StatusOK), []byte(nil)
					if f.Kind != wire.OpHello {
						status, payload = s.handle(f)
					}
					if err := wire.WriteFrame(nc, f.ID, status, payload); err != nil {
						return
					}
				}
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return s
}

func (s *fakeServer) addr() string { return s.ln.Addr().String() }

// TestPoolFollowsRedirect is the satellite client-retry test: the first
// member answers REDIRECT naming the leader, and Pool.Do must
// re-resolve and succeed without surfacing any error to the caller.
func TestPoolFollowsRedirect(t *testing.T) {
	leader := startFakeServer(t, func(f wire.Frame) (byte, []byte) {
		return wire.StatusOK, nil
	})
	var redirects int
	follower := startFakeServer(t, func(f wire.Frame) (byte, []byte) {
		redirects++
		return wire.StatusRedirect, wire.NewBuilder(32).String(leader.addr()).Bytes()
	})

	p := NewClusterPool([]string{follower.addr()}, Options{
		RequestTimeout: 2 * time.Second,
		RetryBackoff:   time.Millisecond,
	})
	defer p.Close()

	err := p.Do(func(c *Conn) error {
		_, err := c.Begin()
		return err
	})
	if err != nil {
		t.Fatalf("Do across redirect = %v, want nil", err)
	}
	if redirects == 0 {
		t.Fatal("follower never saw the request; redirect path untested")
	}
	if got := p.Target(); got != leader.addr() {
		t.Fatalf("pool target = %s after redirect, want %s", got, leader.addr())
	}
	// The pool now goes straight to the leader: no new redirects.
	before := redirects
	if err := p.Do(func(c *Conn) error { return c.Ping() }); err != nil {
		t.Fatalf("Do after re-resolve = %v", err)
	}
	if redirects != before {
		t.Fatalf("pool still consulting the follower after learning the leader")
	}
}

// TestPoolRedirectWithoutLeader: a mid-election follower redirects with
// an empty leader; the pool must rotate through members until one
// accepts, not loop on the same follower.
func TestPoolRedirectWithoutLeader(t *testing.T) {
	leader := startFakeServer(t, func(f wire.Frame) (byte, []byte) {
		return wire.StatusOK, nil
	})
	follower := startFakeServer(t, func(f wire.Frame) (byte, []byte) {
		return wire.StatusRedirect, wire.NewBuilder(8).String("").Bytes()
	})

	p := NewClusterPool([]string{follower.addr(), leader.addr()}, Options{
		RequestTimeout: 2 * time.Second,
		RetryBackoff:   time.Millisecond,
	})
	defer p.Close()

	err := p.Do(func(c *Conn) error { return c.Ping() })
	if err != nil {
		t.Fatalf("Do across leaderless redirect = %v, want nil", err)
	}
	if got := p.Target(); got != leader.addr() {
		t.Fatalf("pool target = %s, want %s", got, leader.addr())
	}
}

// TestPoolSurfacesApplicationErrors: non-routing failures must come
// back to the caller on the first attempt, not burn the retry budget.
func TestPoolSurfacesApplicationErrors(t *testing.T) {
	var calls int
	srv := startFakeServer(t, func(f wire.Frame) (byte, []byte) {
		calls++
		return wire.StatusNoTable, wire.NewBuilder(16).Blob([]byte("no such table")).Bytes()
	})
	p := NewClusterPool([]string{srv.addr()}, Options{
		RequestTimeout: 2 * time.Second,
		RetryBackoff:   time.Millisecond,
	})
	defer p.Close()

	err := p.Do(func(c *Conn) error {
		_, err := c.Read("nope", wire.RID{})
		return err
	})
	if !errors.Is(err, wire.ErrNoTable) {
		t.Fatalf("Do = %v, want ErrNoTable", err)
	}
	if calls != 1 {
		t.Fatalf("server saw %d attempts for a terminal error, want 1", calls)
	}
}

// TestDialRejectsVersionMismatch: a server on an older protocol
// revision answers HELLO with BAD_REQUEST, and Dial must fail fast
// instead of retrying a mismatch that cannot heal.
func TestDialRejectsVersionMismatch(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer nc.Close()
				f, err := wire.ReadFrame(nc, 0)
				if err != nil {
					return
				}
				msg := wire.NewBuilder(32).Blob([]byte("protocol version mismatch")).Bytes()
				wire.WriteFrame(nc, f.ID, wire.StatusBadRequest, msg)
			}()
		}
	}()
	start := time.Now()
	_, err = Dial(ln.Addr().String(), Options{RetryBackoff: 100 * time.Millisecond})
	if !errors.Is(err, wire.ErrBadRequest) {
		t.Fatalf("Dial = %v, want ErrBadRequest", err)
	}
	if time.Since(start) > 50*time.Millisecond {
		t.Fatalf("Dial retried a version mismatch (took %v)", time.Since(start))
	}
}
