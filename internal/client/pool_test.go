package client

import (
	"errors"
	"testing"
	"time"
)

// TestPoolGetAfterClose: Get on a closed pool must fail instead of
// dialing a connection the pool would never track or close.
func TestPoolGetAfterClose(t *testing.T) {
	p := NewPool("127.0.0.1:1", Options{DialTimeout: 10 * time.Millisecond})
	p.Close()
	if _, err := p.Get(); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Get after Close = %v, want ErrPoolClosed", err)
	}
}
