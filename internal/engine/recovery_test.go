package engine

import (
	"errors"
	"testing"

	"ipa/internal/core"
	"ipa/internal/noftl"
)

func TestRecoveryRedoesCommittedWork(t *testing.T) {
	r := newRig(t, noftl.ModeSLC, core.NewScheme(2, 3), 16, false)
	tbl, _ := r.db.CreateTable("t", "main")
	sch, _ := NewSchema(8)

	tx := mustBegin(r.db, nil)
	tup := sch.New()
	sch.SetUint(tup, 0, 7)
	rid, _ := tbl.Insert(tx, tup)
	tx.Commit()
	// Crash WITHOUT flushing: the page never reached flash; only the log
	// survives.
	if err := r.db.SimulateCrash(); err != nil {
		t.Fatal(err)
	}
	rep, err := r.db.Recover(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RedoneOps == 0 {
		t.Error("nothing redone")
	}
	got, err := tbl.Read(nil, rid)
	if err != nil {
		t.Fatal(err)
	}
	if sch.GetUint(got, 0) != 7 {
		t.Errorf("value = %d, want 7", sch.GetUint(got, 0))
	}
}

func TestRecoveryUndoesLosers(t *testing.T) {
	r := newRig(t, noftl.ModeSLC, core.NewScheme(2, 3), 16, false)
	tbl, _ := r.db.CreateTable("t", "main")
	sch, _ := NewSchema(8)

	tx := mustBegin(r.db, nil)
	tup := sch.New()
	sch.SetUint(tup, 0, 42)
	rid, _ := tbl.Insert(tx, tup)
	tx.Commit()
	r.db.FlushAll(nil)

	// Loser transaction: small update flushed to flash (as a
	// delta-record) but never committed.
	loser := mustBegin(r.db, nil)
	cur, _ := tbl.Read(nil, rid)
	sch.SetUint(cur, 0, 43)
	tbl.Update(loser, rid, cur)
	r.db.FlushAll(nil)
	if r.db.Store("main").Stats().FlushesDelta == 0 {
		t.Fatal("precondition: loser's change should have flushed as delta")
	}

	if err := r.db.SimulateCrash(); err != nil {
		t.Fatal(err)
	}
	rep, err := r.db.Recover(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UndoneTxs != 1 {
		t.Errorf("UndoneTxs = %d, want 1", rep.UndoneTxs)
	}
	got, _ := tbl.Read(nil, rid)
	if sch.GetUint(got, 0) != 42 {
		t.Errorf("after recovery value = %d, want 42", sch.GetUint(got, 0))
	}
}

func TestRecoveryIdempotent(t *testing.T) {
	r := newRig(t, noftl.ModeSLC, core.NewScheme(2, 3), 16, false)
	tbl, _ := r.db.CreateTable("t", "main")
	sch, _ := NewSchema(8)
	tx := mustBegin(r.db, nil)
	tup := sch.New()
	sch.SetUint(tup, 0, 5)
	rid, _ := tbl.Insert(tx, tup)
	tx.Commit()
	r.db.SimulateCrash()
	if _, err := r.db.Recover(nil); err != nil {
		t.Fatal(err)
	}
	// Crash again right after recovery, before any flush.
	r.db.SimulateCrash()
	if _, err := r.db.Recover(nil); err != nil {
		t.Fatal(err)
	}
	got, err := tbl.Read(nil, rid)
	if err != nil {
		t.Fatal(err)
	}
	if sch.GetUint(got, 0) != 5 {
		t.Errorf("value = %d, want 5", sch.GetUint(got, 0))
	}
}

func TestRecoveryMixedWorkload(t *testing.T) {
	r := newRig(t, noftl.ModeSLC, core.NewScheme(2, 4), 8, false)
	tbl, _ := r.db.CreateTable("t", "main")
	sch, _ := NewSchema(8, 8)

	// 20 committed rows.
	var rids []core.RID
	for i := 0; i < 20; i++ {
		tx := mustBegin(r.db, nil)
		tup := sch.New()
		sch.SetUint(tup, 0, uint64(i))
		sch.SetUint(tup, 1, 100)
		rid, err := tbl.Insert(tx, tup)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
		tx.Commit()
	}
	r.db.FlushAll(nil)
	// Committed updates on half of them (not flushed).
	for i := 0; i < 10; i++ {
		tx := mustBegin(r.db, nil)
		cur, _ := tbl.Read(nil, rids[i])
		sch.AddUint(cur, 1, 1)
		tbl.Update(tx, rids[i], cur)
		tx.Commit()
	}
	// A loser touching two rows.
	loser := mustBegin(r.db, nil)
	for _, i := range []int{0, 15} {
		cur, _ := tbl.Read(nil, rids[i])
		sch.SetUint(cur, 1, 999)
		tbl.Update(loser, rids[i], cur)
	}

	r.db.SimulateCrash()
	rep, err := r.db.Recover(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UndoneTxs != 1 {
		t.Errorf("UndoneTxs = %d", rep.UndoneTxs)
	}
	for i, rid := range rids {
		got, err := tbl.Read(nil, rid)
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		want := uint64(100)
		if i < 10 {
			want = 101
		}
		if sch.GetUint(got, 1) != want {
			t.Errorf("row %d = %d, want %d", i, sch.GetUint(got, 1), want)
		}
	}
}

func TestCheckpointTruncatesLog(t *testing.T) {
	r := newRig(t, noftl.ModeSLC, core.NewScheme(2, 3), 16, false)
	tbl, _ := r.db.CreateTable("t", "main")
	for i := 0; i < 10; i++ {
		tx := mustBegin(r.db, nil)
		tbl.Insert(tx, make([]byte, 16))
		tx.Commit()
	}
	r.db.FlushAll(nil)
	before := r.db.WAL().UsedBytes()
	if err := r.db.Checkpoint(nil); err != nil {
		t.Fatal(err)
	}
	if r.db.WAL().UsedBytes() >= before {
		t.Errorf("checkpoint did not reclaim log space: %d → %d", before, r.db.WAL().UsedBytes())
	}
	if r.db.Checkpoints() != 1 {
		t.Errorf("Checkpoints = %d", r.db.Checkpoints())
	}
	// Recovery still works on the truncated log.
	r.db.SimulateCrash()
	if _, err := r.db.Recover(nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogSpaceReclamationForcesFlushes(t *testing.T) {
	// A tiny log must trigger eager reclamation: dirty pages get flushed
	// even though the buffer never fills (the paper's explanation for
	// host writes at 90% buffer size).
	r := newRigWithLog(t, 8*1024)
	tbl, _ := r.db.CreateTable("t", "main")
	sch, _ := NewSchema(8)
	tx := mustBegin(r.db, nil)
	rid, _ := tbl.Insert(tx, sch.New())
	tx.Commit()
	for i := 0; i < 200; i++ {
		tx := mustBegin(r.db, nil)
		cur, _ := tbl.Read(nil, rid)
		sch.AddUint(cur, 0, 1)
		if err := tbl.Update(tx, rid, cur); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	st := r.db.Store("main")
	writes := st.Stats().FlushesDelta + st.Stats().FlushesOOP
	if writes == 0 {
		t.Error("no flushes despite log pressure — eager reclamation broken")
	}
	if r.db.Checkpoints() == 0 {
		t.Error("no checkpoints taken under log pressure")
	}
	if r.db.WAL().Usage() > 1.0 {
		t.Errorf("log overflowed: usage %v", r.db.WAL().Usage())
	}
}

func newRigWithLog(t *testing.T, logCap int) *testRig {
	t.Helper()
	rig := newRig(t, noftl.ModeSLC, core.NewScheme(2, 4), 64, false)
	db, err := New(rig.dev, Options{
		PageSize: 512, BufferFrames: 64, DirtyThreshold: 2.0,
		LogCapacity: logCap, LogReclaimThreshold: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Reuse the already-created region on a fresh DB instance.
	rig.db = db
	return rig
}

func TestRecoverEmptyLog(t *testing.T) {
	r := newRig(t, noftl.ModeSLC, core.NewScheme(2, 3), 8, false)
	rep, err := r.db.Recover(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RedoneOps != 0 || rep.UndoneTxs != 0 {
		t.Errorf("empty recovery = %+v", rep)
	}
}

func TestTxDoubleFinish(t *testing.T) {
	r := newRig(t, noftl.ModeSLC, core.NewScheme(2, 3), 8, false)
	tx := mustBegin(r.db, nil)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Errorf("double commit: %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrTxDone) {
		t.Errorf("abort after commit: %v", err)
	}
}
