package engine

import (
	"fmt"

	"ipa/internal/core"
	"ipa/internal/page"
	"ipa/internal/sim"
)

// Replica snapshot transfer: when a joining (or diverged) follower's
// log cursor falls behind the primary's truncated tail, the primary
// ships a full engine image instead. The image primes the follower at
// PrimeLSN = min(active transaction firstLSN) - 1 (or the log head when
// nothing is in flight), which guarantees two things at once: every
// in-flight transaction's records replay from its RecBegin (so the
// follower rebuilds complete undo chains and version entries), and the
// primary's own checkpoint cut — never past the minimum active firstLSN
// — has retained every record the follower will ask for next. Replay
// over the image is idempotent through the PageLSN guards.

// TableMeta describes one heap table in a snapshot.
type TableMeta struct {
	Name   string        `json:"name"`
	Region string        `json:"region"`
	ID     uint64        `json:"id"`
	Pages  []core.PageID `json:"pages"`
	Last   core.PageID   `json:"last"`
}

// PageImage is one page's full contents.
type PageImage struct {
	ID     core.PageID `json:"id"`
	Region string      `json:"region"`
	Data   []byte      `json:"data"`
}

// ReplicaSnapshot is a transferable engine image: catalog, allocator
// high-water marks, and every heap page.
type ReplicaSnapshot struct {
	PrimeLSN core.LSN    `json:"prime_lsn"`
	NextPage uint64      `json:"next_page"`
	NextTx   uint64      `json:"next_tx"`
	Tables   []TableMeta `json:"tables"`
	Pages    []PageImage `json:"pages"`
}

// CaptureSnapshot builds a consistent engine image. Stop-the-world (the
// state latch is held exclusively), so the heap, catalog and
// transaction table are mutually consistent; uncommitted changes in the
// image are repaired on the follower by the CLRs that follow in the
// stream, exactly as restart recovery repairs them after a crash.
func (db *DB) CaptureSnapshot(w *sim.Worker) (*ReplicaSnapshot, error) {
	db.stateMu.Lock()
	defer db.stateMu.Unlock()
	if db.closed.Load() {
		return nil, ErrClosed
	}

	db.txMu.Lock()
	var minFirst core.LSN
	for _, tx := range db.active {
		if minFirst == 0 || tx.firstLSN < minFirst {
			minFirst = tx.firstLSN
		}
	}
	db.txMu.Unlock()
	prime := db.log.Head()
	if minFirst != 0 && minFirst-1 < prime {
		prime = minFirst - 1
	}

	snap := &ReplicaSnapshot{
		PrimeLSN: prime,
		NextPage: db.nextPage.Load(),
		NextTx:   db.nextTx.Load(),
	}
	db.catMu.Lock()
	tables := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		tables = append(tables, t)
	}
	db.catMu.Unlock()
	for _, t := range tables {
		t.mu.Lock()
		tm := TableMeta{
			Name:   t.name,
			Region: t.st.Region().Name(),
			ID:     t.id,
			Pages:  append([]core.PageID(nil), t.pages...),
			Last:   t.last,
		}
		t.mu.Unlock()
		snap.Tables = append(snap.Tables, tm)
		for _, pid := range tm.Pages {
			fr, err := db.pool.Get(w, pid)
			if err != nil {
				return nil, fmt.Errorf("engine: snapshot page %d: %w", pid, err)
			}
			img := append([]byte(nil), fr.Data...)
			if err := db.pool.Unpin(w, fr, false, 0); err != nil {
				return nil, err
			}
			snap.Pages = append(snap.Pages, PageImage{ID: pid, Region: tm.Region, Data: img})
		}
	}
	return snap, nil
}

// InstallSnapshot replaces the follower's entire volatile and heap
// state with the image and splices the local log at PrimeLSN, so the
// next shipped record (PrimeLSN+1) appends with exact parity. The old
// pool, page directory, version chains and lock table are discarded —
// this is also the divergence repair path, so nothing of the previous
// state is trusted.
func (db *DB) InstallSnapshot(w *sim.Worker, snap *ReplicaSnapshot) error {
	db.stateMu.Lock()
	defer db.stateMu.Unlock()
	if db.closed.Load() {
		return ErrClosed
	}

	pool, err := db.newPool(db.opts.BufferFrames)
	if err != nil {
		return err
	}
	db.pool = pool
	db.pageDir.clear()
	db.locks.clear()
	if db.vs != nil {
		db.vs.reset()
	}
	db.txMu.Lock()
	db.active = make(map[uint64]*Tx)
	db.txMu.Unlock()
	db.catMu.Lock()
	db.tables = make(map[string]*Table)
	db.catMu.Unlock()

	for _, tm := range snap.Tables {
		t, err := db.restoreReplicaTable(tm.Name, tm.Region, tm.ID)
		if err != nil {
			return err
		}
		t.mu.Lock()
		t.pages = append([]core.PageID(nil), tm.Pages...)
		t.last = tm.Last
		t.mu.Unlock()
	}
	for _, pi := range snap.Pages {
		st, err := db.AttachRegion(pi.Region)
		if err != nil {
			return err
		}
		db.pageDir.put(pi.ID, st)
		fr, err := db.pool.GetNew(w, pi.ID)
		if err != nil {
			return err
		}
		if len(fr.Data) != len(pi.Data) {
			db.pool.Unpin(w, fr, false, 0)
			return fmt.Errorf("engine: snapshot page %d is %d bytes, frame holds %d",
				pi.ID, len(pi.Data), len(fr.Data))
		}
		copy(fr.Data, pi.Data)
		pg, err := page.Attach(fr.Data, st.layout)
		if err != nil {
			db.pool.Unpin(w, fr, false, 0)
			return err
		}
		if err := db.pool.Unpin(w, fr, true, pg.LSN()); err != nil {
			return err
		}
	}
	db.nextPage.Store(snap.NextPage)
	db.nextTx.Store(snap.NextTx)
	db.log.Reset(snap.PrimeLSN)
	// Persist the image so a follower-local restart recovers from its
	// own flash plus the retained stream suffix.
	return db.pool.FlushAll(w)
}
