package engine

import (
	"bytes"
	"errors"
	"testing"

	"ipa/internal/core"
	"ipa/internal/flash"
	"ipa/internal/noftl"
)

// testRig assembles a small SLC device, one region and a DB.
type testRig struct {
	dev *noftl.Device
	db  *DB
}

func newRig(t *testing.T, mode noftl.IPAMode, scheme core.Scheme, frames int, useECC bool) *testRig {
	t.Helper()
	g := flash.Geometry{
		Chips: 2, BlocksPerChip: 32, PagesPerBlock: 8,
		PageSize: 512, OOBSize: 32, Cell: flash.SLC,
	}
	arr, err := flash.New(flash.Config{
		Geometry: g, Timing: flash.SLCTiming(), StrictProgramOrder: true, MaxAppends: 8,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dev := noftl.Open(arr)
	if _, err := dev.CreateRegion(noftl.RegionConfig{
		Name: "main", Mode: mode, Scheme: scheme, BlocksPerChip: 32, OverProvision: 0.2,
	}); err != nil {
		t.Fatal(err)
	}
	db, err := New(dev, Options{
		PageSize: 512, BufferFrames: frames, UseECC: useECC, DirtyThreshold: 2.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{dev: dev, db: db}
}

func TestInsertReadUpdateDelete(t *testing.T) {
	r := newRig(t, noftl.ModeSLC, core.NewScheme(2, 3), 16, false)
	tbl, err := r.db.CreateTable("t", "main")
	if err != nil {
		t.Fatal(err)
	}
	tx := mustBegin(r.db, nil)
	rid, err := tbl.Insert(tx, []byte("hello world tuple"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got, err := tbl.Read(nil, rid)
	if err != nil || string(got) != "hello world tuple" {
		t.Fatalf("Read = %q, %v", got, err)
	}
	tx2 := mustBegin(r.db, nil)
	if err := tbl.Update(tx2, rid, []byte("HELLO world tuple")); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Delete(tx2, rid); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Read(nil, rid); !errors.Is(err, ErrNoTuple) {
		t.Errorf("read deleted: %v", err)
	}
	if _, err := r.db.CreateTable("t", "main"); !errors.Is(err, ErrTableExists) {
		t.Errorf("dup table: %v", err)
	}
	if _, err := r.db.Table("zzz"); !errors.Is(err, ErrNoTable) {
		t.Errorf("missing table: %v", err)
	}
}

func TestSmallUpdateBecomesDeltaWrite(t *testing.T) {
	r := newRig(t, noftl.ModeSLC, core.NewScheme(2, 3), 16, false)
	tbl, _ := r.db.CreateTable("t", "main")
	sch, _ := NewSchema(8, 8, 8)

	tx := mustBegin(r.db, nil)
	tup := sch.New()
	sch.SetUint(tup, 0, 1)
	sch.SetUint(tup, 1, 100)
	rid, err := tbl.Insert(tx, tup)
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	if err := r.db.FlushAll(nil); err != nil { // first flush: out-of-place
		t.Fatal(err)
	}
	st := r.db.Store("main")
	if st.Stats().FlushesOOP == 0 {
		t.Fatal("no out-of-place flush for new page")
	}

	// Small numeric update: balance += 5 changes 1 body byte.
	tx2 := mustBegin(r.db, nil)
	cur, _ := tbl.Read(nil, rid)
	sch.AddUint(cur, 1, 5)
	if err := tbl.Update(tx2, rid, cur); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	if err := r.db.FlushAll(nil); err != nil {
		t.Fatal(err)
	}
	if st.Stats().FlushesDelta != 1 {
		t.Fatalf("FlushesDelta = %d, want 1 (stats %+v)", st.Stats().FlushesDelta, st.Stats())
	}
	if f := st.Region().Stats().DeltaWrites; f != 1 {
		t.Fatalf("region DeltaWrites = %d", f)
	}
	// The physical page did NOT move.
	// Re-read after dropping the buffer: delta must be applied on fetch.
	if err := r.db.Pool().Drop(rid.Page); err != nil {
		t.Fatal(err)
	}
	got, err := tbl.Read(nil, rid)
	if err != nil {
		t.Fatal(err)
	}
	if sch.GetUint(got, 1) != 105 {
		t.Errorf("balance = %d, want 105", sch.GetUint(got, 1))
	}
	if st.Stats().DeltaApply == 0 {
		t.Error("fetch did not report delta application")
	}
}

func TestDeltaBudgetExhaustionFallsBackOOP(t *testing.T) {
	r := newRig(t, noftl.ModeSLC, core.NewScheme(2, 3), 16, false)
	tbl, _ := r.db.CreateTable("t", "main")
	sch, _ := NewSchema(8, 8)
	tx := mustBegin(r.db, nil)
	rid, _ := tbl.Insert(tx, sch.New())
	tx.Commit()
	r.db.FlushAll(nil)
	st := r.db.Store("main")

	// N=2 appends fit; the third small update flush must go out-of-place.
	for i := 1; i <= 3; i++ {
		tx := mustBegin(r.db, nil)
		cur, _ := tbl.Read(nil, rid)
		sch.AddUint(cur, 1, 1)
		if err := tbl.Update(tx, rid, cur); err != nil {
			t.Fatal(err)
		}
		tx.Commit()
		if err := r.db.FlushAll(nil); err != nil {
			t.Fatal(err)
		}
	}
	s := st.Stats()
	if s.FlushesDelta != 2 {
		t.Errorf("FlushesDelta = %d, want 2", s.FlushesDelta)
	}
	if s.FlushesOOP != 2 { // initial + overflow
		t.Errorf("FlushesOOP = %d, want 2", s.FlushesOOP)
	}
	// After the out-of-place write the budget is reset: next small update
	// is a delta again.
	tx2 := mustBegin(r.db, nil)
	cur, _ := tbl.Read(nil, rid)
	sch.AddUint(cur, 1, 1)
	tbl.Update(tx2, rid, cur)
	tx2.Commit()
	r.db.FlushAll(nil)
	if st.Stats().FlushesDelta != 3 {
		t.Errorf("post-reset FlushesDelta = %d, want 3", st.Stats().FlushesDelta)
	}
}

func TestLargeUpdateGoesOutOfPlace(t *testing.T) {
	r := newRig(t, noftl.ModeSLC, core.NewScheme(2, 3), 16, false)
	tbl, _ := r.db.CreateTable("t", "main")
	tx := mustBegin(r.db, nil)
	rid, _ := tbl.Insert(tx, bytes.Repeat([]byte{1}, 64))
	tx.Commit()
	r.db.FlushAll(nil)

	tx2 := mustBegin(r.db, nil)
	if err := tbl.Update(tx2, rid, bytes.Repeat([]byte{2}, 64)); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	r.db.FlushAll(nil)
	st := r.db.Store("main")
	if st.Stats().FlushesDelta != 0 {
		t.Errorf("64-byte change served as delta with M=3")
	}
	if st.Stats().FlushesOOP != 2 {
		t.Errorf("FlushesOOP = %d", st.Stats().FlushesOOP)
	}
	got, _ := tbl.Read(nil, rid)
	if !bytes.Equal(got, bytes.Repeat([]byte{2}, 64)) {
		t.Error("large update lost")
	}
}

func TestDisabledIPAAlwaysOOP(t *testing.T) {
	r := newRig(t, noftl.ModeNone, core.Scheme{}, 16, false)
	tbl, _ := r.db.CreateTable("t", "main")
	sch, _ := NewSchema(8)
	tx := mustBegin(r.db, nil)
	rid, _ := tbl.Insert(tx, sch.New())
	tx.Commit()
	r.db.FlushAll(nil)
	for i := 0; i < 3; i++ {
		tx := mustBegin(r.db, nil)
		cur, _ := tbl.Read(nil, rid)
		sch.AddUint(cur, 0, 1)
		tbl.Update(tx, rid, cur)
		tx.Commit()
		r.db.FlushAll(nil)
	}
	st := r.db.Store("main")
	if st.Stats().FlushesDelta != 0 {
		t.Error("delta writes on [0×0] baseline")
	}
	if st.Stats().FlushesOOP != 4 {
		t.Errorf("FlushesOOP = %d, want 4", st.Stats().FlushesOOP)
	}
}

func TestAbortRollsBack(t *testing.T) {
	r := newRig(t, noftl.ModeSLC, core.NewScheme(2, 3), 16, false)
	tbl, _ := r.db.CreateTable("t", "main")
	sch, _ := NewSchema(8)
	tx := mustBegin(r.db, nil)
	tup := sch.New()
	sch.SetUint(tup, 0, 42)
	rid, _ := tbl.Insert(tx, tup)
	tx.Commit()

	tx2 := mustBegin(r.db, nil)
	cur, _ := tbl.Read(nil, rid)
	sch.SetUint(cur, 0, 99)
	tbl.Update(tx2, rid, cur)
	rid2, _ := tbl.Insert(tx2, sch.New())
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	got, _ := tbl.Read(nil, rid)
	if sch.GetUint(got, 0) != 42 {
		t.Errorf("after abort value = %d, want 42", sch.GetUint(got, 0))
	}
	if _, err := tbl.Read(nil, rid2); !errors.Is(err, ErrNoTuple) {
		t.Errorf("aborted insert visible: %v", err)
	}
	if err := tx2.Commit(); !errors.Is(err, ErrTxDone) {
		t.Errorf("commit after abort: %v", err)
	}
}

func TestRollbackAcrossEvictionWithDeltas(t *testing.T) {
	// The paper's Sec 6.2 scenario: a dirty page with uncommitted changes
	// is evicted (changes land as a delta-record on flash), then the
	// transaction aborts. Undo must operate on the reconstructed page.
	r := newRig(t, noftl.ModeSLC, core.NewScheme(2, 3), 16, false)
	tbl, _ := r.db.CreateTable("t", "main")
	sch, _ := NewSchema(8)
	tx := mustBegin(r.db, nil)
	tup := sch.New()
	sch.SetUint(tup, 0, 42)
	rid, _ := tbl.Insert(tx, tup)
	tx.Commit()
	r.db.FlushAll(nil)

	tx2 := mustBegin(r.db, nil)
	cur, _ := tbl.Read(nil, rid)
	sch.SetUint(cur, 0, 43) // 1-byte change
	tbl.Update(tx2, rid, cur)
	r.db.FlushAll(nil) // steal: uncommitted delta goes to flash
	st := r.db.Store("main")
	if st.Stats().FlushesDelta == 0 {
		t.Fatal("uncommitted change did not flush as delta")
	}
	r.db.Pool().Drop(rid.Page) // make sure undo re-fetches from flash
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	got, _ := tbl.Read(nil, rid)
	if sch.GetUint(got, 0) != 42 {
		t.Errorf("after abort value = %d, want 42", sch.GetUint(got, 0))
	}
}

func TestUpdateFieldSmallDiff(t *testing.T) {
	r := newRig(t, noftl.ModeSLC, core.NewScheme(2, 3), 16, false)
	tbl, _ := r.db.CreateTable("t", "main")
	sch, _ := NewSchema(4, 4, 20)
	tx := mustBegin(r.db, nil)
	rid, _ := tbl.Insert(tx, sch.New())
	tx.Commit()
	r.db.FlushAll(nil)

	tx2 := mustBegin(r.db, nil)
	if err := tbl.UpdateField(tx2, rid, sch.Offset(1), []byte{7}); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	r.db.FlushAll(nil)
	st := r.db.Store("main")
	// Exactly one byte of net data changed.
	if got := st.Stats().NetBytes.Quantile(1.0); got != 1 {
		t.Errorf("net update size = %d bytes, want 1", got)
	}
	if st.Stats().FlushesDelta != 1 {
		t.Errorf("FlushesDelta = %d", st.Stats().FlushesDelta)
	}
	// Out-of-range field update is rejected.
	tx3 := mustBegin(r.db, nil)
	if err := tbl.UpdateField(tx3, rid, 100, []byte{1}); err == nil {
		t.Error("out-of-range field accepted")
	}
	tx3.Abort()
}

func TestEvictionsUnderSmallPool(t *testing.T) {
	r := newRig(t, noftl.ModeSLC, core.NewScheme(2, 4), 4, false)
	tbl, _ := r.db.CreateTable("t", "main")
	sch, _ := NewSchema(8, 8)
	var rids []core.RID
	// More pages than frames.
	for i := 0; i < 40; i++ {
		tx := mustBegin(r.db, nil)
		tup := sch.New()
		sch.SetUint(tup, 0, uint64(i))
		rid, err := tbl.Insert(tx, bytes.Repeat(tup, 10)) // 160B tuples, ~2/page
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
		tx.Commit()
	}
	// Update all, read all back.
	for i, rid := range rids {
		tx := mustBegin(r.db, nil)
		cur, err := tbl.Read(nil, rid)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		sch.AddUint(cur[:16], 1, uint64(i))
		if err := tbl.Update(tx, rid, cur); err != nil {
			t.Fatal(err)
		}
		tx.Commit()
	}
	for i, rid := range rids {
		got, err := tbl.Read(nil, rid)
		if err != nil {
			t.Fatalf("read-back %d: %v", i, err)
		}
		if sch.GetUint(got[:16], 0) != uint64(i) {
			t.Fatalf("tuple %d corrupted", i)
		}
	}
	if r.db.Pool().Stats().Evictions == 0 {
		t.Error("no evictions with 4-frame pool over 40 tuples")
	}
}

func TestECCEndToEnd(t *testing.T) {
	// Enable both ECC and read bit-error injection: every read flips a
	// bit, the sectioned ECC must correct all of them.
	g := flash.Geometry{
		Chips: 1, BlocksPerChip: 32, PagesPerBlock: 8,
		PageSize: 512, OOBSize: 32, Cell: flash.SLC,
	}
	arr, err := flash.New(flash.Config{
		Geometry: g, Timing: flash.SLCTiming(), StrictProgramOrder: true,
		MaxAppends: 8, BitErrorRate: 1.0, Seed: 11,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dev := noftl.Open(arr)
	if _, err := dev.CreateRegion(noftl.RegionConfig{
		Name: "main", Mode: noftl.ModeSLC, Scheme: core.NewScheme(2, 3), BlocksPerChip: 32, OverProvision: 0.2,
	}); err != nil {
		t.Fatal(err)
	}
	db, err := New(dev, Options{PageSize: 512, BufferFrames: 4, UseECC: true, DirtyThreshold: 2.0})
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.CreateTable("t", "main")
	sch, _ := NewSchema(8)
	var rids []core.RID
	for i := 0; i < 10; i++ {
		tx := mustBegin(db, nil)
		tup := sch.New()
		sch.SetUint(tup, 0, uint64(i+1000))
		rid, err := tbl.Insert(tx, tup)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
		tx.Commit()
	}
	db.FlushAll(nil)
	// Small updates to create delta-records under bit errors.
	for _, rid := range rids {
		tx := mustBegin(db, nil)
		cur, err := tbl.Read(nil, rid)
		if err != nil {
			t.Fatal(err)
		}
		sch.AddUint(cur, 0, 1)
		if err := tbl.Update(tx, rid, cur); err != nil {
			t.Fatal(err)
		}
		tx.Commit()
	}
	db.FlushAll(nil)
	for i, rid := range rids {
		db.Pool().Drop(rid.Page)
		got, err := tbl.Read(nil, rid)
		if err != nil {
			t.Fatalf("read %d under bit errors: %v", i, err)
		}
		if sch.GetUint(got, 0) != uint64(i+1001) {
			t.Fatalf("tuple %d = %d, want %d", i, sch.GetUint(got, 0), i+1001)
		}
	}
	st := db.Store("main")
	if st.Stats().ECCCorrected == 0 {
		t.Error("ECC never corrected anything despite 100% bit-error rate")
	}
}

func TestSchemaCodec(t *testing.T) {
	sch, err := NewSchema(4, 8, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sch.Size() != 24 || sch.Fields() != 4 {
		t.Errorf("size/fields = %d/%d", sch.Size(), sch.Fields())
	}
	if sch.Offset(2) != 12 || sch.Width(2) != 2 {
		t.Error("offset/width wrong")
	}
	tup := sch.New()
	sch.SetUint(tup, 0, 0xDEADBEEF)
	if sch.GetUint(tup, 0) != 0xDEADBEEF {
		t.Error("uint round trip failed")
	}
	sch.SetUint(tup, 2, 0x12345) // truncated to 2 bytes
	if sch.GetUint(tup, 2) != 0x2345 {
		t.Errorf("truncated = %#x", sch.GetUint(tup, 2))
	}
	sch.AddUint(tup, 0, 1)
	if sch.GetUint(tup, 0) != 0xDEADBEF0 {
		t.Error("AddUint failed")
	}
	sch.SetBytes(tup, 3, []byte("hi"))
	if string(sch.GetBytes(tup, 3)[:2]) != "hi" || sch.GetBytes(tup, 3)[2] != 0 {
		t.Error("bytes field wrong")
	}
	if _, err := NewSchema(4, 0); err == nil {
		t.Error("zero-width field accepted")
	}
	// Small increments only change the least-significant byte.
	fresh := sch.New()
	sch.SetUint(fresh, 1, 1000)
	before := append([]byte(nil), fresh...)
	sch.AddUint(fresh, 1, 3)
	diff := 0
	for i := range fresh {
		if fresh[i] != before[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("small increment changed %d bytes, want 1", diff)
	}
}

func TestScan(t *testing.T) {
	r := newRig(t, noftl.ModeSLC, core.NewScheme(2, 3), 8, false)
	tbl, _ := r.db.CreateTable("t", "main")
	want := map[string]bool{}
	for i := 0; i < 30; i++ {
		tx := mustBegin(r.db, nil)
		tup := bytes.Repeat([]byte{byte(i + 1)}, 50)
		if _, err := tbl.Insert(tx, tup); err != nil {
			t.Fatal(err)
		}
		want[string(tup)] = true
		tx.Commit()
	}
	seen := 0
	err := tbl.Scan(nil, func(rid core.RID, tup []byte) bool {
		if !want[string(tup)] {
			t.Errorf("unexpected tuple at %v", rid)
		}
		seen++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 30 {
		t.Errorf("scanned %d tuples, want 30", seen)
	}
	// Early stop.
	n := 0
	tbl.Scan(nil, func(core.RID, []byte) bool { n++; return false })
	if n != 1 {
		t.Errorf("early-stop scan visited %d", n)
	}
}
