package engine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"ipa/internal/core"
	"ipa/internal/noftl"
)

// Exec runs a DDL statement in the dialect of the paper's Figure 3:
//
//	CREATE REGION rgIPA (MAX_CHIPS=8, MAX_SIZE=512M, BLOCKS_PER_CHIP=64,
//	                     IPA_MODE=pSLC, SCHEME=2x4, OVERPROVISION=10)
//	CREATE TABLESPACE tsIPA (REGION=rgIPA)
//	CREATE TABLE T (TABLESPACE=tsIPA)
//	CREATE INDEX T_pk (TABLESPACE=tsIPA)
//
// Keys and keywords are case-insensitive; a tablespace is a named alias
// for a region (the paper couples regions to existing logical storage
// structures precisely so that DBAs see only familiar DDL). MAX_SIZE
// accepts K/M/G suffixes and is translated into BLOCKS_PER_CHIP using
// the device geometry; an explicit BLOCKS_PER_CHIP wins.
func (db *DB) Exec(stmt string) error {
	fields := strings.Fields(strings.TrimSuffix(strings.TrimSpace(stmt), ";"))
	if len(fields) < 3 || !strings.EqualFold(fields[0], "CREATE") {
		return fmt.Errorf("engine: unsupported statement %q", stmt)
	}
	kind := strings.ToUpper(fields[1])
	name := fields[2]
	// The options clause is everything inside the outermost parentheses.
	opts, err := parseOptions(stmt)
	if err != nil {
		return err
	}
	switch kind {
	case "REGION":
		if err := checkOptionKeys("REGION", name, opts,
			"IPA_MODE", "SCHEME", "STORAGE", "MAX_CHIPS", "BLOCKS_PER_CHIP",
			"MAX_SIZE", "OVERPROVISION", "GC", "GC_POLICY", "GC_VICTIM"); err != nil {
			return err
		}
		return db.execCreateRegion(name, opts)
	case "TABLESPACE":
		if err := checkOptionKeys("TABLESPACE", name, opts, "REGION"); err != nil {
			return err
		}
		return db.execCreateTablespace(name, opts)
	case "TABLE":
		if err := checkOptionKeys("TABLE", name, opts, "TABLESPACE", "REGION"); err != nil {
			return err
		}
		region, err := db.resolveTablespace(opts)
		if err != nil {
			return err
		}
		_, err = db.CreateTable(name, region)
		return err
	case "INDEX":
		if err := checkOptionKeys("INDEX", name, opts, "TABLESPACE", "REGION", "KIND"); err != nil {
			return err
		}
		region, err := db.resolveTablespace(opts)
		if err != nil {
			return err
		}
		kind := db.opts.IndexKind
		if v, ok := opts["KIND"]; ok {
			kind, err = parseIndexKind(v)
			if err != nil {
				return err
			}
		}
		_, err = db.CreateIndexKind(name, region, kind)
		return err
	default:
		return fmt.Errorf("engine: unsupported CREATE %s", kind)
	}
}

// checkOptionKeys rejects unknown option keys instead of silently
// ignoring them (a typoed STORAGE=... must not quietly fall back to the
// default scheme). The first unknown key in sorted order is reported,
// so the error is deterministic.
func checkOptionKeys(kind, name string, opts map[string]string, allowed ...string) error {
	var unknown []string
	for k := range opts {
		ok := false
		for _, a := range allowed {
			if k == a {
				ok = true
				break
			}
		}
		if !ok {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) == 0 {
		return nil
	}
	sort.Strings(unknown)
	return fmt.Errorf("engine: unknown option %s in CREATE %s %s", unknown[0], kind, name)
}

// parseOptions extracts KEY=VALUE pairs from "(... , ...)".
func parseOptions(stmt string) (map[string]string, error) {
	open := strings.Index(stmt, "(")
	if open < 0 {
		return map[string]string{}, nil
	}
	close := strings.LastIndex(stmt, ")")
	if close < open {
		return nil, fmt.Errorf("engine: unbalanced parentheses in %q", stmt)
	}
	out := make(map[string]string)
	for _, part := range strings.Split(stmt[open+1:close], ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("engine: bad option %q", part)
		}
		out[strings.ToUpper(strings.TrimSpace(kv[0]))] = strings.TrimSpace(kv[1])
	}
	return out, nil
}

func (db *DB) execCreateRegion(name string, opts map[string]string) error {
	rc := noftl.RegionConfig{Name: name}
	geom := db.dev.Geometry()

	if v, ok := opts["IPA_MODE"]; ok {
		m, err := parseIPAMode(v)
		if err != nil {
			return err
		}
		rc.Mode = m
	}
	if v, ok := opts["SCHEME"]; ok {
		s, err := parseScheme(v)
		if err != nil {
			return err
		}
		rc.Scheme = s
	}
	if v, ok := opts["STORAGE"]; ok {
		st, err := parseStorage(v)
		if err != nil {
			return err
		}
		rc.Storage = st
	}
	chips := geom.Chips
	if v, ok := opts["MAX_CHIPS"]; ok {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return fmt.Errorf("engine: bad MAX_CHIPS %q", v)
		}
		if n < chips {
			chips = n
		}
	}
	if chips < geom.Chips {
		rc.Chips = make([]int, chips)
		for i := range rc.Chips {
			rc.Chips[i] = i
		}
	}
	switch {
	case opts["BLOCKS_PER_CHIP"] != "":
		n, err := strconv.Atoi(opts["BLOCKS_PER_CHIP"])
		if err != nil || n < 1 {
			return fmt.Errorf("engine: bad BLOCKS_PER_CHIP %q", opts["BLOCKS_PER_CHIP"])
		}
		rc.BlocksPerChip = n
	case opts["MAX_SIZE"] != "":
		bytes, err := parseSize(opts["MAX_SIZE"])
		if err != nil {
			return err
		}
		perBlock := int64(geom.PagesPerBlock) * int64(geom.PageSize)
		blocks := int(bytes / (int64(chips) * perBlock))
		if blocks < 1 {
			blocks = 1
		}
		rc.BlocksPerChip = blocks
	default:
		return fmt.Errorf("engine: region %s needs MAX_SIZE or BLOCKS_PER_CHIP", name)
	}
	if v, ok := opts["OVERPROVISION"]; ok {
		pct, err := strconv.ParseFloat(v, 64)
		if err != nil || pct <= 0 || pct >= 90 {
			return fmt.Errorf("engine: bad OVERPROVISION %q", v)
		}
		rc.OverProvision = pct / 100
	}
	for _, key := range []string{"GC", "GC_POLICY"} {
		if v, ok := opts[key]; ok {
			p, err := parseGCPolicy(key, v)
			if err != nil {
				return err
			}
			rc.GCPolicy = p
		}
	}
	if v, ok := opts["GC_VICTIM"]; ok {
		gv, err := parseGCVictim(v)
		if err != nil {
			return err
		}
		rc.GCVictim = gv
	}
	if _, err := db.dev.CreateRegion(rc); err != nil {
		return err
	}
	_, err := db.AttachRegion(name)
	return err
}

// parseIPAMode reads an IPA_MODE value.
func parseIPAMode(v string) (noftl.IPAMode, error) {
	switch strings.ToLower(v) {
	case "none", "off":
		return noftl.ModeNone, nil
	case "slc":
		return noftl.ModeSLC, nil
	case "pslc":
		return noftl.ModePSLC, nil
	case "odd-mlc", "oddmlc", "odd_mlc":
		return noftl.ModeOddMLC, nil
	default:
		return 0, fmt.Errorf("engine: unknown IPA_MODE %q (want NONE, SLC, PSLC or ODD-MLC)", v)
	}
}

// parseIndexKind reads a KIND value selecting the index latching
// implementation (CREATE INDEX ... KIND=olc).
func parseIndexKind(v string) (IndexKind, error) {
	switch strings.ToLower(v) {
	case "coarse":
		return IndexCoarse, nil
	case "olc":
		return IndexOLC, nil
	default:
		return 0, fmt.Errorf("engine: unknown index KIND %q (want COARSE or OLC)", v)
	}
}

// parseStorage reads a STORAGE value selecting the region's
// write-reduction scheme.
func parseStorage(v string) (noftl.Storage, error) {
	switch strings.ToLower(v) {
	case "ipa":
		return noftl.StorageIPA, nil
	case "pdl":
		return noftl.StoragePDL, nil
	case "oop":
		return noftl.StorageOOP, nil
	default:
		return 0, fmt.Errorf("engine: unknown STORAGE %q (want IPA, PDL or OOP)", v)
	}
}

// parseGCPolicy reads a GC / GC_POLICY value; key is echoed into the
// error so the message names the option the user actually wrote.
func parseGCPolicy(key, v string) (noftl.GCPolicy, error) {
	switch strings.ToLower(v) {
	case "foreground", "inline":
		return noftl.GCForeground, nil
	case "background":
		return noftl.GCBackground, nil
	default:
		return 0, fmt.Errorf("engine: unknown %s %q (want FOREGROUND or BACKGROUND)", key, v)
	}
}

// parseGCVictim reads a GC_VICTIM value selecting the victim policy.
func parseGCVictim(v string) (noftl.GCVictim, error) {
	switch strings.ToLower(v) {
	case "greedy":
		return noftl.GreedyVictim, nil
	case "cost-benefit", "costbenefit", "cost_benefit":
		return noftl.CostBenefitVictim, nil
	default:
		return 0, fmt.Errorf("engine: unknown GC_VICTIM %q (want GREEDY or COST-BENEFIT)", v)
	}
}

// parseScheme reads "NxM" or "NxMxV".
func parseScheme(v string) (core.Scheme, error) {
	parts := strings.Split(strings.ToLower(v), "x")
	if len(parts) != 2 && len(parts) != 3 {
		return core.Scheme{}, fmt.Errorf("engine: bad SCHEME %q (want NxM)", v)
	}
	nums := make([]int, len(parts))
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return core.Scheme{}, fmt.Errorf("engine: bad SCHEME %q: %v", v, err)
		}
		nums[i] = n
	}
	s := core.NewScheme(nums[0], nums[1])
	if len(nums) == 3 {
		s.V = nums[2]
	}
	if err := s.Validate(); err != nil {
		return core.Scheme{}, err
	}
	return s, nil
}

// parseSize reads "512M"-style sizes.
func parseSize(v string) (int64, error) {
	v = strings.ToUpper(strings.TrimSpace(v))
	mult := int64(1)
	switch {
	case strings.HasSuffix(v, "K"):
		mult, v = 1<<10, v[:len(v)-1]
	case strings.HasSuffix(v, "M"):
		mult, v = 1<<20, v[:len(v)-1]
	case strings.HasSuffix(v, "G"):
		mult, v = 1<<30, v[:len(v)-1]
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("engine: bad size %q", v)
	}
	return n * mult, nil
}

func (db *DB) execCreateTablespace(name string, opts map[string]string) error {
	region, ok := opts["REGION"]
	if !ok {
		return fmt.Errorf("engine: tablespace %s needs REGION=...", name)
	}
	db.catMu.Lock()
	defer db.catMu.Unlock()
	if db.dev.Region(region) == nil {
		return fmt.Errorf("%w: %q", ErrNoRegion, region)
	}
	if db.tablespaces == nil {
		db.tablespaces = make(map[string]string)
	}
	if _, dup := db.tablespaces[name]; dup {
		return fmt.Errorf("engine: tablespace %q already exists", name)
	}
	db.tablespaces[name] = region
	return nil
}

// resolveTablespace maps a TABLESPACE= (or REGION=) option to a region
// name.
func (db *DB) resolveTablespace(opts map[string]string) (string, error) {
	if r, ok := opts["REGION"]; ok {
		return r, nil
	}
	ts, ok := opts["TABLESPACE"]
	if !ok {
		return "", fmt.Errorf("engine: need TABLESPACE= or REGION=")
	}
	db.catMu.Lock()
	defer db.catMu.Unlock()
	region, ok := db.tablespaces[ts]
	if !ok {
		return "", fmt.Errorf("engine: no tablespace %q", ts)
	}
	return region, nil
}
