package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"ipa/internal/buffer"
	"ipa/internal/core"
	"ipa/internal/page"
	"ipa/internal/sim"
)

// CoarseIndex is a page-based B+tree mapping uint64 keys to RIDs. Index
// pages live in a region and move through the same buffer pool and flush
// path as heap pages, so index updates also benefit from In-Place
// Appends ("frequently updated tables *or indices*", paper Sec. 1).
//
// The index is a non-logged structure: it is rebuilt from its table
// after restart recovery (a common recovery strategy for secondary
// structures), which keeps the WAL focused on tuple data.
//
// Concurrency: each index carries its own reader/writer tree latch —
// lookups and range scans run shared (in parallel with each other and
// with all heap operations), mutations run exclusive. No latch crabbing:
// the per-index latch is coarse but never blocks operations on other
// indexes, tables, or regions. Tree pages are pinned during node access,
// which keeps the flush paths (that latch only unpinned frames) off
// them. The coarse tree is the paper-fidelity default; OLCIndex is the
// scalable alternative (see index.go and DESIGN.md "Index latching").
type CoarseIndex struct {
	db   *DB
	st   *PageStore
	name string

	treeMu sync.RWMutex
	root   core.PageID

	stats indexCounters
}

// Node layout, written directly into the page body:
//
//	leaf (FlagIndex|FlagLeaf):     count:uint16, entries[count]{key:u64, page:u64, slot:u16}
//	internal (FlagIndex):          count:uint16, child0:u64, entries[count]{key:u64, child:u64}
//
// An internal node routes key < entries[0].key to child0, and key ≥
// entries[i].key (last such i) to entries[i].child. Leaves are chained
// via NextPage for range scans.
const (
	leafEntrySize = 18
	intEntrySize  = 16
	nodeCountOff  = page.HeaderSize
	nodeBodyOff   = page.HeaderSize + 2
)

// ErrKeyExists is returned on duplicate insert.
var ErrKeyExists = errors.New("engine: key already in index")

// Name returns the index name.
func (ix *CoarseIndex) Name() string { return ix.name }

// Root returns the current root page id. Advisory: for tests and tools;
// operations resolve the root themselves under the tree latch (the
// Index interface deliberately omits Root, see index.go).
func (ix *CoarseIndex) Root() core.PageID {
	ix.treeMu.RLock()
	defer ix.treeMu.RUnlock()
	return ix.root
}

// Stats snapshots the operation counters. Restarts and LatchWaits are
// always zero for the coarse tree.
func (ix *CoarseIndex) Stats() IndexStats { return ix.stats.snapshot(IndexCoarse) }

// --- node accessors (operate on raw frame data) -----------------------

type node struct {
	fr   *buffer.Frame
	pg   *page.Page
	leaf bool
	cap  int // max entries
}

// attachNode decodes a frame as a tree node. Both tree kinds share it
// (and the entire on-page node layout). The caller must hold the frame
// pinned; under OLC it must additionally hold the frame latch, since
// page.Attach reads header bytes.
func attachNode(st *PageStore, fr *buffer.Frame) (*node, error) {
	pg, err := page.Attach(fr.Data, st.layout)
	if err != nil {
		return nil, err
	}
	n := &node{fr: fr, pg: pg, leaf: pg.Flags()&page.FlagLeaf != 0}
	body := st.layout.DeltaAreaStart() - nodeBodyOff
	if n.leaf {
		n.cap = body / leafEntrySize
	} else {
		n.cap = (body - 8) / intEntrySize
	}
	return n, nil
}

func (ix *CoarseIndex) node(fr *buffer.Frame) (*node, error) {
	return attachNode(ix.st, fr)
}

func (n *node) count() int {
	return int(binary.LittleEndian.Uint16(n.fr.Data[nodeCountOff:]))
}

func (n *node) setCount(c int) {
	binary.LittleEndian.PutUint16(n.fr.Data[nodeCountOff:], uint16(c))
}

// leaf entries
func (n *node) leafKey(i int) uint64 {
	off := nodeBodyOff + i*leafEntrySize
	return binary.LittleEndian.Uint64(n.fr.Data[off:])
}

func (n *node) leafRID(i int) core.RID {
	off := nodeBodyOff + i*leafEntrySize
	return core.RID{
		Page: core.PageID(binary.LittleEndian.Uint64(n.fr.Data[off+8:])),
		Slot: binary.LittleEndian.Uint16(n.fr.Data[off+16:]),
	}
}

func (n *node) setLeaf(i int, key uint64, rid core.RID) {
	off := nodeBodyOff + i*leafEntrySize
	binary.LittleEndian.PutUint64(n.fr.Data[off:], key)
	binary.LittleEndian.PutUint64(n.fr.Data[off+8:], uint64(rid.Page))
	binary.LittleEndian.PutUint16(n.fr.Data[off+16:], rid.Slot)
}

// internal entries
func (n *node) child0() core.PageID {
	return core.PageID(binary.LittleEndian.Uint64(n.fr.Data[nodeBodyOff:]))
}

func (n *node) setChild0(id core.PageID) {
	binary.LittleEndian.PutUint64(n.fr.Data[nodeBodyOff:], uint64(id))
}

func (n *node) intKey(i int) uint64 {
	off := nodeBodyOff + 8 + i*intEntrySize
	return binary.LittleEndian.Uint64(n.fr.Data[off:])
}

func (n *node) intChild(i int) core.PageID {
	off := nodeBodyOff + 8 + i*intEntrySize
	return core.PageID(binary.LittleEndian.Uint64(n.fr.Data[off+8:]))
}

func (n *node) setInt(i int, key uint64, child core.PageID) {
	off := nodeBodyOff + 8 + i*intEntrySize
	binary.LittleEndian.PutUint64(n.fr.Data[off:], key)
	binary.LittleEndian.PutUint64(n.fr.Data[off+8:], uint64(child))
}

// leafSearch returns the position of key (found) or its insertion point.
func (n *node) leafSearch(key uint64) (pos int, found bool) {
	lo, hi := 0, n.count()
	for lo < hi {
		mid := (lo + hi) / 2
		k := n.leafKey(mid)
		if k == key {
			return mid, true
		}
		if k < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, false
}

// route returns the child to follow for key in an internal node.
func (n *node) route(key uint64) core.PageID {
	lo, hi := 0, n.count()
	for lo < hi {
		mid := (lo + hi) / 2
		if n.intKey(mid) <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return n.child0()
	}
	return n.intChild(lo - 1)
}

// --- operations --------------------------------------------------------

// Lookup returns the RID stored under key.
func (ix *CoarseIndex) Lookup(w *sim.Worker, key uint64) (core.RID, bool, error) {
	ix.stats.lookups.Add(1)
	db := ix.db
	db.stateMu.RLock()
	defer db.stateMu.RUnlock()
	ix.treeMu.RLock()
	defer ix.treeMu.RUnlock()
	cur := ix.root
	for {
		fr, err := db.pool.Get(w, cur)
		if err != nil {
			return core.RID{}, false, err
		}
		n, err := ix.node(fr)
		if err != nil {
			db.pool.Unpin(w, fr, false, 0)
			return core.RID{}, false, err
		}
		if n.leaf {
			pos, found := n.leafSearch(key)
			var rid core.RID
			if found {
				rid = n.leafRID(pos)
			}
			db.pool.Unpin(w, fr, false, 0)
			return rid, found, nil
		}
		next := n.route(key)
		db.pool.Unpin(w, fr, false, 0)
		cur = next
	}
}

// Insert adds key → rid. Duplicate keys are rejected.
func (ix *CoarseIndex) Insert(w *sim.Worker, key uint64, rid core.RID) error {
	ix.stats.inserts.Add(1)
	db := ix.db
	db.stateMu.RLock()
	defer db.stateMu.RUnlock()
	ix.treeMu.Lock()
	defer ix.treeMu.Unlock()
	sepKey, newChild, err := ix.insertRec(w, ix.root, key, rid)
	if err != nil {
		return err
	}
	if newChild == core.InvalidPageID {
		return nil
	}
	// Root split: grow the tree by one level.
	fr, pg, err := db.newPage(w, ix.st, 0, page.FlagIndex)
	if err != nil {
		return err
	}
	n, err := ix.node(fr)
	if err != nil {
		db.pool.Unpin(w, fr, false, 0)
		return err
	}
	n.setChild0(ix.root)
	n.setInt(0, sepKey, newChild)
	n.setCount(1)
	ix.root = pg.ID()
	return db.pool.Unpin(w, fr, true, db.log.Head())
}

// insertRec descends to the leaf; on split it returns the separator key
// and the new right sibling's id.
func (ix *CoarseIndex) insertRec(w *sim.Worker, nodeID core.PageID, key uint64, rid core.RID) (uint64, core.PageID, error) {
	db := ix.db
	fr, err := db.pool.Get(w, nodeID)
	if err != nil {
		return 0, core.InvalidPageID, err
	}
	n, err := ix.node(fr)
	if err != nil {
		db.pool.Unpin(w, fr, false, 0)
		return 0, core.InvalidPageID, err
	}
	if n.leaf {
		pos, found := n.leafSearch(key)
		if found {
			db.pool.Unpin(w, fr, false, 0)
			return 0, core.InvalidPageID, fmt.Errorf("%w: %d", ErrKeyExists, key)
		}
		if n.count() < n.cap {
			insertLeafAt(n, pos, key, rid)
			return 0, core.InvalidPageID, db.pool.Unpin(w, fr, true, db.log.Head())
		}
		// Split the leaf.
		rfr, rpg, err := db.newPage(w, ix.st, 0, page.FlagIndex|page.FlagLeaf)
		if err != nil {
			db.pool.Unpin(w, fr, false, 0)
			return 0, core.InvalidPageID, err
		}
		rn, err := ix.node(rfr)
		if err != nil {
			db.pool.Unpin(w, fr, false, 0)
			db.pool.Unpin(w, rfr, false, 0)
			return 0, core.InvalidPageID, err
		}
		mid := n.count() / 2
		moved := n.count() - mid
		for i := 0; i < moved; i++ {
			rn.setLeaf(i, n.leafKey(mid+i), n.leafRID(mid+i))
		}
		rn.setCount(moved)
		n.setCount(mid)
		rn.pg.SetNextPage(n.pg.NextPage())
		n.pg.SetNextPage(rpg.ID())
		sep := rn.leafKey(0)
		if key >= sep {
			p, _ := rn.leafSearch(key)
			insertLeafAt(rn, p, key, rid)
		} else {
			p, _ := n.leafSearch(key)
			insertLeafAt(n, p, key, rid)
		}
		head := db.log.Head()
		if err := db.pool.Unpin(w, fr, true, head); err != nil {
			return 0, core.InvalidPageID, err
		}
		if err := db.pool.Unpin(w, rfr, true, head); err != nil {
			return 0, core.InvalidPageID, err
		}
		return sep, rpg.ID(), nil
	}

	child := n.route(key)
	// Release the parent pin during descent (no latch coupling needed:
	// mutations hold the tree latch exclusively).
	db.pool.Unpin(w, fr, false, 0)
	sepKey, newChild, err := ix.insertRec(w, child, key, rid)
	if err != nil || newChild == core.InvalidPageID {
		return 0, core.InvalidPageID, err
	}
	// Re-pin the parent to install the new separator.
	fr, err = db.pool.Get(w, nodeID)
	if err != nil {
		return 0, core.InvalidPageID, err
	}
	n, err = ix.node(fr)
	if err != nil {
		db.pool.Unpin(w, fr, false, 0)
		return 0, core.InvalidPageID, err
	}
	if n.count() < n.cap {
		insertIntAt(n, sepKey, newChild)
		return 0, core.InvalidPageID, db.pool.Unpin(w, fr, true, db.log.Head())
	}
	// Split the internal node.
	rfr, rpg, err := db.newPage(w, ix.st, 0, page.FlagIndex)
	if err != nil {
		db.pool.Unpin(w, fr, false, 0)
		return 0, core.InvalidPageID, err
	}
	rn, err := ix.node(rfr)
	if err != nil {
		db.pool.Unpin(w, fr, false, 0)
		db.pool.Unpin(w, rfr, false, 0)
		return 0, core.InvalidPageID, err
	}
	mid := n.count() / 2
	upKey := n.intKey(mid)
	rn.setChild0(n.intChild(mid))
	cnt := 0
	for i := mid + 1; i < n.count(); i++ {
		rn.setInt(cnt, n.intKey(i), n.intChild(i))
		cnt++
	}
	rn.setCount(cnt)
	n.setCount(mid)
	if sepKey >= upKey {
		insertIntAt(rn, sepKey, newChild)
	} else {
		insertIntAt(n, sepKey, newChild)
	}
	head := db.log.Head()
	if err := db.pool.Unpin(w, fr, true, head); err != nil {
		return 0, core.InvalidPageID, err
	}
	if err := db.pool.Unpin(w, rfr, true, head); err != nil {
		return 0, core.InvalidPageID, err
	}
	return upKey, rpg.ID(), nil
}

func insertLeafAt(n *node, pos int, key uint64, rid core.RID) {
	for i := n.count(); i > pos; i-- {
		n.setLeaf(i, n.leafKey(i-1), n.leafRID(i-1))
	}
	n.setLeaf(pos, key, rid)
	n.setCount(n.count() + 1)
}

func insertIntAt(n *node, key uint64, child core.PageID) {
	pos := 0
	for pos < n.count() && n.intKey(pos) < key {
		pos++
	}
	for i := n.count(); i > pos; i-- {
		n.setInt(i, n.intKey(i-1), n.intChild(i-1))
	}
	n.setInt(pos, key, child)
	n.setCount(n.count() + 1)
}

// Update changes the RID stored under an existing key (e.g. after a
// tuple relocation).
func (ix *CoarseIndex) Update(w *sim.Worker, key uint64, rid core.RID) error {
	ix.stats.updates.Add(1)
	db := ix.db
	db.stateMu.RLock()
	defer db.stateMu.RUnlock()
	ix.treeMu.Lock()
	defer ix.treeMu.Unlock()
	cur := ix.root
	for {
		fr, err := db.pool.Get(w, cur)
		if err != nil {
			return err
		}
		n, err := ix.node(fr)
		if err != nil {
			db.pool.Unpin(w, fr, false, 0)
			return err
		}
		if n.leaf {
			pos, found := n.leafSearch(key)
			if !found {
				db.pool.Unpin(w, fr, false, 0)
				return fmt.Errorf("engine: index %q has no key %d", ix.name, key)
			}
			n.setLeaf(pos, key, rid)
			return db.pool.Unpin(w, fr, true, db.log.Head())
		}
		next := n.route(key)
		db.pool.Unpin(w, fr, false, 0)
		cur = next
	}
}

// Delete removes a key (lazy deletion: leaves are never merged, which is
// adequate for the OLTP workloads where deletes are rare).
func (ix *CoarseIndex) Delete(w *sim.Worker, key uint64) (bool, error) {
	ix.stats.deletes.Add(1)
	db := ix.db
	db.stateMu.RLock()
	defer db.stateMu.RUnlock()
	ix.treeMu.Lock()
	defer ix.treeMu.Unlock()
	cur := ix.root
	for {
		fr, err := db.pool.Get(w, cur)
		if err != nil {
			return false, err
		}
		n, err := ix.node(fr)
		if err != nil {
			db.pool.Unpin(w, fr, false, 0)
			return false, err
		}
		if n.leaf {
			pos, found := n.leafSearch(key)
			if !found {
				db.pool.Unpin(w, fr, false, 0)
				return false, nil
			}
			for i := pos; i < n.count()-1; i++ {
				n.setLeaf(i, n.leafKey(i+1), n.leafRID(i+1))
			}
			n.setCount(n.count() - 1)
			return true, db.pool.Unpin(w, fr, true, db.log.Head())
		}
		next := n.route(key)
		db.pool.Unpin(w, fr, false, 0)
		cur = next
	}
}

// Range visits keys in [lo, hi] in order until fn returns false. The
// tree latch is released while fn runs, so the callback may perform
// table reads; keys inserted concurrently may or may not be seen.
func (ix *CoarseIndex) Range(w *sim.Worker, lo, hi uint64, fn func(key uint64, rid core.RID) bool) error {
	ix.stats.scans.Add(1)
	db := ix.db
	// Descend to the leaf containing lo.
	db.stateMu.RLock()
	ix.treeMu.RLock()
	cur := ix.root
	for {
		fr, err := db.pool.Get(w, cur)
		if err != nil {
			ix.treeMu.RUnlock()
			db.stateMu.RUnlock()
			return err
		}
		n, err := ix.node(fr)
		if err != nil {
			db.pool.Unpin(w, fr, false, 0)
			ix.treeMu.RUnlock()
			db.stateMu.RUnlock()
			return err
		}
		if n.leaf {
			db.pool.Unpin(w, fr, false, 0)
			break
		}
		next := n.route(lo)
		db.pool.Unpin(w, fr, false, 0)
		cur = next
	}
	ix.treeMu.RUnlock()
	db.stateMu.RUnlock()
	// Walk the leaf chain, buffering each leaf's entries and invoking the
	// callback outside the latch.
	for cur != core.InvalidPageID {
		db.stateMu.RLock()
		ix.treeMu.RLock()
		fr, err := db.pool.Get(w, cur)
		if err != nil {
			ix.treeMu.RUnlock()
			db.stateMu.RUnlock()
			return err
		}
		n, err := ix.node(fr)
		if err != nil {
			db.pool.Unpin(w, fr, false, 0)
			ix.treeMu.RUnlock()
			db.stateMu.RUnlock()
			return err
		}
		type kv struct {
			k uint64
			r core.RID
		}
		var items []kv
		done := false
		start, _ := n.leafSearch(lo)
		for i := start; i < n.count(); i++ {
			k := n.leafKey(i)
			if k > hi {
				done = true
				break
			}
			items = append(items, kv{k, n.leafRID(i)})
		}
		next := n.pg.NextPage()
		db.pool.Unpin(w, fr, false, 0)
		ix.treeMu.RUnlock()
		db.stateMu.RUnlock()
		for _, it := range items {
			if !fn(it.k, it.r) {
				return nil
			}
		}
		if done {
			return nil
		}
		cur = next
	}
	return nil
}
