package engine

import (
	"testing"

	"ipa/internal/core"
	"ipa/internal/flash"
	"ipa/internal/noftl"
)

// TestRecoverMappingAfterPowerLoss wipes the NoFTL mapping entirely (a
// power loss losing device metadata, not just DB buffers) and rebuilds it
// by scanning flash: the newest copy of each logical page — determined by
// the reconstructed PageLSN, so delta-records participate — must win over
// stale pre-GC copies.
func TestRecoverMappingAfterPowerLoss(t *testing.T) {
	r := newRig(t, noftl.ModeSLC, core.NewScheme(2, 4), 16, false)
	tbl, _ := r.db.CreateTable("t", "main")
	sch, _ := NewSchema(8, 8, 104) // ~120B rows: ~3 per 512B page

	// Rows with several overwrite generations so flash holds stale copies.
	var rids []core.RID
	for i := 0; i < 12; i++ {
		tx := mustBegin(r.db, nil)
		tup := sch.New()
		sch.SetUint(tup, 0, uint64(i))
		rid, err := tbl.Insert(tx, tup)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
		tx.Commit()
	}
	r.db.FlushAll(nil)
	for gen := 1; gen <= 3; gen++ {
		for i, rid := range rids {
			tx := mustBegin(r.db, nil)
			cur, _ := tbl.Read(nil, rid)
			sch.SetUint(cur, 1, uint64(gen*100+i))
			if err := tbl.Update(tx, rid, cur); err != nil {
				t.Fatal(err)
			}
			tx.Commit()
			r.db.FlushAll(nil) // some of these land as delta-records
		}
	}
	st := r.db.Store("main")
	if st.Stats().FlushesDelta == 0 {
		t.Fatal("precondition: no delta writes")
	}

	// Snapshot the true mapping, then destroy it.
	want := map[core.PageID]flash.PPN{}
	for _, rid := range rids {
		ppn, ok := st.Region().PPNOf(rid.Page)
		if !ok {
			t.Fatalf("page %d unmapped", rid.Page)
		}
		want[rid.Page] = ppn
	}
	if err := st.Region().Adopt(map[core.PageID]flash.PPN{}); err != nil {
		t.Fatal(err)
	}
	if st.Region().MappedPages() != 0 {
		t.Fatal("mapping not wiped")
	}
	r.db.SimulateCrash() // buffers go too

	// Rebuild from flash.
	n, err := st.RecoverMapping(nil)
	if err != nil {
		t.Fatal(err)
	}
	if n < len(want) {
		t.Fatalf("recovered %d pages, want ≥ %d", n, len(want))
	}
	if len(want) < 4 {
		t.Fatalf("test sizing: rows span only %d pages", len(want))
	}
	for id, ppn := range want {
		got, ok := st.Region().PPNOf(id)
		if !ok {
			t.Fatalf("page %d not recovered", id)
		}
		if got != ppn {
			t.Errorf("page %d recovered at ppn %d, want %d (stale copy won?)", id, got, ppn)
		}
	}
	// All data readable with the final generation's values.
	for i, rid := range rids {
		got, err := tbl.Read(nil, rid)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if v := sch.GetUint(got, 1); v != uint64(300+i) {
			t.Errorf("row %d = %d, want %d", i, v, 300+i)
		}
	}
	// The region keeps working after adoption: more writes and GC churn.
	for round := 0; round < 3; round++ {
		for i, rid := range rids {
			tx := mustBegin(r.db, nil)
			cur, _ := tbl.Read(nil, rid)
			sch.SetUint(cur, 1, uint64(1000+round*100+i))
			if err := tbl.Update(tx, rid, cur); err != nil {
				t.Fatalf("post-adopt update: %v", err)
			}
			tx.Commit()
			r.db.FlushAll(nil)
		}
	}
	for i, rid := range rids {
		got, _ := tbl.Read(nil, rid)
		if v := sch.GetUint(got, 1); v != uint64(1200+i) {
			t.Errorf("post-adopt row %d = %d", i, v)
		}
	}
}

// TestAdoptValidation rejects foreign pages and over-capacity mappings.
func TestAdoptValidation(t *testing.T) {
	r := newRig(t, noftl.ModeSLC, core.NewScheme(2, 4), 8, false)
	st, err := r.db.AttachRegion("main")
	if err != nil {
		t.Fatal(err)
	}
	huge := flash.PPN(1 << 40)
	if err := st.Region().Adopt(map[core.PageID]flash.PPN{1: huge}); err == nil {
		t.Error("foreign ppn accepted")
	}
}
