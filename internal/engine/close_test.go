package engine

import (
	"errors"
	"sync"
	"testing"
)

// TestErrClosedDeterministic: once Close has returned, Begin, Checkpoint
// and Stats must all fail with ErrClosed — no racing the maintenance
// drain. The server layer's graceful shutdown relies on this ordering.
func TestErrClosedDeterministic(t *testing.T) {
	db := newTwoRegionRig(t, 32)
	tbl, err := db.CreateTable("t", "r1")
	if err != nil {
		t.Fatal(err)
	}
	tx := mustBegin(db, nil)
	if _, err := tbl.Insert(tx, []byte("before close, all fine")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := db.Begin(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Begin after Close: %v, want ErrClosed", err)
	}
	if err := db.Checkpoint(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Checkpoint after Close: %v, want ErrClosed", err)
	}
	if _, err := db.Stats(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Stats after Close: %v, want ErrClosed", err)
	}
}

// TestCloseIdempotent: repeated Close calls return the first outcome and
// do not double-drain the maintenance goroutine (with background
// maintenance enabled the second drain would close a closed channel).
func TestCloseIdempotent(t *testing.T) {
	g := rigGeometry()
	db := newRigWithOptions(t, g, Options{
		PageSize: g.PageSize, BufferFrames: 32,
		BackgroundMaintenance: true, DirtyThreshold: 2.0,
	})
	for i := 0; i < 3; i++ {
		if err := db.Close(); err != nil {
			t.Fatalf("Close #%d: %v", i+1, err)
		}
	}
	// Concurrent Close from many goroutines must also be safe.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := db.Close(); err != nil {
				t.Errorf("concurrent Close: %v", err)
			}
		}()
	}
	wg.Wait()
}

// TestSimulateCrashReopens: SimulateCrash models a process restart, so a
// closed instance comes back open (maintenance restarted) and normal
// work resumes after Recover.
func TestSimulateCrashReopens(t *testing.T) {
	g := rigGeometry()
	db := newRigWithOptions(t, g, Options{
		PageSize: g.PageSize, BufferFrames: 32,
		BackgroundMaintenance: true, DirtyThreshold: 2.0,
	})
	tbl, err := db.CreateTable("t", "r1")
	if err != nil {
		t.Fatal(err)
	}
	tx := mustBegin(db, nil)
	rid, err := tbl.Insert(tx, []byte("survives the close/crash/recover cycle"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Begin(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Begin after Close: %v, want ErrClosed", err)
	}
	if err := db.SimulateCrash(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Recover(nil); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	got, err := tbl.Read(nil, rid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "survives the close/crash/recover cycle" {
		t.Fatalf("recovered tuple = %q", got)
	}
	tx = mustBegin(db, nil) // reopened: Begin works again
	if _, err := tbl.Insert(tx, []byte("new work after reopen")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Stats(); err != nil {
		t.Fatalf("Stats after reopen: %v", err)
	}
	if err := db.Close(); err != nil { // and Close works a second life too
		t.Fatal(err)
	}
}

// TestBeginCloseRace: hammer Begin from many goroutines while Close
// lands in the middle. Every Begin must either succeed fully (and the
// transaction remain abortable) or fail with ErrClosed — nothing in
// between, and no race-detector findings.
func TestBeginCloseRace(t *testing.T) {
	db := newTwoRegionRig(t, 32)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				tx, err := db.Begin(nil)
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("Begin: %v", err)
					}
					return
				}
				if err := tx.Abort(); err != nil {
					t.Errorf("Abort: %v", err)
				}
			}
		}()
	}
	close(start)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if _, err := db.Begin(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Begin after Close returned: %v, want ErrClosed", err)
	}
}
