package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"ipa/internal/core"
	"ipa/internal/noftl"
)

// TestCrashConsistencyFuzz runs randomized transaction streams against
// the engine, crashes at arbitrary points (with arbitrary subsets of
// dirty pages stolen to flash as delta-records or page writes), recovers,
// and verifies that exactly the committed state survives. This is the
// strongest form of the paper's Sec. 6.2 claim: IPA changes the write
// path, never the recovery contract.
func TestCrashConsistencyFuzz(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runCrashFuzz(t, seed)
		})
	}
}

func runCrashFuzz(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	r := newRig(t, noftl.ModeSLC, core.NewScheme(2, 4), 24, false)
	tbl, err := r.db.CreateTable("t", "main")
	if err != nil {
		t.Fatal(err)
	}
	sch, _ := NewSchema(8, 8)

	// committed mirrors exactly the state of committed transactions.
	committed := map[core.RID]uint64{}

	// Base rows.
	tx := mustBegin(r.db, nil)
	var rids []core.RID
	for i := 0; i < 30; i++ {
		tup := sch.New()
		sch.SetUint(tup, 0, uint64(i))
		rid, err := tbl.Insert(tx, tup)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
		committed[rid] = 0
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	r.db.FlushAll(nil)

	for round := 0; round < 6; round++ {
		// A batch of transactions; each either commits (mirrored), aborts,
		// or is left open across the crash (a loser). Write-write
		// conflicts with still-open transactions fail with
		// ErrLockConflict (no-wait 2PL) and abort the whole transaction.
		var open []*Tx
		for i := 0; i < 10; i++ {
			tx := mustBegin(r.db, nil)
			mods := map[core.RID]uint64{}
			nOps := 1 + rng.Intn(4)
			conflicted := false
			for j := 0; j < nOps; j++ {
				rid := rids[rng.Intn(len(rids))]
				cur, err := tbl.Read(nil, rid)
				if err != nil {
					t.Fatal(err)
				}
				nv := rng.Uint64() % 1_000_000
				sch.SetUint(cur, 1, nv)
				if err := tbl.Update(tx, rid, cur); err != nil {
					if errors.Is(err, ErrLockConflict) {
						conflicted = true
						break
					}
					t.Fatal(err)
				}
				mods[rid] = nv
			}
			if conflicted {
				if err := tx.Abort(); err != nil {
					t.Fatal(err)
				}
				continue
			}
			switch rng.Intn(4) {
			case 0: // leave open across the crash: a loser
				open = append(open, tx)
			case 1: // explicit abort before the crash
				if err := tx.Abort(); err != nil {
					t.Fatal(err)
				}
			default: // commit: becomes the expected state
				if err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
				for rid, v := range mods {
					committed[rid] = v
				}
			}
		}
		_ = open
		// Steal a random subset of dirty pages to flash (some as
		// delta-records, some out-of-place) before the crash.
		if rng.Intn(2) == 0 {
			if _, err := r.db.Pool().FlushOldest(nil, rng.Intn(16)); err != nil {
				t.Fatal(err)
			}
		}
		// CRASH + recover.
		if err := r.db.SimulateCrash(); err != nil {
			t.Fatal(err)
		}
		if _, err := r.db.Recover(nil); err != nil {
			t.Fatal(err)
		}
		// Verify: every row holds exactly its committed value. Note that
		// aborted/loser values must be gone even if they reached flash.
		for _, rid := range rids {
			got, err := tbl.Read(nil, rid)
			if err != nil {
				t.Fatalf("round %d: read %v: %v", round, rid, err)
			}
			if v := sch.GetUint(got, 1); v != committed[rid] {
				t.Fatalf("round %d: row %v = %d, want %d", round, rid, v, committed[rid])
			}
		}
	}
}

// TestCrashDuringHeavyStealing crashes while most of the buffer is being
// recycled (tiny pool, constant stealing), the regime where delta-records
// of uncommitted transactions are guaranteed to be on flash.
func TestCrashDuringHeavyStealing(t *testing.T) {
	r := newRig(t, noftl.ModeSLC, core.NewScheme(2, 4), 4, false)
	tbl, _ := r.db.CreateTable("t", "main")
	sch, _ := NewSchema(8, 120)
	tx := mustBegin(r.db, nil)
	var rids []core.RID
	for i := 0; i < 40; i++ {
		tup := sch.New()
		sch.SetUint(tup, 0, uint64(i))
		rid, err := tbl.Insert(tx, tup)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	tx.Commit()

	// One loser touching every row; the 4-frame pool steals constantly.
	loser := mustBegin(r.db, nil)
	for _, rid := range rids {
		cur, err := tbl.Read(nil, rid)
		if err != nil {
			t.Fatal(err)
		}
		sch.SetUint(cur, 1, 666)
		if err := tbl.Update(loser, rid, cur); err != nil {
			t.Fatal(err)
		}
	}
	if r.db.Store("main").Region().Stats().HostWrites() == 0 {
		t.Fatal("nothing was stolen to flash")
	}
	r.db.SimulateCrash()
	rep, err := r.db.Recover(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UndoneTxs != 1 {
		t.Errorf("UndoneTxs = %d", rep.UndoneTxs)
	}
	for i, rid := range rids {
		got, err := tbl.Read(nil, rid)
		if err != nil {
			t.Fatal(err)
		}
		if sch.GetUint(got, 1) != 0 {
			t.Errorf("row %d = %d, want 0 (loser undone)", i, sch.GetUint(got, 1))
		}
	}
}
