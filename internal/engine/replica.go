package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"

	"ipa/internal/core"
	"ipa/internal/page"
	"ipa/internal/sim"
	"ipa/internal/wal"
)

// This file is the follower half of log-shipping replication: an
// Applier that replays the primary's WAL records, in LSN order, into a
// local engine whose own log stays byte-identical to the primary's
// ("LSN parity"). Parity is what makes the whole design composable —
// the follower's log head IS its replication position, a promoted
// follower keeps appending where the primary stopped, and any
// divergence is detected as a parity violation instead of corrupting
// pages silently.
//
// Apply order per update record (the invariants snapshot readers rely
// on, mirrored from the primary's write path):
//
//  1. Append the record to the local log and assert the returned LSN
//     equals the shipped one.
//  2. Under the page's exclusive frame latch, install the before-image
//     as a pending version entry BEFORE touching the heap — even when
//     the PageLSN guard later skips the heap apply (a snapshot-primed
//     follower's heap may already reflect the update, but the chain
//     entry must exist so snapshot readers can resolve past it).
//  3. Apply the physiological op only if PageLSN < record LSN.
//
// Commits register the (parity-known) commit LSN in the version
// store's in-flight set BEFORE the local append, so no concurrent
// snapshot can pin an LSN covering a commit whose chain entries are
// still being stamped.

// ErrApplyGap is returned when the shipped batch does not continue
// exactly at the applier's head — the node layer resyncs via snapshot.
var ErrApplyGap = errors.New("engine: replication stream out of sequence")

// applyTx tracks one in-flight transaction observed in the stream.
type applyTx struct {
	firstLSN core.LSN
	lastLSN  core.LSN
	rids     []core.RID
	ridSeen  map[core.RID]struct{}
	aborted  bool
}

// Applier replays shipped WAL records into a follower engine. All
// methods must be called from a single goroutine (the node's apply
// loop); AppliedLSN alone is safe to read concurrently.
type Applier struct {
	db      *DB
	w       *sim.Worker
	inTx    map[uint64]*applyTx
	byID    map[uint64]*Table // table-id cache for RecAlloc chaining
	applied atomic.Uint64
}

// NewApplier builds an applier over a follower engine. The engine must
// run with Options.Replicated (so a promotion writes a self-describing
// log for the next generation of followers).
func (db *DB) NewApplier(w *sim.Worker) (*Applier, error) {
	if !db.opts.Replicated {
		return nil, fmt.Errorf("%w: applier needs Options.Replicated", ErrBadOptions)
	}
	a := &Applier{
		db:   db,
		w:    w,
		inTx: make(map[uint64]*applyTx),
		byID: make(map[uint64]*Table),
	}
	a.applied.Store(uint64(db.log.Head()))
	return a, nil
}

// AppliedLSN returns the LSN of the last record replayed (equals the
// local log head between Apply calls).
func (a *Applier) AppliedLSN() core.LSN { return core.LSN(a.applied.Load()) }

// Resync re-bases the applier after a snapshot install: transaction
// state restarts empty (every active transaction's records replay from
// its RecBegin, because the snapshot primes at min(active firstLSN)-1).
func (a *Applier) Resync() {
	a.inTx = make(map[uint64]*applyTx)
	a.byID = make(map[uint64]*Table)
	a.applied.Store(uint64(a.db.log.Head()))
}

// Apply replays one contiguous batch. Records at or below the applied
// head are skipped (duplicate delivery after a reconnect); a gap above
// it fails with ErrApplyGap.
func (a *Applier) Apply(recs []wal.Record) error {
	db := a.db
	db.stateMu.RLock()
	defer db.stateMu.RUnlock()
	if db.closed.Load() {
		return ErrClosed
	}
	for _, rec := range recs {
		head := core.LSN(a.applied.Load())
		if rec.LSN <= head {
			continue
		}
		if rec.LSN != head+1 {
			return fmt.Errorf("%w: got LSN %d at head %d", ErrApplyGap, rec.LSN, head)
		}
		if err := a.applyOne(rec); err != nil {
			return err
		}
		a.applied.Store(uint64(rec.LSN))
	}
	db.log.Flush(core.LSN(a.applied.Load()))
	return nil
}

// appendParity appends the record locally and asserts LSN parity.
func (a *Applier) appendParity(rec wal.Record) error {
	got := a.db.log.Append(rec)
	if got != rec.LSN {
		return fmt.Errorf("%w: local append produced LSN %d for shipped LSN %d",
			ErrApplyGap, got, rec.LSN)
	}
	return nil
}

// tx returns the stream state of a transaction, creating it lazily —
// a snapshot-primed join can first meet a transaction mid-life.
func (a *Applier) tx(id uint64, lsn core.LSN) *applyTx {
	t := a.inTx[id]
	if t == nil {
		t = &applyTx{firstLSN: lsn, ridSeen: make(map[core.RID]struct{})}
		a.inTx[id] = t
	}
	return t
}

func (a *Applier) applyOne(rec wal.Record) error {
	db := a.db
	switch rec.Type {
	case wal.RecBegin:
		if err := a.appendParity(rec); err != nil {
			return err
		}
		a.tx(rec.TxID, rec.LSN)
		bumpAtomic(&db.nextTx, rec.TxID)

	case wal.RecTable:
		if err := a.appendParity(rec); err != nil {
			return err
		}
		id, name, region, err := decodeTableMeta(rec.Meta)
		if err != nil {
			return err
		}
		t, err := db.restoreReplicaTable(name, region, id)
		if err != nil {
			return err
		}
		a.byID[id] = t

	case wal.RecAlloc:
		if err := a.appendParity(rec); err != nil {
			return err
		}
		pid, owner, region, err := decodeAllocMeta(rec.Meta)
		if err != nil {
			return err
		}
		st, err := db.AttachRegion(region)
		if err != nil {
			return err
		}
		db.pageDir.put(pid, st)
		bumpAtomic(&db.nextPage, uint64(pid))
		if owner != 0 {
			if t := a.tableByID(owner); t != nil {
				t.mu.Lock()
				t.pages = append(t.pages, pid)
				t.last = pid
				t.mu.Unlock()
			}
		}

	case wal.RecUpdate:
		t := a.tx(rec.TxID, rec.LSN)
		t.lastLSN = rec.LSN
		rid := core.RID{Page: rec.Page, Slot: rec.Slot}
		if _, seen := t.ridSeen[rid]; !seen {
			t.ridSeen[rid] = struct{}{}
			t.rids = append(t.rids, rid)
		}
		if err := a.appendParity(rec); err != nil {
			return err
		}
		return a.applyPageOp(rec, true)

	case wal.RecCLR:
		if t := a.inTx[rec.TxID]; t != nil {
			t.lastLSN = rec.LSN
		}
		if err := a.appendParity(rec); err != nil {
			return err
		}
		return a.applyPageOp(rec, false)

	case wal.RecCommit:
		if db.vs != nil {
			db.vs.registerInflight(rec.LSN)
		}
		if err := a.appendParity(rec); err != nil {
			if db.vs != nil {
				db.vs.finishCommit(rec.LSN)
			}
			return err
		}
		if t := a.inTx[rec.TxID]; t != nil && db.vs != nil {
			db.vs.stampCommitted(t.rids, rec.TxID, rec.LSN)
		}
		if db.vs != nil {
			db.vs.finishCommit(rec.LSN)
		}

	case wal.RecAbort:
		if err := a.appendParity(rec); err != nil {
			return err
		}
		a.tx(rec.TxID, rec.LSN).aborted = true

	case wal.RecEnd:
		if err := a.appendParity(rec); err != nil {
			return err
		}
		if t := a.inTx[rec.TxID]; t != nil {
			if t.aborted && db.vs != nil {
				// Mirror the primary's abort path: the rollback the CLRs
				// just replayed restored the before-images, so stamping
				// them at the end-record LSN keeps them true for any
				// snapshot pinned before the abort.
				db.vs.stampCommitted(t.rids, rec.TxID, rec.LSN)
			}
			delete(a.inTx, rec.TxID)
		}

	case wal.RecCheckpoint:
		if err := a.appendParity(rec); err != nil {
			return err
		}
		db.log.Flush(rec.LSN)
		// Follower-local truncation: the primary's checkpoint is the
		// signal, but the cut respects THIS engine's dirty pages and the
		// stream's in-flight transactions.
		cut := rec.LSN
		for _, r := range db.pool.DirtyPages() {
			if r != 0 && r < cut {
				cut = r
			}
		}
		for _, t := range a.inTx {
			if t.firstLSN < cut {
				cut = t.firstLSN
			}
		}
		db.log.Truncate(cut)

	default:
		// Unknown record types append for parity and are otherwise
		// ignored, the same stance restart analysis takes.
		return a.appendParity(rec)
	}
	return nil
}

// applyPageOp replays one physiological operation under the page's
// exclusive frame latch. install selects the pending-version hook
// (update records yes, CLRs no — the aborting transaction's entry is
// already in the chain and is stamped at its end record).
func (a *Applier) applyPageOp(rec wal.Record, install bool) error {
	db := a.db
	st := db.pageDir.get(rec.Page)
	if st == nil {
		return fmt.Errorf("engine: replicated op on unknown page %d (LSN %d)", rec.Page, rec.LSN)
	}
	fr, err := db.pool.Get(a.w, rec.Page)
	if err != nil {
		// Allocated but never flushed here: recreate empty, as redo does.
		if st.region.Contains(rec.Page) {
			return err
		}
		fr, err = db.pool.GetNew(a.w, rec.Page)
		if err != nil {
			return err
		}
		if _, err := page.Format(fr.Data, st.layout, rec.Page); err != nil {
			db.pool.Unpin(a.w, fr, false, 0)
			return err
		}
	}
	fr.Latch()
	pg, err := page.Attach(fr.Data, st.layout)
	if err != nil {
		fr.Unlatch()
		db.pool.Unpin(a.w, fr, false, 0)
		return err
	}
	if install && db.vs != nil {
		rid := core.RID{Page: rec.Page, Slot: rec.Slot}
		db.vs.installPending(rid, rec.TxID, rec.Before, rec.Op == wal.OpInsert)
	}
	dirty := false
	if pg.LSN() < rec.LSN {
		if err := applyOp(pg, rec.Op, int(rec.Slot), rec.After); err != nil {
			fr.Unlatch()
			db.pool.Unpin(a.w, fr, false, 0)
			return err
		}
		pg.SetLSN(rec.LSN)
		dirty = true
	}
	fr.Unlatch()
	if dirty {
		return db.pool.Unpin(a.w, fr, true, rec.LSN)
	}
	return db.pool.Unpin(a.w, fr, false, 0)
}

// Promote finishes the follower's transition to primary: every
// transaction still open in the stream belonged to the dead leader and
// is rolled back through the normal ARIES path (RecAbort, CLRs,
// RecEnd), exactly as restart undo treats losers. After Promote the
// engine serves reads and writes as a normal primary, its log
// continuing at the same LSNs the cluster already acknowledged.
func (a *Applier) Promote() error {
	db := a.db
	db.stateMu.RLock()
	defer db.stateMu.RUnlock()
	for id, t := range a.inTx {
		db.log.Append(wal.Record{Type: wal.RecAbort, TxID: id, PrevLSN: t.lastLSN})
		if err := db.rollback(a.w, id, t.lastLSN); err != nil {
			return fmt.Errorf("engine: promote rollback tx %d: %w", id, err)
		}
		endLSN := db.log.Append(wal.Record{Type: wal.RecEnd, TxID: id})
		if db.vs != nil {
			db.vs.stampCommitted(t.rids, id, endLSN)
		}
		delete(a.inTx, id)
	}
	db.log.Flush(db.log.Head())
	a.applied.Store(uint64(db.log.Head()))
	return nil
}

// restoreReplicaTable registers a table shipped through the stream (or
// a snapshot), preserving the primary's table id.
func (db *DB) restoreReplicaTable(name, regionName string, id uint64) (*Table, error) {
	db.catMu.Lock()
	defer db.catMu.Unlock()
	if t, ok := db.tables[name]; ok {
		return t, nil
	}
	st, err := db.attachRegionLocked(regionName)
	if err != nil {
		return nil, err
	}
	t := &Table{db: db, st: st, name: name, id: id}
	db.tables[name] = t
	return t, nil
}

// tableByID resolves a table by its stream id through the applier's
// cache, falling back to a catalog sweep (first RecAlloc after a
// snapshot install, where the cache starts cold).
func (a *Applier) tableByID(id uint64) *Table {
	if t := a.byID[id]; t != nil {
		return t
	}
	db := a.db
	db.catMu.Lock()
	defer db.catMu.Unlock()
	for _, t := range db.tables {
		if t.id == id {
			a.byID[id] = t
			return t
		}
	}
	return nil
}

// bumpAtomic raises a monotonic counter to at least v.
func bumpAtomic(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// --- self-description payloads (RecAlloc / RecTable Meta) ------------

// encodeAllocMeta packs a page allocation: page id, owning object id
// (table id, or 0 for index pages) and region name.
func encodeAllocMeta(pid core.PageID, owner uint64, region string) []byte {
	buf := make([]byte, 0, 18+len(region))
	buf = binary.BigEndian.AppendUint64(buf, uint64(pid))
	buf = binary.BigEndian.AppendUint64(buf, owner)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(region)))
	return append(buf, region...)
}

func decodeAllocMeta(meta []byte) (pid core.PageID, owner uint64, region string, err error) {
	if len(meta) < 18 {
		return 0, 0, "", fmt.Errorf("engine: short alloc meta (%d bytes)", len(meta))
	}
	pid = core.PageID(binary.BigEndian.Uint64(meta[0:8]))
	owner = binary.BigEndian.Uint64(meta[8:16])
	n := int(binary.BigEndian.Uint16(meta[16:18]))
	if len(meta) < 18+n {
		return 0, 0, "", fmt.Errorf("engine: truncated alloc meta")
	}
	return pid, owner, string(meta[18 : 18+n]), nil
}

// encodeTableMeta packs a table creation: id, name, region name.
func encodeTableMeta(id uint64, name, region string) []byte {
	buf := make([]byte, 0, 12+len(name)+len(region))
	buf = binary.BigEndian.AppendUint64(buf, id)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(name)))
	buf = append(buf, name...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(region)))
	return append(buf, region...)
}

func decodeTableMeta(meta []byte) (id uint64, name, region string, err error) {
	if len(meta) < 10 {
		return 0, "", "", fmt.Errorf("engine: short table meta (%d bytes)", len(meta))
	}
	id = binary.BigEndian.Uint64(meta[0:8])
	n := int(binary.BigEndian.Uint16(meta[8:10]))
	if len(meta) < 10+n+2 {
		return 0, "", "", fmt.Errorf("engine: truncated table meta")
	}
	name = string(meta[10 : 10+n])
	off := 10 + n
	rn := int(binary.BigEndian.Uint16(meta[off : off+2]))
	if len(meta) < off+2+rn {
		return 0, "", "", fmt.Errorf("engine: truncated table meta region")
	}
	return id, name, string(meta[off+2 : off+2+rn]), nil
}
