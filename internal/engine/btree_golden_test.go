package engine

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"

	"ipa/internal/core"
)

// goldenTreeFingerprint hashes every reachable node of the coarse tree —
// page id, flags, entry count, entries, leaf chaining — plus the Range
// iteration order, into one stable hex digest. Any change to the on-page
// node layout, the split algorithm, allocation order, or iteration order
// changes the digest.
func goldenTreeFingerprint(t *testing.T, ix *CoarseIndex) string {
	t.Helper()
	db := ix.db
	h := fnv.New64a()
	put := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	queue := []core.PageID{ix.Root()}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		fr, err := db.pool.Get(nil, id)
		if err != nil {
			t.Fatalf("get node %d: %v", id, err)
		}
		n, err := ix.node(fr)
		if err != nil {
			t.Fatalf("attach node %d: %v", id, err)
		}
		put(uint64(id))
		put(uint64(n.pg.Flags()))
		put(uint64(n.count()))
		if n.leaf {
			for i := 0; i < n.count(); i++ {
				rid := n.leafRID(i)
				put(n.leafKey(i))
				put(uint64(rid.Page))
				put(uint64(rid.Slot))
			}
			put(uint64(n.pg.NextPage()))
		} else {
			put(uint64(n.child0()))
			queue = append(queue, n.child0())
			for i := 0; i < n.count(); i++ {
				put(n.intKey(i))
				put(uint64(n.intChild(i)))
				queue = append(queue, n.intChild(i))
			}
		}
		db.pool.Unpin(nil, fr, false, 0)
	}
	// Fold in the observable iteration order as well.
	if err := ix.Range(nil, 0, 1<<63, func(k uint64, rid core.RID) bool {
		put(k)
		put(uint64(rid.Page))
		put(uint64(rid.Slot))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestCoarseTreeGoldenLayout pins the coarse tree's physical page layout
// and iteration order to the digest captured before the index layer grew
// the pluggable interface and the OLC tree: the paper-fidelity default
// must keep producing byte-identical trees. If this fails, the coarse
// path changed behaviour — that is a bug unless the layout change is
// deliberate and documented.
func TestCoarseTreeGoldenLayout(t *testing.T) {
	_, ix := newIndexRig(t, 64)
	rng := rand.New(rand.NewSource(7))
	keys := rng.Perm(1500)
	for _, k := range keys {
		key := uint64(k + 1)
		rid := core.RID{Page: core.PageID(key*3 + 1), Slot: uint16(key % 7)}
		if err := ix.Insert(nil, key, rid); err != nil {
			t.Fatalf("insert %d: %v", key, err)
		}
	}
	for _, k := range keys {
		key := uint64(k + 1)
		if key%3 == 0 {
			if _, err := ix.Delete(nil, key); err != nil {
				t.Fatalf("delete %d: %v", key, err)
			}
		} else if key%5 == 0 {
			if err := ix.Update(nil, key, core.RID{Page: core.PageID(key + 100000)}); err != nil {
				t.Fatalf("update %d: %v", key, err)
			}
		}
	}
	const want = "5420316e61bd1eb2"
	if got := goldenTreeFingerprint(t, ix); got != want {
		t.Fatalf("coarse tree fingerprint = %s, want %s", got, want)
	}
}
