package engine

import (
	"fmt"
	"sync/atomic"

	"ipa/internal/core"
	"ipa/internal/page"
	"ipa/internal/sim"
)

// Index is the pluggable ordered-index API: a uint64-keyed B+tree
// mapping keys to RIDs. Two implementations exist, selectable per
// database (Options.IndexKind) or per index (CreateIndexKind):
//
//   - IndexCoarse — one reader/writer latch per tree. Deterministic and
//     byte-identical to the historical index, which the paper's golden
//     renders depend on; the default, mirroring the PoolShards=1
//     pattern.
//   - IndexOLC — optimistic lock coupling over per-frame version words.
//     Readers never block each other, writers latch only the nodes they
//     change; for the concurrency benchmarks and production-style use.
//
// The interface deliberately has no Root() method: with a concurrent
// tree, a root id fetched in one call is stale by the next, so the root
// lookup and the first descent step happen as one validated step inside
// each operation. (The concrete types keep Root() for tests and tools.)
type Index interface {
	// Name returns the index name.
	Name() string
	// Lookup returns the RID stored under key.
	Lookup(w *sim.Worker, key uint64) (core.RID, bool, error)
	// Insert adds key → rid; duplicate keys fail with ErrKeyExists.
	Insert(w *sim.Worker, key uint64, rid core.RID) error
	// Update changes the RID under an existing key.
	Update(w *sim.Worker, key uint64, rid core.RID) error
	// Delete removes a key, reporting whether it was present.
	Delete(w *sim.Worker, key uint64) (bool, error)
	// Range visits keys in [lo, hi] in order until fn returns false.
	Range(w *sim.Worker, lo, hi uint64, fn func(key uint64, rid core.RID) bool) error
	// Stats snapshots the index's operation and contention counters.
	Stats() IndexStats
}

// IndexKind selects a B+tree implementation.
type IndexKind int

const (
	// IndexCoarse is the tree-wide reader/writer latch (the default).
	IndexCoarse IndexKind = iota
	// IndexOLC is the optimistic-lock-coupling tree.
	IndexOLC
)

// String names the kind the way DDL and bench labels spell it.
func (k IndexKind) String() string {
	switch k {
	case IndexCoarse:
		return "coarse"
	case IndexOLC:
		return "olc"
	default:
		return fmt.Sprintf("IndexKind(%d)", int(k))
	}
}

// IndexStats is a snapshot of one index's counters. Restarts and
// LatchWaits stay zero for the coarse tree: it never restarts, and its
// single tree latch is not frame-level.
type IndexStats struct {
	Kind    IndexKind
	Lookups uint64
	Inserts uint64
	Updates uint64
	Deletes uint64
	Scans   uint64
	// Restarts counts OLC descents abandoned because a version check
	// failed (a concurrent split or root change invalidated the path).
	Restarts uint64
	// LatchWaits counts frame latch acquisitions that found the latch
	// held and had to block.
	LatchWaits uint64
}

// indexCounters is the shared counter block of both tree kinds. All
// fields are atomics: lookups run concurrently in both trees.
type indexCounters struct {
	lookups    atomic.Uint64
	inserts    atomic.Uint64
	updates    atomic.Uint64
	deletes    atomic.Uint64
	scans      atomic.Uint64
	restarts   atomic.Uint64
	latchWaits atomic.Uint64
}

func (c *indexCounters) snapshot(kind IndexKind) IndexStats {
	return IndexStats{
		Kind:       kind,
		Lookups:    c.lookups.Load(),
		Inserts:    c.inserts.Load(),
		Updates:    c.updates.Load(),
		Deletes:    c.deletes.Load(),
		Scans:      c.scans.Load(),
		Restarts:   c.restarts.Load(),
		LatchWaits: c.latchWaits.Load(),
	}
}

// CreateIndex creates an empty B+tree of the database's configured kind
// (Options.IndexKind), placed in the named region.
func (db *DB) CreateIndex(name, regionName string) (Index, error) {
	return db.CreateIndexKind(name, regionName, db.opts.IndexKind)
}

// CreateIndexKind creates an empty B+tree of an explicit kind, placed
// in the named region.
func (db *DB) CreateIndexKind(name, regionName string, kind IndexKind) (Index, error) {
	st, err := db.AttachRegion(regionName)
	if err != nil {
		return nil, err
	}
	db.stateMu.RLock()
	defer db.stateMu.RUnlock()
	fr, pg, err := db.newPage(nil, st, 0, page.FlagIndex|page.FlagLeaf)
	if err != nil {
		return nil, err
	}
	root := pg.ID()
	if err := db.pool.Unpin(nil, fr, true, db.log.Head()); err != nil {
		return nil, err
	}
	var ix Index
	switch kind {
	case IndexCoarse:
		ix = &CoarseIndex{db: db, st: st, name: name, root: root}
	case IndexOLC:
		o := &OLCIndex{db: db, st: st, name: name}
		o.root.Store(uint64(root))
		ix = o
	default:
		return nil, fmt.Errorf("%w: IndexKind %d", ErrBadOptions, int(kind))
	}
	db.registerIndex(ix)
	return ix, nil
}

// registerIndex records the index in the catalog for Stats. A repeated
// name replaces the previous entry (indexes are non-logged and tests
// re-create them freely); the replaced tree keeps working, it just
// stops being reported.
func (db *DB) registerIndex(ix Index) {
	db.catMu.Lock()
	defer db.catMu.Unlock()
	if db.indexes == nil {
		db.indexes = make(map[string]Index)
	}
	db.indexes[ix.Name()] = ix
}

// Index returns a registered index by name, or nil.
func (db *DB) Index(name string) Index {
	db.catMu.Lock()
	defer db.catMu.Unlock()
	return db.indexes[name]
}
