package engine

import (
	"sync"

	"ipa/internal/core"
)

// dirShards is the number of shards in the page directory. Power of two.
const dirShards = 64

// pageDir maps page ids to their owning store. It is sharded so the
// buffer pool's fetch/flush router — on the hot path of every miss and
// eviction — never serialises on one map lock.
type pageDir struct {
	shards [dirShards]dirShard
}

type dirShard struct {
	mu sync.RWMutex
	m  map[core.PageID]*PageStore
}

func (pd *pageDir) shard(id core.PageID) *dirShard {
	return &pd.shards[uint64(id)&(dirShards-1)]
}

// get returns the store owning id, or nil.
func (pd *pageDir) get(id core.PageID) *PageStore {
	s := pd.shard(id)
	s.mu.RLock()
	st := s.m[id]
	s.mu.RUnlock()
	return st
}

// put registers id as owned by st.
func (pd *pageDir) put(id core.PageID, st *PageStore) {
	s := pd.shard(id)
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[core.PageID]*PageStore)
	}
	s.m[id] = st
	s.mu.Unlock()
}

// delete removes id (failed allocation, page free).
func (pd *pageDir) delete(id core.PageID) {
	s := pd.shard(id)
	s.mu.Lock()
	delete(s.m, id)
	s.mu.Unlock()
}

// clear empties the directory (replica snapshot install).
func (pd *pageDir) clear() {
	for i := range pd.shards {
		s := &pd.shards[i]
		s.mu.Lock()
		s.m = nil
		s.mu.Unlock()
	}
}
