package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ipa/internal/core"
	"ipa/internal/flash"
	"ipa/internal/noftl"
)

// newTwoRegionRig builds a device with two independent regions so the
// concurrency tests exercise parallel fetch/flush across stores.
func newTwoRegionRig(t *testing.T, frames int) *DB {
	return newTwoRegionRigShards(t, frames, 0)
}

// newTwoRegionRigShards is newTwoRegionRig with an explicit buffer-pool
// shard count (0 = the single-shard default).
func newTwoRegionRigShards(t *testing.T, frames, poolShards int) *DB {
	t.Helper()
	g := flash.Geometry{
		Chips: 4, BlocksPerChip: 64, PagesPerBlock: 8,
		PageSize: 512, OOBSize: 32, Cell: flash.SLC,
	}
	arr, err := flash.New(flash.Config{
		Geometry: g, Timing: flash.SLCTiming(), StrictProgramOrder: true, MaxAppends: 8,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dev := noftl.Open(arr)
	for _, name := range []string{"r1", "r2"} {
		if _, err := dev.CreateRegion(noftl.RegionConfig{
			Name: name, Mode: noftl.ModeSLC, Scheme: core.NewScheme(2, 3),
			BlocksPerChip: 32, OverProvision: 0.2,
		}); err != nil {
			t.Fatal(err)
		}
	}
	db, err := New(dev, Options{
		PageSize: 512, BufferFrames: frames, DirtyThreshold: 2.0,
		PoolShards: poolShards,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func seedTuples(t *testing.T, db *DB, tbl *Table, n int, tag byte) []core.RID {
	t.Helper()
	rids := make([]core.RID, n)
	tx := mustBegin(db, nil)
	for i := range rids {
		rid, err := tbl.Insert(tx, []byte(fmt.Sprintf("%c seed %04d value 0000000000", tag, i)))
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return rids
}

// TestConcurrentNoWaitLocking runs ≥8 goroutines doing concurrent
// insert/update/commit/abort against two regions. The no-wait lock table
// must return ErrLockConflict on contention (never deadlock — the test
// completing is the deadlock assertion), and after the storm every
// surviving tuple must hold its last committed value.
func TestConcurrentNoWaitLocking(t *testing.T) {
	db := newTwoRegionRig(t, 64)
	t1, err := db.CreateTable("t1", "r1")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := db.CreateTable("t2", "r2")
	if err != nil {
		t.Fatal(err)
	}
	tables := []*Table{t1, t2}

	const workers = 8
	const itersPerWorker = 150
	const ownedPerWorker = 4

	// Hot tuples shared by everyone (conflict generators) plus a disjoint
	// owned set per worker (exact-state verification).
	hot := [2][]core.RID{
		seedTuples(t, db, t1, 2, 'h'),
		seedTuples(t, db, t2, 2, 'H'),
	}
	owned := make([][]core.RID, workers)
	for g := 0; g < workers; g++ {
		owned[g] = seedTuples(t, db, tables[g%2], ownedPerWorker, 'a'+byte(g))
	}

	var conflicts atomic.Uint64
	// lastCommitted[g][i] is the value worker g last committed to its
	// owned tuple i (each worker writes only its own slice — no locking).
	lastCommitted := make([][]string, workers)

	var wg sync.WaitGroup
	start := make(chan struct{})
	errCh := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			rng := rand.New(rand.NewSource(int64(g)*104729 + 1))
			tbl := tables[g%2]
			hotSet := hot[g%2]
			mine := owned[g]
			last := make([]string, ownedPerWorker)
			for i := range last {
				last[i] = fmt.Sprintf("%c seed %04d value 0000000000", 'a'+byte(g), i)
			}
			lastCommitted[g] = last
			for it := 0; it < itersPerWorker; it++ {
				tx := mustBegin(db, nil)
				// Touch a hot tuple: a lock conflict here is expected and
				// aborts the transaction.
				hrid := hotSet[rng.Intn(len(hotSet))]
				if err := tbl.Update(tx, hrid, []byte(fmt.Sprintf("h hot! %04d value g%d-%08d", it, g, it))); err != nil {
					if errors.Is(err, ErrLockConflict) {
						conflicts.Add(1)
						if aerr := tx.Abort(); aerr != nil {
							errCh <- aerr
							return
						}
						continue
					}
					errCh <- err
					return
				}
				// Yield while holding the hot lock so other workers get a
				// chance to collide with it even on a single core.
				runtime.Gosched()
				// Update one owned tuple (never conflicts).
				oi := rng.Intn(ownedPerWorker)
				val := fmt.Sprintf("%c iter %04d value g%d-%04d00", 'a'+byte(g), it, g, it)
				if err := tbl.Update(tx, mine[oi], []byte(val)); err != nil {
					errCh <- err
					return
				}
				// Occasionally grow the heap concurrently.
				if it%10 == 0 {
					if _, err := tbl.Insert(tx, []byte(fmt.Sprintf("x ins %04d value g%d-%08d", it, g, it))); err != nil {
						errCh <- err
						return
					}
				}
				if rng.Intn(4) == 0 {
					if err := tx.Abort(); err != nil {
						errCh <- err
						return
					}
				} else {
					if err := tx.Commit(); err != nil {
						errCh <- err
						return
					}
					last[oi] = val
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	if conflicts.Load() == 0 {
		t.Error("8 workers on 2 hot tuples produced zero lock conflicts")
	}
	// Every owned tuple reads back its last committed value (aborted
	// updates rolled back, committed ones durable in the buffer/log).
	for g := 0; g < workers; g++ {
		tbl := tables[g%2]
		for i, rid := range owned[g] {
			got, err := tbl.Read(nil, rid)
			if err != nil {
				t.Fatalf("worker %d tuple %d: %v", g, i, err)
			}
			if string(got) != lastCommitted[g][i] {
				t.Errorf("worker %d tuple %d = %q, want %q", g, i, got, lastCommitted[g][i])
			}
		}
	}
}

// TestConcurrentCrashRecovery crashes the engine with loser transactions
// in flight (begun, updated, never committed) after a concurrent update
// storm, and verifies restart recovery preserves exactly the committed
// state: committed updates survive, loser updates are undone. It runs
// against both the single-shard pool and an 8-way sharded pool —
// recovery must be oblivious to how the buffer is partitioned.
func TestConcurrentCrashRecovery(t *testing.T) {
	for _, shards := range []int{1, 8} {
		t.Run(fmt.Sprintf("poolShards=%d", shards), func(t *testing.T) {
			testConcurrentCrashRecovery(t, shards)
		})
	}
}

func testConcurrentCrashRecovery(t *testing.T, poolShards int) {
	db := newTwoRegionRigShards(t, 32, poolShards)
	t1, err := db.CreateTable("t1", "r1")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := db.CreateTable("t2", "r2")
	if err != nil {
		t.Fatal(err)
	}
	tables := []*Table{t1, t2}

	const workers = 8
	rids := make([][]core.RID, workers)
	for g := 0; g < workers; g++ {
		rids[g] = seedTuples(t, db, tables[g%2], 3, 'a'+byte(g))
	}

	// Concurrent phase: every worker commits a known value to tuple 0 and
	// tuple 1, then leaves a loser transaction updating tuple 1 and
	// deleting tuple 2 open at the crash.
	committed := make([][]string, workers)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tbl := tables[g%2]
			vals := []string{
				fmt.Sprintf("%c committed-0 value 00000000", 'a'+byte(g)),
				fmt.Sprintf("%c committed-1 value 00000000", 'a'+byte(g)),
				fmt.Sprintf("%c seed %04d value 0000000000", 'a'+byte(g), 2),
			}
			committed[g] = vals
			tx := mustBegin(db, nil)
			if err := tbl.Update(tx, rids[g][0], []byte(vals[0])); err != nil {
				errCh <- err
				return
			}
			if err := tbl.Update(tx, rids[g][1], []byte(vals[1])); err != nil {
				errCh <- err
				return
			}
			if err := tx.Commit(); err != nil {
				errCh <- err
				return
			}
			// Loser: updates tuple 1 and deletes tuple 2, never commits.
			loser := mustBegin(db, nil)
			if err := tbl.Update(loser, rids[g][1], []byte(fmt.Sprintf("%c LOSER!!!-1 value 00000000", 'a'+byte(g)))); err != nil {
				errCh <- err
				return
			}
			if err := tbl.Delete(loser, rids[g][2]); err != nil {
				errCh <- err
				return
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	if err := db.SimulateCrash(); err != nil {
		t.Fatal(err)
	}
	rep, err := db.Recover(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UndoneTxs != workers {
		t.Errorf("UndoneTxs = %d, want %d", rep.UndoneTxs, workers)
	}

	for g := 0; g < workers; g++ {
		tbl := tables[g%2]
		for i := 0; i < 3; i++ {
			got, err := tbl.Read(nil, rids[g][i])
			if err != nil {
				t.Fatalf("worker %d tuple %d after recovery: %v", g, i, err)
			}
			if string(got) != committed[g][i] {
				t.Errorf("worker %d tuple %d = %q, want %q", g, i, got, committed[g][i])
			}
		}
	}
}

// TestOptionsValidate covers the config rejection satellite.
func TestOptionsValidate(t *testing.T) {
	good := Options{PageSize: 512, BufferFrames: 16}
	if err := good.Validate(512); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	cases := []struct {
		name  string
		o     Options
		flash int
	}{
		{"negative frames", Options{PageSize: 512, BufferFrames: -4}, 512},
		{"zero frames", Options{PageSize: 512}, 512},
		{"page size mismatch", Options{PageSize: 1024, BufferFrames: 16}, 512},
		{"default page vs small flash", Options{BufferFrames: 16}, 512},
		{"negative log capacity", Options{PageSize: 512, BufferFrames: 16, LogCapacity: -1}, 512},
		{"reclaim threshold ≥ 1", Options{PageSize: 512, BufferFrames: 16, LogReclaimThreshold: 1.5}, 512},
		{"negative dirty threshold", Options{PageSize: 512, BufferFrames: 16, DirtyThreshold: -0.5}, 512},
		{"negative reclaim batch", Options{PageSize: 512, BufferFrames: 16, ReclaimFlushBatch: -3}, 512},
		{"negative pool shards", Options{PageSize: 512, BufferFrames: 16, PoolShards: -2}, 512},
	}
	for _, c := range cases {
		if err := c.o.Validate(c.flash); !errors.Is(err, ErrBadOptions) {
			t.Errorf("%s: Validate = %v, want ErrBadOptions", c.name, err)
		}
	}
}

// TestErrorSentinels pins the exported sentinel surface.
func TestErrorSentinels(t *testing.T) {
	db := newTwoRegionRig(t, 16)
	if _, err := db.AttachRegion("nope"); !errors.Is(err, ErrNoRegion) {
		t.Errorf("AttachRegion = %v, want ErrNoRegion", err)
	}
	if err := db.Exec("CREATE TABLESPACE ts (REGION=nope)"); !errors.Is(err, ErrNoRegion) {
		t.Errorf("Exec tablespace = %v, want ErrNoRegion", err)
	}
	tx := mustBegin(db, nil)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxClosed) {
		t.Errorf("double commit = %v, want ErrTxClosed", err)
	}
	if !errors.Is(ErrTxDone, ErrTxClosed) {
		t.Error("ErrTxDone must alias ErrTxClosed")
	}
}

// TestBackgroundMaintenance drives enough committed churn through a
// small log and buffer that the maintenance goroutine must run cleaner
// passes, log reclaims and checkpoints — while the workload threads
// themselves never carry that work. Close must surface no errors.
func TestBackgroundMaintenance(t *testing.T) {
	g := flash.Geometry{
		Chips: 4, BlocksPerChip: 64, PagesPerBlock: 8,
		PageSize: 512, OOBSize: 32, Cell: flash.SLC,
	}
	arr, err := flash.New(flash.Config{
		Geometry: g, Timing: flash.SLCTiming(), StrictProgramOrder: true, MaxAppends: 8,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dev := noftl.Open(arr)
	if _, err := dev.CreateRegion(noftl.RegionConfig{
		Name: "r1", Mode: noftl.ModeSLC, Scheme: core.NewScheme(2, 3),
		BlocksPerChip: 32, OverProvision: 0.2,
	}); err != nil {
		t.Fatal(err)
	}
	db, err := New(dev, Options{
		PageSize: 512, BufferFrames: 32, DirtyThreshold: 0.1,
		LogCapacity: 16 << 10, LogReclaimThreshold: 0.2,
		ReclaimFlushBatch: 4, BackgroundMaintenance: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("t1", "r1")
	if err != nil {
		t.Fatal(err)
	}
	rids := seedTuples(t, db, tbl, 32, 'm')

	deadline := time.Now().Add(10 * time.Second)
	for round := 0; ; round++ {
		tx := mustBegin(db, nil)
		for i, rid := range rids {
			val := fmt.Sprintf("m seed %04d value %010d", i, round)
			if err := tbl.Update(tx, rid, []byte(val)); err != nil {
				t.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		s, err := db.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if s.Pool.CleanerFlushes > 0 && s.LogReclaims > 0 && s.Checkpoints > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("maintenance goroutine idle after %d rounds: cleaner=%d reclaims=%d ckpts=%d",
				round, s.Pool.CleanerFlushes, s.LogReclaims, s.Checkpoints)
		}
		runtime.Gosched()
	}
	// The last committed round must be durable through the background
	// machinery exactly as through the inline path.
	for i, rid := range rids {
		got, err := tbl.Read(nil, rid)
		if err != nil {
			t.Fatal(err)
		}
		if string(got[:11]) != fmt.Sprintf("m seed %04d", i) {
			t.Errorf("tuple %d corrupted: %q", i, got)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close after background maintenance: %v", err)
	}
}
