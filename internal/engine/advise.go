package engine

import (
	"fmt"
	"sort"

	"ipa/internal/advisor"
	"ipa/internal/core"
	"ipa/internal/noftl"
	"ipa/internal/sim"
)

// This file is the engine side of the live scheme advisor (paper Sec.
// 8.4 turned into a control loop): the WAL is profiled into per-table
// update-size CDFs, each table gets a storage-scheme recommendation,
// and — opt-in — the recommendation is applied to the table's region
// through PageStore.SetStorage.

// WALProfile builds the advisor's update-size profile from the
// database's write-ahead log. This replaces reaching through the
// removed DB.Log accessor with advisor.FromLog.
func (db *DB) WALProfile() *advisor.Profile {
	return advisor.FromLog(db.log)
}

// WALTableProfiles builds one update-size profile per table from the
// write-ahead log. Pages not owned by any table (catalog, indexes) are
// grouped under the empty name.
func (db *DB) WALTableProfiles() map[string]*advisor.Profile {
	owner := make(map[core.PageID]string)
	db.catMu.Lock()
	tables := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		tables = append(tables, t)
	}
	db.catMu.Unlock()
	for _, t := range tables {
		t.mu.Lock()
		for _, id := range t.pages {
			owner[id] = t.name
		}
		t.mu.Unlock()
	}
	return advisor.FromLogByTable(db.log, func(id core.PageID) (string, bool) {
		name, ok := owner[id]
		return name, ok
	})
}

// StorageDecision is one table's advice from AdviseStorage, plus
// whether it was auto-applied.
type StorageDecision struct {
	Table   string
	Region  string
	Samples int
	Advice  advisor.StorageAdvice
	// Applied is set when auto-apply switched the table's region to the
	// recommended scheme (or it already ran that scheme); false when
	// apply was off, the region cannot host the scheme, or another
	// table's advice won the region.
	Applied bool
	// Note carries the apply outcome ("already ipa", an incompatibility
	// reason, ...).
	Note string
}

// AdviseStorage profiles the WAL per table and recommends a storage
// scheme for each (the paper's Table 1 comparison as a live decision).
// With apply set, each region is switched to the scheme recommended for
// its most-sampled table — the opt-in auto-apply hook; regions whose
// layout cannot host the recommendation keep their scheme, with the
// reason in Note. Tables with no WAL samples are skipped.
func (db *DB) AdviseStorage(w *sim.Worker, opts advisor.Options, apply bool) ([]StorageDecision, error) {
	if opts.PageSize <= 0 {
		opts.PageSize = db.opts.PageSize
	}
	profs := db.WALTableProfiles()
	db.catMu.Lock()
	type tbl struct {
		name   string
		region string
	}
	tbls := make([]tbl, 0, len(db.tables))
	for name, t := range db.tables {
		tbls = append(tbls, tbl{name: name, region: t.st.Region().Name()})
	}
	db.catMu.Unlock()
	sort.Slice(tbls, func(i, j int) bool { return tbls[i].name < tbls[j].name })

	decisions := make([]StorageDecision, 0, len(tbls))
	for _, t := range tbls {
		p := profs[t.name]
		if p == nil || p.Len() == 0 {
			continue
		}
		adv, err := advisor.RecommendStorage(p, opts)
		if err != nil {
			return nil, fmt.Errorf("engine: advise table %q: %w", t.name, err)
		}
		decisions = append(decisions, StorageDecision{
			Table: t.name, Region: t.region, Samples: p.Len(), Advice: adv,
		})
	}
	if !apply {
		return decisions, nil
	}
	// One scheme per region: the most-sampled table's advice wins.
	winner := make(map[string]int) // region → index into decisions
	for i, d := range decisions {
		if j, ok := winner[d.Region]; !ok || d.Samples > decisions[j].Samples {
			winner[d.Region] = i
		}
	}
	for region, i := range winner {
		d := &decisions[i]
		if err := db.SetRegionStorage(w, region, d.Advice.Storage); err != nil {
			d.Note = err.Error()
			continue
		}
		d.Applied = true
		d.Note = fmt.Sprintf("region %q now %v", region, d.Advice.Storage)
	}
	return decisions, nil
}

// SetRegionStorage switches the named region's storage scheme (see
// PageStore.SetStorage for the layout constraints).
func (db *DB) SetRegionStorage(w *sim.Worker, region string, kind noftl.Storage) error {
	st := db.Store(region)
	if st == nil {
		return fmt.Errorf("engine: region %q not attached", region)
	}
	return st.SetStorage(w, kind)
}
