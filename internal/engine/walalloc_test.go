package engine

import (
	"testing"

	"ipa/internal/core"
	"ipa/internal/noftl"
	"ipa/internal/wal"
)

// The update-logging path — Tx.logUpdate through wal.Append — must not
// allocate per update: the historical path heap-copied both images into
// intermediate slices on every call; now wal.Append copies them once,
// into the log's segment arena. Only amortised segment/ring allocations
// (one small batch per 512 records) remain.
func TestLogUpdatePathZeroAllocs(t *testing.T) {
	r := newRig(t, noftl.ModeSLC, core.NewScheme(2, 3), 16, false)
	defer r.db.Close()
	tx := mustBegin(r.db, nil)
	defer tx.Abort()

	before := make([]byte, 64)
	after := make([]byte, 64)
	log := r.db.WAL()
	allocs := testing.AllocsPerRun(20000, func() {
		lsn := tx.LogUpdate(7, wal.OpUpdate, 3, before, after)
		if lsn%8192 == 0 {
			log.Flush(lsn)
			log.Truncate(log.Flushed())
		}
	})
	if allocs > 0.05 {
		t.Fatalf("logUpdate path allocates %.4f/op, want amortised ~0 (no intermediate image copies)", allocs)
	}
}
