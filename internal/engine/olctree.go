package engine

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"ipa/internal/buffer"
	"ipa/internal/core"
	"ipa/internal/page"
	"ipa/internal/sim"
)

// OLCIndex is a B+tree with optimistic lock coupling, sharing the
// coarse tree's on-page node layout (see btree.go) but none of its
// tree-wide latch. Every buffer frame carries a version word
// (buffer.Frame.Version) that index writers bump before releasing their
// exclusive latch; the binding epoch in its upper bits invalidates
// versions across frame reuse.
//
// Reads descend without coupling latches: at most one short per-node
// shared latch is held at a time (Go's race detector — and the flush
// path, which copies page contents under the exclusive latch — rules
// out truly latch-free byte reads), and the hand-over-hand invariant is
// replaced by version validation. The descent keeps the parent frame
// *pinned* (so it cannot be evicted or rebound) while moving to the
// child, latches the child, then re-checks the parent's version: if it
// changed, a concurrent split may have moved the key, and the descent
// restarts from the root. The root pointer is itself versioned
// (rootVer), so resolving the root and validating the first step form
// one atomic unit — there is no Root()-then-descend window.
//
// Writers are optimistic too: Update and Delete (leaf-local by
// construction — deletion is lazy, leaves never merge) and Inserts into
// non-full leaves descend like readers and take one exclusive leaf
// latch. Only an insert that must split falls back to pessimistic
// top-down latch crabbing, holding exclusive latches just on the nodes
// that may split (ancestors are released as soon as a child with free
// space bounds the split). All modified versions are bumped before any
// latch is released, so no reader can validate a half-installed split.
//
// Interaction with pins and the flush path: every latched frame is
// pinned first, and the pool's flush paths (cleaner, eviction,
// checkpoint) only claim unpinned frames — so a flush never contends
// with a frame an index operation holds, and conversely an index read
// landing on a frame mid-flush simply waits out the copy under the
// frame latch. Flushes do not bump versions: they copy the logical
// image but never change it.
type OLCIndex struct {
	db   *DB
	st   *PageStore
	name string

	// root is the current root page id; rootVer counts root changes.
	// Readers sample rootVer, load root, pin+latch the node and
	// re-check rootVer — unchanged means the latched node is still the
	// root. Writers install a new root id, bump rootVer, then release
	// the old root's latch (which they hold during any root split).
	root    atomic.Uint64
	rootVer atomic.Uint64

	stats indexCounters
}

// Name returns the index name.
func (ix *OLCIndex) Name() string { return ix.name }

// Root returns the current root page id. Advisory: by the time the
// caller uses it the root may have changed; operations never use it
// (see the rootVer protocol above). For tests and tools.
func (ix *OLCIndex) Root() core.PageID { return core.PageID(ix.root.Load()) }

// Stats snapshots the operation and contention counters.
func (ix *OLCIndex) Stats() IndexStats { return ix.stats.snapshot(IndexOLC) }

// rlatch takes a shared frame latch, counting the wait if contended.
func (ix *OLCIndex) rlatch(fr *buffer.Frame) {
	if !fr.TryRLatch() {
		ix.stats.latchWaits.Add(1)
		fr.RLatch()
	}
}

// latch takes an exclusive frame latch, counting the wait if contended.
func (ix *OLCIndex) latch(fr *buffer.Frame) {
	if !fr.TryLatch() {
		ix.stats.latchWaits.Add(1)
		fr.Latch()
	}
}

// restartWait records one descent restart and, every few consecutive
// restarts, yields the processor so the writer being chased can finish.
func (ix *OLCIndex) restartWait(attempt int) {
	ix.stats.restarts.Add(1)
	if attempt%4 == 3 {
		runtime.Gosched()
	}
}

// descend walks from the root to the leaf owning key and returns it
// pinned and latched — shared, or exclusive when exclusive is set (the
// leaf-local write path). The caller holds db.stateMu shared and must
// unlatch+unpin the returned frame.
//
// Validation protocol, per step: the parent stays pinned (not latched)
// while the child is fetched; after latching the child, the parent's
// version is re-checked. A mismatch means the routing decision may be
// stale (the child may have split and the key moved right), so the
// descent restarts. For the first step the root pointer's own version
// plays the parent role.
func (ix *OLCIndex) descend(w *sim.Worker, key uint64, exclusive bool) (*buffer.Frame, *node, error) {
	db := ix.db
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			ix.restartWait(attempt - 1)
		}
		rv := ix.rootVer.Load()
		cur := core.PageID(ix.root.Load())
		var parent *buffer.Frame // pinned, unlatched
		var parentVer uint64
		// valid reports whether the step that led to the latched node is
		// still current.
		valid := func() bool {
			if parent == nil {
				return ix.rootVer.Load() == rv
			}
			return parent.Version() == parentVer
		}
		release := func(fr *buffer.Frame) {
			if fr != nil {
				db.pool.Unpin(w, fr, false, 0)
			}
			if parent != nil {
				db.pool.Unpin(w, parent, false, 0)
			}
		}
		for {
			fr, err := db.pool.Get(w, cur)
			if err != nil {
				release(nil)
				return nil, nil, err
			}
			ix.rlatch(fr)
			if !valid() {
				fr.RUnlatch()
				release(fr)
				break // restart from the root
			}
			n, err := attachNode(ix.st, fr)
			if err != nil {
				fr.RUnlatch()
				release(fr)
				return nil, nil, err
			}
			if n.leaf {
				if exclusive {
					// Re-take the latch exclusively and re-validate: the
					// leaf may have split in the gap (in which case the
					// parent's version — or rootVer for a root leaf —
					// changed and the key may belong right of here).
					fr.RUnlatch()
					ix.latch(fr)
					if !valid() {
						fr.Unlatch()
						release(fr)
						break // restart from the root
					}
				}
				if parent != nil {
					db.pool.Unpin(w, parent, false, 0)
				}
				return fr, n, nil
			}
			next := n.route(key)
			ver := fr.Version()
			fr.RUnlatch()
			if parent != nil {
				db.pool.Unpin(w, parent, false, 0)
			}
			parent, parentVer = fr, ver
			cur = next
		}
	}
}

// Lookup returns the RID stored under key.
func (ix *OLCIndex) Lookup(w *sim.Worker, key uint64) (core.RID, bool, error) {
	ix.stats.lookups.Add(1)
	db := ix.db
	db.stateMu.RLock()
	defer db.stateMu.RUnlock()
	fr, n, err := ix.descend(w, key, false)
	if err != nil {
		return core.RID{}, false, err
	}
	pos, found := n.leafSearch(key)
	var rid core.RID
	if found {
		rid = n.leafRID(pos)
	}
	fr.RUnlatch()
	db.pool.Unpin(w, fr, false, 0)
	return rid, found, nil
}

// Update changes the RID stored under an existing key.
func (ix *OLCIndex) Update(w *sim.Worker, key uint64, rid core.RID) error {
	ix.stats.updates.Add(1)
	db := ix.db
	db.stateMu.RLock()
	defer db.stateMu.RUnlock()
	fr, n, err := ix.descend(w, key, true)
	if err != nil {
		return err
	}
	pos, found := n.leafSearch(key)
	if !found {
		fr.Unlatch()
		db.pool.Unpin(w, fr, false, 0)
		return fmt.Errorf("engine: index %q has no key %d", ix.name, key)
	}
	n.setLeaf(pos, key, rid)
	fr.BumpVersion()
	fr.Unlatch()
	return db.pool.Unpin(w, fr, true, db.log.Head())
}

// Delete removes a key (lazy deletion, like the coarse tree: leaves are
// never merged, so deletes stay leaf-local and need no crabbing).
func (ix *OLCIndex) Delete(w *sim.Worker, key uint64) (bool, error) {
	ix.stats.deletes.Add(1)
	db := ix.db
	db.stateMu.RLock()
	defer db.stateMu.RUnlock()
	fr, n, err := ix.descend(w, key, true)
	if err != nil {
		return false, err
	}
	pos, found := n.leafSearch(key)
	if !found {
		fr.Unlatch()
		db.pool.Unpin(w, fr, false, 0)
		return false, nil
	}
	for i := pos; i < n.count()-1; i++ {
		n.setLeaf(i, n.leafKey(i+1), n.leafRID(i+1))
	}
	n.setCount(n.count() - 1)
	fr.BumpVersion()
	fr.Unlatch()
	return true, db.pool.Unpin(w, fr, true, db.log.Head())
}

// Insert adds key → rid. Duplicate keys are rejected. The fast path is
// optimistic (one exclusive leaf latch); a full leaf falls back to
// pessimistic top-down crabbing.
func (ix *OLCIndex) Insert(w *sim.Worker, key uint64, rid core.RID) error {
	ix.stats.inserts.Add(1)
	db := ix.db
	db.stateMu.RLock()
	defer db.stateMu.RUnlock()
	fr, n, err := ix.descend(w, key, true)
	if err != nil {
		return err
	}
	pos, found := n.leafSearch(key)
	if found {
		fr.Unlatch()
		db.pool.Unpin(w, fr, false, 0)
		return fmt.Errorf("%w: %d", ErrKeyExists, key)
	}
	if n.count() < n.cap {
		insertLeafAt(n, pos, key, rid)
		fr.BumpVersion()
		fr.Unlatch()
		return db.pool.Unpin(w, fr, true, db.log.Head())
	}
	fr.Unlatch()
	db.pool.Unpin(w, fr, false, 0)
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			ix.restartWait(attempt - 1)
		}
		done, err := ix.insertPessimistic(w, key, rid)
		if err != nil || done {
			return err
		}
	}
}

// heldNode is one exclusively latched, pinned node of a pessimistic
// descent.
type heldNode struct {
	fr *buffer.Frame
	n  *node
}

// insertPessimistic is the split path: descend from the root holding
// exclusive latches hand-over-hand, releasing all held ancestors
// whenever the newly latched child has free space (a split from below
// stops there, so nothing above it can change). The retained stack is
// therefore "the deepest non-full node, then full nodes down to the
// leaf" — exactly the nodes a leaf split may touch. Returns done=false
// (and no error) when the root moved between loading and latching it;
// the caller restarts.
func (ix *OLCIndex) insertPessimistic(w *sim.Worker, key uint64, rid core.RID) (done bool, err error) {
	db := ix.db
	var stack []heldNode // latched top-down; stack[0] is the shallowest
	// modified collects frames whose contents changed; their versions
	// are all bumped before any latch is released.
	var modified []*buffer.Frame
	releaseStack := func() {
		for i := len(stack) - 1; i >= 0; i-- {
			stack[i].fr.Unlatch()
			db.pool.Unpin(w, stack[i].fr, false, 0)
		}
		stack = nil
	}
	// finish bumps and releases everything; dirty frames carry the log
	// head as recLSN. Called on success and on mid-split errors alike
	// (modifications already made must become visible either way).
	finish := func() error {
		for _, fr := range modified {
			fr.BumpVersion()
		}
		head := db.log.Head()
		var unpinErr error
		dirty := make(map[*buffer.Frame]bool, len(modified))
		for _, fr := range modified {
			dirty[fr] = true
		}
		for i := len(stack) - 1; i >= 0; i-- {
			fr := stack[i].fr
			fr.Unlatch()
			var e error
			if dirty[fr] {
				e = db.pool.Unpin(w, fr, true, head)
			} else {
				e = db.pool.Unpin(w, fr, false, 0)
			}
			if unpinErr == nil {
				unpinErr = e
			}
		}
		stack = nil
		return unpinErr
	}

	rv := ix.rootVer.Load()
	rootID := core.PageID(ix.root.Load())
	fr, err := db.pool.Get(w, rootID)
	if err != nil {
		return false, err
	}
	ix.latch(fr)
	if ix.rootVer.Load() != rv {
		// The root moved before we latched it; retry from the new root.
		fr.Unlatch()
		db.pool.Unpin(w, fr, false, 0)
		return false, nil
	}
	n, err := attachNode(ix.st, fr)
	if err != nil {
		fr.Unlatch()
		db.pool.Unpin(w, fr, false, 0)
		return false, err
	}
	stack = append(stack, heldNode{fr, n})
	// From here on the root (and later the whole retained path) is
	// exclusively latched: no concurrent writer can change it, so the
	// descent needs no further validation.
	for !n.leaf {
		childID := n.route(key)
		cfr, err := db.pool.Get(w, childID)
		if err != nil {
			releaseStack()
			return false, err
		}
		ix.latch(cfr)
		cn, err := attachNode(ix.st, cfr)
		if err != nil {
			cfr.Unlatch()
			db.pool.Unpin(w, cfr, false, 0)
			releaseStack()
			return false, err
		}
		if cn.count() < cn.cap {
			// The child bounds any split from below: ancestors are safe.
			releaseStack()
		}
		stack = append(stack, heldNode{cfr, cn})
		n = cn
	}

	leaf := stack[len(stack)-1]
	pos, found := leaf.n.leafSearch(key)
	if found {
		releaseStack()
		return true, fmt.Errorf("%w: %d", ErrKeyExists, key)
	}
	if leaf.n.count() < leaf.n.cap {
		// Another splitter made room while we walked down.
		insertLeafAt(leaf.n, pos, key, rid)
		modified = append(modified, leaf.fr)
		return true, finish()
	}

	// Split the leaf. New pages come back pinned from newPage and are
	// latched immediately: the moment the left sibling's NextPage points
	// at them, chain walkers may try to latch them.
	rfr, rpg, err := db.newPage(w, ix.st, 0, page.FlagIndex|page.FlagLeaf)
	if err != nil {
		releaseStack()
		return true, err
	}
	ix.latch(rfr)
	rn, err := attachNode(ix.st, rfr)
	if err != nil {
		rfr.Unlatch()
		db.pool.Unpin(w, rfr, false, 0)
		releaseStack()
		return true, err
	}
	ln := leaf.n
	mid := ln.count() / 2
	moved := ln.count() - mid
	for i := 0; i < moved; i++ {
		rn.setLeaf(i, ln.leafKey(mid+i), ln.leafRID(mid+i))
	}
	rn.setCount(moved)
	ln.setCount(mid)
	rn.pg.SetNextPage(ln.pg.NextPage())
	ln.pg.SetNextPage(rpg.ID())
	sep := rn.leafKey(0)
	if key >= sep {
		p, _ := rn.leafSearch(key)
		insertLeafAt(rn, p, key, rid)
	} else {
		p, _ := ln.leafSearch(key)
		insertLeafAt(ln, p, key, rid)
	}
	stack = append(stack, heldNode{rfr, rn})
	modified = append(modified, leaf.fr, rfr)
	carryKey, carryChild := sep, rpg.ID()

	// Install the separator, splitting full internal nodes on the way
	// up. The loop walks the retained stack above the leaf (and its new
	// sibling, which sits on top and takes no separator).
	for i := len(stack) - 3; i >= 0; i-- {
		h := stack[i]
		if h.n.count() < h.n.cap {
			insertIntAt(h.n, carryKey, carryChild)
			modified = append(modified, h.fr)
			carryChild = core.InvalidPageID
			break
		}
		ifr, ipg, err := db.newPage(w, ix.st, 0, page.FlagIndex)
		if err != nil {
			return true, finish() // splits so far stay installed
		}
		ix.latch(ifr)
		in, err := attachNode(ix.st, ifr)
		if err != nil {
			ifr.Unlatch()
			db.pool.Unpin(w, ifr, false, 0)
			return true, finish()
		}
		m := h.n.count() / 2
		upKey := h.n.intKey(m)
		in.setChild0(h.n.intChild(m))
		cnt := 0
		for j := m + 1; j < h.n.count(); j++ {
			in.setInt(cnt, h.n.intKey(j), h.n.intChild(j))
			cnt++
		}
		in.setCount(cnt)
		h.n.setCount(m)
		if carryKey >= upKey {
			insertIntAt(in, carryKey, carryChild)
		} else {
			insertIntAt(h.n, carryKey, carryChild)
		}
		stack = append(stack, heldNode{ifr, in})
		modified = append(modified, h.fr, ifr)
		carryKey, carryChild = upKey, ipg.ID()
	}
	if carryChild != core.InvalidPageID {
		// The carry consumed the whole retained stack, so the node that
		// split last was the shallowest retained one — which by the
		// crabbing invariant can only be the root (any other retained
		// top had free space when latched, and has been exclusively
		// ours since): grow the tree by one level. This covers both a
		// full root leaf (the upward loop never ran) and a full
		// internal root.
		nfr, npg, err := db.newPage(w, ix.st, 0, page.FlagIndex)
		if err != nil {
			return true, finish()
		}
		ix.latch(nfr)
		nn, err := attachNode(ix.st, nfr)
		if err != nil {
			nfr.Unlatch()
			db.pool.Unpin(w, nfr, false, 0)
			return true, finish()
		}
		nn.setChild0(stack[0].fr.ID)
		nn.setInt(0, carryKey, carryChild)
		nn.setCount(1)
		stack = append(stack, heldNode{nfr, nn})
		modified = append(modified, nfr)
		// Publish the new root, then bump rootVer: a reader that still
		// descends from the old root will fail its version check (the
		// old root's version bumps in finish before any latch drops).
		ix.root.Store(uint64(npg.ID()))
		ix.rootVer.Add(1)
	}
	return true, finish()
}

// Range visits keys in [lo, hi] in order until fn returns false. Each
// leaf's entries are buffered under its shared latch and the callback
// runs with no latch held, so it may perform table reads. As with the
// coarse tree, keys inserted concurrently may or may not be seen.
func (ix *OLCIndex) Range(w *sim.Worker, lo, hi uint64, fn func(key uint64, rid core.RID) bool) error {
	ix.stats.scans.Add(1)
	db := ix.db
	db.stateMu.RLock()
	fr, n, err := ix.descend(w, lo, false)
	if err != nil {
		db.stateMu.RUnlock()
		return err
	}
	type kv struct {
		k uint64
		r core.RID
	}
	var items []kv
	for {
		// fr is pinned and share-latched here, stateMu held shared.
		items = items[:0]
		done := false
		start, _ := n.leafSearch(lo)
		for i := start; i < n.count(); i++ {
			k := n.leafKey(i)
			if k > hi {
				done = true
				break
			}
			items = append(items, kv{k, n.leafRID(i)})
		}
		next := n.pg.NextPage()
		fr.RUnlatch()
		db.pool.Unpin(w, fr, false, 0)
		db.stateMu.RUnlock()
		for _, it := range items {
			if !fn(it.k, it.r) {
				return nil
			}
		}
		if done || next == core.InvalidPageID {
			return nil
		}
		db.stateMu.RLock()
		fr, err = db.pool.Get(w, next)
		if err != nil {
			db.stateMu.RUnlock()
			return err
		}
		ix.rlatch(fr)
		n, err = attachNode(ix.st, fr)
		if err != nil {
			fr.RUnlatch()
			db.pool.Unpin(w, fr, false, 0)
			db.stateMu.RUnlock()
			return err
		}
	}
}
