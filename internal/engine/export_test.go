package engine

import (
	"ipa/internal/core"
	"ipa/internal/wal"
)

// LogUpdate exposes tx.logUpdate so allocation guards can measure the
// update-logging path (logUpdate → wal.Append) in isolation.
func (tx *Tx) LogUpdate(pg core.PageID, op wal.PageOp, slot int, before, after []byte) core.LSN {
	return tx.logUpdate(pg, op, slot, before, after)
}
