package engine

import (
	"ipa/internal/core"
	"ipa/internal/wal"
)

// WAL exposes the write-ahead log to white-box tests. The public engine
// surface is DB/Tx/Options/Stats; tools that used to reach through the
// deprecated DB.Log accessor consume DB.WALProfile instead.
func (db *DB) WAL() *wal.Log { return db.log }

// LogUpdate exposes tx.logUpdate so allocation guards can measure the
// update-logging path (logUpdate → wal.Append) in isolation.
func (tx *Tx) LogUpdate(pg core.PageID, op wal.PageOp, slot int, before, after []byte) core.LSN {
	return tx.logUpdate(pg, op, slot, before, after)
}
