package engine

import "ipa/internal/wal"

// WAL exposes the write-ahead log to white-box tests. The public engine
// surface is DB/Tx/Options/Stats; tools that used to reach through the
// deprecated DB.Log accessor consume DB.WALProfile instead.
func (db *DB) WAL() *wal.Log { return db.log }
