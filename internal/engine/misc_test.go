package engine

import (
	"errors"
	"sync"
	"testing"

	"ipa/internal/core"
	"ipa/internal/noftl"
)

func TestAccessors(t *testing.T) {
	r := newRig(t, noftl.ModeSLC, core.NewScheme(2, 3), 16, false)
	tbl, _ := r.db.CreateTable("t", "main")
	if tbl.Name() != "t" {
		t.Errorf("Name = %q", tbl.Name())
	}
	if tbl.Store() == nil || tbl.Store().Layout().PageSize != 512 {
		t.Error("Store/Layout wrong")
	}
	if r.db.Device() != r.dev {
		t.Error("Device accessor wrong")
	}
	if _, err := r.db.AttachRegion("main"); err != nil {
		t.Errorf("AttachRegion existing: %v", err)
	}
	if _, err := r.db.AttachRegion("missing"); err == nil {
		t.Error("AttachRegion missing region accepted")
	}
	tx := mustBegin(r.db, nil)
	if tx.ID() == 0 {
		t.Error("tx id zero")
	}
	rid, _ := tbl.Insert(tx, make([]byte, 16))
	tx.Commit()
	if tbl.Pages() != 1 {
		t.Errorf("Pages = %d", tbl.Pages())
	}
	ix, _ := r.db.CreateIndex("i", "main")
	if ix.Name() != "i" {
		t.Errorf("index Name = %q", ix.Name())
	}
	// PageStore.Free on mapped and unmapped pages.
	r.db.FlushAll(nil)
	st := r.db.Store("main")
	if err := st.Free(rid.Page); err != nil {
		t.Errorf("Free mapped: %v", err)
	}
	if err := st.Free(9999); err != nil {
		t.Errorf("Free unmapped: %v", err)
	}
}

func TestResizePoolPreservesData(t *testing.T) {
	r := newRig(t, noftl.ModeSLC, core.NewScheme(2, 3), 32, false)
	tbl, _ := r.db.CreateTable("t", "main")
	sch, _ := NewSchema(8)
	var rids []core.RID
	for i := 0; i < 20; i++ {
		tx := mustBegin(r.db, nil)
		tup := sch.New()
		sch.SetUint(tup, 0, uint64(i))
		rid, err := tbl.Insert(tx, tup)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
		tx.Commit()
	}
	if err := r.db.ResizePool(nil, 4); err != nil {
		t.Fatal(err)
	}
	if r.db.Pool().Size() != 4 {
		t.Errorf("pool size = %d", r.db.Pool().Size())
	}
	for i, rid := range rids {
		got, err := tbl.Read(nil, rid)
		if err != nil {
			t.Fatalf("read %d after resize: %v", i, err)
		}
		if sch.GetUint(got, 0) != uint64(i) {
			t.Fatalf("row %d corrupted", i)
		}
	}
}

func TestLockConflictAndRelease(t *testing.T) {
	r := newRig(t, noftl.ModeSLC, core.NewScheme(2, 3), 16, false)
	tbl, _ := r.db.CreateTable("t", "main")
	sch, _ := NewSchema(8)
	setup := mustBegin(r.db, nil)
	rid, _ := tbl.Insert(setup, sch.New())
	setup.Commit()

	tx1 := mustBegin(r.db, nil)
	tx2 := mustBegin(r.db, nil)
	if err := tbl.UpdateField(tx1, rid, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	// tx2 conflicts while tx1 is open.
	if err := tbl.UpdateField(tx2, rid, 0, []byte{2}); !errors.Is(err, ErrLockConflict) {
		t.Fatalf("conflicting update: %v", err)
	}
	if err := tbl.Delete(tx2, rid); !errors.Is(err, ErrLockConflict) {
		t.Fatalf("conflicting delete: %v", err)
	}
	// tx1 can re-lock its own tuple freely.
	if err := tbl.UpdateField(tx1, rid, 0, []byte{3}); err != nil {
		t.Fatal(err)
	}
	// Commit releases the lock; tx2 proceeds.
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tbl.UpdateField(tx2, rid, 0, []byte{4}); err != nil {
		t.Fatalf("update after release: %v", err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	// Abort also releases.
	tx3 := mustBegin(r.db, nil)
	if err := tbl.UpdateField(tx3, rid, 0, []byte{5}); err != nil {
		t.Fatalf("update after abort release: %v", err)
	}
	tx3.Commit()
	got, _ := tbl.Read(nil, rid)
	if got[0] != 5 {
		t.Errorf("final value = %d", got[0])
	}
}

// TestConcurrentGoroutines hammers the engine from real goroutines:
// the engine latch must serialise safely (run with -race).
func TestConcurrentGoroutines(t *testing.T) {
	r := newRig(t, noftl.ModeSLC, core.NewScheme(2, 4), 32, false)
	tbl, _ := r.db.CreateTable("t", "main")
	sch, _ := NewSchema(8, 8)
	const rows = 64
	var rids [rows]core.RID
	setup := mustBegin(r.db, nil)
	for i := 0; i < rows; i++ {
		tup := sch.New()
		sch.SetUint(tup, 0, uint64(i))
		rid, err := tbl.Insert(setup, tup)
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	setup.Commit()
	r.db.FlushAll(nil)

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				// Partitioned rows: no lock conflicts by construction.
				rid := rids[(g*8+i%8)%rows]
				tx := mustBegin(r.db, nil)
				cur, err := tbl.Read(nil, rid)
				if err != nil {
					errCh <- err
					return
				}
				sch.AddUint(cur, 1, 1)
				if err := tbl.Update(tx, rid, cur); err != nil {
					if errors.Is(err, ErrLockConflict) {
						tx.Abort()
						continue
					}
					errCh <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Data readable and consistent.
	total := uint64(0)
	for _, rid := range rids {
		got, err := tbl.Read(nil, rid)
		if err != nil {
			t.Fatal(err)
		}
		total += sch.GetUint(got, 1)
	}
	if total == 0 {
		t.Error("no updates landed")
	}
}
