package engine

import (
	"fmt"

	"ipa/internal/core"
	"ipa/internal/page"
	"ipa/internal/sim"
	"ipa/internal/wal"
)

// RecoveryReport summarises a restart recovery run.
type RecoveryReport struct {
	AnalyzedRecords int
	RedoneOps       int
	SkippedOps      int // redo found PageLSN already current
	UndoneTxs       int
	CompletedTxs    int
}

// Recover performs ARIES restart recovery: analysis over the retained
// log, LSN-guarded redo of update and compensation records, and undo of
// loser transactions with CLRs. Pages are fetched through the normal
// path, so redo operates on images reconstructed from flash plus any
// delta-records that were ISPP-appended before the crash — the paper's
// claim that IPA leaves recovery untouched is exercised, not assumed.
func (db *DB) Recover(w *sim.Worker) (RecoveryReport, error) {
	// Recovery is stop-the-world: the state latch is held exclusively, so
	// no transaction can run concurrently.
	db.stateMu.Lock()
	defer db.stateMu.Unlock()
	db.inRecovery = true
	defer func() { db.inRecovery = false }()

	var rep RecoveryReport

	// --- Analysis ----------------------------------------------------
	type txInfo struct {
		lastLSN   core.LSN
		committed bool
		ended     bool
	}
	att := make(map[uint64]*txInfo)
	// The scan sees exactly the contiguous published prefix of the log —
	// the WAL guarantees no LSN gaps below its Head() — so analysis can
	// treat the record stream as the complete, ordered history.
	db.log.Scan(db.log.Tail(), func(r wal.Record) bool {
		rep.AnalyzedRecords++
		switch r.Type {
		case wal.RecBegin:
			att[r.TxID] = &txInfo{lastLSN: r.LSN}
		case wal.RecUpdate, wal.RecCLR, wal.RecAbort:
			if ti := att[r.TxID]; ti != nil {
				ti.lastLSN = r.LSN
			} else {
				att[r.TxID] = &txInfo{lastLSN: r.LSN}
			}
		case wal.RecCommit:
			if ti := att[r.TxID]; ti != nil {
				ti.committed = true
			} else {
				att[r.TxID] = &txInfo{lastLSN: r.LSN, committed: true}
			}
		case wal.RecEnd:
			if ti := att[r.TxID]; ti != nil {
				ti.ended = true
			}
		case wal.RecCheckpoint:
			// Transactions active at the checkpoint that never logged
			// again still need entries.
			for id, last := range r.ActiveTxs {
				if _, ok := att[id]; !ok {
					att[id] = &txInfo{lastLSN: last}
				}
			}
		}
		return true
	})

	// --- Redo ---------------------------------------------------------
	var redoErr error
	db.log.Scan(db.log.Tail(), func(r wal.Record) bool {
		if r.Type != wal.RecUpdate && r.Type != wal.RecCLR {
			return true
		}
		img := r.After
		applied, err := db.redoOne(w, r.Page, r.Op, int(r.Slot), img, r.LSN)
		if err != nil {
			redoErr = fmt.Errorf("engine: redo LSN %d on page %d: %w", r.LSN, r.Page, err)
			return false
		}
		if applied {
			rep.RedoneOps++
		} else {
			rep.SkippedOps++
		}
		return true
	})
	if redoErr != nil {
		return rep, redoErr
	}

	// --- Undo ---------------------------------------------------------
	for id, ti := range att {
		if ti.ended {
			continue
		}
		if ti.committed {
			db.log.Append(wal.Record{Type: wal.RecEnd, TxID: id})
			rep.CompletedTxs++
			continue
		}
		if err := db.rollback(w, id, ti.lastLSN); err != nil {
			return rep, err
		}
		db.log.Append(wal.Record{Type: wal.RecEnd, TxID: id})
		rep.UndoneTxs++
	}
	db.log.Flush(db.log.Head())
	return rep, nil
}

// redoOne applies one logged operation if the page does not already
// reflect it (PageLSN guard). Pages that were never flushed before the
// crash are recreated empty. Runs with stateMu held exclusively.
func (db *DB) redoOne(w *sim.Worker, id core.PageID, op wal.PageOp, slot int, img []byte, lsn core.LSN) (bool, error) {
	st := db.pageDir.get(id)
	if st == nil {
		return false, fmt.Errorf("page %d has no store", id)
	}
	fr, err := db.pool.Get(w, id)
	if err != nil {
		// The page was allocated but never reached flash: recreate it and
		// let redo rebuild its contents from the log.
		if !st.region.Contains(id) {
			fr, err = db.pool.GetNew(w, id)
			if err != nil {
				return false, err
			}
			if _, err := page.Format(fr.Data, st.layout, id); err != nil {
				db.pool.Unpin(w, fr, false, 0)
				return false, err
			}
		} else {
			return false, err
		}
	}
	pg, err := page.Attach(fr.Data, st.layout)
	if err != nil {
		db.pool.Unpin(w, fr, false, 0)
		return false, err
	}
	if pg.LSN() >= lsn {
		return false, db.pool.Unpin(w, fr, false, 0)
	}
	if err := applyOp(pg, op, slot, img); err != nil {
		db.pool.Unpin(w, fr, false, 0)
		return false, err
	}
	pg.SetLSN(lsn)
	return true, db.pool.Unpin(w, fr, true, lsn)
}

// RestoreCatalog re-registers a table after a simulated restart. In a
// full system the catalog would live in bootstrapped pages; here it is
// engine metadata that survives the crash, but helper tests use this to
// rebuild DB handles.
func (db *DB) RestoreCatalog(t *Table) {
	db.catMu.Lock()
	defer db.catMu.Unlock()
	db.tables[t.name] = t
}
