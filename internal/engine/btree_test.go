package engine

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ipa/internal/core"
	"ipa/internal/noftl"
)

// indexKinds are the tree implementations every behavioural index test
// runs against: the semantics must be identical, only the latching
// differs.
var indexKinds = []IndexKind{IndexCoarse, IndexOLC}

func newIndexRig(t *testing.T, frames int) (*testRig, *CoarseIndex) {
	t.Helper()
	r := newRig(t, noftl.ModeSLC, core.NewScheme(2, 4), frames, false)
	ix, err := r.db.CreateIndex("ix", "main")
	if err != nil {
		t.Fatal(err)
	}
	return r, ix.(*CoarseIndex)
}

func newIndexRigKind(t *testing.T, frames int, kind IndexKind) (*testRig, Index) {
	t.Helper()
	r := newRig(t, noftl.ModeSLC, core.NewScheme(2, 4), frames, false)
	ix, err := r.db.CreateIndexKind("ix", "main", kind)
	if err != nil {
		t.Fatal(err)
	}
	return r, ix
}

// forEachKind runs a subtest per tree implementation.
func forEachKind(t *testing.T, f func(t *testing.T, kind IndexKind)) {
	for _, kind := range indexKinds {
		t.Run(kind.String(), func(t *testing.T) { f(t, kind) })
	}
}

func TestIndexInsertLookup(t *testing.T) {
	forEachKind(t, func(t *testing.T, kind IndexKind) {
		_, ix := newIndexRigKind(t, 32, kind)
		for k := uint64(1); k <= 100; k++ {
			if err := ix.Insert(nil, k, core.RID{Page: core.PageID(k), Slot: uint16(k)}); err != nil {
				t.Fatalf("insert %d: %v", k, err)
			}
		}
		for k := uint64(1); k <= 100; k++ {
			rid, ok, err := ix.Lookup(nil, k)
			if err != nil || !ok {
				t.Fatalf("lookup %d: %v %v", k, ok, err)
			}
			if rid.Page != core.PageID(k) || rid.Slot != uint16(k) {
				t.Fatalf("lookup %d = %v", k, rid)
			}
		}
		if _, ok, _ := ix.Lookup(nil, 9999); ok {
			t.Error("found absent key")
		}
		if err := ix.Insert(nil, 50, core.RID{Page: 1}); !errors.Is(err, ErrKeyExists) {
			t.Errorf("duplicate insert: %v", err)
		}
		st := ix.Stats()
		if st.Kind != kind {
			t.Errorf("Stats.Kind = %v, want %v", st.Kind, kind)
		}
		if st.Inserts != 101 || st.Lookups != 101 {
			t.Errorf("Stats = %+v, want 101 inserts / 101 lookups", st)
		}
	})
}

func TestIndexSplitsGrowTree(t *testing.T) {
	forEachKind(t, func(t *testing.T, kind IndexKind) {
		r, ix := newIndexRigKind(t, 64, kind)
		rooter := ix.(interface{ Root() core.PageID })
		rootBefore := rooter.Root()
		// 512B pages hold ~21 leaf entries; 2000 keys force multiple levels.
		for k := uint64(1); k <= 2000; k++ {
			if err := ix.Insert(nil, k, core.RID{Page: core.PageID(k), Slot: 1}); err != nil {
				t.Fatalf("insert %d: %v", k, err)
			}
		}
		if rooter.Root() == rootBefore {
			t.Error("root never split over 2000 keys")
		}
		// Every key still reachable.
		for k := uint64(1); k <= 2000; k += 37 {
			if _, ok, err := ix.Lookup(nil, k); !ok || err != nil {
				t.Fatalf("lookup %d after splits: %v %v", k, ok, err)
			}
		}
		// Index pages flowed through flash.
		if r.db.Store("main").Region().Stats().HostWrites() == 0 {
			t.Error("index pages never reached flash")
		}
	})
}

func TestIndexRandomOrderInsert(t *testing.T) {
	forEachKind(t, func(t *testing.T, kind IndexKind) {
		_, ix := newIndexRigKind(t, 64, kind)
		rng := rand.New(rand.NewSource(42))
		keys := rng.Perm(3000)
		for _, k := range keys {
			if err := ix.Insert(nil, uint64(k)+1, core.RID{Page: core.PageID(k + 1)}); err != nil {
				t.Fatalf("insert %d: %v", k, err)
			}
		}
		for _, k := range keys {
			rid, ok, err := ix.Lookup(nil, uint64(k)+1)
			if err != nil || !ok || rid.Page != core.PageID(k+1) {
				t.Fatalf("lookup %d: %v %v %v", k, rid, ok, err)
			}
		}
	})
}

func TestIndexRange(t *testing.T) {
	forEachKind(t, func(t *testing.T, kind IndexKind) {
		_, ix := newIndexRigKind(t, 64, kind)
		for k := uint64(0); k < 500; k += 2 { // even keys
			if err := ix.Insert(nil, k, core.RID{Page: core.PageID(k + 1)}); err != nil {
				t.Fatal(err)
			}
		}
		var got []uint64
		err := ix.Range(nil, 100, 140, func(k uint64, rid core.RID) bool {
			got = append(got, k)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		want := []uint64{100, 102, 104, 106, 108, 110, 112, 114, 116, 118, 120, 122, 124, 126, 128, 130, 132, 134, 136, 138, 140}
		if len(got) != len(want) {
			t.Fatalf("range returned %d keys, want %d: %v", len(got), len(want), got)
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			t.Error("range not sorted")
		}
		// Early termination.
		n := 0
		ix.Range(nil, 0, 1000, func(uint64, core.RID) bool { n++; return n < 5 })
		if n != 5 {
			t.Errorf("early stop visited %d", n)
		}
	})
}

func TestIndexUpdateAndDelete(t *testing.T) {
	forEachKind(t, func(t *testing.T, kind IndexKind) {
		_, ix := newIndexRigKind(t, 32, kind)
		for k := uint64(1); k <= 50; k++ {
			ix.Insert(nil, k, core.RID{Page: core.PageID(k)})
		}
		if err := ix.Update(nil, 25, core.RID{Page: 999}); err != nil {
			t.Fatal(err)
		}
		rid, ok, _ := ix.Lookup(nil, 25)
		if !ok || rid.Page != 999 {
			t.Errorf("after update: %v %v", rid, ok)
		}
		if err := ix.Update(nil, 9999, core.RID{}); err == nil {
			t.Error("update of absent key accepted")
		}
		deleted, err := ix.Delete(nil, 25)
		if err != nil || !deleted {
			t.Fatalf("delete: %v %v", deleted, err)
		}
		if _, ok, _ := ix.Lookup(nil, 25); ok {
			t.Error("deleted key still found")
		}
		deleted, _ = ix.Delete(nil, 25)
		if deleted {
			t.Error("double delete reported success")
		}
	})
}

func TestIndexSurvivesEvictions(t *testing.T) {
	forEachKind(t, func(t *testing.T, kind IndexKind) {
		// An 8-frame pool forces index pages through flash constantly.
		_, ix := newIndexRigKind(t, 8, kind)
		for k := uint64(1); k <= 1000; k++ {
			if err := ix.Insert(nil, k, core.RID{Page: core.PageID(k)}); err != nil {
				t.Fatalf("insert %d: %v", k, err)
			}
		}
		for k := uint64(1); k <= 1000; k++ {
			rid, ok, err := ix.Lookup(nil, k)
			if err != nil || !ok || rid.Page != core.PageID(k) {
				t.Fatalf("lookup %d: %v %v %v", k, rid, ok, err)
			}
		}
	})
}

// Property: after any random sequence of inserts and deletes, the index
// agrees with a map reference and Range enumerates keys in sorted order.
// Both tree kinds must satisfy it.
func TestPropertyIndexMatchesReference(t *testing.T) {
	forEachKind(t, func(t *testing.T, kind IndexKind) {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			r := newRig(t, noftl.ModeSLC, core.NewScheme(2, 4), 32, false)
			ix, err := r.db.CreateIndexKind("ix", "main", kind)
			if err != nil {
				return false
			}
			ref := map[uint64]core.PageID{}
			for op := 0; op < 400; op++ {
				k := uint64(rng.Intn(200) + 1)
				switch rng.Intn(3) {
				case 0, 1: // insert
					if _, dup := ref[k]; dup {
						continue
					}
					p := core.PageID(rng.Intn(1000) + 1)
					if err := ix.Insert(nil, k, core.RID{Page: p}); err != nil {
						return false
					}
					ref[k] = p
				case 2: // delete
					deleted, err := ix.Delete(nil, k)
					if err != nil {
						return false
					}
					_, had := ref[k]
					if deleted != had {
						return false
					}
					delete(ref, k)
				}
			}
			// Point lookups agree.
			for k, p := range ref {
				rid, ok, err := ix.Lookup(nil, k)
				if err != nil || !ok || rid.Page != p {
					return false
				}
			}
			// Range enumerates exactly the reference keys, sorted.
			var keys []uint64
			if err := ix.Range(nil, 0, 1<<62, func(k uint64, rid core.RID) bool {
				keys = append(keys, k)
				return true
			}); err != nil {
				return false
			}
			if len(keys) != len(ref) {
				return false
			}
			for i := 1; i < len(keys); i++ {
				if keys[i-1] >= keys[i] {
					return false
				}
			}
			for _, k := range keys {
				if _, ok := ref[k]; !ok {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
			t.Error(err)
		}
	})
}
