package engine

import (
	"sync"
	"sync/atomic"

	"ipa/internal/core"
	"ipa/internal/wal"
)

// This file implements the MVCC version store behind Options.MVCC:
// snapshot readers resolve tuples through per-RID before-image chains
// instead of the no-wait lock table, so long analytical scans never
// block writers and never abort (the reader-vs-writer abort class the
// no-wait protocol otherwise pays under skew).
//
// Design notes:
//
//   - Versions are BEFORE-images. A chain entry tagged with commit LSN C
//     means "before C, the tuple's value was entry.data" (absent=true
//     means "before C there was no tuple in this slot"). The heap page
//     always holds the newest committed-or-pending state; the chain
//     holds history. Before-images are already materialised on every
//     update for the WAL's undo records, so installing them here is one
//     extra slice reference, not a copy of a copy.
//
//   - Writers install a PENDING entry (commit==0, owner==txID) at the
//     chain head while holding the page's exclusive frame latch — the
//     same latch that orders the heap mutation and the WAL append — so
//     a snapshot reader that observes the modified heap tuple is
//     guaranteed to find the covering before-image in the chain.
//     Commit stamps the pending entry with the commit LSN before locks
//     release; abort drops it after the heap rollback, also before
//     locks release. Per-RID writers serialise on the tuple lock, so a
//     chain has at most one pending entry and stamped entries are in
//     descending commit-LSN order.
//
//   - Snapshot visibility: a reader pinned at snapshot LSN S must see
//     the tuple state as of S. Resolution returns the before-image of
//     the OLDEST chain entry whose commit LSN is > S (pending counts as
//     +infinity); if no entry is newer than S, the heap tuple itself is
//     the answer.
//
//   - Snapshot LSNs and commit visibility: the commit record's LSN is
//     allocated and registered in an in-flight set atomically (both
//     under vs.mu), and deregistered only after every owned chain entry
//     is stamped. BeginSnapshot pins S = min(in-flight)-1 (or the log
//     head when none are in flight) under the same mutex, so every
//     commit <= S is fully stamped and fully visible — a snapshot can
//     never observe a half-stamped transaction.
//
//   - Pruning: a background reaper (same doorbell/drain pattern as the
//     PR 3 maintenance goroutine) trims every chain suffix whose commit
//     LSN is <= the prune bound: min(active snapshot LSNs, in-flight
//     commit LSNs - 1), or the log head when both sets are empty.
//     Pending entries are never pruned.
type versionStore struct {
	shards [versionShards]versionShard

	// mu guards the snapshot/commit visibility state below.
	mu       sync.Mutex
	inflight map[core.LSN]int    // commit LSNs appended but not yet fully stamped
	snaps    map[uint64]core.LSN // active snapshot LSN by tx id

	// Monotonic counters (see MVCCStats).
	live      atomic.Int64
	installed atomic.Uint64
	pruned    atomic.Uint64
	pruneRuns atomic.Uint64
	snapsEver atomic.Uint64
	snapReads atomic.Uint64
	snapScans atomic.Uint64

	// sinceReap counts stamped versions since the last reaper poke; the
	// reaper is also poked whenever a snapshot ends (the prune bound may
	// have advanced past retained history).
	sinceReap atomic.Uint64

	reapCh   chan struct{}
	reapStop chan struct{}
	reapWG   sync.WaitGroup
}

const (
	versionShards = 64
	// reapBatch is how many newly stamped versions accumulate before the
	// reaper is poked. Small enough to keep chains short under write
	// pressure, large enough to amortise the full-store sweep.
	reapBatch = 1024
)

type versionShard struct {
	mu     sync.Mutex
	chains map[core.RID]*versionChain
}

// versionChain holds a RID's history, newest first: entries[0] may be
// the single pending entry; stamped entries follow in strictly
// descending commit-LSN order.
type versionChain struct {
	entries []version
}

// version is one before-image. commit==0 marks a pending entry owned by
// the in-flight transaction owner; stamped entries have owner 0.
type version struct {
	commit core.LSN
	owner  uint64
	data   []byte
	absent bool // the tuple did not exist before the tagged change
}

func newVersionStore() *versionStore {
	vs := &versionStore{
		inflight: make(map[core.LSN]int),
		snaps:    make(map[uint64]core.LSN),
		reapCh:   make(chan struct{}, 1),
	}
	for i := range vs.shards {
		vs.shards[i].chains = make(map[core.RID]*versionChain)
	}
	return vs
}

func (vs *versionStore) shard(rid core.RID) *versionShard {
	h := uint64(rid.Page)*0x9e3779b97f4a7c15 + uint64(rid.Slot)
	return &vs.shards[(h>>32)&(versionShards-1)]
}

// installPending records the before-image of rid under the writing
// transaction. The caller holds the page's exclusive frame latch and
// the tuple's lock. Idempotent per (rid, owner): only the first write a
// transaction makes to a tuple contributes the before-image — later
// writes by the same transaction refine an uncommitted state no
// snapshot may see.
func (vs *versionStore) installPending(rid core.RID, owner uint64, before []byte, absent bool) {
	sh := vs.shard(rid)
	sh.mu.Lock()
	ch := sh.chains[rid]
	if ch == nil {
		ch = &versionChain{}
		sh.chains[rid] = ch
	}
	if len(ch.entries) > 0 && ch.entries[0].commit == 0 {
		// Already pending. The tuple lock guarantees the owner matches.
		sh.mu.Unlock()
		return
	}
	ch.entries = append([]version{{owner: owner, data: before, absent: absent}}, ch.entries...)
	sh.mu.Unlock()
	vs.live.Add(1)
	vs.installed.Add(1)
}

// stampCommitted tags the transaction's pending entries with its commit
// LSN. Runs after the commit record is appended (and registered
// in-flight) and before locks release. The abort path reuses it with
// the end-record LSN: the before-image is exactly what the rollback
// restored, so the stamped entry stays true, and a snapshot reader that
// copied pre-rollback heap state still resolves the committed value.
func (vs *versionStore) stampCommitted(rids []core.RID, owner uint64, commit core.LSN) {
	var stamped uint64
	for _, rid := range rids {
		sh := vs.shard(rid)
		sh.mu.Lock()
		if ch := sh.chains[rid]; ch != nil && len(ch.entries) > 0 {
			if e := &ch.entries[0]; e.commit == 0 && e.owner == owner {
				e.commit = commit
				e.owner = 0
				stamped++
			}
		}
		sh.mu.Unlock()
	}
	if vs.sinceReap.Add(stamped) >= reapBatch {
		vs.sinceReap.Store(0)
		vs.pokeReaper()
	}
}

// resolve answers "what did rid hold at snapshot S?". override reports
// whether the chain supplies the answer: if true, data/absent are the
// tuple state at S (data is safe to retain — entries are immutable once
// installed). If false, the current heap tuple is the answer.
func (vs *versionStore) resolve(rid core.RID, snap core.LSN) (data []byte, absent, override bool) {
	sh := vs.shard(rid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ch := sh.chains[rid]
	if ch == nil {
		return nil, false, false
	}
	// Entries are newest-first; find the oldest one newer than snap.
	for i := len(ch.entries) - 1; i >= 0; i-- {
		e := ch.entries[i]
		if e.commit == 0 || e.commit > snap {
			return e.data, e.absent, true
		}
	}
	return nil, false, false
}

// beginSnapshot pins a snapshot LSN for the transaction. head is
// consulted only when no commit is in flight. head is the log's
// contiguous published horizon (lock-free — the log takes no mutex
// under vs.mu): every completed Commit has group-flushed past its
// commit LSN, so a snapshot begun after a commit returns always pins
// an LSN covering it (read-your-commits is preserved).
func (vs *versionStore) beginSnapshot(txID uint64, head func() core.LSN) core.LSN {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	var s core.LSN
	if len(vs.inflight) == 0 {
		s = head()
	} else {
		first := true
		for lsn := range vs.inflight {
			if first || lsn-1 < s {
				s = lsn - 1
				first = false
			}
		}
	}
	vs.snaps[txID] = s
	vs.snapsEver.Add(1)
	return s
}

// endSnapshot releases the transaction's snapshot pin and pokes the
// reaper (the prune bound may have advanced).
func (vs *versionStore) endSnapshot(txID uint64) {
	vs.mu.Lock()
	_, had := vs.snaps[txID]
	delete(vs.snaps, txID)
	vs.mu.Unlock()
	if had {
		vs.pokeReaper()
	}
}

// commitAppend appends the transaction's commit record and registers
// its LSN in-flight in one atomic step, so no snapshot can pin an LSN
// that covers a not-yet-stamped commit.
func (vs *versionStore) commitAppend(log *wal.Log, txID uint64, prev core.LSN) core.LSN {
	vs.mu.Lock()
	lsn := log.Append(wal.Record{Type: wal.RecCommit, TxID: txID, PrevLSN: prev})
	vs.inflight[lsn]++
	vs.mu.Unlock()
	return lsn
}

// registerInflight registers an already-known commit LSN as in flight,
// for the replication applier: the shipped commit record's LSN is fixed
// by log parity, so the applier registers it BEFORE appending locally —
// guaranteeing no snapshot pins an LSN covering the commit while its
// chain entries are still being stamped.
func (vs *versionStore) registerInflight(lsn core.LSN) {
	vs.mu.Lock()
	vs.inflight[lsn]++
	vs.mu.Unlock()
}

// finishCommit deregisters a fully stamped commit.
func (vs *versionStore) finishCommit(lsn core.LSN) {
	vs.mu.Lock()
	if vs.inflight[lsn]--; vs.inflight[lsn] <= 0 {
		delete(vs.inflight, lsn)
	}
	vs.mu.Unlock()
}

// pruneBound computes the newest commit LSN whose before-images are no
// longer needed: everything at or below min(active snapshots, in-flight
// commits - 1) is invisible to every current and future snapshot.
func (vs *versionStore) pruneBound(head core.LSN) core.LSN {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	bound := head
	for lsn := range vs.inflight {
		if lsn-1 < bound {
			bound = lsn - 1
		}
	}
	for _, s := range vs.snaps {
		if s < bound {
			bound = s
		}
	}
	return bound
}

// prune trims every chain's suffix of entries with commit <= bound.
// Pending entries (commit==0) are never touched. Returns how many
// versions were released.
func (vs *versionStore) prune(bound core.LSN) uint64 {
	var removed uint64
	for i := range vs.shards {
		sh := &vs.shards[i]
		sh.mu.Lock()
		for rid, ch := range sh.chains {
			// Newest-first and descending: find the first stamped entry at
			// or below the bound; it and everything after it can go.
			cut := -1
			for j, e := range ch.entries {
				if e.commit != 0 && e.commit <= bound {
					cut = j
					break
				}
			}
			if cut < 0 {
				continue
			}
			removed += uint64(len(ch.entries) - cut)
			if cut == 0 {
				delete(sh.chains, rid)
			} else {
				ch.entries = ch.entries[:cut:cut]
			}
		}
		sh.mu.Unlock()
	}
	if removed > 0 {
		vs.live.Add(-int64(removed))
		vs.pruned.Add(removed)
	}
	return removed
}

// pokeReaper wakes the reaper without blocking (capacity-1 doorbell; a
// pending poke already covers later ones).
func (vs *versionStore) pokeReaper() {
	select {
	case vs.reapCh <- struct{}{}:
	default:
	}
}

// startReaper launches the background prune goroutine. Called from
// engine.New and from SimulateCrash when it reopens a closed instance.
func (vs *versionStore) startReaper(head func() core.LSN) {
	stop := make(chan struct{})
	vs.reapStop = stop
	vs.reapWG.Add(1)
	go func() {
		defer vs.reapWG.Done()
		for {
			select {
			case <-stop:
				return
			case <-vs.reapCh:
			}
			vs.pruneRuns.Add(1)
			vs.prune(vs.pruneBound(head()))
		}
	}()
}

// stopReaper drains the reaper deterministically (DB.Close).
func (vs *versionStore) stopReaper() {
	if vs.reapStop == nil {
		return
	}
	close(vs.reapStop)
	vs.reapWG.Wait()
	vs.reapStop = nil
}

// reset throws away all volatile MVCC state — chains, snapshot pins and
// in-flight commits — for SimulateCrash. Before-images only shadow
// uncommitted or superseded heap state, so an empty store after restart
// recovery is consistent: recovery rolls uncommitted changes back on
// the heap itself, and new snapshots simply start from live state.
// Cumulative counters survive (they are observability, not state).
func (vs *versionStore) reset() {
	vs.mu.Lock()
	vs.inflight = make(map[core.LSN]int)
	vs.snaps = make(map[uint64]core.LSN)
	vs.mu.Unlock()
	for i := range vs.shards {
		sh := &vs.shards[i]
		sh.mu.Lock()
		sh.chains = make(map[core.RID]*versionChain)
		sh.mu.Unlock()
	}
	vs.live.Store(0)
	vs.sinceReap.Store(0)
}

// MVCCStats reports version-store observability counters (zero value
// with Enabled=false when Options.MVCC is off).
type MVCCStats struct {
	Enabled           bool
	VersionsLive      int64  // before-images currently retained
	VersionsInstalled uint64 // pending entries ever installed
	VersionsPruned    uint64 // entries released by the reaper
	PruneRuns         uint64 // reaper sweeps
	SnapshotsStarted  uint64 // BeginSnapshot calls
	SnapshotsActive   int    // currently pinned snapshots
	SnapshotReads     uint64 // point reads resolved at a snapshot
	SnapshotScans     uint64 // table scans resolved at a snapshot
}

func (vs *versionStore) stats() MVCCStats {
	if vs == nil {
		return MVCCStats{}
	}
	vs.mu.Lock()
	active := len(vs.snaps)
	vs.mu.Unlock()
	return MVCCStats{
		Enabled:           true,
		VersionsLive:      vs.live.Load(),
		VersionsInstalled: vs.installed.Load(),
		VersionsPruned:    vs.pruned.Load(),
		PruneRuns:         vs.pruneRuns.Load(),
		SnapshotsStarted:  vs.snapsEver.Load(),
		SnapshotsActive:   active,
		SnapshotReads:     vs.snapReads.Load(),
		SnapshotScans:     vs.snapScans.Load(),
	}
}
