package engine

import (
	"fmt"
	"sync"

	"ipa/internal/buffer"
	"ipa/internal/core"
	"ipa/internal/noftl"
	"ipa/internal/page"
	"ipa/internal/sim"
	"ipa/internal/wal"
)

// Options configures a database instance.
type Options struct {
	// PageSize of database pages; must equal the flash page size. Zero
	// selects 4096.
	PageSize int
	// BufferFrames in the pool.
	BufferFrames int
	// LogCapacity in bytes; 0 means unbounded (no log-space pressure).
	LogCapacity int
	// LogReclaimThreshold: reclaim log space (flushing old dirty pages and
	// checkpointing) when usage exceeds this fraction. Zero selects 0.35,
	// inside Shore-MT's eager 25–50% window.
	LogReclaimThreshold float64
	// DirtyThreshold / CleanBatch tune the buffer cleaner (see buffer
	// package); DirtyThreshold 0 = eager 12.5%, 0.75 = the paper's
	// non-eager configuration.
	DirtyThreshold float64
	CleanBatch     int
	// UseECC enables sectioned ECC in the OOB area.
	UseECC bool
	// Timeline provides simulated time; optional.
	Timeline *sim.Timeline
}

func (o Options) pageSize() int {
	if o.PageSize <= 0 {
		return 4096
	}
	return o.PageSize
}

func (o Options) reclaimThreshold() float64 {
	if o.LogReclaimThreshold <= 0 {
		return 0.35
	}
	return o.LogReclaimThreshold
}

// DB is the storage engine instance: catalog, buffer pool, WAL and the
// per-region page stores. All public methods are safe for concurrent use;
// operations serialise on an engine latch while simulated time still
// overlaps through per-worker clocks.
type DB struct {
	mu   sync.Mutex
	dev  *noftl.Device
	log  *wal.Log
	pool *buffer.Pool
	opts Options

	stores      map[string]*PageStore // by region name
	pageDir     map[core.PageID]*PageStore
	tables      map[string]*Table
	tablespaces map[string]string // tablespace name → region name (DDL)

	nextPage core.PageID
	nextTx   uint64
	active   map[uint64]*Tx
	// locks is a no-wait exclusive lock table at RID granularity:
	// conflicting updates fail immediately with ErrLockConflict (no-wait
	// deadlock avoidance), and locks are held until commit/abort.
	locks map[core.RID]uint64

	cleaner     *sim.Worker
	checkpoints uint64
	reclaims    uint64
	inRecovery  bool
}

// router dispatches buffer.Store calls to the page's owning store.
type router struct{ db *DB }

func (r router) Fetch(w *sim.Worker, id core.PageID, buf []byte) (int, error) {
	st := r.db.pageDir[id]
	if st == nil {
		return 0, fmt.Errorf("%w: page %d has no store", noftl.ErrUnknownPage, id)
	}
	return st.Fetch(w, id, buf)
}

func (r router) Flush(w *sim.Worker, fr *buffer.Frame) error {
	st := r.db.pageDir[fr.ID]
	if st == nil {
		return fmt.Errorf("%w: page %d has no store", noftl.ErrUnknownPage, fr.ID)
	}
	return st.Flush(w, fr)
}

// New creates a database over a NoFTL device.
func New(dev *noftl.Device, opts Options) (*DB, error) {
	db := &DB{
		dev:      dev,
		log:      wal.NewLog(opts.LogCapacity),
		opts:     opts,
		stores:   make(map[string]*PageStore),
		pageDir:  make(map[core.PageID]*PageStore),
		tables:   make(map[string]*Table),
		nextPage: 1,
		nextTx:   1,
		active:   make(map[uint64]*Tx),
		locks:    make(map[core.RID]uint64),
	}
	if opts.Timeline != nil {
		db.cleaner = opts.Timeline.NewWorker()
	}
	pool, err := buffer.New(buffer.Config{
		Frames:         opts.BufferFrames,
		PageSize:       opts.pageSize(),
		DirtyThreshold: opts.DirtyThreshold,
		CleanBatch:     opts.CleanBatch,
		Cleaner:        db.cleaner,
	}, router{db})
	if err != nil {
		return nil, err
	}
	db.pool = pool
	return db, nil
}

// Log exposes the write-ahead log (read-only use by tools/tests).
func (db *DB) Log() *wal.Log { return db.log }

// Pool exposes the buffer pool.
func (db *DB) Pool() *buffer.Pool { return db.pool }

// Device exposes the NoFTL device.
func (db *DB) Device() *noftl.Device { return db.dev }

// Checkpoints returns how many checkpoints have been taken.
func (db *DB) Checkpoints() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.checkpoints
}

// AttachRegion makes a NoFTL region usable as a tablespace, creating its
// page store.
func (db *DB) AttachRegion(regionName string) (*PageStore, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.attachRegionLocked(regionName)
}

func (db *DB) attachRegionLocked(regionName string) (*PageStore, error) {
	if st, ok := db.stores[regionName]; ok {
		return st, nil
	}
	region := db.dev.Region(regionName)
	if region == nil {
		return nil, fmt.Errorf("engine: no region %q", regionName)
	}
	st, err := NewPageStore(region, db.opts.pageSize(), db.opts.UseECC)
	if err != nil {
		return nil, err
	}
	db.stores[regionName] = st
	return st, nil
}

// Store returns the page store of a region, or nil.
func (db *DB) Store(regionName string) *PageStore {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.stores[regionName]
}

// allocPageLocked assigns a fresh page id owned by the store.
func (db *DB) allocPageLocked(st *PageStore) core.PageID {
	id := db.nextPage
	db.nextPage++
	db.pageDir[id] = st
	return id
}

// newPageLocked allocates and formats a new page, returning it pinned.
func (db *DB) newPageLocked(w *sim.Worker, st *PageStore, owner uint64, flags uint16) (*buffer.Frame, *page.Page, error) {
	id := db.allocPageLocked(st)
	fr, err := db.pool.GetNew(w, id)
	if err != nil {
		delete(db.pageDir, id)
		return nil, nil, err
	}
	pg, err := page.Format(fr.Data, st.layout, id)
	if err != nil {
		db.pool.Unpin(w, fr, false, 0)
		delete(db.pageDir, id)
		return nil, nil, err
	}
	pg.SetOwner(owner)
	pg.SetFlags(flags)
	return fr, pg, nil
}

// maybeReclaimLocked emulates Shore-MT's eager log-space reclamation:
// when the log fills past the threshold, the oldest dirty pages are
// flushed, a fuzzy checkpoint is taken and the log tail advances.
func (db *DB) maybeReclaimLocked(w *sim.Worker) error {
	if db.log.Capacity() == 0 || db.log.Usage() <= db.opts.reclaimThreshold() {
		return nil
	}
	db.reclaims++
	cw := db.cleaner
	if cw == nil {
		cw = w
	} else if w != nil {
		cw.SetNow(w.Now())
	}
	if _, err := db.pool.FlushOldest(cw, db.pool.Size()/4+1); err != nil {
		return err
	}
	return db.checkpointLocked(w)
}

// Checkpoint takes a fuzzy checkpoint and truncates the log.
func (db *DB) Checkpoint(w *sim.Worker) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.checkpointLocked(w)
}

func (db *DB) checkpointLocked(w *sim.Worker) error {
	att := make(map[uint64]core.LSN, len(db.active))
	var minTxFirst core.LSN
	for id, tx := range db.active {
		att[id] = tx.lastLSN
		if minTxFirst == 0 || tx.firstLSN < minTxFirst {
			minTxFirst = tx.firstLSN
		}
	}
	dpt := db.pool.DirtyPages()
	ckptLSN := db.log.Append(wal.Record{Type: wal.RecCheckpoint, ActiveTxs: att, DirtyPages: dpt})
	db.log.Flush(ckptLSN)
	db.checkpoints++

	// The log tail can advance to the oldest LSN still needed: the
	// earliest recLSN of a dirty page, the first LSN of an active
	// transaction, or the checkpoint itself.
	cut := ckptLSN
	if r := db.pool.OldestRecLSN(); r != 0 && r < cut {
		cut = r
	}
	if minTxFirst != 0 && minTxFirst < cut {
		cut = minTxFirst
	}
	db.log.Truncate(cut)
	return nil
}

// FlushAll forces every dirty page out (clean shutdown support).
func (db *DB) FlushAll(w *sim.Worker) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.pool.FlushAll(w)
}

// ResizePool replaces the buffer pool with one of the given frame count
// (flushing all dirty pages first). The experiment harness uses this to
// set the buffer size to a percentage of the loaded database size, as the
// paper's buffer-sweep experiments do.
func (db *DB) ResizePool(w *sim.Worker, frames int) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.pool.FlushAll(w); err != nil {
		return err
	}
	pool, err := buffer.New(buffer.Config{
		Frames:         frames,
		PageSize:       db.opts.pageSize(),
		DirtyThreshold: db.opts.DirtyThreshold,
		CleanBatch:     db.opts.CleanBatch,
		Cleaner:        db.cleaner,
	}, router{db})
	if err != nil {
		return err
	}
	db.pool = pool
	db.opts.BufferFrames = frames
	return nil
}

// SimulateCrash throws away all volatile state — buffer pool contents and
// the active-transaction table — keeping flash contents, the log and the
// catalog (assumed on stable metadata storage, as NoFTL does). Restart
// must call Recover before new work.
func (db *DB) SimulateCrash() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	pool, err := buffer.New(buffer.Config{
		Frames:         db.opts.BufferFrames,
		PageSize:       db.opts.pageSize(),
		DirtyThreshold: db.opts.DirtyThreshold,
		CleanBatch:     db.opts.CleanBatch,
		Cleaner:        db.cleaner,
	}, router{db})
	if err != nil {
		return err
	}
	db.pool = pool
	db.active = make(map[uint64]*Tx)
	db.locks = make(map[core.RID]uint64)
	return nil
}
