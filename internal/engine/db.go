package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ipa/internal/buffer"
	"ipa/internal/core"
	"ipa/internal/noftl"
	"ipa/internal/page"
	"ipa/internal/sim"
	"ipa/internal/wal"
)

// Engine configuration errors.
var (
	// ErrNoRegion is returned when a named NoFTL region does not exist.
	ErrNoRegion = errors.New("engine: no such region")
	// ErrBadOptions is returned by Options.Validate for nonsense configs.
	ErrBadOptions = errors.New("engine: invalid options")
	// ErrClosed is returned by Begin, Checkpoint and Stats once Close has
	// returned. The flag is raised under the engine state latch before the
	// maintenance goroutine is drained, so a caller that observes Close
	// returning can rely on every later Begin failing — the server layer's
	// graceful shutdown depends on this being deterministic, not a race
	// against the drain.
	ErrClosed = errors.New("engine: database closed")
)

// Options configures a database instance.
type Options struct {
	// PageSize of database pages; must equal the flash page size. Zero
	// selects 4096.
	PageSize int
	// BufferFrames in the pool.
	BufferFrames int
	// PoolShards splits the buffer pool into independent shards (own
	// mutex, page table, CLOCK hand and dirty accounting per shard),
	// removing the pool as a serialization point under many workers.
	// Zero or 1 keeps the single global CLOCK whose eviction order is
	// bit-identical to the historical pool — required by the paper
	// experiments, whose update-size distributions (Tables 1/9/10/11)
	// depend on deterministic eviction. Concurrency benchmarks and
	// production-style deployments opt in with ≥ 2 (rounded up to a
	// power of two, capped by BufferFrames).
	PoolShards int
	// LogCapacity in bytes; 0 means unbounded (no log-space pressure).
	LogCapacity int
	// CommitWindow lets a WAL group-commit leader linger before flushing
	// so its batch can absorb more committers under heavy load. The
	// default 0 flushes immediately — required by the paper experiments,
	// whose flush counts and reclaim timing are deterministic.
	CommitWindow time.Duration
	// LogReclaimThreshold: reclaim log space (flushing old dirty pages and
	// checkpointing) when usage exceeds this fraction. Zero selects 0.35,
	// inside Shore-MT's eager 25–50% window.
	LogReclaimThreshold float64
	// DirtyThreshold / CleanBatch tune the buffer cleaner (see buffer
	// package); DirtyThreshold 0 = eager 12.5%, 0.75 = the paper's
	// non-eager configuration. Values above 1 disable cleaning.
	DirtyThreshold float64
	CleanBatch     int
	// ReclaimFlushBatch is how many of the oldest dirty pages one
	// log-space reclaim pass flushes before checkpointing. Zero selects
	// pool/4+1, the historical default; the reclaim is insensitive to the
	// exact batch as long as it scales with the pool.
	ReclaimFlushBatch int
	// UseECC enables sectioned ECC in the OOB area.
	UseECC bool
	// IndexKind selects the B+tree implementation CreateIndex builds.
	// The zero value (IndexCoarse) keeps the tree-wide latch whose page
	// layout and allocation order the paper's golden renders pin —
	// mirroring the PoolShards=1 pattern. IndexOLC switches to
	// optimistic lock coupling for the concurrency benchmarks and
	// production-style deployments. Individual indexes can override via
	// CreateIndexKind.
	IndexKind IndexKind
	// BackgroundMaintenance moves buffer cleaning and log-space
	// reclamation (FlushOldest + fuzzy checkpoint) off the transaction
	// path onto a dedicated maintenance goroutine — Shore-MT's page
	// cleaner thread. The default (false) keeps both inline, preserving
	// the paper's measured semantics. Call Close to stop the goroutine.
	BackgroundMaintenance bool
	// MVCC enables multi-version snapshot reads: committed updates link
	// their before-images (tagged with the commit LSN) into a sharded
	// per-RID version store, DB.BeginSnapshot pins a read-only snapshot
	// LSN, and Table.ReadSnapshot/ScanSnapshot resolve tuples through
	// the chains — never touching the no-wait lock table, never
	// blocking writers, never aborting. A background reaper prunes
	// chains bounded by the minimum active snapshot LSN; Close drains
	// it. The default (false) keeps the write path byte-identical to
	// the paper-fidelity engine (no version-store hooks run at all).
	MVCC bool
	// Replicated makes the WAL self-describing for log-shipping
	// replication: CreateTable appends a RecTable record and every page
	// allocation a RecAlloc record, so a follower can rebuild the
	// catalog, heap chains and page directory from the stream alone.
	// Neither record is transactional and both are ignored by recovery.
	// The default (false) keeps the log byte-identical to the
	// single-node engine — the paper experiments' golden renders never
	// see these records.
	Replicated bool
	// Timeline provides simulated time; optional.
	Timeline *sim.Timeline
}

func (o Options) pageSize() int {
	if o.PageSize <= 0 {
		return 4096
	}
	return o.PageSize
}

func (o Options) reclaimThreshold() float64 {
	if o.LogReclaimThreshold <= 0 {
		return 0.35
	}
	return o.LogReclaimThreshold
}

// Validate rejects nonsense configurations instead of silently
// defaulting. flashPageSize is the device page size the database pages
// must match (0 skips that check, for validation before a device is
// chosen). All errors wrap ErrBadOptions.
func (o Options) Validate(flashPageSize int) error {
	if o.BufferFrames < 1 {
		return fmt.Errorf("%w: BufferFrames %d (need ≥ 1)", ErrBadOptions, o.BufferFrames)
	}
	if o.PageSize < 0 {
		return fmt.Errorf("%w: PageSize %d", ErrBadOptions, o.PageSize)
	}
	if flashPageSize > 0 && o.pageSize() != flashPageSize {
		return fmt.Errorf("%w: page size %d != flash page size %d",
			ErrBadOptions, o.pageSize(), flashPageSize)
	}
	if o.LogCapacity < 0 {
		return fmt.Errorf("%w: LogCapacity %d", ErrBadOptions, o.LogCapacity)
	}
	if o.CommitWindow < 0 {
		return fmt.Errorf("%w: CommitWindow %v", ErrBadOptions, o.CommitWindow)
	}
	if o.LogReclaimThreshold < 0 || o.LogReclaimThreshold >= 1 {
		return fmt.Errorf("%w: LogReclaimThreshold %v (need [0,1))", ErrBadOptions, o.LogReclaimThreshold)
	}
	if o.DirtyThreshold < 0 {
		return fmt.Errorf("%w: DirtyThreshold %v", ErrBadOptions, o.DirtyThreshold)
	}
	if o.CleanBatch < 0 {
		return fmt.Errorf("%w: CleanBatch %d", ErrBadOptions, o.CleanBatch)
	}
	if o.ReclaimFlushBatch < 0 {
		return fmt.Errorf("%w: ReclaimFlushBatch %d", ErrBadOptions, o.ReclaimFlushBatch)
	}
	if o.PoolShards < 0 {
		return fmt.Errorf("%w: PoolShards %d", ErrBadOptions, o.PoolShards)
	}
	if o.IndexKind != IndexCoarse && o.IndexKind != IndexOLC {
		return fmt.Errorf("%w: IndexKind %d", ErrBadOptions, int(o.IndexKind))
	}
	return nil
}

// DB is the storage engine instance: catalog, buffer pool, WAL and the
// per-region page stores. All public methods are safe for concurrent use
// under fine-grained synchronisation (see DESIGN.md, "Latching
// hierarchy"): tuple locks live in a sharded no-wait lock table, page
// contents are guarded by per-frame latches, the WAL appends lock-free
// (atomic LSN reservation with adaptive group flush), and the only engine-wide lock is a
// reader/writer state latch that stop-the-world operations (pool resize,
// crash simulation, recovery) take exclusively while normal transactions
// hold it shared.
type DB struct {
	dev  *noftl.Device
	log  *wal.Log
	opts Options

	// stateMu guards the pool pointer and recovery state. Every normal
	// operation holds it shared for its duration; ResizePool,
	// SimulateCrash and Recover hold it exclusively.
	stateMu    sync.RWMutex
	pool       *buffer.Pool
	inRecovery bool

	// catMu guards the catalog maps (stores, tables, tablespaces,
	// indexes). DDL only; never held across page I/O.
	catMu       sync.Mutex
	stores      map[string]*PageStore // by region name
	tables      map[string]*Table
	tablespaces map[string]string // tablespace name → region name (DDL)
	indexes     map[string]Index  // by index name (Stats observability)

	// pageDir maps every allocated page to its owning store (sharded; on
	// the buffer pool's fetch/flush path). locks is the sharded no-wait
	// tuple lock table: conflicting updates fail immediately with
	// ErrLockConflict and locks are held until commit/abort.
	pageDir pageDir
	locks   lockTable

	// vs is the MVCC version store (nil unless Options.MVCC). Every hook
	// on the write path is guarded by a nil check so the default engine
	// runs the historical, paper-fidelity code byte-for-byte.
	vs *versionStore

	// Abort accounting by reason (see AbortStats).
	abortsLock     atomic.Uint64
	abortsExplicit atomic.Uint64
	lockConflicts  atomic.Uint64

	nextPage atomic.Uint64
	nextTx   atomic.Uint64

	// txMu guards the active-transaction table (fuzzy checkpoints snapshot
	// it).
	txMu   sync.Mutex
	active map[uint64]*Tx

	// ckptMu serialises checkpoint/log-reclaim; reclaim triggers use
	// TryLock so concurrent committers don't stampede behind one
	// checkpoint.
	ckptMu      sync.Mutex
	cleaner     *sim.Worker
	checkpoints atomic.Uint64
	reclaims    atomic.Uint64

	// Background maintenance (Options.BackgroundMaintenance): one
	// goroutine drains maintCh and runs cleaner passes and log-space
	// reclaims so transaction workers never carry them. maintCh has
	// capacity 1 — a pending poke already covers later ones.
	maintCh   chan struct{}
	maintStop chan struct{}
	maintWG   sync.WaitGroup

	// closed is raised by Close (under stateMu exclusive) and lowered by
	// SimulateCrash, which models a process restart and therefore reopens
	// the instance. closeMu serialises Close calls so repeats return the
	// first outcome instead of double-draining the maintenance goroutine.
	closed   atomic.Bool
	closeMu  sync.Mutex
	closeErr error

	maintErrMu sync.Mutex
	maintErr   error
}

// router dispatches buffer.Store calls to the page's owning store.
type router struct{ db *DB }

func (r router) Fetch(w *sim.Worker, id core.PageID, buf []byte) (int, error) {
	st := r.db.pageDir.get(id)
	if st == nil {
		return 0, fmt.Errorf("%w: page %d has no store", noftl.ErrUnknownPage, id)
	}
	return st.Fetch(w, id, buf)
}

func (r router) Flush(w *sim.Worker, fr *buffer.Frame) error {
	st := r.db.pageDir.get(fr.ID)
	if st == nil {
		return fmt.Errorf("%w: page %d has no store", noftl.ErrUnknownPage, fr.ID)
	}
	return st.Flush(w, fr)
}

// newPool builds a buffer pool from the instance options — the single
// place the buffer.Config literal lives, shared by New, ResizePool and
// SimulateCrash.
func (db *DB) newPool(frames int) (*buffer.Pool, error) {
	cfg := buffer.Config{
		Frames:         frames,
		PageSize:       db.opts.pageSize(),
		Shards:         db.opts.PoolShards,
		DirtyThreshold: db.opts.DirtyThreshold,
		CleanBatch:     db.opts.CleanBatch,
		Cleaner:        db.cleaner,
	}
	if db.opts.BackgroundMaintenance {
		cfg.CleanNotify = db.pokeMaintenance
	}
	return buffer.New(cfg, router{db})
}

// New creates a database over a NoFTL device.
func New(dev *noftl.Device, opts Options) (*DB, error) {
	if err := opts.Validate(dev.Geometry().PageSize); err != nil {
		return nil, err
	}
	db := &DB{
		dev: dev,
		log: wal.NewLogConfig(wal.Config{
			Capacity:     opts.LogCapacity,
			CommitWindow: opts.CommitWindow,
		}),
		opts:   opts,
		stores: make(map[string]*PageStore),
		tables: make(map[string]*Table),
		active: make(map[uint64]*Tx),
	}
	if opts.Timeline != nil {
		db.cleaner = opts.Timeline.NewWorker()
	}
	if opts.BackgroundMaintenance {
		// maintCh is created exactly once: pokeMaintenance reads it
		// without synchronisation, so restarts only replace the stop
		// channel and the goroutine, never the poke channel.
		db.maintCh = make(chan struct{}, 1)
	}
	pool, err := db.newPool(opts.BufferFrames)
	if err != nil {
		return nil, err
	}
	db.pool = pool
	if opts.BackgroundMaintenance {
		db.startMaintenance()
	}
	if opts.MVCC {
		db.vs = newVersionStore()
		db.vs.startReaper(db.log.Head)
	}
	return db, nil
}

// startMaintenance launches the maintenance goroutine. Called from New
// and from SimulateCrash when it reopens a closed instance.
func (db *DB) startMaintenance() {
	stop := make(chan struct{})
	db.maintStop = stop
	db.maintWG.Add(1)
	go db.maintenanceLoop(stop)
}

// pokeMaintenance wakes the maintenance goroutine without blocking.
func (db *DB) pokeMaintenance() {
	if db.maintCh == nil {
		return
	}
	select {
	case db.maintCh <- struct{}{}:
	default:
	}
}

// maintenanceLoop services pokes from the buffer pool (dirty threshold
// crossed) and from committers (log past the reclaim threshold).
func (db *DB) maintenanceLoop(stop chan struct{}) {
	defer db.maintWG.Done()
	for {
		select {
		case <-stop:
			return
		case <-db.maintCh:
		}
		if err := db.maintenancePass(); err != nil {
			db.maintErrMu.Lock()
			if db.maintErr == nil {
				db.maintErr = err
			}
			db.maintErrMu.Unlock()
		}
	}
}

// maintenancePass is one background round: a cleaner pass, then — if the
// log is past the reclaim threshold — a FlushOldest batch and a fuzzy
// checkpoint, exactly what maybeReclaim does inline in foreground mode.
func (db *DB) maintenancePass() error {
	db.stateMu.RLock()
	defer db.stateMu.RUnlock()
	if db.inRecovery {
		return nil
	}
	w := db.cleaner
	if err := db.pool.CleanerPass(w); err != nil {
		return err
	}
	if db.log.Capacity() == 0 || db.log.Usage() <= db.opts.reclaimThreshold() {
		return nil
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	if db.log.Usage() <= db.opts.reclaimThreshold() {
		return nil
	}
	db.reclaims.Add(1)
	if _, err := db.pool.FlushOldest(w, db.reclaimBatch()); err != nil {
		return err
	}
	return db.checkpointLocked(w)
}

// Close shuts the instance down: the closed flag is raised under the
// exclusive state latch (so every Begin/Checkpoint/Stats that starts
// after Close returns deterministically fails with ErrClosed), then the
// background maintenance goroutine and the MVCC version reaper are
// drained (no-ops without Options.BackgroundMaintenance /
// Options.MVCC). Repeated calls are idempotent: they
// return the first call's error without draining twice. SimulateCrash
// reopens a closed instance — it models the process restarting.
func (db *DB) Close() error {
	db.closeMu.Lock()
	defer db.closeMu.Unlock()
	if db.closed.Load() {
		return db.closeErr
	}
	// Raise the flag with the state latch held exclusively: in-flight
	// operations (holding it shared) finish first, and any operation
	// starting afterwards observes the flag before touching the pool.
	db.stateMu.Lock()
	db.closed.Store(true)
	db.stateMu.Unlock()
	if db.maintStop != nil {
		close(db.maintStop)
		db.maintWG.Wait()
		db.maintStop = nil
	}
	if db.vs != nil {
		db.vs.stopReaper()
	}
	db.maintErrMu.Lock()
	db.closeErr = db.maintErr
	db.maintErrMu.Unlock()
	return db.closeErr
}

// Pool exposes the buffer pool.
//
// Deprecated: for tools and tests only. Production code should consume
// DB.Stats().
func (db *DB) Pool() *buffer.Pool {
	db.stateMu.RLock()
	defer db.stateMu.RUnlock()
	return db.pool
}

// Device exposes the NoFTL device.
//
// Deprecated: for tools and tests only. Production code should consume
// DB.Stats().
func (db *DB) Device() *noftl.Device { return db.dev }

// Checkpoints returns how many checkpoints have been taken.
func (db *DB) Checkpoints() uint64 { return db.checkpoints.Load() }

// AttachRegion makes a NoFTL region usable as a tablespace, creating its
// page store.
func (db *DB) AttachRegion(regionName string) (*PageStore, error) {
	db.catMu.Lock()
	defer db.catMu.Unlock()
	return db.attachRegionLocked(regionName)
}

func (db *DB) attachRegionLocked(regionName string) (*PageStore, error) {
	if st, ok := db.stores[regionName]; ok {
		return st, nil
	}
	region := db.dev.Region(regionName)
	if region == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoRegion, regionName)
	}
	st, err := NewPageStore(region, db.opts.pageSize(), db.opts.UseECC)
	if err != nil {
		return nil, err
	}
	db.stores[regionName] = st
	return st, nil
}

// Store returns the page store of a region, or nil.
func (db *DB) Store(regionName string) *PageStore {
	db.catMu.Lock()
	defer db.catMu.Unlock()
	return db.stores[regionName]
}

// allocPage assigns a fresh page id owned by the store.
func (db *DB) allocPage(st *PageStore) core.PageID {
	id := core.PageID(db.nextPage.Add(1))
	db.pageDir.put(id, st)
	return id
}

// newPage allocates and formats a new page, returning it pinned. The
// caller holds stateMu shared.
func (db *DB) newPage(w *sim.Worker, st *PageStore, owner uint64, flags uint16) (*buffer.Frame, *page.Page, error) {
	id := db.allocPage(st)
	fr, err := db.pool.GetNew(w, id)
	if err != nil {
		db.pageDir.delete(id)
		return nil, nil, err
	}
	pg, err := page.Format(fr.Data, st.layout, id)
	if err != nil {
		db.pool.Unpin(w, fr, false, 0)
		db.pageDir.delete(id)
		return nil, nil, err
	}
	pg.SetOwner(owner)
	pg.SetFlags(flags)
	if db.opts.Replicated {
		// Published before the page's first update record (same
		// goroutine), so a follower always learns the page's store
		// before it must redo onto it.
		db.log.Append(wal.Record{Type: wal.RecAlloc, Meta: encodeAllocMeta(id, owner, st.region.Name())})
	}
	return fr, pg, nil
}

// WAL exposes the write-ahead log for the replication layer (stream
// cursor, retain floor, commit-horizon queries). Not for transactional
// use — records are appended through Tx.
func (db *DB) WAL() *wal.Log { return db.log }

// Replicated reports whether the instance writes a self-describing log.
func (db *DB) Replicated() bool { return db.opts.Replicated }

// maybeReclaim emulates Shore-MT's eager log-space reclamation: when the
// log fills past the threshold, the oldest dirty pages are flushed, a
// fuzzy checkpoint is taken and the log tail advances. Reclaim is
// best-effort concurrent: whichever committer trips the threshold first
// runs it; everyone else proceeds. Caller holds stateMu shared.
func (db *DB) maybeReclaim(w *sim.Worker) error {
	if db.log.Capacity() == 0 || db.log.Usage() <= db.opts.reclaimThreshold() {
		return nil
	}
	if db.opts.BackgroundMaintenance {
		db.pokeMaintenance()
		return nil
	}
	if !db.ckptMu.TryLock() {
		return nil // a reclaim/checkpoint is already running
	}
	defer db.ckptMu.Unlock()
	if db.log.Usage() <= db.opts.reclaimThreshold() {
		return nil // the pass we raced with already reclaimed
	}
	db.reclaims.Add(1)
	cw := db.cleaner
	if cw == nil {
		cw = w
	} else if w != nil {
		cw.SetNow(w.Now())
	}
	if _, err := db.pool.FlushOldest(cw, db.reclaimBatch()); err != nil {
		return err
	}
	return db.checkpointLocked(w)
}

// reclaimBatch resolves Options.ReclaimFlushBatch against the current
// pool size. Caller holds stateMu shared.
func (db *DB) reclaimBatch() int {
	if b := db.opts.ReclaimFlushBatch; b > 0 {
		return b
	}
	return db.pool.Size()/4 + 1
}

// Checkpoint takes a fuzzy checkpoint and truncates the log. After
// Close it returns ErrClosed.
func (db *DB) Checkpoint(w *sim.Worker) error {
	db.stateMu.RLock()
	defer db.stateMu.RUnlock()
	if db.closed.Load() {
		return ErrClosed
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	return db.checkpointLocked(w)
}

// checkpointLocked runs with ckptMu held and stateMu shared. The
// active-transaction snapshot is fuzzy: transactions keep running while
// the checkpoint record is built (their lastLSN fields are atomics).
func (db *DB) checkpointLocked(w *sim.Worker) error {
	db.txMu.Lock()
	att := make(map[uint64]core.LSN, len(db.active))
	var minTxFirst core.LSN
	for id, tx := range db.active {
		att[id] = tx.lastLSN.load()
		if minTxFirst == 0 || tx.firstLSN < minTxFirst {
			minTxFirst = tx.firstLSN
		}
	}
	db.txMu.Unlock()
	dpt := db.pool.DirtyPages()
	ckptLSN := db.log.Append(wal.Record{Type: wal.RecCheckpoint, ActiveTxs: att, DirtyPages: dpt})
	db.log.Flush(ckptLSN)
	db.checkpoints.Add(1)

	// The log tail can advance to the oldest LSN still needed: the
	// earliest recLSN of a dirty page (straight from the checkpoint's own
	// snapshot — no second pool scan), the first LSN of an active
	// transaction, or the checkpoint itself.
	cut := ckptLSN
	for _, r := range dpt {
		if r != 0 && r < cut {
			cut = r
		}
	}
	if minTxFirst != 0 && minTxFirst < cut {
		cut = minTxFirst
	}
	db.log.Truncate(cut)
	return nil
}

// FlushAll forces every dirty page out (clean shutdown support).
func (db *DB) FlushAll(w *sim.Worker) error {
	db.stateMu.RLock()
	defer db.stateMu.RUnlock()
	return db.pool.FlushAll(w)
}

// ResizePool replaces the buffer pool with one of the given frame count
// (flushing all dirty pages first). The experiment harness uses this to
// set the buffer size to a percentage of the loaded database size, as the
// paper's buffer-sweep experiments do. Stop-the-world: blocks until all
// in-flight operations drain.
func (db *DB) ResizePool(w *sim.Worker, frames int) error {
	db.stateMu.Lock()
	defer db.stateMu.Unlock()
	if err := db.pool.FlushAll(w); err != nil {
		return err
	}
	pool, err := db.newPool(frames)
	if err != nil {
		return err
	}
	db.pool = pool
	db.opts.BufferFrames = frames
	return nil
}

// SimulateCrash throws away all volatile state — buffer pool contents and
// the active-transaction table — keeping flash contents, the log and the
// catalog (assumed on stable metadata storage, as NoFTL does). Restart
// must call Recover before new work. Stop-the-world: blocks until all
// in-flight operations drain.
//
// A crash models the process dying and restarting, so a previously
// Closed instance comes back open: the closed flag is cleared and the
// maintenance goroutine restarted. This is what lets the server
// integration tests shut down gracefully, then "reopen the device" and
// verify WAL recovery on the same instance.
func (db *DB) SimulateCrash() error {
	// closeMu before stateMu — the same order Close takes them — so a
	// concurrent Close cannot interleave with the reopen.
	db.closeMu.Lock()
	defer db.closeMu.Unlock()
	db.stateMu.Lock()
	defer db.stateMu.Unlock()
	pool, err := db.newPool(db.opts.BufferFrames)
	if err != nil {
		return err
	}
	db.pool = pool
	db.txMu.Lock()
	db.active = make(map[uint64]*Tx)
	db.txMu.Unlock()
	db.locks.clear()
	if db.vs != nil {
		// Version chains, snapshot pins and in-flight commits are
		// volatile: the store safely resets (restart recovery repairs the
		// heap itself; see versionStore.reset).
		db.vs.reset()
	}
	if db.closed.Load() {
		db.closed.Store(false)
		db.closeErr = nil
		if db.opts.BackgroundMaintenance {
			db.startMaintenance()
		}
		if db.vs != nil {
			db.vs.startReaper(db.log.Head)
		}
	}
	return nil
}
