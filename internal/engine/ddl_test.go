package engine

import (
	"strings"
	"testing"

	"ipa/internal/flash"
	"ipa/internal/noftl"
)

func newDDLRig(t *testing.T, cell flash.CellType) *DB {
	t.Helper()
	timing := flash.SLCTiming()
	if cell == flash.MLC {
		timing = flash.MLCTiming()
	}
	g := flash.Geometry{
		Chips: 4, BlocksPerChip: 64, PagesPerBlock: 8,
		PageSize: 512, OOBSize: 32, Cell: cell,
	}
	arr, err := flash.New(flash.Config{Geometry: g, Timing: timing, StrictProgramOrder: true, MaxAppends: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	db, err := New(noftl.Open(arr), Options{PageSize: 512, BufferFrames: 16, DirtyThreshold: 2.0})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestDDLFigure3 executes the paper's Figure 3 statements (adapted to
// the simulated device) end to end.
func TestDDLFigure3(t *testing.T) {
	db := newDDLRig(t, flash.MLC)
	stmts := []string{
		"CREATE REGION rgIPA (MAX_CHIPS=4, MAX_SIZE=512K, IPA_MODE=pSLC, SCHEME=2x4);",
		"CREATE TABLESPACE tsIPA (REGION=rgIPA)",
		"CREATE TABLE T (TABLESPACE=tsIPA)",
		"CREATE INDEX T_pk (TABLESPACE=tsIPA)",
	}
	for _, s := range stmts {
		if err := db.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	region := db.Device().Region("rgIPA")
	if region == nil {
		t.Fatal("region not created")
	}
	if region.Mode() != noftl.ModePSLC {
		t.Errorf("mode = %v", region.Mode())
	}
	if s := region.Scheme(); s.N != 2 || s.M != 4 {
		t.Errorf("scheme = %v", s)
	}
	// 512K / (4 chips × 8 pages × 512B) = 32 blocks per chip.
	tbl, err := db.Table("T")
	if err != nil {
		t.Fatal(err)
	}
	// The table is usable: insert + small update lands as an append.
	tx := mustBegin(db, nil)
	rid, err := tbl.Insert(tx, make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	db.FlushAll(nil)
	tx2 := mustBegin(db, nil)
	if err := tbl.UpdateField(tx2, rid, 0, []byte{7}); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	db.FlushAll(nil)
	if db.Store("rgIPA").Stats().FlushesDelta != 1 {
		t.Error("DDL-created region did not serve an in-place append")
	}
}

func TestDDLOptions(t *testing.T) {
	db := newDDLRig(t, flash.SLC)
	if err := db.Exec("CREATE REGION r1 (BLOCKS_PER_CHIP=8, IPA_MODE=SLC, SCHEME=3x10x8, OVERPROVISION=20)"); err != nil {
		t.Fatal(err)
	}
	r := db.Device().Region("r1")
	if s := r.Scheme(); s.N != 3 || s.M != 10 || s.V != 8 {
		t.Errorf("scheme = %+v", s)
	}
	// REGION= shortcut on CREATE TABLE.
	if err := db.Exec("CREATE TABLE t1 (REGION=r1)"); err != nil {
		t.Fatal(err)
	}
	// IPA off via mode none.
	if err := db.Exec("CREATE REGION r2 (BLOCKS_PER_CHIP=8, IPA_MODE=none)"); err != nil {
		t.Fatal(err)
	}
	if db.Device().Region("r2").Mode() != noftl.ModeNone {
		t.Error("mode none not honoured")
	}
}

// TestDDLStorageOptions covers the STORAGE / GC_POLICY / GC_VICTIM
// surface added with the pluggable-scheme API.
func TestDDLStorageOptions(t *testing.T) {
	db := newDDLRig(t, flash.SLC)
	if err := db.Exec("CREATE REGION rPDL (BLOCKS_PER_CHIP=16, STORAGE=pdl, GC_VICTIM=cost-benefit, GC_POLICY=foreground)"); err != nil {
		t.Fatal(err)
	}
	r := db.Device().Region("rPDL")
	if r.Storage() != noftl.StoragePDL {
		t.Errorf("storage = %v, want pdl", r.Storage())
	}
	if r.GCVictim() != noftl.CostBenefitVictim {
		t.Errorf("gc victim = %v, want cost-benefit", r.GCVictim())
	}
	if st := db.Store("rPDL"); st.Storage() != noftl.StoragePDL {
		t.Errorf("store storage = %v, want pdl", st.Storage())
	}
	if err := db.Exec("CREATE REGION rOOP (BLOCKS_PER_CHIP=8, STORAGE=oop)"); err != nil {
		t.Fatal(err)
	}
	if st := db.Store("rOOP"); st.Storage() != noftl.StorageOOP {
		t.Errorf("store storage = %v, want oop", st.Storage())
	}
	// Explicit STORAGE=ipa with an IPA layout is the default path.
	if err := db.Exec("CREATE REGION rIPA (BLOCKS_PER_CHIP=8, STORAGE=ipa, IPA_MODE=slc, SCHEME=2x4)"); err != nil {
		t.Fatal(err)
	}
	if st := db.Store("rIPA"); st.Storage() != noftl.StorageIPA {
		t.Errorf("store storage = %v, want ipa", st.Storage())
	}
	// A PDL table takes writes end to end.
	if err := db.Exec("CREATE TABLE tp (REGION=rPDL)"); err != nil {
		t.Fatal(err)
	}
	tbl, err := db.Table("tp")
	if err != nil {
		t.Fatal(err)
	}
	tx := mustBegin(db, nil)
	rid, err := tbl.Insert(tx, make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	db.FlushAll(nil)
	tx2 := mustBegin(db, nil)
	if err := tbl.UpdateField(tx2, rid, 0, []byte{9}); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	db.FlushAll(nil)
	if got := db.Store("rPDL").Stats().Scheme.PDL.Appends; got != 1 {
		t.Errorf("pdl appends = %d, want 1", got)
	}
}

func TestDDLErrors(t *testing.T) {
	db := newDDLRig(t, flash.SLC)
	bad := []string{
		"DROP TABLE x",
		"CREATE",
		"CREATE WIDGET w (A=1)",
		"CREATE REGION r (IPA_MODE=warp)",
		"CREATE REGION r (SCHEME=banana)",
		"CREATE REGION r (SCHEME=2x4)", // missing size
		"CREATE REGION r (MAX_SIZE=zero)",
		"CREATE REGION r (BLOCKS_PER_CHIP=8, OVERPROVISION=150)",
		"CREATE REGION r (BLOCKS_PER_CHIP=8, MAX_CHIPS=x)",
		"CREATE REGION r (BLOCKS_PER_CHIP=8",
		"CREATE REGION r (BLOCKS_PER_CHIP)",
		"CREATE TABLESPACE ts ()",
		"CREATE TABLESPACE ts (REGION=missing)",
		"CREATE TABLE t ()",
		"CREATE TABLE t (TABLESPACE=missing)",
		"CREATE REGION r (BLOCKS_PER_CHIP=8, IPA_MODE=pSLC)", // pSLC on SLC device
		"CREATE REGION r (BLOCKS_PER_CHIP=8, STORAGE=log-structured)",
		"CREATE REGION r (BLOCKS_PER_CHIP=8, GC_POLICY=lazy)",
		"CREATE REGION r (BLOCKS_PER_CHIP=8, GC_VICTIM=oldest)",
		"CREATE REGION r (BLOCKS_PER_CHIP=8, STROAGE=pdl)", // typo must not be ignored
		"CREATE TABLESPACE ts (REGION=rOK, COMPRESSION=on)",
		"CREATE TABLE t (REGION=rOK, PARTITIONS=4)",
		// PDL and OOP regions write raw page images; an IPA delta layout
		// or mode would be re-applied over merged bases.
		"CREATE REGION r (BLOCKS_PER_CHIP=8, STORAGE=pdl, SCHEME=2x4)",
		"CREATE REGION r (BLOCKS_PER_CHIP=8, STORAGE=pdl, IPA_MODE=slc)",
		"CREATE REGION r (BLOCKS_PER_CHIP=8, STORAGE=oop, SCHEME=2x4)",
	}
	for _, s := range bad {
		if err := db.Exec(s); err == nil {
			t.Errorf("accepted %q", s)
		}
	}
	// Every engine-issued DDL error carries the "engine:" prefix (device
	// errors like pSLC-on-SLC come from noftl and are exempt).
	wantPrefix := []struct{ stmt, frag string }{
		{"CREATE REGION r (BLOCKS_PER_CHIP=8, STORAGE=log-structured)", `unknown STORAGE "log-structured"`},
		{"CREATE REGION r (BLOCKS_PER_CHIP=8, GC_VICTIM=oldest)", `unknown GC_VICTIM "oldest"`},
		{"CREATE REGION r (BLOCKS_PER_CHIP=8, GC_POLICY=lazy)", `unknown GC_POLICY "lazy"`},
		{"CREATE REGION r (BLOCKS_PER_CHIP=8, GC=lazy)", `unknown GC "lazy"`},
		{"CREATE REGION r (BLOCKS_PER_CHIP=8, STROAGE=pdl)", "unknown option STROAGE in CREATE REGION r"},
		{"CREATE REGION r (BLOCKS_PER_CHIP=8, ZZZ=1, AAA=2)", "unknown option AAA in CREATE REGION r"},
		{"CREATE INDEX i (REGION=rOK, UNIQUE=yes)", "unknown option UNIQUE in CREATE INDEX i"},
	}
	for _, c := range wantPrefix {
		err := db.Exec(c.stmt)
		if err == nil || !strings.HasPrefix(err.Error(), "engine: ") || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%q: error = %v, want engine: ...%s...", c.stmt, err, c.frag)
		}
	}
	// Duplicate tablespace.
	if err := db.Exec("CREATE REGION rOK (BLOCKS_PER_CHIP=4)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec("CREATE TABLESPACE ts (REGION=rOK)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec("CREATE TABLESPACE ts (REGION=rOK)"); err == nil ||
		!strings.Contains(err.Error(), "already exists") {
		t.Errorf("duplicate tablespace: %v", err)
	}
}

func TestParseSize(t *testing.T) {
	cases := map[string]int64{
		"512": 512, "4K": 4096, "2M": 2 << 20, "1G": 1 << 30,
	}
	for in, want := range cases {
		got, err := parseSize(in)
		if err != nil || got != want {
			t.Errorf("parseSize(%q) = (%d, %v), want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "-1", "x", "0M"} {
		if _, err := parseSize(bad); err == nil {
			t.Errorf("parseSize(%q) accepted", bad)
		}
	}
}
