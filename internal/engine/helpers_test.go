package engine

import (
	"testing"

	"ipa/internal/core"
	"ipa/internal/flash"
	"ipa/internal/noftl"
	"ipa/internal/sim"
)

// mustBegin starts a transaction on a database the test knows is open,
// panicking otherwise. It is safe in worker goroutines where t.Fatal is
// not (the panic fails the test either way).
func mustBegin(db *DB, w *sim.Worker) *Tx {
	tx, err := db.Begin(w)
	if err != nil {
		panic(err)
	}
	return tx
}

// rigGeometry is the small SLC geometry the lifecycle tests use.
func rigGeometry() flash.Geometry {
	return flash.Geometry{
		Chips: 4, BlocksPerChip: 64, PagesPerBlock: 8,
		PageSize: 512, OOBSize: 32, Cell: flash.SLC,
	}
}

// newRigWithOptions builds a two-region device and opens a DB over it
// with caller-chosen engine options (the lifecycle tests need
// BackgroundMaintenance on).
func newRigWithOptions(t *testing.T, g flash.Geometry, opts Options) *DB {
	t.Helper()
	arr, err := flash.New(flash.Config{
		Geometry: g, Timing: flash.SLCTiming(), StrictProgramOrder: true, MaxAppends: 8,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dev := noftl.Open(arr)
	for _, name := range []string{"r1", "r2"} {
		if _, err := dev.CreateRegion(noftl.RegionConfig{
			Name: name, Mode: noftl.ModeSLC, Scheme: core.NewScheme(2, 3),
			BlocksPerChip: 32, OverProvision: 0.2,
		}); err != nil {
			t.Fatal(err)
		}
	}
	db, err := New(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}
