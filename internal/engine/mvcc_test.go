package engine

import (
	"errors"
	"testing"

	"ipa/internal/core"
)

// newMVCCRig opens a small two-region DB with MVCC on and one table in
// r1, seeded with n tuples of the form "v0-<i>". Returns the DB and the
// RIDs in insertion order.
func newMVCCRig(t *testing.T, n int) (*DB, *Table, []core.RID) {
	t.Helper()
	db := newRigWithOptions(t, rigGeometry(), Options{
		PageSize: 512, BufferFrames: 64, LogCapacity: 1 << 20, MVCC: true,
	})
	tb, err := db.CreateTable("acct", "r1")
	if err != nil {
		t.Fatal(err)
	}
	rids := make([]core.RID, 0, n)
	tx := mustBegin(db, nil)
	for i := 0; i < n; i++ {
		rid, err := tb.Insert(tx, []byte("v0-"+string(rune('a'+i))))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return db, tb, rids
}

// TestSnapshotReadSeesOldVersion: a snapshot pinned before an update
// keeps reading the old value while later snapshots see the new one.
func TestSnapshotReadSeesOldVersion(t *testing.T) {
	db, tb, rids := newMVCCRig(t, 3)
	defer db.Close()

	snap, err := db.BeginSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	wtx := mustBegin(db, nil)
	if err := tb.Update(wtx, rids[0], []byte("v1-a")); err != nil {
		t.Fatal(err)
	}
	// Uncommitted: both the old snapshot and a fresh one must see v0.
	for _, s := range []*Tx{snap} {
		got, err := tb.ReadSnapshot(s, rids[0])
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "v0-a" {
			t.Fatalf("snapshot read before commit = %q, want v0-a", got)
		}
	}
	mid, err := db.BeginSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := tb.ReadSnapshot(mid, rids[0]); string(got) != "v0-a" {
		t.Fatalf("snapshot over uncommitted write = %q, want v0-a", got)
	}
	if err := mid.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := wtx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Old snapshot still sees v0; a new one sees v1.
	if got, _ := tb.ReadSnapshot(snap, rids[0]); string(got) != "v0-a" {
		t.Fatalf("old snapshot after commit = %q, want v0-a", got)
	}
	after, err := db.BeginSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := tb.ReadSnapshot(after, rids[0]); string(got) != "v1-a" {
		t.Fatalf("new snapshot after commit = %q, want v1-a", got)
	}
	for _, s := range []*Tx{snap, after} {
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSnapshotAbortRestoresVisibility: an aborted update's pending
// version is dropped and snapshot reads fall through to the (rolled
// back) heap tuple.
func TestSnapshotAbortRestoresVisibility(t *testing.T) {
	db, tb, rids := newMVCCRig(t, 1)
	defer db.Close()

	wtx := mustBegin(db, nil)
	if err := tb.Update(wtx, rids[0], []byte("v1-x")); err != nil {
		t.Fatal(err)
	}
	if err := wtx.Abort(); err != nil {
		t.Fatal(err)
	}
	snap, err := db.BeginSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Commit()
	if got, err := tb.ReadSnapshot(snap, rids[0]); err != nil || string(got) != "v0-a" {
		t.Fatalf("snapshot after abort = %q, %v; want v0-a", got, err)
	}
	// The aborted update's pending entry is gone; only the seed insert's
	// committed marker remains, and it is prunable (its commit LSN is at
	// or below the active snapshot).
	db.vs.prune(db.vs.pruneBound(db.log.Head()))
	if st, _ := db.Stats(); st.MVCC.VersionsLive != 0 {
		t.Fatalf("live versions after abort+prune = %d, want 0", st.MVCC.VersionsLive)
	}
}

// TestSnapshotDeleteAndSlotReuse: a snapshot pinned before a delete
// resurrects the tuple from its chain; one pinned before a reuse-insert
// does not see the new tuple.
func TestSnapshotDeleteAndSlotReuse(t *testing.T) {
	db, tb, rids := newMVCCRig(t, 2)
	defer db.Close()

	preDelete, err := db.BeginSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	dtx := mustBegin(db, nil)
	if err := tb.Delete(dtx, rids[0]); err != nil {
		t.Fatal(err)
	}
	if err := dtx.Commit(); err != nil {
		t.Fatal(err)
	}
	postDelete, err := db.BeginSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	// preDelete resurrects the tuple; postDelete must not see it.
	if got, err := tb.ReadSnapshot(preDelete, rids[0]); err != nil || string(got) != "v0-a" {
		t.Fatalf("pre-delete snapshot = %q, %v; want v0-a", got, err)
	}
	if _, err := tb.ReadSnapshot(postDelete, rids[0]); !errors.Is(err, ErrNoTuple) {
		t.Fatalf("post-delete snapshot err = %v, want ErrNoTuple", err)
	}
	// Scans agree: preDelete sees 2 tuples, postDelete 1.
	count := func(s *Tx) int {
		n := 0
		if err := tb.ScanSnapshot(s, func(core.RID, []byte) bool { n++; return true }); err != nil {
			t.Fatal(err)
		}
		return n
	}
	if n := count(preDelete); n != 2 {
		t.Fatalf("pre-delete scan saw %d tuples, want 2", n)
	}
	if n := count(postDelete); n != 1 {
		t.Fatalf("post-delete scan saw %d tuples, want 1", n)
	}
	// Reuse the slot: the insert is invisible to both snapshots.
	itx := mustBegin(db, nil)
	reused, err := tb.Insert(itx, []byte("v2-r"))
	if err != nil {
		t.Fatal(err)
	}
	if err := itx.Commit(); err != nil {
		t.Fatal(err)
	}
	if reused != rids[0] {
		t.Logf("slot not reused (%v vs %v); reuse assertions still valid", reused, rids[0])
	}
	if _, err := tb.ReadSnapshot(postDelete, reused); !errors.Is(err, ErrNoTuple) {
		t.Fatalf("reused slot visible to old snapshot: err = %v, want ErrNoTuple", err)
	}
	final, err := db.BeginSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := tb.ReadSnapshot(final, reused); err != nil || string(got) != "v2-r" {
		t.Fatalf("final snapshot = %q, %v; want v2-r", got, err)
	}
	for _, s := range []*Tx{preDelete, postDelete, final} {
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSnapshotTxIsReadOnly: writes and locking reads through a snapshot
// transaction fail with ErrReadOnlyTx; ordinary transactions cannot use
// the snapshot read path; BeginSnapshot without MVCC fails.
func TestSnapshotTxIsReadOnly(t *testing.T) {
	db, tb, rids := newMVCCRig(t, 1)
	defer db.Close()

	snap, err := db.BeginSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Insert(snap, []byte("x")); !errors.Is(err, ErrReadOnlyTx) {
		t.Fatalf("Insert on snapshot tx: %v, want ErrReadOnlyTx", err)
	}
	if err := tb.Update(snap, rids[0], []byte("x")); !errors.Is(err, ErrReadOnlyTx) {
		t.Fatalf("Update on snapshot tx: %v, want ErrReadOnlyTx", err)
	}
	if err := tb.Delete(snap, rids[0]); !errors.Is(err, ErrReadOnlyTx) {
		t.Fatalf("Delete on snapshot tx: %v, want ErrReadOnlyTx", err)
	}
	if _, err := tb.ReadLocked(snap, rids[0]); !errors.Is(err, ErrReadOnlyTx) {
		t.Fatalf("ReadLocked on snapshot tx: %v, want ErrReadOnlyTx", err)
	}
	if err := snap.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.ReadSnapshot(snap, rids[0]); !errors.Is(err, ErrTxClosed) {
		t.Fatalf("ReadSnapshot on closed tx: %v, want ErrTxClosed", err)
	}
	wtx := mustBegin(db, nil)
	if _, err := tb.ReadSnapshot(wtx, rids[0]); !errors.Is(err, ErrNotSnapshot) {
		t.Fatalf("ReadSnapshot on ordinary tx: %v, want ErrNotSnapshot", err)
	}
	wtx.Abort()

	plain := newRigWithOptions(t, rigGeometry(), Options{
		PageSize: 512, BufferFrames: 64,
	})
	defer plain.Close()
	if _, err := plain.BeginSnapshot(nil); !errors.Is(err, ErrMVCCDisabled) {
		t.Fatalf("BeginSnapshot without MVCC: %v, want ErrMVCCDisabled", err)
	}
}

// TestVersionPruneBoundedBySnapshot: history needed by an active
// snapshot survives pruning; once the snapshot ends the reaper may
// reclaim it.
func TestVersionPruneBoundedBySnapshot(t *testing.T) {
	db, tb, rids := newMVCCRig(t, 1)
	defer db.Close()

	snap, err := db.BeginSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		wtx := mustBegin(db, nil)
		if err := tb.Update(wtx, rids[0], []byte("v"+string(rune('1'+i)))); err != nil {
			t.Fatal(err)
		}
		if err := wtx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// Force a synchronous prune (don't race the background reaper).
	db.vs.prune(db.vs.pruneBound(db.log.Head()))
	if got, err := tb.ReadSnapshot(snap, rids[0]); err != nil || string(got) != "v0-a" {
		t.Fatalf("snapshot after prune = %q, %v; want v0-a", got, err)
	}
	if err := snap.Commit(); err != nil {
		t.Fatal(err)
	}
	if n := db.vs.prune(db.vs.pruneBound(db.log.Head())); n == 0 {
		t.Fatalf("prune after snapshot end released nothing")
	}
	if st, _ := db.Stats(); st.MVCC.VersionsLive != 0 {
		t.Fatalf("live versions after full prune = %d, want 0", st.MVCC.VersionsLive)
	}
}

// TestAbortsByReason: lock-conflict aborts and explicit aborts land in
// separate counters.
func TestAbortsByReason(t *testing.T) {
	db, tb, rids := newMVCCRig(t, 1)
	defer db.Close()

	holder := mustBegin(db, nil)
	if err := tb.Update(holder, rids[0], []byte("vh")); err != nil {
		t.Fatal(err)
	}
	loser := mustBegin(db, nil)
	if err := tb.Update(loser, rids[0], []byte("vl")); !errors.Is(err, ErrLockConflict) {
		t.Fatalf("conflicting update: %v, want ErrLockConflict", err)
	}
	if err := loser.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := holder.Abort(); err != nil {
		t.Fatal(err)
	}
	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Aborts.LockConflict != 1 || st.Aborts.Explicit != 1 || st.Aborts.LockConflicts != 1 {
		t.Fatalf("aborts = %+v, want LockConflict:1 Explicit:1 LockConflicts:1", st.Aborts)
	}
}

// TestMVCCCloseAndCrash: Close drains the reaper deterministically and
// post-Close snapshot begins fail with ErrClosed; SimulateCrash resets
// the version store and — modelling a restart — reopens the instance
// with working snapshots after recovery.
func TestMVCCCloseAndCrash(t *testing.T) {
	db, tb, rids := newMVCCRig(t, 1)

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.BeginSnapshot(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("BeginSnapshot after Close: %v, want ErrClosed", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("repeated Close: %v", err)
	}

	if err := db.SimulateCrash(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Recover(nil); err != nil {
		t.Fatal(err)
	}
	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.MVCC.VersionsLive != 0 || st.MVCC.SnapshotsActive != 0 {
		t.Fatalf("version store not reset after crash: %+v", st.MVCC)
	}
	// Snapshots work again after the restart: acked pre-crash commits are
	// visible (zero-lost-acked-commits for the snapshot path).
	snap, err := db.BeginSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := tb.ReadSnapshot(snap, rids[0]); err != nil || string(got) != "v0-a" {
		t.Fatalf("post-recovery snapshot = %q, %v; want v0-a", got, err)
	}
	wtx := mustBegin(db, nil)
	if err := tb.Update(wtx, rids[0], []byte("v9-z")); err != nil {
		t.Fatal(err)
	}
	if err := wtx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got, err := tb.ReadSnapshot(snap, rids[0]); err != nil || string(got) != "v0-a" {
		t.Fatalf("post-recovery old snapshot = %q, %v; want v0-a", got, err)
	}
	if err := snap.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}
