package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"ipa/internal/core"
	"ipa/internal/page"
	"ipa/internal/sim"
	"ipa/internal/wal"
)

// Table errors.
var (
	ErrTableExists = errors.New("engine: table already exists")
	ErrNoTable     = errors.New("engine: no such table")
	ErrNoTuple     = errors.New("engine: no tuple at RID")
)

// Table is a heap file of slotted pages in one region (tablespace). The
// region decides whether the table's small updates become In-Place
// Appends — the paper's selective application of IPA per database object.
//
// Concurrency: RID-addressed operations (Read/Update/Delete) synchronise
// only on the tuple lock and the page's frame latch, so updates to
// different pages proceed in parallel. Insert additionally holds the
// table mutex, which guards the heap chain (pages, last) and serialises
// inserts into the shared insertion target.
type Table struct {
	db   *DB
	st   *PageStore
	name string
	id   uint64

	mu    sync.Mutex
	pages []core.PageID // heap chain, in allocation order
	last  core.PageID   // current insertion target
}

// CreateTable creates a heap table placed in the named region.
func (db *DB) CreateTable(name, regionName string) (*Table, error) {
	db.catMu.Lock()
	defer db.catMu.Unlock()
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrTableExists, name)
	}
	st, err := db.attachRegionLocked(regionName)
	if err != nil {
		return nil, err
	}
	t := &Table{db: db, st: st, name: name, id: uint64(len(db.tables) + 1)}
	db.tables[name] = t
	if db.opts.Replicated {
		db.log.Append(wal.Record{Type: wal.RecTable, Meta: encodeTableMeta(t.id, name, regionName)})
	}
	return t, nil
}

// Table looks up a table by name.
func (db *DB) Table(name string) (*Table, error) {
	db.catMu.Lock()
	defer db.catMu.Unlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Store returns the table's page store.
func (t *Table) Store() *PageStore { return t.st }

// Pages returns the number of allocated heap pages.
func (t *Table) Pages() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.pages)
}

// Insert appends a tuple, logging the operation under tx.
func (t *Table) Insert(tx *Tx, data []byte) (core.RID, error) {
	db := t.db
	if tx.status != txActive {
		return core.RID{}, fmt.Errorf("%w: tx %d", ErrTxClosed, tx.id)
	}
	if tx.readOnly {
		return core.RID{}, fmt.Errorf("%w: tx %d", ErrReadOnlyTx, tx.id)
	}
	db.stateMu.RLock()
	defer db.stateMu.RUnlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	// Try the current insertion target first.
	if t.last != core.InvalidPageID {
		rid, err := t.insertInto(tx, t.last, data)
		if err == nil {
			return rid, nil
		}
		if !errors.Is(err, page.ErrPageFull) {
			return core.RID{}, err
		}
	}
	// Allocate a fresh page and chain it.
	fr, pg, err := db.newPage(tx.w, t.st, t.id, 0)
	if err != nil {
		return core.RID{}, err
	}
	id := pg.ID()
	if t.last != core.InvalidPageID {
		// Link the previous tail to the new page.
		if err := t.setNext(tx.w, t.last, id); err != nil {
			db.pool.Unpin(tx.w, fr, false, 0)
			return core.RID{}, err
		}
	}
	t.pages = append(t.pages, id)
	t.last = id
	fr.Latch()
	slot, err := pg.Insert(data)
	if err != nil {
		fr.Unlatch()
		db.pool.Unpin(tx.w, fr, false, 0)
		return core.RID{}, err
	}
	rid := core.RID{Page: id, Slot: uint16(slot)}
	if err := tx.lockRID(rid); err != nil {
		// A fresh slot can only collide with a deleted-but-locked tuple.
		pg.Delete(slot)
		fr.Unlatch()
		db.pool.Unpin(tx.w, fr, false, 0)
		return core.RID{}, err
	}
	if db.vs != nil {
		db.vs.installPending(rid, tx.id, nil, true)
	}
	lsn := tx.logUpdate(id, wal.OpInsert, slot, nil, data)
	pg.SetLSN(lsn)
	fr.Unlatch()
	if err := db.pool.Unpin(tx.w, fr, true, lsn); err != nil {
		return core.RID{}, err
	}
	return rid, db.maybeReclaim(tx.w)
}

// insertInto inserts into an existing page. Caller holds stateMu shared
// and t.mu.
func (t *Table) insertInto(tx *Tx, id core.PageID, data []byte) (core.RID, error) {
	db := t.db
	fr, err := db.pool.Get(tx.w, id)
	if err != nil {
		return core.RID{}, err
	}
	fr.Latch()
	pg, err := page.Attach(fr.Data, t.st.layout)
	if err != nil {
		fr.Unlatch()
		db.pool.Unpin(tx.w, fr, false, 0)
		return core.RID{}, err
	}
	slot, err := pg.Insert(data)
	if err != nil {
		fr.Unlatch()
		db.pool.Unpin(tx.w, fr, false, 0)
		return core.RID{}, err
	}
	rid := core.RID{Page: id, Slot: uint16(slot)}
	if err := tx.lockRID(rid); err != nil {
		pg.Delete(slot)
		fr.Unlatch()
		db.pool.Unpin(tx.w, fr, false, 0)
		return core.RID{}, err
	}
	if db.vs != nil {
		db.vs.installPending(rid, tx.id, nil, true)
	}
	lsn := tx.logUpdate(id, wal.OpInsert, slot, nil, data)
	pg.SetLSN(lsn)
	fr.Unlatch()
	if err := db.pool.Unpin(tx.w, fr, true, lsn); err != nil {
		return core.RID{}, err
	}
	return rid, nil
}

// setNext updates the heap chain pointer of a page (metadata-only
// change, itself absorbed as a delta when flushed). Caller holds stateMu
// shared.
func (t *Table) setNext(w *sim.Worker, id, next core.PageID) error {
	fr, err := t.db.pool.Get(w, id)
	if err != nil {
		return err
	}
	fr.Latch()
	pg, err := page.Attach(fr.Data, t.st.layout)
	if err != nil {
		fr.Unlatch()
		t.db.pool.Unpin(w, fr, false, 0)
		return err
	}
	pg.SetNextPage(next)
	lsn := pg.LSN()
	fr.Unlatch()
	return t.db.pool.Unpin(w, fr, true, lsn)
}

// Read copies the tuple at rid.
func (t *Table) Read(w *sim.Worker, rid core.RID) ([]byte, error) {
	db := t.db
	db.stateMu.RLock()
	defer db.stateMu.RUnlock()
	return t.readHeap(w, rid)
}

// readHeap copies the current heap tuple at rid under the page's shared
// latch. Caller holds stateMu shared.
func (t *Table) readHeap(w *sim.Worker, rid core.RID) ([]byte, error) {
	db := t.db
	fr, err := db.pool.Get(w, rid.Page)
	if err != nil {
		return nil, err
	}
	fr.RLatch()
	var out []byte
	pg, err := page.Attach(fr.Data, t.st.layout)
	if err == nil {
		var tup []byte
		tup, err = pg.ReadTuple(int(rid.Slot))
		if err != nil {
			err = fmt.Errorf("%w: %v: %v", ErrNoTuple, rid, err)
		} else {
			out = append([]byte(nil), tup...)
		}
	}
	fr.RUnlatch()
	db.pool.Unpin(w, fr, false, 0)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ReadLocked reads the tuple at rid under the tuple's exclusive no-wait
// lock, held to commit/abort — the "locking read" baseline the MVCC
// snapshot path is measured against. Repeatable within the transaction;
// fails immediately with ErrLockConflict when a writer holds the tuple.
func (t *Table) ReadLocked(tx *Tx, rid core.RID) ([]byte, error) {
	db := t.db
	if tx.status != txActive {
		return nil, fmt.Errorf("%w: tx %d", ErrTxClosed, tx.id)
	}
	if tx.readOnly {
		return nil, fmt.Errorf("%w: tx %d", ErrReadOnlyTx, tx.id)
	}
	db.stateMu.RLock()
	defer db.stateMu.RUnlock()
	if err := tx.lockRID(rid); err != nil {
		return nil, err
	}
	return t.readHeap(tx.w, rid)
}

// ReadSnapshot reads the tuple at rid as of the snapshot transaction's
// pinned LSN, resolving through the MVCC version store. The heap tuple
// is read first (under the page's shared latch) and the version chain
// consulted after — the order that guarantees any concurrent writer's
// before-image is found if the heap shows its uncommitted change.
func (t *Table) ReadSnapshot(tx *Tx, rid core.RID) ([]byte, error) {
	db := t.db
	if tx.status != txActive {
		return nil, fmt.Errorf("%w: tx %d", ErrTxClosed, tx.id)
	}
	if !tx.readOnly || db.vs == nil {
		return nil, fmt.Errorf("%w: tx %d", ErrNotSnapshot, tx.id)
	}
	db.stateMu.RLock()
	defer db.stateMu.RUnlock()
	db.vs.snapReads.Add(1)
	heap, heapErr := t.readHeap(tx.w, rid)
	data, absent, override := db.vs.resolve(rid, tx.snapshot)
	if override {
		if absent {
			return nil, fmt.Errorf("%w: %v (not visible at snapshot LSN %d)", ErrNoTuple, rid, tx.snapshot)
		}
		return append([]byte(nil), data...), nil
	}
	return heap, heapErr
}

// ScanSnapshot visits every tuple visible at the snapshot transaction's
// pinned LSN, in heap order, until fn returns false. Each page's slots
// are copied under the shared latch, then resolved through the version
// store with no latches held — so a scan holds no locks, blocks no
// writer and never aborts, regardless of length. Tuples deleted after
// the snapshot are resurrected from their chains; tuples inserted after
// it are suppressed.
func (t *Table) ScanSnapshot(tx *Tx, fn func(rid core.RID, tuple []byte) bool) error {
	db := t.db
	if tx.status != txActive {
		return fmt.Errorf("%w: tx %d", ErrTxClosed, tx.id)
	}
	if !tx.readOnly || db.vs == nil {
		return fmt.Errorf("%w: tx %d", ErrNotSnapshot, tx.id)
	}
	db.vs.snapScans.Add(1)
	t.mu.Lock()
	pages := append([]core.PageID(nil), t.pages...)
	t.mu.Unlock()
	for _, id := range pages {
		type slotState struct {
			tup  []byte
			live bool
		}
		var slots []slotState
		db.stateMu.RLock()
		fr, err := db.pool.Get(tx.w, id)
		if err != nil {
			db.stateMu.RUnlock()
			return err
		}
		fr.RLatch()
		pg, err := page.Attach(fr.Data, t.st.layout)
		if err != nil {
			fr.RUnlatch()
			db.pool.Unpin(tx.w, fr, false, 0)
			db.stateMu.RUnlock()
			return err
		}
		slots = make([]slotState, pg.SlotCount())
		for s := range slots {
			if tup, err := pg.ReadTuple(s); err == nil {
				slots[s] = slotState{tup: append([]byte(nil), tup...), live: true}
			}
		}
		fr.RUnlatch()
		db.pool.Unpin(tx.w, fr, false, 0)
		db.stateMu.RUnlock()
		for s, st := range slots {
			rid := core.RID{Page: id, Slot: uint16(s)}
			data, absent, override := db.vs.resolve(rid, tx.snapshot)
			var tup []byte
			switch {
			case override && absent:
				continue // not visible at the snapshot
			case override:
				tup = append([]byte(nil), data...)
			case st.live:
				tup = st.tup
			default:
				continue // deleted, with no retained history
			}
			if !fn(rid, tup) {
				return nil
			}
		}
	}
	return nil
}

// Update replaces the tuple at rid, logging before/after images.
func (t *Table) Update(tx *Tx, rid core.RID, data []byte) error {
	db := t.db
	if tx.status != txActive {
		return fmt.Errorf("%w: tx %d", ErrTxClosed, tx.id)
	}
	if tx.readOnly {
		return fmt.Errorf("%w: tx %d", ErrReadOnlyTx, tx.id)
	}
	db.stateMu.RLock()
	defer db.stateMu.RUnlock()
	if err := tx.lockRID(rid); err != nil {
		return err
	}
	fr, err := db.pool.Get(tx.w, rid.Page)
	if err != nil {
		return err
	}
	fr.Latch()
	pg, err := page.Attach(fr.Data, t.st.layout)
	if err != nil {
		fr.Unlatch()
		db.pool.Unpin(tx.w, fr, false, 0)
		return err
	}
	old, err := pg.ReadTuple(int(rid.Slot))
	if err != nil {
		fr.Unlatch()
		db.pool.Unpin(tx.w, fr, false, 0)
		return fmt.Errorf("%w: %v: %v", ErrNoTuple, rid, err)
	}
	before := append([]byte(nil), old...)
	if db.vs != nil {
		// Under the exclusive latch, before the heap mutation: a snapshot
		// reader that sees the new heap state must find this before-image.
		db.vs.installPending(rid, tx.id, before, false)
	}
	if err := pg.Update(int(rid.Slot), data); err != nil {
		fr.Unlatch()
		db.pool.Unpin(tx.w, fr, false, 0)
		return err
	}
	lsn := tx.logUpdate(rid.Page, wal.OpUpdate, int(rid.Slot), before, data)
	pg.SetLSN(lsn)
	fr.Unlatch()
	if err := db.pool.Unpin(tx.w, fr, true, lsn); err != nil {
		return err
	}
	return db.maybeReclaim(tx.w)
}

// UpdateField performs the OLTP pattern the paper analyses: a
// read-modify-write of a byte range within the tuple (e.g. one numeric
// attribute), leaving the rest untouched — which is what keeps update
// deltas small. The tuple lock is taken before the base tuple is read,
// so the RMW is atomic against concurrent writers; reading first would
// silently merge val into a stale image and lose their updates.
func (t *Table) UpdateField(tx *Tx, rid core.RID, off int, val []byte) error {
	cur, err := t.ReadLocked(tx, rid)
	if err != nil {
		return err
	}
	if off < 0 || off+len(val) > len(cur) {
		return fmt.Errorf("engine: field [%d,%d) outside tuple of %d bytes", off, off+len(val), len(cur))
	}
	copy(cur[off:], val)
	return t.Update(tx, rid, cur)
}

// AddField adds delta to the 8-byte little-endian word at off — the
// pure delta update the IPA scheme appends in place. The addition
// happens under the tuple lock, so concurrent terminals incrementing
// the same balance serialize instead of losing increments to stale
// client-side reads (the anomaly an absolute write computed from an
// unlocked read suffers).
func (t *Table) AddField(tx *Tx, rid core.RID, off int, delta uint64) error {
	cur, err := t.ReadLocked(tx, rid)
	if err != nil {
		return err
	}
	if off < 0 || off+8 > len(cur) {
		return fmt.Errorf("engine: field [%d,%d) outside tuple of %d bytes", off, off+8, len(cur))
	}
	binary.LittleEndian.PutUint64(cur[off:], binary.LittleEndian.Uint64(cur[off:])+delta)
	return t.Update(tx, rid, cur)
}

// Delete removes the tuple at rid.
func (t *Table) Delete(tx *Tx, rid core.RID) error {
	db := t.db
	if tx.status != txActive {
		return fmt.Errorf("%w: tx %d", ErrTxClosed, tx.id)
	}
	if tx.readOnly {
		return fmt.Errorf("%w: tx %d", ErrReadOnlyTx, tx.id)
	}
	db.stateMu.RLock()
	defer db.stateMu.RUnlock()
	if err := tx.lockRID(rid); err != nil {
		return err
	}
	fr, err := db.pool.Get(tx.w, rid.Page)
	if err != nil {
		return err
	}
	fr.Latch()
	pg, err := page.Attach(fr.Data, t.st.layout)
	if err != nil {
		fr.Unlatch()
		db.pool.Unpin(tx.w, fr, false, 0)
		return err
	}
	old, err := pg.ReadTuple(int(rid.Slot))
	if err != nil {
		fr.Unlatch()
		db.pool.Unpin(tx.w, fr, false, 0)
		return fmt.Errorf("%w: %v: %v", ErrNoTuple, rid, err)
	}
	before := append([]byte(nil), old...)
	if db.vs != nil {
		db.vs.installPending(rid, tx.id, before, false)
	}
	if err := pg.Delete(int(rid.Slot)); err != nil {
		fr.Unlatch()
		db.pool.Unpin(tx.w, fr, false, 0)
		return err
	}
	lsn := tx.logUpdate(rid.Page, wal.OpDelete, int(rid.Slot), before, nil)
	pg.SetLSN(lsn)
	fr.Unlatch()
	return db.pool.Unpin(tx.w, fr, true, lsn)
}

// Scan visits every live tuple in heap order until fn returns false. The
// callback runs with no latches held, so it may perform table reads;
// tuples inserted concurrently may or may not be seen.
func (t *Table) Scan(w *sim.Worker, fn func(rid core.RID, tuple []byte) bool) error {
	db := t.db
	t.mu.Lock()
	pages := append([]core.PageID(nil), t.pages...)
	t.mu.Unlock()
	for _, id := range pages {
		type item struct {
			rid core.RID
			tup []byte
		}
		var items []item
		db.stateMu.RLock()
		fr, err := db.pool.Get(w, id)
		if err != nil {
			db.stateMu.RUnlock()
			return err
		}
		fr.RLatch()
		pg, err := page.Attach(fr.Data, t.st.layout)
		if err != nil {
			fr.RUnlatch()
			db.pool.Unpin(w, fr, false, 0)
			db.stateMu.RUnlock()
			return err
		}
		for s := 0; s < pg.SlotCount(); s++ {
			tup, err := pg.ReadTuple(s)
			if err != nil {
				continue // deleted slot
			}
			items = append(items, item{core.RID{Page: id, Slot: uint16(s)}, append([]byte(nil), tup...)})
		}
		fr.RUnlatch()
		db.pool.Unpin(w, fr, false, 0)
		db.stateMu.RUnlock()
		for _, it := range items {
			if !fn(it.rid, it.tup) {
				return nil
			}
		}
	}
	return nil
}
