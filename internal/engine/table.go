package engine

import (
	"errors"
	"fmt"

	"ipa/internal/core"
	"ipa/internal/page"
	"ipa/internal/sim"
	"ipa/internal/wal"
)

// Table errors.
var (
	ErrTableExists = errors.New("engine: table already exists")
	ErrNoTable     = errors.New("engine: no such table")
	ErrNoTuple     = errors.New("engine: no tuple at RID")
)

// Table is a heap file of slotted pages in one region (tablespace). The
// region decides whether the table's small updates become In-Place
// Appends — the paper's selective application of IPA per database object.
type Table struct {
	db    *DB
	st    *PageStore
	name  string
	id    uint64
	pages []core.PageID // heap chain, in allocation order
	last  core.PageID   // current insertion target
}

// CreateTable creates a heap table placed in the named region.
func (db *DB) CreateTable(name, regionName string) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrTableExists, name)
	}
	st, err := db.attachRegionLocked(regionName)
	if err != nil {
		return nil, err
	}
	t := &Table{db: db, st: st, name: name, id: uint64(len(db.tables) + 1)}
	db.tables[name] = t
	return t, nil
}

// Table looks up a table by name.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Store returns the table's page store.
func (t *Table) Store() *PageStore { return t.st }

// Pages returns the number of allocated heap pages.
func (t *Table) Pages() int {
	t.db.mu.Lock()
	defer t.db.mu.Unlock()
	return len(t.pages)
}

// Insert appends a tuple, logging the operation under tx.
func (t *Table) Insert(tx *Tx, data []byte) (core.RID, error) {
	db := t.db
	db.mu.Lock()
	defer db.mu.Unlock()
	if tx.status != txActive {
		return core.RID{}, fmt.Errorf("%w: tx %d", ErrTxDone, tx.id)
	}
	// Try the current insertion target first.
	if t.last != core.InvalidPageID {
		rid, err := t.insertIntoLocked(tx, t.last, data)
		if err == nil {
			return rid, nil
		}
		if !errors.Is(err, page.ErrPageFull) {
			return core.RID{}, err
		}
	}
	// Allocate a fresh page and chain it.
	fr, pg, err := db.newPageLocked(tx.w, t.st, t.id, 0)
	if err != nil {
		return core.RID{}, err
	}
	id := pg.ID()
	if t.last != core.InvalidPageID {
		// Link the previous tail to the new page.
		if err := t.setNextLocked(tx.w, t.last, id); err != nil {
			db.pool.Unpin(tx.w, fr, false, 0)
			return core.RID{}, err
		}
	}
	t.pages = append(t.pages, id)
	t.last = id
	slot, err := pg.Insert(data)
	if err != nil {
		db.pool.Unpin(tx.w, fr, false, 0)
		return core.RID{}, err
	}
	rid := core.RID{Page: id, Slot: uint16(slot)}
	if err := tx.lockRID(rid); err != nil {
		// A fresh slot can only collide with a deleted-but-locked tuple.
		pg.Delete(slot)
		db.pool.Unpin(tx.w, fr, false, 0)
		return core.RID{}, err
	}
	lsn := tx.logUpdate(id, wal.OpInsert, slot, nil, data)
	pg.SetLSN(lsn)
	if err := db.pool.Unpin(tx.w, fr, true, lsn); err != nil {
		return core.RID{}, err
	}
	return rid, db.maybeReclaimLocked(tx.w)
}

func (t *Table) insertIntoLocked(tx *Tx, id core.PageID, data []byte) (core.RID, error) {
	db := t.db
	fr, err := db.pool.Get(tx.w, id)
	if err != nil {
		return core.RID{}, err
	}
	pg, err := page.Attach(fr.Data, t.st.layout)
	if err != nil {
		db.pool.Unpin(tx.w, fr, false, 0)
		return core.RID{}, err
	}
	slot, err := pg.Insert(data)
	if err != nil {
		db.pool.Unpin(tx.w, fr, false, 0)
		return core.RID{}, err
	}
	rid := core.RID{Page: id, Slot: uint16(slot)}
	if err := tx.lockRID(rid); err != nil {
		pg.Delete(slot)
		db.pool.Unpin(tx.w, fr, false, 0)
		return core.RID{}, err
	}
	lsn := tx.logUpdate(id, wal.OpInsert, slot, nil, data)
	pg.SetLSN(lsn)
	if err := db.pool.Unpin(tx.w, fr, true, lsn); err != nil {
		return core.RID{}, err
	}
	return rid, nil
}

// setNextLocked updates the heap chain pointer of a page (metadata-only
// change, itself absorbed as a delta when flushed).
func (t *Table) setNextLocked(w *sim.Worker, id, next core.PageID) error {
	fr, err := t.db.pool.Get(w, id)
	if err != nil {
		return err
	}
	pg, err := page.Attach(fr.Data, t.st.layout)
	if err != nil {
		t.db.pool.Unpin(w, fr, false, 0)
		return err
	}
	pg.SetNextPage(next)
	return t.db.pool.Unpin(w, fr, true, pg.LSN())
}

// Read copies the tuple at rid.
func (t *Table) Read(w *sim.Worker, rid core.RID) ([]byte, error) {
	db := t.db
	db.mu.Lock()
	defer db.mu.Unlock()
	fr, err := db.pool.Get(w, rid.Page)
	if err != nil {
		return nil, err
	}
	defer db.pool.Unpin(w, fr, false, 0)
	pg, err := page.Attach(fr.Data, t.st.layout)
	if err != nil {
		return nil, err
	}
	tup, err := pg.ReadTuple(int(rid.Slot))
	if err != nil {
		return nil, fmt.Errorf("%w: %v: %v", ErrNoTuple, rid, err)
	}
	return append([]byte(nil), tup...), nil
}

// Update replaces the tuple at rid, logging before/after images.
func (t *Table) Update(tx *Tx, rid core.RID, data []byte) error {
	db := t.db
	db.mu.Lock()
	defer db.mu.Unlock()
	if tx.status != txActive {
		return fmt.Errorf("%w: tx %d", ErrTxDone, tx.id)
	}
	if err := tx.lockRID(rid); err != nil {
		return err
	}
	fr, err := db.pool.Get(tx.w, rid.Page)
	if err != nil {
		return err
	}
	pg, err := page.Attach(fr.Data, t.st.layout)
	if err != nil {
		db.pool.Unpin(tx.w, fr, false, 0)
		return err
	}
	old, err := pg.ReadTuple(int(rid.Slot))
	if err != nil {
		db.pool.Unpin(tx.w, fr, false, 0)
		return fmt.Errorf("%w: %v: %v", ErrNoTuple, rid, err)
	}
	before := append([]byte(nil), old...)
	if err := pg.Update(int(rid.Slot), data); err != nil {
		db.pool.Unpin(tx.w, fr, false, 0)
		return err
	}
	lsn := tx.logUpdate(rid.Page, wal.OpUpdate, int(rid.Slot), before, data)
	pg.SetLSN(lsn)
	if err := db.pool.Unpin(tx.w, fr, true, lsn); err != nil {
		return err
	}
	return db.maybeReclaimLocked(tx.w)
}

// UpdateField performs the OLTP pattern the paper analyses: a
// read-modify-write of a byte range within the tuple (e.g. one numeric
// attribute), leaving the rest untouched — which is what keeps update
// deltas small.
func (t *Table) UpdateField(tx *Tx, rid core.RID, off int, val []byte) error {
	cur, err := t.Read(tx.w, rid)
	if err != nil {
		return err
	}
	if off < 0 || off+len(val) > len(cur) {
		return fmt.Errorf("engine: field [%d,%d) outside tuple of %d bytes", off, off+len(val), len(cur))
	}
	copy(cur[off:], val)
	return t.Update(tx, rid, cur)
}

// Delete removes the tuple at rid.
func (t *Table) Delete(tx *Tx, rid core.RID) error {
	db := t.db
	db.mu.Lock()
	defer db.mu.Unlock()
	if tx.status != txActive {
		return fmt.Errorf("%w: tx %d", ErrTxDone, tx.id)
	}
	if err := tx.lockRID(rid); err != nil {
		return err
	}
	fr, err := db.pool.Get(tx.w, rid.Page)
	if err != nil {
		return err
	}
	pg, err := page.Attach(fr.Data, t.st.layout)
	if err != nil {
		db.pool.Unpin(tx.w, fr, false, 0)
		return err
	}
	old, err := pg.ReadTuple(int(rid.Slot))
	if err != nil {
		db.pool.Unpin(tx.w, fr, false, 0)
		return fmt.Errorf("%w: %v: %v", ErrNoTuple, rid, err)
	}
	before := append([]byte(nil), old...)
	if err := pg.Delete(int(rid.Slot)); err != nil {
		db.pool.Unpin(tx.w, fr, false, 0)
		return err
	}
	lsn := tx.logUpdate(rid.Page, wal.OpDelete, int(rid.Slot), before, nil)
	pg.SetLSN(lsn)
	return db.pool.Unpin(tx.w, fr, true, lsn)
}

// Scan visits every live tuple in heap order until fn returns false.
func (t *Table) Scan(w *sim.Worker, fn func(rid core.RID, tuple []byte) bool) error {
	db := t.db
	db.mu.Lock()
	pages := append([]core.PageID(nil), t.pages...)
	db.mu.Unlock()
	for _, id := range pages {
		db.mu.Lock()
		fr, err := db.pool.Get(w, id)
		if err != nil {
			db.mu.Unlock()
			return err
		}
		pg, err := page.Attach(fr.Data, t.st.layout)
		if err != nil {
			db.pool.Unpin(w, fr, false, 0)
			db.mu.Unlock()
			return err
		}
		type item struct {
			rid core.RID
			tup []byte
		}
		var items []item
		for s := 0; s < pg.SlotCount(); s++ {
			tup, err := pg.ReadTuple(s)
			if err != nil {
				continue // deleted slot
			}
			items = append(items, item{core.RID{Page: id, Slot: uint16(s)}, append([]byte(nil), tup...)})
		}
		db.pool.Unpin(w, fr, false, 0)
		db.mu.Unlock()
		for _, it := range items {
			if !fn(it.rid, it.tup) {
				return nil
			}
		}
	}
	return nil
}
