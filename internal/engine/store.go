// Package engine is the storage engine tying everything together: a
// Shore-MT-like substrate with heap tables, a B+tree index, ARIES
// logging, a steal/no-force buffer pool — and the paper's In-Place
// Appends on the fetch/evict path (Sec. 6.2 "Page Operations").
package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ipa/internal/buffer"
	"ipa/internal/core"
	"ipa/internal/ecc"
	"ipa/internal/flash"
	"ipa/internal/metrics"
	"ipa/internal/noftl"
	"ipa/internal/page"
	"ipa/internal/sim"
)

// Errors of the engine.
var (
	ErrECC         = errors.New("engine: uncorrectable flash page")
	ErrOOBTooSmall = errors.New("engine: OOB area too small for sectioned ECC")
)

// FlushKind classifies how a flush was served (for the experiment
// counters).
type FlushKind int

const (
	FlushSkipped    FlushKind = iota // nothing changed
	FlushDelta                       // served as write_delta (In-Place Append)
	FlushOutOfPlace                  // full out-of-place page write
)

// StoreStats is a point-in-time snapshot of the flush decisions and the
// update-size distributions the paper analyses, returned by
// PageStore.Stats. The counter fields are copied values; the histogram
// and latency fields point at the store's live (internally synchronised)
// recorders, so they always read current and support Reset.
type StoreStats struct {
	Fetches      uint64
	DeltaApply   uint64 // fetches that applied ≥1 delta-record
	ECCCorrected uint64

	FlushesSkipped uint64
	FlushesDelta   uint64
	FlushesOOP     uint64

	// Update-size histograms over *update* flushes (appends to brand-new
	// pages are excluded, as in the paper's Appendix A statistics).
	NetBytes   *metrics.Hist // changed body bytes per flushed page
	GrossBytes *metrics.Hist // body + metadata bytes

	FetchLatency *metrics.Latency
	FlushLatency *metrics.Latency

	// Scheme identifies the store's write-reduction scheme and carries
	// its scheme-specific counters.
	Scheme SchemeStats
}

// storeCounters are the live counters behind StoreStats, updated with
// atomics so concurrent fetch/flush paths never serialise on stats.
type storeCounters struct {
	fetches      atomic.Uint64
	deltaApply   atomic.Uint64
	eccCorrected atomic.Uint64

	flushesSkipped atomic.Uint64
	flushesDelta   atomic.Uint64
	flushesOOP     atomic.Uint64
}

// TraceSink receives page-level I/O events for trace recording (the
// IPL-vs-IPA comparison replays such traces).
type TraceSink interface {
	RecordFetch(id core.PageID)
	RecordEvict(id core.PageID, net, gross int, isNew bool)
}

// PageStore binds a NoFTL region to a page layout and implements
// buffer.Store: fetching reconstructs logical pages from physical images
// (applying delta-records, checking sectioned ECC); flushing performs the
// paper's IPA-vs-out-of-place decision.
type PageStore struct {
	region *noftl.Region
	layout page.Layout
	sect   ecc.Sections
	useECC bool

	// scheme is the pluggable write-reduction scheme (see scheme.go);
	// schemeMu guards runtime switches (SetStorage). dl is the PDL
	// differential log, created lazily for PDL stores and kept across
	// scheme switches so a later switch back finds its state.
	schemeMu sync.RWMutex
	scheme   StorageScheme
	dl       *noftl.DiffLog

	ctr        storeCounters
	netBytes   *metrics.Hist
	grossBytes *metrics.Hist
	fetchLat   *metrics.Latency
	flushLat   *metrics.Latency

	// Fetch reads the page image straight into the caller's frame buffer;
	// the OOB area rides along for ECC and comes from this pool so the
	// steady-state fetch path allocates nothing.
	oobPool sync.Pool
	// Flush diffs into pooled ChangeSets whose pair slices keep their
	// capacity across flushes.
	csPool sync.Pool

	sinkMu sync.RWMutex
	sink   TraceSink
}

// SetTraceSink attaches a trace recorder (nil detaches).
func (s *PageStore) SetTraceSink(ts TraceSink) {
	s.sinkMu.Lock()
	s.sink = ts
	s.sinkMu.Unlock()
}

func (s *PageStore) traceSink() TraceSink {
	s.sinkMu.RLock()
	defer s.sinkMu.RUnlock()
	return s.sink
}

// NewPageStore creates a store over a region. pageSize is the database
// page size; the [N×M] scheme comes from the region. When useECC is set,
// the OOB area must accommodate the sectioned codes.
func NewPageStore(region *noftl.Region, pageSize int, useECC bool) (*PageStore, error) {
	l := page.Layout{PageSize: pageSize, Scheme: region.Scheme()}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	s := &PageStore{
		region:     region,
		layout:     l,
		useECC:     useECC,
		netBytes:   metrics.NewHist(pageSize),
		grossBytes: metrics.NewHist(pageSize),
		fetchLat:   &metrics.Latency{},
		flushLat:   &metrics.Latency{},
	}
	s.sect = ecc.Sections{
		BodyLen: l.DeltaAreaStart(),
		SlotLen: l.Scheme.RecordSize(),
		Slots:   l.Scheme.N,
	}
	oobSize := region.OOBSize()
	s.oobPool.New = func() any {
		b := make([]byte, oobSize)
		return &b
	}
	s.csPool.New = func() any { return new(core.ChangeSet) }
	if pageSize != region.PageSize() {
		return nil, fmt.Errorf("engine: page size %d != flash page size %d", pageSize, region.PageSize())
	}
	if useECC && region.OOBSize() < s.sect.TotalCodeLen() {
		return nil, fmt.Errorf("%w: need %d, have %d", ErrOOBTooSmall, s.sect.TotalCodeLen(), region.OOBSize())
	}
	scheme, err := s.newScheme(region.Storage())
	if err != nil {
		return nil, err
	}
	s.scheme = scheme
	return s, nil
}

// Layout returns the page layout of this store.
func (s *PageStore) Layout() page.Layout { return s.layout }

// Region returns the backing NoFTL region.
func (s *PageStore) Region() *noftl.Region { return s.region }

// Stats returns a snapshot of the store's counters (see StoreStats for
// which fields are copies and which are live recorders).
func (s *PageStore) Stats() StoreStats {
	return StoreStats{
		Fetches:        s.ctr.fetches.Load(),
		DeltaApply:     s.ctr.deltaApply.Load(),
		ECCCorrected:   s.ctr.eccCorrected.Load(),
		FlushesSkipped: s.ctr.flushesSkipped.Load(),
		FlushesDelta:   s.ctr.flushesDelta.Load(),
		FlushesOOP:     s.ctr.flushesOOP.Load(),
		NetBytes:       s.netBytes,
		GrossBytes:     s.grossBytes,
		FetchLatency:   s.fetchLat,
		FlushLatency:   s.flushLat,
		Scheme:         s.currentScheme().Stats(),
	}
}

// Fetch implements buffer.Store: read the physical image, verify and
// correct ECC per section, apply delta-records, and hand back the logical
// image plus the used-slot count (N_E).
func (s *PageStore) Fetch(w *sim.Worker, id core.PageID, buf []byte) (int, error) {
	start := now(w)
	scheme := s.currentScheme()
	var used, applied int
	// Epoch loop: a PDL merge can fold a page's differential records into
	// a rewritten base image between our base read and Materialize — the
	// stale base would then materialise to a pre-merge image. The scheme
	// bumps its epoch per merge; an unchanged epoch across the whole
	// read+materialise proves the composition was consistent. IPA and OOP
	// have a constant epoch, so the loop runs exactly once there.
	for {
		e0 := scheme.Epoch()
		var err error
		if used, applied, err = s.fetchOnce(w, id, buf, scheme); err != nil {
			return 0, err
		}
		if scheme.Epoch() == e0 {
			break
		}
	}
	s.ctr.fetches.Add(1)
	if sink := s.traceSink(); sink != nil {
		sink.RecordFetch(id)
	}
	if applied > 0 {
		s.ctr.deltaApply.Add(1)
	}
	s.fetchLat.Add(elapsed(w, start))
	return used, nil
}

// fetchOnce performs one read+reconstruct+materialise attempt. It
// returns the used delta-slot count and how many differential bytes or
// records were applied on top of the raw image.
func (s *PageStore) fetchOnce(w *sim.Worker, id core.PageID, buf []byte, scheme StorageScheme) (used, applied int, err error) {
	// The physical image lands directly in the caller's frame buffer and
	// is reconstructed there in place — no intermediate copy. The OOB area
	// is only needed for ECC verification, from a pooled scratch buffer.
	var oob []byte
	var oobp *[]byte
	if s.useECC {
		oobp = s.oobPool.Get().(*[]byte)
		oob = *oobp
	}
	if err := s.region.ReadInto(w, id, buf, oob); err != nil {
		if oobp != nil {
			s.oobPool.Put(oobp)
		}
		return 0, 0, err
	}
	used = page.UsedDeltaSlots(buf, s.layout)
	if s.useECC {
		n, err := s.correctSections(buf, oob, used)
		s.oobPool.Put(oobp)
		if err != nil {
			return 0, 0, fmt.Errorf("%w: page %d: %v", ErrECC, id, err)
		}
		s.ctr.eccCorrected.Add(uint64(n))
	}
	applied, err = page.Reconstruct(buf, s.layout)
	if err != nil {
		return 0, 0, fmt.Errorf("engine: reconstruct page %d: %w", id, err)
	}
	m, err := scheme.Materialize(w, id, buf)
	if err != nil {
		return 0, 0, fmt.Errorf("engine: materialize page %d: %w", id, err)
	}
	return used, applied + m, nil
}

// correctSections verifies ECC_initial over the body and ECC_delta_i over
// each present delta slot (Sec. 6.2).
func (s *PageStore) correctSections(data, oob []byte, used int) (corrected int, err error) {
	if len(oob) < s.sect.TotalCodeLen() {
		return 0, fmt.Errorf("%w: %d < %d", ErrOOBTooSmall, len(oob), s.sect.TotalCodeLen())
	}
	n, err := ecc.Correct(data[:s.sect.BodyLen], oob[:s.sect.BodyCodeLen()])
	if err != nil {
		return n, err
	}
	corrected = n
	rs := s.layout.Scheme.RecordSize()
	for i := 0; i < used; i++ {
		off := s.layout.DeltaSlotOff(i)
		code := oob[s.sect.SlotCodeOff(i) : s.sect.SlotCodeOff(i)+s.sect.SlotCodeLen()]
		n, err := ecc.Correct(data[off:off+rs], code)
		if err != nil {
			return corrected, fmt.Errorf("delta slot %d: %w", i, err)
		}
		corrected += n
	}
	return corrected, nil
}

// Flush implements buffer.Store: diff the frame against its last flushed
// image, and either append delta-records to the same physical flash page
// (write_delta) or write the whole page out-of-place.
func (s *PageStore) Flush(w *sim.Worker, fr *buffer.Frame) error {
	start := now(w)
	kind, err := s.flush(w, fr)
	if err != nil {
		return err
	}
	switch kind {
	case FlushSkipped:
		s.ctr.flushesSkipped.Add(1)
	case FlushDelta:
		s.ctr.flushesDelta.Add(1)
	case FlushOutOfPlace:
		s.ctr.flushesOOP.Add(1)
	}
	if kind != FlushSkipped {
		s.flushLat.Add(elapsed(w, start))
	}
	return nil
}

func (s *PageStore) flush(w *sim.Worker, fr *buffer.Frame) (FlushKind, error) {
	// A brand-new page has no physical copy: IPA is not applicable, the
	// first write is always a whole-page out-of-place program.
	if fr.New || fr.Flushed == nil {
		if err := s.writeOutOfPlace(w, fr); err != nil {
			return 0, err
		}
		if sink := s.traceSink(); sink != nil {
			sink.RecordEvict(fr.ID, 0, 0, true)
		}
		return FlushOutOfPlace, nil
	}
	pg, err := page.Attach(fr.Data, s.layout)
	if err != nil {
		return 0, err
	}
	// Range-classified word-scan diff into a pooled ChangeSet: the ranges
	// live on the stack and the pair slices keep their capacity, so a
	// flush of an unchanged page costs one XOR pass and zero allocations.
	var rbuf [4]core.ClassRange
	cs := s.csPool.Get().(*core.ChangeSet)
	defer s.csPool.Put(cs)
	if err := core.DiffInto(cs, fr.Data, fr.Flushed, pg.ClassRanges(rbuf[:0])); err != nil {
		return 0, err
	}
	if cs.Empty() {
		return FlushSkipped, nil
	}
	// Update-size statistics: this is an update I/O to an existing page.
	s.netBytes.Add(cs.BodyBytes())
	s.grossBytes.Add(cs.BodyBytes() + cs.MetaBytes())
	if sink := s.traceSink(); sink != nil {
		sink.RecordEvict(fr.ID, cs.BodyBytes(), cs.BodyBytes()+cs.MetaBytes(), false)
	}
	// The IPA-vs-PDL-vs-OOP decision itself is pluggable; see scheme.go.
	return s.currentScheme().FlushUpdate(w, fr, cs)
}

// writeDelta encodes the planned records into contiguous delta slots and
// issues one write_delta covering them (plus their ECC in the OOB area).
func (s *PageStore) writeDelta(w *sim.Worker, fr *buffer.Frame, recs []core.DeltaRecord) error {
	off, data, err := page.EncodeRecords(s.layout, fr.UsedSlots, recs)
	if err != nil {
		return err
	}
	var oobOff int
	var oobData []byte
	if s.useECC {
		oobOff = s.sect.SlotCodeOff(fr.UsedSlots)
		rs := s.layout.Scheme.RecordSize()
		for i := range recs {
			oobData = append(oobData, ecc.Encode(data[i*rs:(i+1)*rs])...)
		}
	}
	if err := s.region.WriteDelta(w, fr.ID, off, data, oobOff, oobData); err != nil {
		return err
	}
	fr.UsedSlots += len(recs)
	fr.Flushed = append(fr.Flushed[:0], fr.Data...)
	return nil
}

// writeOutOfPlace writes the full logical image (delta area erased) to a
// new physical location and resets the delta state.
func (s *PageStore) writeOutOfPlace(w *sim.Worker, fr *buffer.Frame) error {
	var oob []byte
	if s.useECC {
		oob = ecc.Encode(fr.Data[:s.sect.BodyLen])
	}
	if err := s.region.Write(w, fr.ID, fr.Data, oob); err != nil {
		return err
	}
	fr.UsedSlots = 0
	fr.New = false
	fr.Flushed = append(fr.Flushed[:0], fr.Data...)
	return nil
}

// Scrub implements the Correct-and-Refresh maintenance pass (Sec. 2.3):
// the physical page is read, bit errors are corrected through the
// sectioned ECC, and the corrected raw image is ISPP re-programmed in
// place — restoring leaked charge without an out-of-place write or an
// erase. It returns the number of corrected bits.
func (s *PageStore) Scrub(w *sim.Worker, id core.PageID) (corrected int, err error) {
	if !s.useECC {
		return 0, fmt.Errorf("engine: scrub requires ECC")
	}
	data, oob, err := s.region.Read(w, id)
	if err != nil {
		return 0, err
	}
	used := page.UsedDeltaSlots(data, s.layout)
	n, err := s.correctSections(data, oob, used)
	if err != nil {
		return n, fmt.Errorf("%w: page %d: %v", ErrECC, id, err)
	}
	if n == 0 {
		return 0, nil // nothing leaked; skip the re-program
	}
	if err := s.region.Refresh(w, id, data, oob); err != nil {
		return n, err
	}
	return n, nil
}

// RecoverMapping rebuilds the region's logical→physical mapping from
// flash contents after a power loss that wiped the in-memory NoFTL
// metadata. Every programmed physical page is scanned; its raw image is
// reconstructed (delta-records applied) to obtain the page id and the
// effective PageLSN, and for each logical page the copy with the highest
// LSN wins — older copies are garbage the collector will reclaim. It
// returns the number of logical pages recovered.
func (s *PageStore) RecoverMapping(w *sim.Worker) (int, error) {
	type winner struct {
		ppn flash.PPN
		lsn core.LSN
	}
	best := make(map[core.PageID]winner)
	var scanErr error
	pdlBlock := -1
	err := s.region.ScanPhysical(w, func(pp noftl.PhysicalPage) bool {
		// A PDL log block announces itself on its first page; its pages
		// hold differential records, not database pages, and the scan
		// visits a block's pages consecutively — skip the whole block.
		// The DiffLog re-parses the records below.
		if pp.Block == pdlBlock {
			return true
		}
		if noftl.IsPDLPage(pp.Data) {
			pdlBlock = pp.Block
			return true
		}
		img := append([]byte(nil), pp.Data...)
		if _, err := page.Reconstruct(img, s.layout); err != nil {
			// Unreadable image: skip (a torn program would be caught by
			// ECC on real hardware; our model only sees whole programs).
			return true
		}
		pg, err := page.Attach(img, s.layout)
		if err != nil {
			return true
		}
		id := pg.ID()
		if id == core.InvalidPageID {
			return true
		}
		if cur, ok := best[id]; !ok || pg.LSN() > cur.lsn {
			best[id] = winner{ppn: pp.PPN, lsn: pg.LSN()}
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	if scanErr != nil {
		return 0, scanErr
	}
	mapping := make(map[core.PageID]flash.PPN, len(best))
	for id, wn := range best {
		mapping[id] = wn.ppn
	}
	if err := s.region.Adopt(mapping); err != nil {
		return 0, err
	}
	if s.dl != nil {
		// Re-derive the differential log AFTER Adopt (it re-claims its
		// blocks from the freshly rebuilt bookkeeping). A record survives
		// iff its page is mapped and its LSN is newer than the adopted
		// base image's — every older record is already folded into some
		// later out-of-place write.
		baseLSN := make(map[core.PageID]core.LSN, len(best))
		for id, wn := range best {
			baseLSN[id] = wn.lsn
		}
		if _, err := s.dl.Rebuild(w, baseLSN); err != nil {
			return 0, err
		}
	}
	return len(mapping), nil
}

// Free releases the physical copy of a page and any scheme-held state
// (e.g. PDL differential records) referencing it.
func (s *PageStore) Free(id core.PageID) error {
	if !s.region.Contains(id) {
		return nil
	}
	if err := s.region.Free(id); err != nil {
		return err
	}
	s.currentScheme().Invalidate(id)
	return nil
}

func now(w *sim.Worker) sim.Time {
	if w == nil {
		return 0
	}
	return w.Now()
}

func elapsed(w *sim.Worker, start sim.Time) time.Duration {
	if w == nil {
		return 0
	}
	return time.Duration(w.Now() - start)
}
