package engine

import (
	"sync"

	"ipa/internal/core"
)

// lockShards is the number of independent shards in the RID lock table.
// Power of two so the shard index is a mask of the hash.
const lockShards = 64

// lockTable is a sharded no-wait exclusive lock table at RID granularity.
// Acquire either succeeds immediately or fails with the current owner —
// there is no waiting, so deadlocks cannot arise (no-wait deadlock
// avoidance); callers abort and retry. Each shard has its own mutex, so
// transactions touching different tuples contend only on a hash
// collision, never on a global lock.
type lockTable struct {
	shards [lockShards]lockShard
}

type lockShard struct {
	mu    sync.Mutex
	owner map[core.RID]uint64
}

func (lt *lockTable) shard(rid core.RID) *lockShard {
	h := uint64(rid.Page)*0x9e3779b97f4a7c15 + uint64(rid.Slot)
	return &lt.shards[(h>>32)&(lockShards-1)]
}

// acquire takes the exclusive lock on rid for txID. ok reports success
// (including re-acquisition); fresh reports a first-time acquisition the
// caller must remember for release; owner is the holder on conflict.
func (lt *lockTable) acquire(rid core.RID, txID uint64) (ok, fresh bool, owner uint64) {
	s := lt.shard(rid)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.owner == nil {
		s.owner = make(map[core.RID]uint64)
	}
	if cur, held := s.owner[rid]; held {
		return cur == txID, false, cur
	}
	s.owner[rid] = txID
	return true, true, txID
}

// release drops rid's lock if txID still owns it.
func (lt *lockTable) release(rid core.RID, txID uint64) {
	s := lt.shard(rid)
	s.mu.Lock()
	if s.owner[rid] == txID {
		delete(s.owner, rid)
	}
	s.mu.Unlock()
}

// releaseAll drops every lock in rids owned by txID (commit/abort).
func (lt *lockTable) releaseAll(rids []core.RID, txID uint64) {
	for _, rid := range rids {
		lt.release(rid, txID)
	}
}

// clear empties the whole table (crash simulation).
func (lt *lockTable) clear() {
	for i := range lt.shards {
		s := &lt.shards[i]
		s.mu.Lock()
		s.owner = nil
		s.mu.Unlock()
	}
}
