package engine

import (
	"errors"
	"fmt"
	"sync/atomic"

	"ipa/internal/core"
	"ipa/internal/page"
	"ipa/internal/sim"
	"ipa/internal/wal"
)

// Tx status values.
type txStatus int

const (
	txActive txStatus = iota
	txCommitted
	txAborted
)

// ErrTxClosed is returned when operating on a finished transaction.
var ErrTxClosed = errors.New("engine: transaction already closed")

// ErrTxDone is the historical name of ErrTxClosed.
//
// Deprecated: use ErrTxClosed. errors.Is matches either.
var ErrTxDone = ErrTxClosed

// ErrLockConflict is returned when a tuple is exclusively locked by
// another active transaction. Locking is no-wait (immediate failure), so
// deadlocks cannot arise; callers abort and retry.
var ErrLockConflict = errors.New("engine: tuple locked by another transaction")

// Snapshot-transaction errors.
var (
	// ErrMVCCDisabled is returned by BeginSnapshot when the instance was
	// opened without Options.MVCC.
	ErrMVCCDisabled = errors.New("engine: MVCC disabled (Options.MVCC)")
	// ErrReadOnlyTx is returned when a snapshot transaction attempts a
	// write (or a locking read).
	ErrReadOnlyTx = errors.New("engine: snapshot transaction is read-only")
	// ErrNotSnapshot is returned by ReadSnapshot/ScanSnapshot when the
	// transaction is not a snapshot transaction.
	ErrNotSnapshot = errors.New("engine: not a snapshot transaction")
)

// atomicLSN is an LSN readable by other goroutines (fuzzy checkpoints
// snapshot active transactions without stopping them).
type atomicLSN struct{ v atomic.Uint64 }

func (a *atomicLSN) load() core.LSN   { return core.LSN(a.v.Load()) }
func (a *atomicLSN) store(l core.LSN) { a.v.Store(uint64(l)) }

// Tx is a transaction handle. A transaction belongs to one simulated
// worker (terminal) and one goroutine; distinct transactions on the same
// DB run concurrently. Updates are WAL-logged with undo images, so Abort
// rolls back via the normal ARIES path — which, with IPA, may read pages
// whose uncommitted changes live in delta-records on flash (Sec. 6.2,
// rollback discussion).
type Tx struct {
	id       uint64
	db       *DB
	w        *sim.Worker
	firstLSN core.LSN
	lastLSN  atomicLSN
	status   txStatus
	updates  int
	held     []core.RID // exclusive locks, released at commit/abort

	// Snapshot transactions (BeginSnapshot): read-only, pinned at
	// snapshot — they write no WAL records, hold no locks and are not in
	// the active-transaction table (no checkpoint footprint).
	readOnly bool
	snapshot core.LSN

	// lockConflict records that the transaction hit ErrLockConflict, so
	// Abort can account the abort to the right reason.
	lockConflict bool

	// commitLSN is set by Commit; the replication layer waits for it to
	// reach a quorum of followers before acking the client.
	commitLSN core.LSN
}

// Begin starts a transaction bound to the worker (nil is fine for
// untimed use). After Close it returns ErrClosed — deterministically,
// because the closed flag is raised under the state latch Begin holds
// shared.
func (db *DB) Begin(w *sim.Worker) (*Tx, error) {
	db.stateMu.RLock()
	defer db.stateMu.RUnlock()
	if db.closed.Load() {
		return nil, ErrClosed
	}
	tx := &Tx{id: db.nextTx.Add(1), db: db, w: w}
	tx.firstLSN = db.log.Append(wal.Record{Type: wal.RecBegin, TxID: tx.id})
	tx.lastLSN.store(tx.firstLSN)
	db.txMu.Lock()
	db.active[tx.id] = tx
	db.txMu.Unlock()
	return tx, nil
}

// BeginSnapshot starts a read-only transaction pinned at a snapshot
// LSN: every commit at or below the snapshot is fully visible, every
// later (or in-flight) change invisible. Snapshot transactions resolve
// reads through the MVCC version store (Table.ReadSnapshot /
// Table.ScanSnapshot), never touch the lock table, never block writers
// and never abort on conflict. They write no WAL records; Commit and
// Abort both simply release the snapshot pin. Requires Options.MVCC.
func (db *DB) BeginSnapshot(w *sim.Worker) (*Tx, error) {
	db.stateMu.RLock()
	defer db.stateMu.RUnlock()
	if db.closed.Load() {
		return nil, ErrClosed
	}
	if db.vs == nil {
		return nil, ErrMVCCDisabled
	}
	tx := &Tx{id: db.nextTx.Add(1), db: db, w: w, readOnly: true}
	tx.snapshot = db.vs.beginSnapshot(tx.id, db.log.Head)
	return tx, nil
}

// ID returns the transaction id.
func (tx *Tx) ID() uint64 { return tx.id }

// ReadOnly reports whether this is a snapshot (read-only) transaction.
func (tx *Tx) ReadOnly() bool { return tx.readOnly }

// SnapshotLSN returns the pinned snapshot LSN (0 for ordinary
// transactions).
func (tx *Tx) SnapshotLSN() core.LSN { return tx.snapshot }

// CommitLSN returns the LSN of the transaction's commit record (0 until
// Commit succeeds, and always 0 for read-only snapshot transactions).
// The server's quorum wait keys on it.
func (tx *Tx) CommitLSN() core.LSN { return tx.commitLSN }

// lockRID acquires (or re-acquires) the exclusive tuple lock through the
// sharded no-wait lock table.
func (tx *Tx) lockRID(rid core.RID) error {
	ok, fresh, owner := tx.db.locks.acquire(rid, tx.id)
	if !ok {
		tx.lockConflict = true
		tx.db.lockConflicts.Add(1)
		return fmt.Errorf("%w: %v held by tx %d", ErrLockConflict, rid, owner)
	}
	if fresh {
		tx.held = append(tx.held, rid)
	}
	return nil
}

// releaseLocks drops every lock the transaction holds.
func (tx *Tx) releaseLocks() {
	tx.db.locks.releaseAll(tx.held, tx.id)
	tx.held = nil
}

// logUpdate appends an update record and chains it. The caller holds the
// latch of the page being modified, which orders WAL appends and page
// applications identically per page (the PageLSN invariant redo relies
// on). The images are passed through uncopied: wal.Append copies them
// once, into log-owned arena storage, so this path performs no
// intermediate allocation.
func (tx *Tx) logUpdate(pg core.PageID, op wal.PageOp, slot int, before, after []byte) core.LSN {
	lsn := tx.db.log.Append(wal.Record{
		Type: wal.RecUpdate, TxID: tx.id, PrevLSN: tx.lastLSN.load(),
		Page: pg, Op: op, Slot: uint16(slot),
		Before: before,
		After:  after,
	})
	tx.lastLSN.store(lsn)
	tx.updates++
	return lsn
}

// Commit makes the transaction durable: the commit record is forced to
// the log via group flush (no-force for data pages) and the transaction
// ends. Commits of different transactions serialise only on the WAL's
// own mutex.
func (tx *Tx) Commit() error {
	db := tx.db
	if tx.status != txActive {
		return fmt.Errorf("%w: tx %d", ErrTxClosed, tx.id)
	}
	if tx.readOnly {
		tx.status = txCommitted
		db.vs.endSnapshot(tx.id)
		return nil
	}
	db.stateMu.RLock()
	defer db.stateMu.RUnlock()
	var lsn core.LSN
	if db.vs != nil && len(tx.held) > 0 {
		// MVCC: allocate the commit LSN and register it in-flight in one
		// step, stamp every pending before-image with it, then retire the
		// registration — all before locks release, so per-RID chains stay
		// ordered and no snapshot observes a half-stamped commit.
		lsn = db.vs.commitAppend(db.log, tx.id, tx.lastLSN.load())
		db.vs.stampCommitted(tx.held, tx.id, lsn)
		db.vs.finishCommit(lsn)
	} else {
		lsn = db.log.Append(wal.Record{Type: wal.RecCommit, TxID: tx.id, PrevLSN: tx.lastLSN.load()})
	}
	db.log.GroupFlush(lsn)
	db.log.Append(wal.Record{Type: wal.RecEnd, TxID: tx.id, PrevLSN: lsn})
	tx.status = txCommitted
	tx.commitLSN = lsn
	tx.releaseLocks()
	db.txMu.Lock()
	delete(db.active, tx.id)
	db.txMu.Unlock()
	return db.maybeReclaim(tx.w)
}

// Abort rolls the transaction back: its update chain is walked backwards,
// each change is undone through the regular page path (so undo data may
// come from delta-records on flash), CLRs are written, and the
// transaction ends.
func (tx *Tx) Abort() error {
	db := tx.db
	if tx.status != txActive {
		return fmt.Errorf("%w: tx %d", ErrTxClosed, tx.id)
	}
	if tx.readOnly {
		tx.status = txAborted
		db.vs.endSnapshot(tx.id)
		return nil
	}
	db.stateMu.RLock()
	defer db.stateMu.RUnlock()
	db.log.Append(wal.Record{Type: wal.RecAbort, TxID: tx.id, PrevLSN: tx.lastLSN.load()})
	if err := db.rollback(tx.w, tx.id, tx.lastLSN.load()); err != nil {
		return err
	}
	endLSN := db.log.Append(wal.Record{Type: wal.RecEnd, TxID: tx.id})
	tx.status = txAborted
	if db.vs != nil && len(tx.held) > 0 {
		// Stamp pending before-images with the end-record LSN rather than
		// dropping them. The entry's claim — "before this LSN the value
		// was the before-image" — is exactly what the rollback restored,
		// so it is true for aborts too, and it must stay in the chain: a
		// snapshot reader may have copied heap state containing this
		// transaction's uncommitted writes just before the rollback, and
		// only the chain entry stops it from resolving them (snapshots
		// pinned before this abort have S < endLSN and get the override;
		// later ones read the restored heap). The entry prunes normally
		// once no snapshot predates the abort. Stamping happens after the
		// heap rollback and before locks release, so the next writer's
		// entries still land strictly newer.
		db.vs.stampCommitted(tx.held, tx.id, endLSN)
	}
	if tx.lockConflict {
		db.abortsLock.Add(1)
	} else {
		db.abortsExplicit.Add(1)
	}
	tx.releaseLocks()
	db.txMu.Lock()
	delete(db.active, tx.id)
	db.txMu.Unlock()
	return nil
}

// rollback undoes a transaction's updates starting from lastLSN, writing
// a CLR per undone record. Shared by Abort (stateMu held shared) and
// restart undo (stateMu held exclusively).
func (db *DB) rollback(w *sim.Worker, txID uint64, from core.LSN) error {
	cur := from
	for cur != 0 {
		rec, err := db.log.Get(cur)
		if err != nil {
			return fmt.Errorf("engine: rollback tx %d at LSN %d: %w", txID, cur, err)
		}
		switch rec.Type {
		case wal.RecUpdate:
			if err := db.undoOne(w, txID, rec); err != nil {
				return err
			}
			cur = rec.PrevLSN
		case wal.RecCLR:
			cur = rec.UndoNext
		default:
			cur = rec.PrevLSN
		}
	}
	return nil
}

// undoOne compensates one update record: the CLR is appended and applied
// under the page's latch, so the CLR's LSN is stamped in append order.
func (db *DB) undoOne(w *sim.Worker, txID uint64, rec wal.Record) error {
	st := db.pageDir.get(rec.Page)
	if st == nil {
		return fmt.Errorf("engine: undo on unknown page %d", rec.Page)
	}
	fr, err := db.pool.Get(w, rec.Page)
	if err != nil {
		return err
	}
	fr.Latch()
	pg, err := page.Attach(fr.Data, st.layout)
	if err != nil {
		fr.Unlatch()
		db.pool.Unpin(w, fr, false, 0)
		return err
	}
	undoOp, undoImg := invertOp(rec)
	clr := db.log.Append(wal.Record{
		Type: wal.RecCLR, TxID: txID,
		Page: rec.Page, Op: undoOp, Slot: rec.Slot, After: undoImg,
		UndoNext: rec.PrevLSN,
	})
	if err := applyOp(pg, undoOp, int(rec.Slot), undoImg); err != nil {
		fr.Unlatch()
		db.pool.Unpin(w, fr, false, 0)
		return err
	}
	pg.SetLSN(clr)
	fr.Unlatch()
	return db.pool.Unpin(w, fr, true, clr)
}

// invertOp returns the compensating operation for an update record.
func invertOp(rec wal.Record) (wal.PageOp, []byte) {
	switch rec.Op {
	case wal.OpInsert:
		return wal.OpDelete, nil
	case wal.OpDelete:
		return wal.OpInsert, rec.Before
	case wal.OpUpdate:
		return wal.OpUpdate, rec.Before
	default:
		return wal.OpNone, nil
	}
}

// applyOp performs a physiological page operation.
func applyOp(pg *page.Page, op wal.PageOp, slot int, img []byte) error {
	switch op {
	case wal.OpInsert:
		return pg.InsertAt(slot, img)
	case wal.OpUpdate:
		return pg.Update(slot, img)
	case wal.OpDelete:
		return pg.Delete(slot)
	case wal.OpNone:
		return nil
	default:
		return fmt.Errorf("engine: unknown page op %d", op)
	}
}
