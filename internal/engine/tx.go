package engine

import (
	"errors"
	"fmt"

	"ipa/internal/core"
	"ipa/internal/page"
	"ipa/internal/sim"
	"ipa/internal/wal"
)

// Tx status values.
type txStatus int

const (
	txActive txStatus = iota
	txCommitted
	txAborted
)

// ErrTxDone is returned when operating on a finished transaction.
var ErrTxDone = errors.New("engine: transaction already finished")

// ErrLockConflict is returned when a tuple is exclusively locked by
// another active transaction. Locking is no-wait (immediate failure), so
// deadlocks cannot arise; callers abort and retry.
var ErrLockConflict = errors.New("engine: tuple locked by another transaction")

// Tx is a transaction handle. A transaction belongs to one simulated
// worker (terminal); its updates are WAL-logged with undo images, so
// Abort rolls back via the normal ARIES path — which, with IPA, may read
// pages whose uncommitted changes live in delta-records on flash
// (Sec. 6.2, rollback discussion).
type Tx struct {
	id       uint64
	db       *DB
	w        *sim.Worker
	firstLSN core.LSN
	lastLSN  core.LSN
	status   txStatus
	updates  int
	held     []core.RID // exclusive locks, released at commit/abort
}

// Begin starts a transaction bound to the worker (nil is fine for
// untimed use).
func (db *DB) Begin(w *sim.Worker) *Tx {
	db.mu.Lock()
	defer db.mu.Unlock()
	tx := &Tx{id: db.nextTx, db: db, w: w}
	db.nextTx++
	tx.firstLSN = db.log.Append(wal.Record{Type: wal.RecBegin, TxID: tx.id})
	tx.lastLSN = tx.firstLSN
	db.active[tx.id] = tx
	return tx
}

// ID returns the transaction id.
func (tx *Tx) ID() uint64 { return tx.id }

// lockRID acquires (or re-acquires) the exclusive tuple lock. Caller
// holds db.mu.
func (tx *Tx) lockRID(rid core.RID) error {
	if owner, ok := tx.db.locks[rid]; ok {
		if owner == tx.id {
			return nil
		}
		return fmt.Errorf("%w: %v held by tx %d", ErrLockConflict, rid, owner)
	}
	tx.db.locks[rid] = tx.id
	tx.held = append(tx.held, rid)
	return nil
}

// releaseLocksLocked drops every lock the transaction holds.
func (tx *Tx) releaseLocksLocked() {
	for _, rid := range tx.held {
		if tx.db.locks[rid] == tx.id {
			delete(tx.db.locks, rid)
		}
	}
	tx.held = nil
}

// logUpdate appends an update record and chains it. Caller holds db.mu.
func (tx *Tx) logUpdate(pg core.PageID, op wal.PageOp, slot int, before, after []byte) core.LSN {
	lsn := tx.db.log.Append(wal.Record{
		Type: wal.RecUpdate, TxID: tx.id, PrevLSN: tx.lastLSN,
		Page: pg, Op: op, Slot: uint16(slot),
		Before: append([]byte(nil), before...),
		After:  append([]byte(nil), after...),
	})
	tx.lastLSN = lsn
	tx.updates++
	return lsn
}

// Commit makes the transaction durable: the commit record is forced to
// the log (no-force for data pages) and the transaction ends.
func (tx *Tx) Commit() error {
	db := tx.db
	db.mu.Lock()
	defer db.mu.Unlock()
	if tx.status != txActive {
		return fmt.Errorf("%w: tx %d", ErrTxDone, tx.id)
	}
	lsn := db.log.Append(wal.Record{Type: wal.RecCommit, TxID: tx.id, PrevLSN: tx.lastLSN})
	db.log.Flush(lsn)
	db.log.Append(wal.Record{Type: wal.RecEnd, TxID: tx.id, PrevLSN: lsn})
	tx.status = txCommitted
	tx.releaseLocksLocked()
	delete(db.active, tx.id)
	return db.maybeReclaimLocked(tx.w)
}

// Abort rolls the transaction back: its update chain is walked backwards,
// each change is undone through the regular page path (so undo data may
// come from delta-records on flash), CLRs are written, and the
// transaction ends.
func (tx *Tx) Abort() error {
	db := tx.db
	db.mu.Lock()
	defer db.mu.Unlock()
	if tx.status != txActive {
		return fmt.Errorf("%w: tx %d", ErrTxDone, tx.id)
	}
	db.log.Append(wal.Record{Type: wal.RecAbort, TxID: tx.id, PrevLSN: tx.lastLSN})
	if err := db.rollbackLocked(tx.w, tx.id, tx.lastLSN); err != nil {
		return err
	}
	db.log.Append(wal.Record{Type: wal.RecEnd, TxID: tx.id})
	tx.status = txAborted
	tx.releaseLocksLocked()
	delete(db.active, tx.id)
	return nil
}

// rollbackLocked undoes a transaction's updates starting from lastLSN,
// writing a CLR per undone record. Shared by Abort and restart undo.
func (db *DB) rollbackLocked(w *sim.Worker, txID uint64, from core.LSN) error {
	cur := from
	for cur != 0 {
		rec, err := db.log.Get(cur)
		if err != nil {
			return fmt.Errorf("engine: rollback tx %d at LSN %d: %w", txID, cur, err)
		}
		switch rec.Type {
		case wal.RecUpdate:
			undoOp, undoImg := invertOp(rec)
			clr := db.log.Append(wal.Record{
				Type: wal.RecCLR, TxID: txID,
				Page: rec.Page, Op: undoOp, Slot: rec.Slot, After: undoImg,
				UndoNext: rec.PrevLSN,
			})
			if err := db.applyToPageLocked(w, rec.Page, undoOp, int(rec.Slot), undoImg, clr); err != nil {
				return err
			}
			cur = rec.PrevLSN
		case wal.RecCLR:
			cur = rec.UndoNext
		default:
			cur = rec.PrevLSN
		}
	}
	return nil
}

// invertOp returns the compensating operation for an update record.
func invertOp(rec wal.Record) (wal.PageOp, []byte) {
	switch rec.Op {
	case wal.OpInsert:
		return wal.OpDelete, nil
	case wal.OpDelete:
		return wal.OpInsert, rec.Before
	case wal.OpUpdate:
		return wal.OpUpdate, rec.Before
	default:
		return wal.OpNone, nil
	}
}

// applyToPageLocked fetches a page and applies a physiological operation,
// stamping the page with the given LSN. Used by rollback and redo.
func (db *DB) applyToPageLocked(w *sim.Worker, id core.PageID, op wal.PageOp, slot int, img []byte, lsn core.LSN) error {
	st := db.pageDir[id]
	if st == nil {
		return fmt.Errorf("engine: apply to unknown page %d", id)
	}
	fr, err := db.pool.Get(w, id)
	if err != nil {
		return err
	}
	pg, err := page.Attach(fr.Data, st.layout)
	if err != nil {
		db.pool.Unpin(w, fr, false, 0)
		return err
	}
	if err := applyOp(pg, op, slot, img); err != nil {
		db.pool.Unpin(w, fr, false, 0)
		return err
	}
	pg.SetLSN(lsn)
	return db.pool.Unpin(w, fr, true, lsn)
}

// applyOp performs a physiological page operation.
func applyOp(pg *page.Page, op wal.PageOp, slot int, img []byte) error {
	switch op {
	case wal.OpInsert:
		return pg.InsertAt(slot, img)
	case wal.OpUpdate:
		return pg.Update(slot, img)
	case wal.OpDelete:
		return pg.Delete(slot)
	case wal.OpNone:
		return nil
	default:
		return fmt.Errorf("engine: unknown page op %d", op)
	}
}
