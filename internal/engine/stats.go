package engine

import (
	"ipa/internal/buffer"
	"ipa/internal/flash"
	"ipa/internal/noftl"
	"ipa/internal/wal"
)

// Stats is one coherent snapshot of every layer of the engine —
// checkpointing and log-space activity, buffer pool behaviour, raw flash
// device counters, and the per-region NoFTL and page-store statistics.
// It is the supported way for examples, experiments and operators to
// observe the engine; the Log()/Pool()/Device() accessors remain only
// for tools and white-box tests.
//
// The snapshot is not atomic across layers (counters keep moving while
// it is assembled), but every individual counter is read race-free.
type Stats struct {
	// Engine-level counters.
	Checkpoints uint64 // fuzzy checkpoints taken
	LogReclaims uint64 // eager log-space reclamation passes

	// Aborts splits transaction aborts by reason, and MVCC reports the
	// version-store counters (zero with Enabled=false unless
	// Options.MVCC) — together the observability for the snapshot-read
	// win: locking reads burn LockConflict aborts under skew, snapshot
	// reads retire them.
	Aborts AbortStats
	MVCC   MVCCStats

	// Write-ahead log.
	LogFlushes   uint64 // flush operations that moved the durable horizon
	LogAbsorbed  uint64 // commits absorbed by another committer's group flush
	LogUsedBytes uint64 // live log volume
	LogUsage     float64

	// WAL is the full log contention snapshot: append reservations,
	// published/durable horizons, leader batches with batch-size
	// p50/p99, absorbed followers, and ring shape. The Log* fields
	// above remain as the stable summary; WAL carries the counters the
	// reservation-based append path adds.
	WAL wal.Stats

	// Buffer pool (hits, misses, evictions, cleaner activity).
	Pool buffer.Stats

	// Raw flash array (reads, programs, delta-programs, erases, wear).
	Flash flash.Stats

	// Per-region views, keyed by region name: the NoFTL mapping layer
	// (out-of-place writes, delta writes, GC migrations/erases) and the
	// page store's IPA flush decisions.
	Regions map[string]noftl.Stats
	Stores  map[string]StoreStats

	// Indexes reports every registered index's operation and contention
	// counters (OLC restarts and latch waits), keyed by index name.
	Indexes map[string]IndexStats
}

// AbortStats attributes transaction aborts to their reason. The server
// layer adds its own PoisonedAborts counter (aborts it issues on behalf
// of failed sessions) on top of these engine-level reasons.
type AbortStats struct {
	// LockConflict counts aborts of transactions that hit the no-wait
	// lock table (ErrLockConflict) — the contention cost MVCC snapshot
	// reads retire for the read path.
	LockConflict uint64
	// Explicit counts aborts of transactions that never saw a lock
	// conflict (application rollbacks, orphan cleanup, shutdown).
	Explicit uint64
	// LockConflicts counts raw ErrLockConflict occurrences (a
	// transaction can hit several before aborting once).
	LockConflicts uint64
}

// Stats assembles a snapshot across all engine layers. After Close it
// returns ErrClosed.
func (db *DB) Stats() (Stats, error) {
	db.stateMu.RLock()
	if db.closed.Load() {
		db.stateMu.RUnlock()
		return Stats{}, ErrClosed
	}
	pool := db.pool
	db.stateMu.RUnlock()

	s := Stats{
		Checkpoints: db.checkpoints.Load(),
		LogReclaims: db.reclaims.Load(),
		Aborts: AbortStats{
			LockConflict:  db.abortsLock.Load(),
			Explicit:      db.abortsExplicit.Load(),
			LockConflicts: db.lockConflicts.Load(),
		},
		MVCC:         db.vs.stats(),
		LogFlushes:   db.log.Flushes(),
		LogAbsorbed:  db.log.Absorbed(),
		LogUsedBytes: db.log.UsedBytes(),
		LogUsage:     db.log.Usage(),
		WAL:          db.log.Stats(),
		Pool:         pool.Stats(),
		Flash:        db.dev.Array().Stats(),
		Regions:      make(map[string]noftl.Stats),
		Stores:       make(map[string]StoreStats),
	}
	db.catMu.Lock()
	stores := make(map[string]*PageStore, len(db.stores))
	for name, st := range db.stores {
		stores[name] = st
	}
	indexes := make(map[string]Index, len(db.indexes))
	for name, ix := range db.indexes {
		indexes[name] = ix
	}
	db.catMu.Unlock()
	for name, st := range stores {
		s.Regions[name] = st.Region().Stats()
		s.Stores[name] = st.Stats()
	}
	s.Indexes = make(map[string]IndexStats, len(indexes))
	for name, ix := range indexes {
		s.Indexes[name] = ix.Stats()
	}
	return s, nil
}
