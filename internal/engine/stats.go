package engine

import (
	"ipa/internal/buffer"
	"ipa/internal/flash"
	"ipa/internal/noftl"
)

// Stats is one coherent snapshot of every layer of the engine —
// checkpointing and log-space activity, buffer pool behaviour, raw flash
// device counters, and the per-region NoFTL and page-store statistics.
// It is the supported way for examples, experiments and operators to
// observe the engine; the Log()/Pool()/Device() accessors remain only
// for tools and white-box tests.
//
// The snapshot is not atomic across layers (counters keep moving while
// it is assembled), but every individual counter is read race-free.
type Stats struct {
	// Engine-level counters.
	Checkpoints uint64 // fuzzy checkpoints taken
	LogReclaims uint64 // eager log-space reclamation passes

	// Write-ahead log.
	LogFlushes   uint64 // flush operations that moved the durable horizon
	LogAbsorbed  uint64 // commits absorbed by another committer's group flush
	LogUsedBytes uint64 // live log volume
	LogUsage     float64

	// Buffer pool (hits, misses, evictions, cleaner activity).
	Pool buffer.Stats

	// Raw flash array (reads, programs, delta-programs, erases, wear).
	Flash flash.Stats

	// Per-region views, keyed by region name: the NoFTL mapping layer
	// (out-of-place writes, delta writes, GC migrations/erases) and the
	// page store's IPA flush decisions.
	Regions map[string]noftl.Stats
	Stores  map[string]StoreStats

	// Indexes reports every registered index's operation and contention
	// counters (OLC restarts and latch waits), keyed by index name.
	Indexes map[string]IndexStats
}

// Stats assembles a snapshot across all engine layers. After Close it
// returns ErrClosed.
func (db *DB) Stats() (Stats, error) {
	db.stateMu.RLock()
	if db.closed.Load() {
		db.stateMu.RUnlock()
		return Stats{}, ErrClosed
	}
	pool := db.pool
	db.stateMu.RUnlock()

	s := Stats{
		Checkpoints:  db.checkpoints.Load(),
		LogReclaims:  db.reclaims.Load(),
		LogFlushes:   db.log.Flushes(),
		LogAbsorbed:  db.log.Absorbed(),
		LogUsedBytes: db.log.UsedBytes(),
		LogUsage:     db.log.Usage(),
		Pool:         pool.Stats(),
		Flash:        db.dev.Array().Stats(),
		Regions:      make(map[string]noftl.Stats),
		Stores:       make(map[string]StoreStats),
	}
	db.catMu.Lock()
	stores := make(map[string]*PageStore, len(db.stores))
	for name, st := range db.stores {
		stores[name] = st
	}
	indexes := make(map[string]Index, len(db.indexes))
	for name, ix := range db.indexes {
		indexes[name] = ix
	}
	db.catMu.Unlock()
	for name, st := range stores {
		s.Regions[name] = st.Region().Stats()
		s.Stores[name] = st.Stats()
	}
	s.Indexes = make(map[string]IndexStats, len(indexes))
	for name, ix := range indexes {
		s.Indexes[name] = ix.Stats()
	}
	return s, nil
}
