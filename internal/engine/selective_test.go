package engine

import (
	"testing"

	"ipa/internal/core"
	"ipa/internal/flash"
	"ipa/internal/noftl"
)

// TestSelectiveIPAAcrossRegions exercises the paper's contribution II:
// IPA applied selectively per database object through NoFTL regions. A
// write-hot table lives in a pSLC region with [2×4], a cold table in an
// odd-MLC region with [2×3], and a read-only table in a region with IPA
// off — all on the same MLC device, concurrently.
func TestSelectiveIPAAcrossRegions(t *testing.T) {
	g := flash.Geometry{
		Chips: 2, BlocksPerChip: 48, PagesPerBlock: 8,
		PageSize: 512, OOBSize: 32, Cell: flash.MLC,
	}
	arr, err := flash.New(flash.Config{
		Geometry: g, Timing: flash.MLCTiming(), StrictProgramOrder: true, MaxAppends: 4,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dev := noftl.Open(arr)
	mk := func(name string, mode noftl.IPAMode, scheme core.Scheme) {
		t.Helper()
		if _, err := dev.CreateRegion(noftl.RegionConfig{
			Name: name, Mode: mode, Scheme: scheme, BlocksPerChip: 16,
		}); err != nil {
			t.Fatal(err)
		}
	}
	mk("hot", noftl.ModePSLC, core.NewScheme(2, 4))
	mk("warm", noftl.ModeOddMLC, core.NewScheme(2, 3))
	mk("cold", noftl.ModeNone, core.Scheme{})

	db, err := New(dev, Options{PageSize: 512, BufferFrames: 32, DirtyThreshold: 2.0})
	if err != nil {
		t.Fatal(err)
	}
	hot, _ := db.CreateTable("stock", "hot")
	warm, _ := db.CreateTable("customer", "warm")
	cold, _ := db.CreateTable("item", "cold")
	sch, _ := NewSchema(8, 8)

	// Populate all three and flush.
	var hotR, warmR, coldR core.RID
	for _, tc := range []struct {
		tbl *Table
		rid *core.RID
	}{{hot, &hotR}, {warm, &warmR}, {cold, &coldR}} {
		tx := mustBegin(db, nil)
		tup := sch.New()
		sch.SetUint(tup, 0, 7)
		rid, err := tc.tbl.Insert(tx, tup)
		if err != nil {
			t.Fatal(err)
		}
		*tc.rid = rid
		tx.Commit()
	}
	db.FlushAll(nil)

	// Small updates everywhere.
	update := func(tbl *Table, rid core.RID) {
		t.Helper()
		tx := mustBegin(db, nil)
		cur, err := tbl.Read(nil, rid)
		if err != nil {
			t.Fatal(err)
		}
		sch.AddUint(cur, 1, 1)
		if err := tbl.Update(tx, rid, cur); err != nil {
			t.Fatal(err)
		}
		tx.Commit()
		db.FlushAll(nil)
	}
	update(hot, hotR)
	update(warm, warmR)
	update(cold, coldR)

	// Hot (pSLC): the update must be an append.
	if n := db.Store("hot").Region().Stats().DeltaWrites; n != 1 {
		t.Errorf("hot DeltaWrites = %d, want 1", n)
	}
	// Cold: never any appends.
	if n := db.Store("cold").Region().Stats().DeltaWrites; n != 0 {
		t.Errorf("cold DeltaWrites = %d, want 0", n)
	}
	// Warm (odd-MLC): append only if the page landed on an LSB page.
	ws := db.Store("warm").Region().Stats()
	if ws.DeltaWrites+ws.OutOfPlaceWrites < 2 {
		t.Errorf("warm writes = %+v", ws)
	}
	// All data still correct.
	for _, tc := range []struct {
		tbl *Table
		rid core.RID
	}{{hot, hotR}, {warm, warmR}, {cold, coldR}} {
		db.Pool().Drop(tc.rid.Page)
		got, err := tc.tbl.Read(nil, tc.rid)
		if err != nil {
			t.Fatal(err)
		}
		if sch.GetUint(got, 1) != 1 {
			t.Errorf("%s value = %d", tc.tbl.Name(), sch.GetUint(got, 1))
		}
	}
}
