package engine

import (
	"bytes"
	"testing"

	"ipa/internal/core"
)

// newReplRig opens a small two-region DB with replication and MVCC on,
// the shape every cluster member runs with.
func newReplRig(t *testing.T) *DB {
	t.Helper()
	return newRigWithOptions(t, rigGeometry(), Options{
		PageSize: 512, BufferFrames: 64, LogCapacity: 1 << 20,
		MVCC: true, Replicated: true,
	})
}

// shipAll streams every record past the applier's head from src into a,
// in bounded batches, until the follower has caught up.
func shipAll(t *testing.T, src *DB, a *Applier) {
	t.Helper()
	for a.AppliedLSN() < src.WAL().Head() {
		recs, err := src.WAL().ReadFrom(a.AppliedLSN()+1, 64, 1<<20)
		if err != nil {
			t.Fatalf("ReadFrom: %v", err)
		}
		if len(recs) == 0 {
			t.Fatalf("stream stalled at LSN %d (primary head %d)", a.AppliedLSN(), src.WAL().Head())
		}
		if err := a.Apply(recs); err != nil {
			t.Fatalf("Apply: %v", err)
		}
	}
}

// scanAll collects a table's visible heap state keyed by RID.
func scanAll(t *testing.T, tb *Table) map[core.RID][]byte {
	t.Helper()
	out := make(map[core.RID][]byte)
	err := tb.Scan(nil, func(rid core.RID, tuple []byte) bool {
		out[rid] = append([]byte(nil), tuple...)
		return true
	})
	if err != nil {
		t.Fatalf("scan %s: %v", tb.Name(), err)
	}
	return out
}

// diffStates fails the test when two table states differ.
func diffStates(t *testing.T, want, got map[core.RID][]byte) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("tuple count: primary %d, follower %d", len(want), len(got))
	}
	for rid, wv := range want {
		gv, ok := got[rid]
		if !ok {
			t.Fatalf("follower missing RID %v", rid)
		}
		if !bytes.Equal(wv, gv) {
			t.Fatalf("RID %v: primary %q, follower %q", rid, wv, gv)
		}
	}
}

// TestApplierStreamParity replays a full primary history — DDL,
// inserts, updates, a delete and an abort — through the applier and
// checks LSN parity plus byte-identical table state.
func TestApplierStreamParity(t *testing.T) {
	primary := newReplRig(t)
	defer primary.Close()
	follower := newReplRig(t)
	defer follower.Close()

	a, err := follower.NewApplier(nil)
	if err != nil {
		t.Fatal(err)
	}

	ptb, err := primary.CreateTable("acct", "r1")
	if err != nil {
		t.Fatal(err)
	}
	var rids []core.RID
	tx := mustBegin(primary, nil)
	for i := 0; i < 8; i++ {
		rid, err := ptb.Insert(tx, []byte{'v', '0', '-', byte('a' + i)})
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx = mustBegin(primary, nil)
	if err := ptb.Update(tx, rids[1], []byte("v1-b")); err != nil {
		t.Fatal(err)
	}
	if err := ptb.Delete(tx, rids[2]); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// An aborted transaction ships RecAbort + CLRs + RecEnd; the
	// follower must restore the before-image through the CLRs.
	tx = mustBegin(primary, nil)
	if err := ptb.Update(tx, rids[3], []byte("XXXX")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}

	shipAll(t, primary, a)
	if got, want := a.AppliedLSN(), primary.WAL().Head(); got != want {
		t.Fatalf("applied LSN %d, primary head %d", got, want)
	}
	if got, want := follower.WAL().Head(), primary.WAL().Head(); got != want {
		t.Fatalf("follower log head %d, primary %d (parity broken)", got, want)
	}

	ftb, err := follower.Table("acct")
	if err != nil {
		t.Fatalf("follower table: %v", err)
	}
	diffStates(t, scanAll(t, ptb), scanAll(t, ftb))
	if got := scanAll(t, ftb)[rids[3]]; string(got) != "v0-d" {
		t.Fatalf("aborted update leaked to follower: %q", got)
	}

	// Snapshot reads on the follower see committed state.
	snap, err := follower.BeginSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Abort()
	got, err := ftb.ReadSnapshot(snap, rids[1])
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v1-b" {
		t.Fatalf("follower snapshot read: %q, want %q", got, "v1-b")
	}
}

// TestApplierSnapshotJoin primes a fresh follower from a mid-stream
// snapshot captured while a transaction is active, then continues the
// stream: the active transaction's records replay from its RecBegin
// (PrimeLSN = min active firstLSN - 1), with heap applies deduplicated
// by the PageLSN guard but version-chain entries still installed.
func TestApplierSnapshotJoin(t *testing.T) {
	primary := newReplRig(t)
	defer primary.Close()
	follower := newReplRig(t)
	defer follower.Close()

	ptb, err := primary.CreateTable("acct", "r1")
	if err != nil {
		t.Fatal(err)
	}
	var rids []core.RID
	tx := mustBegin(primary, nil)
	for i := 0; i < 5; i++ {
		rid, err := ptb.Insert(tx, []byte{'s', '0', '-', byte('a' + i)})
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	open := mustBegin(primary, nil)
	if err := ptb.Update(open, rids[0], []byte("s1-a")); err != nil {
		t.Fatal(err)
	}

	snap, err := primary.CaptureSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap.PrimeLSN >= primary.WAL().Head() {
		t.Fatalf("PrimeLSN %d not below head %d despite active tx", snap.PrimeLSN, primary.WAL().Head())
	}

	if err := follower.InstallSnapshot(nil, snap); err != nil {
		t.Fatal(err)
	}
	a, err := follower.NewApplier(nil)
	if err != nil {
		t.Fatal(err)
	}
	a.Resync()
	if got := a.AppliedLSN(); got != snap.PrimeLSN {
		t.Fatalf("resynced applier at %d, want PrimeLSN %d", got, snap.PrimeLSN)
	}

	if err := ptb.Update(open, rids[4], []byte("s1-e")); err != nil {
		t.Fatal(err)
	}
	if err := open.Commit(); err != nil {
		t.Fatal(err)
	}

	shipAll(t, primary, a)

	ftb, err := follower.Table("acct")
	if err != nil {
		t.Fatalf("follower table: %v", err)
	}
	diffStates(t, scanAll(t, ptb), scanAll(t, ftb))
}

// TestApplierPromote rolls back the dead primary's open transaction on
// promotion and leaves the follower writable as a normal primary.
func TestApplierPromote(t *testing.T) {
	primary := newReplRig(t)
	defer primary.Close()
	follower := newReplRig(t)
	defer follower.Close()

	a, err := follower.NewApplier(nil)
	if err != nil {
		t.Fatal(err)
	}

	ptb, err := primary.CreateTable("acct", "r1")
	if err != nil {
		t.Fatal(err)
	}
	tx := mustBegin(primary, nil)
	rid, err := ptb.Insert(tx, []byte("old!"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// The primary "dies" with this transaction open; its update has
	// already shipped.
	loser := mustBegin(primary, nil)
	if err := ptb.Update(loser, rid, []byte("new!")); err != nil {
		t.Fatal(err)
	}
	shipAll(t, primary, a)

	if err := a.Promote(); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if follower.WAL().Head() <= primary.WAL().Head() {
		t.Fatalf("promotion appended no rollback records: follower head %d, primary %d",
			follower.WAL().Head(), primary.WAL().Head())
	}

	ftb, err := follower.Table("acct")
	if err != nil {
		t.Fatal(err)
	}
	got, err := ftb.Read(nil, rid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "old!" {
		t.Fatalf("loser transaction survived promotion: %q", got)
	}

	// The promoted node serves writes.
	ntx := mustBegin(follower, nil)
	if err := ftb.Update(ntx, rid, []byte("next")); err != nil {
		t.Fatal(err)
	}
	if err := ntx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got, _ := ftb.Read(nil, rid); string(got) != "next" {
		t.Fatalf("post-promotion write: %q", got)
	}
}
